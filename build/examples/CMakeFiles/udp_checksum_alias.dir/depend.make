# Empty dependencies file for udp_checksum_alias.
# This may be replaced when dependencies are built.
