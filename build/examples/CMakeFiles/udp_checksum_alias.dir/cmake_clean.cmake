file(REMOVE_RECURSE
  "CMakeFiles/udp_checksum_alias.dir/udp_checksum_alias.cpp.o"
  "CMakeFiles/udp_checksum_alias.dir/udp_checksum_alias.cpp.o.d"
  "udp_checksum_alias"
  "udp_checksum_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udp_checksum_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
