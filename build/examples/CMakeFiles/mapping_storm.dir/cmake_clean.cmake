file(REMOVE_RECURSE
  "CMakeFiles/mapping_storm.dir/mapping_storm.cpp.o"
  "CMakeFiles/mapping_storm.dir/mapping_storm.cpp.o.d"
  "mapping_storm"
  "mapping_storm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapping_storm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
