# Empty compiler generated dependencies file for mapping_storm.
# This may be replaced when dependencies are built.
