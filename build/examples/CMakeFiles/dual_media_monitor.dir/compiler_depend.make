# Empty compiler generated dependencies file for dual_media_monitor.
# This may be replaced when dependencies are built.
