file(REMOVE_RECURSE
  "CMakeFiles/dual_media_monitor.dir/dual_media_monitor.cpp.o"
  "CMakeFiles/dual_media_monitor.dir/dual_media_monitor.cpp.o.d"
  "dual_media_monitor"
  "dual_media_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_media_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
