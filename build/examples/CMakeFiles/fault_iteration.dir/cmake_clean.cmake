file(REMOVE_RECURSE
  "CMakeFiles/fault_iteration.dir/fault_iteration.cpp.o"
  "CMakeFiles/fault_iteration.dir/fault_iteration.cpp.o.d"
  "fault_iteration"
  "fault_iteration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_iteration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
