# Empty compiler generated dependencies file for fault_iteration.
# This may be replaced when dependencies are built.
