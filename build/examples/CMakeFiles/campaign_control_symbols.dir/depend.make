# Empty dependencies file for campaign_control_symbols.
# This may be replaced when dependencies are built.
