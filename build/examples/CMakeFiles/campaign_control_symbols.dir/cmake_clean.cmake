file(REMOVE_RECURSE
  "CMakeFiles/campaign_control_symbols.dir/campaign_control_symbols.cpp.o"
  "CMakeFiles/campaign_control_symbols.dir/campaign_control_symbols.cpp.o.d"
  "campaign_control_symbols"
  "campaign_control_symbols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_control_symbols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
