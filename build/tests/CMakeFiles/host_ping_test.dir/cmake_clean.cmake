file(REMOVE_RECURSE
  "CMakeFiles/host_ping_test.dir/host_ping_test.cpp.o"
  "CMakeFiles/host_ping_test.dir/host_ping_test.cpp.o.d"
  "host_ping_test"
  "host_ping_test.pdb"
  "host_ping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_ping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
