# Empty compiler generated dependencies file for host_ping_test.
# This may be replaced when dependencies are built.
