file(REMOVE_RECURSE
  "CMakeFiles/fc_sequence_test.dir/fc_sequence_test.cpp.o"
  "CMakeFiles/fc_sequence_test.dir/fc_sequence_test.cpp.o.d"
  "fc_sequence_test"
  "fc_sequence_test.pdb"
  "fc_sequence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
