# Empty dependencies file for fc_sequence_test.
# This may be replaced when dependencies are built.
