file(REMOVE_RECURSE
  "CMakeFiles/fc_injector_test.dir/fc_injector_test.cpp.o"
  "CMakeFiles/fc_injector_test.dir/fc_injector_test.cpp.o.d"
  "fc_injector_test"
  "fc_injector_test.pdb"
  "fc_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
