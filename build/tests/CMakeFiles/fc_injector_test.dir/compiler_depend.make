# Empty compiler generated dependencies file for fc_injector_test.
# This may be replaced when dependencies are built.
