file(REMOVE_RECURSE
  "CMakeFiles/switch_config_sweep_test.dir/switch_config_sweep_test.cpp.o"
  "CMakeFiles/switch_config_sweep_test.dir/switch_config_sweep_test.cpp.o.d"
  "switch_config_sweep_test"
  "switch_config_sweep_test.pdb"
  "switch_config_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_config_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
