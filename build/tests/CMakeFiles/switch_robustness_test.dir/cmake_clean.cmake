file(REMOVE_RECURSE
  "CMakeFiles/switch_robustness_test.dir/switch_robustness_test.cpp.o"
  "CMakeFiles/switch_robustness_test.dir/switch_robustness_test.cpp.o.d"
  "switch_robustness_test"
  "switch_robustness_test.pdb"
  "switch_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
