
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fc_fabric_test.cpp" "tests/CMakeFiles/fc_fabric_test.dir/fc_fabric_test.cpp.o" "gcc" "tests/CMakeFiles/fc_fabric_test.dir/fc_fabric_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fc/CMakeFiles/hsfi_fc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hsfi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/myrinet/CMakeFiles/hsfi_myrinet.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/hsfi_link.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hsfi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
