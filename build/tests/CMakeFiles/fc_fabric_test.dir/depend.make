# Empty dependencies file for fc_fabric_test.
# This may be replaced when dependencies are built.
