file(REMOVE_RECURSE
  "CMakeFiles/fc_fabric_test.dir/fc_fabric_test.cpp.o"
  "CMakeFiles/fc_fabric_test.dir/fc_fabric_test.cpp.o.d"
  "fc_fabric_test"
  "fc_fabric_test.pdb"
  "fc_fabric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_fabric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
