# Empty compiler generated dependencies file for core_rtl_crossval_test.
# This may be replaced when dependencies are built.
