file(REMOVE_RECURSE
  "CMakeFiles/core_rtl_crossval_test.dir/core_rtl_crossval_test.cpp.o"
  "CMakeFiles/core_rtl_crossval_test.dir/core_rtl_crossval_test.cpp.o.d"
  "core_rtl_crossval_test"
  "core_rtl_crossval_test.pdb"
  "core_rtl_crossval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_rtl_crossval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
