file(REMOVE_RECURSE
  "CMakeFiles/core_command_plane_test.dir/core_command_plane_test.cpp.o"
  "CMakeFiles/core_command_plane_test.dir/core_command_plane_test.cpp.o.d"
  "core_command_plane_test"
  "core_command_plane_test.pdb"
  "core_command_plane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_command_plane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
