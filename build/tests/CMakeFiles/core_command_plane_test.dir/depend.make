# Empty dependencies file for core_command_plane_test.
# This may be replaced when dependencies are built.
