# Empty dependencies file for core_lfsr_test.
# This may be replaced when dependencies are built.
