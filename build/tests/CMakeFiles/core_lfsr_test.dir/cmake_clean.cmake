file(REMOVE_RECURSE
  "CMakeFiles/core_lfsr_test.dir/core_lfsr_test.cpp.o"
  "CMakeFiles/core_lfsr_test.dir/core_lfsr_test.cpp.o.d"
  "core_lfsr_test"
  "core_lfsr_test.pdb"
  "core_lfsr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lfsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
