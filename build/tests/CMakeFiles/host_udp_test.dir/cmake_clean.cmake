file(REMOVE_RECURSE
  "CMakeFiles/host_udp_test.dir/host_udp_test.cpp.o"
  "CMakeFiles/host_udp_test.dir/host_udp_test.cpp.o.d"
  "host_udp_test"
  "host_udp_test.pdb"
  "host_udp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_udp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
