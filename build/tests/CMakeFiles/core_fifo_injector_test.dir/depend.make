# Empty dependencies file for core_fifo_injector_test.
# This may be replaced when dependencies are built.
