file(REMOVE_RECURSE
  "CMakeFiles/core_fifo_injector_test.dir/core_fifo_injector_test.cpp.o"
  "CMakeFiles/core_fifo_injector_test.dir/core_fifo_injector_test.cpp.o.d"
  "core_fifo_injector_test"
  "core_fifo_injector_test.pdb"
  "core_fifo_injector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fifo_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
