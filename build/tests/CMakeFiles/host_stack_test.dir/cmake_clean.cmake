file(REMOVE_RECURSE
  "CMakeFiles/host_stack_test.dir/host_stack_test.cpp.o"
  "CMakeFiles/host_stack_test.dir/host_stack_test.cpp.o.d"
  "host_stack_test"
  "host_stack_test.pdb"
  "host_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
