file(REMOVE_RECURSE
  "CMakeFiles/core_sequencer_test.dir/core_sequencer_test.cpp.o"
  "CMakeFiles/core_sequencer_test.dir/core_sequencer_test.cpp.o.d"
  "core_sequencer_test"
  "core_sequencer_test.pdb"
  "core_sequencer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sequencer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
