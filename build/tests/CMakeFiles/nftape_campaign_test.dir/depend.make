# Empty dependencies file for nftape_campaign_test.
# This may be replaced when dependencies are built.
