file(REMOVE_RECURSE
  "CMakeFiles/nftape_campaign_test.dir/nftape_campaign_test.cpp.o"
  "CMakeFiles/nftape_campaign_test.dir/nftape_campaign_test.cpp.o.d"
  "nftape_campaign_test"
  "nftape_campaign_test.pdb"
  "nftape_campaign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nftape_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
