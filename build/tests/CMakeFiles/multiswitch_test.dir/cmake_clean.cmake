file(REMOVE_RECURSE
  "CMakeFiles/multiswitch_test.dir/multiswitch_test.cpp.o"
  "CMakeFiles/multiswitch_test.dir/multiswitch_test.cpp.o.d"
  "multiswitch_test"
  "multiswitch_test.pdb"
  "multiswitch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiswitch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
