# Empty compiler generated dependencies file for multiswitch_test.
# This may be replaced when dependencies are built.
