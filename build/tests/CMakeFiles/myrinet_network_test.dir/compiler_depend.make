# Empty compiler generated dependencies file for myrinet_network_test.
# This may be replaced when dependencies are built.
