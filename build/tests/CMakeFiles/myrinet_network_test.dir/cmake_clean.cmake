file(REMOVE_RECURSE
  "CMakeFiles/myrinet_network_test.dir/myrinet_network_test.cpp.o"
  "CMakeFiles/myrinet_network_test.dir/myrinet_network_test.cpp.o.d"
  "myrinet_network_test"
  "myrinet_network_test.pdb"
  "myrinet_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myrinet_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
