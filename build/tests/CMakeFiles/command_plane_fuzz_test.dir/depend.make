# Empty dependencies file for command_plane_fuzz_test.
# This may be replaced when dependencies are built.
