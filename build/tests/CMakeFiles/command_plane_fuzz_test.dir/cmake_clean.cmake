file(REMOVE_RECURSE
  "CMakeFiles/command_plane_fuzz_test.dir/command_plane_fuzz_test.cpp.o"
  "CMakeFiles/command_plane_fuzz_test.dir/command_plane_fuzz_test.cpp.o.d"
  "command_plane_fuzz_test"
  "command_plane_fuzz_test.pdb"
  "command_plane_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/command_plane_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
