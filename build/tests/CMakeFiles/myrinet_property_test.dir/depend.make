# Empty dependencies file for myrinet_property_test.
# This may be replaced when dependencies are built.
