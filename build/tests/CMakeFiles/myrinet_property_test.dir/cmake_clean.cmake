file(REMOVE_RECURSE
  "CMakeFiles/myrinet_property_test.dir/myrinet_property_test.cpp.o"
  "CMakeFiles/myrinet_property_test.dir/myrinet_property_test.cpp.o.d"
  "myrinet_property_test"
  "myrinet_property_test.pdb"
  "myrinet_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myrinet_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
