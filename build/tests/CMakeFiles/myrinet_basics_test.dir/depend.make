# Empty dependencies file for myrinet_basics_test.
# This may be replaced when dependencies are built.
