file(REMOVE_RECURSE
  "CMakeFiles/myrinet_basics_test.dir/myrinet_basics_test.cpp.o"
  "CMakeFiles/myrinet_basics_test.dir/myrinet_basics_test.cpp.o.d"
  "myrinet_basics_test"
  "myrinet_basics_test.pdb"
  "myrinet_basics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/myrinet_basics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
