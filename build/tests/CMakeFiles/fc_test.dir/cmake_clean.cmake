file(REMOVE_RECURSE
  "CMakeFiles/fc_test.dir/fc_test.cpp.o"
  "CMakeFiles/fc_test.dir/fc_test.cpp.o.d"
  "fc_test"
  "fc_test.pdb"
  "fc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
