# Empty compiler generated dependencies file for uart_timing_test.
# This may be replaced when dependencies are built.
