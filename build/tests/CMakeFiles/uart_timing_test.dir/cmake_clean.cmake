file(REMOVE_RECURSE
  "CMakeFiles/uart_timing_test.dir/uart_timing_test.cpp.o"
  "CMakeFiles/uart_timing_test.dir/uart_timing_test.cpp.o.d"
  "uart_timing_test"
  "uart_timing_test.pdb"
  "uart_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uart_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
