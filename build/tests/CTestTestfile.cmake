# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/link_test[1]_include.cmake")
include("/root/repo/build/tests/myrinet_basics_test[1]_include.cmake")
include("/root/repo/build/tests/myrinet_network_test[1]_include.cmake")
include("/root/repo/build/tests/core_fifo_injector_test[1]_include.cmake")
include("/root/repo/build/tests/core_device_test[1]_include.cmake")
include("/root/repo/build/tests/core_command_plane_test[1]_include.cmake")
include("/root/repo/build/tests/host_udp_test[1]_include.cmake")
include("/root/repo/build/tests/host_stack_test[1]_include.cmake")
include("/root/repo/build/tests/fc_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/nftape_campaign_test[1]_include.cmake")
include("/root/repo/build/tests/myrinet_property_test[1]_include.cmake")
include("/root/repo/build/tests/core_property_test[1]_include.cmake")
include("/root/repo/build/tests/switch_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/fc_injector_test[1]_include.cmake")
include("/root/repo/build/tests/core_lfsr_test[1]_include.cmake")
include("/root/repo/build/tests/multiswitch_test[1]_include.cmake")
include("/root/repo/build/tests/core_sequencer_test[1]_include.cmake")
include("/root/repo/build/tests/fc_fabric_test[1]_include.cmake")
include("/root/repo/build/tests/core_rtl_crossval_test[1]_include.cmake")
include("/root/repo/build/tests/command_plane_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/fc_sequence_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sim_stress_test[1]_include.cmake")
include("/root/repo/build/tests/uart_timing_test[1]_include.cmake")
include("/root/repo/build/tests/host_ping_test[1]_include.cmake")
include("/root/repo/build/tests/switch_config_sweep_test[1]_include.cmake")
