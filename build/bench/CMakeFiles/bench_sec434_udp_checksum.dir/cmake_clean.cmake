file(REMOVE_RECURSE
  "CMakeFiles/bench_sec434_udp_checksum.dir/bench_sec434_udp_checksum.cpp.o"
  "CMakeFiles/bench_sec434_udp_checksum.dir/bench_sec434_udp_checksum.cpp.o.d"
  "bench_sec434_udp_checksum"
  "bench_sec434_udp_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec434_udp_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
