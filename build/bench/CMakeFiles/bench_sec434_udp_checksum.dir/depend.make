# Empty dependencies file for bench_sec434_udp_checksum.
# This may be replaced when dependencies are built.
