# Empty dependencies file for bench_fig9_slack_buffer.
# This may be replaced when dependencies are built.
