file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_slack_buffer.dir/bench_fig9_slack_buffer.cpp.o"
  "CMakeFiles/bench_fig9_slack_buffer.dir/bench_fig9_slack_buffer.cpp.o.d"
  "bench_fig9_slack_buffer"
  "bench_fig9_slack_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_slack_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
