file(REMOVE_RECURSE
  "CMakeFiles/bench_seu_sweep.dir/bench_seu_sweep.cpp.o"
  "CMakeFiles/bench_seu_sweep.dir/bench_seu_sweep.cpp.o.d"
  "bench_seu_sweep"
  "bench_seu_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seu_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
