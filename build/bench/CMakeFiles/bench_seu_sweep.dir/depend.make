# Empty dependencies file for bench_seu_sweep.
# This may be replaced when dependencies are built.
