file(REMOVE_RECURSE
  "CMakeFiles/bench_passthrough.dir/bench_passthrough.cpp.o"
  "CMakeFiles/bench_passthrough.dir/bench_passthrough.cpp.o.d"
  "bench_passthrough"
  "bench_passthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_passthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
