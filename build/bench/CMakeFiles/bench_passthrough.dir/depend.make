# Empty dependencies file for bench_passthrough.
# This may be replaced when dependencies are built.
