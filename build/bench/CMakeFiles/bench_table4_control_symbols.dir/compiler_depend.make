# Empty compiler generated dependencies file for bench_table4_control_symbols.
# This may be replaced when dependencies are built.
