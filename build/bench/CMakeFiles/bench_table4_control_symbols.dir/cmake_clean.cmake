file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_control_symbols.dir/bench_table4_control_symbols.cpp.o"
  "CMakeFiles/bench_table4_control_symbols.dir/bench_table4_control_symbols.cpp.o.d"
  "bench_table4_control_symbols"
  "bench_table4_control_symbols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_control_symbols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
