file(REMOVE_RECURSE
  "CMakeFiles/bench_sec432_packet_type.dir/bench_sec432_packet_type.cpp.o"
  "CMakeFiles/bench_sec432_packet_type.dir/bench_sec432_packet_type.cpp.o.d"
  "bench_sec432_packet_type"
  "bench_sec432_packet_type.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec432_packet_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
