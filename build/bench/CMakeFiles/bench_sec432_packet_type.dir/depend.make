# Empty dependencies file for bench_sec432_packet_type.
# This may be replaced when dependencies are built.
