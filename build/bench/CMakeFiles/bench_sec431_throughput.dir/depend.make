# Empty dependencies file for bench_sec431_throughput.
# This may be replaced when dependencies are built.
