file(REMOVE_RECURSE
  "CMakeFiles/bench_sec433_address_corruption.dir/bench_sec433_address_corruption.cpp.o"
  "CMakeFiles/bench_sec433_address_corruption.dir/bench_sec433_address_corruption.cpp.o.d"
  "bench_sec433_address_corruption"
  "bench_sec433_address_corruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec433_address_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
