# Empty compiler generated dependencies file for bench_sec433_address_corruption.
# This may be replaced when dependencies are built.
