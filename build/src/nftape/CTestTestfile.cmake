# CMake generated Testfile for 
# Source directory: /root/repo/src/nftape
# Build directory: /root/repo/build/src/nftape
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
