# Empty dependencies file for hsfi_nftape.
# This may be replaced when dependencies are built.
