file(REMOVE_RECURSE
  "CMakeFiles/hsfi_nftape.dir/campaign.cpp.o"
  "CMakeFiles/hsfi_nftape.dir/campaign.cpp.o.d"
  "CMakeFiles/hsfi_nftape.dir/faults.cpp.o"
  "CMakeFiles/hsfi_nftape.dir/faults.cpp.o.d"
  "CMakeFiles/hsfi_nftape.dir/report.cpp.o"
  "CMakeFiles/hsfi_nftape.dir/report.cpp.o.d"
  "CMakeFiles/hsfi_nftape.dir/testbed.cpp.o"
  "CMakeFiles/hsfi_nftape.dir/testbed.cpp.o.d"
  "libhsfi_nftape.a"
  "libhsfi_nftape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsfi_nftape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
