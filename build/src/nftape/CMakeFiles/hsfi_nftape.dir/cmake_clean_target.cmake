file(REMOVE_RECURSE
  "libhsfi_nftape.a"
)
