
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/myrinet/addr.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/addr.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/addr.cpp.o.d"
  "/root/repo/src/myrinet/control.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/control.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/control.cpp.o.d"
  "/root/repo/src/myrinet/flow_gate.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/flow_gate.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/flow_gate.cpp.o.d"
  "/root/repo/src/myrinet/framing.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/framing.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/framing.cpp.o.d"
  "/root/repo/src/myrinet/host_iface.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/host_iface.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/host_iface.cpp.o.d"
  "/root/repo/src/myrinet/mcp.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/mcp.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/mcp.cpp.o.d"
  "/root/repo/src/myrinet/mmon.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/mmon.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/mmon.cpp.o.d"
  "/root/repo/src/myrinet/packet.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/packet.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/packet.cpp.o.d"
  "/root/repo/src/myrinet/slack_buffer.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/slack_buffer.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/slack_buffer.cpp.o.d"
  "/root/repo/src/myrinet/switch.cpp" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/switch.cpp.o" "gcc" "src/myrinet/CMakeFiles/hsfi_myrinet.dir/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hsfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/hsfi_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
