file(REMOVE_RECURSE
  "libhsfi_myrinet.a"
)
