file(REMOVE_RECURSE
  "CMakeFiles/hsfi_myrinet.dir/addr.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/addr.cpp.o.d"
  "CMakeFiles/hsfi_myrinet.dir/control.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/control.cpp.o.d"
  "CMakeFiles/hsfi_myrinet.dir/flow_gate.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/flow_gate.cpp.o.d"
  "CMakeFiles/hsfi_myrinet.dir/framing.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/framing.cpp.o.d"
  "CMakeFiles/hsfi_myrinet.dir/host_iface.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/host_iface.cpp.o.d"
  "CMakeFiles/hsfi_myrinet.dir/mcp.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/mcp.cpp.o.d"
  "CMakeFiles/hsfi_myrinet.dir/mmon.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/mmon.cpp.o.d"
  "CMakeFiles/hsfi_myrinet.dir/packet.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/packet.cpp.o.d"
  "CMakeFiles/hsfi_myrinet.dir/slack_buffer.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/slack_buffer.cpp.o.d"
  "CMakeFiles/hsfi_myrinet.dir/switch.cpp.o"
  "CMakeFiles/hsfi_myrinet.dir/switch.cpp.o.d"
  "libhsfi_myrinet.a"
  "libhsfi_myrinet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsfi_myrinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
