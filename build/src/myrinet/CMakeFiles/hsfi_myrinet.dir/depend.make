# Empty dependencies file for hsfi_myrinet.
# This may be replaced when dependencies are built.
