file(REMOVE_RECURSE
  "CMakeFiles/hsfi_phy.dir/serdes.cpp.o"
  "CMakeFiles/hsfi_phy.dir/serdes.cpp.o.d"
  "libhsfi_phy.a"
  "libhsfi_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsfi_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
