file(REMOVE_RECURSE
  "libhsfi_phy.a"
)
