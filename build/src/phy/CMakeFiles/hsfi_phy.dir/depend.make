# Empty dependencies file for hsfi_phy.
# This may be replaced when dependencies are built.
