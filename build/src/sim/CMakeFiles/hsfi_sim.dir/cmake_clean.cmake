file(REMOVE_RECURSE
  "CMakeFiles/hsfi_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hsfi_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/hsfi_sim.dir/log.cpp.o"
  "CMakeFiles/hsfi_sim.dir/log.cpp.o.d"
  "CMakeFiles/hsfi_sim.dir/simulator.cpp.o"
  "CMakeFiles/hsfi_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/hsfi_sim.dir/time.cpp.o"
  "CMakeFiles/hsfi_sim.dir/time.cpp.o.d"
  "libhsfi_sim.a"
  "libhsfi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsfi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
