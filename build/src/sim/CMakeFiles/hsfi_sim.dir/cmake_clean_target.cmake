file(REMOVE_RECURSE
  "libhsfi_sim.a"
)
