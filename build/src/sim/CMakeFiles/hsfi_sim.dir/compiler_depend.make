# Empty compiler generated dependencies file for hsfi_sim.
# This may be replaced when dependencies are built.
