# Empty compiler generated dependencies file for hsfi_link.
# This may be replaced when dependencies are built.
