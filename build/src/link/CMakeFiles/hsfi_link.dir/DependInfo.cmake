
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/link/channel.cpp" "src/link/CMakeFiles/hsfi_link.dir/channel.cpp.o" "gcc" "src/link/CMakeFiles/hsfi_link.dir/channel.cpp.o.d"
  "/root/repo/src/link/symbol.cpp" "src/link/CMakeFiles/hsfi_link.dir/symbol.cpp.o" "gcc" "src/link/CMakeFiles/hsfi_link.dir/symbol.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hsfi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
