file(REMOVE_RECURSE
  "libhsfi_link.a"
)
