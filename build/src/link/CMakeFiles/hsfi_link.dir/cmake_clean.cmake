file(REMOVE_RECURSE
  "CMakeFiles/hsfi_link.dir/channel.cpp.o"
  "CMakeFiles/hsfi_link.dir/channel.cpp.o.d"
  "CMakeFiles/hsfi_link.dir/symbol.cpp.o"
  "CMakeFiles/hsfi_link.dir/symbol.cpp.o.d"
  "libhsfi_link.a"
  "libhsfi_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsfi_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
