file(REMOVE_RECURSE
  "libhsfi_host.a"
)
