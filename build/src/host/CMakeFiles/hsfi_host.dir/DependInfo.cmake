
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/frame.cpp" "src/host/CMakeFiles/hsfi_host.dir/frame.cpp.o" "gcc" "src/host/CMakeFiles/hsfi_host.dir/frame.cpp.o.d"
  "/root/repo/src/host/node.cpp" "src/host/CMakeFiles/hsfi_host.dir/node.cpp.o" "gcc" "src/host/CMakeFiles/hsfi_host.dir/node.cpp.o.d"
  "/root/repo/src/host/ping.cpp" "src/host/CMakeFiles/hsfi_host.dir/ping.cpp.o" "gcc" "src/host/CMakeFiles/hsfi_host.dir/ping.cpp.o.d"
  "/root/repo/src/host/traffic.cpp" "src/host/CMakeFiles/hsfi_host.dir/traffic.cpp.o" "gcc" "src/host/CMakeFiles/hsfi_host.dir/traffic.cpp.o.d"
  "/root/repo/src/host/udp.cpp" "src/host/CMakeFiles/hsfi_host.dir/udp.cpp.o" "gcc" "src/host/CMakeFiles/hsfi_host.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hsfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/hsfi_link.dir/DependInfo.cmake"
  "/root/repo/build/src/myrinet/CMakeFiles/hsfi_myrinet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
