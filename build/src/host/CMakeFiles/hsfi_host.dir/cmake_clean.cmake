file(REMOVE_RECURSE
  "CMakeFiles/hsfi_host.dir/frame.cpp.o"
  "CMakeFiles/hsfi_host.dir/frame.cpp.o.d"
  "CMakeFiles/hsfi_host.dir/node.cpp.o"
  "CMakeFiles/hsfi_host.dir/node.cpp.o.d"
  "CMakeFiles/hsfi_host.dir/ping.cpp.o"
  "CMakeFiles/hsfi_host.dir/ping.cpp.o.d"
  "CMakeFiles/hsfi_host.dir/traffic.cpp.o"
  "CMakeFiles/hsfi_host.dir/traffic.cpp.o.d"
  "CMakeFiles/hsfi_host.dir/udp.cpp.o"
  "CMakeFiles/hsfi_host.dir/udp.cpp.o.d"
  "libhsfi_host.a"
  "libhsfi_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsfi_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
