# Empty compiler generated dependencies file for hsfi_host.
# This may be replaced when dependencies are built.
