
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fc/enc8b10b.cpp" "src/fc/CMakeFiles/hsfi_fc.dir/enc8b10b.cpp.o" "gcc" "src/fc/CMakeFiles/hsfi_fc.dir/enc8b10b.cpp.o.d"
  "/root/repo/src/fc/fabric.cpp" "src/fc/CMakeFiles/hsfi_fc.dir/fabric.cpp.o" "gcc" "src/fc/CMakeFiles/hsfi_fc.dir/fabric.cpp.o.d"
  "/root/repo/src/fc/frame.cpp" "src/fc/CMakeFiles/hsfi_fc.dir/frame.cpp.o" "gcc" "src/fc/CMakeFiles/hsfi_fc.dir/frame.cpp.o.d"
  "/root/repo/src/fc/port.cpp" "src/fc/CMakeFiles/hsfi_fc.dir/port.cpp.o" "gcc" "src/fc/CMakeFiles/hsfi_fc.dir/port.cpp.o.d"
  "/root/repo/src/fc/sequence.cpp" "src/fc/CMakeFiles/hsfi_fc.dir/sequence.cpp.o" "gcc" "src/fc/CMakeFiles/hsfi_fc.dir/sequence.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hsfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/hsfi_link.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
