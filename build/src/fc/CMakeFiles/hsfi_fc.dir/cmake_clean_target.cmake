file(REMOVE_RECURSE
  "libhsfi_fc.a"
)
