file(REMOVE_RECURSE
  "CMakeFiles/hsfi_fc.dir/enc8b10b.cpp.o"
  "CMakeFiles/hsfi_fc.dir/enc8b10b.cpp.o.d"
  "CMakeFiles/hsfi_fc.dir/fabric.cpp.o"
  "CMakeFiles/hsfi_fc.dir/fabric.cpp.o.d"
  "CMakeFiles/hsfi_fc.dir/frame.cpp.o"
  "CMakeFiles/hsfi_fc.dir/frame.cpp.o.d"
  "CMakeFiles/hsfi_fc.dir/port.cpp.o"
  "CMakeFiles/hsfi_fc.dir/port.cpp.o.d"
  "CMakeFiles/hsfi_fc.dir/sequence.cpp.o"
  "CMakeFiles/hsfi_fc.dir/sequence.cpp.o.d"
  "libhsfi_fc.a"
  "libhsfi_fc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsfi_fc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
