# Empty dependencies file for hsfi_fc.
# This may be replaced when dependencies are built.
