file(REMOVE_RECURSE
  "CMakeFiles/hsfi_netlist.dir/injector_board.cpp.o"
  "CMakeFiles/hsfi_netlist.dir/injector_board.cpp.o.d"
  "CMakeFiles/hsfi_netlist.dir/resources.cpp.o"
  "CMakeFiles/hsfi_netlist.dir/resources.cpp.o.d"
  "libhsfi_netlist.a"
  "libhsfi_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsfi_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
