# Empty compiler generated dependencies file for hsfi_netlist.
# This may be replaced when dependencies are built.
