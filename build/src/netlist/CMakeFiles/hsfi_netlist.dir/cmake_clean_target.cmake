file(REMOVE_RECURSE
  "libhsfi_netlist.a"
)
