
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/capture.cpp" "src/core/CMakeFiles/hsfi_core.dir/capture.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/capture.cpp.o.d"
  "/root/repo/src/core/command_plane.cpp" "src/core/CMakeFiles/hsfi_core.dir/command_plane.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/command_plane.cpp.o.d"
  "/root/repo/src/core/crc_repatch.cpp" "src/core/CMakeFiles/hsfi_core.dir/crc_repatch.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/crc_repatch.cpp.o.d"
  "/root/repo/src/core/device.cpp" "src/core/CMakeFiles/hsfi_core.dir/device.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/device.cpp.o.d"
  "/root/repo/src/core/fifo_injector.cpp" "src/core/CMakeFiles/hsfi_core.dir/fifo_injector.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/fifo_injector.cpp.o.d"
  "/root/repo/src/core/injector_config.cpp" "src/core/CMakeFiles/hsfi_core.dir/injector_config.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/injector_config.cpp.o.d"
  "/root/repo/src/core/rtl_fifo_injector.cpp" "src/core/CMakeFiles/hsfi_core.dir/rtl_fifo_injector.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/rtl_fifo_injector.cpp.o.d"
  "/root/repo/src/core/sequencer.cpp" "src/core/CMakeFiles/hsfi_core.dir/sequencer.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/sequencer.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/hsfi_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/uart.cpp" "src/core/CMakeFiles/hsfi_core.dir/uart.cpp.o" "gcc" "src/core/CMakeFiles/hsfi_core.dir/uart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/hsfi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/link/CMakeFiles/hsfi_link.dir/DependInfo.cmake"
  "/root/repo/build/src/myrinet/CMakeFiles/hsfi_myrinet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
