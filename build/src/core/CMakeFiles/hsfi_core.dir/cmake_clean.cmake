file(REMOVE_RECURSE
  "CMakeFiles/hsfi_core.dir/capture.cpp.o"
  "CMakeFiles/hsfi_core.dir/capture.cpp.o.d"
  "CMakeFiles/hsfi_core.dir/command_plane.cpp.o"
  "CMakeFiles/hsfi_core.dir/command_plane.cpp.o.d"
  "CMakeFiles/hsfi_core.dir/crc_repatch.cpp.o"
  "CMakeFiles/hsfi_core.dir/crc_repatch.cpp.o.d"
  "CMakeFiles/hsfi_core.dir/device.cpp.o"
  "CMakeFiles/hsfi_core.dir/device.cpp.o.d"
  "CMakeFiles/hsfi_core.dir/fifo_injector.cpp.o"
  "CMakeFiles/hsfi_core.dir/fifo_injector.cpp.o.d"
  "CMakeFiles/hsfi_core.dir/injector_config.cpp.o"
  "CMakeFiles/hsfi_core.dir/injector_config.cpp.o.d"
  "CMakeFiles/hsfi_core.dir/rtl_fifo_injector.cpp.o"
  "CMakeFiles/hsfi_core.dir/rtl_fifo_injector.cpp.o.d"
  "CMakeFiles/hsfi_core.dir/sequencer.cpp.o"
  "CMakeFiles/hsfi_core.dir/sequencer.cpp.o.d"
  "CMakeFiles/hsfi_core.dir/stats.cpp.o"
  "CMakeFiles/hsfi_core.dir/stats.cpp.o.d"
  "CMakeFiles/hsfi_core.dir/uart.cpp.o"
  "CMakeFiles/hsfi_core.dir/uart.cpp.o.d"
  "libhsfi_core.a"
  "libhsfi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsfi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
