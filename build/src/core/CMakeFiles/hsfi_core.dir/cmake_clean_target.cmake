file(REMOVE_RECURSE
  "libhsfi_core.a"
)
