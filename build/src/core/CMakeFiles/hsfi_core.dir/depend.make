# Empty dependencies file for hsfi_core.
# This may be replaced when dependencies are built.
