// Tests for the closed-loop adaptive campaign controller: Wilson interval
// statistics, bisection convergence and run-efficiency, coverage-driven
// allocation and stopping, controller determinism (JSONL byte-identical
// across worker counts and invocations), and the JSONL control-character
// escaping contract the strategy field relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "adaptive/controller.hpp"
#include "adaptive/stats.hpp"
#include "adaptive/strategy.hpp"
#include "myrinet/control.hpp"
#include "nftape/faults.hpp"
#include "orchestrator/jsonl.hpp"
#include "orchestrator/runner.hpp"

namespace hsfi::adaptive {
namespace {

using analysis::Manifestation;
using myrinet::ControlSymbol;
using sim::microseconds;
using sim::milliseconds;

// ---------------------------------------------------------------------------
// Wilson interval statistics (src/adaptive/stats.hpp)

TEST(WilsonTest, ZeroTrialsIsVacuous) {
  const auto w = wilson_interval(0, 0);
  EXPECT_EQ(w.lo, 0.0);
  EXPECT_EQ(w.hi, 1.0);
  EXPECT_EQ(w.rate, 0.0);
}

TEST(WilsonTest, ZeroTrialsNeverProducesNaN) {
  // Regression: n == 0 must take the documented full-width [0, 1] branch,
  // not divide by n. Every field has to be finite for the stopping rules
  // (NaN comparisons are all false, which would wedge a cell open forever).
  const auto w = wilson_interval(0, 0);
  EXPECT_TRUE(std::isfinite(w.lo));
  EXPECT_TRUE(std::isfinite(w.hi));
  EXPECT_TRUE(std::isfinite(w.rate));
  EXPECT_TRUE(std::isfinite(wilson_upper(0, 0)));
  EXPECT_TRUE(std::isfinite(wilson_lower(0, 0)));
}

TEST(WilsonTest, SuccessesAboveTrialsIsRejected) {
  // Regression: p > 1 drives the score discriminant negative and the whole
  // interval to NaN; reject instead of returning poison.
  EXPECT_THROW((void)wilson_interval(3, 2), std::invalid_argument);
  EXPECT_THROW((void)wilson_interval(1, 0), std::invalid_argument);
  EXPECT_THROW((void)wilson_upper(11, 10), std::invalid_argument);
  EXPECT_THROW((void)wilson_lower(11, 10), std::invalid_argument);
}

TEST(WilsonTest, NeverZeroWidthAtBoundaries) {
  // The property the coverage stopping rule depends on: 0/n must leave a
  // nonzero upper bound (the class might still exist) and n/n a lower
  // bound below 1. The Wald interval fails both.
  for (const std::uint64_t n : {1u, 10u, 100u, 10000u}) {
    const auto zero = wilson_interval(0, n);
    EXPECT_EQ(zero.lo, 0.0);
    EXPECT_GT(zero.hi, 0.0) << "0/" << n;
    const auto all = wilson_interval(n, n);
    EXPECT_LT(all.lo, 1.0) << n << "/" << n;
    EXPECT_NEAR(all.hi, 1.0, 1e-12);
  }
}

TEST(WilsonTest, ContainsPointEstimateAndShrinksWithN) {
  double last_width = 1.0;
  for (const std::uint64_t n : {4u, 16u, 64u, 256u, 4096u}) {
    const auto w = wilson_interval(n / 4, n);
    EXPECT_LE(w.lo, w.rate);
    EXPECT_GE(w.hi, w.rate);
    EXPECT_NEAR(w.rate, 0.25, 1e-12);
    const double width = w.hi - w.lo;
    EXPECT_LT(width, last_width) << "interval must tighten as n grows";
    last_width = width;
  }
}

TEST(WilsonTest, KnownValue) {
  // 10/100 at z=1.96: the textbook Wilson interval is about [5.5%, 17.4%].
  const auto w = wilson_interval(10, 100);
  EXPECT_NEAR(w.lo, 0.0552, 5e-4);
  EXPECT_NEAR(w.hi, 0.1744, 5e-4);
}

TEST(WilsonTest, FormatIsByteStable) {
  EXPECT_EQ(format_rate_ci(1, 8), "1/8 = 12.5% [2.2%, 47.1%]");
  EXPECT_EQ(format_rate_ci(0, 0), "0/0 = -");
  const std::string zero = format_rate_ci(0, 50);
  EXPECT_EQ(zero.rfind("0/50 = 0.0% [0.0%, ", 0), 0u) << zero;
}

// ---------------------------------------------------------------------------
// Synthetic observation plumbing shared by the strategy tests.

Observation observe_run(const RunRequest& req, std::uint32_t round,
                        bool manifests, std::uint64_t injections = 40) {
  Observation o;
  o.request = req;
  o.round = round;
  o.ok = true;
  o.injections = injections;
  if (manifests) {
    o.manifestations[Manifestation::kCrcDropped] = injections / 2;
    o.manifestations[Manifestation::kMasked] = injections - injections / 2;
  } else {
    o.manifestations[Manifestation::kMasked] = injections;
  }
  return o;
}

/// Drives `strategy` with a per-cell threshold plant: a request manifests
/// iff pred(cell_index, knob_value). Returns total runs issued.
template <typename Pred>
std::size_t drive(Strategy& strategy, Pred pred, std::uint32_t max_rounds) {
  std::size_t total = 0;
  for (std::uint32_t round = 0; round < max_rounds; ++round) {
    const auto requests = strategy.next_round(round);
    if (requests.empty()) return total;
    total += requests.size();
    std::vector<Observation> obs;
    obs.reserve(requests.size());
    for (const auto& req : requests) {
      obs.push_back(observe_run(req, round, pred(req.cell, req.knob_value)));
    }
    strategy.observe(obs);
  }
  return total;
}

std::vector<Cell> grid_cells(std::uint32_t faults, std::uint32_t directions) {
  std::vector<Cell> cells;
  for (std::uint32_t f = 0; f < faults; ++f) {
    for (std::uint32_t d = 0; d < directions; ++d) cells.push_back({f, d});
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Fixed grid strategy

TEST(FixedGridTest, OneRoundGridThenConverged) {
  FixedGridConfig config;
  config.knob_values = {10.0, 20.0};
  config.replicates = 3;
  FixedGridStrategy strategy(grid_cells(2, 2), config);

  const auto round0 = strategy.next_round(0);
  ASSERT_EQ(round0.size(), 4u * 2u * 3u);
  // Cell-major, knob-major, replicate-minor: replicate ordinals (and so
  // seeds) are positional within each (cell, knob) group.
  EXPECT_EQ(round0[0].cell, (Cell{0, 0}));
  EXPECT_EQ(round0[0].knob_value, 10.0);
  EXPECT_EQ(round0[2].knob_value, 10.0);
  EXPECT_EQ(round0[3].knob_value, 20.0);
  EXPECT_EQ(round0[6].cell, (Cell{0, 1}));

  strategy.observe({});
  EXPECT_TRUE(strategy.next_round(1).empty());
}

// ---------------------------------------------------------------------------
// Bisection strategy

TEST(BisectionTest, LocatesThresholdWithinTolerance) {
  BisectionConfig config;
  config.lo = 0.0;
  config.hi = 256.0;
  config.tolerance = 2.0;
  config.higher_is_more_intense = true;
  const auto cells = grid_cells(2, 2);
  BisectionStrategy strategy(cells, config);

  // Planted per-cell thresholds: manifests iff knob >= threshold.
  const double thresholds[] = {17.5, 100.1, 201.7, 255.0};
  drive(
      strategy,
      [&](const Cell& cell, double knob) {
        const std::size_t i = cell.fault * 2 + cell.direction;
        return knob >= thresholds[i];
      },
      64);

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& t = strategy.thresholds()[i];
    ASSERT_TRUE(t.found) << "cell " << i;
    EXPECT_TRUE(t.converged) << "cell " << i;
    // The bracket straddles the planted threshold and is within tolerance.
    EXPECT_LE(t.masked_at, thresholds[i]);
    EXPECT_GE(t.manifested_at, thresholds[i]);
    EXPECT_LE(t.manifested_at - t.masked_at, strategy.tolerance());
    EXPECT_NEAR(t.estimate(), thresholds[i], strategy.tolerance());
  }
}

TEST(BisectionTest, InvertedAxisLocatesThreshold) {
  // kUdpIntervalUs-style axis: smaller knob = more intense. Manifests iff
  // knob <= 130.9.
  BisectionConfig config;
  config.lo = 12.0;
  config.hi = 396.0;
  config.tolerance = 6.0;
  config.higher_is_more_intense = false;
  BisectionStrategy strategy({{0, 0}}, config);

  drive(strategy, [](const Cell&, double knob) { return knob <= 130.9; }, 64);

  const auto& t = strategy.thresholds()[0];
  ASSERT_TRUE(t.found);
  EXPECT_TRUE(t.converged);
  EXPECT_LE(t.manifested_at, 130.9);  // the manifesting side is the low side
  EXPECT_GE(t.masked_at, 130.9);
  EXPECT_NEAR(t.estimate(), 130.9, strategy.tolerance());
}

TEST(BisectionTest, UsesAtMostHalfTheGridRuns) {
  // The ISSUE acceptance criterion: threshold located with <= 50% of the
  // runs an exhaustive grid at the same resolution would take.
  BisectionConfig config;
  config.lo = 0.0;
  config.hi = 384.0;
  config.tolerance = 6.0;
  const auto cells = grid_cells(2, 2);
  BisectionStrategy strategy(cells, config);

  const double thresholds[] = {57.3, 130.9, 211.4, 333.7};
  const std::size_t runs = drive(
      strategy,
      [&](const Cell& cell, double knob) {
        return knob >= thresholds[cell.fault * 2 + cell.direction];
      },
      64);

  const std::size_t grid =
      strategy.grid_equivalent_runs_per_cell() * cells.size();
  EXPECT_LE(runs * 2, grid) << runs << " bisection runs vs " << grid
                            << " grid runs";
  for (const auto& t : strategy.thresholds()) {
    EXPECT_TRUE(t.found && t.converged);
  }
}

TEST(BisectionTest, AllMaskedCellReportsNotFound) {
  BisectionConfig config;
  config.lo = 0.0;
  config.hi = 64.0;
  config.tolerance = 1.0;
  BisectionStrategy strategy({{0, 0}}, config);

  drive(strategy, [](const Cell&, double) { return false; }, 64);

  const auto& t = strategy.thresholds()[0];
  EXPECT_FALSE(t.found);
  EXPECT_TRUE(std::isnan(t.manifested_at));
  // Two endpoint probes were enough to call it.
  EXPECT_EQ(t.runs, 2u);
}

TEST(BisectionTest, AllManifestedCellConvergesImmediately) {
  BisectionConfig config;
  config.lo = 0.0;
  config.hi = 64.0;
  config.tolerance = 1.0;
  BisectionStrategy strategy({{0, 0}}, config);

  drive(strategy, [](const Cell&, double) { return true; }, 64);

  const auto& t = strategy.thresholds()[0];
  EXPECT_TRUE(t.found);
  EXPECT_TRUE(std::isnan(t.masked_at));
  EXPECT_EQ(t.runs, 2u);
}

TEST(BisectionTest, MinManifestedRejectsFlukes) {
  // One manifested firing out of 40 must not count as "manifests" when
  // min_manifested is 3: the cell looks all-masked.
  BisectionConfig config;
  config.lo = 0.0;
  config.hi = 64.0;
  config.tolerance = 1.0;
  config.min_manifested = 3;
  BisectionStrategy strategy({{0, 0}}, config);

  for (std::uint32_t round = 0; round < 64; ++round) {
    const auto requests = strategy.next_round(round);
    if (requests.empty()) break;
    std::vector<Observation> obs;
    for (const auto& req : requests) {
      Observation o = observe_run(req, round, false);
      o.manifestations[Manifestation::kMasked] -= 1;
      o.manifestations[Manifestation::kMisrouted] += 1;  // a single fluke
      obs.push_back(o);
    }
    strategy.observe(obs);
  }
  EXPECT_FALSE(strategy.thresholds()[0].found);
}

// ---------------------------------------------------------------------------
// Coverage strategy

TEST(CoverageTest, AllocatesOnlyToOpenCells) {
  CoverageConfig config;
  config.knob_value = 12.0;
  config.target_count = 3;
  config.batch_replicates = 2;
  const auto cells = grid_cells(2, 1);
  CoverageStrategy strategy(cells, config);

  const auto round0 = strategy.next_round(0);
  ASSERT_EQ(round0.size(), 2u * 2u);  // both cells open
  for (const auto& req : round0) EXPECT_EQ(req.knob_value, 12.0);

  // Cell 0 reaches the target on every class; cell 1 stays short.
  std::vector<Observation> obs;
  for (const auto& req : round0) {
    Observation o;
    o.request = req;
    o.ok = true;
    o.injections = 40;
    if (req.cell.fault == 0) {
      for (const auto m : analysis::all_manifestations()) {
        o.manifestations[m] = 5;
      }
    } else {
      o.manifestations[Manifestation::kMasked] = 40;
    }
    obs.push_back(o);
  }
  strategy.observe(obs);

  EXPECT_FALSE(strategy.cell_open(0));
  EXPECT_TRUE(strategy.cell_open(1));
  const auto round1 = strategy.next_round(1);
  ASSERT_EQ(round1.size(), 2u);  // only cell 1
  for (const auto& req : round1) EXPECT_EQ(req.cell, (Cell{1, 0}));
}

TEST(CoverageTest, WilsonStoppingDeclaresRareClassHopeless) {
  CoverageConfig config;
  config.knob_value = 1.0;
  config.target_count = 5;
  config.batch_replicates = 1;
  config.min_injections = 256;
  config.hopeless_rate = 0.01;
  CoverageStrategy strategy({{0, 0}}, config);

  // Rounds of 512 injections, everything lands in crc_dropped (satisfied
  // quickly) — misrouted stays at zero until the Wilson upper bound on
  // 0/512 drops under 1% and the cell closes instead of looping forever.
  std::uint32_t rounds = 0;
  for (std::uint32_t round = 0; round < 32; ++round) {
    const auto requests = strategy.next_round(round);
    if (requests.empty()) break;
    ++rounds;
    std::vector<Observation> obs;
    for (const auto& req : requests) {
      Observation o;
      o.request = req;
      o.round = round;
      o.ok = true;
      o.injections = 512;
      o.manifestations[Manifestation::kCrcDropped] = 512;
      obs.push_back(o);
    }
    strategy.observe(obs);
  }

  EXPECT_FALSE(strategy.cell_open(0));
  EXPECT_LT(rounds, 32u) << "cell must close, not exhaust the round cap";
  EXPECT_EQ(strategy.coverage(0, Manifestation::kCrcDropped),
            ClassCoverage::kSatisfied);
  EXPECT_EQ(strategy.coverage(0, Manifestation::kMisrouted),
            ClassCoverage::kHopeless);
  // 0/512 Wilson upper bound is indeed below the 1% hopeless rate.
  EXPECT_LT(wilson_upper(0, strategy.cell_injections(0)), config.hopeless_rate);
  // The masked class is never chased: no observations needed.
  EXPECT_EQ(strategy.coverage(0, Manifestation::kMasked),
            ClassCoverage::kSatisfied);
}

TEST(CoverageTest, FailedRunsContributeNothing) {
  CoverageConfig config;
  config.target_count = 1;
  config.batch_replicates = 1;
  CoverageStrategy strategy({{0, 0}}, config);

  const auto round0 = strategy.next_round(0);
  ASSERT_EQ(round0.size(), 1u);
  Observation o;
  o.request = round0[0];
  o.ok = false;  // timed out: counters must not be folded in
  o.injections = 500;
  o.manifestations[Manifestation::kCrcDropped] = 500;
  strategy.observe({o});
  EXPECT_EQ(strategy.cell_injections(0), 0u);
  EXPECT_TRUE(strategy.cell_open(0));
}

// ---------------------------------------------------------------------------
// Controller determinism: byte-identical JSONL across worker counts and
// repeated invocations, for a bisection and a coverage campaign.

AdaptiveSpec controller_spec() {
  AdaptiveSpec spec;
  spec.name = "determinism";
  spec.faults = {
      {"gap-go", nftape::control_symbol_corruption(ControlSymbol::kGap,
                                                   ControlSymbol::kGo)},
      {"seu", nftape::random_bit_flip_seu(0x00FF)},
  };
  spec.directions = {orchestrator::FaultDirection::kFromSwitch,
                     orchestrator::FaultDirection::kBoth};
  spec.base_seed = 7;
  spec.max_rounds = 24;
  return spec;
}

/// Deterministic synthetic executor: manifestation iff the interval knob
/// is at or below a per-seed threshold — a pure function of the RunSpec,
/// so records depend only on (round, cell, replicate) keys, never on
/// which worker ran them.
nftape::CampaignResult synthetic_executor(const orchestrator::RunSpec& run,
                                          const nftape::RunControl&) {
  nftape::CampaignResult r;
  r.name = run.campaign.name;
  r.messages_sent = 200 + run.seed % 17;
  r.messages_received = r.messages_sent;
  r.injections = 30 + run.seed % 11;
  r.events_executed = 1000;
  const double interval_us =
      sim::to_microseconds(run.campaign.workload.udp_interval);
  const double threshold = 100.0 + static_cast<double>(run.seed % 64);
  if (interval_us <= threshold) {
    r.manifestations[analysis::Manifestation::kCrcDropped] = r.injections - 5;
    r.manifestations[analysis::Manifestation::kMisrouted] =
        run.seed % 3 == 0 ? 2 : 0;
    r.manifestations[analysis::Manifestation::kMasked] =
        r.injections - r.manifestations.total();
  } else {
    r.manifestations[analysis::Manifestation::kMasked] = r.injections;
  }
  return r;
}

std::string run_campaign_jsonl(const std::string& which, std::size_t workers) {
  AdaptiveSpec spec = controller_spec();
  ControllerConfig config;
  config.runner.workers = workers;
  config.runner.executor = synthetic_executor;
  Controller controller(spec, std::move(config));

  std::string jsonl;
  CampaignOutcome outcome;
  if (which == "bisect") {
    BisectionConfig bc;
    bc.lo = 12.0;
    bc.hi = 396.0;
    bc.tolerance = 12.0;
    bc.higher_is_more_intense = false;
    BisectionStrategy strategy(controller.cells(), bc);
    outcome = controller.run(strategy);
  } else {
    CoverageConfig cc;
    cc.knob_value = 50.0;
    cc.target_count = 4;
    cc.batch_replicates = 2;
    cc.min_injections = 128;
    CoverageStrategy strategy(controller.cells(), cc);
    outcome = controller.run(strategy);
  }
  EXPECT_FALSE(outcome.records.empty());
  for (const auto& rec : outcome.records) {
    jsonl += orchestrator::to_jsonl(rec);
    jsonl += '\n';
  }
  return jsonl;
}

TEST(ControllerDeterminismTest, BisectionJsonlIdenticalAcrossWorkerCounts) {
  const std::string w1 = run_campaign_jsonl("bisect", 1);
  const std::string w8 = run_campaign_jsonl("bisect", 8);
  EXPECT_EQ(w1, w8);
  // Repeated invocation, same config: byte-identical too.
  EXPECT_EQ(w1, run_campaign_jsonl("bisect", 1));
  // Round/strategy provenance is present.
  EXPECT_NE(w1.find("\"strategy\":\"bisect\""), std::string::npos);
  EXPECT_NE(w1.find("\"round\":1"), std::string::npos);
}

TEST(ControllerDeterminismTest, CoverageJsonlIdenticalAcrossWorkerCounts) {
  const std::string w1 = run_campaign_jsonl("coverage", 1);
  const std::string w8 = run_campaign_jsonl("coverage", 8);
  EXPECT_EQ(w1, w8);
  EXPECT_EQ(w1, run_campaign_jsonl("coverage", 1));
  EXPECT_NE(w1.find("\"strategy\":\"coverage\""), std::string::npos);
}

TEST(ControllerTest, SeedsDependOnRoundCellReplicateOnly) {
  AdaptiveSpec spec = controller_spec();
  Controller controller(spec, {});
  // Two probes of the same cell at different knob values in one round get
  // the same replicate ordinal — a matched pair differing only in the knob.
  const std::vector<RunRequest> requests = {{{0, 0}, 396.0}, {{0, 0}, 12.0},
                                            {{0, 1}, 396.0}, {{0, 1}, 12.0}};
  const auto runs = controller.expand_round(requests, 3, 10, "bisect");
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0].seed, runs[1].seed);
  EXPECT_NE(runs[0].seed, runs[2].seed);
  EXPECT_EQ(runs[0].seed, derive_run_seed(spec.base_seed, 3, 0, 0, 0));
  EXPECT_EQ(runs[0].index, 10u);
  EXPECT_EQ(runs[3].index, 13u);
  for (const auto& run : runs) {
    EXPECT_EQ(run.round, 3u);
    EXPECT_EQ(run.strategy, "bisect");
  }
  // Same cell, same knob, twice: now the replicate ordinal advances.
  const auto reps = controller.expand_round({{{0, 0}, 12.0}, {{0, 0}, 12.0}},
                                            3, 0, "bisect");
  EXPECT_NE(reps[0].seed, reps[1].seed);
  EXPECT_EQ(reps[1].seed, derive_run_seed(spec.base_seed, 3, 0, 0, 1));
}

TEST(ControllerTest, MaxTotalRunsSkipsWholeRounds) {
  AdaptiveSpec spec = controller_spec();
  spec.max_total_runs = 5;  // round 0 needs 8 runs (4 cells x 2 endpoints)
  ControllerConfig config;
  config.runner.workers = 2;
  config.runner.executor = synthetic_executor;
  Controller controller(spec, std::move(config));
  BisectionConfig bc;
  bc.lo = 12.0;
  bc.hi = 396.0;
  bc.higher_is_more_intense = false;
  BisectionStrategy strategy(controller.cells(), bc);
  const auto outcome = controller.run(strategy);
  // Partial rounds would break the batch-determinism contract, so nothing
  // ran at all.
  EXPECT_TRUE(outcome.records.empty());
  EXPECT_FALSE(outcome.converged);
}

// ---------------------------------------------------------------------------
// Checkpoint replay: a resumed campaign re-derives the replayed rounds,
// verifies them, and continues byte-identically — or refuses on drift.

std::vector<std::vector<ReplayRecord>> replay_prefix(
    const std::vector<orchestrator::RunRecord>& records, std::uint32_t rounds) {
  std::vector<std::vector<ReplayRecord>> replay(rounds);
  for (const auto& rec : records) {
    if (rec.round >= rounds) continue;
    ReplayRecord r;
    r.name = rec.name;
    r.ok = rec.outcome == orchestrator::RunOutcome::kOk;
    r.injections = rec.result.injections;
    r.duplicates = rec.result.duplicates();
    r.manifestations = rec.result.manifestations;
    replay[rec.round].push_back(std::move(r));
  }
  return replay;
}

CampaignOutcome run_bisect(const std::vector<std::vector<ReplayRecord>>& replay,
                           std::size_t workers = 4) {
  ControllerConfig config;
  config.runner.workers = workers;
  config.runner.executor = synthetic_executor;
  Controller controller(controller_spec(), std::move(config));
  BisectionConfig bc;
  bc.lo = 12.0;
  bc.hi = 396.0;
  bc.tolerance = 12.0;
  bc.higher_is_more_intense = false;
  BisectionStrategy strategy(controller.cells(), bc);
  return controller.run(strategy, replay);
}

TEST(ControllerReplayTest, ResumeContinuesByteIdentical) {
  const auto full = run_bisect({});
  ASSERT_GT(full.rounds, 2u);
  ASSERT_FALSE(full.records.empty());

  for (const std::uint32_t cut : {1u, 2u}) {
    const auto replay = replay_prefix(full.records, cut);
    std::size_t replayed = 0;
    for (const auto& round : replay) replayed += round.size();

    const auto resumed = run_bisect(replay, /*workers=*/1);
    EXPECT_EQ(resumed.replayed, replayed);
    EXPECT_EQ(resumed.rounds, full.rounds);
    EXPECT_EQ(resumed.converged, full.converged);
    // The executed tail is exactly the uninterrupted campaign's records
    // past the cut, byte for byte.
    ASSERT_EQ(resumed.records.size(), full.records.size() - replayed);
    for (std::size_t i = 0; i < resumed.records.size(); ++i) {
      EXPECT_EQ(orchestrator::to_jsonl(resumed.records[i]),
                orchestrator::to_jsonl(full.records[replayed + i]));
    }
    // Replayed rounds still reach the accumulator.
    ASSERT_EQ(resumed.cells.cells().size(), full.cells.cells().size());
    for (const auto& [key, stats] : full.cells.cells()) {
      const auto* got = resumed.cells.find(key);
      ASSERT_NE(got, nullptr) << key;
      EXPECT_EQ(got->runs, stats.runs) << key;
      EXPECT_EQ(got->injections, stats.injections) << key;
      EXPECT_EQ(got->manifestations.total(), stats.manifestations.total())
          << key;
    }
  }
}

TEST(ControllerReplayTest, FullReplayExecutesNothing) {
  const auto full = run_bisect({});
  const auto resumed = run_bisect(replay_prefix(full.records, full.rounds));
  EXPECT_TRUE(resumed.records.empty());
  EXPECT_EQ(resumed.replayed, full.records.size());
  EXPECT_EQ(resumed.rounds, full.rounds);
  EXPECT_TRUE(resumed.converged);
}

TEST(ControllerReplayTest, DriftIsRefused) {
  const auto full = run_bisect({});

  // A record whose name does not match what the strategy re-derives: the
  // spec changed since the checkpoint — splicing would mix two campaigns.
  auto renamed = replay_prefix(full.records, 1);
  renamed[0][0].name = "someone-else/both/i42.0/r0";
  EXPECT_THROW((void)run_bisect(renamed), ReplayMismatch);

  // A round with the wrong record count.
  auto short_round = replay_prefix(full.records, 1);
  short_round[0].pop_back();
  EXPECT_THROW((void)run_bisect(short_round), ReplayMismatch);

  // More durable rounds than the strategy re-derives (it converges first).
  auto overlong = replay_prefix(full.records, full.rounds);
  overlong.push_back(overlong.back());
  EXPECT_THROW((void)run_bisect(overlong), ReplayMismatch);
}

// ---------------------------------------------------------------------------
// nftape knobs: the scalar dials the strategies steer.

TEST(KnobTest, NamesRoundTrip) {
  for (const auto k : {nftape::Knob::kSeuLfsrBits, nftape::Knob::kUdpIntervalUs,
                       nftape::Knob::kBurstSize}) {
    EXPECT_EQ(nftape::parse_knob(nftape::to_string(k)), k);
  }
  EXPECT_FALSE(nftape::parse_knob("bogus").has_value());
}

TEST(KnobTest, ApplyKnobQuantizes) {
  nftape::CampaignSpec spec;
  nftape::apply_knob(spec, nftape::Knob::kUdpIntervalUs, 130.5);
  EXPECT_EQ(spec.workload.udp_interval, sim::nanoseconds(130500));
  nftape::apply_knob(spec, nftape::Knob::kUdpIntervalUs, 0.0);
  EXPECT_EQ(spec.workload.udp_interval, sim::nanoseconds(1)) << "never zero";
  nftape::apply_knob(spec, nftape::Knob::kBurstSize, 3.7);
  EXPECT_EQ(spec.workload.burst_size, 4u);

  // kSeuLfsrBits rewrites the mask of every installed fault direction.
  spec.fault_to_switch = nftape::random_bit_flip_seu(0xFFFF);
  spec.fault_from_switch = nftape::random_bit_flip_seu(0xFFFF);
  nftape::apply_knob(spec, nftape::Knob::kSeuLfsrBits, 8.0);
  EXPECT_EQ(spec.fault_to_switch->lfsr_mask, 0x00FFu);
  EXPECT_EQ(spec.fault_from_switch->lfsr_mask, 0x00FFu);
  nftape::apply_knob(spec, nftape::Knob::kSeuLfsrBits, 0.0);
  EXPECT_EQ(spec.fault_to_switch->lfsr_mask, 0x0000u);
}

// ---------------------------------------------------------------------------
// JSONL escaping: the strategy field is caller-controlled, so every control
// character must leave the emitter as \u00XX, never raw.

TEST(JsonEscapeTest, AllControlCharactersEscaped) {
  for (int c = 0; c < 0x20; ++c) {
    const std::string raw(1, static_cast<char>(c));
    const std::string escaped = orchestrator::json_escape(raw);
    // No raw control byte survives.
    for (const char ch : escaped) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u)
          << "raw control byte 0x" << std::hex << c << " leaked";
    }
    // The common shorthands or the \u00XX form, never empty.
    EXPECT_GE(escaped.size(), 2u) << "control 0x" << std::hex << c;
    EXPECT_EQ(escaped[0], '\\') << "control 0x" << std::hex << c;
    if (c == '\n') {
      EXPECT_EQ(escaped, "\\n");
    }
    if (c == '\t') {
      EXPECT_EQ(escaped, "\\t");
    }
    if (c == '\r') {
      EXPECT_EQ(escaped, "\\r");
    }
  }
  EXPECT_EQ(orchestrator::json_escape("\x01"), "\\u0001");
  EXPECT_EQ(orchestrator::json_escape("\x1f"), "\\u001f");
  EXPECT_EQ(orchestrator::json_escape("\""), "\\\"");
  EXPECT_EQ(orchestrator::json_escape("\\"), "\\\\");
  EXPECT_EQ(orchestrator::json_escape("plain"), "plain");
}

TEST(JsonEscapeTest, RecordWithControlCharsInStrategyStaysOneLine) {
  orchestrator::RunRecord rec;
  rec.index = 0;
  rec.name = "cell/with\nnewline";
  rec.strategy = "bi\tsect\x01";
  rec.round = 2;
  rec.outcome = orchestrator::RunOutcome::kOk;
  const std::string line = orchestrator::to_jsonl(rec);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find('\t'), std::string::npos);
  EXPECT_EQ(line.find('\x01'), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
  EXPECT_NE(line.find("\\u0001"), std::string::npos);
  EXPECT_NE(line.find("\"round\":2"), std::string::npos);
}

}  // namespace
}  // namespace hsfi::adaptive
