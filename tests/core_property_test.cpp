// Property-based tests for the injector core: stream conservation, order
// preservation, exact pipeline latency, replace idempotence, repatch
// validity for arbitrary corruption, and capture bounds.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "core/capture.hpp"
#include "core/crc_repatch.hpp"
#include "core/fifo_injector.hpp"
#include "myrinet/control.hpp"
#include "myrinet/crc8.hpp"
#include "myrinet/packet.hpp"
#include "sim/rng.hpp"

namespace hsfi::core {
namespace {

using link::Symbol;

std::vector<Symbol> random_stream(std::uint64_t seed, int n,
                                  double control_fraction = 0.0) {
  sim::Rng rng(seed);
  std::vector<Symbol> v;
  v.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const bool control = rng.uniform() < control_fraction;
    auto b = static_cast<std::uint8_t>(rng.next_u32());
    if (control && b == 0x00) b = 0x0C;  // avoid synthesizing IDLE
    v.push_back(Symbol{b, control});
  }
  return v;
}

std::vector<Symbol> run_through(FifoInjector& inj,
                                const std::vector<Symbol>& in) {
  std::vector<Symbol> out;
  for (const auto s : in) {
    const auto r = inj.clock(s);
    if (r.out && !is_idle_character(*r.out)) out.push_back(*r.out);
  }
  while (inj.pending_payload()) {
    const auto r = inj.clock(std::nullopt);
    if (r.out && !is_idle_character(*r.out)) out.push_back(*r.out);
  }
  return out;
}

class InjectorSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(InjectorSeedSweep, DisabledInjectorIsAnExactWire) {
  FifoInjector inj;
  const auto in = random_stream(static_cast<std::uint64_t>(GetParam()), 3000,
                                0.2);
  EXPECT_EQ(run_through(inj, in), in);
  EXPECT_EQ(inj.stats().injections, 0u);
}

TEST_P(InjectorSeedSweep, EveryCharacterExitsExactlyLatencyLater) {
  FifoInjector::Params params;
  params.latency_chars = 12;
  FifoInjector inj(params);
  const auto in = random_stream(static_cast<std::uint64_t>(GetParam()) + 50,
                                500);
  std::size_t out_index = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    const auto r = inj.clock(in[i]);
    if (r.out) {
      // The character exiting at step i entered at step i - latency.
      ASSERT_EQ(*r.out, in[out_index]);
      EXPECT_EQ(i - out_index, params.latency_chars);
      ++out_index;
    }
  }
}

TEST_P(InjectorSeedSweep, ReplaceCorruptionIsIdempotentAcrossDevices) {
  // Two identical replace-mode injectors in series: the second sees the
  // already-replaced stream. Replacing again yields the same bytes, so the
  // series output equals the single-device output.
  const auto make = [] {
    FifoInjector inj;
    auto& cfg = inj.config();
    cfg.match_mode = MatchMode::kOn;
    cfg.corrupt_mode = CorruptMode::kReplace;
    cfg.compare_data = 0x000000AA;
    cfg.compare_mask = 0x000000FF;
    cfg.compare_ctl = 0x0;
    cfg.compare_ctl_mask = 0x1;
    cfg.corrupt_data = 0x000000AA;  // fixed point: AA stays AA
    cfg.corrupt_mask = 0x000000FF;
    return inj;
  };
  const auto in = random_stream(static_cast<std::uint64_t>(GetParam()) + 77,
                                1000);
  FifoInjector first = make();
  const auto once = run_through(first, in);
  FifoInjector second = make();
  EXPECT_EQ(run_through(second, once), once);
}

TEST_P(InjectorSeedSweep, ToggleCorruptionCountsMatchInjections) {
  FifoInjector inj;
  auto& cfg = inj.config();
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_data = 0x000000C3;
  cfg.compare_mask = 0x000000FF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0x1;
  cfg.corrupt_data = 0x00000001;  // flip the low bit of matched characters
  const auto in = random_stream(static_cast<std::uint64_t>(GetParam()) + 99,
                                4000);
  const auto out = run_through(inj, in);
  ASSERT_EQ(out.size(), in.size());
  std::uint64_t diffs = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (!(out[i] == in[i])) {
      ++diffs;
      EXPECT_EQ(out[i].data, in[i].data ^ 0x01);
    }
  }
  EXPECT_EQ(diffs, inj.stats().injections);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InjectorSeedSweep, ::testing::Range(1, 9));

// ------------------------------------------------ CRC repatch property

class RepatchSweep : public ::testing::TestWithParam<int> {};

TEST_P(RepatchSweep, AnyBodyCorruptionYieldsAValidCrcFrame) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) + 11);
  myrinet::Packet p;
  p.payload.resize(32 + rng.below(64));
  for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next_u32());
  auto bytes = myrinet::serialize(p);
  // Corrupt up to three body bytes (not the CRC) before the repatcher.
  for (int k = 0; k < 3; ++k) {
    bytes[rng.below(static_cast<std::uint32_t>(bytes.size()) - 1)] ^=
        static_cast<std::uint8_t>(1u << rng.below(8));
  }
  CrcRepatcher repatch;
  std::vector<std::uint8_t> out_frame;
  for (const auto b : bytes) {
    for (const auto s : repatch.feed(link::data_symbol(b), true)) {
      out_frame.push_back(s.data);
    }
  }
  for (const auto s :
       repatch.feed(myrinet::to_symbol(myrinet::ControlSymbol::kGap), true)) {
    if (!s.control) out_frame.push_back(s.data);
  }
  ASSERT_EQ(out_frame.size(), bytes.size());
  // The repatched frame passes the link CRC.
  const std::span<const std::uint8_t> body(out_frame.data(),
                                           out_frame.size() - 1);
  EXPECT_EQ(myrinet::crc8(body), out_frame.back());
  EXPECT_EQ(repatch.frames_patched(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepatchSweep, ::testing::Range(1, 9));

// ------------------------------------------------ capture bounds

TEST(CapturePropertyTest, EventsBoundedAndContextsSized) {
  CaptureBuffer::Params params;
  params.pre_context = 8;
  params.post_context = 8;
  params.max_events = 4;
  CaptureBuffer cap(params);
  sim::Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    if (rng.chance(0.05)) cap.trigger(i);
    cap.feed(link::data_symbol(static_cast<std::uint8_t>(i)), i);
  }
  EXPECT_LE(cap.events().size(), params.max_events);
  for (const auto& e : cap.events()) {
    EXPECT_LE(e.before.size(), params.pre_context);
    EXPECT_EQ(e.after.size(), params.post_context);
  }
}

TEST(CapturePropertyTest, ClearEmptiesEverything) {
  CaptureBuffer cap;
  cap.trigger(0);
  for (int i = 0; i < 64; ++i) {
    cap.feed(link::data_symbol(static_cast<std::uint8_t>(i)), i);
  }
  EXPECT_FALSE(cap.events().empty());
  cap.clear();
  EXPECT_TRUE(cap.events().empty());
  EXPECT_NE(cap.render().find("no capture events"), std::string::npos);
}

}  // namespace
}  // namespace hsfi::core
