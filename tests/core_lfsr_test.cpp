// Tests for the random (SEU-style) trigger: the 16-bit LFSR thins compare
// hits to a configurable rate, deterministically and reproducibly.
#include <gtest/gtest.h>

#include "core/fifo_injector.hpp"
#include "nftape/faults.hpp"

namespace hsfi::core {
namespace {

std::uint64_t injections_for_mask(std::uint16_t mask, int characters) {
  FifoInjector inj;
  inj.config() = nftape::random_bit_flip_seu(mask);
  for (int i = 0; i < characters; ++i) {
    inj.clock(link::data_symbol(static_cast<std::uint8_t>(i)));
  }
  return inj.stats().injections;
}

TEST(LfsrTriggerTest, MaskZeroFiresOnEveryMatch) {
  EXPECT_EQ(injections_for_mask(0x0000, 1000), 1000u);
}

TEST(LfsrTriggerTest, RateScalesWithMaskWidth) {
  const auto r4 = injections_for_mask(0x000F, 64'000);   // ~1/16
  const auto r8 = injections_for_mask(0x00FF, 64'000);   // ~1/256
  // Within a factor of two of the nominal rates (the LFSR is pseudo-random,
  // not exactly uniform over short windows).
  EXPECT_NEAR(static_cast<double>(r4), 64'000.0 / 16, 64'000.0 / 32);
  EXPECT_NEAR(static_cast<double>(r8), 64'000.0 / 256, 64'000.0 / 512);
  EXPECT_GT(r4, r8 * 4);
}

TEST(LfsrTriggerTest, DeterministicAcrossRuns) {
  EXPECT_EQ(injections_for_mask(0x001F, 10'000),
            injections_for_mask(0x001F, 10'000));
}

TEST(LfsrTriggerTest, LfsrDoesNotGateInjectNow) {
  FifoInjector inj;
  inj.config().lfsr_mask = 0xFFFF;  // trigger essentially never
  inj.config().corrupt_mode = CorruptMode::kToggle;
  inj.config().corrupt_data = 0x000000FF;
  for (int i = 0; i < 4; ++i) inj.clock(link::data_symbol(0x10));
  inj.inject_now();
  inj.clock(link::data_symbol(0x20));
  EXPECT_EQ(inj.stats().forced, 1u);
  EXPECT_EQ(inj.stats().injections, 1u);
}

TEST(LfsrTriggerTest, SerialCommandProgramsMask) {
  const auto cfg = nftape::random_bit_flip_seu(0x00FF);
  const auto cmds = nftape::to_serial_commands(cfg, Direction::kLeftToRight);
  bool found = false;
  for (const auto& c : cmds) {
    if (c == "LFSR L 00FF") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hsfi::core
