// Fuzz tests for the serial command plane: random byte streams must never
// crash the decoder, never corrupt an armed configuration, and every
// well-formed line among the noise must still be answered.
#include <gtest/gtest.h>

#include <string>

#include "core/command_plane.hpp"
#include "core/device.hpp"
#include "core/uart.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hsfi::core {
namespace {

struct Rig {
  sim::Simulator sim;
  InjectorDevice device{sim, "fi0", {}};
  Uart uart{sim};
  CommHandler comm{sim, uart, device};
};

class DecoderFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DecoderFuzz, RandomBytesNeverCrashAndAckCountsStayConsistent) {
  Rig rig;
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) + 3);
  for (int i = 0; i < 20'000; ++i) {
    rig.uart.rs232_write(static_cast<std::uint8_t>(rng.next_u32()));
    if (i % 512 == 0) rig.sim.run();
  }
  rig.sim.run();
  const auto& stats = rig.comm.decoder().stats();
  // Every terminated non-empty line is either OK'd or ERR'd; random bytes
  // essentially never form a valid command, but the counters must be
  // internally consistent and the device must still respond afterwards.
  EXPECT_GE(stats.commands_err + stats.commands_ok, 0u);

  SerialControlHost host(rig.sim, rig.uart);
  // Serial discipline: flush the decoder's partial line and drain its
  // response before issuing commands (the unsolicited ERR is ignored by
  // the idle host).
  rig.uart.rs232_write('\n');
  rig.sim.run();
  std::string answer;
  host.send_command("PING", [&answer](std::vector<std::string> lines) {
    answer = lines.front();
  });
  rig.sim.run();
  EXPECT_EQ(answer, "PONG") << "decoder wedged by fuzz input";
}

TEST_P(DecoderFuzz, NoiseCannotArmTheInjector) {
  // Random printable garbage (no 'M'/'I' so MODE/INJN cannot form): the
  // injector must remain disarmed no matter what arrives.
  Rig rig;
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) + 91);
  const char alphabet[] = "ABCDEFGHJKLOPQRSTUVWXYZ0123456789 \r\n";
  for (int i = 0; i < 20'000; ++i) {
    const char c = alphabet[rng.below(sizeof alphabet - 1)];
    rig.uart.rs232_write(static_cast<std::uint8_t>(c));
    if (i % 512 == 0) rig.sim.run();
  }
  rig.sim.run();
  EXPECT_EQ(rig.device.config(Direction::kLeftToRight).match_mode,
            MatchMode::kOff);
  EXPECT_EQ(rig.device.config(Direction::kRightToLeft).match_mode,
            MatchMode::kOff);
}

TEST_P(DecoderFuzz, ValidCommandSurvivesSurroundingNoise) {
  Rig rig;
  SerialControlHost host(rig.sim, rig.uart);
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) + 55);
  // Leading garbage, newline-terminated, then drained: the decoder's ERR
  // for the garbage line lands while the host is idle and is discarded.
  for (int i = 0; i < 200; ++i) {
    rig.uart.rs232_write(static_cast<std::uint8_t>(rng.next_u32() | 0x80));
  }
  rig.uart.rs232_write('\n');
  rig.sim.run();
  bool ok = false;
  host.send_command("CMPD L CAFEBABE", [&ok](std::vector<std::string> lines) {
    ok = lines.back() == "OK";
  });
  rig.sim.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(rig.device.config(Direction::kLeftToRight).compare_data,
            0xCAFEBABEu);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Range(1, 7));

TEST(DecoderFuzzTest, OverlongLineIsBoundedAndRecovered) {
  Rig rig;
  SerialControlHost host(rig.sim, rig.uart);
  // A 4 kB line without terminator must be truncated safely...
  for (int i = 0; i < 4096; ++i) rig.uart.rs232_write('A');
  rig.uart.rs232_write('\n');
  rig.sim.run();  // the unsolicited ERR drains while the host is idle
  // ...and the decoder still answers afterwards.
  std::string answer;
  host.send_command("PING", [&answer](std::vector<std::string> lines) {
    answer = lines.front();
  });
  rig.sim.run();
  EXPECT_EQ(answer, "PONG");
}

}  // namespace
}  // namespace hsfi::core
