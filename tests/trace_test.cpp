// Tests for the event-trace integration: the testbed's entities record
// mapping rounds, configuration applications, and long timeouts into an
// attached TraceLog.
#include <gtest/gtest.h>

#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"
#include "sim/log.hpp"

namespace hsfi::nftape {
namespace {

using sim::milliseconds;

TEST(TraceTest, MappingRoundsAndConfigAppear) {
  TestbedConfig config;
  config.map_period = milliseconds(20);
  config.map_reply_window = milliseconds(2);
  Testbed bed(config);
  sim::TraceLog trace(sim::LogLevel::kInfo);
  bed.set_trace(&trace);
  bed.start();
  bed.settle(milliseconds(80));
  bed.injector().apply(core::Direction::kLeftToRight,
                       udp_word_swap_have_to_veha());
  bed.settle(milliseconds(5));

  const auto text = trace.render();
  EXPECT_NE(text.find("mapping round"), std::string::npos);
  EXPECT_NE(text.find("installs map"), std::string::npos);
  EXPECT_NE(text.find("configured: MODE ON"), std::string::npos);
  EXPECT_NE(text.find("CMPD 48617665"), std::string::npos);
}

TEST(TraceTest, ThresholdSuppressesInfo) {
  TestbedConfig config;
  config.map_period = milliseconds(20);
  Testbed bed(config);
  sim::TraceLog trace(sim::LogLevel::kError);
  bed.set_trace(&trace);
  bed.start();
  bed.settle(milliseconds(80));
  EXPECT_TRUE(trace.records().empty());
}

TEST(TraceTest, SinkReceivesRecordsLive) {
  TestbedConfig config;
  config.map_period = milliseconds(20);
  Testbed bed(config);
  sim::TraceLog trace(sim::LogLevel::kInfo);
  int live = 0;
  trace.set_sink([&live](const sim::LogRecord&) { ++live; });
  bed.set_trace(&trace);
  bed.start();
  bed.settle(milliseconds(80));
  EXPECT_GT(live, 0);
  EXPECT_EQ(static_cast<std::size_t>(live), trace.records().size());
}

TEST(TraceTest, LongTimeoutLogsWarning) {
  // Wedge a path on a raw switch (header byte, no GAP) with a trace
  // attached: the reclaim must log at WARN.
  sim::Simulator simr;
  myrinet::Switch::Config sc;
  sc.long_timeout = sim::microseconds(100);
  myrinet::Switch sw(simr, "sw", sc);
  sim::TraceLog trace(sim::LogLevel::kWarn);
  sw.set_trace(&trace);
  link::DuplexLink c0(simr, "c0", sim::picoseconds(12'500),
                      sim::nanoseconds(5));
  link::DuplexLink c1(simr, "c1", sim::picoseconds(12'500),
                      sim::nanoseconds(5));
  sw.attach_port(0, c0.a_to_b(), c0.b_to_a());
  sw.attach_port(1, c1.a_to_b(), c1.b_to_a());
  c0.a_to_b().transmit(
      link::data_symbol(myrinet::route_to_host(1)));  // headless
  simr.run_until(sim::milliseconds(1));
  const auto text = trace.render();
  EXPECT_NE(text.find("long-period timeout"), std::string::npos);
  EXPECT_NE(text.find("WARN"), std::string::npos);
}

}  // namespace
}  // namespace hsfi::nftape
