// Parameterized configuration sweeps: flow control must remain lossless
// under contention across slack-buffer geometries and timeout settings —
// the invariant the whole Table 4 methodology rests on (faults, not
// configuration, cause loss).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "link/channel.hpp"
#include "myrinet/host_iface.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/switch.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {
namespace {

using sim::nanoseconds;
using sim::picoseconds;

constexpr sim::Duration kPeriod = picoseconds(12'500);

/// (slack capacity, high watermark, low watermark)
using SlackGeometry = std::tuple<int, int, int>;

class SlackGeometrySweep : public ::testing::TestWithParam<SlackGeometry> {};

TEST_P(SlackGeometrySweep, ConvergecastIsLosslessWhenHeadroomCoversInFlight) {
  const auto [capacity, high, low] = GetParam();
  Switch::Config sc;
  sc.slack.capacity = static_cast<std::size_t>(capacity);
  sc.slack.high_watermark = static_cast<std::size_t>(high);
  sc.slack.low_watermark = static_cast<std::size_t>(low);

  sim::Simulator simr;
  Switch sw(simr, "sw", sc);
  std::vector<std::unique_ptr<link::DuplexLink>> cables;
  std::vector<std::unique_ptr<HostInterface>> nics;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    cables.push_back(std::make_unique<link::DuplexLink>(
        simr, "c" + std::to_string(i), kPeriod, nanoseconds(5)));
    HostInterface::Config nc;
    nc.rx_processing_time = nanoseconds(100);
    nics.push_back(std::make_unique<HostInterface>(
        simr, "n" + std::to_string(i), nc));
    nics[i]->attach(cables[i]->b_to_a(), cables[i]->a_to_b());
    sw.attach_port(i, cables[i]->a_to_b(), cables[i]->b_to_a());
    nics[i]->on_deliver(
        [&delivered](Delivered, sim::SimTime) { ++delivered; });
  }

  // Nodes 0 and 1 blast node 2 with back-to-back large packets.
  const std::vector<std::uint8_t> big(700, 0x3C);
  for (int k = 0; k < 15; ++k) {
    Packet p;
    p.route = {route_to_host(2)};
    p.type = kTypeData;
    p.payload = big;
    nics[0]->send(p);
    nics[1]->send(p);
  }
  simr.run();

  EXPECT_EQ(delivered, 30u) << "capacity=" << capacity << " high=" << high;
  EXPECT_EQ(sw.port_stats(0).slack_overflow, 0u);
  EXPECT_EQ(sw.port_stats(1).slack_overflow, 0u);
  EXPECT_EQ(nics[2]->stats().crc_errors, 0u);
  // Flow control actually engaged (the sweep is not vacuous).
  EXPECT_GT(sw.port_stats(0).flow_stops_sent +
                sw.port_stats(1).flow_stops_sent,
            0u);
}

// Headroom (capacity - high) must cover the post-STOP in-flight data
// (transmit chunk 32 + wire-ahead 64 + flow latency); all these geometries
// satisfy that with margin.
INSTANTIATE_TEST_SUITE_P(
    Geometries, SlackGeometrySweep,
    ::testing::Values(SlackGeometry{512, 256, 64},   // default
                      SlackGeometry{512, 320, 64},   // late STOP
                      SlackGeometry{512, 256, 160},  // early GO
                      SlackGeometry{1024, 512, 128},  // double buffer
                      SlackGeometry{384, 192, 64},   // small buffer
                      SlackGeometry{512, 128, 32})); // very early STOP

class TimeoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(TimeoutSweep, HeldPathReclaimTimeTracksLongTimeout) {
  const auto timeout_us = GetParam();
  Switch::Config sc;
  sc.long_timeout = sim::microseconds(timeout_us);
  sim::Simulator simr;
  Switch sw(simr, "sw", sc);
  link::DuplexLink c0(simr, "c0", kPeriod, nanoseconds(5));
  link::DuplexLink c1(simr, "c1", kPeriod, nanoseconds(5));
  HostInterface::Config nc;
  nc.rx_processing_time = nanoseconds(100);
  HostInterface n0(simr, "n0", nc);
  HostInterface n1(simr, "n1", nc);
  n0.attach(c0.b_to_a(), c0.a_to_b());
  sw.attach_port(0, c0.a_to_b(), c0.b_to_a());
  n1.attach(c1.b_to_a(), c1.a_to_b());
  sw.attach_port(1, c1.a_to_b(), c1.b_to_a());

  // Wedge the path at t=0, then check the reclaim happened in
  // [timeout, timeout + margin).
  c0.a_to_b().transmit(link::data_symbol(route_to_host(1)));
  simr.run_until(sim::microseconds(timeout_us) - sim::microseconds(1));
  EXPECT_EQ(sw.port_stats(0).long_timeouts, 0u) << "fired early";
  simr.run_until(sim::microseconds(timeout_us) + sim::microseconds(2));
  EXPECT_EQ(sw.port_stats(0).long_timeouts, 1u) << "fired late";
}

INSTANTIATE_TEST_SUITE_P(Timeouts, TimeoutSweep,
                         ::testing::Values(50, 100, 500, 2000));

}  // namespace
}  // namespace hsfi::myrinet
