// Unit tests for the manifestation-analysis subsystem: the taxonomy,
// breakdown arithmetic, the metrics registry, and the analyzer's
// chronological correlation (matching, masking, windows, coalescing,
// reconciliation against the authoritative firing count).
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "analysis/manifestation.hpp"
#include "analysis/metrics.hpp"

namespace hsfi::analysis {
namespace {

TEST(ManifestationTest, NamesAndKeysAreStable) {
  EXPECT_EQ(to_string(Manifestation::kMasked), "masked");
  EXPECT_EQ(to_string(Manifestation::kCrcDropped), "crc_dropped");
  EXPECT_EQ(to_string(Manifestation::kPayloadCorruptedDelivered),
            "payload_corrupted_delivered");
  EXPECT_EQ(jsonl_key(Manifestation::kTimeout), "m_timeout");
  EXPECT_EQ(jsonl_key(Manifestation::kMappingDisruption),
            "m_mapping_disruption");
  // Every class has a distinct name and key.
  for (const auto a : all_manifestations()) {
    for (const auto b : all_manifestations()) {
      if (a == b) continue;
      EXPECT_NE(to_string(a), to_string(b));
      EXPECT_NE(jsonl_key(a), jsonl_key(b));
    }
  }
}

TEST(ManifestationTest, BreakdownSumsAndAccumulates) {
  ManifestationBreakdown b;
  EXPECT_EQ(b.total(), 0u);
  b[Manifestation::kCrcDropped] = 3;
  b[Manifestation::kMasked] = 2;
  EXPECT_EQ(b.total(), 5u);

  ManifestationBreakdown c;
  c[Manifestation::kCrcDropped] = 1;
  c[Manifestation::kTimeout] = 4;
  b += c;
  EXPECT_EQ(b[Manifestation::kCrcDropped], 4u);
  EXPECT_EQ(b[Manifestation::kTimeout], 4u);
  EXPECT_EQ(b.total(), 10u);
}

TEST(ManifestationTest, DescribeLeadsWithFailuresAndMaskedLast) {
  ManifestationBreakdown b;
  EXPECT_EQ(describe(b), "-");
  b[Manifestation::kMasked] = 7;
  b[Manifestation::kCrcDropped] = 2;
  EXPECT_EQ(describe(b), "crc_dropped:2 masked:7");
}

TEST(HistogramTest, BucketsValuesAtInclusiveUpperBounds) {
  Histogram h({sim::microseconds(1), sim::milliseconds(1)});
  h.add(sim::microseconds(1));   // == first bound: first bucket
  h.add(sim::microseconds(2));   // second bucket
  h.add(sim::milliseconds(5));   // overflow bucket
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), sim::microseconds(1));
  EXPECT_EQ(h.max(), sim::milliseconds(5));
}

TEST(HistogramTest, MergeAccumulatesMatchingBounds) {
  Histogram a({sim::microseconds(1)});
  Histogram b({sim::microseconds(1)});
  a.add(sim::nanoseconds(100));
  b.add(sim::microseconds(9));
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), sim::nanoseconds(100));
  EXPECT_EQ(a.max(), sim::microseconds(9));
  // Mismatched bounds are ignored rather than mixed.
  Histogram c({sim::milliseconds(1)});
  c.add(sim::microseconds(1));
  a.merge(c);
  EXPECT_EQ(a.count(), 2u);
}

TEST(MetricsRegistryTest, CountersAndHistogramsCreateOnFirstUse) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.counter_value("x"), 0u);
  reg.counter("x") += 3;
  EXPECT_EQ(reg.counter_value("x"), 3u);
  EXPECT_EQ(reg.find_histogram("lat"), nullptr);
  reg.histogram("lat").add(sim::microseconds(2));
  ASSERT_NE(reg.find_histogram("lat"), nullptr);
  EXPECT_EQ(reg.find_histogram("lat")->count(), 1u);
  const std::string text = reg.render();
  EXPECT_NE(text.find("x=3"), std::string::npos);
  EXPECT_NE(text.find("lat (n=1):"), std::string::npos);
  reg.clear();
  EXPECT_EQ(reg.counter_value("x"), 0u);
  EXPECT_EQ(reg.find_histogram("lat"), nullptr);
}

TEST(AnalyzerTest, MatchesEachInjectionToEarliestFollowingObservation) {
  ManifestationAnalyzer a;
  a.record_injection(sim::milliseconds(10));
  a.record_injection(sim::milliseconds(20));
  a.record_observation(sim::milliseconds(11), Manifestation::kCrcDropped);
  a.record_observation(sim::milliseconds(21), Manifestation::kTimeout);
  const auto out = a.finalize(0, sim::milliseconds(100), 2);
  EXPECT_EQ(out.breakdown[Manifestation::kCrcDropped], 1u);
  EXPECT_EQ(out.breakdown[Manifestation::kTimeout], 1u);
  EXPECT_EQ(out.breakdown[Manifestation::kMasked], 0u);
  EXPECT_EQ(out.breakdown.total(), 2u);
  EXPECT_EQ(out.secondary_effects, 0u);
  EXPECT_EQ(out.latency.count(), 2u);
  EXPECT_EQ(out.latency.max(), sim::milliseconds(1));
}

TEST(AnalyzerTest, UnmatchedInjectionIsMaskedAndExtraObservationIsSecondary) {
  ManifestationAnalyzer a;
  a.record_injection(sim::milliseconds(10));
  a.record_injection(sim::milliseconds(20));
  // One firing cascades into two effects; the second firing shows nothing.
  a.record_observation(sim::milliseconds(11), Manifestation::kCrcDropped, 1);
  a.record_observation(sim::milliseconds(12), Manifestation::kDroppedOther, 2);
  const auto out = a.finalize(0, sim::milliseconds(100), 2);
  EXPECT_EQ(out.breakdown[Manifestation::kCrcDropped], 1u);
  // ms 12 observation precedes the ms 20 injection, so it can never match:
  // it is a cascade (secondary), and injection 2 is masked.
  EXPECT_EQ(out.breakdown[Manifestation::kDroppedOther], 0u);
  EXPECT_EQ(out.breakdown[Manifestation::kMasked], 1u);
  EXPECT_EQ(out.breakdown.total(), 2u);
  EXPECT_EQ(out.secondary_effects, 1u);
}

TEST(AnalyzerTest, CorrelationWindowBoundsAttribution) {
  ManifestationAnalyzer::Config cfg;
  cfg.correlation_window = sim::milliseconds(5);
  ManifestationAnalyzer a(cfg);
  a.record_injection(sim::milliseconds(10));
  a.record_observation(sim::milliseconds(16), Manifestation::kCrcDropped);
  const auto out = a.finalize(0, sim::milliseconds(100), 1);
  EXPECT_EQ(out.breakdown[Manifestation::kMasked], 1u);
  EXPECT_EQ(out.breakdown.total(), 1u);
  EXPECT_EQ(out.secondary_effects, 1u);
}

TEST(AnalyzerTest, MeasurementWindowFiltersBothStreams) {
  ManifestationAnalyzer a;
  // Before the window (exactly at begin is excluded, matching snapshot
  // delta semantics) and after the end: both ignored.
  a.record_injection(sim::milliseconds(10));
  a.record_injection(sim::milliseconds(50));
  a.record_injection(sim::milliseconds(200));
  a.record_observation(sim::milliseconds(9), Manifestation::kCrcDropped);
  a.record_observation(sim::milliseconds(51), Manifestation::kTimeout);
  const auto out =
      a.finalize(sim::milliseconds(10), sim::milliseconds(100), 1);
  EXPECT_EQ(out.breakdown[Manifestation::kTimeout], 1u);
  EXPECT_EQ(out.breakdown.total(), 1u);
  EXPECT_EQ(out.secondary_effects, 0u);
}

TEST(AnalyzerTest, ReconciliationPadsMaskedToExpectedCount) {
  ManifestationAnalyzer a;
  a.record_injection(sim::milliseconds(10));
  a.record_observation(sim::milliseconds(11), Manifestation::kMarkerError);
  // The device's own counter says 4 firings; 3 timestamps never surfaced.
  const auto out = a.finalize(0, sim::milliseconds(100), 4);
  EXPECT_EQ(out.breakdown[Manifestation::kMarkerError], 1u);
  EXPECT_EQ(out.breakdown[Manifestation::kMasked], 3u);
  EXPECT_EQ(out.breakdown.total(), 4u);
}

TEST(AnalyzerTest, ReconciliationClampsSurplusTimestamps) {
  ManifestationAnalyzer a;
  a.record_injection(sim::milliseconds(10));
  a.record_injection(sim::milliseconds(20));
  a.record_injection(sim::milliseconds(30));
  a.record_observation(sim::milliseconds(11), Manifestation::kCrcDropped);
  // Counter delta says only 2 firings happened in the window.
  const auto out = a.finalize(0, sim::milliseconds(100), 2);
  EXPECT_EQ(out.breakdown.total(), 2u);
  EXPECT_EQ(out.breakdown[Manifestation::kCrcDropped], 1u);
  EXPECT_EQ(out.breakdown[Manifestation::kMasked], 1u);
}

TEST(AnalyzerTest, CoalescesLineRateRepeatsFromOneSource) {
  ManifestationAnalyzer a;
  // A slack overflow drops symbols every 12.5 ns; one episode, not 100
  // observations.
  for (int i = 0; i < 100; ++i) {
    a.record_observation(sim::milliseconds(10) + i * sim::picoseconds(12'500),
                         Manifestation::kDroppedOther, 200);
  }
  EXPECT_EQ(a.observations_recorded(), 1u);
  // A different source at the same time is kept separate.
  a.record_observation(sim::milliseconds(10), Manifestation::kDroppedOther,
                       201);
  EXPECT_EQ(a.observations_recorded(), 2u);
  // A gap wider than the coalesce interval starts a new episode.
  a.record_observation(sim::milliseconds(12), Manifestation::kDroppedOther,
                       200);
  EXPECT_EQ(a.observations_recorded(), 3u);
}

TEST(AnalyzerTest, ClearDropsAllState) {
  ManifestationAnalyzer a;
  a.record_injection(sim::milliseconds(1));
  a.record_observation(sim::milliseconds(2), Manifestation::kCrcDropped);
  a.clear();
  EXPECT_EQ(a.injections_recorded(), 0u);
  EXPECT_EQ(a.observations_recorded(), 0u);
  const auto out = a.finalize(0, sim::milliseconds(100), 0);
  EXPECT_EQ(out.breakdown.total(), 0u);
}

}  // namespace
}  // namespace hsfi::analysis
