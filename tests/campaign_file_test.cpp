// Tests for the declarative campaign-file layer: the strict JSON document
// parser, schema validation (unknown keys anywhere are errors), default /
// override layering, per-target seed derivation, and the determinism of
// expand_campaign — the property sharded execution stands on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "nftape/medium.hpp"
#include "orchestrator/campaign_file.hpp"
#include "orchestrator/json_value.hpp"
#include "orchestrator/sweep.hpp"
#include "scenario/scenario.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace hsfi::orchestrator {
namespace {

using sim::microseconds;
using sim::milliseconds;
using sim::nanoseconds;

// ---------------------------------------------------------------------------
// JSON document parser (src/orchestrator/json_value.hpp)

TEST(JsonValueTest, ParsesScalarsArraysAndNesting) {
  const auto doc = parse_json(
      R"({"a": 1, "b": [true, null, "xA\n"], "c": {"d": -2.5}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->kind, JsonValue::Kind::kObject);

  std::uint64_t a = 0;
  ASSERT_NE(doc->find("a"), nullptr);
  EXPECT_TRUE(doc->find("a")->as_u64(a));
  EXPECT_EQ(a, 1u);

  const auto* b = doc->find("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_EQ(b->items[0].kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(b->items[0].boolean);
  EXPECT_EQ(b->items[1].kind, JsonValue::Kind::kNull);
  EXPECT_EQ(b->items[2].text, "xA\n");  // A decodes to 'A'

  const auto* d = doc->find("c")->find("d");
  ASSERT_NE(d, nullptr);
  double val = 0;
  EXPECT_TRUE(d->as_double(val));
  EXPECT_EQ(val, -2.5);
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(parse_json(R"({"a": 1, "a": 2})", &error).has_value());
  EXPECT_NE(error.find("duplicate key"), std::string::npos) << error;

  EXPECT_FALSE(parse_json(R"({"a": 1} trailing)", &error).has_value());
  EXPECT_FALSE(parse_json("{\"a\": \"raw\tcontrol\"}", &error).has_value());
  EXPECT_FALSE(parse_json(R"({"a": )", &error).has_value());
  EXPECT_FALSE(parse_json("", &error).has_value());

  // Depth bomb: past the recursion cap the parser must bail, not crash.
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += '[';
  EXPECT_FALSE(parse_json(deep, &error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos) << error;
}

TEST(JsonValueTest, U64IsExactAtTheBoundary) {
  // Seeds are full-range uint64; a double round-trip would corrupt them.
  const auto doc = parse_json(R"({"max": 18446744073709551615})");
  ASSERT_TRUE(doc.has_value());
  std::uint64_t v = 0;
  ASSERT_TRUE(doc->find("max")->as_u64(v));
  EXPECT_EQ(v, 18446744073709551615ull);

  // Fractions, signs, and exponents are not integers.
  for (const char* text :
       {R"({"v": 1.5})", R"({"v": -1})", R"({"v": 1e3})",
        R"({"v": 18446744073709551616})", R"({"v": "7"})"}) {
    const auto bad = parse_json(text);
    ASSERT_TRUE(bad.has_value()) << text;
    std::uint64_t out = 0;
    EXPECT_FALSE(bad->find("v")->as_u64(out)) << text;
  }
}

// ---------------------------------------------------------------------------
// Campaign-file schema

TEST(CampaignFileTest, MinimalSpecResolvesCliDefaults) {
  const auto file = parse_campaign_file(
      R"({"name": "mini", "targets": [{"medium": "fc"}]})");
  EXPECT_EQ(file.name, "mini");
  EXPECT_EQ(file.base_seed, 1u);
  EXPECT_EQ(file.checkpoint_batch, 8u);
  EXPECT_FALSE(file.strategy.has_value());
  ASSERT_EQ(file.targets.size(), 1u);

  const auto& t = file.targets[0];
  EXPECT_EQ(t.name, "fc");  // defaults to the medium string
  EXPECT_EQ(t.sweep.base.medium, nftape::Medium::kFc);
  // The full FC fault axis when "faults" is absent.
  EXPECT_EQ(t.sweep.faults.size(),
            standard_fault_axis(nftape::Medium::kFc).size());
  // CLI sweep base values carried over.
  EXPECT_EQ(t.sweep.base.duration, milliseconds(60));
  EXPECT_EQ(t.sweep.base.workload.udp_interval, microseconds(12));
  EXPECT_EQ(t.sweep.replicates, 2u);
  EXPECT_EQ(t.sweep.directions.size(), 2u);
  // Target seed is derived from (file seed, ordinal), not the file seed
  // itself — targets must draw disjoint seed streams.
  EXPECT_EQ(t.sweep.base_seed, sim::derive_seed(1, 0));
}

TEST(CampaignFileTest, DefaultsOverlayThenTargetOverrides) {
  const auto file = parse_campaign_file(R"({
    "name": "layered", "seed": 9,
    "defaults": {"replicates": 3, "duration_ms": 7.5, "udp_interval_us": 48},
    "targets": [
      {"name": "a", "medium": "myrinet", "faults": ["gap-go"]},
      {"name": "b", "medium": "myrinet", "replicates": 1,
       "directions": ["to-switch"]}
    ]})");
  ASSERT_EQ(file.targets.size(), 2u);
  const auto& a = file.targets[0].sweep;
  const auto& b = file.targets[1].sweep;
  EXPECT_EQ(a.replicates, 3u);
  EXPECT_EQ(b.replicates, 1u);  // target wins over defaults
  // Fractional milliseconds land exactly on the picosecond grid.
  EXPECT_EQ(a.base.duration, nanoseconds(7'500'000));
  EXPECT_EQ(b.base.duration, nanoseconds(7'500'000));
  EXPECT_EQ(a.base.workload.udp_interval, microseconds(48));
  ASSERT_EQ(a.faults.size(), 1u);
  EXPECT_EQ(a.faults[0].name, "gap-go");
  ASSERT_EQ(b.directions.size(), 1u);
  EXPECT_EQ(b.directions[0], FaultDirection::kToSwitch);
  EXPECT_EQ(a.base_seed, sim::derive_seed(9, 0));
  EXPECT_EQ(b.base_seed, sim::derive_seed(9, 1));
  EXPECT_NE(a.base_seed, b.base_seed);
}

TEST(CampaignFileTest, UnknownKeysAreNamedErrors) {
  // Operator input: a typo must throw naming the key, never be ignored.
  const struct {
    const char* text;
    const char* key;
  } cases[] = {
      {R"({"name": "x", "sede": 1, "targets": [{}]})", "sede"},
      {R"({"name": "x", "targets": [{"durration_ms": 5}]})", "durration_ms"},
      {R"({"name": "x", "defaults": {"fualts": []}, "targets": [{}]})",
       "fualts"},
      {R"({"name": "x", "strategy": {"name": "bisect", "tollerance": 1},
           "targets": [{}]})",
       "tollerance"},
      {R"({"name": "x",
           "targets": [{"grid": [{"name": "g", "bursts": 2}]}]})",
       "bursts"},
  };
  for (const auto& c : cases) {
    try {
      (void)parse_campaign_file(c.text);
      FAIL() << "accepted unknown key " << c.key;
    } catch (const CampaignFileError& e) {
      EXPECT_NE(std::string(e.what()).find(c.key), std::string::npos)
          << e.what();
    }
  }
}

TEST(CampaignFileTest, UnknownKeysReportTheirFullJsonPath) {
  // Not just the leaf key: the whole path, so a typo deep in an overlay or
  // a second target is findable without diffing the file.
  const struct {
    const char* text;
    const char* path;
  } cases[] = {
      {R"({"name": "x", "targets": [{}, {"durration_ms": 5}]})",
       "targets[1].durration_ms"},
      {R"({"name": "x",
           "targets": [{"grid": [{"name": "g"},
                                 {"name": "h", "bursts": 2}]}]})",
       "targets[0].grid[1].bursts"},
      {R"({"name": "x", "strategy": {"name": "bisect", "knb": 1},
           "targets": [{}]})",
       "strategy.knb"},
      {R"({"name": "x", "defaults": {"jitterr": 0.5}, "targets": [{}]})",
       "defaults.jitterr"},
      {R"({"name": "x",
           "targets": [{"scenario": {"name": "s",
                                     "steps": [{"kind": "lying-go",
                                                "at_ms": 1, "nod": 2}]}}]})",
       "targets[0].scenario.steps[0].nod"},
  };
  for (const auto& c : cases) {
    try {
      (void)parse_campaign_file(c.text);
      FAIL() << "accepted unknown key at " << c.path;
    } catch (const CampaignFileError& e) {
      EXPECT_NE(std::string(e.what()).find(c.path), std::string::npos)
          << "wanted path '" << c.path << "' in: " << e.what();
    }
  }
}

TEST(CampaignFileTest, ScenarioBlockResolvesRegistryName) {
  const auto file = parse_campaign_file(R"({
    "name": "s",
    "targets": [{"medium": "myrinet", "faults": ["gap-go"],
                 "scenario": {"name": "flow-liar"}}]})");
  const auto& sweep = file.targets[0].sweep;
  ASSERT_TRUE(sweep.base.scenario.has_value());
  EXPECT_EQ(sweep.base.scenario->name, "flow-liar");
  EXPECT_EQ(*sweep.base.scenario, *scenario::find_scenario("flow-liar"));
}

TEST(CampaignFileTest, ScenarioBlockParsesInlineSteps) {
  const auto file = parse_campaign_file(R"({
    "name": "s",
    "targets": [{"medium": "fc",
                 "scenario": {"name": "storm", "steps": [
                   {"kind": "rrdy-flood", "at_ms": 1.5, "node": 2,
                    "count": 24},
                   {"kind": "dup-sequence", "at_ms": 3}]}}]})");
  const auto& scen = file.targets[0].sweep.base.scenario;
  ASSERT_TRUE(scen.has_value());
  EXPECT_EQ(scen->name, "storm");
  ASSERT_EQ(scen->steps.size(), 2u);
  EXPECT_EQ(scen->steps[0].kind, scenario::StepKind::kRrdyFlood);
  EXPECT_EQ(scen->steps[0].at, nanoseconds(1'500'000));
  EXPECT_EQ(scen->steps[0].node, 2u);
  EXPECT_EQ(scen->steps[0].count, 24u);
  EXPECT_EQ(scen->steps[1].kind, scenario::StepKind::kDupSequence);
  EXPECT_EQ(scen->steps[1].count, 1u);  // scalar default
}

TEST(CampaignFileTest, ScenarioBlockRejectsBadPrograms) {
  const char* bad[] = {
      // unknown registry name, no inline steps
      R"({"name": "x", "targets": [{"scenario": {"name": "ghost"}}]})",
      // FC step program armed on a Myrinet target
      R"({"name": "x", "targets": [{"medium": "myrinet",
          "scenario": {"name": "rrdy-storm"}}]})",
      // at_ms 0 would fire outside the analyzer's (begin, end] window
      R"({"name": "x", "targets": [{"medium": "myrinet",
          "scenario": {"name": "s",
                       "steps": [{"kind": "lying-go", "at_ms": 0}]}}]})",
      // a step needs a kind
      R"({"name": "x", "targets": [{"medium": "myrinet",
          "scenario": {"name": "s", "steps": [{"at_ms": 1}]}}]})",
      // inline steps must be non-empty
      R"({"name": "x", "targets": [{"medium": "myrinet",
          "scenario": {"name": "s", "steps": []}}]})",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse_campaign_file(text), CampaignFileError) << text;
  }

  // An unknown step kind names its full path too.
  try {
    (void)parse_campaign_file(
        R"({"name": "x", "targets": [{"medium": "myrinet",
            "scenario": {"name": "s",
                         "steps": [{"kind": "gremlin", "at_ms": 1}]}}]})");
    FAIL() << "accepted unknown step kind";
  } catch (const CampaignFileError& e) {
    EXPECT_NE(std::string(e.what()).find("targets[0].scenario.steps[0].kind"),
              std::string::npos)
        << e.what();
  }
}

TEST(CampaignFileTest, RejectsInvalidSpecs) {
  const char* bad[] = {
      R"({"targets": [{}]})",                                  // no name
      R"({"name": "x"})",                                      // no targets
      R"({"name": "x", "targets": []})",                       // empty targets
      R"({"name": "x", "targets": [{"medium": "ethernet"}]})", // bad medium
      R"({"name": "x", "targets": [{"faults": ["fill-flip"]}]})",  // FC fault
                                                                   // on myrinet
      R"({"name": "x", "targets": [{"name": "a/b"}]})",        // '/' in name
      R"({"name": "x", "targets": [{"name": "a:b"}]})",        // ':' in name
      R"({"name": "x", "targets": [{"name": "t"}, {"name": "t"}]})",
      R"({"name": "x", "targets": [{"directions": ["up"]}]})",
      R"({"name": "x", "seed": "7", "targets": [{}]})",        // string seed
      R"({"name": "x", "checkpoint_batch": 0, "targets": [{}]})",
      R"({"name": "x", "defaults": {"grid": [{"name": "g"}]},
          "targets": [{}]})",                                  // grid in
                                                               // defaults
      R"({"name": "x", "strategy": {"name": "bisect"},
          "targets": [{"grid": [{"name": "g"}]}]})",  // grid under a strategy
      R"({"name": "x", "strategy": {"name": "anneal"}, "targets": [{}]})",
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)parse_campaign_file(text), CampaignFileError) << text;
  }
}

TEST(CampaignFileTest, StrategyBlockParses) {
  const auto file = parse_campaign_file(R"({
    "name": "steered",
    "strategy": {"name": "bisect", "knob": "udp-us", "axis_lo": 24,
                 "axis_hi": 200, "tolerance_us": 8, "max_rounds": 6,
                 "target_count": 3},
    "targets": [{"medium": "myrinet", "faults": ["gap-go"]}]})");
  ASSERT_TRUE(file.strategy.has_value());
  EXPECT_EQ(file.strategy->name, "bisect");
  EXPECT_EQ(file.strategy->axis_lo, 24.0);
  EXPECT_EQ(file.strategy->axis_hi, 200.0);
  EXPECT_EQ(file.strategy->tolerance_us, 8.0);
  EXPECT_EQ(file.strategy->max_rounds, 6u);
  EXPECT_EQ(file.strategy->target_count, 3u);
}

TEST(CampaignFileTest, DigestBindsCheckpointsToTheExactText) {
  const std::string text =
      R"({"name": "x", "targets": [{"medium": "myrinet"}]})";
  std::string edited = text;
  edited.replace(edited.find("\"x\""), 3, "\"y\"");
  EXPECT_EQ(parse_campaign_file(text).digest, fnv1a64(text));
  EXPECT_NE(parse_campaign_file(text).digest, parse_campaign_file(edited).digest);
  // Even whitespace is identity: resuming against a reformatted spec is
  // refused rather than silently accepted.
  EXPECT_NE(fnv1a64(text), fnv1a64(text + "\n"));
}

// ---------------------------------------------------------------------------
// expand_campaign: global indexing, name prefixing, determinism

constexpr const char* kDualSpec = R"({
  "name": "dual", "seed": 7,
  "defaults": {"replicates": 2, "directions": ["from-switch", "both"],
               "warmup_ms": 2, "duration_ms": 5, "drain_ms": 2},
  "targets": [
    {"name": "myri", "medium": "myrinet", "faults": ["gap-go", "seu-00FF"]},
    {"name": "fc", "medium": "fc", "faults": ["fill-flip"]}
  ]})";

TEST(CampaignFileTest, ExpansionIsGloballyIndexedAndPrefixed) {
  const auto runs = expand_campaign(parse_campaign_file(kDualSpec));
  // 2 faults x 2 dirs x 2 reps + 1 fault x 2 dirs x 2 reps.
  ASSERT_EQ(runs.size(), 12u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].index, i);  // contiguous campaign-global indices
    const bool myri = i < 8;
    EXPECT_EQ(runs[i].campaign.medium, myri ? nftape::Medium::kMyrinet
                                            : nftape::Medium::kFc);
    EXPECT_EQ(runs[i].campaign.name.rfind(myri ? "myri:" : "fc:", 0), 0u)
        << runs[i].campaign.name;
  }
  EXPECT_EQ(runs[0].campaign.name, "myri:gap-go/from-switch/base/r0");
  EXPECT_EQ(runs[8].campaign.name, "fc:fill-flip/from-switch/base/r0");

  // Seeds are unique across the whole campaign (disjoint target streams).
  std::set<std::uint64_t> seeds;
  for (const auto& run : runs) seeds.insert(run.seed);
  EXPECT_EQ(seeds.size(), runs.size());
}

TEST(CampaignFileTest, ExpansionIsDeterministic) {
  // The sharding contract: every process that parses the same text must
  // reconstruct the identical run set.
  const auto a = expand_campaign(parse_campaign_file(kDualSpec));
  const auto b = expand_campaign(parse_campaign_file(kDualSpec));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].campaign.name, b[i].campaign.name);
    EXPECT_EQ(a[i].startup_settle, b[i].startup_settle);
  }
}

TEST(CampaignFileTest, StandardFaultAxesStayNamedAndDistinct) {
  for (const auto medium :
       {nftape::Medium::kMyrinet, nftape::Medium::kFc}) {
    const auto axis = standard_fault_axis(medium);
    ASSERT_FALSE(axis.empty());
    std::set<std::string> names;
    for (const auto& f : axis) {
      EXPECT_TRUE(f.config.has_value()) << f.name;
      names.insert(f.name);
    }
    EXPECT_EQ(names.size(), axis.size());
  }
}

}  // namespace
}  // namespace hsfi::orchestrator
