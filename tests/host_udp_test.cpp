// Unit tests for the UDP layer: the one's-complement checksum and — most
// importantly — the 16-bit-swap aliasing the paper's §4.3.4 campaign
// exploits, plus frame encode/parse and the host clock model.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "host/clock.hpp"
#include "host/frame.hpp"
#include "host/udp.hpp"

namespace hsfi::host {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(UdpChecksumTest, DeterministicKnownValue) {
  const auto a = ones_complement_checksum(bytes_of("Have a lot of fun"));
  const auto b = ones_complement_checksum(bytes_of("Have a lot of fun"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0);
}

TEST(UdpChecksumTest, SwappingAlignedWordsPreservesChecksum) {
  // Paper §4.3.4: "we corrupted a UDP packet consisting of the string
  // 'Have a lot of fun' to read instead 'veHa a lot of fun'. The checksum
  // was unable to detect this."
  const auto good = bytes_of("Have a lot of fun");
  const auto swapped = bytes_of("veHa a lot of fun");
  ASSERT_EQ(good.size(), swapped.size());
  EXPECT_NE(good, swapped);
  EXPECT_EQ(ones_complement_checksum(good),
            ones_complement_checksum(swapped));
}

TEST(UdpChecksumTest, UnalignedSwapIsDetected) {
  // "When the corruption did not satisfy the checksum, the packets were
  // dropped." Swapping two bytes at different positions *within* a 16-bit
  // word changes the sum (while same-parity swaps across words do not —
  // that is exactly the aliasing the paper exploits).
  const auto good = bytes_of("Have a lot of fun");
  auto bad = good;
  std::swap(bad[0], bad[1]);  // "aHve" — crosses the byte lanes of a word
  EXPECT_NE(ones_complement_checksum(good), ones_complement_checksum(bad));
}

TEST(UdpChecksumTest, SameParityByteSwapAliases) {
  // The complementary property: bytes 16 bits apart are interchangeable
  // without detection ("this can be done by swapping bits that are 16 bits
  // apart").
  const auto good = bytes_of("Have a lot of fun");
  auto aliased = good;
  std::swap(aliased[1], aliased[3]);  // low bytes of adjacent words
  EXPECT_EQ(ones_complement_checksum(good),
            ones_complement_checksum(aliased));
}

TEST(UdpChecksumTest, SingleBitFlipsDetected) {
  const auto msg = bytes_of("abcdefgh");
  const auto good = ones_complement_checksum(msg);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = msg;
      bad[i] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(ones_complement_checksum(bad), good);
    }
  }
}

TEST(UdpChecksumTest, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> odd = {0x12, 0x34, 0x56};
  const std::vector<std::uint8_t> padded = {0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(ones_complement_checksum(odd), ones_complement_checksum(padded));
}

TEST(UdpChecksumTest, NeverTransmitsZero) {
  // All-0xFF words sum to 0xFFFF -> complement 0x0000 -> transmitted 0xFFFF.
  const std::vector<std::uint8_t> ones(4, 0xFF);
  EXPECT_EQ(ones_complement_checksum(ones), 0xFFFF);
}

TEST(UdpCodecTest, EncodeDecodeRoundTrip) {
  UdpDatagram d;
  d.src_port = 1024;
  d.dst_port = 7;
  d.payload = bytes_of("Have a lot of fun");
  const auto wire = encode_udp(d);
  EXPECT_EQ(wire.size(), kUdpHeaderSize + d.payload.size());
  const auto parsed = decode_udp(wire);
  ASSERT_TRUE(parsed.datagram.has_value());
  EXPECT_EQ(parsed.datagram->src_port, 1024);
  EXPECT_EQ(parsed.datagram->dst_port, 7);
  EXPECT_EQ(parsed.datagram->payload, d.payload);
}

TEST(UdpCodecTest, AlignedSwapInPayloadPassesDecode) {
  // The full §4.3.4 aliasing scenario at datagram level: swap two aligned
  // 16-bit words inside the payload of an encoded datagram; the datagram
  // still decodes and delivers the wrong text.
  UdpDatagram d;
  d.src_port = 9;
  d.dst_port = 9;
  d.payload = bytes_of("Have a lot of fun");
  auto wire = encode_udp(d);
  // Payload begins at offset 8 (header), which is 16-bit aligned: swap the
  // words "Ha" and "ve".
  std::swap(wire[8], wire[10]);
  std::swap(wire[9], wire[11]);
  const auto parsed = decode_udp(wire);
  ASSERT_TRUE(parsed.datagram.has_value()) << "aliased corruption rejected";
  EXPECT_EQ(std::string(parsed.datagram->payload.begin(),
                        parsed.datagram->payload.end()),
            "veHa a lot of fun");
}

TEST(UdpCodecTest, NonAliasedCorruptionRejected) {
  UdpDatagram d;
  d.payload = bytes_of("Have a lot of fun");
  auto wire = encode_udp(d);
  wire[9] ^= 0x40;
  const auto parsed = decode_udp(wire);
  ASSERT_TRUE(parsed.error.has_value());
  EXPECT_EQ(*parsed.error, UdpParseError::kBadChecksum);
}

TEST(UdpCodecTest, LengthMismatchRejected) {
  UdpDatagram d;
  d.payload = {1, 2, 3};
  auto wire = encode_udp(d);
  wire.push_back(0x00);  // trailing garbage
  EXPECT_EQ(*decode_udp(wire).error, UdpParseError::kBadLength);
  const std::vector<std::uint8_t> tiny = {1, 2, 3};
  EXPECT_EQ(*decode_udp(tiny).error, UdpParseError::kTooShort);
}

TEST(FrameTest, EncodeParseRoundTrip) {
  DataFrame f;
  f.dst_eth = myrinet::EthAddr::from_u64(0x00A0CC000002);
  f.src_eth = myrinet::EthAddr::from_u64(0x00A0CC000001);
  f.dst_id = 2;
  f.src_id = 1;
  f.body = {9, 8, 7};
  const auto wire = encode_frame(f);
  EXPECT_EQ(wire.size(), kFrameHeaderSize + 3);
  const auto parsed = parse_frame(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst_eth, f.dst_eth);
  EXPECT_EQ(parsed->src_eth, f.src_eth);
  EXPECT_EQ(parsed->dst_id, 2);
  EXPECT_EQ(parsed->src_id, 1);
  EXPECT_EQ(parsed->body, f.body);
}

TEST(FrameTest, TruncatedFrameRejected) {
  const std::vector<std::uint8_t> stub(kFrameHeaderSize - 1, 0);
  EXPECT_FALSE(parse_frame(stub).has_value());
}

TEST(HostClockTest, QuantizesToTick) {
  HostClock clock({sim::microseconds(1)}, /*boot_seed=*/1);
  const auto w = clock.wall(sim::nanoseconds(2'499));
  EXPECT_EQ(w % sim::microseconds(1), 0);
}

TEST(HostClockTest, PhaseDiffersAcrossBoots) {
  HostClock a({sim::microseconds(1)}, 1);
  HostClock b({sim::microseconds(1)}, 2);
  // Different boots quantize differently (with overwhelming probability for
  // these seeds; the values are deterministic, so this is not flaky).
  EXPECT_NE(a.phase(), b.phase());
}

TEST(HostClockTest, MonotoneNondecreasing) {
  HostClock clock({sim::microseconds(1)}, 7);
  sim::SimTime prev = clock.wall(0);
  for (sim::SimTime t = 0; t < sim::microseconds(20); t += sim::nanoseconds(333)) {
    const auto w = clock.wall(t);
    EXPECT_GE(w, prev);
    prev = w;
  }
}

}  // namespace
}  // namespace hsfi::host
