// Streaming analysis plane tests.
//
// The load-bearing property: monitoring is observation, never perturbation.
//  * monitor::StreamingCell folded record-by-record, in any order, or
//    merged from shards is bit-identical to the batch accumulator
//    (analysis::CellStats) over the same runs.
//  * Attaching a MonitorService sink to the golden 8-run mini-campaign
//    leaves the JSONL byte-identical and the kernel event digest equal to
//    the committed tests/golden/mini_campaign.digest.
//  * A streaming-fed adaptive campaign (bisect and coverage) in
//    deterministic mode emits byte-identical JSONL to the batch-barrier
//    path, for 1 and 8 workers.
//  * Live mode (early_cancel) actually cancels: skipped records appear
//    once a cell's round is resolved.
//  * The drift detector fires on a planted manifestation-rate anomaly
//    between media and on a planted latency-distribution shift.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "adaptive/controller.hpp"
#include "adaptive/strategy.hpp"
#include "analysis/accumulator.hpp"
#include "monitor/drift.hpp"
#include "monitor/feed.hpp"
#include "monitor/jsonl_reader.hpp"
#include "monitor/service.hpp"
#include "monitor/streaming_cell.hpp"
#include "myrinet/control.hpp"
#include "nftape/campaign.hpp"
#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"
#include "sim/rng.hpp"

namespace {

using namespace hsfi;
using analysis::Manifestation;
using myrinet::ControlSymbol;

// ---------------------------------------------------------------------------
// Synthetic run records (no simulation): deterministic functions of an
// index, with every field the monitor folds exercised.

orchestrator::RunRecord synth_record(std::size_t i, const std::string& cell,
                                     nftape::Medium medium = nftape::Medium::kMyrinet) {
  const std::uint64_t h = sim::splitmix64(i + 1);
  orchestrator::RunRecord rec;
  rec.index = i;
  rec.name = cell + "/base/r" + std::to_string(i);
  rec.seed = h;
  rec.medium = medium;
  rec.outcome = (h % 7 == 0) ? orchestrator::RunOutcome::kTimedOut
                             : orchestrator::RunOutcome::kOk;
  rec.attempts = 1;
  auto& r = rec.result;
  r.medium = medium;
  r.messages_sent = 100 + (h % 50);
  r.messages_received = r.messages_sent - (h % 9) + (h % 3);  // some dups
  r.injections = 20 + (h % 13);
  auto& b = r.manifestations;
  b[Manifestation::kCrcDropped] = h % 5;
  b[Manifestation::kMisrouted] = h % 2;
  b[Manifestation::kDroppedOther] = (h >> 8) % 4;
  b[Manifestation::kTimeout] = (h >> 16) % 2;
  b[Manifestation::kMasked] =
      r.injections - b[Manifestation::kCrcDropped] -
      b[Manifestation::kMisrouted] - b[Manifestation::kDroppedOther] -
      b[Manifestation::kTimeout];
  for (std::uint64_t s = 0; s < 3 + (h % 4); ++s) {
    r.manifestation_latency.add(sim::microseconds(
        static_cast<std::int64_t>(1 + ((h >> (4 * s)) % 900))));
  }
  return rec;
}

// ---------------------------------------------------------------------------
// Streaming == batch, bit for bit.

TEST(StreamingCell, OneAtATimeShuffledAndShardedMatchBatch) {
  constexpr std::size_t kRuns = 240;
  std::vector<orchestrator::RunRecord> records;
  records.reserve(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    records.push_back(synth_record(i, "fault/both"));
  }

  // Batch reference: the pre-streaming accumulator.
  analysis::CellAccumulator batch;
  for (const auto& rec : records) {
    batch.add_run("fault/both", rec.outcome == orchestrator::RunOutcome::kOk,
                  rec.result.manifestations, rec.result.injections,
                  rec.result.duplicates(), &rec.result.manifestation_latency);
  }
  const analysis::CellStats* expected = batch.find("fault/both");
  ASSERT_NE(expected, nullptr);
  ASSERT_GT(expected->injections, 0u);

  // One record at a time, emission order.
  monitor::StreamingCell streamed;
  for (const auto& rec : records) streamed.fold(rec);
  EXPECT_EQ(streamed.stats(), *expected);

  // Deterministically shuffled order (folding is commutative).
  std::vector<std::size_t> order(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) order[i] = i;
  std::mt19937 rng(1234);
  std::shuffle(order.begin(), order.end(), rng);
  monitor::StreamingCell shuffled;
  for (const std::size_t i : order) shuffled.fold(records[i]);
  EXPECT_EQ(shuffled.stats(), *expected);

  // Four shards merged (folding is associative).
  monitor::StreamingCell shards[4];
  for (std::size_t i = 0; i < kRuns; ++i) shards[i % 4].fold(records[i]);
  monitor::StreamingCell merged;
  for (auto& shard : shards) merged.merge(shard);
  EXPECT_EQ(merged.stats(), *expected);
}

TEST(StreamingCell, WilsonAndResolution) {
  monitor::StreamingCell cell;
  EXPECT_FALSE(cell.resolved(0.5, 1));  // empty: full-width interval

  analysis::ManifestationBreakdown b;
  b[Manifestation::kCrcDropped] = 30;
  b[Manifestation::kMasked] = 70;
  cell.fold(true, b, 100, 0);
  const auto w = cell.wilson();
  EXPECT_NEAR(w.rate, 0.30, 1e-9);
  EXPECT_GT(w.lo, 0.20);
  EXPECT_LT(w.hi, 0.42);
  EXPECT_FALSE(cell.resolved(0.05, 64));  // CI still wider than 5 points
  EXPECT_TRUE(cell.resolved(0.25, 64));
  EXPECT_FALSE(cell.resolved(0.25, 1000));  // injections floor not met
}

// ---------------------------------------------------------------------------
// Golden monitored mini-campaign: the sink changes nothing.

/// FNV-1a over (fire time, execution ordinal, schedule ordinal) — the same
/// digest golden_trace_test commits to tests/golden/mini_campaign.digest.
struct Fnv1a {
  std::uint64_t state = 1469598103934665603ULL;
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xFF;
      state *= 1099511628211ULL;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::string hex() const {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  (unsigned long long)state);
    return buffer;
  }
};

/// The golden probe, identical to golden_trace_test's mini_sweep().
orchestrator::SweepSpec mini_sweep() {
  orchestrator::SweepSpec sweep;
  sweep.name = "mini";
  sweep.base_seed = 7;
  sweep.replicates = 2;
  sweep.startup_settle = sim::milliseconds(150);
  sweep.directions = {orchestrator::FaultDirection::kFromSwitch,
                      orchestrator::FaultDirection::kBoth};
  sweep.faults.push_back(
      {"go-stop", nftape::control_symbol_corruption(ControlSymbol::kGo,
                                                    ControlSymbol::kStop), ""});
  sweep.faults.push_back({"seu-00FF", nftape::random_bit_flip_seu(0x00FF), ""});

  sweep.testbed.map_period = sim::milliseconds(100);
  sweep.testbed.nic_config.rx_processing_time = sim::microseconds(1);
  sweep.testbed.send_stack_time = sim::microseconds(1);
  sweep.base.warmup = sim::milliseconds(5);
  sweep.base.duration = sim::milliseconds(15);
  sweep.base.drain = sim::milliseconds(5);
  sweep.base.workload.udp_interval = sim::microseconds(12);
  sweep.base.workload.burst_size = 4;
  sweep.base.workload.jitter = 0.5;
  sweep.base.workload.payload_size = 256;
  return sweep;
}

struct MiniOutput {
  std::string jsonl;
  std::string digest;  ///< combined per-run event digest (index order)
};

MiniOutput run_mini(std::size_t workers, monitor::MonitorService* service) {
  const auto runs = orchestrator::expand(mini_sweep());
  std::vector<std::string> digests(runs.size());

  orchestrator::RunnerConfig rc;
  rc.workers = workers;
  if (service != nullptr) rc.sinks.push_back(service);
  rc.executor = [&digests](const orchestrator::RunSpec& run,
                           const nftape::RunControl& control) {
    Fnv1a digest;
    nftape::Testbed bed(run.testbed);
    bed.sim().set_event_observer(
        [&digest](sim::SimTime when, std::uint64_t exec_seq,
                  std::uint64_t schedule_seq) {
          digest.i64(when);
          digest.u64(exec_seq);
          digest.u64(schedule_seq);
        });
    bed.start();
    bed.settle(run.startup_settle);
    nftape::CampaignRunner runner(bed);
    auto result = runner.run(run.campaign, &control);
    digests[run.index] = digest.hex();
    return result;
  };

  const auto records = orchestrator::Runner(rc).run_all(runs);
  MiniOutput out;
  std::ostringstream lines;
  for (const auto& r : records) {
    EXPECT_EQ(r.outcome, orchestrator::RunOutcome::kOk)
        << "run " << r.index << ": " << r.error;
    lines << orchestrator::to_jsonl(r, /*include_timing=*/false) << '\n';
  }
  out.jsonl = lines.str();
  Fnv1a all;
  for (const auto& d : digests) {
    for (const char ch : d) all.u64(static_cast<std::uint8_t>(ch));
  }
  out.digest = all.hex();
  return out;
}

TEST(GoldenMonitored, SinkLeavesCampaignByteIdentical) {
  const auto bare = run_mini(1, nullptr);

  monitor::MonitorService service;
  const auto monitored = run_mini(1, &service);
  EXPECT_EQ(monitored.jsonl, bare.jsonl)
      << "attaching the monitor sink must not change the JSONL";
  EXPECT_EQ(monitored.digest, bare.digest)
      << "attaching the monitor sink must not change kernel event order";
  EXPECT_EQ(service.records(), 8u);

  monitor::MonitorService pooled_service;
  const auto pooled = run_mini(4, &pooled_service);
  EXPECT_EQ(pooled.jsonl, bare.jsonl)
      << "monitored JSONL must stay byte-identical across worker counts";

  // Completion order differs between 1 and 4 workers, but the streaming
  // state is fold-order-independent: both services agree cell by cell.
  const auto serial_cells = service.cells();
  const auto pooled_cells = pooled_service.cells();
  ASSERT_EQ(serial_cells.size(), pooled_cells.size());
  for (std::size_t i = 0; i < serial_cells.size(); ++i) {
    EXPECT_EQ(serial_cells[i].cell, pooled_cells[i].cell);
    EXPECT_EQ(serial_cells[i].stats.stats(), pooled_cells[i].stats.stats());
  }

  // And the event digest still matches the committed golden file.
  std::ifstream in(std::string(HSFI_GOLDEN_DIR) + "/mini_campaign.digest");
  ASSERT_TRUE(in) << "missing tests/golden/mini_campaign.digest";
  std::string expected;
  in >> expected;
  EXPECT_EQ(monitored.digest, expected)
      << "monitored campaign diverged from the committed golden digest";
}

// ---------------------------------------------------------------------------
// Streaming-fed adaptive campaigns: deterministic mode is byte-identical.

/// Synthetic executor: a pure function of the run spec, so adaptive
/// campaigns are fast and any divergence is attributable to the streaming
/// plumbing, not the simulation. Manifestation depends on the udp-interval
/// knob (<= 50 us = intense) and the seed adds per-replicate variety.
nftape::CampaignResult synth_executor(const orchestrator::RunSpec& run,
                                      const nftape::RunControl&) {
  nftape::CampaignResult r;
  r.name = run.campaign.name;
  r.medium = run.campaign.medium;
  const double us =
      sim::to_nanoseconds(run.campaign.workload.udp_interval) / 1000.0;
  r.messages_sent = 100;
  r.messages_received = 97;
  r.window = sim::milliseconds(1);
  r.injections = 10;
  const bool intense = us <= 50.0;
  const std::uint64_t manifested = intense ? 4 + (run.seed % 3) : 0;
  r.manifestations[Manifestation::kDroppedOther] = manifested;
  r.manifestations[Manifestation::kMasked] = r.injections - manifested;
  for (std::uint64_t s = 0; s < manifested; ++s) {
    r.manifestation_latency.add(
        sim::microseconds(static_cast<std::int64_t>(5 + s)));
  }
  return r;
}

adaptive::AdaptiveSpec synth_spec() {
  adaptive::AdaptiveSpec spec;
  spec.name = "synthetic";
  spec.faults.push_back({"fa", std::nullopt, ""});
  spec.faults.push_back({"fb", std::nullopt, ""});
  spec.knob = nftape::Knob::kUdpIntervalUs;
  spec.base_seed = 11;
  spec.max_rounds = 12;
  return spec;
}

struct AdaptiveOutput {
  std::string jsonl;
  std::size_t skipped = 0;
  std::uint64_t published = 0;
};

enum class Kind { kBisect, kCoverage };

AdaptiveOutput run_adaptive(Kind kind, std::size_t workers, bool with_feed,
                            bool early_cancel, std::size_t replicates = 2) {
  const auto spec = synth_spec();
  adaptive::ControllerConfig cc;
  cc.runner.workers = workers;
  cc.runner.executor = synth_executor;
  monitor::StreamingFeed feed;
  if (with_feed) {
    cc.feed = &feed;
    cc.early_cancel = early_cancel;
  }
  adaptive::Controller controller(spec, std::move(cc));

  std::unique_ptr<adaptive::Strategy> strategy;
  if (kind == Kind::kBisect) {
    adaptive::BisectionConfig bc;
    bc.lo = 10.0;
    bc.hi = 90.0;
    bc.tolerance = 5.0;
    bc.higher_is_more_intense = false;  // smaller interval = more traffic
    bc.replicates = replicates;
    bc.min_manifested = 1;
    strategy = std::make_unique<adaptive::BisectionStrategy>(
        controller.cells(), bc);
  } else {
    adaptive::CoverageConfig cov;
    cov.knob_value = 12.0;  // intense: dropped_other appears
    cov.target_count = 2;
    cov.batch_replicates = replicates;
    cov.min_injections = 40;
    cov.hopeless_rate = 0.1;
    strategy = std::make_unique<adaptive::CoverageStrategy>(
        controller.cells(), cov);
  }

  const auto outcome = controller.run(*strategy);
  AdaptiveOutput out;
  std::ostringstream lines;
  for (const auto& r : outcome.records) {
    if (r.outcome == orchestrator::RunOutcome::kSkipped) ++out.skipped;
    lines << orchestrator::to_jsonl(r, /*include_timing=*/false) << '\n';
  }
  out.jsonl = lines.str();
  out.published = feed.published();
  EXPECT_FALSE(out.jsonl.empty());
  return out;
}

TEST(StreamingAdaptive, BisectDeterministicModeIsByteIdentical) {
  const auto batch = run_adaptive(Kind::kBisect, 1, false, false);
  const auto fed1 = run_adaptive(Kind::kBisect, 1, true, false);
  const auto fed8 = run_adaptive(Kind::kBisect, 8, true, false);
  const auto batch8 = run_adaptive(Kind::kBisect, 8, false, false);
  EXPECT_EQ(fed1.jsonl, batch.jsonl)
      << "streaming feed (deterministic mode) must not change the records";
  EXPECT_EQ(fed8.jsonl, batch.jsonl)
      << "streaming-fed campaign must be byte-identical across 1 vs 8 workers";
  EXPECT_EQ(batch8.jsonl, batch.jsonl);
  EXPECT_EQ(fed1.skipped, 0u);
  // Every record of the campaign went through the feed.
  EXPECT_GT(fed1.published, 0u);
}

TEST(StreamingAdaptive, CoverageDeterministicModeIsByteIdentical) {
  const auto batch = run_adaptive(Kind::kCoverage, 1, false, false);
  const auto fed1 = run_adaptive(Kind::kCoverage, 1, true, false);
  const auto fed8 = run_adaptive(Kind::kCoverage, 8, true, false);
  EXPECT_EQ(fed1.jsonl, batch.jsonl);
  EXPECT_EQ(fed8.jsonl, batch.jsonl)
      << "streaming-fed coverage campaign must not depend on worker count";
  EXPECT_EQ(fed1.skipped, 0u);
}

TEST(StreamingAdaptive, EarlyCancelSkipsResolvedCells) {
  // Live mode, one worker: completion order is request order, so once a
  // midpoint replicate manifests (min_manifested = 1), the cell's
  // remaining replicates of that round must come back skipped.
  const auto live =
      run_adaptive(Kind::kBisect, 1, true, true, /*replicates=*/6);
  EXPECT_GT(live.skipped, 0u)
      << "early-cancel never skipped anything despite resolved cells";
  // Skipped records still flow through the feed (they are real records).
  EXPECT_GT(live.published, 0u);
}

// ---------------------------------------------------------------------------
// Drift detection.

orchestrator::RunRecord planted_record(std::size_t i, nftape::Medium medium,
                                       std::uint64_t manifested,
                                       std::uint64_t injections) {
  orchestrator::RunRecord rec;
  rec.index = i;
  rec.name = "seu-00FF/both/base/r" + std::to_string(i);
  rec.seed = i;
  rec.medium = medium;
  rec.outcome = orchestrator::RunOutcome::kOk;
  rec.result.medium = medium;
  rec.result.messages_sent = 10;
  rec.result.messages_received = 10;
  rec.result.injections = injections;
  rec.result.manifestations[Manifestation::kDroppedOther] = manifested;
  rec.result.manifestations[Manifestation::kMasked] = injections - manifested;
  return rec;
}

TEST(Drift, RateDivergenceFiresOnPlantedAnomaly) {
  monitor::MonitorService service;
  // Same cell on both media: ~10% on Myrinet, ~60% on FC, 100 firings per
  // side — the Wilson 95% intervals are far apart.
  for (std::size_t i = 0; i < 10; ++i) {
    service.on_record(planted_record(i, nftape::Medium::kMyrinet, 1, 10));
    service.on_record(planted_record(i, nftape::Medium::kFc, 6, 10));
  }
  const auto flags = service.drift_flags();
  ASSERT_EQ(flags.size(), 1u) << "expected exactly the planted divergence";
  EXPECT_EQ(flags[0].kind, monitor::DriftKind::kRateDivergence);
  EXPECT_EQ(flags[0].cell, "seu-00FF/both");
  EXPECT_EQ(flags[0].group_a, "fc");
  EXPECT_EQ(flags[0].group_b, "myrinet");
  EXPECT_GT(flags[0].value, 0.0);
  EXPECT_NE(flags[0].describe().find("rate-divergence"), std::string::npos);

  // The live table flags the same cells.
  const auto table = service.table("t").render();
  EXPECT_NE(table.find("rate!"), std::string::npos);
}

TEST(Drift, NoDivergenceOnMatchedRates) {
  monitor::MonitorService service;
  for (std::size_t i = 0; i < 10; ++i) {
    service.on_record(planted_record(i, nftape::Medium::kMyrinet, 3, 10));
    service.on_record(planted_record(i, nftape::Medium::kFc, 3, 10));
  }
  EXPECT_TRUE(service.drift_flags().empty());
}

TEST(Drift, RateDivergenceNeedsMinInjections) {
  // 5 vs 5 firings at wildly different rates: below the floor, no flag.
  monitor::DriftConfig config;
  EXPECT_FALSE(monitor::rate_divergence(0, 5, 5, 5, config).has_value());
  // At the floor with disjoint intervals: flag with a positive gap.
  const auto gap = monitor::rate_divergence(5, 100, 60, 100, config);
  ASSERT_TRUE(gap.has_value());
  EXPECT_GT(*gap, 0.0);
}

TEST(Drift, LatencyShiftDetectsMovedDistribution) {
  monitor::DriftConfig config;
  config.baseline_runs = 2;
  config.window_runs = 2;
  config.min_latency_samples = 8;
  monitor::LatencyDrift drift(config);

  const auto histogram_at = [](sim::Duration d, int samples) {
    analysis::Histogram h;
    for (int i = 0; i < samples; ++i) h.add(d);
    return h;
  };

  // Baseline: everything in the microsecond decade.
  drift.add(histogram_at(sim::microseconds(2), 8));
  EXPECT_FALSE(drift.shift().has_value()) << "baseline still filling";
  drift.add(histogram_at(sim::microseconds(3), 8));
  EXPECT_FALSE(drift.shift().has_value()) << "window still empty";

  // Window: the distribution moved to the tens-of-milliseconds decade.
  drift.add(histogram_at(sim::milliseconds(40), 8));
  drift.add(histogram_at(sim::milliseconds(50), 8));
  const auto tv = drift.shift();
  ASSERT_TRUE(tv.has_value());
  EXPECT_GT(*tv, 0.9) << "fully moved distribution: TV distance near 1";

  // A window matching the baseline reports (near) zero.
  monitor::LatencyDrift same(config);
  for (int i = 0; i < 4; ++i) same.add(histogram_at(sim::microseconds(2), 8));
  const auto tv_same = same.shift();
  ASSERT_TRUE(tv_same.has_value());
  EXPECT_LT(*tv_same, 0.01);
}

// ---------------------------------------------------------------------------
// JSONL tail mode: parse + incremental file following.

TEST(JsonlReader, ParsesEmittedRecords) {
  const auto rec = synth_record(3, "gap-go/both", nftape::Medium::kFc);
  const std::string line = orchestrator::to_jsonl(rec);
  const auto parsed = monitor::parse_record(line);
  ASSERT_TRUE(parsed.has_value()) << line;
  EXPECT_EQ(parsed->name, rec.name);
  EXPECT_EQ(parsed->medium, "fc");
  EXPECT_EQ(parsed->run, rec.index);
  EXPECT_EQ(parsed->seed, rec.seed);
  if (rec.outcome == orchestrator::RunOutcome::kOk) {
    EXPECT_TRUE(parsed->ok());
    EXPECT_EQ(parsed->injections, rec.result.injections);
    EXPECT_EQ(parsed->duplicates, rec.result.duplicates());
    EXPECT_EQ(parsed->manifestations, rec.result.manifestations);
  }

  // Default medium is omitted from the line and defaulted by the parser.
  const auto myri = synth_record(0, "gap-go/both");
  const auto parsed_myri = monitor::parse_record(orchestrator::to_jsonl(myri));
  ASSERT_TRUE(parsed_myri.has_value());
  EXPECT_EQ(parsed_myri->medium, "myrinet");

  // Escaped names survive the round trip.
  orchestrator::RunRecord quoted = synth_record(1, "gap-go/both");
  quoted.name = "weird \"name\"\twith\nescapes";
  const auto parsed_quoted =
      monitor::parse_record(orchestrator::to_jsonl(quoted));
  ASSERT_TRUE(parsed_quoted.has_value());
  EXPECT_EQ(parsed_quoted->name, quoted.name);
}

TEST(JsonlReader, RejectsMalformedLines) {
  EXPECT_FALSE(monitor::parse_record("").has_value());
  EXPECT_FALSE(monitor::parse_record("not json").has_value());
  EXPECT_FALSE(monitor::parse_record("{\"name\":\"a\"").has_value());
  EXPECT_FALSE(
      monitor::parse_record("{\"name\":\"a\",\"outcome\":\"ok\"} extra")
          .has_value());
  EXPECT_FALSE(monitor::parse_record("{\"outcome\":\"ok\"}").has_value())
      << "a record without a name is useless to the monitor";
  EXPECT_FALSE(
      monitor::parse_record(
          "{\"name\":\"a\",\"outcome\":\"ok\",\"injections\":\"abc\"}")
          .has_value())
      << "non-numeric token in a folded u64 field";
}

TEST(JsonlReader, TailerFollowsAGrowingShardFile) {
  const std::string path =
      testing::TempDir() + "hsfi_monitor_tailer_test.jsonl";
  std::remove(path.c_str());

  monitor::JsonlTailer tailer(path);
  std::vector<monitor::ParsedRecord> seen;
  const auto deliver = [&seen](const monitor::ParsedRecord& r) {
    seen.push_back(r);
  };
  EXPECT_EQ(tailer.poll(deliver), 0u) << "missing file: shard not started";

  const std::string line0 = orchestrator::to_jsonl(synth_record(0, "f/both"));
  const std::string line1 = orchestrator::to_jsonl(synth_record(1, "f/both"));
  {
    std::ofstream out(path, std::ios::binary);
    out << line0 << '\n';
    // A torn write: the shard is mid-line when we poll.
    out << line1.substr(0, 25);
  }
  EXPECT_EQ(tailer.poll(deliver), 1u);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].run, 0u);

  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << line1.substr(25) << '\n';
    out << "garbage line\n";
  }
  EXPECT_EQ(tailer.poll(deliver), 1u) << "completed torn line delivers";
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].run, 1u);
  EXPECT_EQ(tailer.malformed(), 1u);
  EXPECT_EQ(tailer.poll(deliver), 0u) << "nothing new";

  std::remove(path.c_str());
}

TEST(JsonlReader, TailerRecoversFromTruncationAndRotation) {
  // Regression: poll() seeked to the saved offset with no check that the
  // file shrank, so after log rotation/truncation the tailer sat at a
  // phantom offset reading nothing forever — and the torn-line carry from
  // the old incarnation was never cleared.
  const std::string path =
      testing::TempDir() + "hsfi_monitor_truncation_test.jsonl";
  std::remove(path.c_str());

  monitor::JsonlTailer tailer(path);
  std::vector<monitor::ParsedRecord> seen;
  const auto deliver = [&seen](const monitor::ParsedRecord& r) {
    seen.push_back(r);
  };

  const std::string line0 = orchestrator::to_jsonl(synth_record(0, "f/both"));
  const std::string line1 = orchestrator::to_jsonl(synth_record(1, "f/both"));
  const std::string line2 = orchestrator::to_jsonl(synth_record(2, "f/both"));
  {
    std::ofstream out(path, std::ios::binary);
    out << line0 << '\n';
    out << line1.substr(0, 20);  // torn carry at the moment of rotation
  }
  EXPECT_EQ(tailer.poll(deliver), 1u);
  EXPECT_EQ(tailer.truncations(), 0u);

  // Rotate: the writer truncates the file and starts a new log. The new
  // first line begins with bytes that would NOT parse if the stale carry
  // were glued in front of it.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << line2 << '\n';
  }
  EXPECT_EQ(tailer.poll(deliver), 1u) << "tailing must resume after rotation";
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1].run, 2u);
  EXPECT_EQ(tailer.truncations(), 1u);
  EXPECT_EQ(tailer.malformed(), 0u)
      << "the old file's torn carry must be dropped, not prepended";

  // And appends to the rotated file keep flowing.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << line0 << '\n';
  }
  EXPECT_EQ(tailer.poll(deliver), 1u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[2].run, 0u);
  EXPECT_EQ(tailer.truncations(), 1u);

  std::remove(path.c_str());
}

TEST(JsonlReader, ServiceIngestsTailedRecords) {
  // A full out-of-process loop: records -> JSONL -> service, and the
  // counters match the in-process fold (latency histograms are not in the
  // JSONL, so only the counter state can agree).
  std::ostringstream shard;
  monitor::MonitorService direct;
  for (std::size_t i = 0; i < 40; ++i) {
    const auto rec = synth_record(i, "seu-00FF/both");
    shard << orchestrator::to_jsonl(rec) << '\n';
    direct.ingest(*monitor::parse_record(orchestrator::to_jsonl(rec)));
  }
  monitor::MonitorService tailed;
  EXPECT_EQ(tailed.ingest_jsonl(shard.str()), 40u);
  EXPECT_EQ(tailed.records(), 40u);
  EXPECT_EQ(tailed.malformed_lines(), 0u);

  const auto a = direct.cell("seu-00FF/both").stats();
  const auto b = tailed.cell("seu-00FF/both").stats();
  EXPECT_EQ(a, b);
  EXPECT_GT(b.injections, 0u);
}

}  // namespace
