// Fibre Channel substrate tests: exhaustive 8b/10b properties
// (parameterized over the whole code space), CRC-32, frame codec, ordered
// sets, BB-credit flow control, and wire-level fault behavior through the
// serdes.
#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <vector>

#include "fc/crc32.hpp"
#include "fc/enc8b10b.hpp"
#include "fc/frame.hpp"
#include "fc/port.hpp"
#include "link/channel.hpp"
#include "phy/serdes.hpp"
#include "sim/simulator.hpp"

namespace hsfi::fc {
namespace {

// ---------------------------------------------------------------- 8b/10b

/// (value, is_k, entering disparity) sweep over every encodable character.
using CodePoint = std::tuple<int, bool, bool>;  // value, k, rd_minus

class Enc8b10bSweep : public ::testing::TestWithParam<CodePoint> {};

bool is_encodable(int value, bool k) {
  if (!k) return true;
  const int x = value & 0x1F;
  const int y = value >> 5;
  if (x == 28) return true;
  return y == 7 && (x == 23 || x == 27 || x == 29 || x == 30);
}

TEST_P(Enc8b10bSweep, RoundTripsAndKeepsDisparityLegal) {
  const auto [value, k, minus] = GetParam();
  const Char8 c{static_cast<std::uint8_t>(value), k};
  const Disparity rd = minus ? Disparity::kMinus : Disparity::kPlus;
  const auto enc = encode_8b10b(c, rd);
  if (!is_encodable(value, k)) {
    EXPECT_FALSE(enc.has_value());
    return;
  }
  ASSERT_TRUE(enc.has_value());
  // 10-bit groups carry 4, 5, or 6 ones — never worse.
  const int ones = std::popcount(static_cast<unsigned>(enc->code));
  EXPECT_GE(ones, 4);
  EXPECT_LE(ones, 6);
  // Neutral groups keep RD; unbalanced groups flip it toward balance.
  if (ones == 5) {
    EXPECT_EQ(enc->rd, rd);
  } else if (ones == 6) {
    EXPECT_EQ(rd, Disparity::kMinus);  // only legal from RD-
    EXPECT_EQ(enc->rd, Disparity::kPlus);
  } else {
    EXPECT_EQ(rd, Disparity::kPlus);
    EXPECT_EQ(enc->rd, Disparity::kMinus);
  }
  // Decode inverts encode under the same entering disparity.
  const auto dec = decode_8b10b(enc->code, rd);
  EXPECT_FALSE(dec.code_violation);
  EXPECT_FALSE(dec.disparity_error);
  EXPECT_EQ(dec.character, c);
  EXPECT_EQ(dec.rd, enc->rd);
}

INSTANTIATE_TEST_SUITE_P(
    AllCharacters, Enc8b10bSweep,
    ::testing::Combine(::testing::Range(0, 256), ::testing::Bool(),
                       ::testing::Bool()));

TEST(Enc8b10bTest, K285IsTheCommaCharacter) {
  const auto minus = encode_8b10b(K(28, 5), Disparity::kMinus);
  const auto plus = encode_8b10b(K(28, 5), Disparity::kPlus);
  ASSERT_TRUE(minus && plus);
  EXPECT_EQ(minus->code, 0b0011111010);
  EXPECT_EQ(plus->code, 0b1100000101);
}

TEST(Enc8b10bTest, EncodingsUniquePerDisparity) {
  for (const bool minus : {true, false}) {
    std::set<std::uint16_t> seen;
    const Disparity rd = minus ? Disparity::kMinus : Disparity::kPlus;
    for (int v = 0; v < 256; ++v) {
      for (const bool k : {false, true}) {
        if (!is_encodable(v, k)) continue;
        const auto enc = encode_8b10b(Char8{static_cast<std::uint8_t>(v), k}, rd);
        ASSERT_TRUE(enc.has_value());
        EXPECT_TRUE(seen.insert(enc->code).second)
            << "duplicate code for value " << v << " k=" << k;
      }
    }
  }
}

TEST(Enc8b10bTest, LongStreamDisparityStaysBounded) {
  // Encode every byte value in sequence; running disparity must remain
  // +-1 between characters by construction.
  Disparity rd = Disparity::kMinus;
  int balance = 0;
  for (int round = 0; round < 4; ++round) {
    for (int v = 0; v < 256; ++v) {
      const auto enc = encode_8b10b(D(static_cast<std::uint8_t>(v & 0x1F),
                                      static_cast<std::uint8_t>((v >> 5) & 7)),
                                    rd);
      ASSERT_TRUE(enc.has_value());
      balance += 2 * std::popcount(static_cast<unsigned>(enc->code)) - 10;
      EXPECT_LE(std::abs(balance), 2);
      rd = enc->rd;
    }
  }
}

TEST(Enc8b10bTest, InvalidGroupIsViolation) {
  // 0b1111111111 is not a legal group under either disparity.
  const auto dec = decode_8b10b(0x3FF, Disparity::kMinus);
  EXPECT_TRUE(dec.code_violation);
}

TEST(Enc8b10bTest, WrongDisparityDetected) {
  // D.00 RD- group received while RD is plus: decodable but flagged.
  const auto enc = encode_8b10b(D(0, 0), Disparity::kMinus);
  ASSERT_TRUE(enc.has_value());
  const auto dec = decode_8b10b(enc->code, Disparity::kPlus);
  EXPECT_FALSE(dec.code_violation);
  EXPECT_TRUE(dec.disparity_error);
  EXPECT_EQ(dec.character, D(0, 0));
}

// ---------------------------------------------------------------- CRC-32

TEST(Crc32Test, KnownVector) {
  const std::vector<std::uint8_t> msg = {'1', '2', '3', '4', '5',
                                         '6', '7', '8', '9'};
  EXPECT_EQ(crc32(msg), 0xCBF43926u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> msg;
  for (int i = 0; i < 300; ++i) msg.push_back(static_cast<std::uint8_t>(i * 7));
  Crc32 inc;
  for (const auto b : msg) inc.update(b);
  EXPECT_EQ(inc.value(), crc32(msg));
}

TEST(Crc32Test, DetectsBitFlips) {
  std::vector<std::uint8_t> msg(64, 0xA5);
  const auto good = crc32(msg);
  msg[20] ^= 0x08;
  EXPECT_NE(crc32(msg), good);
}

// ---------------------------------------------------------------- frames

TEST(FcFrameTest, HeaderRoundTrip) {
  FcHeader h;
  h.r_ctl = 0x22;
  h.d_id = 0x010203;
  h.s_id = 0x040506;
  h.type = 0x08;  // SCSI-FCP style
  h.f_ctl = 0x090A0B;
  h.seq_id = 0x10;
  h.seq_cnt = 0x1234;
  h.ox_id = 0x5678;
  h.rx_id = 0x9ABC;
  h.parameter = 0xDEADBEEF;
  const auto wire = encode_header(h);
  ASSERT_EQ(wire.size(), kFcHeaderSize);
  const auto parsed = parse_header(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, h);
}

TEST(FcFrameTest, FrameSymbolsRoundTrip) {
  FcFrame f;
  f.header.d_id = 0x000002;
  f.header.s_id = 0x000001;
  f.payload = {1, 2, 3, 4, 5};
  const auto symbols = frame_to_symbols(f);
  // SOF(4) + header(24) + payload(5) + crc(4) + EOF(4)
  ASSERT_EQ(symbols.size(), 4 + 24 + 5 + 4 + 4u);
  // Body excludes the ordered sets.
  std::vector<std::uint8_t> body;
  for (std::size_t i = 4; i < symbols.size() - 4; ++i) {
    ASSERT_FALSE(symbols[i].control);
    body.push_back(symbols[i].data);
  }
  const auto parsed = parse_frame_body(body);
  ASSERT_EQ(parsed.status, FcParseStatus::kOk);
  EXPECT_EQ(parsed.frame.header, f.header);
  EXPECT_EQ(parsed.frame.payload, f.payload);
}

TEST(FcFrameTest, CorruptedBodyFailsCrc) {
  FcFrame f;
  f.payload = {9, 9, 9, 9};
  const auto symbols = frame_to_symbols(f);
  std::vector<std::uint8_t> body;
  for (std::size_t i = 4; i < symbols.size() - 4; ++i) {
    body.push_back(symbols[i].data);
  }
  body[26] ^= 0x01;  // payload corruption
  EXPECT_EQ(parse_frame_body(body).status, FcParseStatus::kCrcError);
}

TEST(FcFrameTest, OrderedSetsDistinctAndParseable) {
  const OrderedSet all[] = {OrderedSet::kIdle,  OrderedSet::kRRdy,
                            OrderedSet::kSofI3, OrderedSet::kSofN3,
                            OrderedSet::kEofN,  OrderedSet::kEofT};
  std::set<std::uint64_t> seen;
  for (const auto os : all) {
    const auto chars = ordered_set_chars(os);
    EXPECT_EQ(chars[0], K(28, 5));
    std::uint64_t key = 0;
    for (const auto c : chars) key = (key << 9) | (c.value | (c.is_k << 8));
    EXPECT_TRUE(seen.insert(key).second);
    const auto parsed =
        parse_ordered_set(std::span<const Char8, 4>(chars.data(), 4));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, os);
  }
}

// ---------------------------------------------------------------- ports

struct FcPair {
  sim::Simulator sim;
  link::DuplexLink cable{sim, "fc", sim::picoseconds(9'412),
                         sim::nanoseconds(5)};
  FcPort a;
  FcPort b;
  std::vector<FcFrame> at_b;
  std::vector<FcFrame> at_a;

  explicit FcPair(FcPort::Config config = {})
      : a(sim, "a", config), b(sim, "b", config) {
    a.attach(cable.b_to_a(), cable.a_to_b());
    b.attach(cable.a_to_b(), cable.b_to_a());
    a.on_frame([this](FcFrame f, sim::SimTime) { at_a.push_back(std::move(f)); });
    b.on_frame([this](FcFrame f, sim::SimTime) { at_b.push_back(std::move(f)); });
  }

  static FcFrame frame(std::uint8_t tag, std::size_t size = 64) {
    FcFrame f;
    f.header.d_id = 2;
    f.header.s_id = 1;
    f.header.seq_cnt = tag;
    f.payload.assign(size, tag);
    return f;
  }
};

TEST(FcPortTest, DeliversFramesInOrder) {
  FcPair net;
  for (std::uint8_t i = 0; i < 20; ++i) net.a.send(FcPair::frame(i));
  net.sim.run();
  ASSERT_EQ(net.at_b.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) {
    EXPECT_EQ(net.at_b[i].header.seq_cnt, i);
    EXPECT_EQ(net.at_b[i].payload[0], i);
  }
  EXPECT_EQ(net.b.stats().crc_errors, 0u);
}

TEST(FcPortTest, CreditLimitsOutstandingFrames) {
  FcPort::Config pc;
  pc.bb_credit = 2;
  pc.rx_buffers = 2;
  pc.rx_processing_time = sim::microseconds(50);  // slow receiver
  FcPair net(pc);
  for (std::uint8_t i = 0; i < 12; ++i) net.a.send(FcPair::frame(i));
  net.sim.run();
  // Credit gating: every frame still arrives, nothing overruns the two
  // receive buffers, and the sender observed at least one stall.
  EXPECT_EQ(net.at_b.size(), 12u);
  EXPECT_EQ(net.b.stats().rx_overflows, 0u);
  EXPECT_GT(net.a.stats().credit_stall_events, 0u);
  EXPECT_EQ(net.b.stats().rrdy_sent, 12u);
  EXPECT_EQ(net.a.stats().rrdy_received, 12u);
}

TEST(FcPortTest, FullDuplexTrafficIndependent) {
  FcPair net;
  for (std::uint8_t i = 0; i < 10; ++i) {
    net.a.send(FcPair::frame(i));
    net.b.send(FcPair::frame(static_cast<std::uint8_t>(100 + i)));
  }
  net.sim.run();
  EXPECT_EQ(net.at_b.size(), 10u);
  EXPECT_EQ(net.at_a.size(), 10u);
}

// ------------------------------------------------------------- serdes

TEST(FcSerdesTest, WireRoundTripIsIdentity) {
  FcFrame f = FcPair::frame(7, 32);
  const auto symbols = frame_to_symbols(f);
  const auto wire = phy::FcSerdes::encode(symbols);
  EXPECT_EQ(wire.groups.size(), symbols.size());
  const auto decoded = phy::FcSerdes::decode(wire);
  EXPECT_EQ(decoded.code_violations, 0u);
  EXPECT_EQ(decoded.disparity_errors, 0u);
  ASSERT_EQ(decoded.symbols.size(), symbols.size());
  EXPECT_TRUE(std::equal(symbols.begin(), symbols.end(),
                         decoded.symbols.begin()));
}

TEST(FcSerdesTest, WireBitFlipSurfacesAsCodeOrDisparityError) {
  // Sweep a single-bit fault across a stretch of wire; 8b/10b must flag
  // every one as a code violation, a disparity error, or (at worst) decode
  // to a different character — it can never vanish silently AND corrupt
  // nothing. Count how the error surface distributes.
  FcFrame f = FcPair::frame(3, 16);
  const auto symbols = frame_to_symbols(f);
  int detected = 0;
  int miscoded = 0;
  const auto baseline = phy::FcSerdes::encode(symbols);
  for (std::size_t i = 0; i < baseline.groups.size(); ++i) {
    for (unsigned bit = 0; bit < 10; ++bit) {
      auto wire = baseline;
      phy::flip_wire_bit(wire, i, bit);
      const auto decoded = phy::FcSerdes::decode(wire);
      if (decoded.code_violations > 0 || decoded.disparity_errors > 0) {
        ++detected;
      } else {
        ++miscoded;
        EXPECT_FALSE(std::equal(symbols.begin(), symbols.end(),
                                decoded.symbols.begin(),
                                decoded.symbols.end()))
            << "bit flip vanished silently at group " << i << " bit " << bit;
      }
    }
  }
  // The vast majority of single-bit wire faults are detected at the PHY.
  EXPECT_GT(detected, miscoded);
}

}  // namespace
}  // namespace hsfi::fc
