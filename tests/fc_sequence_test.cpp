// Tests for FC-2 sequences: builder delimiters, reassembly, loss handling
// (class 3: a hole abandons the sequence), and end-to-end multi-frame
// transfer across a link with the injector dropping a middle frame.
#include <gtest/gtest.h>

#include <vector>

#include "core/device.hpp"
#include "fc/port.hpp"
#include "fc/sequence.hpp"
#include "link/channel.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hsfi::fc {
namespace {

FcHeader header_for(std::uint8_t seq_id) {
  FcHeader h;
  h.d_id = 0x020000;
  h.s_id = 0x010000;
  h.seq_id = seq_id;
  return h;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> v(n);
  for (auto& b : v) b = static_cast<std::uint8_t>(rng.next_u32());
  return v;
}

TEST(SequenceBuilderTest, SingleFrameSequenceUsesInitiateAndTerminate) {
  const auto frames = SequenceBuilder::build(header_for(1), pattern(100, 1));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].sof, OrderedSet::kSofI3);
  EXPECT_EQ(frames[0].eof, OrderedSet::kEofT);
  EXPECT_EQ(frames[0].header.seq_cnt, 0);
}

TEST(SequenceBuilderTest, MultiFrameDelimitersAndCounts) {
  const auto frames =
      SequenceBuilder::build(header_for(2), pattern(1000, 2), 256);
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_EQ(frames[0].sof, OrderedSet::kSofI3);
  EXPECT_EQ(frames[0].eof, OrderedSet::kEofN);
  for (std::size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(frames[i].sof, OrderedSet::kSofN3);
    EXPECT_EQ(frames[i].eof, OrderedSet::kEofN);
  }
  EXPECT_EQ(frames[3].sof, OrderedSet::kSofN3);
  EXPECT_EQ(frames[3].eof, OrderedSet::kEofT);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].header.seq_cnt, i);
  }
  EXPECT_EQ(frames[0].payload.size(), 256u);
  EXPECT_EQ(frames[3].payload.size(), 1000u - 3 * 256u);
}

TEST(SequenceBuilderTest, EmptyPayloadStillMakesOneFrame) {
  const auto frames = SequenceBuilder::build(header_for(3), {});
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].payload.empty());
  EXPECT_EQ(frames[0].eof, OrderedSet::kEofT);
}

class SequenceRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SequenceRoundTrip, BuildFeedReassembles) {
  const auto size = static_cast<std::size_t>(GetParam());
  const auto payload = pattern(size, size + 11);
  std::vector<std::uint8_t> got;
  int completions = 0;
  SequenceReassembler reasm([&](std::uint32_t s_id, std::uint8_t seq_id,
                                std::vector<std::uint8_t> p) {
    EXPECT_EQ(s_id, 0x010000u);
    EXPECT_EQ(seq_id, 7);
    got = std::move(p);
    ++completions;
  });
  for (const auto& f :
       SequenceBuilder::build(header_for(7), payload, 128)) {
    reasm.feed(f);
  }
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(reasm.open_sequences(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SequenceRoundTrip,
                         ::testing::Values(1, 127, 128, 129, 1000, 5000));

TEST(SequenceReassemblerTest, MissingMiddleFrameAbandonsSequence) {
  int completions = 0;
  SequenceReassembler reasm(
      [&](std::uint32_t, std::uint8_t, std::vector<std::uint8_t>) {
        ++completions;
      });
  auto frames = SequenceBuilder::build(header_for(1), pattern(600, 5), 128);
  ASSERT_EQ(frames.size(), 5u);
  frames.erase(frames.begin() + 2);  // class-3 loss of a middle frame
  for (const auto& f : frames) reasm.feed(f);
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(reasm.stats().sequences_aborted, 1u);
  EXPECT_EQ(reasm.open_sequences(), 0u);
}

TEST(SequenceReassemblerTest, InterleavedSequencesFromTwoSendersBothComplete) {
  int completions = 0;
  SequenceReassembler reasm(
      [&](std::uint32_t, std::uint8_t, std::vector<std::uint8_t>) {
        ++completions;
      });
  auto h1 = header_for(1);
  auto h2 = header_for(1);
  h2.s_id = 0x030000;  // different originator, same SEQ_ID
  const auto s1 = SequenceBuilder::build(h1, pattern(300, 6), 128);
  const auto s2 = SequenceBuilder::build(h2, pattern(300, 7), 128);
  for (std::size_t i = 0; i < s1.size(); ++i) {
    reasm.feed(s1[i]);
    reasm.feed(s2[i]);
  }
  EXPECT_EQ(completions, 2);
}

TEST(SequenceReassemblerTest, NewInitiationPreemptsUnfinishedSequence) {
  int completions = 0;
  SequenceReassembler reasm(
      [&](std::uint32_t, std::uint8_t, std::vector<std::uint8_t>) {
        ++completions;
      });
  const auto first = SequenceBuilder::build(header_for(1), pattern(600, 8), 128);
  reasm.feed(first[0]);  // leave it unfinished
  const auto second = SequenceBuilder::build(header_for(1), pattern(100, 9), 128);
  reasm.feed(second[0]);
  EXPECT_EQ(completions, 1);  // the new single-frame sequence completes
  EXPECT_EQ(reasm.stats().sequences_aborted, 1u);
}

TEST(SequenceTest, EndToEndAcrossInjectedLinkLosesOnlyTheHitSequence) {
  // Two multi-frame sequences over a spliced FC link; the injector corrupts
  // exactly one frame (ONCE mode). Class 3 gives no retransmission, so the
  // sequence containing the hit aborts and the other survives intact.
  sim::Simulator sim;
  const sim::Duration period = sim::picoseconds(9'412);
  link::DuplexLink left(sim, "l", period, sim::nanoseconds(5));
  link::DuplexLink right(sim, "r", period, sim::nanoseconds(5));
  core::InjectorDevice::Config dc;
  dc.character_period = period;
  core::InjectorDevice device(sim, "fi", dc);
  FcPort a(sim, "a", {});
  FcPort b(sim, "b", {});
  a.attach(left.b_to_a(), left.a_to_b());
  device.attach_left(left.a_to_b(), left.b_to_a());
  device.attach_right(right.b_to_a(), right.a_to_b());
  b.attach(right.a_to_b(), right.b_to_a());

  std::vector<std::pair<std::uint8_t, std::size_t>> done;
  SequenceReassembler reasm([&](std::uint32_t, std::uint8_t seq_id,
                                std::vector<std::uint8_t> p) {
    done.emplace_back(seq_id, p.size());
  });
  b.on_frame([&reasm](FcFrame f, sim::SimTime) { reasm.feed(f); });

  core::InjectorConfig fault;
  fault.match_mode = core::MatchMode::kOnce;
  fault.corrupt_mode = core::CorruptMode::kToggle;
  fault.compare_data = 0x11111111;  // sequence 1's fill
  fault.compare_mask = 0xFFFFFFFF;
  fault.compare_ctl = 0x0;
  fault.compare_ctl_mask = 0xF;
  fault.corrupt_data = 0x00000001;
  device.apply(core::Direction::kLeftToRight, fault);

  auto h1 = header_for(1);
  for (auto& f : SequenceBuilder::build(
           h1, std::vector<std::uint8_t>(500, 0x11), 128)) {
    a.send(f);
  }
  auto h2 = header_for(2);
  for (auto& f : SequenceBuilder::build(
           h2, std::vector<std::uint8_t>(500, 0x22), 128)) {
    a.send(f);
  }
  sim.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].first, 2);     // only sequence 2 completed
  EXPECT_EQ(done[0].second, 500u);
  EXPECT_EQ(b.stats().crc_errors, 1u);
  // The hit landed on sequence 1's first frame, so its continuations were
  // rejected as orphans (had it landed mid-sequence, the open sequence
  // would count as aborted instead) — either way it never completes.
  EXPECT_GT(reasm.stats().frames_rejected + reasm.stats().sequences_aborted,
            0u);
}

}  // namespace
}  // namespace hsfi::fc
