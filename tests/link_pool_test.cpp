// Buffer-reuse regression tests for the channel's symbol-pool hot path.
//
// The contract under test (Burst doc, link/channel.hpp): delivered symbol
// storage is valid for the duration of on_burst — stable data, correct
// contents — and is recycled afterwards, so steady-state traffic stops
// allocating. Under AddressSanitizer the recycled storage is poisoned;
// SymbolPool.PoisonOnRelease proves the poison is really armed by reading
// a dangling span and expecting the process to die (the test is skipped in
// non-ASan builds, where the read is benign recycled memory).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "link/channel.hpp"
#include "link/symbol.hpp"
#include "link/symbol_pool.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define HSFI_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HSFI_TEST_ASAN 1
#endif
#endif

namespace {

using namespace hsfi;
using link::Symbol;

constexpr sim::Duration kPeriod = sim::picoseconds(12'500);
constexpr sim::Duration kDelay = sim::nanoseconds(5);

std::vector<Symbol> payload(std::size_t n, std::uint8_t base) {
  std::vector<Symbol> symbols;
  for (std::size_t i = 0; i < n; ++i) {
    symbols.push_back(link::data_symbol(static_cast<std::uint8_t>(base + i)));
  }
  return symbols;
}

/// Sink that checks the documented lifetime from the inside: the data must
/// be readable and correct at the start and still identical at the end of
/// on_burst (no recycling while the callback runs).
class LifetimeCheckingSink : public link::SymbolSink {
 public:
  void on_burst(const link::Burst& burst) override {
    const std::vector<Symbol> first_read(burst.symbols.begin(),
                                         burst.symbols.end());
    // Interleave work that tempts the channel to reuse buffers if the
    // recycle point were wrong (it must be after on_burst returns).
    checksum_ = 0;
    for (const auto& s : burst.symbols) {
      checksum_ = checksum_ * 31 + s.data;
    }
    ASSERT_EQ(first_read, burst.symbols)
        << "burst data changed during on_burst";
    bursts_.push_back(first_read);
  }

  [[nodiscard]] const std::vector<std::vector<Symbol>>& bursts() const {
    return bursts_;
  }

 private:
  std::vector<std::vector<Symbol>> bursts_;
  std::uint64_t checksum_ = 0;
};

TEST(SymbolPool, AcquireReusesReleasedCapacity) {
  link::SymbolBufferPool pool;
  auto buffer = pool.acquire();
  buffer.resize(64);
  const Symbol* storage = buffer.data();
  pool.release(std::move(buffer));

  auto again = pool.acquire();
  EXPECT_EQ(again.data(), storage) << "released capacity was not reused";
  EXPECT_TRUE(again.empty()) << "reused buffer must come back empty";
  EXPECT_GE(again.capacity(), 64u);
  EXPECT_EQ(pool.acquires(), 2u);
  EXPECT_EQ(pool.reuses(), 1u);
}

TEST(SymbolPool, FreelistIsBounded) {
  link::SymbolBufferPool pool(/*max_free=*/2);
  std::vector<std::vector<Symbol>> buffers;
  for (int i = 0; i < 5; ++i) {
    auto b = pool.acquire();
    b.resize(16);
    buffers.push_back(std::move(b));
  }
  for (auto& b : buffers) pool.release(std::move(b));
  // Only max_free buffers were parked; the rest were freed outright.
  for (int i = 0; i < 5; ++i) (void)pool.acquire();
  EXPECT_EQ(pool.reuses(), 2u);
}

TEST(SymbolPool, ZeroCapacityBuffersAreNotParked) {
  link::SymbolBufferPool pool;
  pool.release({});
  auto buffer = pool.acquire();
  EXPECT_EQ(pool.reuses(), 0u) << "an empty vector is not worth parking";
  (void)buffer;
}

TEST(ChannelPool, BurstDataStableForDocumentedLifetime) {
  sim::Simulator simulator;
  link::Channel channel(simulator, "ch", kPeriod, kDelay);
  LifetimeCheckingSink sink;
  channel.attach(sink);

  const auto sent_a = payload(32, 0x10);
  const auto sent_b = payload(48, 0x40);
  channel.transmit(sent_a);
  channel.transmit(sent_b);
  simulator.run();

  ASSERT_EQ(sink.bursts().size(), 2u);
  EXPECT_EQ(sink.bursts()[0], sent_a);
  EXPECT_EQ(sink.bursts()[1], sent_b);
}

TEST(ChannelPool, SteadyStateTrafficReusesBuffers) {
  sim::Simulator simulator;
  link::Channel channel(simulator, "ch", kPeriod, kDelay);
  LifetimeCheckingSink sink;
  channel.attach(sink);

  const auto symbols = payload(64, 0x20);
  for (int i = 0; i < 100; ++i) {
    channel.transmit(symbols);
    simulator.run();
  }
  ASSERT_EQ(sink.bursts().size(), 100u);
  const auto& pool = channel.burst_pool();
  EXPECT_EQ(pool.acquires(), 100u);
  // Every delivery after the first runs on a recycled buffer: the hot path
  // is allocation-free once warm. (>= 99 rather than == in case delivery
  // ever splits a transmit into multiple bursts; reuse must still dominate.)
  EXPECT_GE(pool.reuses(), 99u)
      << "steady-state bursts are supposed to recycle their symbol buffers";
}

/// Holds on to the span past on_burst — exactly what the lifetime contract
/// forbids.
class DanglingSink : public link::SymbolSink {
 public:
  void on_burst(const link::Burst& burst) override {
    data_ = burst.symbols.data();
    size_ = burst.symbols.size();
  }
  [[nodiscard]] const Symbol* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  const Symbol* data_ = nullptr;
  std::size_t size_ = 0;
};

TEST(SymbolPoolDeathTest, PoisonOnRelease) {
#ifndef HSFI_TEST_ASAN
  GTEST_SKIP() << "poison detection needs an AddressSanitizer build";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        sim::Simulator simulator;
        link::Channel channel(simulator, "ch", kPeriod, kDelay);
        DanglingSink sink;
        channel.attach(sink);
        channel.transmit(payload(32, 0x30));
        simulator.run();
        // The buffer is back in the pool and poisoned; this read is the
        // use-after-recycle bug the poison exists to catch.
        volatile auto raw = sink.data()[0].data;
        (void)raw;
      },
      "use-after-poison");
#endif
}

}  // namespace
