// Integration tests for the InjectorDevice spliced into a live link:
// transparency, latency, bi-directional independence, CRC repatch, capture,
// and stream statistics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/capture.hpp"
#include "core/device.hpp"
#include "link/channel.hpp"
#include "myrinet/host_iface.hpp"
#include "myrinet/packet.hpp"
#include "sim/simulator.hpp"

namespace hsfi::core {
namespace {

using myrinet::Delivered;
using myrinet::HostInterface;
using myrinet::Packet;
using sim::microseconds;
using sim::nanoseconds;
using sim::picoseconds;

constexpr sim::Duration kPeriod = picoseconds(12'500);

/// hostA --cableL-- [device] --cableR-- hostB
struct SplicedLink {
  sim::Simulator sim;
  link::DuplexLink cable_l{sim, "L", kPeriod, nanoseconds(5)};
  link::DuplexLink cable_r{sim, "R", kPeriod, nanoseconds(5)};
  InjectorDevice device;
  HostInterface host_a;
  HostInterface host_b;
  std::vector<Delivered> at_a;
  std::vector<Delivered> at_b;

  static HostInterface::Config nic_config() {
    HostInterface::Config c;
    c.rx_processing_time = nanoseconds(100);
    return c;
  }

  explicit SplicedLink(InjectorDevice::Config dc = {})
      : device(sim, "fi0", dc),
        host_a(sim, "hostA", nic_config()),
        host_b(sim, "hostB", nic_config()) {
    host_a.attach(/*rx=*/cable_l.b_to_a(), /*tx=*/cable_l.a_to_b());
    device.attach_left(/*rx=*/cable_l.a_to_b(), /*tx=*/cable_l.b_to_a());
    device.attach_right(/*rx=*/cable_r.b_to_a(), /*tx=*/cable_r.a_to_b());
    host_b.attach(/*rx=*/cable_r.a_to_b(), /*tx=*/cable_r.b_to_a());
    host_a.on_deliver([this](Delivered f, sim::SimTime) {
      at_a.push_back(std::move(f));
    });
    host_b.on_deliver([this](Delivered f, sim::SimTime) {
      at_b.push_back(std::move(f));
    });
  }

  static Packet packet(std::vector<std::uint8_t> payload) {
    Packet p;
    p.marker = 0x00;
    p.type = myrinet::kTypeData;
    p.payload = std::move(payload);
    return p;
  }
};

TEST(InjectorDeviceTest, TransparentPassThroughBothDirections) {
  SplicedLink net;
  for (std::uint8_t i = 0; i < 30; ++i) {
    net.host_a.send(SplicedLink::packet({i, 0xA0}));
    net.host_b.send(SplicedLink::packet({i, 0xB0}));
  }
  net.sim.run();
  ASSERT_EQ(net.at_b.size(), 30u);
  ASSERT_EQ(net.at_a.size(), 30u);
  for (std::uint8_t i = 0; i < 30; ++i) {
    EXPECT_EQ(net.at_b[i].payload[0], i);
    EXPECT_EQ(net.at_a[i].payload[0], i);
  }
  EXPECT_EQ(net.host_a.stats().crc_errors, 0u);
  EXPECT_EQ(net.host_b.stats().crc_errors, 0u);
}

TEST(InjectorDeviceTest, AddedLatencyMatchesPipelineDepth) {
  // Measure one-way delivery time with and without the device; the
  // difference must be within a couple of character periods of nominal.
  auto measure = [](bool with_device) {
    if (with_device) {
      SplicedLink net;
      net.host_a.send(SplicedLink::packet({0x42}));
      net.sim.run();
      return net.sim.now();
    }
    sim::Simulator s;
    link::DuplexLink cable(s, "d", kPeriod, nanoseconds(10));  // both cables
    HostInterface a(s, "a", SplicedLink::nic_config());
    HostInterface b(s, "b", SplicedLink::nic_config());
    a.attach(cable.b_to_a(), cable.a_to_b());
    b.attach(cable.a_to_b(), cable.b_to_a());
    bool got = false;
    b.on_deliver([&](Delivered, sim::SimTime) { got = true; });
    a.send(SplicedLink::packet({0x42}));
    s.run();
    EXPECT_TRUE(got);
    return s.now();
  };
  const auto direct = measure(false);
  const auto spliced = measure(true);
  const auto added = spliced - direct;
  InjectorDevice::Config dc;
  const auto nominal = kPeriod * static_cast<sim::Duration>(dc.fifo.latency_chars);
  EXPECT_GE(added, nominal - 2 * kPeriod);
  EXPECT_LE(added, nominal + 4 * kPeriod);
}

TEST(InjectorDeviceTest, DirectionsConfiguredIndependently) {
  SplicedLink net;
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_data = 0x000000AB;
  cfg.compare_mask = 0x000000FF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0x1;
  cfg.corrupt_data = 0x000000FF;
  cfg.crc_repatch = true;
  net.device.apply(Direction::kLeftToRight, cfg);  // corrupt only A->B

  net.host_a.send(SplicedLink::packet({0xAB}));
  net.host_b.send(SplicedLink::packet({0xAB}));
  net.sim.run();
  ASSERT_EQ(net.at_b.size(), 1u);
  ASSERT_EQ(net.at_a.size(), 1u);
  EXPECT_EQ(net.at_b[0].payload[0], 0xAB ^ 0xFF);  // corrupted
  EXPECT_EQ(net.at_a[0].payload[0], 0xAB);         // untouched
}

TEST(InjectorDeviceTest, CrcRepatchMakesCorruptionInvisibleToCrc) {
  SplicedLink net;
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  cfg.compare_data = 0x00001818;
  cfg.compare_mask = 0x0000FFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0x3;
  cfg.corrupt_data = 0x00001918;
  cfg.corrupt_mask = 0x0000FFFF;
  cfg.crc_repatch = true;
  net.device.apply(Direction::kLeftToRight, cfg);

  net.host_a.send(SplicedLink::packet({0x55, 0x18, 0x18, 0x66}));
  net.sim.run();
  ASSERT_EQ(net.at_b.size(), 1u);
  EXPECT_EQ(net.at_b[0].payload,
            (std::vector<std::uint8_t>{0x55, 0x19, 0x18, 0x66}));
  EXPECT_EQ(net.host_b.stats().crc_errors, 0u);
  EXPECT_EQ(net.device.frames_crc_patched(Direction::kLeftToRight), 1u);
}

TEST(InjectorDeviceTest, WithoutRepatchCorruptionIsDroppedByCrc) {
  SplicedLink net;
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  cfg.compare_data = 0x00001818;
  cfg.compare_mask = 0x0000FFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0x3;
  cfg.corrupt_data = 0x00001918;
  cfg.corrupt_mask = 0x0000FFFF;
  cfg.crc_repatch = false;
  net.device.apply(Direction::kLeftToRight, cfg);

  net.host_a.send(SplicedLink::packet({0x55, 0x18, 0x18, 0x66}));
  net.sim.run();
  EXPECT_TRUE(net.at_b.empty());
  EXPECT_EQ(net.host_b.stats().crc_errors, 1u);
}

TEST(InjectorDeviceTest, OnceModeInjectsSingleControlledError) {
  // "This mode is useful if the user wants to inject only one controlled,
  // synchronous error and study its effects over a relatively long time."
  SplicedLink net;
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOnce;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_data = 0x000000C7;
  cfg.compare_mask = 0x000000FF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0x1;
  cfg.corrupt_data = 0x00000001;
  cfg.crc_repatch = true;
  net.device.apply(Direction::kLeftToRight, cfg);

  for (int i = 0; i < 5; ++i) {
    net.host_a.send(SplicedLink::packet({0xC7}));
  }
  net.sim.run();
  ASSERT_EQ(net.at_b.size(), 5u);
  EXPECT_EQ(net.at_b[0].payload[0], 0xC6);  // only the first corrupted
  for (std::size_t i = 1; i < 5; ++i) EXPECT_EQ(net.at_b[i].payload[0], 0xC7);
  EXPECT_EQ(net.device.fifo_stats(Direction::kLeftToRight).injections, 1u);
}

TEST(InjectorDeviceTest, CaptureRecordsSurroundingBytes) {
  InjectorDevice::Config dc;
  dc.capture.pre_context = 4;
  dc.capture.post_context = 4;
  SplicedLink net(dc);
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOnce;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_data = 0x000000DD;
  cfg.compare_mask = 0x000000FF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0x1;
  cfg.corrupt_data = 0x00000001;
  cfg.crc_repatch = true;
  net.device.apply(Direction::kLeftToRight, cfg);

  net.host_a.send(SplicedLink::packet({0x11, 0x22, 0xDD, 0x33, 0x44, 0x55}));
  net.sim.run();
  const auto& events = net.device.capture(Direction::kLeftToRight).events();
  ASSERT_EQ(events.size(), 1u);
  // The pre-context ends with the matched byte (pre-corruption view).
  ASSERT_FALSE(events[0].before.empty());
  EXPECT_EQ(events[0].before.back().data, 0xDD);
  EXPECT_EQ(events[0].after.size(), 4u);
  EXPECT_NE(net.device.capture(Direction::kLeftToRight).render().find("event"),
            std::string::npos);
}

TEST(InjectorDeviceTest, StreamStatisticsCountFramesAndIdentifiers) {
  SplicedLink net;
  // Payload shaped like the host stack's: dst(6) + src(6) + data.
  std::vector<std::uint8_t> payload;
  myrinet::put_eth(payload, myrinet::EthAddr::from_u64(0x0000000000B0B0));
  myrinet::put_eth(payload, myrinet::EthAddr::from_u64(0x0000000000A0A0));
  payload.push_back(0x77);
  for (int i = 0; i < 3; ++i) net.host_a.send(SplicedLink::packet(payload));
  net.sim.run();
  const auto& st = net.device.stream_stats(Direction::kLeftToRight);
  EXPECT_EQ(st.counters().frames, 3u);
  EXPECT_EQ(st.counters().data_frames, 3u);
  EXPECT_EQ(st.counters().gaps, 3u);
  const auto& pairs = st.pair_counts();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs.begin()->second, 3u);
  EXPECT_EQ(pairs.begin()->first.first, 0x0000000000B0B0u);
}

TEST(InjectorDeviceTest, RoutesMappedThroughInBothDirections) {
  // §3.5: "the device to be transparent to the network structure, as routes
  // are correctly mapped through in both directions" — flow-control symbols
  // and framing survive the splice. Exercised heavily in the nftape tests;
  // here: GAP-separated packets stay distinct.
  SplicedLink net;
  net.host_a.send(SplicedLink::packet({0x01}));
  net.host_a.send(SplicedLink::packet({0x02}));
  net.sim.run();
  ASSERT_EQ(net.at_b.size(), 2u);
  EXPECT_EQ(net.at_b[0].payload[0], 0x01);
  EXPECT_EQ(net.at_b[1].payload[0], 0x02);
}

TEST(CaptureBufferTest, CountsDroppedEventsInsteadOfLyingByOmission) {
  CaptureBuffer::Params params;
  params.pre_context = 2;
  params.post_context = 2;
  params.max_events = 1;
  CaptureBuffer cap(params);

  // First event completes and is retained.
  cap.trigger(nanoseconds(10));
  cap.feed(link::data_symbol(0x01), nanoseconds(10));
  // A trigger while the first event is still collecting post-context is
  // dropped, not silently ignored.
  cap.trigger(nanoseconds(11));
  EXPECT_EQ(cap.dropped_events(), 1u);
  cap.feed(link::data_symbol(0x02), nanoseconds(12));
  ASSERT_EQ(cap.events().size(), 1u);

  // A second completed event exceeds max_events and is counted as dropped.
  cap.trigger(nanoseconds(20));
  cap.feed(link::data_symbol(0x03), nanoseconds(20));
  cap.feed(link::data_symbol(0x04), nanoseconds(21));
  EXPECT_EQ(cap.events().size(), 1u);
  EXPECT_EQ(cap.dropped_events(), 2u);

  // The serial readout surfaces the count, and clear() resets it.
  EXPECT_NE(cap.render().find("dropped events: 2"), std::string::npos);
  cap.clear();
  EXPECT_EQ(cap.dropped_events(), 0u);
  EXPECT_EQ(cap.render().find("dropped events"), std::string::npos);
}

}  // namespace
}  // namespace hsfi::core
