// Timing and framing tests for the UART/SPI path: RS-232 byte pacing at
// the configured baud rate, in-order delivery, the boot-configuration
// gate, and SPI frame validity.
#include <gtest/gtest.h>

#include <vector>

#include "core/uart.hpp"
#include "sim/simulator.hpp"

namespace hsfi::core {
namespace {

TEST(UartTest, BytePacedAtBaudRate) {
  sim::Simulator sim;
  Uart uart(sim);
  uart.configure();
  std::vector<sim::SimTime> arrivals;
  uart.on_spi_rx([&](std::uint16_t frame) {
    ASSERT_TRUE(spi_frame_valid(frame));
    arrivals.push_back(sim.now());
  });
  for (int i = 0; i < 10; ++i) {
    uart.rs232_write(static_cast<std::uint8_t>('A' + i));
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 10u);
  // 115200 baud, 10 bits per byte => ~86.8 us between bytes.
  const auto byte_time = uart.byte_time();
  EXPECT_NEAR(sim::to_microseconds(byte_time), 86.8, 0.1);
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i] - arrivals[i - 1], byte_time);
  }
}

TEST(UartTest, CustomBaudChangesPacing) {
  sim::Simulator sim;
  Uart::Config cfg;
  cfg.baud = 9'600;
  Uart uart(sim, cfg);
  EXPECT_NEAR(sim::to_microseconds(uart.byte_time()), 1041.7, 0.5);
}

TEST(UartTest, UnconfiguredChipDropsInbound) {
  // "The communications handler configures the UART on boot-up" — before
  // that, nothing reaches the FPGA.
  sim::Simulator sim;
  Uart uart(sim);
  int got = 0;
  uart.on_spi_rx([&](std::uint16_t) { ++got; });
  uart.rs232_write('X');
  sim.run();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(uart.bytes_to_fpga(), 0u);

  uart.configure();
  uart.rs232_write('Y');
  sim.run();
  EXPECT_EQ(got, 1);
  EXPECT_EQ(uart.bytes_to_fpga(), 1u);
}

TEST(UartTest, TransmitPathPacedAndOrdered) {
  sim::Simulator sim;
  Uart uart(sim);
  uart.configure();
  std::vector<std::uint8_t> got;
  std::vector<sim::SimTime> when;
  uart.on_rs232_read([&](std::uint8_t b) {
    got.push_back(b);
    when.push_back(sim.now());
  });
  for (int i = 0; i < 5; ++i) {
    uart.spi_tx(spi_frame(static_cast<std::uint8_t>('0' + i)));
  }
  uart.spi_tx(0x0042);  // invalid frame: must be ignored
  sim.run();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], '0' + i);
  }
  for (std::size_t i = 1; i < when.size(); ++i) {
    EXPECT_EQ(when[i] - when[i - 1], uart.byte_time());
  }
  EXPECT_EQ(uart.bytes_to_host(), 5u);
}

TEST(UartTest, FullDuplexDirectionsIndependent) {
  sim::Simulator sim;
  Uart uart(sim);
  uart.configure();
  int up = 0;
  int down = 0;
  uart.on_spi_rx([&](std::uint16_t) { ++up; });
  uart.on_rs232_read([&](std::uint8_t) { ++down; });
  for (int i = 0; i < 20; ++i) {
    uart.rs232_write(0x11);
    uart.spi_tx(spi_frame(0x22));
  }
  sim.run();
  EXPECT_EQ(up, 20);
  EXPECT_EQ(down, 20);
}

}  // namespace
}  // namespace hsfi::core
