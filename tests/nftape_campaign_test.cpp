// Tests for the NFTAPE-style campaign runner and report rendering.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "analysis/manifestation.hpp"
#include "myrinet/control.hpp"
#include "nftape/campaign.hpp"
#include "nftape/faults.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

namespace hsfi::nftape {
namespace {

using myrinet::ControlSymbol;
using sim::microseconds;
using sim::milliseconds;

TestbedConfig campaign_config() {
  TestbedConfig c;
  c.map_period = milliseconds(20);
  c.map_reply_window = milliseconds(2);
  c.nic_config.rx_processing_time = microseconds(10);
  c.send_stack_time = microseconds(2);
  return c;
}

CampaignSpec quick_spec(std::string name) {
  CampaignSpec s;
  s.name = std::move(name);
  s.warmup = milliseconds(10);
  s.duration = milliseconds(200);
  s.drain = milliseconds(10);
  s.workload.udp_interval = microseconds(200);
  s.workload.payload_size = 64;
  return s;
}

TEST(CampaignTest, BaselineRunHasNoLoss) {
  Testbed bed(campaign_config());
  bed.start();
  bed.settle(milliseconds(60));
  CampaignRunner runner(bed);
  const auto r = runner.run(quick_spec("baseline"));
  EXPECT_GT(r.messages_sent, 1000u);
  // Loss-free up to window-boundary skew (messages sent during warmup may
  // be delivered inside the window and vice versa).
  const auto sent = static_cast<double>(r.messages_sent);
  const auto received = static_cast<double>(r.messages_received);
  EXPECT_NEAR(received, sent, 0.01 * sent) << "baseline must be loss-free";
  EXPECT_EQ(r.injections, 0u);
  EXPECT_DOUBLE_EQ(r.loss_rate(), 0.0);
}

TEST(CampaignTest, GapCorruptionCausesLoss) {
  Testbed bed(campaign_config());
  bed.start();
  bed.settle(milliseconds(60));
  CampaignRunner runner(bed);

  auto spec = quick_spec("GAP->GO");
  spec.fault_to_switch =
      control_symbol_corruption(ControlSymbol::kGap, ControlSymbol::kGo);
  const auto r = runner.run(spec);
  EXPECT_GT(r.injections, 0u);
  EXPECT_GT(r.loss_rate(), 0.0) << "GAP corruption must lose packets";
  // Merged packets pass the link CRC (appending a CRC-8 to a message
  // leaves the register at zero, so the switch's rewritten CRC checks out
  // for the concatenation) and die at the UDP layer as length/checksum
  // errors instead — same behavior the real network would show.
  EXPECT_GT(r.udp_checksum_drops, 0u) << "merged frames must die at UDP";
}

TEST(CampaignTest, RunsAreRepeatable) {
  // "To ensure the repeatability of the experiments, each campaign began
  // with the network in a known good state."
  Testbed bed(campaign_config());
  bed.start();
  bed.settle(milliseconds(60));
  CampaignRunner runner(bed);
  auto spec = quick_spec("repeat");
  spec.fault_to_switch =
      control_symbol_corruption(ControlSymbol::kStop, ControlSymbol::kGap);
  const auto r1 = runner.run(spec);
  const auto r2 = runner.run(spec);
  EXPECT_EQ(r1.messages_sent, r2.messages_sent);
  EXPECT_EQ(r1.messages_received, r2.messages_received);
  EXPECT_EQ(r1.injections, r2.injections);
}

TEST(CampaignTest, SerialAndDirectProgrammingAgree) {
  Testbed bed(campaign_config());
  bed.start();
  bed.settle(milliseconds(60));
  CampaignRunner runner(bed);
  auto spec = quick_spec("serial-vs-direct");
  spec.fault_to_switch =
      control_symbol_corruption(ControlSymbol::kGap, ControlSymbol::kIdle);
  spec.program_via_serial = true;
  const auto serial = runner.run(spec);
  const auto serial_cfg =
      bed.injector().config(core::Direction::kLeftToRight);
  spec.program_via_serial = false;
  const auto direct = runner.run(spec);
  // The programmed configuration must be byte-identical; the measured
  // outcome may differ slightly because the RS-232 exchange arms the
  // trigger ~20 ms later, changing how much pre-window mapping traffic is
  // exposed to the fault (real campaigns have the same sensitivity).
  EXPECT_EQ(serial_cfg.compare_data,
            bed.injector().config(core::Direction::kLeftToRight).compare_data);
  EXPECT_GT(serial.injections, 0u);
  EXPECT_GT(direct.injections, 0u);
  EXPECT_NEAR(serial.loss_rate(), direct.loss_rate(), 0.10);
}

TEST(CampaignTest, FaultFreeRunAfterFaultRunIsClean) {
  // The runner must disarm the injector between runs.
  Testbed bed(campaign_config());
  bed.start();
  bed.settle(milliseconds(60));
  CampaignRunner runner(bed);
  auto faulty = quick_spec("faulty");
  faulty.fault_to_switch =
      control_symbol_corruption(ControlSymbol::kGap, ControlSymbol::kGo);
  (void)runner.run(faulty);
  const auto clean = runner.run(quick_spec("clean"));
  EXPECT_EQ(clean.injections, 0u);
  EXPECT_DOUBLE_EQ(clean.loss_rate(), 0.0);
}

TEST(CampaignTest, ManifestationsAccountForEveryInjection) {
  // Tentpole invariant: each firing is followed downstream and lands in
  // exactly one taxonomy class, so the breakdown sums to the injection
  // count for every campaign — baseline and faulty alike.
  Testbed bed(campaign_config());
  bed.start();
  bed.settle(milliseconds(60));
  CampaignRunner runner(bed);

  const auto baseline = runner.run(quick_spec("baseline"));
  EXPECT_EQ(baseline.manifestations.total(), baseline.injections);
  EXPECT_EQ(baseline.manifestations.total(), 0u);

  auto spec = quick_spec("GAP->GO");
  spec.fault_to_switch =
      control_symbol_corruption(ControlSymbol::kGap, ControlSymbol::kGo);
  const auto r = runner.run(spec);
  ASSERT_GT(r.injections, 0u);
  EXPECT_EQ(r.manifestations.total(), r.injections);
  // GAP->GO merges frames, which must surface as non-masked effects.
  using analysis::Manifestation;
  EXPECT_LT(r.manifestations[Manifestation::kMasked], r.injections);
  // The firing -> first-effect latencies only exist for matched firings.
  EXPECT_EQ(r.manifestation_latency.count(),
            r.injections - r.manifestations[Manifestation::kMasked]);

  // The runner's metrics registry accumulated both runs.
  std::uint64_t counted = 0;
  for (const auto m : analysis::all_manifestations()) {
    counted += runner.metrics().counter_value(
        "manifest." + std::string(analysis::to_string(m)));
  }
  EXPECT_EQ(counted, baseline.injections + r.injections);
}

TEST(CampaignTest, GuardSettlesCountAgainstWatchdogBudget) {
  // The programming/disarm guards are CampaignSpec fields
  // (program_guard / disarm_guard) and their simulated time must flow
  // into the elapsed figure handed to RunControl::should_cancel — a
  // watchdog budget covers the whole run, guards included.
  auto elapsed_with_guards = [](sim::Duration guard) {
    Testbed bed(campaign_config());
    bed.start();
    bed.settle(milliseconds(60));
    CampaignRunner runner(bed);
    auto spec = quick_spec("guards");
    spec.duration = milliseconds(50);
    spec.program_guard = guard;
    spec.disarm_guard = guard;
    spec.fault_to_switch =
        control_symbol_corruption(ControlSymbol::kGap, ControlSymbol::kGo);
    sim::Duration max_elapsed = 0;
    RunControl control;
    control.should_cancel = [&max_elapsed](sim::Duration elapsed) {
      if (elapsed > max_elapsed) max_elapsed = elapsed;
      return false;
    };
    (void)runner.run(spec, &control);
    return max_elapsed;
  };

  const sim::Duration base = elapsed_with_guards(milliseconds(30));
  const sim::Duration padded = elapsed_with_guards(milliseconds(130));
  // Two guards, each grown by 100 ms, must surface as >= 200 ms more
  // budgeted time.
  EXPECT_GE(padded - base, milliseconds(200));
}

TEST(CampaignTest, OversizedGuardTripsWatchdog) {
  // A budget generous enough for the default guards must cancel the same
  // run when program_guard alone exceeds it — guards cannot hide from
  // the watchdog.
  Testbed bed(campaign_config());
  bed.start();
  bed.settle(milliseconds(60));
  CampaignRunner runner(bed);

  auto spec = quick_spec("oversized-guard");
  spec.fault_to_switch =
      control_symbol_corruption(ControlSymbol::kGap, ControlSymbol::kGo);
  RunControl control;
  control.should_cancel = [](sim::Duration elapsed) {
    return elapsed > milliseconds(1000);
  };
  // Sanity: the run fits the budget with the default 30 ms guards
  // (~250 ms window plus programming overhead).
  EXPECT_NO_THROW((void)runner.run(spec, &control));

  spec.program_guard = sim::seconds(2);
  EXPECT_THROW((void)runner.run(spec, &control), RunCancelled);
}

TEST(CampaignTest, DuplicateDeliveriesAreCountedNotClampedAway) {
  // loss_rate() must not hide received > sent behind a clamp; the
  // duplicates() accessor reports the overshoot explicitly.
  CampaignResult r;
  r.messages_sent = 100;
  r.messages_received = 103;
  EXPECT_EQ(r.duplicates(), 3u);
  EXPECT_DOUBLE_EQ(r.loss_rate(), 0.0);
  r.messages_received = 97;
  EXPECT_EQ(r.duplicates(), 0u);
  EXPECT_DOUBLE_EQ(r.loss_rate(), 0.03);

  // No live campaign in this testbed duplicates datagrams, but
  // window-boundary skew (warmup sends delivered inside the window) can
  // register a small overshoot — bounded like the baseline's loss check.
  Testbed bed(campaign_config());
  bed.start();
  bed.settle(milliseconds(60));
  CampaignRunner runner(bed);
  const auto live = runner.run(quick_spec("dups"));
  EXPECT_LE(live.duplicates(), live.messages_sent / 100);
}

TEST(ReportTest, RenderAlignsColumns) {
  Report rep("Table 4: control symbol corruption");
  rep.set_header({"Mask", "Replacement", "Sent", "Received", "Loss"});
  rep.add_row({"STOP", "IDLE", "4064", "3705", "8%"});
  rep.add_row({"GAP", "GO", "3132", "2785", "11%"});
  rep.add_note("each run started from a known good state");
  const auto text = rep.render();
  EXPECT_NE(text.find("Table 4"), std::string::npos);
  EXPECT_NE(text.find("STOP"), std::string::npos);
  EXPECT_NE(text.find("note:"), std::string::npos);
}

TEST(ReportTest, MarkdownHasSeparatorRow) {
  Report rep("t");
  rep.set_header({"a", "b"});
  rep.add_row({"1", "2"});
  const auto md = rep.markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(ReportTest, CellFormats) {
  EXPECT_EQ(cell("%d", 42), "42");
  EXPECT_EQ(cell("%.1f%%", 12.34), "12.3%");
}

}  // namespace
}  // namespace hsfi::nftape
