// Dual-media capability: the injector device spliced into a Fibre Channel
// link (the board's FCPHY side). Corruption of FC frames is caught by the
// FC CRC-32; ordered sets pass through transparently; credit flow control
// survives the splice.
#include <gtest/gtest.h>

#include <vector>

#include "core/device.hpp"
#include "fc/port.hpp"
#include "link/channel.hpp"
#include "sim/simulator.hpp"

namespace hsfi::fc {
namespace {

constexpr sim::Duration kFcPeriod = sim::picoseconds(9'412);

struct SplicedFcLink {
  sim::Simulator sim;
  link::DuplexLink left{sim, "fcl", kFcPeriod, sim::nanoseconds(5)};
  link::DuplexLink right{sim, "fcr", kFcPeriod, sim::nanoseconds(5)};
  core::InjectorDevice device;
  FcPort a;
  FcPort b;
  std::vector<FcFrame> at_b;

  explicit SplicedFcLink(FcPort::Config pc = {})
      : device(sim, "fi-fc",
               [] {
                 core::InjectorDevice::Config dc;
                 dc.character_period = kFcPeriod;
                 return dc;
               }()),
        a(sim, "a", pc),
        b(sim, "b", pc) {
    a.attach(left.b_to_a(), left.a_to_b());
    device.attach_left(left.a_to_b(), left.b_to_a());
    device.attach_right(right.b_to_a(), right.a_to_b());
    b.attach(right.a_to_b(), right.b_to_a());
    b.on_frame([this](FcFrame f, sim::SimTime) { at_b.push_back(std::move(f)); });
  }

  static FcFrame frame(std::uint8_t tag) {
    FcFrame f;
    f.header.d_id = 2;
    f.header.s_id = 1;
    f.header.seq_cnt = tag;
    f.payload.assign(48, tag);
    return f;
  }
};

TEST(FcInjectorTest, TransparentToFramesAndCredit) {
  SplicedFcLink net;
  for (std::uint8_t i = 0; i < 12; ++i) net.a.send(SplicedFcLink::frame(i));
  net.sim.run();
  ASSERT_EQ(net.at_b.size(), 12u);
  for (std::uint8_t i = 0; i < 12; ++i) {
    EXPECT_EQ(net.at_b[i].header.seq_cnt, i);
  }
  EXPECT_EQ(net.b.stats().crc_errors, 0u);
  EXPECT_EQ(net.a.stats().rrdy_received, 12u);  // credits crossed back
}

TEST(FcInjectorTest, PayloadCorruptionCaughtByCrc32) {
  SplicedFcLink net;
  core::InjectorConfig fault;
  fault.match_mode = core::MatchMode::kOn;
  fault.corrupt_mode = core::CorruptMode::kToggle;
  fault.compare_data = 0x37373737;  // the payload fill below
  fault.compare_mask = 0xFFFFFFFF;
  fault.compare_ctl = 0x0;
  fault.compare_ctl_mask = 0xF;
  fault.corrupt_data = 0x00000001;
  net.device.apply(core::Direction::kLeftToRight, fault);

  net.a.send(SplicedFcLink::frame(0x37));
  net.sim.run();
  EXPECT_TRUE(net.at_b.empty());
  EXPECT_EQ(net.b.stats().crc_errors, 1u);
  EXPECT_GT(net.device.fifo_stats(core::Direction::kLeftToRight).injections,
            0u);
}

TEST(FcInjectorTest, OrderedSetCorruptionBreaksFraming) {
  // Corrupt the K28.5 that leads every ordered set (data byte 0xBC with the
  // K flag) into a data character: SOF/EOF become unparseable and frames
  // are lost to malformed-set accounting — the FC-side analogue of the
  // Myrinet GAP campaign.
  SplicedFcLink net;
  core::InjectorConfig fault;
  fault.match_mode = core::MatchMode::kOn;
  fault.corrupt_mode = core::CorruptMode::kToggle;
  fault.compare_data = 0x000000BC;  // K28.5 encoding
  fault.compare_mask = 0x000000FF;
  fault.compare_ctl = 0x1;  // must be a special character
  fault.compare_ctl_mask = 0x1;
  fault.corrupt_ctl = 0x1;  // flip the K flag
  net.device.apply(core::Direction::kLeftToRight, fault);

  for (std::uint8_t i = 0; i < 5; ++i) net.a.send(SplicedFcLink::frame(i));
  net.sim.run_until(sim::milliseconds(5));
  EXPECT_TRUE(net.at_b.empty());
  EXPECT_GT(net.b.stats().stray_data, 0u);
}

TEST(FcInjectorTest, OnceModeDamagesExactlyOneFcFrame) {
  SplicedFcLink net;
  core::InjectorConfig fault;
  fault.match_mode = core::MatchMode::kOnce;
  fault.corrupt_mode = core::CorruptMode::kToggle;
  fault.compare_data = 0x00000019;  // seq tag of every frame below
  fault.compare_mask = 0x000000FF;
  fault.compare_ctl = 0x0;
  fault.compare_ctl_mask = 0x1;
  fault.corrupt_data = 0x00000040;
  net.device.apply(core::Direction::kLeftToRight, fault);

  for (int i = 0; i < 6; ++i) net.a.send(SplicedFcLink::frame(0x19));
  net.sim.run();
  EXPECT_EQ(net.at_b.size(), 5u);
  EXPECT_EQ(net.b.stats().crc_errors, 1u);
}

}  // namespace
}  // namespace hsfi::fc
