// Tests for the serial command plane: UART pacing, SPI framing, command
// decoding, acknowledgments, and live reconfiguration of the injector.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/command_plane.hpp"
#include "core/device.hpp"
#include "core/uart.hpp"
#include "sim/simulator.hpp"

namespace hsfi::core {
namespace {

struct Rig {
  sim::Simulator sim;
  InjectorDevice device{sim, "fi0", {}};
  Uart uart{sim};
  CommHandler comm{sim, uart, device};
  SerialControlHost host{sim, uart};

  std::vector<std::string> run_command(const std::string& line) {
    std::vector<std::string> got;
    host.send_command(line,
                      [&got](std::vector<std::string> lines) { got = lines; });
    sim.run();
    return got;
  }
};

TEST(CommandPlaneTest, PingPong) {
  Rig rig;
  const auto lines = rig.run_command("PING");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "PONG");
  EXPECT_EQ(lines[1], "OK");
}

TEST(CommandPlaneTest, SpiFrameHelpers) {
  const auto f = spi_frame(0xA5);
  EXPECT_TRUE(spi_frame_valid(f));
  EXPECT_EQ(spi_frame_data(f), 0xA5);
  EXPECT_FALSE(spi_frame_valid(0x00A5));
}

TEST(CommandPlaneTest, ConfiguresCompareAndCorruptVectors) {
  Rig rig;
  rig.run_command("CMPD L 00001818");
  rig.run_command("CMPM L 0000FFFF");
  rig.run_command("CORD L 00001918");
  rig.run_command("CORM L 0000FFFF");
  rig.run_command("CORR L REPLACE");
  rig.run_command("CMPC L 0 3");
  const auto lines = rig.run_command("MODE L ON");
  EXPECT_EQ(lines.back(), "OK");

  const auto& cfg = rig.device.config(Direction::kLeftToRight);
  EXPECT_EQ(cfg.compare_data, 0x00001818u);
  EXPECT_EQ(cfg.compare_mask, 0x0000FFFFu);
  EXPECT_EQ(cfg.corrupt_data, 0x00001918u);
  EXPECT_EQ(cfg.corrupt_mask, 0x0000FFFFu);
  EXPECT_EQ(cfg.corrupt_mode, CorruptMode::kReplace);
  EXPECT_EQ(cfg.match_mode, MatchMode::kOn);
  EXPECT_EQ(cfg.compare_ctl_mask, 0x3);
  // The other direction is untouched.
  EXPECT_EQ(rig.device.config(Direction::kRightToLeft).match_mode,
            MatchMode::kOff);
}

TEST(CommandPlaneTest, CrcRepatchToggle) {
  Rig rig;
  rig.run_command("CRCR R ON");
  EXPECT_TRUE(rig.device.config(Direction::kRightToLeft).crc_repatch);
  rig.run_command("CRCR R OFF");
  EXPECT_FALSE(rig.device.config(Direction::kRightToLeft).crc_repatch);
}

TEST(CommandPlaneTest, UnknownCommandAnswersErr) {
  Rig rig;
  const auto lines = rig.run_command("FROB L 1");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind("ERR", 0), 0u);
}

TEST(CommandPlaneTest, MalformedArgumentsAnswerErr) {
  Rig rig;
  EXPECT_EQ(rig.run_command("CMPD L XYZ").back().rfind("ERR", 0), 0u);
  EXPECT_EQ(rig.run_command("CMPD X 00000000").back().rfind("ERR", 0), 0u);
  EXPECT_EQ(rig.run_command("MODE L SIDEWAYS").back().rfind("ERR", 0), 0u);
  EXPECT_EQ(rig.run_command("CMPD L").back().rfind("ERR", 0), 0u);
  EXPECT_EQ(rig.run_command("CMPC L 5 GG").back().rfind("ERR", 0), 0u);
}

TEST(CommandPlaneTest, ErrorsDoNotDisturbConfiguration) {
  Rig rig;
  rig.run_command("CMPD L 12345678");
  rig.run_command("CMPD L NOTHEX");
  EXPECT_EQ(rig.device.config(Direction::kLeftToRight).compare_data,
            0x12345678u);
}

TEST(CommandPlaneTest, StatReadsBackCounters) {
  Rig rig;
  const auto lines = rig.run_command("STAT L");
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("chars=0"), std::string::npos);
  EXPECT_EQ(lines.back(), "OK");
}

TEST(CommandPlaneTest, CaptWithNoEventsSaysSo) {
  Rig rig;
  const auto lines = rig.run_command("CAPT R");
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(lines[0].find("no capture events"), std::string::npos);
}

TEST(CommandPlaneTest, InjectNowAndRearmAck) {
  Rig rig;
  EXPECT_EQ(rig.run_command("INJN L").back(), "OK");
  EXPECT_EQ(rig.run_command("REARM L").back(), "OK");
  EXPECT_EQ(rig.run_command("CLRS").back(), "OK");
}

TEST(CommandPlaneTest, CommandsSerializeAtBaudRate) {
  // "PING\n" is 5 bytes up, "PONG\r\n" + "OK\r\n" is 10 bytes down; at
  // 115200 baud a byte is ~86.8 us. The exchange must take at least the
  // wire time of the request plus the response.
  Rig rig;
  rig.run_command("PING");
  const double us = sim::to_microseconds(rig.sim.now());
  EXPECT_GT(us, 15 * 86.0);   // 15 bytes on the wire minimum
  EXPECT_LT(us, 40 * 90.0);   // but not wildly more
}

TEST(CommandPlaneTest, QueuedCommandsExecuteInOrder) {
  Rig rig;
  std::vector<int> order;
  rig.host.send_command("CMPD L 00000001",
                        [&](std::vector<std::string>) { order.push_back(1); });
  rig.host.send_command("CMPD L 00000002",
                        [&](std::vector<std::string>) { order.push_back(2); });
  rig.host.send_command("CMPD L 00000003",
                        [&](std::vector<std::string>) { order.push_back(3); });
  rig.sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(rig.device.config(Direction::kLeftToRight).compare_data, 3u);
  EXPECT_TRUE(rig.host.idle());
  EXPECT_EQ(rig.host.commands_completed(), 3u);
}

TEST(CommandPlaneTest, ReconfigurableWhileInserted) {
  // "the FPGA can be reprogrammed while inserted in the network" — the
  // decoder counts both outcomes and keeps running after errors.
  Rig rig;
  rig.run_command("MODE L ON");
  rig.run_command("BOGUS");
  rig.run_command("MODE L OFF");
  EXPECT_EQ(rig.comm.decoder().stats().commands_ok, 2u);
  EXPECT_EQ(rig.comm.decoder().stats().commands_err, 1u);
  EXPECT_EQ(rig.device.config(Direction::kLeftToRight).match_mode,
            MatchMode::kOff);
}

TEST(CommandPlaneTest, DescribeRoundTripsReadably) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOnce;
  cfg.corrupt_mode = CorruptMode::kReplace;
  cfg.compare_data = 0x1818;
  cfg.crc_repatch = true;
  const auto text = describe(cfg);
  EXPECT_NE(text.find("MODE ONCE"), std::string::npos);
  EXPECT_NE(text.find("CORR REPLACE"), std::string::npos);
  EXPECT_NE(text.find("CMPD 00001818"), std::string::npos);
  EXPECT_NE(text.find("CRCR ON"), std::string::npos);
}

}  // namespace
}  // namespace hsfi::core
