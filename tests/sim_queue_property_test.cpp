// Property test: the slot/generation EventQueue against a naive reference.
//
// The reference is a std::multimap<(when, schedule order), token> — the
// obviously-correct encoding of the queue's contract: events fire in time
// order, ties in scheduling order, cancellation removes exactly the one
// event named by the id. A seeded generator drives ~10k random
// schedule/cancel/fire operations through both implementations and checks
// they agree step for step, across several seeds (one of which stays on a
// single timestamp, the pure tie-break regime, and one of which cancels
// aggressively enough to churn the freelist hard).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"

namespace {

using hsfi::sim::EventId;
using hsfi::sim::EventQueue;
using hsfi::sim::SimTime;

/// Reference model: key = (when, schedule counter) so equal times fire in
/// scheduling order; value = the token the real queue's action records.
class ReferenceQueue {
 public:
  std::uint64_t schedule(SimTime when, std::uint64_t token) {
    const std::uint64_t ref_id = next_id_++;
    by_id_.emplace(ref_id, pending_.emplace(std::make_pair(when, ref_id), token));
    return ref_id;
  }

  /// Returns true when the id named a pending event (mirrors the real
  /// queue's cancel-is-noop-after-fire semantics).
  bool cancel(std::uint64_t ref_id) {
    const auto it = by_id_.find(ref_id);
    if (it == by_id_.end()) return false;
    pending_.erase(it->second);
    by_id_.erase(it);
    return true;
  }

  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }
  [[nodiscard]] SimTime next_time() const {
    return pending_.begin()->first.first;
  }

  /// Pops the earliest event, returning (when, token).
  std::pair<SimTime, std::uint64_t> pop() {
    const auto it = pending_.begin();
    const std::pair<SimTime, std::uint64_t> out{it->first.first, it->second};
    by_id_.erase(it->first.second);
    pending_.erase(it);
    return out;
  }

 private:
  using Pending = std::multimap<std::pair<SimTime, std::uint64_t>, std::uint64_t>;
  Pending pending_;
  std::map<std::uint64_t, Pending::iterator> by_id_;
  std::uint64_t next_id_ = 1;
};

struct Scenario {
  std::uint64_t seed;
  int ops;
  SimTime time_span;   ///< timestamps drawn from [now, now + span]
  int cancel_percent;  ///< weight of cancel ops (fires get the remainder)
};

class SimQueuePropertyTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(SimQueuePropertyTest, AgreesWithNaiveMultimapReference) {
  const Scenario scenario = GetParam();
  std::mt19937_64 rng(scenario.seed);

  EventQueue queue;
  ReferenceQueue reference;
  // Live events, as (real id, reference id, token) triples the cancel arm
  // picks from. Token identifies the event across both implementations.
  struct Live {
    EventId id;
    std::uint64_t ref_id;
    std::uint64_t token;
  };
  std::vector<Live> live;
  std::vector<std::uint64_t> fired_log;  // real queue appends on fire
  std::set<EventId> ids_seen;            // no id reuse while generations hold
  std::uint64_t next_token = 1;
  SimTime now = 0;

  for (int op = 0; op < scenario.ops; ++op) {
    const auto roll = static_cast<int>(rng() % 100);
    if (roll < 50 || live.empty()) {
      // Schedule. A quarter of the draws land exactly on `now`, so the
      // tie-break path is exercised constantly, not incidentally.
      const SimTime when =
          scenario.time_span == 0 || rng() % 4 == 0
              ? now
              : now + static_cast<SimTime>(
                          rng() % static_cast<std::uint64_t>(scenario.time_span));
      const std::uint64_t token = next_token++;
      const EventId id = queue.schedule(
          when, [token, &fired_log] { fired_log.push_back(token); });
      const std::uint64_t ref_id = reference.schedule(when, token);
      EXPECT_NE(id, hsfi::sim::kInvalidEventId);
      EXPECT_TRUE(ids_seen.insert(id).second)
          << "EventId " << id << " handed out twice while the first holder "
          << "could still cancel it";
      live.push_back({id, ref_id, token});
    } else if (roll < 50 + scenario.cancel_percent) {
      // Cancel a random live event; both sides must drop exactly it.
      const std::size_t pick = rng() % live.size();
      const Live victim = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      queue.cancel(victim.id);
      EXPECT_TRUE(reference.cancel(victim.ref_id));
      queue.cancel(victim.id);  // double-cancel must be a no-op
      EXPECT_EQ(queue.size(), reference.size());
    } else {
      // Fire the front event; time, token, and fire order must agree.
      ASSERT_FALSE(queue.empty());
      ASSERT_EQ(queue.next_time(), reference.next_time());
      auto fired = queue.pop();
      const auto expected = reference.pop();
      EXPECT_EQ(fired.when, expected.first);
      EXPECT_GE(fired.when, now);
      now = fired.when;
      fired.action();
      ASSERT_FALSE(fired_log.empty());
      EXPECT_EQ(fired_log.back(), expected.second)
          << "front events disagree at op " << op;
      std::erase_if(live, [&](const Live& l) { return l.id == fired.id; });
      // A fired id is dead: cancelling it must not disturb anything.
      queue.cancel(fired.id);
      EXPECT_EQ(queue.size(), reference.size());
    }
    ASSERT_EQ(queue.size(), reference.size());
    ASSERT_EQ(queue.empty(), reference.empty());
  }

  // Drain: remaining events fire in exactly the reference order.
  while (!reference.empty()) {
    ASSERT_FALSE(queue.empty());
    auto fired = queue.pop();
    const auto expected = reference.pop();
    ASSERT_EQ(fired.when, expected.first);
    fired.action();
    ASSERT_EQ(fired_log.back(), expected.second);
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SimQueuePropertyTest,
    ::testing::Values(
        // The workhorse: mixed times, moderate cancellation.
        Scenario{0xA11CE, 10'000, 1'000'000, 20},
        // Single-timestamp regime: every comparison is a tie-break.
        Scenario{0xB0B, 10'000, 0, 20},
        // Cancel-heavy: churns generations and the slot freelist.
        Scenario{0xC0FFEE, 10'000, 1'000, 45},
        // Long horizon, rare cancels: deep heaps.
        Scenario{0xD15EA5E, 10'000, 1'000'000'000, 5}),
    [](const ::testing::TestParamInfo<Scenario>& param_info) {
      return "seed" + std::to_string(param_info.param.seed);
    });

// ---------------------------------------------------------------------------
// Snapshot/restore: capturing the queue mid-scenario and restoring it must
// replay the identical (when, seq, slot, gen) pop order — not just the
// same tokens, but the same id encodings, because the orchestrator's
// snapshot/fork path restores a queue in place and outstanding EventIds
// must stay cancellable afterwards.

/// One popped event, fully identified: fire time, schedule ordinal, and
/// the slot/generation halves of the EventId.
struct PopRecord {
  SimTime when;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t gen;
  std::uint64_t token;

  bool operator==(const PopRecord&) const = default;
};

/// Drains `queue`, executing every action (tokens land in `log`) and
/// recording the full identity of each pop.
std::vector<PopRecord> drain(EventQueue& queue,
                             std::vector<std::uint64_t>& log) {
  std::vector<PopRecord> out;
  while (!queue.empty()) {
    auto fired = queue.pop();
    const std::size_t before = log.size();
    fired.action();
    const std::uint64_t token = log.size() > before ? log.back() : 0;
    out.push_back({fired.when, fired.seq,
                   static_cast<std::uint32_t>(fired.id >> 32),
                   static_cast<std::uint32_t>(fired.id & 0xFFFFFFFFu),
                   token});
  }
  return out;
}

class SimQueueSnapshotTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(SimQueueSnapshotTest, RestoreReplaysIdenticalPopOrder) {
  const Scenario scenario = GetParam();
  std::mt19937_64 rng(scenario.seed);

  // Churn the queue with the scenario's op mix (schedule/cancel/pop) so
  // the snapshot lands on a non-trivial slot/generation/freelist state,
  // then capture mid-scenario.
  EventQueue queue;
  std::vector<std::uint64_t> log;  // actions append here when fired
  std::vector<EventId> live;
  std::uint64_t next_token = 1;
  SimTime now = 0;
  for (int op = 0; op < scenario.ops; ++op) {
    const auto roll = static_cast<int>(rng() % 100);
    if (roll < 50 || live.empty()) {
      const SimTime when =
          scenario.time_span == 0 || rng() % 4 == 0
              ? now
              : now + static_cast<SimTime>(
                          rng() % static_cast<std::uint64_t>(scenario.time_span));
      const std::uint64_t token = next_token++;
      live.push_back(
          queue.schedule(when, [token, &log] { log.push_back(token); }));
    } else if (roll < 50 + scenario.cancel_percent) {
      const std::size_t pick = rng() % live.size();
      queue.cancel(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    } else if (!queue.empty()) {
      auto fired = queue.pop();
      now = fired.when;
      fired.action();
      std::erase(live, fired.id);
    }
  }
  ASSERT_FALSE(queue.empty()) << "scenario must leave pending events";

  const EventQueue::Snapshot snap = queue.snapshot();

  // Original pop order, from the snapshot point to empty.
  log.clear();
  const auto original = drain(queue, log);
  const auto original_log = log;

  // One snapshot, two independent restores (a snapshot seeds many forks):
  // each must replay the identical order, ids included.
  for (int fork = 0; fork < 2; ++fork) {
    EventQueue restored;
    restored.restore(snap);
    ASSERT_EQ(restored.size(), snap.live);
    log.clear();
    const auto replay = drain(restored, log);
    EXPECT_EQ(replay, original)
        << "fork " << fork << " diverged in (when, seq, slot, gen) order";
    EXPECT_EQ(log, original_log);
  }
}

TEST_P(SimQueueSnapshotTest, RestoredIdsStayCancellable) {
  // Ids minted before the snapshot must name the same events in the
  // restored queue: cancelling one there removes exactly that event.
  const Scenario scenario = GetParam();
  std::mt19937_64 rng(scenario.seed ^ 0x5eedULL);

  EventQueue queue;
  std::vector<std::uint64_t> log;
  struct Live {
    EventId id;
    std::uint64_t token;
  };
  std::vector<Live> live;
  for (int i = 0; i < 200; ++i) {
    const SimTime when = scenario.time_span == 0
                             ? 0
                             : static_cast<SimTime>(
                                   rng() % static_cast<std::uint64_t>(
                                               scenario.time_span));
    const std::uint64_t token = 1000 + static_cast<std::uint64_t>(i);
    live.push_back(
        {queue.schedule(when, [token, &log] { log.push_back(token); }),
         token});
  }
  const EventQueue::Snapshot snap = queue.snapshot();

  EventQueue restored;
  restored.restore(snap);
  const Live victim = live[static_cast<std::size_t>(rng() % live.size())];
  restored.cancel(victim.id);
  EXPECT_EQ(restored.size(), queue.size() - 1);

  log.clear();
  drain(restored, log);
  EXPECT_EQ(std::count(log.begin(), log.end(), victim.token), 0)
      << "cancelling a pre-snapshot id must remove exactly that event";
  EXPECT_EQ(log.size(), live.size() - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, SimQueueSnapshotTest,
    ::testing::Values(
        // Cancel-heavy: the snapshot carries a churned freelist and many
        // retired generations.
        Scenario{0xC0FFEE, 10'000, 1'000, 45},
        // Single-timestamp: restored order is pure seq tie-breaking.
        Scenario{0xB0B, 10'000, 0, 20}),
    [](const ::testing::TestParamInfo<Scenario>& param_info) {
      return "seed" + std::to_string(param_info.param.seed);
    });

}  // namespace
