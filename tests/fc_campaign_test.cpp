// Golden-trace determinism tests for the Fibre Channel campaign path.
//
// The FC twin of golden_trace_test.cpp: a fixed 8-run mini-campaign
// (2 faults x 2 directions x 2 replicates) over the FcFabric realization.
// The same three properties must hold:
//
//  1. The orchestrator's JSONL for the campaign is byte-identical when the
//     campaign runs twice and when it runs with 1 vs 8 workers.
//  2. The kernel event sequence of every run — hashed as FNV-1a over
//     (fire time, execution ordinal, schedule ordinal) — is identical
//     across repeats and worker counts.
//  3. The combined digest matches tests/golden/fc_mini_campaign.digest.
//     Regenerate with HSFI_UPDATE_GOLDEN=1 only when an event-order change
//     is deliberate.
//
// On top of that, every run must satisfy the accounting invariant the
// analysis layer guarantees on Myrinet: the 8-class manifestation
// breakdown sums to the injection count exactly — no firing unaccounted,
// none double-counted — even though the classes are fed from FC-specific
// monitors (CRC-32, ordered-set parsing, BB-credit stalls, sequence
// reassembly).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fc/frame.hpp"
#include "nftape/campaign.hpp"
#include "nftape/fabric.hpp"
#include "nftape/faults.hpp"
#include "nftape/medium.hpp"
#include "nftape/testbed.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"

namespace {

using namespace hsfi;

/// FNV-1a, 64-bit, fed fixed-width little-endian words (same shape as the
/// Myrinet golden-trace digest so the two files are comparable artifacts).
struct Fnv1a {
  std::uint64_t state = 1469598103934665603ULL;

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xFF;
      state *= 1099511628211ULL;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::string hex() const {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  (unsigned long long)state);
    return buffer;
  }
};

/// The fixed probe: one LFSR-random fault and one deterministic
/// ordered-set fault, both directions, 2 replicates = 8 runs.
orchestrator::SweepSpec fc_mini_sweep() {
  orchestrator::SweepSpec sweep;
  sweep.name = "fc-mini";
  sweep.base_seed = 11;
  sweep.replicates = 2;
  sweep.startup_settle = sim::milliseconds(10);
  sweep.directions = {orchestrator::FaultDirection::kFromSwitch,
                      orchestrator::FaultDirection::kBoth};
  sweep.faults.push_back({"seu-00FF", nftape::random_bit_flip_seu(0x00FF), ""});
  sweep.faults.push_back(
      {"sofi3-blank",
       nftape::fc_ordered_set_corruption(fc::OrderedSet::kSofI3, 0x000F), ""});

  sweep.base.medium = nftape::Medium::kFc;
  sweep.testbed.fc.rx_processing_time = sim::microseconds(1);
  sweep.base.warmup = sim::milliseconds(5);
  sweep.base.duration = sim::milliseconds(15);
  sweep.base.drain = sim::milliseconds(5);
  sweep.base.workload.udp_interval = sim::microseconds(12);
  sweep.base.workload.burst_size = 4;
  sweep.base.workload.jitter = 0.5;
  sweep.base.workload.payload_size = 256;
  return sweep;
}

struct MiniCampaign {
  std::string jsonl;                 ///< index-ordered, no timing fields
  std::vector<std::string> digests;  ///< per-run event-sequence digests
};

/// Runs the probe on `workers` threads through the Fabric interface —
/// the same construction point the orchestrator's default executor uses
/// (make_fabric on the run's medium), plus the event-hash observer.
MiniCampaign run_fc_mini(std::size_t workers) {
  const auto runs = orchestrator::expand(fc_mini_sweep());
  MiniCampaign out;
  out.digests.resize(runs.size());

  orchestrator::RunnerConfig rc;
  rc.workers = workers;
  rc.executor = [&out](const orchestrator::RunSpec& run,
                       const nftape::RunControl& control) {
    Fnv1a digest;
    const auto fabric =
        nftape::make_fabric(run.campaign.medium, run.testbed);
    fabric->sim().set_event_observer(
        [&digest](sim::SimTime when, std::uint64_t exec_seq,
                  std::uint64_t schedule_seq) {
          digest.i64(when);
          digest.u64(exec_seq);
          digest.u64(schedule_seq);
        });
    fabric->start();
    fabric->settle(run.startup_settle);
    nftape::CampaignRunner runner(*fabric);
    auto result = runner.run(run.campaign, &control);
    EXPECT_EQ(result.manifestations.total(), result.injections)
        << "run " << run.index
        << ": breakdown must sum to the injection count";
    EXPECT_GT(result.injections, 0u)
        << "run " << run.index << ": the armed FC tap must fire in-window";
    out.digests[run.index] = digest.hex();  // disjoint slot per run
    return result;
  };

  const auto records = orchestrator::Runner(rc).run_all(runs);
  std::ostringstream lines;
  for (const auto& r : records) {
    EXPECT_EQ(r.outcome, orchestrator::RunOutcome::kOk)
        << "run " << r.index << ": " << r.error;
    EXPECT_EQ(r.medium, nftape::Medium::kFc);
    lines << orchestrator::to_jsonl(r, /*include_timing=*/false) << '\n';
  }
  out.jsonl = lines.str();
  return out;
}

/// Index-ordered combination of the per-run digests.
std::string combined_digest(const MiniCampaign& c) {
  Fnv1a all;
  for (const auto& d : c.digests) {
    for (const char ch : d) all.u64(static_cast<std::uint8_t>(ch));
  }
  return all.hex();
}

std::string golden_path() {
  return std::string(HSFI_GOLDEN_DIR) + "/fc_mini_campaign.digest";
}

TEST(FcCampaign, RepeatedRunIsByteIdentical) {
  const auto first = run_fc_mini(1);
  const auto second = run_fc_mini(1);
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.digests, second.digests);
  EXPECT_FALSE(first.jsonl.empty());
}

TEST(FcCampaign, WorkerCountDoesNotChangeResults) {
  const auto serial = run_fc_mini(1);
  const auto pooled = run_fc_mini(8);
  EXPECT_EQ(serial.jsonl, pooled.jsonl)
      << "JSONL must be byte-identical for --workers 1 vs 8";
  EXPECT_EQ(serial.digests, pooled.digests)
      << "per-run event sequences must not depend on worker count";
}

TEST(FcCampaign, MatchesCommittedDigest) {
  const auto campaign = run_fc_mini(1);
  const std::string digest = combined_digest(campaign);

  if (const char* update = std::getenv("HSFI_UPDATE_GOLDEN");
      update != nullptr && *update) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << digest << '\n';
    GTEST_SKIP() << "updated " << golden_path() << " to " << digest;
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing " << golden_path()
                  << " (generate with HSFI_UPDATE_GOLDEN=1)";
  std::string expected;
  in >> expected;
  EXPECT_EQ(digest, expected)
      << "FC event delivery order changed; if intended, regenerate "
      << golden_path() << " with HSFI_UPDATE_GOLDEN=1";
}

/// Every record carries the medium tag and the FC-specific counters —
/// the JSONL contract run_sweep's per-cell tables depend on.
TEST(FcCampaign, JsonlCarriesMediumAndFcCounters) {
  const auto campaign = run_fc_mini(1);
  std::istringstream lines(campaign.jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_NE(line.find("\"medium\":\"fc\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"fc_credit_stalls\":"), std::string::npos) << line;
    EXPECT_NE(line.find("\"fc_seq_aborts\":"), std::string::npos) << line;
  }
  EXPECT_EQ(n, 8u);
}

}  // namespace
