// Tests for the synthesis resource model and its Table 1 reproduction.
#include <gtest/gtest.h>

#include <cmath>

#include "netlist/injector_board.hpp"
#include "netlist/resources.hpp"

namespace hsfi::netlist {
namespace {

double deviation(std::int64_t est, std::int64_t paper) {
  if (paper == 0) return est == 0 ? 0.0 : 1.0;
  return std::abs(static_cast<double>(est - paper)) /
         static_cast<double>(paper);
}

TEST(ResourcesTest, ArithmeticComposes) {
  const Resources a{1, 2, 3, 4};
  const Resources b{10, 20, 30, 40};
  const Resources sum = a + b;
  EXPECT_EQ(sum, (Resources{11, 22, 33, 44}));
  EXPECT_EQ(a * 2, (Resources{2, 4, 6, 8}));
}

TEST(EntityModelTest, PrimitivesAccumulate) {
  EntityModel m("test");
  m.registers("r", 16);
  m.counter("c", 8);
  m.lut_logic("l", 10);
  m.mux_bus("m", 4, 3);
  const auto t = m.total();
  EXPECT_EQ(t.d_flip_flops, 16 + 8);
  EXPECT_EQ(t.function_generators, 8 + 10);
  EXPECT_EQ(t.multiplexors, 8);
  EXPECT_EQ(m.blocks().size(), 4u);
}

TEST(EntityModelTest, DistributedRamScalesWithDepth) {
  EntityModel shallow("s");
  shallow.distributed_ram("r", 8, 16, false);
  EntityModel deep("d");
  deep.distributed_ram("r", 8, 64, false);
  EXPECT_EQ(shallow.total().function_generators, 8);
  EXPECT_EQ(deep.total().function_generators, 32);
  EXPECT_GT(deep.total().multiplexors, 0);
  EntityModel dual("x");
  dual.distributed_ram("r", 8, 16, true);
  EXPECT_EQ(dual.total().function_generators, 16);
}

TEST(Table1Test, HasAllSixEntitiesInPaperOrder) {
  const auto rows = injector_fpga_entities();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].model.name(), "Clck_gen");
  EXPECT_EQ(rows[1].model.name(), "Comm");
  EXPECT_EQ(rows[2].model.name(), "Inst_dec");
  EXPECT_EQ(rows[3].model.name(), "Out_gen");
  EXPECT_EQ(rows[4].model.name(), "SPI");
  EXPECT_EQ(rows[5].model.name(), "FIFO_Inject");
  EXPECT_EQ(rows[5].instances, 2);  // "two instances ... were needed"
}

TEST(Table1Test, PaperColumnsSumToPublishedTotals) {
  const auto rows = injector_fpga_entities();
  Resources paper;
  for (const auto& r : rows) paper += r.paper;
  EXPECT_EQ(paper, paper_table1_total());
  EXPECT_EQ(paper.gates, 2275);
  EXPECT_EQ(paper.function_generators, 2339);
  EXPECT_EQ(paper.multiplexors, 383);
  EXPECT_EQ(paper.d_flip_flops, 1173);
}

TEST(Table1Test, EstimatesTrackPaperWithinTolerance) {
  // Structural estimates per entity: flip-flop and mux counts are exact by
  // construction (they follow the register map); gate/LUT equivalents are
  // tool-dependent and allowed wider slack.
  for (const auto& row : injector_fpga_entities()) {
    const auto est = row.estimated();
    EXPECT_EQ(est.d_flip_flops, row.paper.d_flip_flops) << row.model.name();
    EXPECT_EQ(est.multiplexors, row.paper.multiplexors) << row.model.name();
    EXPECT_LE(deviation(est.function_generators,
                        row.paper.function_generators),
              0.15)
        << row.model.name();
    EXPECT_LE(deviation(est.gates, row.paper.gates), 0.35)
        << row.model.name();
  }
}

TEST(Table1Test, FifoInjectorDominatesLikeThePaper) {
  // Shape check: the datapath entity dwarfs the control plane.
  const auto rows = injector_fpga_entities();
  const auto fifo = rows[5].estimated();
  Resources rest;
  for (std::size_t i = 0; i < 5; ++i) rest += rows[i].estimated();
  EXPECT_GT(fifo.function_generators, 2 * rest.function_generators);
  EXPECT_GT(fifo.d_flip_flops, rest.d_flip_flops);
  EXPECT_GT(fifo.multiplexors, 5 * rest.multiplexors);
}

TEST(Table1Test, RenderContainsEveryEntityAndTotals) {
  const auto text = render_table1(injector_fpga_entities());
  for (const char* name :
       {"Clck_gen", "Comm", "Inst_dec", "Out_gen", "SPI", "FIFO_Inject",
        "Total"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("2275"), std::string::npos);
  EXPECT_NE(text.find("1173"), std::string::npos);
}

}  // namespace
}  // namespace hsfi::netlist
