// End-to-end host-stack tests on the Fig. 10 testbed, including the exact
// corruption mechanics the §4.3 campaigns use (driven through the injector
// so these double as campaign-plumbing validation).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "host/ping.hpp"
#include "host/traffic.hpp"
#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"

namespace hsfi::nftape {
namespace {

using core::Direction;
using host::UdpDatagram;
using sim::microseconds;
using sim::milliseconds;

TestbedConfig fast_config() {
  TestbedConfig c;
  c.map_period = milliseconds(20);
  c.map_reply_window = milliseconds(2);
  c.nic_config.rx_processing_time = microseconds(2);
  c.send_stack_time = microseconds(2);
  return c;
}

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(TestbedTest, MappingConvergesAndElectsController) {
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  EXPECT_TRUE(bed.host(2).mcp().acting_controller());
  EXPECT_FALSE(bed.host(0).mcp().acting_controller());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bed.host(i).mcp().network_map().size(), 3u) << "node " << i;
  }
}

TEST(TestbedTest, UdpEndToEndThroughSwitchAndInjector) {
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));

  host::UdpSink sink(bed.host(1), 5000);
  UdpDatagram d;
  d.src_port = 6000;
  d.dst_port = 5000;
  d.payload = bytes_of("hello myrinet");
  // Node 0 is behind the injector; the pass-through path is exercised.
  EXPECT_TRUE(bed.host(0).send_udp(2, std::move(d)));
  bed.settle(milliseconds(5));
  EXPECT_EQ(sink.received(), 1u);
  EXPECT_EQ(bed.host(1).stats().udp_delivered, 1u);
  EXPECT_EQ(bed.host(0).stats().udp_sent, 1u);
}

TEST(TestbedTest, EchoFloodPingRoundTrips) {
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  bed.host(1).enable_echo();

  host::Pinger::Config pc;
  pc.target = 2;  // host id of node 1
  pc.max_packets = 100;
  host::Pinger ping(bed.sim(), bed.host(0), pc);
  ping.start();
  bed.settle(milliseconds(200));
  EXPECT_EQ(ping.results().sent, 100u);
  EXPECT_EQ(ping.results().received, 100u);
  EXPECT_EQ(ping.results().timeouts, 0u);
  EXPECT_GT(ping.results().total_sim_rtt, 0);
}

TEST(TestbedTest, UdpFloodArrivesCompletely) {
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  host::UdpSink sink(bed.host(2), 9);
  host::UdpFlood::Config fc;
  fc.target = 3;
  fc.interval = microseconds(50);
  fc.max_packets = 400;
  host::UdpFlood flood(bed.sim(), bed.host(0), fc);
  flood.start();
  bed.settle(milliseconds(100));
  EXPECT_EQ(flood.sent(), 400u);
  EXPECT_EQ(sink.received(), 400u);
}

TEST(TestbedTest, MisaddressedFramesDropped) {
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  // Poison node 0's cache: host id 2 maps to node 2's address. Frames for
  // id 2 now land at node 2, which sees its own physical address but a
  // foreign host id and drops: "the node drops incoming packets that are
  // misaddressed".
  bed.host(0).seed_peer(2, Testbed::eth_of(2));
  UdpDatagram d;
  d.dst_port = 1234;
  bed.host(0).send_udp(2, std::move(d));
  bed.settle(milliseconds(5));
  EXPECT_EQ(bed.host(2).stats().drop_misaddressed, 1u);
  EXPECT_EQ(bed.host(1).stats().udp_delivered, 0u);
}

TEST(CampaignMechanicsTest, SenderAddressCorruptionMakesNodeUnreachable) {
  // §4.3.3: corrupt node 0's source address (in flight, CRC repatched) to
  // node 2's. Node 1 learns the wrong address; its traffic to node 0 then
  // lands on node 2 and is dropped as misaddressed; node 0 becomes
  // unreachable to Ethernet-based traffic while mapping stays intact.
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  bed.host(1).enable_echo();

  // Node 0's frames to node 1 (dst_id=2, src_id=1): rewrite src low byte
  // 0x01 -> 0x03 (node 2's address).
  bed.injector().apply(Direction::kLeftToRight,
                       sender_eth_corruption(0x01, 2, 1, 0x03));

  // Node 0 pings node 1: requests arrive (dst intact) and poison node 1's
  // cache; replies then go to node 2's port and are dropped there.
  host::Pinger::Config pc;
  pc.target = 2;
  pc.max_packets = 20;
  pc.timeout = milliseconds(2);
  host::Pinger ping(bed.sim(), bed.host(0), pc);
  ping.start();
  bed.settle(milliseconds(200));

  EXPECT_EQ(ping.results().received, 0u);  // unreachable
  EXPECT_EQ(ping.results().timeouts, 20u);
  EXPECT_GT(bed.host(2).stats().drop_misaddressed, 0u);
  // "the routing information concerning the node remained unchanged"
  EXPECT_EQ(bed.host(2).mcp().network_map().size(), 3u);
  EXPECT_GT(bed.injector().fifo_stats(Direction::kLeftToRight).injections, 0u);
}

TEST(CampaignMechanicsTest, MappingTypeCorruptionRemovesNodeUntilNextRound) {
  // §4.3.2: corrupt mapping packets (0x0005 -> 0x0015) heading into node 0.
  // Node 0 stops answering scouts and falls out of the map; when the
  // corruption stops, the next mapping round restores it.
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  ASSERT_EQ(bed.host(2).mcp().network_map().size(), 3u);

  bed.injector().apply(Direction::kRightToLeft,
                       packet_type_corruption(myrinet::kTypeMapping, 0x0015));
  bed.settle(milliseconds(60));  // a few mapping rounds
  EXPECT_EQ(bed.host(2).mcp().network_map().size(), 2u)
      << "node 0 still mapped";
  // Senders drop traffic to the unmapped node.
  UdpDatagram d;
  d.dst_port = 1;
  bed.host(1).send_udp(1, std::move(d));
  EXPECT_GT(bed.host(1).stats().drop_unroutable, 0u);
  // Node 0 saw unrecognized types.
  EXPECT_GT(bed.host(0).stats().drop_unknown_type, 0u);

  // Stop injecting: "The node will remain out of the network until the
  // next mapping packet is received."
  core::InjectorConfig off;
  bed.injector().apply(Direction::kRightToLeft, off);
  bed.settle(milliseconds(60));
  EXPECT_EQ(bed.host(2).mcp().network_map().size(), 3u);
}

TEST(CampaignMechanicsTest, DestinationCorruptionDroppedByCrc) {
  // §4.3.3: destination address corrupted without CRC repatch — "packets
  // were dropped, and not received by either the intended destination node
  // or the erroneously specified node... a result of the incorrect CRC-8".
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  host::UdpSink at_node1(bed.host(1), 9);
  host::UdpSink at_node2(bed.host(2), 9);

  bed.injector().apply(Direction::kLeftToRight,
                       destination_eth_corruption(0x02, 0x03));
  host::UdpFlood::Config fc;
  fc.target = 2;  // node 1
  fc.max_packets = 50;
  fc.interval = microseconds(50);
  host::UdpFlood flood(bed.sim(), bed.host(0), fc);
  flood.start();
  bed.settle(milliseconds(50));

  EXPECT_EQ(at_node1.received(), 0u);
  EXPECT_EQ(at_node2.received(), 0u);
  EXPECT_EQ(bed.nic(1).stats().crc_errors, 50u);
}

TEST(CampaignMechanicsTest, MarkerMsbConsumedWithoutIncident) {
  // §4.3.2 source-route corruption: MSB set on the destination marker; the
  // interface consumes the packet as an error, no propagation.
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  host::UdpSink sink(bed.host(1), 9);

  bed.injector().apply(Direction::kLeftToRight, marker_msb_corruption());
  host::UdpFlood::Config fc;
  fc.target = 2;
  fc.max_packets = 30;
  fc.interval = microseconds(50);
  host::UdpFlood flood(bed.sim(), bed.host(0), fc);
  flood.start();
  bed.settle(milliseconds(50));

  EXPECT_EQ(sink.received(), 0u);
  EXPECT_EQ(bed.nic(1).stats().marker_errors, 30u);
  EXPECT_EQ(bed.nic(1).stats().crc_errors, 0u);  // repatch kept CRC valid
  // "without causing delays or other errors on the target node":
  EXPECT_EQ(bed.host(1).stats().drop_malformed, 0u);
}

TEST(CampaignMechanicsTest, UdpWordSwapPassesChecksumToApplication) {
  // §4.3.4: "we corrupted a UDP packet consisting of the string 'Have a
  // lot of fun' to read instead 'veHa a lot of fun'. The checksum was
  // unable to detect this, and the incorrect message was passed on."
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  std::string received;
  bed.host(1).bind(4000, [&received](host::HostId, const UdpDatagram& d,
                                     sim::SimTime) {
    received.assign(d.payload.begin(), d.payload.end());
  });

  bed.injector().apply(Direction::kLeftToRight, udp_word_swap_have_to_veha());
  UdpDatagram d;
  d.dst_port = 4000;
  d.payload = bytes_of("Have a lot of fun");
  bed.host(0).send_udp(2, std::move(d));
  bed.settle(milliseconds(5));

  EXPECT_EQ(received, "veHa a lot of fun");
  EXPECT_EQ(bed.host(1).stats().drop_bad_checksum, 0u);
}

TEST(CampaignMechanicsTest, NonAliasedUdpCorruptionDroppedByChecksum) {
  // "When the corruption did not satisfy the checksum, the packets were
  // dropped."
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  host::UdpSink sink(bed.host(1), 4000);

  bed.injector().apply(Direction::kLeftToRight, udp_payload_bit_flip());
  UdpDatagram d;
  d.dst_port = 4000;
  d.payload = bytes_of("Have a lot of fun");
  bed.host(0).send_udp(2, std::move(d));
  bed.settle(milliseconds(5));

  EXPECT_EQ(sink.received(), 0u);
  EXPECT_EQ(bed.host(1).stats().drop_bad_checksum, 1u);
  EXPECT_EQ(bed.nic(1).stats().crc_errors, 0u);  // CRC-8 was repatched
}

TEST(CampaignMechanicsTest, ControllerDuplicationConfusesMapper) {
  // §4.3.3 / Fig. 11: node 0's MCP address corrupted (in mapping replies)
  // to match the controller's. "The controller is confused... and is unable
  // to generate a consistent map."
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));

  // Controller is node 2 (mcp 0x2020); node 0 replies carry 0x2000.
  // Rewrite the low byte 0x00 -> 0x20 inside replies heading to the switch.
  bed.injector().apply(Direction::kLeftToRight,
                       mcp_reply_address_corruption(0x20, 0x00, 0x20));
  bed.settle(milliseconds(120));
  EXPECT_GT(bed.host(2).mcp().stats().confused_rounds, 0u);

  // Recovery once the fault is removed.
  core::InjectorConfig off;
  bed.injector().apply(Direction::kLeftToRight, off);
  bed.settle(milliseconds(60));
  EXPECT_EQ(bed.host(2).mcp().network_map().size(), 3u);
}

TEST(CampaignMechanicsTest, SerialPathProgramsCampaign) {
  // The NFTAPE way: send the fault spec over RS-232 and verify the device
  // picked it up, then run the UDP-swap experiment through it.
  Testbed bed(fast_config());
  bed.start();
  const auto cfg = udp_word_swap_have_to_veha();
  for (const auto& cmd : to_serial_commands(cfg, Direction::kLeftToRight)) {
    bed.control().send_command(cmd);
  }
  bed.settle(milliseconds(80));
  ASSERT_TRUE(bed.control().idle());
  EXPECT_EQ(bed.injector().config(Direction::kLeftToRight).compare_data,
            0x48617665u);
  EXPECT_TRUE(bed.injector().config(Direction::kLeftToRight).crc_repatch);

  std::string received;
  bed.host(1).bind(4000, [&received](host::HostId, const UdpDatagram& d,
                                     sim::SimTime) {
    received.assign(d.payload.begin(), d.payload.end());
  });
  UdpDatagram d;
  d.dst_port = 4000;
  d.payload = bytes_of("Have a lot of fun");
  bed.host(0).send_udp(2, std::move(d));
  bed.settle(milliseconds(5));
  EXPECT_EQ(received, "veHa a lot of fun");
}

TEST(TestbedTest, ResetToKnownGoodClearsState) {
  Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));
  UdpDatagram d;
  d.dst_port = 9;
  bed.host(0).send_udp(2, std::move(d));
  bed.settle(milliseconds(5));
  EXPECT_GT(bed.host(0).stats().udp_sent, 0u);
  bed.reset_to_known_good();
  EXPECT_EQ(bed.host(0).stats().udp_sent, 0u);
  EXPECT_EQ(bed.nic(0).stats().frames_sent, 0u);
  EXPECT_EQ(bed.injector().fifo_stats(Direction::kLeftToRight).characters, 0u);
}

}  // namespace
}  // namespace hsfi::nftape
