// Tests for the fault sequencer — the paper's internally generated
// reconfiguration ("iterate through any number of faults") — and for
// cable-cut failure injection at the link layer.
#include <gtest/gtest.h>

#include <vector>

#include "core/sequencer.hpp"
#include "host/traffic.hpp"
#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"

namespace hsfi::core {
namespace {

using sim::microseconds;
using sim::milliseconds;

nftape::TestbedConfig fast_config() {
  nftape::TestbedConfig c;
  c.map_period = milliseconds(20);
  c.map_reply_window = milliseconds(2);
  c.nic_config.rx_processing_time = microseconds(2);
  c.send_stack_time = microseconds(2);
  return c;
}

InjectorConfig toggle_byte(std::uint8_t victim, std::uint8_t flip) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_data = victim;
  cfg.compare_mask = 0x000000FF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0x1;
  cfg.corrupt_data = flip;
  cfg.crc_repatch = true;
  return cfg;
}

TEST(FaultSequencerTest, IteratesThroughFaultsByInjectionCount) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(80));

  FaultSequencer seq(bed.sim(), bed.injector(), Direction::kLeftToRight);
  std::vector<std::size_t> completed;
  seq.on_step_complete([&completed](std::size_t s) { completed.push_back(s); });
  ASSERT_TRUE(seq.load({
      {toggle_byte(0xA1, 0x01), 2, 0, "flip A1"},
      {toggle_byte(0xB2, 0x02), 3, 0, "flip B2"},
  }));
  seq.start(microseconds(5));

  // Traffic containing both victim bytes.
  std::vector<std::string> payloads;
  bed.host(1).bind(4000, [&payloads](host::HostId, const host::UdpDatagram& d,
                                     sim::SimTime) {
    payloads.emplace_back(d.payload.begin(), d.payload.end());
  });
  for (int i = 0; i < 10; ++i) {
    host::UdpDatagram d;
    d.dst_port = 4000;
    d.payload = {0xA1, 0xB2};
    bed.host(0).send_udp(2, std::move(d));
    bed.settle(milliseconds(1));
  }
  bed.settle(milliseconds(5));

  // Step 1 corrupted exactly 2 packets, step 2 exactly 3; the corrupted
  // ones die at the UDP checksum (the link CRC was repatched), so exactly
  // five intact datagrams arrive.
  EXPECT_EQ(payloads.size(), 5u);
  for (const auto& p : payloads) {
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(static_cast<std::uint8_t>(p[0]), 0xA1);
    EXPECT_EQ(static_cast<std::uint8_t>(p[1]), 0xB2);
  }
  EXPECT_EQ(bed.host(1).stats().drop_bad_checksum, 5u);
  EXPECT_EQ(bed.injector().fifo_stats(Direction::kLeftToRight).injections,
            5u);
  EXPECT_EQ(completed, (std::vector<std::size_t>{0, 1}));
  const auto p = seq.progress();
  EXPECT_FALSE(p.running);
  EXPECT_EQ(p.steps_completed, 2u);
  // Device left disarmed.
  EXPECT_EQ(bed.injector().config(Direction::kLeftToRight).match_mode,
            MatchMode::kOff);
}

TEST(FaultSequencerTest, TimeBoundedStepAdvancesWithoutMatches) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(60));
  FaultSequencer seq(bed.sim(), bed.injector(), Direction::kLeftToRight);
  ASSERT_TRUE(seq.load({
      {toggle_byte(0xEE, 0x01), 0, milliseconds(2), "never matches"},
      {toggle_byte(0xDD, 0x01), 0, milliseconds(2), "never matches"},
  }));
  seq.start(microseconds(50));
  bed.settle(milliseconds(10));
  EXPECT_EQ(seq.progress().steps_completed, 2u);
  EXPECT_FALSE(seq.progress().running);
}

TEST(FaultSequencerTest, RejectsUnboundedSteps) {
  nftape::Testbed bed(fast_config());
  FaultSequencer seq(bed.sim(), bed.injector(), Direction::kLeftToRight);
  EXPECT_FALSE(seq.load({{toggle_byte(0x01, 0x01), 0, 0, "unbounded"}}));
}

TEST(FaultSequencerTest, StopDisarmsMidProgram) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(60));
  FaultSequencer seq(bed.sim(), bed.injector(), Direction::kLeftToRight);
  ASSERT_TRUE(seq.load({{toggle_byte(0x11, 0x01), 1000, 0, "long"}}));
  seq.start();
  bed.settle(milliseconds(1));
  EXPECT_TRUE(seq.progress().running);
  seq.stop();
  EXPECT_FALSE(seq.progress().running);
  EXPECT_EQ(bed.injector().config(Direction::kLeftToRight).match_mode,
            MatchMode::kOff);
}

TEST(CableCutTest, MappingRemovesUnreachableNodeAndRestores) {
  // A cable cut makes a node silent; the next mapping round removes it
  // ("If the mapper does not receive a response from a port..."), and
  // reconnecting restores it one round later — the node-hang scenario the
  // paper's §4.4 Chameleon discussion worries about.
  sim::Simulator simr;
  myrinet::Switch sw(simr, "sw", {});
  std::vector<std::unique_ptr<link::DuplexLink>> cables;
  std::vector<std::unique_ptr<myrinet::HostInterface>> nics;
  std::vector<std::unique_ptr<host::Host>> hosts;
  for (std::size_t i = 0; i < 3; ++i) {
    cables.push_back(std::make_unique<link::DuplexLink>(
        simr, "c" + std::to_string(i), sim::picoseconds(12'500),
        sim::nanoseconds(5)));
    myrinet::HostInterface::Config nc;
    nc.rx_processing_time = microseconds(2);
    nics.push_back(std::make_unique<myrinet::HostInterface>(
        simr, "n" + std::to_string(i), nc));
    nics[i]->attach(cables[i]->b_to_a(), cables[i]->a_to_b());
    sw.attach_port(i, cables[i]->a_to_b(), cables[i]->b_to_a());
    host::Host::Config hc;
    hc.id = static_cast<host::HostId>(i + 1);
    hc.eth = myrinet::EthAddr::from_u64(0xAA0000000000ULL + i);
    hc.mcp_address = 0x3000 + i;
    hc.switch_port = static_cast<std::uint8_t>(i);
    hc.map_period = milliseconds(20);
    hc.map_reply_window = milliseconds(2);
    hosts.push_back(std::make_unique<host::Host>(simr, *nics[i], hc));
    hosts[i]->start(microseconds(100 * static_cast<std::int64_t>(i + 1)));
  }
  simr.run_until(milliseconds(70));
  ASSERT_EQ(hosts[2]->mcp().network_map().size(), 3u);

  // Cut node 0's cable in both directions.
  cables[0]->a_to_b().set_connected(false);
  cables[0]->b_to_a().set_connected(false);
  simr.run_until(simr.now() + milliseconds(50));
  EXPECT_EQ(hosts[2]->mcp().network_map().size(), 2u)
      << "silent node still mapped";
  EXPECT_GT(cables[0]->b_to_a().symbols_lost_disconnected(), 0u);

  // Plug it back in: restored at the next round.
  cables[0]->a_to_b().set_connected(true);
  cables[0]->b_to_a().set_connected(true);
  simr.run_until(simr.now() + milliseconds(50));
  EXPECT_EQ(hosts[2]->mcp().network_map().size(), 3u);
}

}  // namespace
}  // namespace hsfi::core
