// Integration tests: hosts + switch + cables, exercising cut-through
// routing, CRC rewrite, flow control, arbitration, the long-timeout path
// reclaim, and the MCP mapping protocol.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "link/channel.hpp"
#include "myrinet/host_iface.hpp"
#include "myrinet/mcp.hpp"
#include "myrinet/mmon.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/switch.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {
namespace {

using sim::microseconds;
using sim::milliseconds;
using sim::nanoseconds;
using sim::picoseconds;

constexpr sim::Duration kPeriod = picoseconds(12'500);  // 80 MB/s

struct TestNode {
  std::unique_ptr<link::DuplexLink> cable;  // A = node side, B = switch side
  std::unique_ptr<HostInterface> nic;
  std::unique_ptr<Mcp> mcp;
  std::vector<Delivered> data_frames;
};

class Testbed {
 public:
  explicit Testbed(std::size_t nodes, Switch::Config sw_config = {},
                   HostInterface::Config nic_config = make_nic_config())
      : switch_(sim_, "sw0", sw_config) {
    for (std::size_t i = 0; i < nodes; ++i) add_node(i, nic_config);
  }

  static HostInterface::Config make_nic_config() {
    HostInterface::Config c;
    // Fast host: drain far quicker than the wire can deliver, so tests that
    // don't target receiver-limited behavior see no ring overflow.
    c.rx_processing_time = nanoseconds(100);
    return c;
  }

  void add_node(std::size_t port, const HostInterface::Config& nic_config) {
    auto node = std::make_unique<TestNode>();
    node->cable = std::make_unique<link::DuplexLink>(
        sim_, "cable" + std::to_string(port), kPeriod, nanoseconds(5));
    node->nic = std::make_unique<HostInterface>(
        sim_, "nic" + std::to_string(port), nic_config);
    node->nic->attach(/*rx=*/node->cable->b_to_a(), /*tx=*/node->cable->a_to_b());
    switch_.attach_port(port, /*rx=*/node->cable->a_to_b(),
                        /*tx=*/node->cable->b_to_a());
    TestNode* raw = node.get();
    node->nic->on_deliver([raw](Delivered frame, sim::SimTime when) {
      if (frame.type == kTypeMapping && raw->mcp) {
        raw->mcp->on_mapping_frame(frame, when);
      } else {
        raw->data_frames.push_back(std::move(frame));
      }
    });
    nodes_.push_back(std::move(node));
  }

  void enable_mapping() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Mcp::Config mc;
      mc.address = 0x1000 + static_cast<McpAddress>(i) * 0x10;  // node with highest port wins
      mc.eth = EthAddr::from_u64(0x00A0CC000000ULL + i);
      mc.switch_port = static_cast<std::uint8_t>(i);
      mc.switch_ports = switch_.num_ports();
      mc.map_period = milliseconds(10);
      mc.reply_window = milliseconds(1);
      mc.suppress_period = milliseconds(30);
      nodes_[i]->mcp = std::make_unique<Mcp>(sim_, *nodes_[i]->nic, mc);
      nodes_[i]->mcp->start(microseconds(100 * static_cast<std::int64_t>(i + 1)));
    }
  }

  Packet make_packet(std::size_t dest_port,
                     std::vector<std::uint8_t> payload) const {
    Packet p;
    p.route = {route_to_host(static_cast<std::uint8_t>(dest_port))};
    p.marker = 0x00;
    p.type = kTypeData;
    p.payload = std::move(payload);
    return p;
  }

  sim::Simulator sim_;
  Switch switch_;
  std::vector<std::unique_ptr<TestNode>> nodes_;
};

TEST(NetworkTest, PacketDeliveredThroughSwitch) {
  Testbed bed(2);
  bed.nodes_[0]->nic->send(bed.make_packet(1, {0xDE, 0xAD, 0xBE, 0xEF}));
  bed.sim_.run();
  ASSERT_EQ(bed.nodes_[1]->data_frames.size(), 1u);
  const auto& f = bed.nodes_[1]->data_frames[0];
  EXPECT_EQ(f.type, kTypeData);
  EXPECT_EQ(f.payload, (std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF}));
  EXPECT_EQ(bed.nodes_[1]->nic->stats().crc_errors, 0u);
  EXPECT_EQ(bed.switch_.port_stats(0).packets_routed, 1u);
}

TEST(NetworkTest, ManyPacketsBothDirections) {
  Testbed bed(2);
  for (std::uint8_t i = 0; i < 50; ++i) {
    bed.nodes_[0]->nic->send(bed.make_packet(1, {i}));
    bed.nodes_[1]->nic->send(bed.make_packet(0, {i}));
  }
  bed.sim_.run();
  EXPECT_EQ(bed.nodes_[0]->data_frames.size(), 50u);
  EXPECT_EQ(bed.nodes_[1]->data_frames.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) {
    EXPECT_EQ(bed.nodes_[1]->data_frames[i].payload[0], i);  // order kept
  }
}

TEST(NetworkTest, SwitchRewritesCrcForStrippedRoute) {
  // The delivered frame (route stripped) must carry a CRC valid for the
  // shortened packet — implicitly checked by delivery with zero CRC errors,
  // explicitly checked here against a recomputation.
  Testbed bed(2);
  bed.nodes_[0]->nic->send(bed.make_packet(1, {0x42}));
  bed.sim_.run();
  ASSERT_EQ(bed.nodes_[1]->data_frames.size(), 1u);
  EXPECT_EQ(bed.nodes_[1]->nic->stats().crc_errors, 0u);
}

TEST(NetworkTest, InFlightCorruptionStillDetectedAfterRewrite) {
  // Corrupt a payload byte before the switch: the syndrome-preserving CRC
  // rewrite must NOT mask it (paper 4.3.3, destination corruption dropped
  // because of "the incorrect CRC-8").
  Testbed bed(2);
  auto bytes = serialize(bed.make_packet(1, {0x10, 0x20, 0x30}));
  bytes[5] ^= 0x04;  // flip a payload bit after CRC computation
  bed.nodes_[0]->nic->send_raw(std::move(bytes));
  bed.sim_.run();
  EXPECT_TRUE(bed.nodes_[1]->data_frames.empty());
  EXPECT_EQ(bed.nodes_[1]->nic->stats().crc_errors, 1u);
}

TEST(NetworkTest, InvalidRoutePortConsumed) {
  Testbed bed(2);
  bed.nodes_[0]->nic->send(bed.make_packet(6, {0x01}));  // port 6 unattached
  bed.sim_.run();
  EXPECT_TRUE(bed.nodes_[1]->data_frames.empty());
  EXPECT_EQ(bed.switch_.port_stats(0).invalid_route, 1u);
  EXPECT_EQ(bed.switch_.port_stats(0).packets_consumed, 1u);
}

TEST(NetworkTest, MarkerMsbConsumedAsErrorWithoutIncident) {
  // Paper 4.3.2 source-route corruption: "The interface was observed to drop
  // these packets without incident."
  Testbed bed(2);
  auto p = bed.make_packet(1, {0x01});
  p.marker = 0x80;
  bed.nodes_[0]->nic->send(p);
  bed.nodes_[0]->nic->send(bed.make_packet(1, {0x02}));  // traffic continues
  bed.sim_.run();
  EXPECT_EQ(bed.nodes_[1]->nic->stats().marker_errors, 1u);
  ASSERT_EQ(bed.nodes_[1]->data_frames.size(), 1u);
  EXPECT_EQ(bed.nodes_[1]->data_frames[0].payload[0], 0x02);
}

TEST(NetworkTest, OutputArbitrationServesBothSenders) {
  Testbed bed(3);
  const std::vector<std::uint8_t> big(600, 0xAA);
  for (int i = 0; i < 10; ++i) {
    bed.nodes_[0]->nic->send(bed.make_packet(2, big));
    bed.nodes_[1]->nic->send(bed.make_packet(2, big));
  }
  bed.sim_.run();
  EXPECT_EQ(bed.nodes_[2]->data_frames.size(), 20u);
  EXPECT_EQ(bed.nodes_[2]->nic->stats().crc_errors, 0u);
}

TEST(NetworkTest, ContentionTriggersStopAndGoWithoutLoss) {
  Testbed bed(3);
  const std::vector<std::uint8_t> big(900, 0x55);
  for (int i = 0; i < 20; ++i) {
    bed.nodes_[0]->nic->send(bed.make_packet(2, big));
    bed.nodes_[1]->nic->send(bed.make_packet(2, big));
  }
  bed.sim_.run();
  // Contention on port 2's output must have exercised slack-buffer flow
  // control on at least one input, and no symbols may have been lost.
  const auto s0 = bed.switch_.port_stats(0);
  const auto s1 = bed.switch_.port_stats(1);
  EXPECT_GT(s0.flow_stops_sent + s1.flow_stops_sent, 0u);
  EXPECT_EQ(s0.slack_overflow, 0u);
  EXPECT_EQ(s1.slack_overflow, 0u);
  EXPECT_EQ(bed.nodes_[2]->data_frames.size(), 40u);
}

TEST(NetworkTest, LongTimeoutReclaimsHeldPath) {
  Switch::Config sc;
  sc.long_timeout = microseconds(100);  // shortened for the test
  Testbed bed(2, sc);
  // A headless transmitter holds a path open: data symbols, never a GAP.
  std::vector<link::Symbol> headless;
  headless.push_back(link::data_symbol(route_to_host(1)));
  for (int i = 0; i < 8; ++i) {
    headless.push_back(link::data_symbol(static_cast<std::uint8_t>(i)));
  }
  bed.nodes_[0]->cable->a_to_b().transmit(headless);
  bed.sim_.run_until(microseconds(300));
  EXPECT_EQ(bed.switch_.port_stats(0).long_timeouts, 1u);
  // After reclamation the path must be usable again.
  bed.nodes_[0]->cable->a_to_b().transmit(to_symbol(ControlSymbol::kGap));
  bed.nodes_[0]->nic->send(bed.make_packet(1, {0x77}));
  bed.sim_.run();
  ASSERT_EQ(bed.nodes_[1]->data_frames.size(), 1u);
  EXPECT_EQ(bed.nodes_[1]->data_frames[0].payload[0], 0x77);
}

TEST(NetworkTest, HeldPathBlocksOtherSenderUntilTimeout) {
  Switch::Config sc;
  sc.long_timeout = microseconds(200);
  Testbed bed(3, sc);
  // Node 0 wedges the path to node 2 (no GAP); node 1's packet must wait for
  // the long timeout, then deliver.
  bed.nodes_[0]->cable->a_to_b().transmit(
      link::data_symbol(route_to_host(2)));
  bed.sim_.run_until(microseconds(10));
  bed.nodes_[1]->nic->send(bed.make_packet(2, {0x99}));
  bed.sim_.run_until(microseconds(150));
  EXPECT_TRUE(bed.nodes_[2]->data_frames.empty()) << "delivered too early";
  bed.sim_.run_until(milliseconds(2));
  ASSERT_EQ(bed.nodes_[2]->data_frames.size(), 1u);
  EXPECT_EQ(bed.nodes_[2]->data_frames[0].payload[0], 0x99);
}

TEST(NetworkTest, MappingElectsHighestAddressController) {
  Testbed bed(3);
  bed.enable_mapping();
  bed.sim_.run_until(milliseconds(60));
  // Node 2 has the highest MCP address.
  EXPECT_TRUE(bed.nodes_[2]->mcp->acting_controller());
  EXPECT_FALSE(bed.nodes_[0]->mcp->acting_controller());
  EXPECT_FALSE(bed.nodes_[1]->mcp->acting_controller());
  EXPECT_GT(bed.nodes_[2]->mcp->stats().maps_announced, 0u);
}

TEST(NetworkTest, MappingInstallsFullMapEverywhere) {
  Testbed bed(3);
  bed.enable_mapping();
  bed.sim_.run_until(milliseconds(60));
  for (const auto& node : bed.nodes_) {
    const auto& map = node->mcp->network_map();
    ASSERT_EQ(map.size(), 3u) << render_mcp_view(*node->mcp);
    for (std::size_t p = 0; p < 3; ++p) {
      EXPECT_EQ(map[p].port, p);
      EXPECT_EQ(map[p].eth, EthAddr::from_u64(0x00A0CC000000ULL + p));
    }
  }
}

TEST(NetworkTest, MappingResolvesRoutes) {
  Testbed bed(3);
  bed.enable_mapping();
  bed.sim_.run_until(milliseconds(60));
  const auto route = bed.nodes_[0]->mcp->resolve_route(
      EthAddr::from_u64(0x00A0CC000000ULL + 2));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(*route, (std::vector<std::uint8_t>{route_to_host(2)}));
  const auto missing = bed.nodes_[0]->mcp->resolve_route(
      EthAddr::from_u64(0xFFFFFFFFFFFFULL));
  EXPECT_FALSE(missing.has_value());
}

TEST(NetworkTest, MonitorRendersViews) {
  Testbed bed(3);
  bed.enable_mapping();
  bed.nodes_[0]->nic->send(bed.make_packet(1, {1, 2, 3}));
  bed.sim_.run_until(milliseconds(60));
  EXPECT_NE(render_mcp_view(*bed.nodes_[2]->mcp).find("controller"),
            std::string::npos);
  EXPECT_NE(render_interface(*bed.nodes_[1]->nic).find("delivered=1"),
            std::string::npos);
  EXPECT_NE(render_switch(bed.switch_).find("port"), std::string::npos);
}

TEST(NetworkTest, TxQueueOverflowCountsDrops) {
  HostInterface::Config nc = Testbed::make_nic_config();
  nc.tx_queue_frames = 4;
  Testbed bed(2, {}, nc);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    accepted += bed.nodes_[0]->nic->send(bed.make_packet(1, {0x01})) ? 1 : 0;
  }
  EXPECT_LT(accepted, 100);
  EXPECT_EQ(bed.nodes_[0]->nic->stats().tx_queue_drops,
            static_cast<std::uint64_t>(100 - accepted));
  bed.sim_.run();
  EXPECT_EQ(bed.nodes_[1]->data_frames.size(),
            static_cast<std::size_t>(accepted));
}

TEST(NetworkTest, RingOverflowDropsFrames) {
  HostInterface::Config nc = Testbed::make_nic_config();
  nc.rx_ring_frames = 2;
  nc.rx_processing_time = milliseconds(1);  // very slow host
  Testbed bed(2, {}, nc);
  for (int i = 0; i < 20; ++i) {
    bed.nodes_[0]->nic->send(bed.make_packet(1, {0x01}));
  }
  bed.sim_.run();
  const auto& s = bed.nodes_[1]->nic->stats();
  EXPECT_GT(s.ring_overflows, 0u);
  EXPECT_EQ(s.frames_delivered + s.ring_overflows, 20u);
}

}  // namespace
}  // namespace hsfi::myrinet
