// Tests for sharded, checkpointed campaign execution: seed-keyed
// partitioning (disjoint cover), checkpoint sidecar round-trips, the
// byte-identity of N merged shards vs one process, and crash recovery —
// a forked child is hard-killed mid-campaign with a torn trailing record
// and the resumed run must reproduce the uninterrupted bytes exactly.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "orchestrator/campaign_file.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/shard.hpp"
#include "orchestrator/sweep.hpp"

namespace hsfi::orchestrator {
namespace {

// A small dual-target campaign: 12 runs, two media, deterministic.
constexpr const char* kSpec = R"({
  "name": "shard-fixture", "seed": 7,
  "defaults": {"replicates": 2, "directions": ["from-switch", "both"],
               "warmup_ms": 2, "duration_ms": 5, "drain_ms": 2},
  "targets": [
    {"name": "myri", "medium": "myrinet", "faults": ["gap-go", "seu-00FF"]},
    {"name": "fc", "medium": "fc", "faults": ["fill-flip"]}
  ]})";

std::vector<RunSpec> fixture_runs() {
  return expand_campaign(parse_campaign_file(kSpec));
}

// Synthetic executor: a deterministic pure function of the RunSpec, so
// shard tests exercise the partition/durability machinery without paying
// for simulated testbeds.
Runner synthetic_runner() {
  RunnerConfig rc;
  rc.workers = 4;
  rc.executor = [](const RunSpec& run, const nftape::RunControl&) {
    nftape::CampaignResult r;
    r.name = run.campaign.name;
    r.medium = run.campaign.medium;
    r.messages_sent = 1000 + run.seed % 97;
    r.messages_received = r.messages_sent - run.seed % 5;
    r.injections = run.seed % 7;
    r.events_executed = 10 + run.index;
    r.window = run.campaign.duration;
    return r;
  };
  return Runner(rc);
}

std::string scratch(const std::string& name) {
  const std::string path = testing::TempDir() + "hsfi_shard_" + name;
  std::remove(path.c_str());
  std::remove(checkpoint_path(path).c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Runs every shard of `n` into its own file and merges into `out`.
void run_all_shards_and_merge(const std::vector<RunSpec>& runs,
                              const std::string& out, std::uint32_t n,
                              std::size_t batch) {
  for (std::uint32_t k = 0; k < n; ++k) {
    const std::string path = shard_path(out, k, n);
    std::remove(path.c_str());
    std::remove(checkpoint_path(path).c_str());
    Checkpoint identity;
    identity.spec_digest = fnv1a64(kSpec);
    identity.shard = k;
    identity.of = n;
    auto runner = synthetic_runner();
    ShardOptions opts;
    opts.batch = batch;
    (void)run_sharded(runner, shard_runs(runs, k, n), path, identity, opts);
  }
  (void)merge_shards(runs, out, n);
}

// ---------------------------------------------------------------------------
// Partitioning

TEST(ShardTest, ShardOfDegeneratesAndStaysInRange) {
  EXPECT_EQ(shard_of(12345, 0), 0u);
  EXPECT_EQ(shard_of(12345, 1), 0u);
  for (const std::uint32_t n : {2u, 3u, 7u, 4096u}) {
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      EXPECT_LT(shard_of(seed, n), n);
    }
  }
}

TEST(ShardTest, PartitionIsDisjointCover) {
  // The distributed-campaign invariant: for any N, the shards cover every
  // run exactly once and each preserves global index order.
  const auto runs = fixture_runs();
  for (const std::uint32_t n : {1u, 2u, 3u, 4u, 7u, 13u}) {
    std::set<std::size_t> covered;
    std::size_t total = 0;
    for (std::uint32_t k = 0; k < n; ++k) {
      const auto mine = shard_runs(runs, k, n);
      total += mine.size();
      std::size_t prev_index = 0;
      bool first = true;
      for (const auto& run : mine) {
        EXPECT_EQ(shard_of(run.seed, n), k);
        EXPECT_TRUE(covered.insert(run.index).second)
            << "run " << run.index << " owned twice (n=" << n << ")";
        if (!first) EXPECT_GT(run.index, prev_index) << "order not preserved";
        prev_index = run.index;
        first = false;
      }
    }
    EXPECT_EQ(total, runs.size()) << "n=" << n;
    EXPECT_EQ(covered.size(), runs.size()) << "n=" << n;
  }
}

TEST(ShardTest, ShardRunsRejectsOutOfRangeIndex) {
  const auto runs = fixture_runs();
  EXPECT_THROW((void)shard_runs(runs, 2, 2), ShardError);
  EXPECT_THROW((void)shard_runs(runs, 0, 0), ShardError);
  EXPECT_NO_THROW((void)shard_runs(runs, 0, 1));
}

TEST(ShardTest, ShardPathNaming) {
  EXPECT_EQ(shard_path("/tmp/out.jsonl", 0, 1), "/tmp/out.jsonl");
  EXPECT_EQ(shard_path("/tmp/out.jsonl", 2, 4), "/tmp/out.jsonl.shard2of4");
  EXPECT_EQ(checkpoint_path("/tmp/out.jsonl"), "/tmp/out.jsonl.ckpt");
}

// ---------------------------------------------------------------------------
// Checkpoint sidecar

TEST(ShardTest, CheckpointRoundTrips) {
  const std::string path = scratch("ckpt_roundtrip") + ".ckpt";
  Checkpoint ckpt;
  ckpt.spec_digest = 0xDEADBEEFCAFEF00Dull;
  ckpt.shard = 3;
  ckpt.of = 4;
  ckpt.batches = 5;
  ckpt.runs = 17;
  ckpt.bytes = 2048;
  ckpt.done = true;
  write_checkpoint(path, ckpt);
  const auto back = read_checkpoint(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->spec_digest, ckpt.spec_digest);
  EXPECT_EQ(back->shard, ckpt.shard);
  EXPECT_EQ(back->of, ckpt.of);
  EXPECT_EQ(back->batches, ckpt.batches);
  EXPECT_EQ(back->runs, ckpt.runs);
  EXPECT_EQ(back->bytes, ckpt.bytes);
  EXPECT_TRUE(back->done);
}

TEST(ShardTest, CheckpointAbsentIsFreshStartButCorruptIsFatal) {
  EXPECT_FALSE(
      read_checkpoint(testing::TempDir() + "hsfi_no_such_ckpt").has_value());
  // A present-but-garbled cursor must never silently restart from zero.
  const std::string path = scratch("ckpt_corrupt") + ".ckpt";
  std::ofstream(path) << "{\"magic\": \"hsfi-ckpt-v1\", \"spec\": tor";
  EXPECT_THROW((void)read_checkpoint(path), ShardError);
  std::ofstream(path) << "{\"magic\": \"something-else\"}\n";
  EXPECT_THROW((void)read_checkpoint(path), ShardError);
}

// ---------------------------------------------------------------------------
// Execution: merge byte-identity, resume, crash recovery

TEST(ShardTest, MergedShardsAreByteIdenticalToSingleProcess) {
  const auto runs = fixture_runs();

  const std::string single = scratch("single");
  Checkpoint identity;
  identity.spec_digest = fnv1a64(kSpec);
  auto runner = synthetic_runner();
  ShardOptions opts;
  opts.batch = 4;
  const auto result = run_sharded(runner, runs, single, identity, opts);
  EXPECT_EQ(result.executed.size(), runs.size());
  EXPECT_EQ(result.restored, 0u);
  const auto sidecar = read_checkpoint(checkpoint_path(single));
  ASSERT_TRUE(sidecar.has_value());
  EXPECT_TRUE(sidecar->done);
  EXPECT_EQ(sidecar->runs, runs.size());
  EXPECT_EQ(sidecar->bytes, slurp(single).size());

  for (const std::uint32_t n : {2u, 4u}) {
    const std::string out = scratch("merged" + std::to_string(n));
    run_all_shards_and_merge(runs, out, n, /*batch=*/2);
    EXPECT_EQ(slurp(out), slurp(single)) << n << " shards";
  }
}

TEST(ShardTest, MergeRejectsUnfinishedShards) {
  const auto runs = fixture_runs();
  const std::string out = scratch("merge_guard");
  run_all_shards_and_merge(runs, out, 2, /*batch=*/2);

  // Drop the last record of shard 0: the merge must refuse, not emit a
  // file with a silent gap.
  const std::string victim = shard_path(out, 0, 2);
  const std::string text = slurp(victim);
  ASSERT_FALSE(text.empty());
  const auto cut = text.find_last_of('\n', text.size() - 2);
  std::ofstream(victim, std::ios::binary | std::ios::trunc)
      << (cut == std::string::npos ? "" : text.substr(0, cut + 1));
  EXPECT_THROW((void)merge_shards(runs, out, 2), ShardError);

  // A missing shard file entirely is also fatal.
  std::remove(victim.c_str());
  EXPECT_THROW((void)merge_shards(runs, out, 2), ShardError);
}

TEST(ShardTest, ResumeRefusesForeignCheckpoint) {
  const auto runs = fixture_runs();
  const std::string out = scratch("foreign");
  Checkpoint stale;
  stale.spec_digest = 0x1111111111111111ull;  // some other spec
  stale.runs = 2;
  write_checkpoint(checkpoint_path(out), stale);

  Checkpoint identity;
  identity.spec_digest = fnv1a64(kSpec);
  auto runner = synthetic_runner();
  ShardOptions opts;
  opts.resume = true;
  EXPECT_THROW((void)run_sharded(runner, runs, out, identity, opts),
               ShardError);

  // Same spec but a different shard layout is refused too.
  stale.spec_digest = identity.spec_digest;
  stale.shard = 1;
  stale.of = 2;
  write_checkpoint(checkpoint_path(out), stale);
  EXPECT_THROW((void)run_sharded(runner, runs, out, identity, opts),
               ShardError);
}

TEST(ShardTest, ResumeSkipsDurableRunsAndExecutesTheRest) {
  const auto runs = fixture_runs();
  const std::string reference = scratch("resume_ref");
  Checkpoint identity;
  identity.spec_digest = fnv1a64(kSpec);
  ShardOptions opts;
  opts.batch = 3;
  {
    auto runner = synthetic_runner();
    (void)run_sharded(runner, runs, reference, identity, opts);
  }

  // First leg: stop cleanly after 2 batches (throw from the after_batch
  // seam — any abnormal exit between batches looks the same on disk).
  const std::string out = scratch("resume_cut");
  struct StopEarly {};
  ShardOptions first = opts;
  first.after_batch = [](const Checkpoint& ckpt) {
    if (ckpt.batches == 2) throw StopEarly{};
  };
  {
    auto runner = synthetic_runner();
    EXPECT_THROW((void)run_sharded(runner, runs, out, identity, first),
                 StopEarly);
  }
  EXPECT_FALSE(read_checkpoint(checkpoint_path(out))->done);

  // Second leg resumes: 6 runs restored, the remaining 6 executed.
  ShardOptions second = opts;
  second.resume = true;
  auto runner = synthetic_runner();
  const auto result = run_sharded(runner, runs, out, identity, second);
  EXPECT_EQ(result.restored, 6u);
  EXPECT_EQ(result.executed.size(), runs.size() - 6);
  EXPECT_EQ(result.executed.front().index, 6u);
  EXPECT_TRUE(read_checkpoint(checkpoint_path(out))->done);
  EXPECT_EQ(slurp(out), slurp(reference));
}

TEST(ShardTest, KilledMidCampaignResumesByteIdentical) {
  // The full crash contract, process-grade: fork a child that appends a
  // torn, newline-less record after its second durable batch and dies via
  // _exit (no atexit, no flush — the SIGKILL shape), then resume in the
  // parent and demand the uninterrupted bytes.
  const auto runs = fixture_runs();
  const std::string reference = scratch("kill_ref");
  Checkpoint identity;
  identity.spec_digest = fnv1a64(kSpec);
  ShardOptions opts;
  opts.batch = 2;
  {
    auto runner = synthetic_runner();
    (void)run_sharded(runner, runs, reference, identity, opts);
  }

  const std::string out = scratch("kill_cut");
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ShardOptions crashing = opts;
    crashing.after_batch = [&out](const Checkpoint& ckpt) {
      if (ckpt.batches < 2) return;
      const int fd =
          ::open(out.c_str(), O_WRONLY | O_APPEND);  // torn trailing record
      if (fd >= 0) {
        const char torn[] = "{\"run\":999,\"name\":\"torn-by-cra";
        (void)!::write(fd, torn, sizeof(torn) - 1);
      }
      ::_exit(9);
    };
    auto runner = synthetic_runner();
    try {
      (void)run_sharded(runner, runs, out, identity, crashing);
    } catch (...) {
    }
    ::_exit(1);  // crash hook never fired — fail loudly
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 9);

  // The torn tail is really there, past the durable cursor.
  const auto cut = read_checkpoint(checkpoint_path(out));
  ASSERT_TRUE(cut.has_value());
  EXPECT_FALSE(cut->done);
  EXPECT_EQ(cut->runs, 4u);
  EXPECT_GT(slurp(out).size(), cut->bytes);

  // Resume truncates the tail and re-executes from the durable prefix.
  ShardOptions resume = opts;
  resume.resume = true;
  auto runner = synthetic_runner();
  const auto result = run_sharded(runner, runs, out, identity, resume);
  EXPECT_EQ(result.restored, 4u);
  EXPECT_EQ(result.executed.size(), runs.size() - 4);
  EXPECT_EQ(slurp(out), slurp(reference));
  EXPECT_TRUE(read_checkpoint(checkpoint_path(out))->done);
}

}  // namespace
}  // namespace hsfi::orchestrator
