// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace hsfi::sim {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(nanoseconds(1), 1'000);
  EXPECT_EQ(microseconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1'000'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ(to_nanoseconds(nanoseconds(250)), 250.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(7)), 7.0);
}

TEST(TimeTest, CharacterPeriodMatchesPaperRates) {
  // 80 MB/s => 12.5 ns per character; 160 MB/s => 6.25 ns.
  EXPECT_EQ(character_period_for_mbytes(80), picoseconds(12'500));
  EXPECT_EQ(character_period_for_mbytes(160), picoseconds(6'250));
}

TEST(TimeTest, FormatPicksReadableUnit) {
  EXPECT_EQ(format_time(nanoseconds(250)), "250 ns");
  EXPECT_EQ(format_time(microseconds(3)), "3 us");
  EXPECT_EQ(format_time(milliseconds(50)), "50 ms");
  EXPECT_EQ(format_time(seconds(2)), "2 s");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(RngTest, StreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  bool differ = false;
  for (int i = 0; i < 16 && !differ; ++i) differ = a.next_u32() != b.next_u32();
  EXPECT_TRUE(differ);
}

TEST(RngTest, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
  EXPECT_EQ(r.below(0), 0u);
  EXPECT_EQ(r.below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(r.range(3, 3), 3);
  EXPECT_EQ(r.range(4, 2), 4);  // degenerate bounds clamp to lo
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&] { ++fired; });
  const EventId id = q.schedule(2, [&] { ++fired; });
  q.schedule(3, [&] { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, CancelFiredIdIsNoOp) {
  EventQueue q;
  const EventId id = q.schedule(1, [] {});
  q.pop().action();
  q.cancel(id);  // must not crash or corrupt
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelInvalidIdIsNoOp) {
  EventQueue q;
  q.cancel(kInvalidEventId);
  q.cancel(12345);
  EXPECT_TRUE(q.empty());
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator s;
  SimTime seen = -1;
  s.schedule_in(nanoseconds(100), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, nanoseconds(100));
  EXPECT_EQ(s.now(), nanoseconds(100));
}

TEST(SimulatorTest, RunUntilStopsClockAtBound) {
  Simulator s;
  int fired = 0;
  s.schedule_in(nanoseconds(100), [&] { ++fired; });
  s.schedule_in(nanoseconds(300), [&] { ++fired; });
  s.run_until(nanoseconds(200));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), nanoseconds(200));
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsCanScheduleEvents) {
  Simulator s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_in(nanoseconds(10), recurse);
  };
  s.schedule_in(0, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), nanoseconds(40));
}

TEST(SimulatorTest, StopRequestHalts) {
  Simulator s;
  int fired = 0;
  s.schedule_in(1, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_in(2, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator s;
  s.schedule_in(nanoseconds(10), [&] {
    s.schedule_in(-nanoseconds(5), [&] { EXPECT_EQ(s.now(), nanoseconds(10)); });
  });
  s.run();
  EXPECT_EQ(s.executed_events(), 2u);
}

}  // namespace
}  // namespace hsfi::sim
