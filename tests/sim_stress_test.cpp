// Stress/property tests for the event queue and simulator: random
// schedule/cancel interleavings must preserve time order, cancellation
// exactness, and determinism.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hsfi::sim {
namespace {

class QueueStress : public ::testing::TestWithParam<int> {};

TEST_P(QueueStress, RandomScheduleCancelPreservesOrderAndCounts) {
  EventQueue q;
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  std::vector<EventId> live;
  std::uint64_t scheduled = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t fired = 0;
  SimTime last_fired = -1;
  std::uint64_t expected_live = 0;

  for (int i = 0; i < 20'000; ++i) {
    const double dice = rng.uniform();
    if (dice < 0.5) {
      const SimTime when = last_fired + 1 + rng.range(0, 1000);
      live.push_back(q.schedule(when, [&fired] { ++fired; }));
      ++scheduled;
      ++expected_live;
    } else if (dice < 0.7 && !live.empty()) {
      const auto idx = rng.below(static_cast<std::uint32_t>(live.size()));
      q.cancel(live[idx]);
      live.erase(live.begin() + idx);
      ++cancelled;
      --expected_live;
    } else if (!q.empty()) {
      auto f = q.pop();
      EXPECT_GE(f.when, last_fired) << "time went backwards";
      last_fired = f.when;
      f.action();
      --expected_live;
      // Remove from our live list if present (it may have been popped).
      for (std::size_t k = 0; k < live.size(); ++k) {
        if (live[k] == f.id) {
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
          break;
        }
      }
    }
    ASSERT_EQ(q.size(), expected_live);
  }
  while (!q.empty()) {
    auto f = q.pop();
    EXPECT_GE(f.when, last_fired);
    last_fired = f.when;
    f.action();
  }
  EXPECT_EQ(fired, scheduled - cancelled);
}

TEST_P(QueueStress, DoubleCancelAndPostFireCancelAreHarmless) {
  EventQueue q;
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 77);
  std::vector<EventId> ids;
  int fired = 0;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(q.schedule(rng.range(0, 100), [&fired] { ++fired; }));
  }
  // Cancel a random half, some of them twice.
  int cancelled_once = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    q.cancel(ids[i]);
    ++cancelled_once;
    if (i % 4 == 0) q.cancel(ids[i]);  // double cancel
  }
  while (!q.empty()) q.pop().action();
  for (const auto id : ids) q.cancel(id);  // post-fire cancels
  EXPECT_EQ(fired, 500 - cancelled_once);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueStress, ::testing::Range(1, 6));

TEST(SimulatorStressTest, DeterministicAcrossRuns) {
  const auto run_once = [] {
    Simulator s;
    Rng rng(42);
    std::vector<SimTime> trace;
    std::function<void()> spawn = [&] {
      trace.push_back(s.now());
      if (trace.size() < 2000) {
        s.schedule_in(rng.range(1, 500), spawn);
        if (rng.chance(0.3)) s.schedule_in(rng.range(1, 500), spawn);
      }
    };
    s.schedule_in(0, spawn);
    s.run_until(seconds(1));
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimulatorStressTest, RunUntilThenRunResumesSeamlessly) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 100; ++i) {
    s.schedule_in(microseconds(i), [&count] { ++count; });
  }
  s.run_until(microseconds(50));
  EXPECT_EQ(count, 50);
  EXPECT_EQ(s.now(), microseconds(50));
  s.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.executed_events(), 100u);
}

}  // namespace
}  // namespace hsfi::sim
