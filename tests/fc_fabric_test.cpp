// Tests for the FC fabric element: D_ID routing, per-hop credit isolation,
// cascaded fabrics, class-3 discard, and the injector spliced into an
// inter-switch link of an FC topology.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/device.hpp"
#include "fc/fabric.hpp"
#include "link/channel.hpp"
#include "sim/simulator.hpp"

namespace hsfi::fc {
namespace {

constexpr sim::Duration kFcPeriod = sim::picoseconds(9'412);

struct Endpoint {
  std::unique_ptr<link::DuplexLink> cable;
  std::unique_ptr<FcPort> port;
  std::vector<FcFrame> received;
};

std::unique_ptr<Endpoint> make_endpoint(sim::Simulator& sim, FcFabric& fabric,
                                        std::size_t fabric_port,
                                        const std::string& tag) {
  auto e = std::make_unique<Endpoint>();
  e->cable = std::make_unique<link::DuplexLink>(sim, tag, kFcPeriod,
                                                sim::nanoseconds(5));
  e->port = std::make_unique<FcPort>(sim, tag, FcPort::Config{});
  e->port->attach(e->cable->b_to_a(), e->cable->a_to_b());
  fabric.attach_port(fabric_port, e->cable->a_to_b(), e->cable->b_to_a());
  auto* sink = &e->received;
  e->port->on_frame(
      [sink](FcFrame f, sim::SimTime) { sink->push_back(std::move(f)); });
  return e;
}

FcFrame frame_to(std::uint32_t d_id, std::uint8_t tag) {
  FcFrame f;
  f.header.d_id = d_id;
  f.header.s_id = 0x010000;
  f.header.seq_cnt = tag;
  f.payload.assign(32, tag);
  return f;
}

TEST(FcFabricTest, RoutesByDestinationDomain) {
  sim::Simulator sim;
  FcFabric fabric(sim, "fab", {});
  auto a = make_endpoint(sim, fabric, 0, "a");
  auto b = make_endpoint(sim, fabric, 1, "b");
  auto c = make_endpoint(sim, fabric, 2, "c");
  fabric.set_route(0x01, 0);
  fabric.set_route(0x02, 1);
  fabric.set_route(0x03, 2);

  a->port->send(frame_to(0x020000, 1));
  a->port->send(frame_to(0x030000, 2));
  sim.run();
  ASSERT_EQ(b->received.size(), 1u);
  EXPECT_EQ(b->received[0].header.seq_cnt, 1);
  ASSERT_EQ(c->received.size(), 1u);
  EXPECT_EQ(c->received[0].header.seq_cnt, 2);
  EXPECT_EQ(fabric.stats().frames_forwarded, 2u);
}

TEST(FcFabricTest, UnroutableDomainDiscardedClass3) {
  sim::Simulator sim;
  FcFabric fabric(sim, "fab", {});
  auto a = make_endpoint(sim, fabric, 0, "a");
  auto b = make_endpoint(sim, fabric, 1, "b");
  fabric.set_route(0x01, 0);
  fabric.set_route(0x02, 1);
  a->port->send(frame_to(0x7F0000, 9));  // unknown domain
  sim.run();
  EXPECT_TRUE(b->received.empty());
  EXPECT_EQ(fabric.stats().frames_discarded, 1u);
}

TEST(FcFabricTest, CreditIsPerHop) {
  // A slow destination throttles only its own link: the source-to-fabric
  // hop returns credits as the fabric buffers frames, and the fabric's
  // egress credit gates delivery.
  sim::Simulator sim;
  FcFabric::Config fc;
  fc.port.rx_processing_time = sim::microseconds(1);
  FcFabric fabric(sim, "fab", fc);
  FcPort::Config slow;
  slow.rx_processing_time = sim::microseconds(200);
  auto a = make_endpoint(sim, fabric, 0, "a");
  auto b = std::make_unique<Endpoint>();
  b->cable = std::make_unique<link::DuplexLink>(sim, "b", kFcPeriod,
                                                sim::nanoseconds(5));
  b->port = std::make_unique<FcPort>(sim, "b", slow);
  b->port->attach(b->cable->b_to_a(), b->cable->a_to_b());
  fabric.attach_port(1, b->cable->a_to_b(), b->cable->b_to_a());
  auto* sink = &b->received;
  b->port->on_frame(
      [sink](FcFrame f, sim::SimTime) { sink->push_back(std::move(f)); });
  fabric.set_route(0x02, 1);

  for (std::uint8_t i = 0; i < 16; ++i) a->port->send(frame_to(0x020000, i));
  sim.run();
  EXPECT_EQ(b->received.size(), 16u);
  EXPECT_EQ(fabric.port(1).stats().rx_overflows, 0u);
  // The egress hop had to stall on credit at least once.
  EXPECT_GT(fabric.port(1).stats().credit_stall_events, 0u);
}

TEST(FcFabricTest, CascadedFabricsDeliverAcrossTwoHops) {
  sim::Simulator sim;
  FcFabric fab1(sim, "fab1", {});
  FcFabric fab2(sim, "fab2", {});
  auto a = make_endpoint(sim, fab1, 0, "a");
  auto b = make_endpoint(sim, fab2, 0, "b");
  // Inter-switch link between fab1 port 7 and fab2 port 7.
  link::DuplexLink isl(sim, "isl", kFcPeriod, sim::nanoseconds(25));
  fab1.attach_port(7, isl.b_to_a(), isl.a_to_b());
  fab2.attach_port(7, isl.a_to_b(), isl.b_to_a());
  fab1.set_route(0x01, 0);
  fab1.set_route(0x02, 7);  // domain 2 lives behind the ISL
  fab2.set_route(0x02, 0);
  fab2.set_route(0x01, 7);

  for (std::uint8_t i = 0; i < 10; ++i) a->port->send(frame_to(0x020000, i));
  sim.run();
  ASSERT_EQ(b->received.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) {
    EXPECT_EQ(b->received[i].header.seq_cnt, i);
  }
}

TEST(FcFabricTest, InjectorOnInterSwitchLink) {
  sim::Simulator sim;
  FcFabric fab1(sim, "fab1", {});
  FcFabric fab2(sim, "fab2", {});
  auto a = make_endpoint(sim, fab1, 0, "a");
  auto b = make_endpoint(sim, fab2, 0, "b");
  link::DuplexLink isl_l(sim, "isl_l", kFcPeriod, sim::nanoseconds(5));
  link::DuplexLink isl_r(sim, "isl_r", kFcPeriod, sim::nanoseconds(5));
  core::InjectorDevice::Config dc;
  dc.character_period = kFcPeriod;
  core::InjectorDevice device(sim, "fi-isl", dc);
  fab1.attach_port(7, isl_l.b_to_a(), isl_l.a_to_b());
  device.attach_left(isl_l.a_to_b(), isl_l.b_to_a());
  device.attach_right(isl_r.b_to_a(), isl_r.a_to_b());
  fab2.attach_port(7, isl_r.a_to_b(), isl_r.b_to_a());
  fab1.set_route(0x02, 7);
  fab2.set_route(0x02, 0);

  core::InjectorConfig fault;
  fault.match_mode = core::MatchMode::kOnce;
  fault.corrupt_mode = core::CorruptMode::kToggle;
  fault.compare_data = 0x00000044;  // payload fill below
  fault.compare_mask = 0x000000FF;
  fault.compare_ctl = 0x0;
  fault.compare_ctl_mask = 0x1;
  fault.corrupt_data = 0x00000001;
  device.apply(core::Direction::kLeftToRight, fault);

  for (std::uint8_t i = 0; i < 4; ++i) a->port->send(frame_to(0x020000, 0x44));
  sim.run();
  // One frame corrupted on the ISL -> dropped by CRC-32 at the far fabric
  // port; the remaining three arrive.
  EXPECT_EQ(b->received.size(), 3u);
  EXPECT_EQ(fab2.port(7).stats().crc_errors, 1u);
}

}  // namespace
}  // namespace hsfi::fc
