// Snapshot-equivalence tests for the orchestrator's snapshot/fork
// execution path (RunnerConfig::snapshots).
//
// The contract under test: forking runs from a settled-fabric snapshot is
// an execution detail, never an observable one. A mini-campaign executed
// with snapshots on must emit JSONL byte-identical to the same campaign
// cold-started — per run, across worker counts (1 vs 8, exercising the
// per-worker cache with both a shared and a partitioned cell stream), on
// both media, and through all three adaptive strategies (whose rounds
// reuse one Runner's caches across run_batch calls).
//
// On top of the self-consistency checks, the snapshotted Myrinet
// mini-campaign's JSONL is pinned as a committed digest
// (tests/golden/mini_campaign_snapshot.digest) so a snapshot-path change
// that perturbs results fails against a fixed reference even if it
// perturbs the cold path identically. Regenerate with HSFI_UPDATE_GOLDEN=1
// only when a result change is deliberate.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adaptive/controller.hpp"
#include "adaptive/strategy.hpp"
#include "fc/frame.hpp"
#include "myrinet/control.hpp"
#include "nftape/campaign.hpp"
#include "nftape/faults.hpp"
#include "nftape/medium.hpp"
#include "nftape/testbed.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"

namespace {

using namespace hsfi;
using myrinet::ControlSymbol;

/// FNV-1a, 64-bit, over the JSONL bytes (same helper shape as the other
/// golden files so the digests are comparable artifacts).
struct Fnv1a {
  std::uint64_t state = 1469598103934665603ULL;

  void byte(std::uint8_t v) {
    state ^= v;
    state *= 1099511628211ULL;
  }

  [[nodiscard]] std::string hex() const {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  (unsigned long long)state);
    return buffer;
  }
};

/// The Myrinet probe: 2 faults x 2 directions x 2 replicates = 8 runs,
/// same shape as golden_trace_test's mini campaign. All eight runs share
/// one (topology, workload, medium) cell, so with snapshots on a worker
/// settles once and forks the rest.
orchestrator::SweepSpec mini_sweep() {
  orchestrator::SweepSpec sweep;
  sweep.name = "snap-mini";
  sweep.base_seed = 7;
  sweep.replicates = 2;
  sweep.startup_settle = sim::milliseconds(150);
  sweep.directions = {orchestrator::FaultDirection::kFromSwitch,
                      orchestrator::FaultDirection::kBoth};
  sweep.faults.push_back(
      {"go-stop", nftape::control_symbol_corruption(ControlSymbol::kGo,
                                                    ControlSymbol::kStop), ""});
  sweep.faults.push_back({"seu-00FF", nftape::random_bit_flip_seu(0x00FF), ""});

  sweep.testbed.map_period = sim::milliseconds(100);
  sweep.testbed.nic_config.rx_processing_time = sim::microseconds(1);
  sweep.testbed.send_stack_time = sim::microseconds(1);
  sweep.base.warmup = sim::milliseconds(5);
  sweep.base.duration = sim::milliseconds(15);
  sweep.base.drain = sim::milliseconds(5);
  sweep.base.workload.udp_interval = sim::microseconds(12);
  sweep.base.workload.burst_size = 4;
  sweep.base.workload.jitter = 0.5;
  sweep.base.workload.payload_size = 256;
  return sweep;
}

/// The FC probe: fc_campaign_test's mini campaign, over the FcFabric
/// realization (snapshot capture/restore goes through FcFabric's own
/// FabricSnapshot implementation).
orchestrator::SweepSpec fc_mini_sweep() {
  orchestrator::SweepSpec sweep;
  sweep.name = "snap-fc-mini";
  sweep.base_seed = 11;
  sweep.replicates = 2;
  sweep.startup_settle = sim::milliseconds(10);
  sweep.directions = {orchestrator::FaultDirection::kFromSwitch,
                      orchestrator::FaultDirection::kBoth};
  sweep.faults.push_back({"seu-00FF", nftape::random_bit_flip_seu(0x00FF), ""});
  sweep.faults.push_back(
      {"sofi3-blank",
       nftape::fc_ordered_set_corruption(fc::OrderedSet::kSofI3, 0x000F), ""});

  sweep.base.medium = nftape::Medium::kFc;
  sweep.testbed.fc.rx_processing_time = sim::microseconds(1);
  sweep.base.warmup = sim::milliseconds(5);
  sweep.base.duration = sim::milliseconds(15);
  sweep.base.drain = sim::milliseconds(5);
  sweep.base.workload.udp_interval = sim::microseconds(12);
  sweep.base.workload.burst_size = 4;
  sweep.base.workload.jitter = 0.5;
  sweep.base.workload.payload_size = 256;
  return sweep;
}

/// Runs the sweep through the runner's DEFAULT executor — the exact code
/// path run_sweep uses — and returns index-ordered JSONL (no timing).
std::string run_jsonl(const orchestrator::SweepSpec& sweep,
                      std::size_t workers, bool snapshots) {
  orchestrator::RunnerConfig rc;
  rc.workers = workers;
  rc.snapshots = snapshots;
  const auto records = orchestrator::Runner(rc).run_all(
      orchestrator::expand(sweep));
  std::ostringstream lines;
  for (const auto& r : records) {
    EXPECT_EQ(r.outcome, orchestrator::RunOutcome::kOk)
        << "run " << r.index << ": " << r.error;
    lines << orchestrator::to_jsonl(r, /*include_timing=*/false) << '\n';
  }
  return lines.str();
}

TEST(SnapshotEquivalence, MyrinetForkMatchesColdStart) {
  const std::string cold = run_jsonl(mini_sweep(), 1, /*snapshots=*/false);
  const std::string fork1 = run_jsonl(mini_sweep(), 1, /*snapshots=*/true);
  const std::string fork8 = run_jsonl(mini_sweep(), 8, /*snapshots=*/true);
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(cold, fork1)
      << "forked runs must be byte-identical to cold starts";
  EXPECT_EQ(cold, fork8)
      << "per-worker snapshot caches must not leak into results";
}

TEST(SnapshotEquivalence, FibreChannelForkMatchesColdStart) {
  const std::string cold = run_jsonl(fc_mini_sweep(), 1, /*snapshots=*/false);
  const std::string fork1 = run_jsonl(fc_mini_sweep(), 1, /*snapshots=*/true);
  const std::string fork8 = run_jsonl(fc_mini_sweep(), 8, /*snapshots=*/true);
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(cold, fork1);
  EXPECT_EQ(cold, fork8);
}

// ---------------------------------------------------------------------------
// Adaptive strategies: the controller constructs ONE Runner for the whole
// campaign, so its per-worker caches persist across batch rounds — the
// rounds after the first run entirely from forks.

adaptive::AdaptiveSpec adaptive_spec() {
  adaptive::AdaptiveSpec spec;
  spec.name = "snap-adaptive";
  spec.faults = {
      {"go-stop", nftape::control_symbol_corruption(ControlSymbol::kGo,
                                                    ControlSymbol::kStop), ""},
  };
  spec.directions = {orchestrator::FaultDirection::kFromSwitch};
  spec.knob = nftape::Knob::kUdpIntervalUs;
  spec.base_seed = 7;
  spec.max_rounds = 4;
  spec.startup_settle = sim::milliseconds(150);

  spec.testbed.map_period = sim::milliseconds(100);
  spec.testbed.nic_config.rx_processing_time = sim::microseconds(1);
  spec.testbed.send_stack_time = sim::microseconds(1);
  spec.base.warmup = sim::milliseconds(5);
  spec.base.duration = sim::milliseconds(10);
  spec.base.drain = sim::milliseconds(5);
  spec.base.workload.burst_size = 4;
  spec.base.workload.jitter = 0.5;
  spec.base.workload.payload_size = 256;
  return spec;
}

/// Runs one adaptive campaign (real execution, default executor) and
/// returns its emission-ordered JSONL.
std::string run_adaptive_jsonl(const std::string& which, bool snapshots) {
  adaptive::ControllerConfig config;
  config.runner.workers = 4;
  config.runner.snapshots = snapshots;
  adaptive::Controller controller(adaptive_spec(), std::move(config));

  adaptive::CampaignOutcome outcome;
  if (which == "fixed") {
    adaptive::FixedGridConfig fc;
    fc.knob_values = {12.0};
    fc.replicates = 2;
    adaptive::FixedGridStrategy strategy(controller.cells(), fc);
    outcome = controller.run(strategy);
  } else if (which == "bisect") {
    adaptive::BisectionConfig bc;
    bc.lo = 8.0;
    bc.hi = 64.0;
    bc.tolerance = 28.0;
    bc.higher_is_more_intense = false;
    adaptive::BisectionStrategy strategy(controller.cells(), bc);
    outcome = controller.run(strategy);
  } else {
    adaptive::CoverageConfig cc;
    cc.knob_value = 12.0;
    cc.target_count = 1;
    cc.batch_replicates = 2;
    cc.min_injections = 16;
    cc.hopeless_rate = 0.5;
    adaptive::CoverageStrategy strategy(controller.cells(), cc);
    outcome = controller.run(strategy);
  }
  EXPECT_FALSE(outcome.records.empty()) << which;
  std::string jsonl;
  for (const auto& rec : outcome.records) {
    EXPECT_EQ(rec.outcome, orchestrator::RunOutcome::kOk)
        << which << " run " << rec.index << ": " << rec.error;
    jsonl += orchestrator::to_jsonl(rec);
    jsonl += '\n';
  }
  return jsonl;
}

class SnapshotAdaptiveTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SnapshotAdaptiveTest, ForkMatchesColdStart) {
  const std::string cold = run_adaptive_jsonl(GetParam(), false);
  const std::string fork = run_adaptive_jsonl(GetParam(), true);
  EXPECT_EQ(cold, fork)
      << GetParam()
      << ": snapshot reuse across controller rounds must not change records";
}

INSTANTIATE_TEST_SUITE_P(Strategies, SnapshotAdaptiveTest,
                         ::testing::Values("fixed", "bisect", "coverage"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Committed digest: the snapshotted mini-campaign against a fixed
// reference, alongside tests/golden/mini_campaign.digest.

std::string golden_path() {
  return std::string(HSFI_GOLDEN_DIR) + "/mini_campaign_snapshot.digest";
}

TEST(SnapshotEquivalence, MatchesCommittedDigest) {
  const std::string jsonl = run_jsonl(mini_sweep(), 1, /*snapshots=*/true);
  Fnv1a fnv;
  for (const char ch : jsonl) fnv.byte(static_cast<std::uint8_t>(ch));
  const std::string digest = fnv.hex();

  if (const char* update = std::getenv("HSFI_UPDATE_GOLDEN");
      update != nullptr && *update) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << digest << '\n';
    GTEST_SKIP() << "updated " << golden_path() << " to " << digest;
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing " << golden_path()
                  << " (generate with HSFI_UPDATE_GOLDEN=1)";
  std::string expected;
  in >> expected;
  EXPECT_EQ(digest, expected)
      << "snapshotted campaign results changed; if intended, regenerate "
      << golden_path() << " with HSFI_UPDATE_GOLDEN=1";
}

}  // namespace
