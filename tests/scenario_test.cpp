// Scenario-layer unit tests: the registry, step-kind naming, medium
// gating, and the ddmin Minimizer against synthetic executors. No
// simulation runs here — the minimizer is pure given its Execute callback,
// which is exactly the property these tests pin (exact planted-subset
// recovery, deterministic probe sequences, the better-than-naive run
// count, and the non-reproducing terminal case). The campaign-backed
// executor is exercised in scenario_campaign_test.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/minimizer.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace hsfi;
using scenario::Medium;
using scenario::ScenarioSpec;
using scenario::Step;
using scenario::StepKind;

Step make_step(StepKind kind, long at_ms, std::uint32_t node = 0,
               std::uint64_t count = 1) {
  Step s;
  s.kind = kind;
  s.at = sim::milliseconds(at_ms);
  s.node = node;
  s.count = count;
  return s;
}

/// Eight steps tagged by node index so synthetic executors can recognize
/// exactly which subset a ddmin probe selected.
ScenarioSpec eight_steps() {
  ScenarioSpec spec;
  spec.name = "synthetic";
  for (std::uint32_t i = 0; i < 8; ++i) {
    spec.steps.push_back(make_step(StepKind::kLyingGo, i + 1, i));
  }
  return spec;
}

bool has_node(const ScenarioSpec& spec, std::uint32_t node) {
  for (const auto& s : spec.steps) {
    if (s.node == node) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Registry

TEST(ScenarioRegistry, ListsDescribedBuildableScenarios) {
  const auto& all = scenario::list_scenarios();
  ASSERT_EQ(all.size(), 5u);
  for (const auto& info : all) {
    EXPECT_FALSE(info.description.empty()) << info.name;
    const auto spec = scenario::find_scenario(info.name);
    ASSERT_TRUE(spec.has_value()) << info.name;
    EXPECT_EQ(spec->name, info.name);
    EXPECT_FALSE(spec->steps.empty()) << info.name;
    EXPECT_TRUE(scenario::compatible(*spec, info.medium)) << info.name;
    for (const auto& s : spec->steps) {
      // The analyzer classifies injections with window_begin < t, so a
      // step at offset 0 would fire outside the window.
      EXPECT_GT(s.at, 0) << info.name;
    }
  }
  EXPECT_FALSE(scenario::find_scenario("no-such-scenario").has_value());
}

TEST(ScenarioRegistry, FlowLiarCarriesAtLeastSixInterventions) {
  // The end-to-end minimization acceptance rides on this program shape.
  const auto spec = scenario::find_scenario("flow-liar");
  ASSERT_TRUE(spec.has_value());
  EXPECT_GE(spec->steps.size(), 6u);
  for (const auto& s : spec->steps) {
    EXPECT_EQ(scenario::medium_of(s.kind), Medium::kMyrinet);
  }
}

TEST(ScenarioSteps, KindNamesRoundTrip) {
  for (std::size_t i = 0; i < scenario::kStepKindCount; ++i) {
    const auto kind = static_cast<StepKind>(i);
    const auto name = scenario::to_string(kind);
    EXPECT_FALSE(name.empty());
    const auto parsed = scenario::parse_step_kind(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
    EXPECT_FALSE(scenario::describe(kind).empty()) << name;
  }
  EXPECT_FALSE(scenario::parse_step_kind("lying-promise").has_value());
}

TEST(ScenarioSteps, MediumGating) {
  EXPECT_EQ(scenario::medium_of(StepKind::kForgedAnnounce), Medium::kMyrinet);
  EXPECT_EQ(scenario::medium_of(StepKind::kLyingGo), Medium::kMyrinet);
  EXPECT_EQ(scenario::medium_of(StepKind::kTruncateFrames), Medium::kMyrinet);
  EXPECT_EQ(scenario::medium_of(StepKind::kRrdyFlood), Medium::kFc);
  EXPECT_EQ(scenario::medium_of(StepKind::kDupSequence), Medium::kFc);

  ScenarioSpec mixed;
  mixed.name = "mixed";
  mixed.steps = {make_step(StepKind::kLyingGo, 1),
                 make_step(StepKind::kRrdyFlood, 2)};
  EXPECT_FALSE(scenario::compatible(mixed, Medium::kMyrinet));
  EXPECT_FALSE(scenario::compatible(mixed, Medium::kFc));
}

// ---------------------------------------------------------------------------
// Minimizer

TEST(Minimizer, RecoversExactPlantedPair) {
  const auto full = eight_steps();
  std::size_t calls = 0;
  const scenario::Minimizer::Execute execute =
      [&](const ScenarioSpec& candidate) {
        ++calls;
        return has_node(candidate, 2) && has_node(candidate, 5)
                   ? std::string("wedged")
                   : std::string();
      };
  const auto result = scenario::Minimizer().minimize(full, "wedged", execute);
  EXPECT_TRUE(result.reproduced);
  EXPECT_TRUE(result.irreducible);
  ASSERT_EQ(result.minimal.steps.size(), 2u);
  EXPECT_EQ(result.minimal.steps[0].node, 2u);  // original order preserved
  EXPECT_EQ(result.minimal.steps[1].node, 5u);
  EXPECT_EQ(result.runs, calls);
}

TEST(Minimizer, SingleCulpritBeatsNaiveRemoval) {
  const auto full = eight_steps();
  const scenario::Minimizer::Execute execute =
      [&](const ScenarioSpec& candidate) {
        return has_node(candidate, 3) ? std::string("x") : std::string();
      };
  const auto result = scenario::Minimizer().minimize(full, "x", execute);
  ASSERT_EQ(result.minimal.steps.size(), 1u);
  EXPECT_EQ(result.minimal.steps[0].node, 3u);
  // Naive one-at-a-time removal spends the initial reproduction check plus
  // one probe per step; ddmin's binary chunking must beat it.
  EXPECT_LT(result.runs, full.steps.size() + 1);
}

TEST(Minimizer, ProbeSequenceIsDeterministic) {
  const auto full = eight_steps();
  const auto run_once = [&](std::vector<std::size_t>& sizes) {
    const scenario::Minimizer::Execute execute =
        [&](const ScenarioSpec& candidate) {
          sizes.push_back(candidate.steps.size());
          return has_node(candidate, 3) && has_node(candidate, 6)
                     ? std::string("x")
                     : std::string();
        };
    return scenario::Minimizer().minimize(full, "x", execute);
  };
  std::vector<std::size_t> first, second;
  const auto a = run_once(first);
  const auto b = run_once(second);
  EXPECT_EQ(first, second) << "the exact probe sequence must be a pure "
                              "function of the input spec";
  EXPECT_EQ(a.minimal, b.minimal);
  EXPECT_EQ(a.runs, b.runs);
}

TEST(Minimizer, NonReproducingSequenceIsReportedWhole) {
  const auto full = eight_steps();
  std::size_t calls = 0;
  const scenario::Minimizer::Execute execute = [&](const ScenarioSpec&) {
    ++calls;
    return std::string();  // never manifests
  };
  const auto result = scenario::Minimizer().minimize(full, "ghost", execute);
  EXPECT_FALSE(result.reproduced);
  EXPECT_TRUE(result.irreducible);
  EXPECT_EQ(result.minimal, full) << "reported whole, not shrunk";
  EXPECT_EQ(result.runs, 1u) << "no shrink probes after the failed check";
  EXPECT_EQ(calls, 1u);
}

TEST(Minimizer, ShrinksStepParameters) {
  ScenarioSpec full;
  full.name = "storm";
  full.steps = {make_step(StepKind::kRrdyFlood, 1, 0, 16)};
  const scenario::Minimizer::Execute execute =
      [](const ScenarioSpec& candidate) {
        // Manifests only while the flood is at least 4 R_RDYs deep.
        return !candidate.steps.empty() && candidate.steps[0].count >= 4
                   ? std::string("overrun")
                   : std::string();
      };
  const auto shrunk =
      scenario::Minimizer().minimize(full, "overrun", execute);
  ASSERT_EQ(shrunk.minimal.steps.size(), 1u);
  EXPECT_EQ(shrunk.minimal.steps[0].count, 4u)
      << "halving stops at the smallest still-manifesting power-of-two cut";

  scenario::Minimizer::Config config;
  config.shrink_params = false;
  const auto kept =
      scenario::Minimizer(config).minimize(full, "overrun", execute);
  ASSERT_EQ(kept.minimal.steps.size(), 1u);
  EXPECT_EQ(kept.minimal.steps[0].count, 16u);
}

TEST(Minimizer, ShrinksParametersOfEverySurvivingStep) {
  ScenarioSpec full = eight_steps();
  full.steps[2].count = 8;
  full.steps[5].count = 6;
  const scenario::Minimizer::Execute execute =
      [&](const ScenarioSpec& candidate) {
        // Both planted steps needed, each with count >= 2.
        for (const std::uint32_t node : {2u, 5u}) {
          bool ok = false;
          for (const auto& s : candidate.steps) {
            if (s.node == node && s.count >= 2) ok = true;
          }
          if (!ok) return std::string();
        }
        return std::string("both");
      };
  const auto result = scenario::Minimizer().minimize(full, "both", execute);
  ASSERT_EQ(result.minimal.steps.size(), 2u);
  EXPECT_EQ(result.minimal.steps[0].count, 2u);
  EXPECT_EQ(result.minimal.steps[1].count, 3u)  // 6 -> 3; 3/2 = 1 fails
      << "per-step halving is independent";
}

}  // namespace
