// StreamStats monitor: frame classification at both link positions (with
// and without a leading route byte) and the per-(dst, src) identifier pair
// counters, including what they report when the payload's address fields
// are corrupted in flight (paper §3.2, §4.3.3).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/stats.hpp"
#include "myrinet/addr.hpp"
#include "myrinet/control.hpp"
#include "myrinet/framing.hpp"
#include "myrinet/packet.hpp"

namespace hsfi::core {
namespace {

using myrinet::ControlSymbol;
using myrinet::EthAddr;
using myrinet::Packet;

constexpr std::uint64_t kDst = 0x0000AABBCCDDEEFF;
constexpr std::uint64_t kSrc = 0x0000112233445566;

/// Payload carrying the host stack's dst(6) + src(6) identifiers plus one
/// trailing byte so it clears the monitor's minimum-length check.
std::vector<std::uint8_t> addressed_payload(std::uint64_t dst,
                                            std::uint64_t src) {
  std::vector<std::uint8_t> p;
  myrinet::put_eth(p, EthAddr::from_u64(dst));
  myrinet::put_eth(p, EthAddr::from_u64(src));
  p.push_back(0x5A);
  return p;
}

void feed_frame(StreamStats& stats, const std::vector<std::uint8_t>& bytes) {
  sim::SimTime t = 0;
  for (const auto s : myrinet::frame_symbols(bytes)) {
    stats.feed(s, t);
    t += sim::picoseconds(12'500);
  }
}

TEST(StreamStatsTest, ClassifiesDeliveredDataFrameAndCountsPair) {
  StreamStats stats;
  Packet p;  // no route bytes: the shape a destination interface sees
  p.payload = addressed_payload(kDst, kSrc);
  feed_frame(stats, myrinet::serialize(p));

  EXPECT_EQ(stats.counters().frames, 1u);
  EXPECT_EQ(stats.counters().data_frames, 1u);
  EXPECT_EQ(stats.counters().other_frames, 0u);
  ASSERT_EQ(stats.pair_counts().size(), 1u);
  const auto& [key, count] = *stats.pair_counts().begin();
  EXPECT_EQ(key.first, kDst);
  EXPECT_EQ(key.second, kSrc);
  EXPECT_EQ(count, 1u);
}

TEST(StreamStatsTest, RouteByteShiftsTypeFieldButClassificationFollows) {
  // A frame observed before its last switch hop still carries a route
  // byte, shifting every field by one; the monitor must classify by the
  // shifted type and read the identifiers at the shifted offset.
  StreamStats stats;
  Packet p;
  p.route = {myrinet::route_to_host(2)};
  p.payload = addressed_payload(kDst, kSrc);
  feed_frame(stats, myrinet::serialize(p));

  EXPECT_EQ(stats.counters().data_frames, 1u);
  EXPECT_EQ(stats.counters().other_frames, 0u);
  ASSERT_EQ(stats.pair_counts().size(), 1u);
  EXPECT_EQ(stats.pair_counts().begin()->first.first, kDst);
  EXPECT_EQ(stats.pair_counts().begin()->first.second, kSrc);

  // Mapping frames are classified through the same shifted path, and
  // carry no host identifiers.
  Packet m;
  m.route = {myrinet::route_to_switch(5)};
  m.type = myrinet::kTypeMapping;
  m.payload = addressed_payload(kDst, kSrc);
  feed_frame(stats, myrinet::serialize(m));
  EXPECT_EQ(stats.counters().mapping_frames, 1u);
  EXPECT_EQ(stats.pair_counts().size(), 1u);
}

TEST(StreamStatsTest, CorruptedAddressBytesCountUnderTheCorruptedPair) {
  // §4.3.3 address corruption with the injector's CRC repatch: the frame
  // still passes the link CRC, so the monitor attributes it to the
  // (corrupted) identifier pair it actually saw — a new pair entry is the
  // observable signature of address corruption.
  StreamStats stats;
  Packet good;
  good.payload = addressed_payload(kDst, kSrc);
  feed_frame(stats, myrinet::serialize(good));
  feed_frame(stats, myrinet::serialize(good));

  Packet corrupted;
  corrupted.payload = addressed_payload(kDst ^ 0x01, kSrc);  // flipped dst bit
  feed_frame(stats, myrinet::serialize(corrupted));

  EXPECT_EQ(stats.counters().data_frames, 3u);
  ASSERT_EQ(stats.pair_counts().size(), 2u);
  EXPECT_EQ(stats.pair_counts().at({kDst, kSrc}), 2u);
  EXPECT_EQ(stats.pair_counts().at({kDst ^ 0x01, kSrc}), 1u);
}

TEST(StreamStatsTest, CrcBadFrameIsCountedAndExcludedFromPairs) {
  // Without the repatch a corrupted byte fails the CRC: counted as
  // crc-bad, never attributed to an identifier pair.
  StreamStats stats;
  Packet p;
  p.payload = addressed_payload(kDst, kSrc);
  auto bytes = myrinet::serialize(p);
  bytes[5] ^= 0x40;  // corrupt a payload byte, leave the trailing CRC alone
  feed_frame(stats, bytes);

  EXPECT_EQ(stats.counters().frames, 1u);
  EXPECT_EQ(stats.counters().crc_bad_frames, 1u);
  EXPECT_EQ(stats.counters().data_frames, 0u);
  EXPECT_TRUE(stats.pair_counts().empty());
}

TEST(StreamStatsTest, ControlSymbolCountersAndClear) {
  StreamStats stats;
  stats.feed(myrinet::to_symbol(ControlSymbol::kStop), 0);
  stats.feed(myrinet::to_symbol(ControlSymbol::kGo), 1);
  stats.feed(myrinet::to_symbol(ControlSymbol::kGap), 2);
  EXPECT_EQ(stats.counters().characters, 3u);
  EXPECT_EQ(stats.counters().control_symbols, 3u);
  EXPECT_EQ(stats.counters().stops, 1u);
  EXPECT_EQ(stats.counters().gos, 1u);
  EXPECT_EQ(stats.counters().gaps, 1u);

  Packet p;
  p.payload = addressed_payload(kDst, kSrc);
  feed_frame(stats, myrinet::serialize(p));
  EXPECT_NE(stats.render().find("packets=1"), std::string::npos);

  stats.clear();
  EXPECT_EQ(stats.counters().characters, 0u);
  EXPECT_TRUE(stats.pair_counts().empty());
}

}  // namespace
}  // namespace hsfi::core
