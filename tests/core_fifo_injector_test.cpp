// Unit tests for the FIFO injector datapath (paper Figs. 2/3): two-phase
// clocking, sliding 32-bit compare window, match modes, corrupt modes, and
// the inject-now strobe.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/fifo_injector.hpp"
#include "myrinet/control.hpp"

namespace hsfi::core {
namespace {

using link::control_symbol;
using link::data_symbol;
using link::Symbol;

/// Clocks `in` through and collects every emitted character.
std::vector<Symbol> run_stream(FifoInjector& inj, const std::vector<Symbol>& in) {
  std::vector<Symbol> out;
  const auto keep = [&out](const FifoInjector::Result& r) {
    if (r.out && !is_idle_character(*r.out)) out.push_back(*r.out);
  };
  for (const auto s : in) keep(inj.clock(s));
  // Drain with idle clocks.
  while (inj.pending_payload()) keep(inj.clock(std::nullopt));
  return out;
}

std::vector<Symbol> bytes_to_symbols(std::initializer_list<int> bytes) {
  std::vector<Symbol> v;
  for (const int b : bytes) v.push_back(data_symbol(static_cast<std::uint8_t>(b)));
  return v;
}

TEST(FifoInjectorTest, TransparentWhenOff) {
  FifoInjector inj;
  const auto in = bytes_to_symbols({0x18, 0x18, 0x42, 0x99, 0x00});
  EXPECT_EQ(run_stream(inj, in), in);
  EXPECT_EQ(inj.stats().injections, 0u);
}

TEST(FifoInjectorTest, LatencyIsPipelineDepth) {
  FifoInjector::Params p;
  p.latency_chars = 8;
  FifoInjector inj(p);
  // The first character appears only after latency_chars more pushes.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(inj.clock(data_symbol(static_cast<std::uint8_t>(i))).out);
  }
  const auto r = inj.clock(data_symbol(0xFF));
  ASSERT_TRUE(r.out.has_value());
  EXPECT_EQ(r.out->data, 0x00);  // the first pushed character
}

TEST(FifoInjectorTest, PaperScenarioMatch1818Replace1918) {
  // Paper §3.3 typical injection scenario: "match the data stream 0x1818,
  // and replace it with 0x1918... Each contiguous 32-bit string would be
  // checked to see if it contained the 16 bits 0x1818."
  FifoInjector inj;
  auto& cfg = inj.config();
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  cfg.compare_data = 0x00001818;
  cfg.compare_mask = 0x0000FFFF;   // 16 care bits in the two newest lanes
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0x3;      // both lanes must be data characters
  cfg.corrupt_data = 0x00001918;
  cfg.corrupt_mask = 0x0000FFFF;

  const auto out = run_stream(
      inj, bytes_to_symbols({0xAA, 0x18, 0x18, 0xBB, 0xCC}));
  EXPECT_EQ(out, bytes_to_symbols({0xAA, 0x19, 0x18, 0xBB, 0xCC}));
  EXPECT_EQ(inj.stats().injections, 1u);
}

TEST(FifoInjectorTest, MatchAtAnyByteOffset) {
  // The window slides per character, so the pattern is caught regardless of
  // its alignment within 32-bit segments.
  for (int offset = 0; offset < 4; ++offset) {
    FifoInjector inj;
    auto& cfg = inj.config();
    cfg.match_mode = MatchMode::kOn;
    cfg.corrupt_mode = CorruptMode::kToggle;
    cfg.compare_data = 0x00001818;
    cfg.compare_mask = 0x0000FFFF;
    cfg.corrupt_data = 0x00000100;  // flip bit 8: 0x1818 -> 0x1918

    std::vector<Symbol> in;
    for (int i = 0; i < offset; ++i) in.push_back(data_symbol(0x55));
    in.push_back(data_symbol(0x18));
    in.push_back(data_symbol(0x18));
    for (int i = 0; i < 4; ++i) in.push_back(data_symbol(0x66));

    const auto out = run_stream(inj, in);
    ASSERT_EQ(out.size(), in.size());
    EXPECT_EQ(out[static_cast<std::size_t>(offset)].data, 0x19) << offset;
    EXPECT_EQ(out[static_cast<std::size_t>(offset) + 1].data, 0x18);
  }
}

TEST(FifoInjectorTest, OnceModeFiresExactlyOnce) {
  FifoInjector inj;
  auto& cfg = inj.config();
  cfg.match_mode = MatchMode::kOnce;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_data = 0x000000A5;
  cfg.compare_mask = 0x000000FF;
  cfg.corrupt_data = 0x000000FF;

  const auto out = run_stream(
      inj, bytes_to_symbols({0xA5, 0x00, 0xA5, 0x00, 0xA5}));
  EXPECT_EQ(out[0].data, 0xA5 ^ 0xFF);  // first occurrence corrupted
  EXPECT_EQ(out[2].data, 0xA5);         // subsequent matches ignored
  EXPECT_EQ(out[4].data, 0xA5);
  EXPECT_EQ(inj.stats().injections, 1u);
  EXPECT_EQ(inj.stats().matches, 3u);  // matches still counted

  // Re-arming restores the one-shot.
  inj.rearm();
  const auto out2 = run_stream(inj, bytes_to_symbols({0xA5, 0x00}));
  EXPECT_EQ(out2[0].data, 0xA5 ^ 0xFF);
}

TEST(FifoInjectorTest, InjectNowCorruptsNextWindow) {
  FifoInjector inj;
  auto& cfg = inj.config();
  cfg.match_mode = MatchMode::kOff;  // trigger disabled; strobe still works
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.corrupt_data = 0x000000FF;  // newest lane only

  // Prime some characters, then strobe.
  for (int i = 0; i < 4; ++i) inj.clock(data_symbol(0x10));
  inj.inject_now();
  inj.clock(data_symbol(0x20));  // this character's window gets corrupted

  std::vector<Symbol> out;
  while (inj.pending_payload()) {
    const auto r = inj.clock(std::nullopt);
    if (r.out && !is_idle_character(*r.out)) out.push_back(*r.out);
  }
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[4].data, 0x20 ^ 0xFF);
  EXPECT_EQ(inj.stats().forced, 1u);
  EXPECT_EQ(inj.stats().injections, 1u);
}

TEST(FifoInjectorTest, ControlSidebandMatchesControlSymbols) {
  // Match a GAP control symbol (0x0C with D/C = control) in the newest lane
  // and replace it with a GO — the Table 4 campaign's core operation.
  FifoInjector inj;
  auto& cfg = inj.config();
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  cfg.compare_data = 0x0000000C;
  cfg.compare_mask = 0x000000FF;
  cfg.compare_ctl = 0x1;       // newest lane must be a control character
  cfg.compare_ctl_mask = 0x1;
  cfg.corrupt_data = 0x00000003;  // GO
  cfg.corrupt_mask = 0x000000FF;

  const std::vector<Symbol> in = {
      data_symbol(0x0C),  // data byte 0x0C: must NOT match (D/C differs)
      control_symbol(0x0C),
      data_symbol(0x42),
  };
  const auto out = run_stream(inj, in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].data, 0x0C);  // data 0x0C untouched
  EXPECT_FALSE(out[0].control);
  EXPECT_EQ(out[1].data, 0x03);  // GAP -> GO
  EXPECT_TRUE(out[1].control);
  EXPECT_EQ(out[2].data, 0x42);
}

TEST(FifoInjectorTest, ToggleCanFlipControlBit) {
  // Corrupting the D/C bit itself turns a control symbol into data (or vice
  // versa) — a fault class only an in-path injector can produce.
  FifoInjector inj;
  auto& cfg = inj.config();
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_data = 0x0000000C;
  cfg.compare_mask = 0x000000FF;
  cfg.compare_ctl = 0x1;
  cfg.compare_ctl_mask = 0x1;
  cfg.corrupt_data = 0;
  cfg.corrupt_ctl = 0x1;  // toggle D/C of the newest lane

  const std::vector<Symbol> in = {control_symbol(0x0C), data_symbol(0x01)};
  const auto out = run_stream(inj, in);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].control);  // GAP became payload byte 0x0C
  EXPECT_EQ(out[0].data, 0x0C);
}

TEST(FifoInjectorTest, MaskZeroMatchesEverything) {
  FifoInjector inj;
  auto& cfg = inj.config();
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_mask = 0;  // don't care on all 32 bits
  cfg.corrupt_data = 0x00000001;

  const auto out = run_stream(inj, bytes_to_symbols({0x10, 0x20, 0x30, 0x40,
                                                     0x50, 0x60}));
  // Every full window fires (matches on empty-FIFO idle ticks cannot
  // inject, so matches can exceed injections during the drain).
  EXPECT_GE(inj.stats().matches, inj.stats().injections);
  EXPECT_GT(inj.stats().injections, 0u);
  ASSERT_EQ(out.size(), 6u);
}

TEST(FifoInjectorTest, WindowTracksNewestFourCharacters) {
  FifoInjector inj;
  inj.clock(data_symbol(0x11));
  inj.clock(data_symbol(0x22));
  inj.clock(data_symbol(0x33));
  inj.clock(data_symbol(0x44));
  EXPECT_EQ(inj.window_data(), 0x11223344u);
  inj.clock(data_symbol(0x55));
  EXPECT_EQ(inj.window_data(), 0x22334455u);
  inj.clock(control_symbol(0x0C));
  EXPECT_EQ(inj.window_ctl() & 0x1, 0x1u);
}

TEST(FifoInjectorTest, PowerUpWindowHoldsIdleCharacters) {
  // The compare registers power up holding IDLE control characters, so a
  // pattern that requires four *data* characters cannot fire until four
  // have actually been shifted in.
  FifoInjector inj;
  auto& cfg = inj.config();
  cfg.match_mode = MatchMode::kOn;
  cfg.compare_data = 0;
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x0;       // all four lanes must be data
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = 0xFF;
  inj.clock(data_symbol(0));
  inj.clock(data_symbol(0));
  inj.clock(data_symbol(0));
  EXPECT_EQ(inj.stats().matches, 0u);
  inj.clock(data_symbol(0));
  EXPECT_EQ(inj.stats().matches, 1u);
}

TEST(FifoInjectorTest, IdleDrainEmitsEverythingInOrder) {
  FifoInjector inj;
  std::vector<Symbol> out;
  for (int i = 0; i < 10; ++i) {
    const auto r = inj.clock(data_symbol(static_cast<std::uint8_t>(i)));
    if (r.out) out.push_back(*r.out);
  }
  while (inj.pending_payload()) {
    const auto r = inj.clock(std::nullopt);
    if (r.out && !is_idle_character(*r.out)) out.push_back(*r.out);
  }
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].data, static_cast<std::uint8_t>(i));
  }
}

TEST(FifoInjectorTest, RepeatabilityExactSameFaultTwice) {
  // "This also allows us to inject the same fault repeatedly with exact
  // precision" (paper §3.1).
  const auto run_once = [] {
    FifoInjector inj;
    auto& cfg = inj.config();
    cfg.match_mode = MatchMode::kOn;
    cfg.corrupt_mode = CorruptMode::kReplace;
    cfg.compare_data = 0x00001818;
    cfg.compare_mask = 0x0000FFFF;
    cfg.corrupt_data = 0x00001918;
    cfg.corrupt_mask = 0x0000FFFF;
    return run_stream(inj, bytes_to_symbols({0x01, 0x18, 0x18, 0x02, 0x03}));
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hsfi::core
