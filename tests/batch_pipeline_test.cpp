// The batched symbol path's equivalence and regression pins.
//
// clock_burst() must be step-for-step equivalent to per-character clock()
// for every configuration — the fast tier (nothing armed, all-don't-care
// compare) and the general tier alike. The property test here drives both
// through randomized schedules of bursts, idle gaps, mid-stream triggers,
// forced inject-now strobes, and drain tails, and demands symbol-identical
// output with identical Stats and compare-register state.
//
// Also pinned: the fixed-capacity ring honors Params::fifo_capacity at its
// tightest legal setting, the Burst SoA view matches its AoS source, and
// the FcSerdes reusable-buffer overloads reproduce the allocating ones
// while actually reusing storage.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <span>
#include <vector>

#include "core/fifo_injector.hpp"
#include "fc/frame.hpp"
#include "link/channel.hpp"
#include "myrinet/control.hpp"
#include "phy/serdes.hpp"

namespace hsfi::core {
namespace {

using link::Symbol;

// ---------------------------------------------------------------------------
// clock_burst vs clock() property test.

struct Trace {
  std::vector<Symbol> out;     ///< every character that left the device
  std::vector<std::uint64_t> fires;  ///< stream offsets whose even clock fired
  FifoInjector::Stats stats;
  std::uint32_t window_data = 0;
  std::uint8_t window_ctl = 0;
  std::size_t occupancy = 0;
};

/// One schedule step: a burst of characters, or `gap` idle clock pairs, or
/// an inject-now strobe before the next step.
struct Step {
  std::vector<Symbol> burst;
  std::size_t gap = 0;
  bool strobe = false;
};

std::vector<Step> random_schedule(std::mt19937& rng) {
  std::uniform_int_distribution<int> kind(0, 9);
  std::uniform_int_distribution<int> burst_len(1, 96);
  std::uniform_int_distribution<int> gap_len(1, 30);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> ctl(0, 7);
  std::vector<Step> steps;
  const std::size_t n_steps = 12 + rng() % 12;
  for (std::size_t i = 0; i < n_steps; ++i) {
    Step step;
    const int k = kind(rng);
    if (k < 6) {
      const int len = burst_len(rng);
      step.burst.reserve(static_cast<std::size_t>(len));
      for (int j = 0; j < len; ++j) {
        // Bias toward data; control characters exercise the ctl window.
        const bool control = ctl(rng) == 0;
        step.burst.push_back(
            Symbol{static_cast<std::uint8_t>(byte(rng)), control});
      }
    } else if (k < 9) {
      step.gap = static_cast<std::size_t>(gap_len(rng));
    } else {
      step.strobe = true;
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

/// Reference semantics: one clock() call per character / idle pair.
Trace run_per_char(FifoInjector& inj, const std::vector<Step>& steps) {
  Trace t;
  std::uint64_t offset = 0;
  const auto record = [&t](const FifoInjector::Result& r, std::uint64_t at,
                           bool counts) {
    if (r.out) t.out.push_back(*r.out);
    if (r.injected && counts) t.fires.push_back(at);
  };
  for (const auto& step : steps) {
    if (step.strobe) {
      inj.inject_now();
      continue;
    }
    for (std::size_t g = 0; g < step.gap; ++g) {
      record(inj.clock(std::nullopt), 0, false);
    }
    for (const auto s : step.burst) {
      record(inj.clock(s), offset, true);
      ++offset;
    }
  }
  // Drain tail: idle clocks until no payload remains.
  while (inj.pending_payload()) record(inj.clock(std::nullopt), 0, false);
  t.stats = inj.stats();
  t.window_data = inj.window_data();
  t.window_ctl = inj.window_ctl();
  t.occupancy = inj.occupancy();
  return t;
}

/// Batched semantics: clock_burst() per burst, clock(nullopt) per idle.
Trace run_batched(FifoInjector& inj, const std::vector<Step>& steps) {
  Trace t;
  FifoInjector::BatchResult batch;
  std::uint64_t offset = 0;
  for (const auto& step : steps) {
    if (step.strobe) {
      inj.inject_now();
      continue;
    }
    for (std::size_t g = 0; g < step.gap; ++g) {
      const auto r = inj.clock(std::nullopt);
      if (r.out) t.out.push_back(*r.out);
    }
    inj.clock_burst(step.burst, batch);
    t.out.insert(t.out.end(), batch.out.begin(), batch.out.end());
    for (const auto f : batch.fires) t.fires.push_back(offset + f);
    offset += step.burst.size();
  }
  while (inj.pending_payload()) {
    const auto r = inj.clock(std::nullopt);
    if (r.out) t.out.push_back(*r.out);
  }
  t.stats = inj.stats();
  t.window_data = inj.window_data();
  t.window_ctl = inj.window_ctl();
  t.occupancy = inj.occupancy();
  return t;
}

void expect_equivalent(const Trace& a, const Trace& b, std::uint64_t seed) {
  EXPECT_EQ(a.out, b.out) << "seed " << seed;
  EXPECT_EQ(a.fires, b.fires) << "seed " << seed;
  EXPECT_EQ(a.stats.characters, b.stats.characters) << "seed " << seed;
  EXPECT_EQ(a.stats.matches, b.stats.matches) << "seed " << seed;
  EXPECT_EQ(a.stats.injections, b.stats.injections) << "seed " << seed;
  EXPECT_EQ(a.stats.forced, b.stats.forced) << "seed " << seed;
  EXPECT_EQ(a.window_data, b.window_data) << "seed " << seed;
  EXPECT_EQ(a.window_ctl, b.window_ctl) << "seed " << seed;
  EXPECT_EQ(a.occupancy, b.occupancy) << "seed " << seed;
}

InjectorConfig random_config(std::mt19937& rng) {
  InjectorConfig cfg;
  switch (rng() % 4) {
    case 0: cfg.match_mode = MatchMode::kOff; break;
    case 1: cfg.match_mode = MatchMode::kOn; break;
    default: cfg.match_mode = MatchMode::kOnce; break;
  }
  cfg.corrupt_mode = rng() % 2 == 0 ? CorruptMode::kToggle
                                    : CorruptMode::kReplace;
  // Sparse compare masks so matches happen but not on every character.
  cfg.compare_data = static_cast<std::uint32_t>(rng());
  cfg.compare_mask = rng() % 3 == 0 ? 0u : (0xFFu << (8 * (rng() % 4)));
  cfg.compare_ctl = static_cast<std::uint8_t>(rng() & 0x0F);
  cfg.compare_ctl_mask = static_cast<std::uint8_t>(rng() & 0x0F);
  cfg.corrupt_data = static_cast<std::uint32_t>(rng());
  cfg.corrupt_mask = static_cast<std::uint32_t>(rng());
  cfg.corrupt_ctl = static_cast<std::uint8_t>(rng() & 0x0F);
  cfg.corrupt_ctl_mask = static_cast<std::uint8_t>(rng() & 0x0F);
  cfg.compare_stride = static_cast<std::uint8_t>(1 + rng() % 4);
  cfg.lfsr_mask = rng() % 3 == 0 ? static_cast<std::uint16_t>(rng() & 0x7)
                                 : 0;
  return cfg;
}

TEST(BatchPipelineProperty, ClockBurstEquivalentToPerCharacter) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
    FifoInjector::Params params;
    params.latency_chars = 4 + rng() % 24;
    params.fifo_capacity = params.latency_chars + 1 + rng() % 64;
    const InjectorConfig cfg = random_config(rng);
    const auto steps = random_schedule(rng);

    FifoInjector reference(params);
    FifoInjector batched(params);
    reference.config() = cfg;
    batched.config() = cfg;

    const Trace a = run_per_char(reference, steps);
    const Trace b = run_batched(batched, steps);
    expect_equivalent(a, b, seed);
  }
}

TEST(BatchPipelineProperty, FastTierDefaultConfigPassthrough) {
  // The default configuration (kOff, all-don't-care compare, LFSR off) is
  // exactly the fast tier; pin that it reproduces per-character passthrough
  // including the drain tail and window registers.
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    std::mt19937 rng(static_cast<std::mt19937::result_type>(seed));
    auto steps = random_schedule(rng);
    // Drop inject-now strobes: a pending strobe arms the general tier.
    for (auto& step : steps) step.strobe = false;
    FifoInjector reference;
    FifoInjector batched;
    const Trace a = run_per_char(reference, steps);
    const Trace b = run_batched(batched, steps);
    expect_equivalent(a, b, seed);
    EXPECT_EQ(a.stats.injections, 0u);
  }
}

TEST(BatchPipelineProperty, ForcedInjectNowFiresOnFirstBurstCharacter) {
  FifoInjector::Params params;
  params.latency_chars = 4;
  params.fifo_capacity = 16;
  FifoInjector inj(params);
  inj.inject_now();
  std::vector<Symbol> burst(8, link::data_symbol(0x55));
  FifoInjector::BatchResult batch;
  inj.clock_burst(burst, batch);
  ASSERT_EQ(batch.fires.size(), 1u);
  EXPECT_EQ(batch.fires[0], 0u);
  EXPECT_EQ(inj.stats().forced, 1u);
  EXPECT_EQ(inj.stats().injections, 1u);
}

// ---------------------------------------------------------------------------
// Ring-buffer capacity regression.

TEST(FifoRingTest, TightestLegalCapacityNeverOverflows) {
  // fifo_capacity = latency + 1 is the tightest the constructor allows;
  // steady-state occupancy must stay pinned at latency with pops keeping
  // pace, across bursts far larger than the ring.
  FifoInjector::Params params;
  params.latency_chars = 4;
  params.fifo_capacity = 5;
  FifoInjector inj(params);

  std::vector<Symbol> burst;
  for (int i = 0; i < 1000; ++i) {
    burst.push_back(link::data_symbol(static_cast<std::uint8_t>(i)));
  }
  FifoInjector::BatchResult batch;
  inj.clock_burst(burst, batch);
  EXPECT_EQ(inj.occupancy(), params.latency_chars);
  ASSERT_EQ(batch.out.size(), burst.size() - params.latency_chars);
  // FIFO order: output is the input delayed by latency characters.
  for (std::size_t i = 0; i < batch.out.size(); ++i) {
    EXPECT_EQ(batch.out[i], burst[i]) << "at " << i;
  }

  // Same bound through the per-character path.
  FifoInjector inj2(params);
  for (const auto s : burst) (void)inj2.clock(s);
  EXPECT_EQ(inj2.occupancy(), params.latency_chars);
}

TEST(FifoRingTest, OccupancySurvivesWrapAround) {
  // Head wraps the fixed storage many times over; occupancy and FIFO order
  // must be indifferent to where the window physically sits.
  FifoInjector::Params params;
  params.latency_chars = 6;
  params.fifo_capacity = 8;
  FifoInjector inj(params);
  std::vector<Symbol> expect_delayed;
  for (int round = 0; round < 50; ++round) {
    std::vector<Symbol> burst;
    for (int i = 0; i < 7; ++i) {
      burst.push_back(
          link::data_symbol(static_cast<std::uint8_t>(round * 7 + i)));
    }
    FifoInjector::BatchResult batch;
    inj.clock_burst(burst, batch);
    for (const auto s : batch.out) expect_delayed.push_back(s);
    EXPECT_LE(inj.occupancy(), params.latency_chars);
  }
  // Everything popped so far is the stream delayed by latency.
  for (std::size_t i = 0; i < expect_delayed.size(); ++i) {
    EXPECT_EQ(expect_delayed[i].data, static_cast<std::uint8_t>(i));
  }
}

// ---------------------------------------------------------------------------
// Burst SoA view.

TEST(BurstViewTest, BuildViewMatchesSymbols) {
  link::Burst burst;
  std::mt19937 rng(7);
  for (int i = 0; i < 300; ++i) {
    burst.symbols.push_back(Symbol{static_cast<std::uint8_t>(rng() & 0xFF),
                                   (rng() & 7) == 0});
  }
  EXPECT_FALSE(burst.has_view());
  burst.build_view();
  ASSERT_TRUE(burst.has_view());
  ASSERT_EQ(burst.data.size(), burst.symbols.size());
  ASSERT_EQ(burst.ctl.size(), (burst.symbols.size() + 63) / 64);
  for (std::size_t i = 0; i < burst.symbols.size(); ++i) {
    EXPECT_EQ(burst.data[i], burst.symbols[i].data);
    EXPECT_EQ((burst.ctl[i / 64] >> (i % 64)) & 1u,
              burst.symbols[i].control ? 1u : 0u);
  }
}

TEST(BurstViewTest, FindNextControlScansWordAtATime) {
  link::Burst burst;
  for (int i = 0; i < 200; ++i) {
    burst.symbols.push_back(Symbol{0x42, i == 0 || i == 63 || i == 64 ||
                                             i == 130 || i == 199});
  }
  burst.build_view();
  EXPECT_EQ(link::find_next_control(burst, 0), 0u);
  EXPECT_EQ(link::find_next_control(burst, 1), 63u);
  EXPECT_EQ(link::find_next_control(burst, 64), 64u);
  EXPECT_EQ(link::find_next_control(burst, 65), 130u);
  EXPECT_EQ(link::find_next_control(burst, 131), 199u);
  EXPECT_EQ(link::find_next_control(burst, 200), 200u);

  link::Burst all_data;
  all_data.symbols.assign(100, Symbol{0x11, false});
  all_data.build_view();
  EXPECT_EQ(link::find_next_control(all_data, 0), 100u);
}

// ---------------------------------------------------------------------------
// FcSerdes reusable-buffer overloads.

TEST(SerdesPoolTest, EncodeIntoReusesStorageAndMatchesAllocating) {
  fc::FcFrame frame;
  frame.payload.assign(256, 0x5A);
  std::vector<Symbol> symbols;
  fc::frame_to_symbols_into(frame, symbols);
  EXPECT_EQ(symbols, fc::frame_to_symbols(frame));

  phy::FcWireStream scratch;
  phy::FcSerdes::encode_into(symbols, scratch);
  const auto fresh = phy::FcSerdes::encode(symbols);
  EXPECT_EQ(scratch.groups, fresh.groups);
  EXPECT_EQ(scratch.initial_rd, fresh.initial_rd);

  // Second encode into the same stream: same result, no regrow needed.
  const auto* before = scratch.groups.data();
  const auto cap = scratch.groups.capacity();
  phy::FcSerdes::encode_into(symbols, scratch);
  EXPECT_EQ(scratch.groups, fresh.groups);
  EXPECT_EQ(scratch.groups.data(), before);
  EXPECT_EQ(scratch.groups.capacity(), cap);

  phy::FcDecodedStream decoded;
  phy::FcSerdes::decode_into(scratch, decoded);
  const auto fresh_dec = phy::FcSerdes::decode(scratch);
  EXPECT_EQ(decoded.symbols, fresh_dec.symbols);
  EXPECT_EQ(decoded.code_violations, fresh_dec.code_violations);
  EXPECT_EQ(decoded.disparity_errors, fresh_dec.disparity_errors);

  // Reused decode stream must reset its error counters.
  phy::FcWireStream corrupted = scratch;
  phy::flip_wire_bit(corrupted, 5, 2);
  phy::FcSerdes::decode_into(corrupted, decoded);
  const auto corrupt_dec = phy::FcSerdes::decode(corrupted);
  EXPECT_EQ(decoded.symbols, corrupt_dec.symbols);
  EXPECT_EQ(decoded.code_violations, corrupt_dec.code_violations);
  EXPECT_EQ(decoded.disparity_errors, corrupt_dec.disparity_errors);
  phy::FcSerdes::decode_into(scratch, decoded);
  EXPECT_EQ(decoded.code_violations, 0u);
  EXPECT_EQ(decoded.disparity_errors, 0u);
}

}  // namespace
}  // namespace hsfi::core
