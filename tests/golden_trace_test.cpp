// Golden-trace determinism tests for the kernel + orchestrator stack.
//
// A fixed 8-run mini-campaign (2 faults x 2 directions x 2 replicates) is
// the probe. Three properties must hold, and must keep holding across any
// kernel rewrite:
//
//  1. The JSONL the orchestrator emits for the campaign is byte-identical
//     when the campaign runs twice, and when it runs with 1 vs 4 workers.
//  2. The kernel event sequence of every run — hashed as FNV-1a over
//     (fire time, execution ordinal, schedule ordinal) tuples from
//     Simulator's event observer — is identical across repeats and worker
//     counts. The ordinals are EventId-representation-independent, so the
//     digest survives queue-implementation changes that preserve delivery
//     order, and catches any that don't.
//  3. The combined digest matches tests/golden/mini_campaign.digest,
//     committed alongside this test. A mismatch means event delivery order
//     changed; that invalidates cross-commit result comparability and must
//     be deliberate. Regenerate with HSFI_UPDATE_GOLDEN=1 after convincing
//     yourself the new order is intended.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "myrinet/control.hpp"
#include "nftape/campaign.hpp"
#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"

namespace {

using namespace hsfi;
using myrinet::ControlSymbol;

/// FNV-1a, 64-bit, fed fixed-width little-endian words so the digest does
/// not depend on host integer layout.
struct Fnv1a {
  std::uint64_t state = 1469598103934665603ULL;

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xFF;
      state *= 1099511628211ULL;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::string hex() const {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  (unsigned long long)state);
    return buffer;
  }
};

/// The fixed probe: 2 faults x 2 directions x 2 replicates = 8 runs.
orchestrator::SweepSpec mini_sweep() {
  orchestrator::SweepSpec sweep;
  sweep.name = "mini";
  sweep.base_seed = 7;
  sweep.replicates = 2;
  sweep.startup_settle = sim::milliseconds(150);
  sweep.directions = {orchestrator::FaultDirection::kFromSwitch,
                      orchestrator::FaultDirection::kBoth};
  sweep.faults.push_back(
      {"go-stop", nftape::control_symbol_corruption(ControlSymbol::kGo,
                                                    ControlSymbol::kStop), ""});
  sweep.faults.push_back({"seu-00FF", nftape::random_bit_flip_seu(0x00FF), ""});

  sweep.testbed.map_period = sim::milliseconds(100);
  sweep.testbed.nic_config.rx_processing_time = sim::microseconds(1);
  sweep.testbed.send_stack_time = sim::microseconds(1);
  sweep.base.warmup = sim::milliseconds(5);
  sweep.base.duration = sim::milliseconds(15);
  sweep.base.drain = sim::milliseconds(5);
  sweep.base.workload.udp_interval = sim::microseconds(12);
  sweep.base.workload.burst_size = 4;
  sweep.base.workload.jitter = 0.5;
  sweep.base.workload.payload_size = 256;
  return sweep;
}

struct MiniCampaign {
  std::string jsonl;                 ///< index-ordered, no timing fields
  std::vector<std::string> digests;  ///< per-run event-sequence digests
};

/// Runs the probe on `workers` threads. The executor mirrors the runner's
/// default (private testbed, startup settle, campaign under the watchdog)
/// but hashes every kernel event the run executes, observer attached
/// before start() so construction-time events are covered too.
MiniCampaign run_mini(std::size_t workers) {
  const auto runs = orchestrator::expand(mini_sweep());
  MiniCampaign out;
  out.digests.resize(runs.size());

  orchestrator::RunnerConfig rc;
  rc.workers = workers;
  rc.executor = [&out](const orchestrator::RunSpec& run,
                       const nftape::RunControl& control) {
    Fnv1a digest;
    nftape::Testbed bed(run.testbed);
    bed.sim().set_event_observer(
        [&digest](sim::SimTime when, std::uint64_t exec_seq,
                  std::uint64_t schedule_seq) {
          digest.i64(when);
          digest.u64(exec_seq);
          digest.u64(schedule_seq);
        });
    bed.start();
    bed.settle(run.startup_settle);
    nftape::CampaignRunner runner(bed);
    auto result = runner.run(run.campaign, &control);
    out.digests[run.index] = digest.hex();  // disjoint slot per run
    return result;
  };

  const auto records = orchestrator::Runner(rc).run_all(runs);
  std::ostringstream lines;
  for (const auto& r : records) {
    EXPECT_EQ(r.outcome, orchestrator::RunOutcome::kOk)
        << "run " << r.index << ": " << r.error;
    lines << orchestrator::to_jsonl(r, /*include_timing=*/false) << '\n';
  }
  out.jsonl = lines.str();
  return out;
}

/// Index-ordered combination of the per-run digests.
std::string combined_digest(const MiniCampaign& c) {
  Fnv1a all;
  for (const auto& d : c.digests) {
    for (const char ch : d) all.u64(static_cast<std::uint8_t>(ch));
  }
  return all.hex();
}

std::string golden_path() {
  return std::string(HSFI_GOLDEN_DIR) + "/mini_campaign.digest";
}

TEST(GoldenTrace, RepeatedRunIsByteIdentical) {
  const auto first = run_mini(1);
  const auto second = run_mini(1);
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.digests, second.digests);
  EXPECT_FALSE(first.jsonl.empty());
}

TEST(GoldenTrace, WorkerCountDoesNotChangeResults) {
  const auto serial = run_mini(1);
  const auto pooled = run_mini(4);
  EXPECT_EQ(serial.jsonl, pooled.jsonl)
      << "JSONL must be byte-identical for --workers 1 vs 4";
  EXPECT_EQ(serial.digests, pooled.digests)
      << "per-run event sequences must not depend on worker count";
}

TEST(GoldenTrace, MatchesCommittedDigest) {
  const auto campaign = run_mini(1);
  const std::string digest = combined_digest(campaign);

  if (const char* update = std::getenv("HSFI_UPDATE_GOLDEN");
      update != nullptr && *update) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << digest << '\n';
    GTEST_SKIP() << "updated " << golden_path() << " to " << digest;
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing " << golden_path()
                  << " (generate with HSFI_UPDATE_GOLDEN=1)";
  std::string expected;
  in >> expected;
  EXPECT_EQ(digest, expected)
      << "event delivery order changed; if intended, regenerate "
      << golden_path() << " with HSFI_UPDATE_GOLDEN=1";
}

}  // namespace
