// Cross-validation of the RTL-style FIFO injector against the behavioral
// model: identical stimulus must produce cycle-identical outputs across
// random streams, random configurations, idle gaps, inject-now strobes,
// and re-arms — the simulation analogue of validating the synthesized
// VHDL against its specification (paper §3.2, "The fault injection
// functionality was developed in hardware description language,
// synthesized, and simulated").
#include <gtest/gtest.h>

#include <optional>

#include "core/fifo_injector.hpp"
#include "core/rtl_fifo_injector.hpp"
#include "sim/rng.hpp"

namespace hsfi::core {
namespace {

InjectorConfig random_config(sim::Rng& rng) {
  InjectorConfig cfg;
  cfg.match_mode = static_cast<MatchMode>(rng.below(3));
  cfg.corrupt_mode = static_cast<CorruptMode>(rng.below(2));
  cfg.compare_data = rng.next_u32();
  // Bias the mask toward few care bits so matches actually happen.
  cfg.compare_mask = rng.next_u32() & rng.next_u32() & 0x0000FFFF;
  cfg.compare_ctl = static_cast<std::uint8_t>(rng.below(16));
  cfg.compare_ctl_mask = static_cast<std::uint8_t>(rng.below(4));
  cfg.corrupt_data = rng.next_u32();
  cfg.corrupt_mask = rng.next_u32();
  cfg.corrupt_ctl = static_cast<std::uint8_t>(rng.below(16));
  cfg.corrupt_ctl_mask = static_cast<std::uint8_t>(rng.below(16));
  cfg.crc_repatch = false;  // a wrapper stage, not part of the core
  cfg.compare_stride = rng.chance(0.5) ? 4 : 1;
  cfg.lfsr_mask = rng.chance(0.3) ? 0x0007 : 0x0000;
  return cfg;
}

class RtlCrossVal : public ::testing::TestWithParam<int> {};

TEST_P(RtlCrossVal, CycleIdenticalUnderRandomStimulus) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
  FifoInjector behavioral;
  RtlFifoInjector rtl;
  const auto cfg = random_config(rng);
  behavioral.config() = cfg;
  rtl.config() = cfg;

  for (int cycle = 0; cycle < 20'000; ++cycle) {
    // Occasionally strobe, re-arm, or idle the wire.
    if (rng.chance(0.001)) {
      behavioral.inject_now();
      rtl.inject_now();
    }
    if (rng.chance(0.0005)) {
      behavioral.rearm();
      rtl.rearm();
    }
    std::optional<link::Symbol> in;
    if (!rng.chance(0.1)) {
      in = link::Symbol{static_cast<std::uint8_t>(rng.next_u32()),
                        rng.chance(0.25)};
    }
    const auto a = behavioral.clock(in);
    const auto b = rtl.clock(in);
    ASSERT_EQ(a.out.has_value(), b.out.has_value()) << "cycle " << cycle;
    if (a.out) {
      ASSERT_EQ(*a.out, *b.out) << "cycle " << cycle;
    }
    ASSERT_EQ(a.matched, b.matched) << "cycle " << cycle;
    ASSERT_EQ(a.injected, b.injected) << "cycle " << cycle;
    ASSERT_EQ(behavioral.occupancy(), rtl.occupancy()) << "cycle " << cycle;
  }
  EXPECT_EQ(behavioral.pending_payload(), rtl.pending_payload());
}

TEST_P(RtlCrossVal, CycleIdenticalUnderReconfiguration) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  FifoInjector behavioral;
  RtlFifoInjector rtl;
  for (int block = 0; block < 10; ++block) {
    const auto cfg = random_config(rng);
    behavioral.config() = cfg;
    behavioral.rearm();
    rtl.config() = cfg;
    rtl.rearm();
    for (int cycle = 0; cycle < 2'000; ++cycle) {
      std::optional<link::Symbol> in;
      if (!rng.chance(0.05)) {
        in = link::Symbol{static_cast<std::uint8_t>(rng.next_u32()),
                          rng.chance(0.3)};
      }
      const auto a = behavioral.clock(in);
      const auto b = rtl.clock(in);
      ASSERT_EQ(a.out, b.out) << "block " << block << " cycle " << cycle;
      ASSERT_EQ(a.injected, b.injected);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtlCrossVal, ::testing::Range(1, 13));

TEST(RtlFifoInjectorTest, PaperScenarioMatchesBehavioral) {
  // The §3.3 scenario through the RTL model directly.
  RtlFifoInjector rtl;
  auto& cfg = rtl.config();
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  cfg.compare_data = 0x00001818;
  cfg.compare_mask = 0x0000FFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0x3;
  cfg.corrupt_data = 0x00001918;
  cfg.corrupt_mask = 0x0000FFFF;

  const std::uint8_t in[] = {0xAA, 0x18, 0x18, 0xBB, 0xCC};
  std::vector<std::uint8_t> out;
  for (const auto b : in) {
    const auto r = rtl.clock(link::data_symbol(b));
    if (r.out && !is_idle_character(*r.out)) out.push_back(r.out->data);
  }
  while (rtl.pending_payload()) {
    const auto r = rtl.clock(std::nullopt);
    if (r.out && !is_idle_character(*r.out)) out.push_back(r.out->data);
  }
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0xAA, 0x19, 0x18, 0xBB, 0xCC}));
}

}  // namespace
}  // namespace hsfi::core
