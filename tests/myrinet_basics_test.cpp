// Unit tests for the Myrinet protocol building blocks: CRC-8 (including the
// syndrome-preserving rewrite), control-symbol decode, packet
// serialize/parse, and the framing FSM.
#include <gtest/gtest.h>

#include <vector>

#include "myrinet/control.hpp"
#include "myrinet/crc8.hpp"
#include "myrinet/framing.hpp"
#include "myrinet/packet.hpp"
#include "sim/rng.hpp"

namespace hsfi::myrinet {
namespace {

TEST(Crc8Test, EmptyIsZero) {
  EXPECT_EQ(crc8({}), 0x00);
}

TEST(Crc8Test, KnownVector) {
  // CRC-8/ATM ("123456789") == 0xF4 for poly 0x07, init 0, no reflection.
  const std::vector<std::uint8_t> msg = {'1', '2', '3', '4', '5',
                                         '6', '7', '8', '9'};
  EXPECT_EQ(crc8(msg), 0xF4);
}

TEST(Crc8Test, IncrementalMatchesOneShot) {
  std::vector<std::uint8_t> msg;
  sim::Rng rng(3);
  for (int i = 0; i < 100; ++i) msg.push_back(static_cast<std::uint8_t>(rng.next_u32()));
  Crc8 inc;
  for (const auto b : msg) inc.update(b);
  EXPECT_EQ(inc.value(), crc8(msg));
}

TEST(Crc8Test, DetectsSingleBitErrors) {
  const std::vector<std::uint8_t> msg = {0x12, 0x34, 0x56, 0x78};
  const std::uint8_t good = crc8(msg);
  for (std::size_t i = 0; i < msg.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto bad = msg;
      bad[i] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(crc8(bad), good) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc8Test, PatchProducesCorrectCrcForIntactPacket) {
  // A switch strips the first byte and rewrites the CRC: for an intact
  // packet the result must be the correct CRC of the shortened packet.
  const std::vector<std::uint8_t> full = {0x81, 0x00, 0x00, 0x04, 0xAB};
  const std::uint8_t crc_full = crc8(full);
  const std::vector<std::uint8_t> stripped(full.begin() + 1, full.end());
  const std::uint8_t patched = patch_crc(crc_full, crc8(full), crc8(stripped));
  EXPECT_EQ(patched, crc8(stripped));
}

TEST(Crc8Test, PatchPreservesErrorSyndrome) {
  // Corrupt a payload byte upstream of the switch; after the switch rewrites
  // the CRC the end host must STILL detect the corruption.
  std::vector<std::uint8_t> full = {0x81, 0x00, 0x00, 0x04, 0xAB, 0xCD};
  const std::uint8_t crc_at_source = crc8(full);
  full[4] ^= 0x10;  // in-flight corruption, CRC byte unchanged
  const std::vector<std::uint8_t> stripped(full.begin() + 1, full.end());
  const std::uint8_t patched =
      patch_crc(crc_at_source, crc8(full), crc8(stripped));
  // Host computes CRC over the (still corrupted) stripped bytes.
  EXPECT_NE(patched, crc8(stripped)) << "corruption was masked by the rewrite";
}

TEST(ControlTest, ExactCodewords) {
  EXPECT_EQ(decode_control(0x0F), ControlSymbol::kStop);
  EXPECT_EQ(decode_control(0x0C), ControlSymbol::kGap);
  EXPECT_EQ(decode_control(0x03), ControlSymbol::kGo);
  EXPECT_EQ(decode_control(0x00), ControlSymbol::kIdle);
}

TEST(ControlTest, PaperExamplesOfDroppedBits) {
  // "0x08 will still be recognized as STOP, while 0x02 will be interpreted
  // as GO" (paper 4.3.1).
  EXPECT_EQ(decode_control(0x08), ControlSymbol::kStop);
  EXPECT_EQ(decode_control(0x02), ControlSymbol::kGo);
}

TEST(ControlTest, SingleDropsOfStop) {
  for (const int c : {0x0E, 0x0D, 0x0B, 0x07}) {
    EXPECT_EQ(decode_control(static_cast<std::uint8_t>(c)), ControlSymbol::kStop) << c;
  }
}

TEST(ControlTest, SingleDropOfGapAndGo) {
  EXPECT_EQ(decode_control(0x04), ControlSymbol::kGap);
  EXPECT_EQ(decode_control(0x01), ControlSymbol::kGo);
}

TEST(ControlTest, GarbageIsUndecodable) {
  for (const int c : {0x05, 0x06, 0x09, 0x0A, 0x10, 0x80, 0xFF}) {
    EXPECT_EQ(decode_control(static_cast<std::uint8_t>(c)), std::nullopt) << c;
  }
}

TEST(ControlTest, HammingDistanceAtLeastTwo) {
  // The paper: "control symbols are implemented so that there is a Hamming
  // distance of at least two between any two control symbols."
  const std::uint8_t codes[] = {0x00, 0x03, 0x0C, 0x0F};
  for (const auto a : codes) {
    for (const auto b : codes) {
      if (a == b) continue;
      EXPECT_GE(__builtin_popcount(a ^ b), 2);
    }
  }
}

TEST(PacketTest, SerializeLayout) {
  Packet p;
  p.route = {route_to_host(3)};
  p.marker = 0x00;
  p.type = kTypeData;
  p.payload = {0xDE, 0xAD};
  const auto bytes = serialize(p);
  ASSERT_EQ(bytes.size(), 1 + 1 + 2 + 2 + 1u);
  EXPECT_EQ(bytes[0], 0x03);  // route byte: host at port 3, MSB clear
  EXPECT_EQ(bytes[1], 0x00);  // marker
  EXPECT_EQ(bytes[2], 0x00);  // type hi
  EXPECT_EQ(bytes[3], 0x04);  // type lo
  EXPECT_EQ(bytes[4], 0xDE);
  EXPECT_EQ(bytes[5], 0xAD);
  EXPECT_EQ(bytes.back(), crc8({bytes.data(), bytes.size() - 1}));
}

TEST(PacketTest, RouteByteHelpers) {
  EXPECT_EQ(route_to_switch(5), 0x85);
  EXPECT_EQ(route_to_host(5), 0x05);
  EXPECT_EQ(route_to_switch(0x3F), 0xBF);
  EXPECT_EQ(route_to_host(0xFF), 0x3F);  // masked to the port field
}

TEST(PacketTest, ParseRoundTrip) {
  Packet p;
  p.marker = 0x00;
  p.type = kTypeMapping;
  p.payload = {1, 2, 3, 4, 5};
  const auto bytes = serialize(p);  // no route: as delivered to a host
  const Delivered d = parse_delivered(bytes);
  EXPECT_EQ(d.status, DeliveryStatus::kOk);
  EXPECT_EQ(d.type, kTypeMapping);
  EXPECT_EQ(d.payload, p.payload);
}

TEST(PacketTest, ParseDetectsCrcError) {
  Packet p;
  p.payload = {9, 9, 9};
  auto bytes = serialize(p);
  bytes[4] ^= 0x01;
  EXPECT_EQ(parse_delivered(bytes).status, DeliveryStatus::kCrcError);
}

TEST(PacketTest, ParseDetectsMarkerMsb) {
  // "If the packet reaches a destination interface with the MSB set to one,
  // the Myrinet standard specifies that the packet be consumed and handled
  // as an error."
  Packet p;
  p.marker = 0x80;
  p.payload = {1};
  const auto bytes = serialize(p);
  EXPECT_EQ(parse_delivered(bytes).status, DeliveryStatus::kMarkerError);
}

TEST(PacketTest, CrcCheckedBeforeMarker) {
  // A corrupted frame must count as a CRC error even if the corruption also
  // set the marker MSB.
  Packet p;
  p.payload = {1};
  auto bytes = serialize(p);
  bytes[0] = 0x80;  // corrupt marker without fixing CRC
  EXPECT_EQ(parse_delivered(bytes).status, DeliveryStatus::kCrcError);
}

TEST(PacketTest, ParseTooShort) {
  const std::vector<std::uint8_t> tiny = {0x00, 0x00};
  EXPECT_EQ(parse_delivered(tiny).status, DeliveryStatus::kTooShort);
}

TEST(FramingTest, GapTerminatesFrame) {
  Deframer d;
  std::vector<std::vector<std::uint8_t>> frames;
  d.on_frame([&](std::vector<std::uint8_t> f, sim::SimTime) {
    frames.push_back(std::move(f));
  });
  d.feed(link::data_symbol(0xAA), 1);
  d.feed(link::data_symbol(0xBB), 2);
  d.feed(to_symbol(ControlSymbol::kGap), 3);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], (std::vector<std::uint8_t>{0xAA, 0xBB}));
}

TEST(FramingTest, MultipleGapsBetweenPacketsAreLegal) {
  // "There can be any positive number of GAP packets between data packets."
  Deframer d;
  int frames = 0;
  d.on_frame([&](std::vector<std::uint8_t>, sim::SimTime) { ++frames; });
  d.feed(link::data_symbol(0x01), 1);
  d.feed(to_symbol(ControlSymbol::kGap), 2);
  d.feed(to_symbol(ControlSymbol::kGap), 3);
  d.feed(to_symbol(ControlSymbol::kGap), 4);
  d.feed(link::data_symbol(0x02), 5);
  d.feed(to_symbol(ControlSymbol::kGap), 6);
  EXPECT_EQ(frames, 2);
}

TEST(FramingTest, FlowSymbolsBypassFraming) {
  Deframer d;
  std::vector<ControlSymbol> flow;
  std::vector<std::vector<std::uint8_t>> frames;
  d.on_frame([&](std::vector<std::uint8_t> f, sim::SimTime) {
    frames.push_back(std::move(f));
  });
  d.on_flow([&](ControlSymbol c, sim::SimTime) { flow.push_back(c); });
  d.feed(link::data_symbol(0x11), 1);
  d.feed(to_symbol(ControlSymbol::kStop), 2);  // interleaved flow control
  d.feed(link::data_symbol(0x22), 3);
  d.feed(to_symbol(ControlSymbol::kGo), 4);
  d.feed(to_symbol(ControlSymbol::kGap), 5);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], (std::vector<std::uint8_t>{0x11, 0x22}));
  EXPECT_EQ(flow, (std::vector<ControlSymbol>{ControlSymbol::kStop,
                                              ControlSymbol::kGo}));
}

TEST(FramingTest, IdleAndNoiseAreTransparent) {
  Deframer d;
  std::vector<std::vector<std::uint8_t>> frames;
  d.on_frame([&](std::vector<std::uint8_t> f, sim::SimTime) {
    frames.push_back(std::move(f));
  });
  d.feed(link::data_symbol(0x42), 1);
  d.feed(to_symbol(ControlSymbol::kIdle), 2);
  d.feed(link::control_symbol(0x55), 3);  // undecodable junk
  d.feed(link::data_symbol(0x43), 4);
  d.feed(to_symbol(ControlSymbol::kGap), 5);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], (std::vector<std::uint8_t>{0x42, 0x43}));
  EXPECT_EQ(d.ignored_control_codes(), 1u);
}

TEST(FramingTest, FrameSymbolsAppendsGap) {
  const std::vector<std::uint8_t> bytes = {1, 2, 3};
  const auto symbols = frame_symbols(bytes);
  ASSERT_EQ(symbols.size(), 4u);
  EXPECT_FALSE(symbols[0].control);
  EXPECT_TRUE(symbols[3].control);
  EXPECT_EQ(symbols[3].data, encoding(ControlSymbol::kGap));
}

TEST(FramingTest, LostGapMergesFrames) {
  // The failure mode behind the paper's GAP-corruption campaign: without the
  // terminating GAP two packets merge into one (and will fail CRC).
  Deframer d;
  std::vector<std::vector<std::uint8_t>> frames;
  d.on_frame([&](std::vector<std::uint8_t> f, sim::SimTime) {
    frames.push_back(std::move(f));
  });
  d.feed(link::data_symbol(0x01), 1);
  d.feed(to_symbol(ControlSymbol::kIdle), 2);  // GAP corrupted into IDLE
  d.feed(link::data_symbol(0x02), 3);
  d.feed(to_symbol(ControlSymbol::kGap), 4);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], (std::vector<std::uint8_t>{0x01, 0x02}));
}

}  // namespace
}  // namespace hsfi::myrinet
