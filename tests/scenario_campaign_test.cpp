// Scenario layer through the full campaign stack.
//
// Drives examples/specs/mini_scenario.json — one registry scenario
// (flow-liar on Myrinet) and one inline custom program (an R_RDY storm on
// FC), each stacked on a symbol-level fault — and pins the same contract
// the plain campaign goldens pin:
//
//  1. JSONL and per-run kernel event digests are byte-identical for
//     --workers 1 vs 8, and match tests/golden/scenario_mini_campaign.digest
//     (regenerate with HSFI_UPDATE_GOLDEN=1 when an event-order change is
//     deliberate).
//  2. Scenario firings are injections: the 8-class manifestation breakdown
//     sums to the injection count exactly even with a scenario armed on
//     top of a wire fault.
//  3. Records carry scenario provenance ("scenario" + "steps") only when a
//     scenario ran — a no-scenario record's bytes are unchanged.
//  4. Snapshot/fork execution produces the same bytes as cold starts with
//     scenarios armed (the property --emit-repro's forked probes rest on).
//
// On top of that, the end-to-end minimization acceptance: a lying
// flow-control scenario manifests through the full stack, the Minimizer
// shrinks it to <= half its steps on forked snapshots in fewer runs than
// naive one-at-a-time removal, the minimal program preserves the class
// cold, and the emitted trace round-trips through the repro JSON.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "nftape/campaign.hpp"
#include "nftape/fabric.hpp"
#include "nftape/medium.hpp"
#include "orchestrator/campaign_file.hpp"
#include "orchestrator/repro.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"
#include "scenario/minimizer.hpp"
#include "scenario/scenario.hpp"

namespace {

using namespace hsfi;

/// FNV-1a, 64-bit, fed fixed-width little-endian words (same shape as the
/// other golden-trace digests so the artifacts are comparable).
struct Fnv1a {
  std::uint64_t state = 1469598103934665603ULL;

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state ^= (v >> (8 * i)) & 0xFF;
      state *= 1099511628211ULL;
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  [[nodiscard]] std::string hex() const {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  (unsigned long long)state);
    return buffer;
  }
};

std::string spec_path() {
  return std::string(HSFI_SPEC_DIR) + "/mini_scenario.json";
}

std::string golden_path() {
  return std::string(HSFI_GOLDEN_DIR) + "/scenario_mini_campaign.digest";
}

struct MiniCampaign {
  std::string jsonl;                 ///< index-ordered, no timing fields
  std::vector<std::string> digests;  ///< per-run event-sequence digests
};

/// Runs the golden spec on `workers` threads with the event-hash observer
/// attached, asserting the scenario/injection accounting per run.
MiniCampaign run_mini(std::size_t workers) {
  const auto runs =
      orchestrator::expand_campaign(orchestrator::load_campaign_file(spec_path()));
  MiniCampaign out;
  out.digests.resize(runs.size());

  orchestrator::RunnerConfig rc;
  rc.workers = workers;
  rc.executor = [&out](const orchestrator::RunSpec& run,
                       const nftape::RunControl& control) {
    Fnv1a digest;
    const auto fabric = nftape::make_fabric(run.campaign.medium, run.testbed);
    fabric->sim().set_event_observer(
        [&digest](sim::SimTime when, std::uint64_t exec_seq,
                  std::uint64_t schedule_seq) {
          digest.i64(when);
          digest.u64(exec_seq);
          digest.u64(schedule_seq);
        });
    fabric->start();
    fabric->settle(run.startup_settle);
    nftape::CampaignRunner runner(*fabric);
    auto result = runner.run(run.campaign, &control);
    EXPECT_EQ(result.manifestations.total(), result.injections)
        << "run " << run.index
        << ": breakdown must reconcile with scenario firings included";
    EXPECT_GT(result.scenario_steps_fired, 0u)
        << "run " << run.index << ": the armed scenario must fire in-window";
    out.digests[run.index] = digest.hex();  // disjoint slot per run
    return result;
  };

  const auto records = orchestrator::Runner(rc).run_all(runs);
  std::ostringstream lines;
  for (const auto& r : records) {
    EXPECT_EQ(r.outcome, orchestrator::RunOutcome::kOk)
        << "run " << r.index << ": " << r.error;
    lines << orchestrator::to_jsonl(r, /*include_timing=*/false) << '\n';
  }
  out.jsonl = lines.str();
  return out;
}

std::string combined_digest(const MiniCampaign& c) {
  Fnv1a all;
  for (const auto& d : c.digests) {
    for (const char ch : d) all.u64(static_cast<std::uint8_t>(ch));
  }
  return all.hex();
}

TEST(ScenarioCampaign, WorkerCountDoesNotChangeResults) {
  const auto serial = run_mini(1);
  const auto pooled = run_mini(8);
  EXPECT_EQ(serial.jsonl, pooled.jsonl)
      << "JSONL must be byte-identical for --workers 1 vs 8";
  EXPECT_EQ(serial.digests, pooled.digests)
      << "scenario steps must fire at the same kernel-event positions "
         "regardless of worker count";
  EXPECT_FALSE(serial.jsonl.empty());
}

TEST(ScenarioCampaign, MatchesCommittedDigest) {
  const auto campaign = run_mini(1);
  const std::string digest = combined_digest(campaign);

  if (const char* update = std::getenv("HSFI_UPDATE_GOLDEN");
      update != nullptr && *update) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out) << "cannot write " << golden_path();
    out << digest << '\n';
    GTEST_SKIP() << "updated " << golden_path() << " to " << digest;
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in) << "missing " << golden_path()
                  << " (generate with HSFI_UPDATE_GOLDEN=1)";
  std::string expected;
  in >> expected;
  EXPECT_EQ(digest, expected)
      << "scenario-armed event delivery order changed; if intended, "
      << "regenerate " << golden_path() << " with HSFI_UPDATE_GOLDEN=1";
}

TEST(ScenarioCampaign, JsonlCarriesScenarioProvenance) {
  const auto campaign = run_mini(1);
  std::istringstream lines(campaign.jsonl);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    if (line.find("\"name\":\"myri:") != std::string::npos) {
      EXPECT_NE(line.find("\"scenario\":\"flow-liar\""), std::string::npos)
          << line;
      // All 8 flow-liar steps fall inside the 6 ms window.
      EXPECT_NE(line.find("\"steps\":8"), std::string::npos) << line;
    } else {
      EXPECT_NE(line.find("\"scenario\":\"custom-storm\""), std::string::npos)
          << line;
      EXPECT_NE(line.find("\"steps\":"), std::string::npos) << line;
    }
  }
  EXPECT_EQ(n, 4u);  // 2 targets x 1 fault x 1 direction x 2 replicates
}

/// The conditional-emission rule that keeps every pre-existing golden
/// byte-identical: no scenario, no "scenario"/"steps" keys at all.
TEST(ScenarioCampaign, NoScenarioRecordOmitsProvenanceKeys) {
  orchestrator::RunRecord rec;
  rec.outcome = orchestrator::RunOutcome::kOk;
  const auto line = orchestrator::to_jsonl(rec, /*include_timing=*/false);
  EXPECT_EQ(line.find("\"scenario\""), std::string::npos) << line;
  EXPECT_EQ(line.find("\"steps\""), std::string::npos) << line;
}

TEST(ScenarioCampaign, SnapshotForkMatchesColdStarts) {
  const auto runs =
      orchestrator::expand_campaign(orchestrator::load_campaign_file(spec_path()));
  const auto jsonl_with = [&runs](bool snapshots) {
    orchestrator::RunnerConfig rc;
    rc.workers = 1;
    rc.snapshots = snapshots;
    const auto records = orchestrator::Runner(rc).run_all(runs);
    std::ostringstream lines;
    for (const auto& r : records) {
      EXPECT_EQ(r.outcome, orchestrator::RunOutcome::kOk) << r.error;
      lines << orchestrator::to_jsonl(r, /*include_timing=*/false) << '\n';
    }
    return lines.str();
  };
  const auto cold = jsonl_with(false);
  const auto forked = jsonl_with(true);
  EXPECT_EQ(cold, forked)
      << "scenario arming must survive restore_snapshot unchanged";
  EXPECT_FALSE(cold.empty());
}

// ---------------------------------------------------------------------------
// End-to-end minimization (the --emit-repro path, in-process)

/// Baseline-fault sweep with flow-liar armed: the scenario alone must
/// produce the manifestation the minimizer then preserves.
orchestrator::SweepSpec flow_liar_sweep() {
  orchestrator::SweepSpec sweep;
  sweep.name = "repro";
  sweep.base_seed = 5;
  sweep.replicates = 1;
  sweep.directions = {orchestrator::FaultDirection::kBoth};
  sweep.faults.push_back({"baseline", std::nullopt, ""});
  sweep.testbed.map_period = sim::milliseconds(40);
  sweep.testbed.nic_config.rx_processing_time = sim::microseconds(1);
  sweep.testbed.send_stack_time = sim::microseconds(1);
  sweep.base.warmup = sim::milliseconds(2);
  sweep.base.duration = sim::milliseconds(10);
  sweep.base.drain = sim::milliseconds(2);
  sweep.base.workload.udp_interval = sim::microseconds(12);
  sweep.base.workload.burst_size = 4;
  sweep.base.workload.jitter = 0.5;
  sweep.base.workload.payload_size = 256;
  return sweep;
}

TEST(ScenarioMinimization, FlowLiarShrinksOnForkedSnapshots) {
  auto sweep = flow_liar_sweep();
  const auto scen = scenario::find_scenario("flow-liar");
  ASSERT_TRUE(scen.has_value());
  ASSERT_GE(scen->steps.size(), 6u);
  sweep.base.scenario = *scen;

  const auto runs = orchestrator::expand(sweep);
  ASSERT_EQ(runs.size(), 1u);
  const auto& run = runs.front();

  orchestrator::RunnerConfig rc;
  rc.workers = 1;
  const auto reference = orchestrator::Runner(rc).run_all(runs).front();
  ASSERT_EQ(reference.outcome, orchestrator::RunOutcome::kOk)
      << reference.error;
  EXPECT_EQ(reference.result.scenario_steps_fired, scen->steps.size());
  EXPECT_EQ(reference.result.manifestations.total(),
            reference.result.injections);
  const std::string expect = orchestrator::dominant_class(reference.result);
  ASSERT_FALSE(expect.empty()) << "flow-liar must manifest through the "
                                  "full stack for the acceptance to mean "
                                  "anything";

  // The minimizer probes run on forks of one settled snapshot — the same
  // reuse --emit-repro does — so each candidate costs only the window.
  const auto fabric = nftape::make_fabric(run.campaign.medium, run.testbed);
  fabric->start();
  fabric->settle(run.startup_settle);
  const auto snap = fabric->capture_snapshot();
  ASSERT_NE(snap, nullptr);
  nftape::CampaignRunner probes(*fabric);
  const scenario::Minimizer::Execute execute =
      [&](const scenario::ScenarioSpec& candidate) {
        fabric->restore_snapshot(*snap);
        nftape::CampaignSpec spec = run.campaign;
        spec.scenario = candidate;
        return orchestrator::dominant_class(probes.run(spec));
      };
  const auto minimized =
      scenario::Minimizer().minimize(*run.campaign.scenario, expect, execute);
  EXPECT_TRUE(minimized.reproduced);
  EXPECT_TRUE(minimized.irreducible);
  EXPECT_LE(minimized.minimal.steps.size(), scen->steps.size() / 2)
      << "acceptance: at most half the original interventions survive";
  EXPECT_LT(minimized.runs, scen->steps.size() + 1)
      << "acceptance: strictly fewer executions than naive one-at-a-time "
         "removal (initial check + one probe per step)";

  // The minimal program, re-run cold through the production Runner (no
  // snapshot, fresh fabric), preserves the manifestation class.
  auto min_sweep = sweep;
  min_sweep.base.scenario = minimized.minimal;
  const auto verify =
      orchestrator::Runner(rc).run_all(orchestrator::expand(min_sweep)).front();
  ASSERT_EQ(verify.outcome, orchestrator::RunOutcome::kOk) << verify.error;
  EXPECT_EQ(orchestrator::dominant_class(verify.result), expect);
  EXPECT_EQ(verify.result.scenario_steps_fired,
            minimized.minimal.steps.size());

  // A trace built from the verification run replays byte-identically when
  // the sweep is rebuilt from the parsed trace — the --replay contract.
  orchestrator::ReproTrace trace;
  trace.name = verify.name;
  trace.medium = run.campaign.medium;
  trace.seed = min_sweep.base_seed;
  trace.fault = "";
  trace.direction = orchestrator::FaultDirection::kBoth;
  trace.warmup = min_sweep.base.warmup;
  trace.duration = min_sweep.base.duration;
  trace.drain = min_sweep.base.drain;
  trace.udp_interval = min_sweep.base.workload.udp_interval;
  trace.payload_size = min_sweep.base.workload.payload_size;
  trace.burst_size = min_sweep.base.workload.burst_size;
  trace.jitter = min_sweep.base.workload.jitter;
  trace.scenario = minimized.minimal;
  trace.expect = expect;
  trace.jsonl = orchestrator::to_jsonl(verify, /*include_timing=*/false);

  const auto parsed = orchestrator::parse_repro_trace(
      orchestrator::to_json(trace));
  EXPECT_EQ(parsed.scenario, trace.scenario);
  EXPECT_EQ(parsed.seed, trace.seed);
  EXPECT_EQ(parsed.expect, trace.expect);
  EXPECT_EQ(parsed.jsonl, trace.jsonl);

  auto replay_sweep = flow_liar_sweep();  // static config, then trace fields
  replay_sweep.base.warmup = parsed.warmup;
  replay_sweep.base.duration = parsed.duration;
  replay_sweep.base.drain = parsed.drain;
  replay_sweep.base.workload.udp_interval = parsed.udp_interval;
  replay_sweep.base.workload.payload_size = parsed.payload_size;
  replay_sweep.base.workload.burst_size = parsed.burst_size;
  replay_sweep.base.workload.jitter = parsed.jitter;
  replay_sweep.base.scenario = parsed.scenario;
  replay_sweep.base_seed = parsed.seed;
  replay_sweep.directions = {parsed.direction};
  const auto replayed =
      orchestrator::Runner(rc).run_all(orchestrator::expand(replay_sweep))
          .front();
  ASSERT_EQ(replayed.outcome, orchestrator::RunOutcome::kOk)
      << replayed.error;
  EXPECT_EQ(orchestrator::to_jsonl(replayed, /*include_timing=*/false),
            parsed.jsonl)
      << "replay must reproduce the stored record byte-for-byte";
}

/// Pure round-trip of the trace format: emit -> parse preserves every
/// field, including fixed-decimal timing and nested steps.
TEST(ReproTrace, JsonRoundTripPreservesEveryField) {
  orchestrator::ReproTrace trace;
  trace.name = "gap-go/both/base/r0";
  trace.medium = nftape::Medium::kFc;
  trace.seed = 42;
  trace.fault = "fill-flip";
  trace.direction = orchestrator::FaultDirection::kFromSwitch;
  trace.warmup = sim::milliseconds(2);
  trace.duration = sim::nanoseconds(12'345'678);
  trace.drain = sim::milliseconds(2);
  trace.udp_interval = sim::nanoseconds(12'500);
  trace.payload_size = 256;
  trace.burst_size = 4;
  trace.jitter = 0.5;
  trace.scenario.name = "custom-storm";
  scenario::Step flood;
  flood.kind = scenario::StepKind::kRrdyFlood;
  flood.at = sim::nanoseconds(1'500'000);
  flood.node = 0;
  flood.count = 24;
  scenario::Step dup;
  dup.kind = scenario::StepKind::kDupSequence;
  dup.at = sim::milliseconds(3);
  dup.node = 1;
  dup.count = 1;
  trace.scenario.steps = {flood, dup};
  trace.expect = "dropped_other";
  trace.jsonl = "{\"index\":0,\"name\":\"x\"}";

  const auto text = orchestrator::to_json(trace);
  const auto parsed = orchestrator::parse_repro_trace(text);
  EXPECT_EQ(parsed.name, trace.name);
  EXPECT_EQ(parsed.medium, trace.medium);
  EXPECT_EQ(parsed.seed, trace.seed);
  EXPECT_EQ(parsed.fault, trace.fault);
  EXPECT_EQ(parsed.direction, trace.direction);
  EXPECT_EQ(parsed.warmup, trace.warmup);
  EXPECT_EQ(parsed.duration, trace.duration);
  EXPECT_EQ(parsed.drain, trace.drain);
  EXPECT_EQ(parsed.udp_interval, trace.udp_interval);
  EXPECT_EQ(parsed.payload_size, trace.payload_size);
  EXPECT_EQ(parsed.burst_size, trace.burst_size);
  EXPECT_EQ(parsed.jitter, trace.jitter);
  EXPECT_EQ(parsed.scenario, trace.scenario);
  EXPECT_EQ(parsed.expect, trace.expect);
  EXPECT_EQ(parsed.jsonl, trace.jsonl);

  // Emit -> parse -> emit is the identity on the file bytes.
  EXPECT_EQ(orchestrator::to_json(parsed), text);
}

TEST(ReproTrace, RejectsTamperedDocuments) {
  EXPECT_THROW(orchestrator::parse_repro_trace("{\"magic\": \"nope\"}"),
               orchestrator::CampaignFileError);
  EXPECT_THROW(orchestrator::parse_repro_trace("{]"),
               orchestrator::CampaignFileError);
  // Unknown keys name themselves, same policy as campaign files.
  try {
    orchestrator::parse_repro_trace(
        "{\"magic\": \"hsfi-repro-v1\", \"sead\": 4}");
    FAIL() << "expected CampaignFileError";
  } catch (const orchestrator::CampaignFileError& e) {
    EXPECT_NE(std::string(e.what()).find("sead"), std::string::npos)
        << e.what();
  }
}

}  // namespace
