// Tests for the parallel campaign orchestration engine: grid expansion,
// seed derivation, JSONL records, worker-pool determinism, and the
// per-run watchdog (timeout -> retry-once) path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/manifestation.hpp"
#include "myrinet/control.hpp"
#include "nftape/faults.hpp"
#include "orchestrator/jsonl.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"
#include "sim/rng.hpp"

namespace hsfi::orchestrator {
namespace {

using myrinet::ControlSymbol;
using sim::microseconds;
using sim::milliseconds;

SweepSpec small_sweep() {
  SweepSpec sweep;
  sweep.base_seed = 42;
  // Short windows keep each simulated run cheap; map_period dominates the
  // startup settle, so shrink it too.
  sweep.testbed.map_period = milliseconds(20);
  sweep.testbed.map_reply_window = milliseconds(2);
  sweep.testbed.nic_config.rx_processing_time = microseconds(10);
  sweep.testbed.send_stack_time = microseconds(2);
  sweep.base.warmup = milliseconds(5);
  sweep.base.duration = milliseconds(30);
  sweep.base.drain = milliseconds(5);
  sweep.base.workload.udp_interval = microseconds(200);
  sweep.faults = {
      {"baseline", std::nullopt},
      {"gap-go", nftape::control_symbol_corruption(ControlSymbol::kGap,
                                                   ControlSymbol::kGo)},
  };
  sweep.directions = {FaultDirection::kToSwitch};
  sweep.replicates = 2;
  return sweep;
}

std::vector<std::string> sorted_jsonl(const std::vector<RunRecord>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const auto& r : records) lines.push_back(to_jsonl(r));
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(SweepTest, ExpandsFullGridWithDerivedSeeds) {
  SweepSpec sweep;
  sweep.base_seed = 7;
  sweep.faults = {{"a", std::nullopt}, {"b", core::InjectorConfig{}}};
  sweep.directions = {FaultDirection::kToSwitch, FaultDirection::kFromSwitch,
                      FaultDirection::kBoth};
  sweep.intensities = {{"lo", microseconds(500), 1, 64},
                       {"hi", microseconds(50), 4, 128}};
  sweep.replicates = 3;
  const auto runs = expand(sweep);
  ASSERT_EQ(runs.size(), 2u * 3u * 2u * 3u);

  std::set<std::uint64_t> seeds;
  std::set<std::string> names;
  for (const auto& run : runs) {
    EXPECT_EQ(run.seed, sim::derive_seed(7, run.index));
    EXPECT_EQ(run.campaign.seed, run.seed);
    EXPECT_EQ(run.testbed.seed, run.seed);
    EXPECT_GT(run.startup_settle, 0);
    seeds.insert(run.seed);
    names.insert(run.campaign.name);
  }
  EXPECT_EQ(seeds.size(), runs.size()) << "seeds must be unique";
  EXPECT_EQ(names.size(), runs.size()) << "names must be unique";
  EXPECT_EQ(runs[0].campaign.name, "a/to-switch/lo/r0");

  // Direction routing: "a" is the baseline (no fault installed at all).
  for (const auto& run : runs) {
    const bool is_fault = run.campaign.name[0] == 'b';
    const bool to = run.campaign.name.find("/to-switch/") != std::string::npos ||
                    run.campaign.name.find("/both/") != std::string::npos;
    const bool from =
        run.campaign.name.find("/from-switch/") != std::string::npos ||
        run.campaign.name.find("/both/") != std::string::npos;
    EXPECT_EQ(run.campaign.fault_to_switch.has_value(), is_fault && to);
    EXPECT_EQ(run.campaign.fault_from_switch.has_value(), is_fault && from);
  }
}

TEST(SweepTest, ExpansionIsAPureFunctionOfTheSpec) {
  const auto a = expand(small_sweep());
  const auto b = expand(small_sweep());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].campaign.name, b[i].campaign.name);
  }
}

TEST(JsonlTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\n\t\x01y"), "x\\n\\t\\u0001y");
}

TEST(JsonlTest, NonFiniteNumbersSerializeAsNull) {
  // printf would emit bare `nan`/`inf`, which no JSON parser accepts; the
  // writer must degrade to null instead of corrupting the whole line.
  JsonObject o;
  o.add_fixed("a", std::numeric_limits<double>::quiet_NaN(), 4);
  o.add_fixed("b", std::numeric_limits<double>::infinity(), 4);
  o.add_fixed("c", -std::numeric_limits<double>::infinity(), 4);
  o.add_fixed("d", 1.25, 2);
  EXPECT_EQ(o.str(), "{\"a\":null,\"b\":null,\"c\":null,\"d\":1.25}");
}

TEST(JsonlTest, DuplicateDeliveriesAreReportedNotClamped) {
  RunRecord rec;
  rec.outcome = RunOutcome::kOk;
  rec.result.messages_sent = 10;
  rec.result.messages_received = 13;  // duplication (e.g. a looped route)
  rec.result.window = milliseconds(40);
  EXPECT_EQ(rec.result.duplicates(), 3u);
  EXPECT_EQ(rec.result.loss_rate(), 0.0);
  const auto line = to_jsonl(rec);
  EXPECT_NE(line.find("\"duplicates\":3"), std::string::npos)
      << "a clamped loss figure must not hide duplication: " << line;
}

TEST(JsonlTest, RecordHasStableFieldOrderAndOptionalTiming) {
  RunRecord rec;
  rec.index = 3;
  rec.name = "gap-go/both/base/r0";
  rec.seed = 99;
  rec.outcome = RunOutcome::kOk;
  rec.attempts = 1;
  rec.result.messages_sent = 10;
  rec.result.messages_received = 9;
  rec.result.window = milliseconds(40);
  rec.wall_ms = 12.5;
  const auto line = to_jsonl(rec);
  EXPECT_EQ(line.find("{\"run\":3,\"name\":\"gap-go/both/base/r0\",\"seed\":99,"
                      "\"outcome\":\"ok\",\"attempts\":1,\"timeouts\":0,"
                      "\"sent\":10,\"received\":9,\"loss_pct\":10.0000"),
            0u);
  EXPECT_EQ(line.find("wall_ms"), std::string::npos)
      << "timing must be opt-in; it is the one nondeterministic field";
  const auto timed = to_jsonl(rec, /*include_timing=*/true);
  EXPECT_NE(timed.find("\"wall_ms\":12.500"), std::string::npos);
  // The manifestation breakdown rides at the tail of the ok-record block,
  // after the kernel event count, one field per class plus duplicates and
  // secondary effects.
  EXPECT_NE(line.find("\"long_timeouts\":0,\"duplicates\":0,\"events\":0,"
                      "\"m_masked\":0"),
            std::string::npos)
      << line;
  for (const auto m : analysis::all_manifestations()) {
    EXPECT_NE(line.find("\"" + std::string(analysis::jsonl_key(m)) + "\":"),
              std::string::npos)
        << analysis::jsonl_key(m);
  }
  EXPECT_NE(line.find("\"secondary_effects\":0}"), std::string::npos) << line;
}

// The acceptance property: the same sweep produces byte-identical sorted
// JSONL no matter how many workers execute it (seeds derive from the run
// index, every run owns a private testbed, wall time is excluded).
TEST(RunnerTest, JsonlIsByteIdenticalAcrossWorkerCounts) {
  const auto runs = expand(small_sweep());
  ASSERT_EQ(runs.size(), 4u);

  RunnerConfig one;
  one.workers = 1;
  const auto serial = Runner(one).run_all(runs);

  RunnerConfig many;
  many.workers = 8;
  const auto parallel = Runner(many).run_all(runs);

  ASSERT_EQ(serial.size(), parallel.size());
  for (const auto& r : serial) {
    EXPECT_EQ(r.outcome, RunOutcome::kOk) << r.name << ": " << r.error;
  }
  EXPECT_EQ(sorted_jsonl(serial), sorted_jsonl(parallel));
  // And the records really did measure something.
  EXPECT_GT(serial[0].result.messages_sent, 0u);
}

TEST(RunnerTest, FaultySweepRunsSeeCampaignEffects) {
  // Sanity that the pool runs real campaigns: the gap-go runs of the small
  // sweep must inject and lose packets, the baselines must not.
  RunnerConfig rc;
  rc.workers = 2;
  const auto records = Runner(rc).run_all(expand(small_sweep()));
  for (const auto& r : records) {
    ASSERT_EQ(r.outcome, RunOutcome::kOk) << r.error;
    if (r.name.rfind("baseline", 0) == 0) {
      EXPECT_EQ(r.result.injections, 0u) << r.name;
    } else {
      EXPECT_GT(r.result.injections, 0u) << r.name;
      EXPECT_GT(r.result.loss_rate(), 0.0) << r.name;
    }
    // The accounting invariant, via the real worker-pool path: every firing
    // lands in exactly one manifestation class.
    EXPECT_EQ(r.result.manifestations.total(), r.result.injections) << r.name;
  }
}

TEST(RunnerTest, WatchdogCancelsHungRunAndRetriesExactlyOnce) {
  auto sweep = small_sweep();
  sweep.faults = {{"baseline", std::nullopt}};
  sweep.replicates = 3;
  const auto runs = expand(sweep);
  ASSERT_EQ(runs.size(), 3u);

  // Run 1 hangs on its first attempt: it spins (in tiny real sleeps) until
  // the watchdog's wall deadline cancels it. The retry behaves.
  std::atomic<int> hung_attempts{0};
  RunnerConfig rc;
  rc.workers = 2;
  rc.wall_limit = std::chrono::milliseconds(80);
  rc.executor = [&hung_attempts](const RunSpec& run,
                                 const nftape::RunControl& control) {
    if (run.index == 1 && hung_attempts.fetch_add(1) == 0) {
      while (!control.should_cancel(0)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      throw nftape::RunCancelled("hung");
    }
    nftape::CampaignResult r;
    r.name = run.campaign.name;
    r.messages_sent = r.messages_received = 100 + run.index;
    return r;
  };
  const auto records = Runner(rc).run_all(runs);

  EXPECT_EQ(records[1].outcome, RunOutcome::kOk) << "retry must succeed";
  EXPECT_EQ(records[1].attempts, 2) << "exactly one retry";
  EXPECT_EQ(records[1].timeouts, 1) << "first attempt marked timed out";
  EXPECT_EQ(records[0].attempts, 1);
  EXPECT_EQ(records[2].attempts, 1);
  EXPECT_EQ(hung_attempts.load(), 2);
}

TEST(RunnerTest, PermanentlyHungRunEndsTimedOutAfterOneRetry) {
  auto sweep = small_sweep();
  sweep.faults = {{"baseline", std::nullopt}};
  sweep.replicates = 1;
  RunnerConfig rc;
  rc.workers = 1;
  rc.wall_limit = std::chrono::milliseconds(40);
  rc.executor = [](const RunSpec&, const nftape::RunControl& control)
      -> nftape::CampaignResult {
    while (!control.should_cancel(0)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    throw nftape::RunCancelled("hung forever");
  };
  const auto records = Runner(rc).run_all(expand(sweep));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RunOutcome::kTimedOut);
  EXPECT_EQ(records[0].attempts, 2);
  EXPECT_EQ(records[0].timeouts, 2);
  const auto line = to_jsonl(records[0]);
  EXPECT_NE(line.find("\"outcome\":\"timed_out\""), std::string::npos);
  EXPECT_EQ(line.find("\"sent\""), std::string::npos)
      << "no counters for a run that never finished";
}

TEST(RunnerTest, SimulatedTimeCapCancelsARealCampaign) {
  // Exercise the real chunked-settle path in CampaignRunner: a cap far
  // below the run's span must cancel during simulation, not after.
  auto sweep = small_sweep();
  sweep.faults = {{"baseline", std::nullopt}};
  sweep.replicates = 1;
  RunnerConfig rc;
  rc.workers = 1;
  rc.sim_limit = milliseconds(5);
  rc.poll_interval = milliseconds(1);
  const auto records = Runner(rc).run_all(expand(sweep));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RunOutcome::kTimedOut);
  EXPECT_EQ(records[0].attempts, 2);
}

TEST(RunnerTest, WatchdogBudgetSpansSettleAndCampaignPhases) {
  // Regression: default_execute accumulated `elapsed` through the startup
  // settle, then CampaignRunner::run restarted its own accumulator at 0 —
  // so a run straddling the phase boundary got a fresh sim-time budget per
  // phase and could consume ~2x sim_limit before the watchdog fired. Here
  // each phase alone fits under the cap (settle 60 ms, campaign ~91 ms,
  // cap 100 ms) but their sum does not: with one threaded accumulator the
  // run must time out; with per-phase budgets it would complete.
  auto sweep = small_sweep();
  sweep.faults = {{"baseline", std::nullopt}};
  sweep.replicates = 1;
  sweep.startup_settle = milliseconds(60);
  sweep.base.warmup = milliseconds(2);
  sweep.base.duration = milliseconds(5);
  sweep.base.drain = milliseconds(2);
  RunnerConfig rc;
  rc.workers = 1;
  rc.sim_limit = milliseconds(100);
  rc.poll_interval = milliseconds(5);
  const auto records = Runner(rc).run_all(expand(sweep));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].outcome, RunOutcome::kTimedOut)
      << "the settle phase must draw down the campaign phase's budget";
  EXPECT_EQ(records[0].timeouts, records[0].attempts);
}

TEST(RunnerTest, CampaignRunnerHonorsPreCampaignElapsed) {
  // The seam of the fix in isolation: CampaignRunner::run seeded with
  // settle-phase elapsed just below the cap must cancel within the first
  // poll chunks of the campaign instead of granting a fresh budget.
  const auto sweep = small_sweep();
  auto bed_config = sweep.testbed;
  bed_config.seed = 1;
  nftape::Testbed bed(bed_config);
  bed.start();
  nftape::CampaignRunner campaign(bed);
  nftape::RunControl control;
  control.poll_interval = milliseconds(5);
  control.should_cancel = [](sim::Duration elapsed) {
    return elapsed >= milliseconds(100);
  };
  auto spec = sweep.base;
  spec.seed = 1;
  EXPECT_THROW(campaign.run(spec, &control, /*elapsed_before=*/milliseconds(95)),
               nftape::RunCancelled);
}

TEST(RunnerTest, ErrorOutcomeIsRetriedAndRecorded) {
  auto sweep = small_sweep();
  sweep.faults = {{"baseline", std::nullopt}};
  sweep.replicates = 1;
  RunnerConfig rc;
  rc.workers = 1;
  rc.executor = [](const RunSpec&, const nftape::RunControl&)
      -> nftape::CampaignResult {
    throw std::runtime_error("boom");
  };
  const auto records = Runner(rc).run_all(expand(sweep));
  EXPECT_EQ(records[0].outcome, RunOutcome::kError);
  EXPECT_EQ(records[0].attempts, 2);
  EXPECT_EQ(records[0].error, "boom");
  EXPECT_NE(to_jsonl(records[0]).find("\"error\":\"boom\""),
            std::string::npos);
}

TEST(RunnerTest, ProgressAndRecordCallbacksAccount) {
  const auto runs = expand(small_sweep());
  RunnerConfig rc;
  rc.workers = 3;
  std::size_t record_calls = 0;
  Progress last;
  rc.on_record = [&record_calls](const RunRecord&) { ++record_calls; };
  rc.on_progress = [&last](const Progress& p) {
    EXPECT_LE(p.completed + p.failed + p.in_flight, p.total);
    last = p;
  };
  const auto records = Runner(rc).run_all(runs);
  EXPECT_EQ(record_calls, runs.size());
  EXPECT_EQ(last.completed + last.failed, runs.size());
  EXPECT_EQ(last.in_flight, 0u);
  EXPECT_EQ(records.size(), runs.size());
}

TEST(RunnerTest, JsonlSinkWritesOneLinePerRecord) {
  std::ostringstream out;
  JsonlSink sink(out);
  RunnerConfig rc;
  rc.workers = 2;
  rc.on_record = [&sink](const RunRecord& r) { sink.write(r); };
  rc.executor = [](const RunSpec& run, const nftape::RunControl&) {
    nftape::CampaignResult r;
    r.messages_sent = r.messages_received = run.index;
    return r;
  };
  const auto records = Runner(rc).run_all(expand(small_sweep()));
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++lines;
  }
  EXPECT_EQ(lines, records.size());
}

TEST(SeedTest, SplitmixDerivationIsStableAndDispersed) {
  EXPECT_EQ(sim::splitmix64(0), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sim::derive_seed(1, 0), sim::derive_seed(1, 0));
  EXPECT_NE(sim::derive_seed(1, 0), sim::derive_seed(1, 1));
  EXPECT_NE(sim::derive_seed(1, 0), sim::derive_seed(2, 0));
  // Nearby indices must not produce nearby seeds (the reason splitmix is
  // used instead of base + index).
  std::set<std::uint64_t> high_bytes;
  for (std::uint64_t i = 0; i < 64; ++i) {
    high_bytes.insert(sim::derive_seed(1, i) >> 56);
  }
  EXPECT_GT(high_bytes.size(), 32u);
}

}  // namespace
}  // namespace hsfi::orchestrator
