// Multi-switch integration: source routes with multiple hops, per-hop CRC
// rewrite through real switches, and an injector spliced into the
// inter-switch trunk — "connects hosts and switches of arbitrary topology
// with point-to-point, full-duplex links" (paper §4.1).
//
//   hostA -- swA(p0) ... swA(p7) ==trunk== swB(p7) ... swB(p0) -- hostB
#include <gtest/gtest.h>

#include <vector>

#include "core/device.hpp"
#include "link/channel.hpp"
#include "myrinet/host_iface.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/switch.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {
namespace {

constexpr sim::Duration kPeriod = sim::picoseconds(12'500);

struct TwoSwitchBed {
  sim::Simulator sim;
  Switch sw_a{sim, "swA", {}};
  Switch sw_b{sim, "swB", {}};
  link::DuplexLink host_a_link{sim, "ha", kPeriod, sim::nanoseconds(5)};
  link::DuplexLink host_b_link{sim, "hb", kPeriod, sim::nanoseconds(5)};
  link::DuplexLink trunk{sim, "trunk", kPeriod, sim::nanoseconds(25)};
  HostInterface nic_a;
  HostInterface nic_b;
  std::vector<Delivered> at_a;
  std::vector<Delivered> at_b;

  static HostInterface::Config nic_config() {
    HostInterface::Config c;
    c.rx_processing_time = sim::nanoseconds(100);
    return c;
  }

  TwoSwitchBed()
      : nic_a(sim, "na", nic_config()), nic_b(sim, "nb", nic_config()) {
    nic_a.attach(host_a_link.b_to_a(), host_a_link.a_to_b());
    sw_a.attach_port(0, host_a_link.a_to_b(), host_a_link.b_to_a());
    // Trunk: swA end = A, swB end = B.
    sw_a.attach_port(7, trunk.b_to_a(), trunk.a_to_b());
    sw_b.attach_port(7, trunk.a_to_b(), trunk.b_to_a());
    nic_b.attach(host_b_link.b_to_a(), host_b_link.a_to_b());
    sw_b.attach_port(0, host_b_link.a_to_b(), host_b_link.b_to_a());
    nic_a.on_deliver([this](Delivered f, sim::SimTime) {
      at_a.push_back(std::move(f));
    });
    nic_b.on_deliver([this](Delivered f, sim::SimTime) {
      at_b.push_back(std::move(f));
    });
  }
};

TEST(MultiSwitchTest, TwoHopSourceRouteDelivers) {
  TwoSwitchBed bed;
  Packet p;
  // Hop 1: swA forwards to the trunk (port 7, next hop a switch);
  // hop 2: swB forwards to its host port 0.
  p.route = {route_to_switch(7), route_to_host(0)};
  p.type = kTypeData;
  p.payload = {0xCA, 0xFE};
  bed.nic_a.send(p);
  bed.sim.run();
  ASSERT_EQ(bed.at_b.size(), 1u);
  EXPECT_EQ(bed.at_b[0].payload, (std::vector<std::uint8_t>{0xCA, 0xFE}));
  // Both hops rewrote the CRC; zero CRC errors end to end.
  EXPECT_EQ(bed.nic_b.stats().crc_errors, 0u);
  EXPECT_EQ(bed.sw_a.port_stats(0).packets_routed, 1u);
  EXPECT_EQ(bed.sw_b.port_stats(7).packets_routed, 1u);
}

TEST(MultiSwitchTest, BidirectionalAcrossTrunk) {
  TwoSwitchBed bed;
  for (std::uint8_t i = 0; i < 20; ++i) {
    Packet to_b;
    to_b.route = {route_to_switch(7), route_to_host(0)};
    to_b.payload = {i};
    bed.nic_a.send(to_b);
    Packet to_a = to_b;
    to_a.payload = {static_cast<std::uint8_t>(0x80 | i)};
    bed.nic_b.send(to_a);
  }
  bed.sim.run();
  EXPECT_EQ(bed.at_b.size(), 20u);
  EXPECT_EQ(bed.at_a.size(), 20u);
  for (std::uint8_t i = 0; i < 20; ++i) {
    EXPECT_EQ(bed.at_b[i].payload[0], i);
    EXPECT_EQ(bed.at_a[i].payload[0], 0x80 | i);
  }
}

TEST(MultiSwitchTest, CorruptionBeforeEitherHopStillDetected) {
  // In-flight corruption on the host link is carried through BOTH CRC
  // rewrites and still detected at the destination.
  TwoSwitchBed bed;
  Packet p;
  p.route = {route_to_switch(7), route_to_host(0)};
  p.payload = {0x10, 0x20, 0x30};
  auto bytes = serialize(p);
  bytes[6] ^= 0x40;  // corrupt a payload byte, CRC left stale
  bed.nic_a.send_raw(std::move(bytes));
  bed.sim.run();
  EXPECT_TRUE(bed.at_b.empty());
  EXPECT_EQ(bed.nic_b.stats().crc_errors, 1u);
}

TEST(MultiSwitchTest, InjectorOnTrunkSeesAggregatedTraffic) {
  // Splice the device into the inter-switch trunk: it monitors and can
  // corrupt everything crossing between the switches — the deployment the
  // paper's "arbitrary topology" networks would use.
  sim::Simulator sim;
  Switch sw_a(sim, "swA", {});
  Switch sw_b(sim, "swB", {});
  link::DuplexLink ha(sim, "ha", kPeriod, sim::nanoseconds(5));
  link::DuplexLink hb(sim, "hb", kPeriod, sim::nanoseconds(5));
  link::DuplexLink trunk_l(sim, "tl", kPeriod, sim::nanoseconds(5));
  link::DuplexLink trunk_r(sim, "tr", kPeriod, sim::nanoseconds(5));
  core::InjectorDevice device(sim, "fi-trunk", {});
  HostInterface na(sim, "na", TwoSwitchBed::nic_config());
  HostInterface nb(sim, "nb", TwoSwitchBed::nic_config());
  na.attach(ha.b_to_a(), ha.a_to_b());
  sw_a.attach_port(0, ha.a_to_b(), ha.b_to_a());
  sw_a.attach_port(7, trunk_l.b_to_a(), trunk_l.a_to_b());
  device.attach_left(trunk_l.a_to_b(), trunk_l.b_to_a());
  device.attach_right(trunk_r.b_to_a(), trunk_r.a_to_b());
  sw_b.attach_port(7, trunk_r.a_to_b(), trunk_r.b_to_a());
  nb.attach(hb.b_to_a(), hb.a_to_b());
  sw_b.attach_port(0, hb.a_to_b(), hb.b_to_a());
  std::vector<Delivered> at_b;
  nb.on_deliver([&at_b](Delivered f, sim::SimTime) {
    at_b.push_back(std::move(f));
  });

  core::InjectorConfig fault;
  fault.match_mode = core::MatchMode::kOnce;
  fault.corrupt_mode = core::CorruptMode::kToggle;
  fault.compare_data = 0x000000EE;
  fault.compare_mask = 0x000000FF;
  fault.compare_ctl = 0x0;
  fault.compare_ctl_mask = 0x1;
  fault.corrupt_data = 0x00000001;
  fault.crc_repatch = true;
  device.apply(core::Direction::kLeftToRight, fault);

  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.route = {route_to_switch(7), route_to_host(0)};
    p.payload = {0xEE};
    na.send(p);
  }
  sim.run();
  ASSERT_EQ(at_b.size(), 3u);
  EXPECT_EQ(at_b[0].payload[0], 0xEF);  // exactly one corrupted
  EXPECT_EQ(at_b[1].payload[0], 0xEE);
  EXPECT_EQ(at_b[2].payload[0], 0xEE);
  EXPECT_GT(device.stream_stats(core::Direction::kLeftToRight)
                .counters().frames,
            0u);
}

}  // namespace
}  // namespace hsfi::myrinet
