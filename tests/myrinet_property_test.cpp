// Property-based tests for the Myrinet substrate: packet/framing round
// trips over a size sweep, CRC hop-rewrite algebra under random corruption,
// exhaustive control-code decoding, slack-buffer invariants, and deframer
// robustness against random noise.
#include <gtest/gtest.h>

#include <vector>

#include "myrinet/control.hpp"
#include "myrinet/crc8.hpp"
#include "myrinet/framing.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/slack_buffer.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {
namespace {

// ------------------------------------------------ packet round trips

class PacketSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PacketSizeSweep, SerializeParseRoundTrip) {
  const auto size = static_cast<std::size_t>(GetParam());
  sim::Rng rng(size + 1);
  Packet p;
  p.marker = 0x00;
  p.type = kTypeData;
  p.payload.resize(size);
  for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next_u32());
  const auto bytes = serialize(p);
  const auto parsed = parse_delivered(bytes);
  ASSERT_EQ(parsed.status, DeliveryStatus::kOk) << "size " << size;
  EXPECT_EQ(parsed.payload, p.payload);
}

TEST_P(PacketSizeSweep, FramingRoundTripThroughSymbols) {
  const auto size = static_cast<std::size_t>(GetParam());
  sim::Rng rng(size + 7);
  Packet p;
  p.payload.resize(size);
  for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next_u32());
  const auto bytes = serialize(p);
  const auto symbols = frame_symbols(bytes);

  Deframer d;
  std::vector<std::uint8_t> frame;
  d.on_frame([&frame](std::vector<std::uint8_t> f, sim::SimTime) {
    frame = std::move(f);
  });
  for (const auto s : symbols) d.feed(s, 0);
  EXPECT_EQ(frame, bytes);
}

TEST_P(PacketSizeSweep, AnySingleByteCorruptionDetected) {
  const auto size = static_cast<std::size_t>(GetParam());
  if (size > 64) GTEST_SKIP() << "quadratic check bounded to small packets";
  Packet p;
  p.payload.assign(size, 0x5A);
  const auto bytes = serialize(p);
  sim::Rng rng(size + 13);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    const auto flip = static_cast<std::uint8_t>(1u << rng.below(8));
    bad[i] ^= flip;
    const auto parsed = parse_delivered(bad);
    EXPECT_NE(parsed.status == DeliveryStatus::kOk &&
                  parsed.payload == p.payload,
              true)
        << "undetected corruption at byte " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PacketSizeSweep,
                         ::testing::Values(0, 1, 2, 3, 7, 16, 64, 256, 1024,
                                           4000));

// ------------------------------------------------ CRC hop algebra

class CrcHopSweep : public ::testing::TestWithParam<int> {};

TEST_P(CrcHopSweep, MultiHopRewriteStaysCorrectForIntactPackets) {
  // Strip k leading bytes one at a time, patching the CRC at each hop; the
  // final CRC must be correct for the final packet.
  const int hops = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(hops) + 3);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(hops) + 24);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
  std::uint8_t crc = crc8(bytes);
  for (int hop = 0; hop < hops; ++hop) {
    const std::vector<std::uint8_t> stripped(bytes.begin() + 1, bytes.end());
    crc = patch_crc(crc, crc8(bytes), crc8(stripped));
    bytes = stripped;
  }
  EXPECT_EQ(crc, crc8(bytes));
}

TEST_P(CrcHopSweep, MultiHopRewriteNeverMasksAnEarlierCorruption) {
  const int hops = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(hops) + 5);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(hops) + 24);
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u32());
  std::uint8_t crc = crc8(bytes);
  // Corrupt a byte that survives all hops, before any hop runs.
  const std::size_t victim =
      static_cast<std::size_t>(hops) +
      rng.below(static_cast<std::uint32_t>(bytes.size()) -
                static_cast<std::uint32_t>(hops));
  bytes[victim] ^= static_cast<std::uint8_t>(1u << rng.below(8));
  for (int hop = 0; hop < hops; ++hop) {
    const std::vector<std::uint8_t> stripped(bytes.begin() + 1, bytes.end());
    crc = patch_crc(crc, crc8(bytes), crc8(stripped));
    bytes = stripped;
  }
  EXPECT_NE(crc, crc8(bytes)) << "corruption masked after " << hops << " hops";
}

INSTANTIATE_TEST_SUITE_P(Hops, CrcHopSweep, ::testing::Range(1, 8));

// ------------------------------------------------ control decode space

TEST(ControlDecodeProperty, ExhaustiveDecodeIsStable) {
  // Every 8-bit code decodes to one of the four symbols or nothing, and
  // re-encoding an exact codeword decodes back to itself.
  int decodable = 0;
  for (int c = 0; c < 256; ++c) {
    const auto d = decode_control(static_cast<std::uint8_t>(c));
    if (d) {
      ++decodable;
      const auto again = decode_control(encoding(*d));
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, *d);
    }
  }
  // 4 exact codewords + 8 tolerated single-drop patterns.
  EXPECT_EQ(decodable, 12);
}

// ------------------------------------------------ slack invariants

class SlackSweep : public ::testing::TestWithParam<int> {};

TEST_P(SlackSweep, OccupancyNeverExceedsCapacityAndConserves) {
  sim::Simulator simulator;
  SlackBuffer::Config cfg;
  cfg.capacity = 64;
  cfg.high_watermark = 40;
  cfg.low_watermark = 8;
  int stops = 0;
  int gos = 0;
  SlackBuffer slack(simulator, cfg, [&](ControlSymbol c) {
    if (c == ControlSymbol::kStop) ++stops;
    if (c == ControlSymbol::kGo) ++gos;
  });
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::uint64_t pushed_ok = 0;
  std::uint64_t popped = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.chance(0.55)) {
      if (slack.push(link::data_symbol(static_cast<std::uint8_t>(i)))) {
        ++pushed_ok;
      }
    } else if (slack.pop()) {
      ++popped;
    }
    ASSERT_LE(slack.size(), cfg.capacity);
  }
  EXPECT_EQ(pushed_ok - popped, slack.size());
  // Hysteresis: GO transitions never outnumber STOP transitions by more
  // than zero, and never trail by more than one open STOP episode.
  EXPECT_LE(gos, stops);
}

TEST_P(SlackSweep, FifoOrderPreserved) {
  sim::Simulator simulator;
  SlackBuffer slack(simulator, {}, nullptr);
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  std::vector<std::uint8_t> in;
  std::vector<std::uint8_t> out;
  for (int i = 0; i < 2000; ++i) {
    if (rng.chance(0.6)) {
      const auto b = static_cast<std::uint8_t>(rng.next_u32());
      if (slack.push(link::data_symbol(b))) in.push_back(b);
    } else if (const auto s = slack.pop()) {
      out.push_back(s->data);
    }
  }
  while (const auto s = slack.pop()) out.push_back(s->data);
  EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlackSweep, ::testing::Range(1, 9));

// ------------------------------------------------ deframer fuzz

class DeframerFuzz : public ::testing::TestWithParam<int> {};

TEST_P(DeframerFuzz, RandomSymbolStreamsNeverWedgeAccounting) {
  Deframer d;
  std::uint64_t frame_bytes = 0;
  std::uint64_t frames = 0;
  std::uint64_t flow = 0;
  d.on_frame([&](std::vector<std::uint8_t> f, sim::SimTime) {
    frames += 1;
    frame_bytes += f.size();
  });
  d.on_flow([&](ControlSymbol, sim::SimTime) { ++flow; });
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) + 41);
  std::uint64_t fed_data = 0;
  for (int i = 0; i < 20000; ++i) {
    const bool control = rng.chance(0.3);
    const auto b = static_cast<std::uint8_t>(rng.next_u32() & 0x1F);
    if (!control) ++fed_data;
    d.feed(link::Symbol{b, control}, i);
  }
  // Conservation: every data byte is either in an emitted frame or still
  // in the open partial frame.
  EXPECT_EQ(fed_data, frame_bytes + d.open_frame_size());
  EXPECT_EQ(frames, d.frames_emitted());
  EXPECT_GT(flow, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeframerFuzz, ::testing::Range(1, 7));

}  // namespace
}  // namespace hsfi::myrinet
