// Unit tests for symbol channels: serialization timing, ordering, bursts.
#include <gtest/gtest.h>

#include <vector>

#include "link/channel.hpp"
#include "link/symbol.hpp"
#include "sim/simulator.hpp"

namespace hsfi::link {
namespace {

using sim::nanoseconds;
using sim::picoseconds;

constexpr sim::Duration kPeriod = picoseconds(12'500);  // 80 MB/s
constexpr sim::Duration kProp = nanoseconds(5);         // ~1 m of cable

struct Collector final : SymbolSink {
  std::vector<Burst> bursts;
  void on_burst(const Burst& b) override { bursts.push_back(b); }
};

TEST(SymbolTest, ToStringDistinguishesControl) {
  EXPECT_EQ(to_string(data_symbol(0xD3)), "D3");
  EXPECT_EQ(to_string(control_symbol(0x0C)), "c0C");
  EXPECT_EQ(to_string(std::vector<Symbol>{data_symbol(0x01),
                                          control_symbol(0x0F)}),
            "01 c0F");
}

TEST(ChannelTest, DeliversBurstAfterPropagationPlusOneCharacter) {
  sim::Simulator s;
  Channel ch(s, "t", kPeriod, kProp);
  Collector rx;
  ch.attach(rx);

  const std::vector<Symbol> payload = {data_symbol(1), data_symbol(2),
                                       data_symbol(3)};
  const sim::SimTime done = ch.transmit(payload);
  EXPECT_EQ(done, 3 * kPeriod);

  s.run();
  ASSERT_EQ(rx.bursts.size(), 1u);
  const Burst& b = rx.bursts[0];
  EXPECT_EQ(b.start, kProp);
  EXPECT_EQ(b.period, kPeriod);
  EXPECT_EQ(b.symbols, payload);
  EXPECT_EQ(b.arrival(0), kProp + kPeriod);
  EXPECT_EQ(b.arrival(2), kProp + 3 * kPeriod);
  EXPECT_EQ(b.end(), kProp + 3 * kPeriod);
}

TEST(ChannelTest, ConsecutiveSendsSerializeBackToBack) {
  sim::Simulator s;
  Channel ch(s, "t", kPeriod, 0);
  Collector rx;
  ch.attach(rx);

  ch.transmit(data_symbol(1));
  ch.transmit(data_symbol(2));
  EXPECT_EQ(ch.transmitter_free_at(), 2 * kPeriod);

  s.run();
  ASSERT_EQ(rx.bursts.size(), 2u);
  EXPECT_EQ(rx.bursts[0].start, 0);
  EXPECT_EQ(rx.bursts[1].start, kPeriod);  // queued behind the first symbol
}

TEST(ChannelTest, LaterTransmitStartsAtNow) {
  sim::Simulator s;
  Channel ch(s, "t", kPeriod, 0);
  Collector rx;
  ch.attach(rx);

  s.schedule_in(nanoseconds(100), [&] { ch.transmit(data_symbol(9)); });
  s.run();
  ASSERT_EQ(rx.bursts.size(), 1u);
  EXPECT_EQ(rx.bursts[0].start, nanoseconds(100));
}

TEST(ChannelTest, EmptyTransmitIsNoOp) {
  sim::Simulator s;
  Channel ch(s, "t", kPeriod, 0);
  Collector rx;
  ch.attach(rx);
  EXPECT_EQ(ch.transmit(std::span<const Symbol>{}), 0);
  s.run();
  EXPECT_TRUE(rx.bursts.empty());
  EXPECT_EQ(ch.symbols_sent(), 0u);
}

TEST(ChannelTest, CountsSymbols) {
  sim::Simulator s;
  Channel ch(s, "t", kPeriod, 0);
  const std::vector<Symbol> three = {data_symbol(1), data_symbol(2),
                                     data_symbol(3)};
  ch.transmit(three);
  ch.transmit(data_symbol(4));
  EXPECT_EQ(ch.symbols_sent(), 4u);
}

TEST(ChannelTest, NoSinkDropsSilently) {
  sim::Simulator s;
  Channel ch(s, "t", kPeriod, 0);
  ch.transmit(data_symbol(1));
  s.run();  // must not crash
  EXPECT_EQ(ch.symbols_sent(), 1u);
}

TEST(DuplexLinkTest, DirectionsAreIndependent) {
  sim::Simulator s;
  DuplexLink cable(s, "c", kPeriod, kProp);
  Collector at_b, at_a;
  cable.a_to_b().attach(at_b);
  cable.b_to_a().attach(at_a);

  cable.a_to_b().transmit(data_symbol(0xAA));
  cable.b_to_a().transmit(data_symbol(0xBB));
  s.run();

  ASSERT_EQ(at_b.bursts.size(), 1u);
  ASSERT_EQ(at_a.bursts.size(), 1u);
  EXPECT_EQ(at_b.bursts[0].symbols[0].data, 0xAA);
  EXPECT_EQ(at_a.bursts[0].symbols[0].data, 0xBB);
}

TEST(ChannelTest, OrderPreservedAcrossManySends) {
  sim::Simulator s;
  Channel ch(s, "t", kPeriod, kProp);
  Collector rx;
  ch.attach(rx);
  for (int i = 0; i < 50; ++i) ch.transmit(data_symbol(static_cast<std::uint8_t>(i)));
  s.run();
  ASSERT_EQ(rx.bursts.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rx.bursts[static_cast<std::size_t>(i)].symbols[0].data,
              static_cast<std::uint8_t>(i));
    if (i > 0) {
      EXPECT_GT(rx.bursts[static_cast<std::size_t>(i)].start,
                rx.bursts[static_cast<std::size_t>(i - 1)].start);
    }
  }
}

}  // namespace
}  // namespace hsfi::link
