// Edge cases for the ping/echo tooling and the host stack surfaces the
// campaigns depend on.
#include <gtest/gtest.h>

#include "host/ping.hpp"
#include "host/traffic.hpp"
#include "nftape/testbed.hpp"

namespace hsfi::host {
namespace {

using sim::microseconds;
using sim::milliseconds;

nftape::TestbedConfig fast_config() {
  nftape::TestbedConfig c;
  c.map_period = milliseconds(20);
  c.map_reply_window = milliseconds(2);
  c.nic_config.rx_processing_time = microseconds(2);
  c.send_stack_time = microseconds(2);
  return c;
}

TEST(PingerTest, UnreachableTargetTimesOutAndKeepsGoing) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(60));
  // No echo service on the target: every request times out.
  Pinger::Config pc;
  pc.target = 2;
  pc.max_packets = 5;
  pc.timeout = milliseconds(1);
  Pinger ping(bed.sim(), bed.host(0), pc);
  ping.start();
  bed.settle(milliseconds(20));
  EXPECT_EQ(ping.results().sent, 5u);
  EXPECT_EQ(ping.results().received, 0u);
  EXPECT_EQ(ping.results().timeouts, 5u);
  EXPECT_FALSE(ping.running());
}

TEST(PingerTest, StopHaltsMidFlood) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(60));
  bed.host(1).enable_echo();
  Pinger::Config pc;
  pc.target = 2;
  Pinger ping(bed.sim(), bed.host(0), pc);
  ping.start();
  bed.settle(milliseconds(5));
  const auto sent_so_far = ping.results().sent;
  EXPECT_GT(sent_so_far, 0u);
  ping.stop();
  bed.settle(milliseconds(5));
  EXPECT_EQ(ping.results().sent, sent_so_far);
}

TEST(PingerTest, DoneCallbackFiresOnceAtCompletion) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(60));
  bed.host(1).enable_echo();
  Pinger::Config pc;
  pc.target = 2;
  pc.max_packets = 10;
  Pinger ping(bed.sim(), bed.host(0), pc);
  int done = 0;
  ping.on_done([&done] { ++done; });
  ping.start();
  bed.settle(milliseconds(50));
  EXPECT_EQ(done, 1);
  EXPECT_EQ(ping.results().received, 10u);
  EXPECT_GT(ping.results().average_wall_rtt_ns(), 0.0);
}

TEST(HostStackTest, UnboundPortCountsDrop) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(60));
  UdpDatagram d;
  d.dst_port = 31337;  // nothing bound there
  bed.host(0).send_udp(2, std::move(d));
  bed.settle(milliseconds(5));
  EXPECT_EQ(bed.host(1).stats().drop_unbound_port, 1u);
  EXPECT_EQ(bed.host(1).stats().udp_delivered, 0u);
}

TEST(HostStackTest, UnknownPeerRefusedBeforeTheWire) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(60));
  UdpDatagram d;
  d.dst_port = 9;
  EXPECT_FALSE(bed.host(0).send_udp(99, std::move(d)));
  EXPECT_EQ(bed.host(0).stats().drop_unknown_peer, 1u);
  EXPECT_EQ(bed.host(0).stats().udp_sent, 0u);
}

TEST(HostStackTest, BootOffsetIsDeterministicPerSeed) {
  // The Table 2 noise model must be reproducible: same seed, same offset.
  auto measure = [](std::uint64_t seed) {
    nftape::TestbedConfig c = fast_config();
    c.host_boot_offset_span = sim::nanoseconds(800);
    c.seed = seed;
    nftape::Testbed bed(c);
    bed.start();
    bed.settle(milliseconds(60));
    bed.host(1).enable_echo();
    Pinger::Config pc;
    pc.target = 2;
    pc.max_packets = 50;
    Pinger ping(bed.sim(), bed.host(0), pc);
    ping.start();
    bed.settle(milliseconds(100));
    return ping.results().total_sim_rtt;
  };
  EXPECT_EQ(measure(7), measure(7));
  EXPECT_NE(measure(7), measure(8));  // different boot, different offsets
}

TEST(UdpFloodTest, MaxPacketsStopsExactly) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(60));
  UdpSink sink(bed.host(1), 9);
  UdpFlood::Config fc;
  fc.target = 2;
  fc.interval = microseconds(50);
  fc.max_packets = 17;
  fc.burst_size = 4;  // bursts must not overshoot the cap
  UdpFlood flood(bed.sim(), bed.host(0), fc);
  flood.start();
  bed.settle(milliseconds(20));
  EXPECT_EQ(flood.sent(), 17u);
  EXPECT_FALSE(flood.running());
  EXPECT_EQ(sink.received(), 17u);
}

TEST(UdpFloodTest, JitterKeepsLongRunRateApproximate) {
  nftape::Testbed bed(fast_config());
  bed.start();
  bed.settle(milliseconds(60));
  UdpSink sink(bed.host(1), 9);
  UdpFlood::Config fc;
  fc.target = 2;
  fc.interval = microseconds(100);
  fc.jitter = 0.5;
  UdpFlood flood(bed.sim(), bed.host(0), fc);
  flood.start();
  bed.settle(milliseconds(100));
  flood.stop();
  // 100 ms / 100 us = ~1000 packets, within 10% despite jitter.
  EXPECT_NEAR(static_cast<double>(flood.sent()), 1000.0, 100.0);
}

}  // namespace
}  // namespace hsfi::host
