// Seed-derivation guarantees the orchestrator and the adaptive controller
// both lean on: sim::derive_seed / adaptive::run_key must be collision-free
// over every key an actual campaign can produce, and must avalanche (a
// one-bit key change flips about half the seed bits) so replicate streams
// are statistically independent.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "adaptive/controller.hpp"
#include "sim/rng.hpp"

namespace hsfi {
namespace {

// The full run_sweep plane: 8 faults x 3 directions, and more replicates
// and rounds than any shipped configuration uses.
constexpr std::uint32_t kFaults = 8;
constexpr std::uint32_t kDirections = 3;
constexpr std::uint32_t kReplicates = 8;
constexpr std::uint32_t kRounds = 3;

TEST(SeedDerivationTest, RunKeysUniqueAcrossGridAndRounds) {
  std::set<std::uint64_t> keys;
  for (std::uint32_t round = 0; round < kRounds; ++round) {
    for (std::uint32_t f = 0; f < kFaults; ++f) {
      for (std::uint32_t d = 0; d < kDirections; ++d) {
        for (std::uint32_t rep = 0; rep < kReplicates; ++rep) {
          const auto [it, inserted] =
              keys.insert(adaptive::run_key(round, f, d, rep));
          EXPECT_TRUE(inserted)
              << "collision at round=" << round << " fault=" << f
              << " direction=" << d << " replicate=" << rep;
        }
      }
    }
  }
  EXPECT_EQ(keys.size(), kRounds * kFaults * kDirections * kReplicates);
}

TEST(SeedDerivationTest, DerivedSeedsUniquePerBaseSeed) {
  // The seeds actually handed to testbeds: derive_seed over the run keys,
  // plus the static path's derive_seed over run indices — the two seed
  // spaces must not collide with themselves or each other for a realistic
  // grid size.
  for (const std::uint64_t base : {1ull, 42ull, 0xDEADBEEFull}) {
    std::set<std::uint64_t> seeds;
    for (std::uint32_t round = 0; round < kRounds; ++round) {
      for (std::uint32_t f = 0; f < kFaults; ++f) {
        for (std::uint32_t d = 0; d < kDirections; ++d) {
          for (std::uint32_t rep = 0; rep < kReplicates; ++rep) {
            seeds.insert(adaptive::derive_run_seed(base, round, f, d, rep));
          }
        }
      }
    }
    const std::size_t adaptive_seeds = seeds.size();
    EXPECT_EQ(adaptive_seeds, kRounds * kFaults * kDirections * kReplicates)
        << "base " << base;
    for (std::uint64_t index = 0; index < 1024; ++index) {
      seeds.insert(sim::derive_seed(base, index));
    }
    EXPECT_EQ(seeds.size(), adaptive_seeds + 1024) << "base " << base;
  }
}

TEST(SeedDerivationTest, SeedsStableAcrossCalls) {
  // Replay guarantee: the same key always produces the same seed.
  EXPECT_EQ(adaptive::derive_run_seed(7, 2, 3, 1, 5),
            adaptive::derive_run_seed(7, 2, 3, 1, 5));
  // And the key is sensitive to every coordinate.
  const std::uint64_t s = adaptive::derive_run_seed(7, 2, 3, 1, 5);
  EXPECT_NE(s, adaptive::derive_run_seed(8, 2, 3, 1, 5));
  EXPECT_NE(s, adaptive::derive_run_seed(7, 3, 3, 1, 5));
  EXPECT_NE(s, adaptive::derive_run_seed(7, 2, 4, 1, 5));
  EXPECT_NE(s, adaptive::derive_run_seed(7, 2, 3, 2, 5));
  EXPECT_NE(s, adaptive::derive_run_seed(7, 2, 3, 1, 6));
}

TEST(SeedDerivationTest, AvalancheSmoke) {
  // Flipping any single bit of any key coordinate should flip roughly half
  // of the 64 seed bits. A generous [16, 48] window still catches a broken
  // mixer (identity, xor-only, truncated multiply), which lands near 1.
  std::uint64_t total_flips = 0;
  std::uint64_t samples = 0;
  const auto check = [&](std::uint64_t a, std::uint64_t b) {
    const int flips = std::popcount(a ^ b);
    EXPECT_GE(flips, 16) << "weak avalanche";
    EXPECT_LE(flips, 48) << "weak avalanche";
    total_flips += static_cast<std::uint64_t>(flips);
    ++samples;
  };
  for (std::uint32_t bit = 0; bit < 8; ++bit) {
    const std::uint32_t flip = 1u << bit;
    check(adaptive::run_key(0, 0, 0, 0), adaptive::run_key(flip, 0, 0, 0));
    check(adaptive::run_key(0, 0, 0, 0), adaptive::run_key(0, flip, 0, 0));
    check(adaptive::run_key(0, 0, 0, 0), adaptive::run_key(0, 0, flip, 0));
    check(adaptive::run_key(0, 0, 0, 0), adaptive::run_key(0, 0, 0, flip));
  }
  for (std::uint32_t bit = 0; bit < 64; ++bit) {
    check(sim::splitmix64(0), sim::splitmix64(1ull << bit));
  }
  // The mean over all samples should hug 32 closely.
  const double mean =
      static_cast<double>(total_flips) / static_cast<double>(samples);
  EXPECT_NEAR(mean, 32.0, 3.0);
}

}  // namespace
}  // namespace hsfi
