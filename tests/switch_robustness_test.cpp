// Failure-injection and robustness tests for the switch: random garbage on
// input ports, truncated packets, pathological route bytes, and arbitration
// fairness under adversarial streams.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "link/channel.hpp"
#include "myrinet/host_iface.hpp"
#include "myrinet/packet.hpp"
#include "myrinet/switch.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {
namespace {

using sim::microseconds;
using sim::milliseconds;
using sim::nanoseconds;
using sim::picoseconds;

constexpr sim::Duration kPeriod = picoseconds(12'500);

struct Bed {
  sim::Simulator sim;
  Switch sw;
  std::vector<std::unique_ptr<link::DuplexLink>> cables;
  std::vector<std::unique_ptr<HostInterface>> nics;
  std::vector<std::vector<Delivered>> delivered;

  explicit Bed(std::size_t nodes, Switch::Config sc = {}) : sw(sim, "sw", sc) {
    delivered.resize(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      cables.push_back(std::make_unique<link::DuplexLink>(
          sim, "c" + std::to_string(i), kPeriod, nanoseconds(5)));
      HostInterface::Config nc;
      nc.rx_processing_time = nanoseconds(100);
      nics.push_back(std::make_unique<HostInterface>(
          sim, "n" + std::to_string(i), nc));
      nics[i]->attach(cables[i]->b_to_a(), cables[i]->a_to_b());
      sw.attach_port(i, cables[i]->a_to_b(), cables[i]->b_to_a());
      auto* sink = &delivered[i];
      nics[i]->on_deliver([sink](Delivered f, sim::SimTime) {
        sink->push_back(std::move(f));
      });
    }
  }

  Packet packet(std::size_t dest, std::vector<std::uint8_t> payload) {
    Packet p;
    p.route = {route_to_host(static_cast<std::uint8_t>(dest))};
    p.type = kTypeData;
    p.payload = std::move(payload);
    return p;
  }
};

class NoiseSweep : public ::testing::TestWithParam<int> {};

TEST_P(NoiseSweep, RandomGarbageNeverWedgesTheSwitch) {
  Bed bed(3);
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Blast random symbols (data and control alike) straight onto the wire.
  for (int burst = 0; burst < 50; ++burst) {
    std::vector<link::Symbol> noise;
    for (int i = 0; i < 64; ++i) {
      noise.push_back(link::Symbol{static_cast<std::uint8_t>(rng.next_u32()),
                                   rng.chance(0.3)});
    }
    bed.cables[0]->a_to_b().transmit(noise);
    bed.sim.run_until(bed.sim.now() + microseconds(20));
  }
  bed.sim.run_until(bed.sim.now() + milliseconds(60));
  // After the noise, normal traffic must still flow. The first packet may
  // be sacrificed to resynchronize a consume opened by truncated garbage
  // (a real idle link carries GAP fillers that resync for free; our
  // idle-less channels pay one packet instead) — the second must arrive.
  bed.nics[0]->send(bed.packet(1, {0x42}));
  bed.nics[0]->send(bed.packet(1, {0x42}));
  bed.sim.run_until(bed.sim.now() + milliseconds(60));
  bool got = false;
  for (const auto& f : bed.delivered[1]) {
    if (f.type == kTypeData && !f.payload.empty() && f.payload[0] == 0x42) {
      got = true;
    }
  }
  EXPECT_TRUE(got) << "switch wedged by noise";
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoiseSweep, ::testing::Range(1, 6));

TEST(SwitchRobustnessTest, TruncatedPacketFollowedByGapRecovers) {
  Bed bed(2);
  // A header byte then GAP with no body: the switch opens and immediately
  // closes a connection; the NIC sees a runt and drops it as too short.
  bed.cables[0]->a_to_b().transmit(
      std::vector<link::Symbol>{link::data_symbol(route_to_host(1)),
                                to_symbol(ControlSymbol::kGap)});
  bed.sim.run();
  EXPECT_TRUE(bed.delivered[1].empty());
  bed.nics[0]->send(bed.packet(1, {0x77}));
  bed.sim.run();
  ASSERT_EQ(bed.delivered[1].size(), 1u);
}

TEST(SwitchRobustnessTest, SelfRoutedPacketLoopsBackThroughOwnPort) {
  // Route byte naming the sender's own port: the packet hairpins back.
  Bed bed(2);
  Packet p = bed.packet(0, {0x11});
  bed.nics[0]->send(p);
  bed.sim.run();
  ASSERT_EQ(bed.delivered[0].size(), 1u);
  EXPECT_EQ(bed.delivered[0][0].payload[0], 0x11);
}

TEST(SwitchRobustnessTest, AllPortsToOneDestinationAllDeliver) {
  Bed bed(8);
  const std::vector<std::uint8_t> payload(300, 0xEE);
  for (std::size_t src = 1; src < 8; ++src) {
    for (int k = 0; k < 5; ++k) {
      bed.nics[src]->send(bed.packet(0, payload));
    }
  }
  bed.sim.run();
  EXPECT_EQ(bed.delivered[0].size(), 35u);
}

TEST(SwitchRobustnessTest, ArbitrationIsFairUnderSustainedContention) {
  // Two inputs continuously contend for one output; neither may starve.
  Bed bed(3);
  const std::vector<std::uint8_t> payload(400, 0xAB);
  for (int k = 0; k < 40; ++k) {
    Packet from0 = bed.packet(2, payload);
    from0.payload[0] = 0xA0;
    Packet from1 = bed.packet(2, payload);
    from1.payload[0] = 0xA1;
    bed.nics[0]->send(from0);
    bed.nics[1]->send(from1);
  }
  bed.sim.run();
  ASSERT_EQ(bed.delivered[2].size(), 80u);
  // Interleaving: within any window of 8 deliveries both senders appear.
  for (std::size_t w = 0; w + 8 <= bed.delivered[2].size(); w += 8) {
    int a = 0;
    for (std::size_t i = w; i < w + 8; ++i) {
      if (bed.delivered[2][i].payload[0] == 0xA0) ++a;
    }
    EXPECT_GT(a, 0) << "sender 0 starved in window " << w;
    EXPECT_LT(a, 8) << "sender 1 starved in window " << w;
  }
}

TEST(SwitchRobustnessTest, LongTimeoutResynchronizesAtNextHeader) {
  Switch::Config sc;
  sc.long_timeout = microseconds(50);
  Bed bed(2, sc);
  // Headless stream holds the path; after the long timeout the switch
  // returns to idle, so the next complete packet goes through untouched.
  bed.cables[0]->a_to_b().transmit(
      std::vector<link::Symbol>{link::data_symbol(route_to_host(1)),
                                link::data_symbol(0x01)});
  bed.sim.run_until(bed.sim.now() + microseconds(200));
  EXPECT_EQ(bed.sw.port_stats(0).long_timeouts, 1u);
  bed.nics[0]->send(bed.packet(1, {0x55}));
  bed.sim.run();
  ASSERT_FALSE(bed.delivered[1].empty());
  EXPECT_EQ(bed.delivered[1].back().payload[0], 0x55);
}

TEST(SwitchRobustnessTest, StatsQueriesOutOfRangeAreSafe) {
  Bed bed(2);
  EXPECT_EQ(bed.sw.num_ports(), 8u);
  // Unattached ports report zeroed stats rather than crashing.
  const auto s = bed.sw.port_stats(7);
  EXPECT_EQ(s.packets_routed, 0u);
}

}  // namespace
}  // namespace hsfi::myrinet
