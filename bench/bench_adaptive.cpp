// Runs-to-threshold: the adaptive bisection strategy vs the full grid.
//
// The closed-loop claim worth a number: locating the manifestation
// threshold of each fault x direction cell by bisection must cost at most
// half the runs of sweeping the equivalent fixed grid at the same
// resolution. This bench plants a hidden threshold per cell on the
// udp-interval axis behind a synthetic executor (deterministic, no
// simulation — the quantity under test is the search, not the kernel),
// runs the controller to convergence, and fails hard if
//
//   * any cell misses its planted threshold by more than the tolerance, or
//   * total bisection runs exceed 50% of the grid-equivalent run count.
//
// The ctest bench_smoke lane runs this with --smoke; the JSON output uses
// the BENCH_sim_kernel.json record schema so results diff across commits.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "adaptive/controller.hpp"
#include "adaptive/strategy.hpp"
#include "harness.hpp"
#include "myrinet/control.hpp"
#include "nftape/faults.hpp"
#include "orchestrator/jsonl.hpp"

using namespace hsfi;

namespace {

/// The planted manifestation thresholds (udp-us axis, smaller interval =
/// more intense): cell i manifests iff interval <= kThresholds[i].
/// Deliberately not on the bisection's probe lattice, so the bracket has
/// to straddle them.
constexpr double kThresholds[] = {57.3, 130.9, 211.4, 333.7};

struct BenchResult {
  std::size_t bisect_runs = 0;
  std::size_t grid_runs = 0;
  double max_threshold_error = 0;  ///< worst |estimate - planted| in us
  double tolerance = 0;
  bool ok = true;
};

BenchResult run_once(std::size_t cell_count, double tolerance) {
  adaptive::AdaptiveSpec spec;
  spec.name = "bench_adaptive";
  spec.faults = {
      {"gap-go", nftape::control_symbol_corruption(myrinet::ControlSymbol::kGap,
                                                   myrinet::ControlSymbol::kGo)},
      {"stop-go", nftape::control_symbol_corruption(
                      myrinet::ControlSymbol::kStop, myrinet::ControlSymbol::kGo)},
  };
  spec.directions = {orchestrator::FaultDirection::kFromSwitch,
                     orchestrator::FaultDirection::kBoth};
  spec.knob = nftape::Knob::kUdpIntervalUs;
  spec.base_seed = 42;
  spec.max_rounds = 64;

  // Cell-major name prefixes ("<fault>/<direction>/"), in the order
  // Controller::cells() indexes cells — captured by value, the spec itself
  // is moved into the controller below.
  std::vector<std::string> prefixes;
  for (const auto& fault : spec.faults) {
    for (const auto dir : spec.directions) {
      prefixes.push_back(fault.name + "/" +
                         std::string(orchestrator::to_string(dir)) + "/");
    }
  }

  adaptive::ControllerConfig config;
  config.runner.workers = 1;
  // The plant: manifestation iff the knob drove the interval to or below
  // the cell's threshold. RunSpec::index is global across rounds — recover
  // the cell from the run name instead.
  config.runner.executor = [prefixes](const orchestrator::RunSpec& run,
                                      const nftape::RunControl&) {
    std::size_t cell = 0;
    const std::string& name = run.campaign.name;
    for (std::size_t i = 0; i < prefixes.size(); ++i) {
      if (name.rfind(prefixes[i], 0) == 0) cell = i;
    }
    const double interval_us =
        sim::to_microseconds(run.campaign.workload.udp_interval);
    nftape::CampaignResult r;
    r.name = name;
    r.injections = 40;
    r.events_executed = 1000;
    r.messages_sent = r.messages_received = 100;
    if (interval_us <= kThresholds[cell]) {
      r.manifestations[analysis::Manifestation::kCrcDropped] = 30;
      r.manifestations[analysis::Manifestation::kMasked] = 10;
    } else {
      r.manifestations[analysis::Manifestation::kMasked] = 40;
    }
    return r;
  };

  adaptive::Controller controller(std::move(spec), std::move(config));
  auto cells = controller.cells();
  cells.resize(cell_count);

  adaptive::BisectionConfig bc;
  bc.lo = 12.0;
  bc.hi = 396.0;
  bc.tolerance = tolerance;
  bc.higher_is_more_intense = false;
  bc.replicates = 1;
  bc.min_manifested = 1;
  adaptive::BisectionStrategy strategy(cells, bc);

  const auto outcome = controller.run(strategy);

  BenchResult out;
  out.tolerance = strategy.tolerance();
  out.bisect_runs = outcome.records.size();
  out.grid_runs = strategy.grid_equivalent_runs_per_cell() * cells.size();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& t = strategy.thresholds()[i];
    if (!t.found || !t.converged) {
      std::fprintf(stderr, "cell %zu: threshold not located (found=%d)\n", i,
                   t.found);
      out.ok = false;
      continue;
    }
    const double err = std::fabs(t.estimate() - kThresholds[i]);
    if (err > out.max_threshold_error) out.max_threshold_error = err;
    if (err > out.tolerance) {
      std::fprintf(stderr,
                   "cell %zu: estimate %.2f us vs planted %.2f us "
                   "(error %.2f > tolerance %.2f)\n",
                   i, t.estimate(), kThresholds[i], err, out.tolerance);
      out.ok = false;
    }
  }
  if (out.bisect_runs * 2 > out.grid_runs) {
    std::fprintf(stderr, "bisection used %zu runs > 50%% of the %zu-run grid\n",
                 out.bisect_runs, out.grid_runs);
    out.ok = false;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = bench::parse_options(argc, argv);
  const std::size_t cell_count = options.smoke ? 2 : 4;
  const double tolerance = options.smoke ? 12.0 : 6.0;

  const BenchResult r = run_once(cell_count, tolerance);
  const double ratio = r.grid_runs > 0 ? static_cast<double>(r.bisect_runs) /
                                             static_cast<double>(r.grid_runs)
                                       : 1.0;
  std::printf(
      "bench_adaptive: %zu cells, tolerance %.1f us\n"
      "  bisection runs     %zu\n"
      "  grid-equivalent    %zu\n"
      "  run ratio          %.3f (must be <= 0.500)\n"
      "  worst estimate err %.2f us\n",
      cell_count, r.tolerance, r.bisect_runs, r.grid_runs, ratio,
      r.max_threshold_error);

  if (!options.out_path.empty()) {
    const std::string commit = bench::current_commit();
    std::ofstream out(options.out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", options.out_path.c_str());
      return 1;
    }
    out << "[\n";
    bool first = true;
    const auto record = [&](const char* metric, double v, int decimals,
                            const char* unit) {
      if (!first) out << ",\n";
      first = false;
      orchestrator::JsonObject o;
      o.add("bench", "bench_adaptive");
      o.add("metric", metric);
      o.add_fixed("value", v, decimals);
      o.add("unit", unit);
      o.add("commit", commit);
      out << "  " << o.str();
    };
    record("bisect_runs", static_cast<double>(r.bisect_runs), 0, "count");
    record("grid_runs", static_cast<double>(r.grid_runs), 0, "count");
    record("run_ratio", ratio, 3, "ratio");
    record("threshold_error_max", r.max_threshold_error, 2, "us");
    out << "\n]\n";
    if (!out) return 1;
  }
  return r.ok ? 0 : 1;
}
