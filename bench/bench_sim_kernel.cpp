// Kernel throughput benchmark: the harness's standard scenario set, one
// process, stable JSON output for cross-commit regression tracking.
//
//   ./build/bench/bench_sim_kernel --out BENCH_sim_kernel.json
//   ./build/bench/bench_sim_kernel --reps 1 --smoke --out smoke.json   # CI lane
//
// Scenarios mirror the standalone result-reproduction benches (passthrough,
// sec431 throughput, seu sweep, manifestations) but measure the one thing
// those don't: simulation events per wall second, the number every campaign
// in the paper's tables is bounded by. Each scenario is deterministic — the
// harness fails the run if an event count differs between repetitions.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "host/traffic.hpp"
#include "monitor/service.hpp"
#include "myrinet/control.hpp"
#include "nftape/campaign.hpp"
#include "nftape/fabric.hpp"
#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"
#include "scenario/scenario.hpp"

using namespace hsfi;
using myrinet::ControlSymbol;

namespace {

nftape::TestbedConfig standard_testbed() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  return config;
}

/// §3.5 pass-through: UDP flood across the spliced injector at ~98% of the
/// 80 MB/s line rate. The hottest configuration of the channel/device path.
std::uint64_t scenario_passthrough(bool smoke) {
  nftape::Testbed bed(standard_testbed());
  bed.start();
  bed.settle(sim::milliseconds(150));

  host::UdpSink sink(bed.host(1), 9);
  host::UdpFlood::Config fc;
  fc.target = 2;  // node 1, across the injected link
  fc.interval = sim::microseconds(7);
  fc.payload_size = 512;
  host::UdpFlood flood(bed.sim(), bed.host(0), fc);
  flood.start();
  bed.settle(sim::milliseconds(smoke ? 40 : 200));
  flood.stop();
  bed.settle(sim::milliseconds(10));
  return bed.sim().executed_events();
}

/// §4.3.1 normal-condition throughput: all-to-all bursty floods through the
/// switch — exercises arbitration, slack buffers, and flow control.
std::uint64_t scenario_sec431(bool smoke) {
  auto config = standard_testbed();
  config.nic_config.rx_processing_time = sim::microseconds(2);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));

  std::vector<std::unique_ptr<host::UdpSink>> sinks;
  for (std::size_t i = 0; i < 3; ++i) {
    sinks.push_back(std::make_unique<host::UdpSink>(bed.host(i), 9));
  }
  std::vector<std::unique_ptr<host::UdpFlood>> floods;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      host::UdpFlood::Config fc;
      fc.target = static_cast<host::HostId>(j + 1);
      fc.interval = sim::microseconds(12);
      fc.payload_size = 256;
      fc.burst_size = 4;
      fc.jitter = 0.5;
      fc.seed = 40 + i * 8 + j;
      fc.src_port = static_cast<std::uint16_t>(5000 + i * 8 + j);
      floods.push_back(
          std::make_unique<host::UdpFlood>(bed.sim(), bed.host(i), fc));
    }
  }
  for (auto& f : floods) f->start();
  bed.settle(sim::milliseconds(smoke ? 30 : 150));
  for (auto& f : floods) f->stop();
  bed.settle(sim::milliseconds(10));
  return bed.sim().executed_events();
}

/// §3.1 SEU-rate sweep through the orchestrator worker pool; events are the
/// sum over the expanded runs (each run reports its own deterministic
/// count, so the total is worker-count independent).
std::uint64_t scenario_seu_sweep(bool smoke) {
  orchestrator::SweepSpec sweep;
  sweep.name = "seu";
  sweep.testbed = standard_testbed();
  sweep.base.warmup = sim::milliseconds(10);
  sweep.base.duration = sim::milliseconds(smoke ? 20 : 60);
  sweep.base.drain = sim::milliseconds(10);
  sweep.base.workload.udp_interval = sim::microseconds(20);
  sweep.base.workload.payload_size = 128;
  sweep.directions = {orchestrator::FaultDirection::kBoth};
  const std::uint16_t masks[] = {0x0FFF, 0x03FF, 0x00FF};
  const std::size_t points = smoke ? 1 : 3;
  for (std::size_t i = 0; i < points; ++i) {
    sweep.faults.push_back({nftape::cell("seu-%04X", masks[i]),
                            nftape::random_bit_flip_seu(masks[i]), ""});
  }
  const auto records = orchestrator::Runner().run_all(orchestrator::expand(sweep));
  std::uint64_t events = 0;
  for (const auto& r : records) {
    if (r.outcome != orchestrator::RunOutcome::kOk) {
      std::fprintf(stderr, "seu_sweep run %zu: %s\n", r.index,
                   std::string(orchestrator::to_string(r.outcome)).c_str());
      return 0;  // a failed run shows up as a nondeterministic event count
    }
    events += r.result.events_executed;
  }
  return events;
}

/// Manifestation-analysis campaigns on one shared testbed: the monitor-hook
/// and analyzer overhead on top of the §4.3 fault classes.
std::uint64_t scenario_manifestations(bool smoke) {
  nftape::Testbed bed(standard_testbed());
  bed.start();
  bed.settle(sim::milliseconds(150));
  nftape::CampaignRunner runner(bed);

  const struct {
    const char* name;
    core::InjectorConfig config;
  } rows[] = {
      {"seu-00FF", nftape::random_bit_flip_seu(0x00FF)},
      {"gap->idle", nftape::control_symbol_corruption(ControlSymbol::kGap,
                                                      ControlSymbol::kIdle)},
  };
  const std::uint64_t begin = bed.sim().executed_events();
  for (const auto& row : rows) {
    nftape::CampaignSpec spec;
    spec.name = row.name;
    spec.warmup = sim::milliseconds(10);
    spec.duration = sim::milliseconds(smoke ? 20 : 80);
    spec.drain = sim::milliseconds(10);
    spec.workload.udp_interval = sim::microseconds(12);
    spec.workload.payload_size = 256;
    spec.workload.burst_size = 4;
    spec.workload.jitter = 0.5;
    spec.fault_to_switch = row.config;
    spec.fault_from_switch = row.config;
    (void)runner.run(spec);
  }
  return bed.sim().executed_events() - begin;
}

/// Live-monitor overhead A/B: the same pass-through-style sweep through the
/// worker pool twice — bare, and with a MonitorService attached as a record
/// sink — interleaved, best-of-N wall time per arm. The sink costs one map
/// lookup plus a few dozen counter folds per *completed run* (never per
/// event), so the monitored arm must stay within 5% of the bare arm's
/// events/s. A violation (or an event-count mismatch between arms, which
/// would mean the sink perturbed the simulation) reports 0 events, the same
/// convention seu_sweep uses for a failed run.
std::uint64_t scenario_monitor_overhead(bool smoke) {
  orchestrator::SweepSpec sweep;
  sweep.name = "monitor-overhead";
  sweep.testbed = standard_testbed();
  sweep.base.warmup = sim::milliseconds(10);
  sweep.base.duration = sim::milliseconds(smoke ? 15 : 40);
  sweep.base.drain = sim::milliseconds(10);
  sweep.base.workload.udp_interval = sim::microseconds(20);
  sweep.base.workload.payload_size = 128;
  sweep.directions = {orchestrator::FaultDirection::kBoth};
  sweep.replicates = smoke ? 1 : 3;
  sweep.faults.push_back(
      {nftape::cell("seu-%04X", 0x00FF), nftape::random_bit_flip_seu(0x00FF), ""});
  const auto runs = orchestrator::expand(sweep);

  // One pass of the sweep; the monitored arm folds every record into the
  // service. Event totals are per-run deterministic, so both arms must
  // agree exactly.
  const auto pass = [&runs](monitor::MonitorService* service, double& wall_s,
                            std::uint64_t& events) -> bool {
    orchestrator::RunnerConfig rc;
    rc.workers = 1;  // serial: wall time measures the hot path, not the pool
    if (service != nullptr) rc.sinks.push_back(service);
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = orchestrator::Runner(rc).run_all(runs);
    const auto t1 = std::chrono::steady_clock::now();
    wall_s = std::chrono::duration<double>(t1 - t0).count();
    events = 0;
    for (const auto& r : records) {
      if (r.outcome != orchestrator::RunOutcome::kOk) {
        std::fprintf(stderr, "monitor_overhead run %zu: %s\n", r.index,
                     std::string(orchestrator::to_string(r.outcome)).c_str());
        return false;
      }
      events += r.result.events_executed;
    }
    return true;
  };

  const int passes = smoke ? 1 : 3;
  double bare_wall = 0.0;
  double monitored_wall = 0.0;
  std::uint64_t bare_events = 0;
  std::uint64_t monitored_events = 0;
  monitor::MonitorService service;
  for (int i = 0; i < passes; ++i) {
    double wall = 0.0;
    std::uint64_t events = 0;
    if (!pass(nullptr, wall, events)) return 0;
    bare_wall = (i == 0) ? wall : std::min(bare_wall, wall);
    bare_events = events;
    if (!pass(&service, wall, events)) return 0;
    monitored_wall = (i == 0) ? wall : std::min(monitored_wall, wall);
    monitored_events = events;
  }

  if (monitored_events != bare_events) {
    std::fprintf(stderr,
                 "monitor_overhead: sink perturbed the run (%llu vs %llu "
                 "events)\n",
                 static_cast<unsigned long long>(monitored_events),
                 static_cast<unsigned long long>(bare_events));
    return 0;
  }
  // events/s ratio == inverse wall ratio (identical event totals).
  if (monitored_wall > bare_wall * 1.05) {
    std::fprintf(stderr,
                 "monitor_overhead: attached sink costs %.1f%% events/s "
                 "(budget 5%%): bare %.3fs vs monitored %.3fs\n",
                 (monitored_wall / bare_wall - 1.0) * 100.0, bare_wall,
                 monitored_wall);
    return 0;
  }
  return bare_events + monitored_events;
}

/// Scenario-hook overhead A/B: the same sweep twice — bare, and with an
/// empty (zero-step) scenario armed. Arming installs the protocol-layer
/// hooks (tx mutators on every NIC/switch port) even when no step ever
/// fires, so the armed-idle arm isolates the pure hook cost every
/// non-scenario campaign would pay if the hooks were unconditional. Event
/// totals must match exactly (idle hooks must not perturb the simulation)
/// and the armed arm must stay within 5% of the bare arm's events/s; any
/// violation reports 0 events, the harness's failure convention.
std::uint64_t scenario_scenario_overhead(bool smoke) {
  orchestrator::SweepSpec sweep;
  sweep.name = "scenario-overhead";
  sweep.testbed = standard_testbed();
  sweep.base.warmup = sim::milliseconds(10);
  sweep.base.duration = sim::milliseconds(smoke ? 15 : 40);
  sweep.base.drain = sim::milliseconds(10);
  sweep.base.workload.udp_interval = sim::microseconds(20);
  sweep.base.workload.payload_size = 128;
  sweep.directions = {orchestrator::FaultDirection::kBoth};
  sweep.replicates = smoke ? 1 : 3;
  sweep.faults.push_back(
      {nftape::cell("seu-%04X", 0x00FF), nftape::random_bit_flip_seu(0x00FF), ""});

  const auto pass = [](const std::vector<orchestrator::RunSpec>& runs,
                       double& wall_s, std::uint64_t& events) -> bool {
    orchestrator::RunnerConfig rc;
    rc.workers = 1;  // serial: wall time measures the hot path, not the pool
    const auto t0 = std::chrono::steady_clock::now();
    const auto records = orchestrator::Runner(rc).run_all(runs);
    const auto t1 = std::chrono::steady_clock::now();
    wall_s = std::chrono::duration<double>(t1 - t0).count();
    events = 0;
    for (const auto& r : records) {
      if (r.outcome != orchestrator::RunOutcome::kOk) {
        std::fprintf(stderr, "scenario_overhead run %zu: %s\n", r.index,
                     std::string(orchestrator::to_string(r.outcome)).c_str());
        return false;
      }
      events += r.result.events_executed;
    }
    return true;
  };

  const auto bare_runs = orchestrator::expand(sweep);
  sweep.base.scenario = scenario::ScenarioSpec{"idle", {}};
  const auto armed_runs = orchestrator::expand(sweep);

  const int passes = smoke ? 1 : 3;
  double bare_wall = 0.0;
  double armed_wall = 0.0;
  std::uint64_t bare_events = 0;
  std::uint64_t armed_events = 0;
  for (int i = 0; i < passes; ++i) {
    double wall = 0.0;
    std::uint64_t events = 0;
    if (!pass(bare_runs, wall, events)) return 0;
    bare_wall = (i == 0) ? wall : std::min(bare_wall, wall);
    bare_events = events;
    if (!pass(armed_runs, wall, events)) return 0;
    armed_wall = (i == 0) ? wall : std::min(armed_wall, wall);
    armed_events = events;
  }

  if (armed_events != bare_events) {
    std::fprintf(stderr,
                 "scenario_overhead: idle hooks perturbed the run (%llu vs "
                 "%llu events)\n",
                 static_cast<unsigned long long>(armed_events),
                 static_cast<unsigned long long>(bare_events));
    return 0;
  }
  // events/s ratio == inverse wall ratio (identical event totals).
  if (armed_wall > bare_wall * 1.05) {
    std::fprintf(stderr,
                 "scenario_overhead: installed-idle hooks cost %.1f%% "
                 "events/s (budget 5%%): bare %.3fs vs armed %.3fs\n",
                 (armed_wall / bare_wall - 1.0) * 100.0, bare_wall,
                 armed_wall);
    return 0;
  }
  return bare_events + armed_events;
}

/// Snapshot/fork A/B: N campaign replicates cold-started (fresh fabric +
/// full startup settle each) vs N forked from one captured settle. The
/// settle is made expensive relative to the measurement window (a 1 ms
/// mapping period packs hundreds of mapping rounds into the settle, while
/// the campaign itself spans ~4 ms), mirroring the sweeps snapshots exist
/// for — settle-dominated cells with many replicates each. Two hard
/// gates, both reported as 0 events (the harness's failure convention):
///   * every replicate's executed-event count must be identical between
///     arms — a fork that perturbs the simulation is a correctness bug,
///     not a slow path;
///   * the fork arm must be at least 1.5x faster than the cold arm
///     (best-of-N wall, interleaved passes).
std::uint64_t scenario_snapshot_fork(bool smoke) {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(1);
  config.map_reply_window = sim::microseconds(500);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  const sim::Duration settle = sim::milliseconds(smoke ? 300 : 600);
  const std::size_t replicates = 4;

  const auto spec_for = [](std::size_t replicate) {
    nftape::CampaignSpec spec;
    spec.name = "snapshot-fork";
    spec.program_via_serial = false;
    spec.program_guard = sim::microseconds(500);
    spec.disarm_guard = sim::microseconds(500);
    spec.warmup = sim::microseconds(500);
    spec.duration = sim::milliseconds(1);
    spec.drain = sim::microseconds(500);
    spec.workload.udp_interval = sim::microseconds(50);
    spec.workload.payload_size = 64;
    spec.fault_to_switch = nftape::random_bit_flip_seu(0x00FF);
    spec.seed = 0x5eed + replicate;
    return spec;
  };

  // One arm: returns per-replicate event counts, or empty on a cold-path
  // failure (never expected — no watchdog here).
  const auto cold_pass = [&](double& wall_s) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> events;
    for (std::size_t i = 0; i < replicates; ++i) {
      const auto fabric = nftape::make_fabric(nftape::Medium::kMyrinet, config);
      fabric->start();
      fabric->settle(settle);
      nftape::CampaignRunner runner(*fabric);
      events.push_back(runner.run(spec_for(i)).events_executed);
    }
    wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
    return events;
  };
  const auto fork_pass = [&](double& wall_s) {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> events;
    const auto fabric = nftape::make_fabric(nftape::Medium::kMyrinet, config);
    fabric->start();
    fabric->settle(settle);
    const auto snap = fabric->capture_snapshot();
    if (snap == nullptr) {
      std::fprintf(stderr, "snapshot_fork: fabric has no snapshot support\n");
      return events;  // empty = failure
    }
    nftape::CampaignRunner runner(*fabric);
    for (std::size_t i = 0; i < replicates; ++i) {
      fabric->restore_snapshot(*snap);
      events.push_back(runner.run(spec_for(i)).events_executed);
    }
    wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
    return events;
  };

  const int passes = smoke ? 1 : 3;
  double cold_wall = 0.0;
  double fork_wall = 0.0;
  std::vector<std::uint64_t> cold_events;
  std::vector<std::uint64_t> fork_events;
  for (int i = 0; i < passes; ++i) {
    double wall = 0.0;
    cold_events = cold_pass(wall);
    cold_wall = (i == 0) ? wall : std::min(cold_wall, wall);
    fork_events = fork_pass(wall);
    if (fork_events.empty()) return 0;
    fork_wall = (i == 0) ? wall : std::min(fork_wall, wall);
  }

  if (fork_events != cold_events) {
    std::fprintf(stderr,
                 "snapshot_fork: forked replicates perturbed the simulation "
                 "(per-replicate event counts differ from cold starts)\n");
    return 0;
  }
  const double speedup = cold_wall / fork_wall;
  std::fprintf(stderr,
               "snapshot_fork: %.2fx speedup (gate 1.5x): cold %.3fs vs "
               "fork %.3fs\n",
               speedup, cold_wall, fork_wall);
  if (speedup < 1.5) return 0;
  std::uint64_t total = 0;
  for (const auto e : cold_events) total += 2 * e;  // both arms, identical
  return total;
}

/// FC pass-through: the same saturating flood window realized over the
/// FcFabric — per-character ordered-set scanning, CRC-32, BB-credit
/// bookkeeping, and sequence reassembly are the hot path here, none of
/// which the Myrinet scenarios touch.
std::uint64_t scenario_fc_passthrough(bool smoke) {
  auto config = standard_testbed();
  config.fc.rx_processing_time = sim::microseconds(1);
  const auto fabric = nftape::make_fabric(nftape::Medium::kFc, config);
  fabric->start();
  fabric->settle(sim::milliseconds(10));

  nftape::CampaignSpec spec;
  spec.name = "fc-passthrough";
  spec.medium = nftape::Medium::kFc;
  spec.warmup = sim::milliseconds(5);
  spec.duration = sim::milliseconds(smoke ? 20 : 100);
  spec.drain = sim::milliseconds(5);
  spec.workload.udp_interval = sim::microseconds(12);
  spec.workload.payload_size = 256;
  spec.workload.burst_size = 4;
  spec.workload.jitter = 0.5;
  nftape::CampaignRunner runner(*fabric);
  (void)runner.run(spec);
  return fabric->sim().executed_events();
}

}  // namespace

int main(int argc, char** argv) {
  const auto options = hsfi::bench::parse_options(argc, argv);
  hsfi::bench::Harness harness(options);
  const bool smoke = options.smoke;
  harness.measure("passthrough", [smoke] { return scenario_passthrough(smoke); });
  harness.measure("sec431_throughput", [smoke] { return scenario_sec431(smoke); });
  harness.measure("seu_sweep", [smoke] { return scenario_seu_sweep(smoke); });
  harness.measure("manifestations",
                  [smoke] { return scenario_manifestations(smoke); });
  harness.measure("fc_passthrough",
                  [smoke] { return scenario_fc_passthrough(smoke); });
  harness.measure("monitor_overhead",
                  [smoke] { return scenario_monitor_overhead(smoke); });
  harness.measure("snapshot_fork",
                  [smoke] { return scenario_snapshot_fork(smoke); });
  harness.measure("scenario_overhead",
                  [smoke] { return scenario_scenario_overhead(smoke); });
  return harness.finish();
}
