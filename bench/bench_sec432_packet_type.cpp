// Reproduces §4.3.2, Myrinet packet type corruption:
//
//   Mapping packets (0x0005 -> 0x000x): "A node that receives the
//   corrupted packet is removed from the network... The node will remain
//   out of the network until the next mapping packet is received."
//
//   Data packets (0x0004): "the data packets are dropped by the receiving
//   node and not recognized as data packets. The internal network
//   structures, such as the routing table, remain unchanged."
//
//   Source route MSB: "the packet be 'consumed and handled as an error'...
//   The interface was observed to drop these packets without incident."
#include <cstdio>

#include "host/traffic.hpp"
#include "nftape/faults.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

int main() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(2);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));
  nftape::Report report("Packet type corruption (paper 4.3.2)");
  report.set_header({"experiment", "observed", "paper"});

  // ---- Mapping packet corruption -----------------------------------
  {
    bed.reset_to_known_good();
    bed.injector().apply(
        core::Direction::kRightToLeft,
        nftape::packet_type_corruption(myrinet::kTypeMapping, 0x0015));
    bed.settle(sim::milliseconds(250));  // a few corrupted mapping rounds
    const auto map_during = bed.host(2).mcp().network_map().size();
    host::UdpDatagram d;
    d.dst_port = 9;
    bed.host(1).send_udp(1, std::move(d));  // node 1 -> node 0
    const auto unroutable = bed.host(1).stats().drop_unroutable;
    const auto unknown = bed.host(0).stats().drop_unknown_type;
    // Remove the fault: the next round restores the node.
    core::InjectorConfig off;
    bed.injector().apply(core::Direction::kRightToLeft, off);
    bed.settle(sim::milliseconds(150));
    const auto map_after = bed.host(2).mcp().network_map().size();
    report.add_row(
        {"mapping type 0x0005 -> 0x0015 (into node 0)",
         nftape::cell("node 0 out of map (map=%zu); %llu sends unroutable; "
                      "%llu unknown-type drops; map=%zu after next round",
                      map_during, (unsigned long long)unroutable,
                      (unsigned long long)unknown, map_after),
         "removed from network until the next mapping packet"});
  }

  // ---- Data packet corruption ---------------------------------------
  {
    bed.reset_to_known_good();
    bed.injector().apply(
        core::Direction::kLeftToRight,
        nftape::packet_type_corruption(myrinet::kTypeData, 0x0014));
    host::UdpSink sink(bed.host(1), 9);
    host::UdpFlood::Config fc;
    fc.target = 2;
    fc.interval = sim::microseconds(100);
    fc.max_packets = 200;
    host::UdpFlood flood(bed.sim(), bed.host(0), fc);
    flood.start();
    bed.settle(sim::milliseconds(40));
    const auto delivered = sink.received();
    const auto unknown = bed.host(1).stats().drop_unknown_type;
    const auto map = bed.host(2).mcp().network_map().size();
    core::InjectorConfig off;
    bed.injector().apply(core::Direction::kLeftToRight, off);
    report.add_row(
        {"data type 0x0004 -> 0x0014 (node 0 -> node 1)",
         nftape::cell("%llu/200 delivered; %llu dropped unrecognized; "
                      "routing table intact (map=%zu)",
                      (unsigned long long)delivered,
                      (unsigned long long)unknown, map),
         "dropped, not recognized as data; routing table unchanged"});
  }

  // ---- Source route (marker MSB) corruption --------------------------
  {
    bed.reset_to_known_good();
    bed.settle(sim::milliseconds(150));  // re-map after previous faults
    bed.injector().apply(core::Direction::kLeftToRight,
                         nftape::marker_msb_corruption());
    host::UdpSink sink(bed.host(1), 9);
    host::UdpFlood::Config fc;
    fc.target = 2;
    fc.interval = sim::microseconds(100);
    fc.max_packets = 200;
    host::UdpFlood flood(bed.sim(), bed.host(0), fc);
    flood.start();
    bed.settle(sim::milliseconds(40));
    const auto marker_errors = bed.nic(1).stats().marker_errors;
    const auto delivered = sink.received();
    const auto crc = bed.nic(1).stats().crc_errors;
    core::InjectorConfig off;
    bed.injector().apply(core::Direction::kLeftToRight, off);
    // Confirm the node still works: no propagation, no delays.
    bed.settle(sim::milliseconds(5));
    host::UdpDatagram probe;
    probe.dst_port = 9;
    bed.host(0).send_udp(2, std::move(probe));
    bed.settle(sim::milliseconds(5));
    report.add_row(
        {"destination marker MSB set (node 0 -> node 1)",
         nftape::cell("%llu/200 consumed as errors; %llu delivered; "
                      "%llu CRC errors; node healthy after (delivered %llu)",
                      (unsigned long long)marker_errors,
                      (unsigned long long)delivered, (unsigned long long)crc,
                      (unsigned long long)sink.received()),
         "consumed and handled as an error, without incident"});
  }

  // ---- Misrouting (wrong switch port) ---------------------------------
  {
    bed.reset_to_known_good();
    // Corrupt the route byte: packets for port 1 go to dead port 6.
    core::InjectorConfig fault;
    fault.match_mode = core::MatchMode::kOn;
    fault.corrupt_mode = core::CorruptMode::kReplace;
    // Window [route 0x01][marker 0x00][type 0x00][type 0x04].
    fault.compare_data = 0x01000004;
    fault.compare_mask = 0xFFFFFFFF;
    fault.compare_ctl = 0x0;
    fault.compare_ctl_mask = 0xF;
    fault.corrupt_data = 0x06000000;
    fault.corrupt_mask = 0xFF000000;
    fault.crc_repatch = true;
    bed.injector().apply(core::Direction::kLeftToRight, fault);
    host::UdpSink at1(bed.host(1), 9);
    host::UdpSink at2(bed.host(2), 9);
    host::UdpFlood::Config fc;
    fc.target = 2;
    fc.interval = sim::microseconds(100);
    fc.max_packets = 100;
    host::UdpFlood flood(bed.sim(), bed.host(0), fc);
    flood.start();
    bed.settle(sim::milliseconds(40));
    const auto consumed = bed.network_switch().port_stats(0).invalid_route;
    core::InjectorConfig off;
    bed.injector().apply(core::Direction::kLeftToRight, off);
    report.add_row(
        {"route byte -> dead switch port",
         nftape::cell("%llu consumed at switch; delivered elsewhere: %llu; "
                      "no error propagation",
                      (unsigned long long)consumed,
                      (unsigned long long)(at1.received() + at2.received())),
         "expected packet losses; no bad data passed to a higher level"});
  }

  std::printf("%s", report.render().c_str());
  return 0;
}
