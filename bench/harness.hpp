// Benchmark-regression harness for the simulation kernel.
//
// Every scenario is a callable that builds its own testbed, runs a fixed
// deterministic workload, and returns the number of kernel events it
// executed. The harness times warm-up plus N repetitions, reports median
// and IQR events/sec and wall time, and writes the results in the stable
// BENCH_sim_kernel.json schema — a JSON array of flat records
//   {"bench": ..., "metric": ..., "value": ..., "unit": ..., "commit": ...}
// so numbers from different commits diff and join trivially (see README
// "Benchmarking").
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hsfi::bench {

struct Options {
  int reps = 5;     ///< measured repetitions per scenario
  int warmup = 1;   ///< unmeasured repetitions before timing starts
  bool smoke = false;  ///< shrink workloads (CI bench_smoke lane)
  std::string out_path;  ///< --out FILE: write the JSON records there
  std::string only;      ///< --bench NAME: run just that scenario
};

/// Parses --reps N / --warmup N / --smoke / --out FILE / --bench NAME /
/// --help. Prints usage and exits on malformed input.
[[nodiscard]] Options parse_options(int argc, char** argv);

/// Per-scenario aggregate over the measured repetitions.
struct Summary {
  std::string bench;
  int reps = 0;
  std::uint64_t events = 0;          ///< per repetition (identical across reps)
  double median_events_per_sec = 0;
  double iqr_events_per_sec = 0;     ///< Q3 - Q1 across repetitions
  double median_wall_s = 0;
};

/// `git rev-parse --short HEAD` (overridable via HSFI_COMMIT), else
/// "unknown" — stamped into every JSON record.
[[nodiscard]] std::string current_commit();

/// Writes the records for `summaries` to `path`. Returns false (with a
/// message on stderr) if the file cannot be written.
bool write_bench_json(const std::string& path,
                      const std::vector<Summary>& summaries,
                      const std::string& commit);

class Harness {
 public:
  explicit Harness(Options options);

  /// Runs `body` (warm-up + reps times) unless --bench filters it out.
  /// `body` returns the kernel events executed by that repetition; the
  /// harness checks the count is identical across repetitions, since a
  /// run-to-run difference means the scenario is not deterministic and its
  /// numbers are garbage.
  void measure(const std::string& name,
               const std::function<std::uint64_t()>& body);

  /// Renders the results table to stdout, writes the JSON file when --out
  /// was given, and returns the process exit code (non-zero when a
  /// scenario was nondeterministic or the file could not be written).
  int finish();

  [[nodiscard]] const std::vector<Summary>& summaries() const noexcept {
    return summaries_;
  }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  std::vector<Summary> summaries_;
  bool nondeterministic_ = false;
};

}  // namespace hsfi::bench
