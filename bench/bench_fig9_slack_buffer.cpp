// Reproduces Fig. 9: the Myrinet slack buffer. "When it reaches the high
// water mark, the buffer generates a STOP control symbol. Correspondingly,
// it generates a GO symbol upon reaching the low water mark."
//
// Two hosts contend for the same switch output; the loser's input slack
// fills until STOP, drains to the low watermark, GOes, and oscillates. The
// occupancy-versus-time series prints as an ASCII strip chart with the
// watermarks and the emitted flow symbols marked.
#include <cstdio>
#include <string>
#include <vector>

#include "host/traffic.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

int main() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));

  struct Sample {
    sim::SimTime when;
    std::size_t occupancy;
    std::optional<myrinet::ControlSymbol> emitted;
  };
  std::vector<Sample> series;
  auto& slack = bed.network_switch().input_slack(1);
  slack.set_probe([&series](sim::SimTime when, std::size_t occ,
                            std::optional<myrinet::ControlSymbol> emitted) {
    if (emitted || series.empty() ||
        when - series.back().when > sim::nanoseconds(200)) {
      series.push_back({when, occ, emitted});
    }
  });

  // Node 0 and node 1 both blast node 2; node 1's input loses arbitration
  // bursts and its slack buffer does the Fig. 9 dance.
  host::UdpSink sink(bed.host(2), 9);
  host::UdpFlood::Config f0;
  f0.target = 3;
  f0.interval = sim::microseconds(8);
  f0.payload_size = 512;
  f0.burst_size = 2;
  host::UdpFlood flood0(bed.sim(), bed.host(0), f0);
  host::UdpFlood::Config f1 = f0;
  f1.src_port = 2049;
  f1.seed = 7;
  host::UdpFlood flood1(bed.sim(), bed.host(1), f1);
  const sim::SimTime t0 = bed.sim().now();
  flood0.start();
  flood1.start();
  bed.settle(sim::microseconds(300));
  flood0.stop();
  flood1.stop();
  bed.settle(sim::milliseconds(1));

  const auto& cfg = slack.config();
  std::printf("Fig. 9: slack buffer of switch input port 1\n");
  std::printf("capacity=%zu high-watermark=%zu low-watermark=%zu\n\n",
              cfg.capacity, cfg.high_watermark, cfg.low_watermark);
  std::printf("%-12s %-6s %-42s %s\n", "time", "occ", "occupancy", "flow");
  const double scale = 40.0 / static_cast<double>(cfg.capacity);
  int stops = 0;
  int gos = 0;
  for (const auto& s : series) {
    if (s.when < t0) continue;
    std::string bar(static_cast<std::size_t>(
                        static_cast<double>(s.occupancy) * scale),
                    '#');
    bar.resize(40, ' ');
    bar[static_cast<std::size_t>(
        static_cast<double>(cfg.high_watermark) * scale)] = 'H';
    bar[static_cast<std::size_t>(
        static_cast<double>(cfg.low_watermark) * scale)] = 'L';
    const char* mark = "";
    if (s.emitted == myrinet::ControlSymbol::kStop) {
      mark = "<== STOP";
      ++stops;
    } else if (s.emitted == myrinet::ControlSymbol::kGo) {
      mark = "<== GO";
      ++gos;
    } else if (s.emitted) {
      continue;  // refresh STOPs would flood the chart
    }
    if (s.emitted || s.occupancy > 0) {
      std::printf("%-12s %-6zu|%s| %s\n",
                  sim::format_time(s.when - t0).c_str(), s.occupancy,
                  bar.c_str(), mark);
    }
  }
  std::printf("\nSTOP transitions: %d, GO transitions: %d "
              "(STOP at the high watermark, GO at the low watermark,\n"
              "exactly the Fig. 9 behavior; refresh STOPs suppressed "
              "from the chart)\n", stops, gos);
  std::printf("messages delivered under flow control: %llu (no loss: "
              "sender paused instead of overflowing)\n",
              (unsigned long long)sink.received());
  return 0;
}
