// Ablations of the design choices DESIGN.md calls out:
//
// 1. Pipeline depth vs added latency (paper footnote 5: "The latency
//    depends greatly on the VHDL designer's ability to meet timing
//    constraints without pipelining the inject logic excessively") — the
//    measured one-way latency through the device tracks latency_chars
//    linearly.
//
// 2. Slack-buffer STOP refresh vs none: without refresh, the sender-side
//    16-character-period decay reopens the gate while the buffer is still
//    above the low watermark, and the slack overflows under contention —
//    why the real interface broadcasts its flow state continuously.
#include <cstdio>

#include "host/traffic.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

namespace {

double measure_latency_ns(std::size_t latency_chars) {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  config.injector_config.fifo.latency_chars = latency_chars;
  config.injector_config.fifo.fifo_capacity = latency_chars * 3 + 8;
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));

  sim::SimTime delivered_at = 0;
  bed.host(1).bind(9, [&](host::HostId, const host::UdpDatagram&,
                          sim::SimTime when) { delivered_at = when; });
  host::UdpDatagram d;
  d.dst_port = 9;
  d.payload.assign(16, 0x42);
  const sim::SimTime sent_at = bed.sim().now();
  bed.host(0).send_udp(2, std::move(d));
  bed.settle(sim::milliseconds(5));
  return sim::to_nanoseconds(delivered_at - sent_at);
}

struct FlowAblation {
  std::uint64_t slack_overflow = 0;
  std::uint64_t crc_errors = 0;
  std::uint64_t delivered = 0;
};

FlowAblation measure_flow(bool with_refresh) {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  config.switch_config.slack.stop_refresh =
      with_refresh ? sim::nanoseconds(100) : 0;
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));

  host::UdpSink sink(bed.host(2), 9);
  std::vector<std::unique_ptr<host::UdpFlood>> floods;
  for (std::size_t i = 0; i < 2; ++i) {  // nodes 0 and 1 blast node 2
    host::UdpFlood::Config fc;
    fc.target = 3;
    fc.interval = sim::microseconds(10);
    fc.payload_size = 512;
    fc.burst_size = 4;
    fc.jitter = 0.4;
    fc.seed = 11 + i;
    floods.push_back(
        std::make_unique<host::UdpFlood>(bed.sim(), bed.host(i), fc));
  }
  for (auto& f : floods) f->start();
  bed.settle(sim::milliseconds(100));
  for (auto& f : floods) f->stop();
  bed.settle(sim::milliseconds(5));

  FlowAblation out;
  for (std::size_t p = 0; p < 3; ++p) {
    out.slack_overflow +=
        bed.network_switch().port_stats(p).slack_overflow;
  }
  out.crc_errors = bed.nic(2).stats().crc_errors;
  out.delivered = sink.received();
  return out;
}

}  // namespace

int main() {
  nftape::Report depth("Ablation: inject pipeline depth vs one-way latency "
                       "(paper footnote 5)");
  depth.set_header({"latency_chars", "one-way delivery latency",
                    "nominal device latency"});
  double base = 0;
  for (const std::size_t chars : {4u, 8u, 20u, 40u, 80u}) {
    const double ns = measure_latency_ns(chars);
    if (chars == 4) base = ns;
    depth.add_row({nftape::cell("%zu", chars), nftape::cell("%.1f ns", ns),
                   nftape::cell("%.1f ns (+%.1f vs depth 4)",
                                static_cast<double>(chars) * 12.5,
                                ns - base)});
  }
  depth.add_note("20 characters = the paper's ~250 ns at 640 Mb/s; latency "
                 "scales linearly with pipeline depth");
  std::printf("%s\n", depth.render().c_str());

  nftape::Report flow("Ablation: slack-buffer STOP refresh");
  flow.set_header({"configuration", "slack overflow (symbols)",
                   "CRC errors at receiver", "messages delivered"});
  for (const bool refresh : {true, false}) {
    std::printf("running convergecast %s STOP refresh...\n",
                refresh ? "with" : "without");
    const auto r = measure_flow(refresh);
    flow.add_row({refresh ? "refresh every 8 characters" : "no refresh",
                  nftape::cell("%llu", (unsigned long long)r.slack_overflow),
                  nftape::cell("%llu", (unsigned long long)r.crc_errors),
                  nftape::cell("%llu", (unsigned long long)r.delivered)});
  }
  flow.add_note("without refresh the sender's 16-character decay defeats "
                "STOP while the buffer is still full; the real interface "
                "interleaves its flow state continuously");
  std::printf("\n%s", flow.render().c_str());
  return 0;
}
