// Schema check for BENCH_sim_kernel.json: a JSON array of flat records
//   {"bench": str, "metric": str, "value": number, "unit": str, "commit": str}
// Exactly these five keys, in this order (the file is machine-written, so
// ordering is part of the stable schema), at least one record, and every
// (bench, metric) pair unique. Exit 0 on pass; nonzero with a message
// naming the byte offset on any violation.
//
// A hand-rolled validator because the container has no JSON library — and
// the point is to fail when the writer drifts, not to accept all of JSON.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace {

class Checker {
 public:
  explicit Checker(std::string text) : text_(std::move(text)) {}

  bool run() {
    skip_ws();
    if (!expect('[')) return false;
    std::size_t records = 0;
    skip_ws();
    if (peek() != ']') {
      do {
        if (!record()) return false;
        ++records;
        skip_ws();
      } while (consume(','));
    }
    if (!expect(']')) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing data after array");
    if (records == 0) return fail("no records");
    return true;
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool expect(char c) {
    if (consume(c)) return true;
    std::ostringstream msg;
    msg << "expected '" << c << "'";
    return fail(msg.str());
  }
  bool fail(const std::string& why) {
    std::fprintf(stderr, "schema violation at byte %zu: %s\n", pos_,
                 why.c_str());
    return false;
  }

  /// JSON string; escapes pass through unvalidated beyond \" handling —
  /// the writer only ever emits \" \\ \n and ASCII.
  bool string_value(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (++pos_ >= text_.size()) return fail("unterminated escape");
      }
      out->push_back(text_[pos_++]);
    }
    return expect('"');
  }

  bool number_value() {
    skip_ws();
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start || text_[start] == '.') return fail("expected a number");
    return true;
  }

  bool field(const char* name, std::string* out) {
    std::string key;
    if (!string_value(&key)) return false;
    if (key != name) {
      return fail("expected key \"" + std::string(name) + "\", got \"" + key +
                  "\"");
    }
    if (!expect(':')) return false;
    return out != nullptr ? string_value(out) : number_value();
  }

  bool record() {
    if (!expect('{')) return false;
    std::string bench, metric, unit, commit;
    if (!field("bench", &bench) || !consume(',')) {
      return fail("record must be {bench, metric, value, unit, commit}");
    }
    if (!field("metric", &metric) || !consume(',')) {
      return fail("record must be {bench, metric, value, unit, commit}");
    }
    if (!field("value", nullptr) || !consume(',')) {
      return fail("record must be {bench, metric, value, unit, commit}");
    }
    if (!field("unit", &unit) || !consume(',')) {
      return fail("record must be {bench, metric, value, unit, commit}");
    }
    if (!field("commit", &commit)) return false;
    if (!expect('}')) return false;
    if (bench.empty() || metric.empty() || unit.empty() || commit.empty()) {
      return fail("empty string field in record");
    }
    if (!seen_.insert(bench + "\x1f" + metric).second) {
      return fail("duplicate (bench, metric) pair: " + bench + "/" + metric);
    }
    return true;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::set<std::string> seen_;
};

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: bench_json_check FILE\n");
    return 2;
  }
  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Checker checker(buffer.str());
  if (!checker.run()) {
    std::fprintf(stderr, "%s: FAILED schema check\n", argv[1]);
    return 1;
  }
  std::printf("%s: ok\n", argv[1]);
  return 0;
}
