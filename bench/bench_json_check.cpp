// Schema check for BENCH_sim_kernel.json: a JSON array of flat records
//   {"bench": str, "metric": str, "value": number, "unit": str, "commit": str}
// Exactly these five keys, in this order (the file is machine-written, so
// ordering is part of the stable schema), at least one record, and every
// (bench, metric) pair unique. Exit 0 on pass; nonzero with a message
// naming the byte offset on any violation.
//
// Gate mode:  bench_json_check --gate BASELINE FRESH [--max-regress PCT]
// schema-checks both files, then compares every events_per_sec_median the
// files share: a fresh value more than PCT percent (default 20) below the
// committed baseline fails. Benches present in only one file are skipped
// (the smoke lane and the full-scale baseline need not run identical
// scenario sets), as are zero medians (a smoke configuration that executed
// no kernel events has nothing to compare). This is the CI tripwire that
// keeps the batched symbol path from silently regressing.
//
// A hand-rolled validator because the container has no JSON library — and
// the point is to fail when the writer drifts, not to accept all of JSON.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace {

class Checker {
 public:
  explicit Checker(std::string text) : text_(std::move(text)) {}

  bool run() {
    skip_ws();
    if (!expect('[')) return false;
    std::size_t records = 0;
    skip_ws();
    if (peek() != ']') {
      do {
        if (!record()) return false;
        ++records;
        skip_ws();
      } while (consume(','));
    }
    if (!expect(']')) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing data after array");
    if (records == 0) return fail("no records");
    return true;
  }

  /// (bench, metric) -> value for every record seen by run().
  [[nodiscard]] const std::map<std::pair<std::string, std::string>, double>&
  values() const noexcept {
    return values_;
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  bool expect(char c) {
    if (consume(c)) return true;
    std::ostringstream msg;
    msg << "expected '" << c << "'";
    return fail(msg.str());
  }
  bool fail(const std::string& why) {
    std::fprintf(stderr, "schema violation at byte %zu: %s\n", pos_,
                 why.c_str());
    return false;
  }

  /// JSON string; escapes pass through unvalidated beyond \" handling —
  /// the writer only ever emits \" \\ \n and ASCII.
  bool string_value(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (++pos_ >= text_.size()) return fail("unterminated escape");
      }
      out->push_back(text_[pos_++]);
    }
    return expect('"');
  }

  bool number_value(double* out) {
    skip_ws();
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (pos_ == start || text_[start] == '.') return fail("expected a number");
    *out = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  bool field(const char* name, std::string* out, double* num = nullptr) {
    std::string key;
    if (!string_value(&key)) return false;
    if (key != name) {
      return fail("expected key \"" + std::string(name) + "\", got \"" + key +
                  "\"");
    }
    if (!expect(':')) return false;
    return out != nullptr ? string_value(out) : number_value(num);
  }

  bool record() {
    if (!expect('{')) return false;
    std::string bench, metric, unit, commit;
    double value = 0;
    if (!field("bench", &bench) || !consume(',')) {
      return fail("record must be {bench, metric, value, unit, commit}");
    }
    if (!field("metric", &metric) || !consume(',')) {
      return fail("record must be {bench, metric, value, unit, commit}");
    }
    if (!field("value", nullptr, &value) || !consume(',')) {
      return fail("record must be {bench, metric, value, unit, commit}");
    }
    if (!field("unit", &unit) || !consume(',')) {
      return fail("record must be {bench, metric, value, unit, commit}");
    }
    if (!field("commit", &commit)) return false;
    if (!expect('}')) return false;
    if (bench.empty() || metric.empty() || unit.empty() || commit.empty()) {
      return fail("empty string field in record");
    }
    if (!seen_.insert(bench + "\x1f" + metric).second) {
      return fail("duplicate (bench, metric) pair: " + bench + "/" + metric);
    }
    values_[{bench, metric}] = value;
    return true;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::set<std::string> seen_;
  std::map<std::pair<std::string, std::string>, double> values_;
};

bool load_and_check(const char* path, Checker** out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto* checker = new Checker(buffer.str());
  if (!checker->run()) {
    std::fprintf(stderr, "%s: FAILED schema check\n", path);
    delete checker;
    return false;
  }
  *out = checker;
  return true;
}

int gate(const char* baseline_path, const char* fresh_path,
         double max_regress_pct) {
  Checker* baseline = nullptr;
  Checker* fresh = nullptr;
  if (!load_and_check(baseline_path, &baseline)) return 1;
  if (!load_and_check(fresh_path, &fresh)) {
    delete baseline;
    return 1;
  }
  const std::string metric = "events_per_sec_median";
  const double floor_factor = 1.0 - max_regress_pct / 100.0;
  std::size_t compared = 0;
  std::size_t regressed = 0;
  for (const auto& [key, base_value] : baseline->values()) {
    if (key.second != metric) continue;
    const auto it = fresh->values().find(key);
    if (it == fresh->values().end()) continue;  // bench not in this lane
    const double fresh_value = it->second;
    if (base_value <= 0 || fresh_value <= 0) continue;  // nothing measured
    ++compared;
    const double ratio = fresh_value / base_value;
    const bool bad = fresh_value < base_value * floor_factor;
    std::printf("%-20s %12.1f -> %12.1f events/s (%.0f%% of baseline)%s\n",
                key.first.c_str(), base_value, fresh_value, ratio * 100.0,
                bad ? "  REGRESSION" : "");
    if (bad) ++regressed;
  }
  delete baseline;
  delete fresh;
  if (compared == 0) {
    std::fprintf(stderr, "gate: no comparable %s entries\n", metric.c_str());
    return 1;
  }
  if (regressed != 0) {
    std::fprintf(stderr,
                 "gate: %zu/%zu benches regressed more than %.0f%% below "
                 "the committed baseline\n",
                 regressed, compared, max_regress_pct);
    return 1;
  }
  std::printf("gate: %zu benches within %.0f%% of baseline\n", compared,
              max_regress_pct);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--gate") == 0) {
    if (argc != 4 && argc != 6) {
      std::fprintf(stderr,
                   "usage: bench_json_check --gate BASELINE FRESH "
                   "[--max-regress PCT]\n");
      return 2;
    }
    double pct = 20.0;
    if (argc == 6) {
      if (std::strcmp(argv[4], "--max-regress") != 0) {
        std::fprintf(stderr, "unknown option %s\n", argv[4]);
        return 2;
      }
      pct = std::strtod(argv[5], nullptr);
      if (pct <= 0 || pct >= 100) {
        std::fprintf(stderr, "--max-regress must be in (0, 100)\n");
        return 2;
      }
    }
    return gate(argv[2], argv[3], pct);
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: bench_json_check FILE\n"
                 "       bench_json_check --gate BASELINE FRESH "
                 "[--max-regress PCT]\n");
    return 2;
  }
  Checker* checker = nullptr;
  if (!load_and_check(argv[1], &checker)) return 1;
  delete checker;
  std::printf("%s: ok\n", argv[1]);
  return 0;
}
