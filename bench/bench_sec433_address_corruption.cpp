// Reproduces §4.3.3, physical address corruption, including Fig. 11's
// before/after network maps:
//
//   destination corruption -> dropped by "the incorrect CRC-8";
//   sender's address corruption -> "unreachable to all Ethernet-based
//     network traffic" while mapping stays intact;
//   address corrupted to the controller's -> "the routing table to become
//     badly corrupted... each subsequent mapping attempt resulted in a
//     similarly damaged map";
//   address corrupted to a non-existent one -> "analogous to removing a
//     computer and replacing it with another".
#include <cstdio>

#include "host/ping.hpp"
#include "host/traffic.hpp"
#include "myrinet/mmon.hpp"
#include "nftape/faults.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

int main() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(2);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));
  nftape::Report report("Physical address corruption (paper 4.3.3)");
  report.set_header({"experiment", "observed", "paper"});

  // ---- Destination corruption ----------------------------------------
  {
    bed.reset_to_known_good();
    bed.injector().apply(core::Direction::kLeftToRight,
                         nftape::destination_eth_corruption(0x02, 0x03));
    host::UdpSink at1(bed.host(1), 9);
    host::UdpSink at2(bed.host(2), 9);
    host::UdpFlood::Config fc;
    fc.target = 2;
    fc.interval = sim::microseconds(100);
    fc.max_packets = 100;
    host::UdpFlood flood(bed.sim(), bed.host(0), fc);
    flood.start();
    bed.settle(sim::milliseconds(40));
    core::InjectorConfig off;
    bed.injector().apply(core::Direction::kLeftToRight, off);
    report.add_row(
        {"destination addr -> another node's (no CRC repair)",
         nftape::cell("intended got %llu, other got %llu, CRC-8 drops %llu",
                      (unsigned long long)at1.received(),
                      (unsigned long long)at2.received(),
                      (unsigned long long)bed.nic(1).stats().crc_errors),
         "dropped, received by neither: \"the incorrect CRC-8\""});
  }

  // ---- Sender's address corruption ------------------------------------
  {
    bed.reset_to_known_good();
    bed.settle(sim::milliseconds(120));
    bed.host(1).enable_echo();
    bed.injector().apply(core::Direction::kLeftToRight,
                         nftape::sender_eth_corruption(0x01, 2, 1, 0x03));
    host::Pinger::Config pc;
    pc.target = 2;
    pc.max_packets = 30;
    pc.timeout = sim::milliseconds(2);
    host::Pinger ping(bed.sim(), bed.host(0), pc);
    ping.start();
    bed.settle(sim::milliseconds(200));
    core::InjectorConfig off;
    bed.injector().apply(core::Direction::kLeftToRight, off);
    report.add_row(
        {"node 0's source addr -> node 2's (CRC repaired)",
         nftape::cell("echo replies %llu/30; misaddressed drops at node 2: "
                      "%llu; map intact (%zu nodes)",
                      (unsigned long long)ping.results().received,
                      (unsigned long long)bed.host(2).stats().drop_misaddressed,
                      bed.host(2).mcp().network_map().size()),
         "unreachable to Ethernet traffic; mapping unchanged"});
  }

  // ---- Address corrupted to the controller's (Fig. 11) ----------------
  {
    bed.reset_to_known_good();
    bed.settle(sim::milliseconds(150));
    std::printf("=== Fig. 11, before: network map in the normal state ===\n%s\n",
                myrinet::render_map(bed.host(2).mcp().network_map()).c_str());
    bed.injector().apply(core::Direction::kLeftToRight,
                         nftape::mcp_reply_address_corruption(0x20, 0x00, 0x20));
    for (int attempt = 1; attempt <= 3; ++attempt) {
      bed.settle(sim::milliseconds(100));
      std::printf("=== Fig. 11, after: damaged map, attempt %d ===\n%s\n",
                  attempt,
                  myrinet::render_map(bed.host(2).mcp().network_map()).c_str());
    }
    const auto confused = bed.host(2).mcp().stats().confused_rounds;
    core::InjectorConfig off;
    bed.injector().apply(core::Direction::kLeftToRight, off);
    bed.settle(sim::milliseconds(150));
    report.add_row(
        {"node 0's MCP addr -> controller's 0x2020",
         nftape::cell("%llu confused mapping rounds, map damaged "
                      "differently each attempt (printed above); consistent "
                      "again after removal (%zu nodes)",
                      (unsigned long long)confused,
                      bed.host(2).mcp().network_map().size()),
         "badly corrupted routing table; \"not static... similarly damaged\""});
  }

  // ---- Address corrupted to a non-existent one ------------------------
  {
    bed.reset_to_known_good();
    bed.settle(sim::milliseconds(120));
    bed.injector().apply(core::Direction::kLeftToRight,
                         nftape::mcp_reply_address_corruption(0x20, 0x00, 0x99));
    bed.settle(sim::milliseconds(150));
    const auto& map = bed.host(2).mcp().network_map();
    char observed[160];
    std::snprintf(observed, sizeof observed,
                  "map still has %zu entries; port 0 now claims MCP 0x2099 "
                  "(\"machine swapped\"); old identity gone",
                  map.size());
    core::InjectorConfig off;
    bed.injector().apply(core::Direction::kLeftToRight, off);
    bed.settle(sim::milliseconds(150));
    report.add_row({"node 0's MCP addr -> non-existent 0x2099", observed,
                    "routing table updated; like replacing the computer"});
  }

  std::printf("%s", report.render().c_str());
  return 0;
}
