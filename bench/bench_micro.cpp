// Google-benchmark microbenchmarks for the hot datapath pieces: the
// Myrinet CRC-8 (recomputed per hop per byte), the FC CRC-32, the 8b/10b
// codec (one invocation per transmitted character), the FIFO injector's
// per-character clock, and the UDP one's-complement checksum.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/fifo_injector.hpp"
#include "fc/crc32.hpp"
#include "fc/enc8b10b.hpp"
#include "host/udp.hpp"
#include "myrinet/crc8.hpp"

namespace {

std::vector<std::uint8_t> make_bytes(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::uint8_t>(i * 37);
  return v;
}

void BM_Crc8(benchmark::State& state) {
  const auto bytes = make_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsfi::myrinet::crc8(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc8)->Arg(64)->Arg(256)->Arg(2048);

void BM_Crc32(benchmark::State& state) {
  const auto bytes = make_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsfi::fc::crc32(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(64)->Arg(2048);

void BM_Encode8b10b(benchmark::State& state) {
  auto rd = hsfi::fc::Disparity::kMinus;
  std::uint8_t v = 0;
  for (auto _ : state) {
    const auto enc = hsfi::fc::encode_8b10b(hsfi::fc::Char8{v++, false}, rd);
    rd = enc->rd;
    benchmark::DoNotOptimize(enc->code);
  }
}
BENCHMARK(BM_Encode8b10b);

void BM_Decode8b10b(benchmark::State& state) {
  // Pre-encode a cycle of groups to decode.
  std::vector<std::uint16_t> groups;
  auto rd = hsfi::fc::Disparity::kMinus;
  for (int v = 0; v < 256; ++v) {
    const auto enc = hsfi::fc::encode_8b10b(
        hsfi::fc::Char8{static_cast<std::uint8_t>(v), false}, rd);
    groups.push_back(enc->code);
    rd = enc->rd;
  }
  std::size_t i = 0;
  rd = hsfi::fc::Disparity::kMinus;
  for (auto _ : state) {
    const auto dec = hsfi::fc::decode_8b10b(groups[i], rd);
    rd = dec.rd;
    benchmark::DoNotOptimize(dec.character.value);
    if (++i == groups.size()) {
      i = 0;
      rd = hsfi::fc::Disparity::kMinus;
    }
  }
}
BENCHMARK(BM_Decode8b10b);

void BM_FifoInjectorClock(benchmark::State& state) {
  hsfi::core::FifoInjector injector;
  auto& cfg = injector.config();
  cfg.match_mode = hsfi::core::MatchMode::kOn;
  cfg.compare_data = 0x00001818;
  cfg.compare_mask = 0x0000FFFF;
  cfg.corrupt_data = 0x00000100;
  std::uint8_t v = 0;
  for (auto _ : state) {
    const auto r = injector.clock(hsfi::link::data_symbol(v++));
    benchmark::DoNotOptimize(r.matched);
  }
  // Each iteration is one character = 12.5 ns of 80 MB/s wire time; report
  // the realized simulation speedup over real time.
  state.counters["chars/s"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FifoInjectorClock);

void BM_UdpChecksum(benchmark::State& state) {
  const auto bytes = make_bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hsfi::host::ones_complement_checksum(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_UdpChecksum)->Arg(64)->Arg(1472);

}  // namespace

BENCHMARK_MAIN();
