// SEU-rate sweep (paper §3.1: "Random faults causing bit flip errors for
// system availability and fault tolerance characterization under SEU
// conditions").
//
// The injector's LFSR trigger thins an all-match compare to a configurable
// random rate; each rate runs a full campaign. Expected shape: message
// loss grows with the upset rate, and essentially every surviving upset is
// caught by the link CRC-8 (raw bit flips are exactly what it protects
// against) — the network fails silent, never dirty, matching the paper's
// "passive faults" conclusion in §4.4.
//
// Runs through the orchestrator worker pool (one private testbed per rate
// point), so the sweep scales with cores and every row is seeded
// independently of execution order.
#include <cstdio>

#include "nftape/faults.hpp"
#include "nftape/report.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"

using namespace hsfi;

int main() {
  const struct {
    std::uint16_t mask;
    const char* rate;
  } points[] = {
      {0x3FFF, "1/16384 chars"}, {0x0FFF, "1/4096 chars"},
      {0x03FF, "1/1024 chars"},  {0x00FF, "1/256 chars"},
      {0x003F, "1/64 chars"},
  };

  orchestrator::SweepSpec sweep;
  sweep.name = "seu";
  sweep.testbed.map_period = sim::milliseconds(100);
  sweep.testbed.nic_config.rx_processing_time = sim::microseconds(1);
  sweep.testbed.send_stack_time = sim::microseconds(1);
  sweep.base.warmup = sim::milliseconds(10);
  sweep.base.duration = sim::milliseconds(150);
  sweep.base.drain = sim::milliseconds(10);
  sweep.base.workload.udp_interval = sim::microseconds(20);
  sweep.base.workload.payload_size = 128;
  sweep.directions = {orchestrator::FaultDirection::kBoth};
  for (const auto& point : points) {
    sweep.faults.push_back({nftape::cell("seu-%04X", point.mask),
                            nftape::random_bit_flip_seu(point.mask), ""});
  }

  const auto runs = orchestrator::expand(sweep);
  orchestrator::RunnerConfig rc;
  rc.on_progress = [](const orchestrator::Progress& p) {
    std::fprintf(stderr, "\r%zu/%zu campaigns done   ", p.completed + p.failed,
                 p.total);
  };
  const auto records = orchestrator::Runner(rc).run_all(runs);
  std::fprintf(stderr, "\n");

  nftape::Report report("Random SEU injection sweep (paper 3.1 fault model)");
  report.set_header({"LFSR mask", "~flip rate", "injections", "sent",
                     "received", "loss", "CRC-8 drops", "delivered dirty"});
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i].result;
    if (records[i].outcome != orchestrator::RunOutcome::kOk) {
      report.add_row({nftape::cell("0x%04X", points[i].mask), points[i].rate,
                      std::string(orchestrator::to_string(records[i].outcome)),
                      "-", "-", "-", "-", "-"});
      continue;
    }
    // "Dirty" deliveries would be upsets that slipped past every check —
    // corrupted payload handed to the application. The checksum layers
    // make these effectively impossible; anything not accounted to a
    // detector below is ordinary loss, not dirt, but we report the bound.
    const std::uint64_t detected = r.link_crc_errors + r.udp_checksum_drops +
                                   r.marker_errors + r.unknown_type_drops;
    report.add_row({nftape::cell("0x%04X", points[i].mask), points[i].rate,
                    nftape::cell("%llu", (unsigned long long)r.injections),
                    nftape::cell("%llu", (unsigned long long)r.messages_sent),
                    nftape::cell("%llu", (unsigned long long)r.messages_received),
                    nftape::cell("%.2f%%", 100.0 * r.loss_rate()),
                    nftape::cell("%llu", (unsigned long long)r.link_crc_errors),
                    detected >= r.injections
                        ? "0 (all detected)"
                        : nftape::cell("<= %llu",
                                       (unsigned long long)(r.injections -
                                                            detected))});
  }
  report.add_note("all faults observed were passive (paper 4.4): \"Data "
                  "were dropped and lost, but not incorrectly passed on\"");
  std::printf("\n%s", report.render().c_str());
  return 0;
}
