// Reproduces the §4.3.1 prose results:
//
//   STOP condition: "in one test run, the test program received 5038
//   messages in a one minute period, a decrease of almost 90% from the
//   48000 messages received under normal conditions."
//
//   GAP loss: "the path followed by the packet will remain occupied...
//   The network will recover from this occurance with a long-period
//   timeout (~50ms at a data rate of 80MB/s)... This timeout process
//   causes the throughput of the network to drop significantly... to
//   around 12% of the normal throughput."
//
// The monitored metric is the paper's: messages received by one test
// program (on node 1, listening to the flow that crosses the injected
// link), scaled to a one-minute rate.
#include <cstdio>

#include "myrinet/control.hpp"
#include "nftape/faults.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"
#include "host/traffic.hpp"

using namespace hsfi;
using myrinet::ControlSymbol;

namespace {

constexpr sim::Duration kWindow = sim::milliseconds(400);

struct Condition {
  const char* name;
  std::optional<core::InjectorConfig> fault;  // applied both directions
  /// Sender-side STOP decay. The default 16 character periods models a
  /// quiet reverse channel; the erroneous-STOP experiment uses a large
  /// value to model the paper-literal "any received symbol resets the
  /// counter" on a busy link, where the timeout effectively never fires.
  sim::Duration short_timeout = sim::picoseconds(12'500) * 16;
};

struct Rates {
  std::uint64_t monitored = 0;  ///< node 0 -> node 1, across the injector
  std::uint64_t network = 0;    ///< all flows
};

Rates run_condition(const Condition& condition) {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(2);
  config.send_stack_time = sim::microseconds(1);
  config.switch_config.short_timeout = condition.short_timeout;
  config.nic_config.short_timeout = condition.short_timeout;
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));
  if (condition.fault) {
    bed.injector().apply(core::Direction::kLeftToRight, *condition.fault);
    bed.injector().apply(core::Direction::kRightToLeft, *condition.fault);
  }

  // The "test program": node 1 counting messages from node 0 (the flow
  // that crosses the injected link); background all-to-all load.
  host::UdpSink test_program(bed.host(1), 9);
  std::uint64_t monitored = 0;
  test_program.on_receive([&monitored](host::HostId src,
                                       const host::UdpDatagram&,
                                       sim::SimTime) {
    if (src == 1) ++monitored;  // only node 0's messages
  });
  std::vector<std::unique_ptr<host::UdpSink>> other_sinks;
  other_sinks.push_back(std::make_unique<host::UdpSink>(bed.host(0), 9));
  other_sinks.push_back(std::make_unique<host::UdpSink>(bed.host(2), 9));
  std::vector<std::unique_ptr<host::UdpFlood>> floods;
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      host::UdpFlood::Config fc;
      fc.target = static_cast<host::HostId>(j + 1);
      fc.interval = sim::microseconds(12);
      fc.payload_size = 256;
      fc.burst_size = 4;
      fc.jitter = 0.5;
      fc.seed = 40 + i * 8 + j;
      fc.src_port = static_cast<std::uint16_t>(5000 + i * 8 + j);
      floods.push_back(
          std::make_unique<host::UdpFlood>(bed.sim(), bed.host(i), fc));
    }
  }
  for (auto& f : floods) f->start();
  bed.settle(sim::milliseconds(20));
  const std::uint64_t monitored_before = monitored;
  std::uint64_t network_before = test_program.received();
  for (auto& s : other_sinks) network_before += s->received();
  bed.settle(kWindow);
  for (auto& f : floods) f->stop();
  Rates r;
  r.monitored = monitored - monitored_before;
  std::uint64_t network_after = test_program.received();
  for (auto& s : other_sinks) network_after += s->received();
  r.network = network_after - network_before;
  return r;
}

std::uint64_t per_minute(std::uint64_t in_window) {
  return in_window * 60'000 / static_cast<std::uint64_t>(
                                  sim::to_milliseconds(kWindow));
}

}  // namespace

int main() {
  // Erroneous-STOP condition: every GO toward the stopped sender is
  // corrupted into STOP on both directions of the injected link, at every
  // occurrence (stride 1), under busy-channel decay semantics.
  auto stop_fault =
      nftape::control_symbol_corruption(ControlSymbol::kGo, ControlSymbol::kStop);
  stop_fault.compare_stride = 1;
  // GAP loss: every packet-terminating GAP disappears; held paths are
  // reclaimed only by the ~50 ms long-period timeout.
  auto gap_fault =
      nftape::control_symbol_corruption(ControlSymbol::kGap, ControlSymbol::kIdle);
  gap_fault.compare_stride = 1;

  const Condition conditions[] = {
      {"normal", std::nullopt, sim::picoseconds(12'500) * 16},
      {"faulty STOP condition (GO->STOP)", stop_fault,
       sim::milliseconds(50)},
      {"GAP loss (GAP->IDLE)", gap_fault, sim::picoseconds(12'500) * 16},
  };

  nftape::Report report("Throughput under flow-control faults (paper 4.3.1)");
  report.set_header({"condition", "test program msgs/min", "% of normal",
                     "network-wide %", "paper"});
  std::uint64_t normal_mon = 0;
  std::uint64_t normal_net = 0;
  const char* paper[] = {"48000/min (100%)", "5038/min (~10%)", "~12%"};
  int idx = 0;
  for (const auto& condition : conditions) {
    std::printf("running: %s...\n", condition.name);
    const auto rates = run_condition(condition);
    const auto mon = per_minute(rates.monitored);
    if (idx == 0) {
      normal_mon = mon;
      normal_net = rates.network;
    }
    report.add_row(
        {condition.name, nftape::cell("%llu", (unsigned long long)mon),
         nftape::cell("%.0f%%", normal_mon
                                    ? 100.0 * static_cast<double>(mon) /
                                          static_cast<double>(normal_mon)
                                    : 100.0),
         nftape::cell("%.0f%%", normal_net
                                    ? 100.0 *
                                          static_cast<double>(rates.network) /
                                          static_cast<double>(normal_net)
                                    : 100.0),
         paper[idx]});
    ++idx;
  }
  report.add_note("STOP condition uses busy-channel decay semantics (the "
                  "short-timeout counter is reset by the continuous symbol "
                  "stream, paper 4.3.1), so a corrupted GO holds the sender "
                  "until flow control genuinely releases it");
  report.add_note("GAP loss holds paths open until the long-period timeout "
                  "(4M character periods = 50 ms at 80 MB/s) reclaims them");
  std::printf("\n%s", report.render().c_str());
  return 0;
}
