// Regenerates Table 4: "Results of control symbol corruption campaign".
//
// Nine mask -> replacement rows (STOP/GAP/GO corrupted into IDLE/GAP/GO/
// STOP), each a full NFTAPE campaign: known-good reset, the fault
// programmed over the simulated RS-232 link, all-to-all bursty UDP load
// ("the network was operating at full capacity and every node was running
// a message-sending program"), then messages sent/received and the loss
// rate. The injector's word-granular compare corrupts control symbols that
// land on the programmed lane alignment, like the real hardware.
//
// Paper values for comparison (Table 4): loss rates between 7% and 15%
// across all nine rows, a few thousand messages per run.
#include <cstdio>

#include "myrinet/control.hpp"
#include "nftape/campaign.hpp"
#include "nftape/faults.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;
using myrinet::ControlSymbol;

namespace {

struct PaperRow {
  ControlSymbol mask;
  ControlSymbol replacement;
  unsigned sent;
  unsigned received;
};

// The paper's Table 4, verbatim.
constexpr PaperRow kPaper[] = {
    {ControlSymbol::kStop, ControlSymbol::kIdle, 4064, 3705},
    {ControlSymbol::kStop, ControlSymbol::kGap, 4092, 3445},
    {ControlSymbol::kStop, ControlSymbol::kGo, 4015, 3694},
    {ControlSymbol::kGap, ControlSymbol::kGo, 3132, 2785},
    {ControlSymbol::kGap, ControlSymbol::kIdle, 3378, 3022},
    {ControlSymbol::kGap, ControlSymbol::kStop, 3983, 3607},
    {ControlSymbol::kGo, ControlSymbol::kIdle, 2564, 2199},
    {ControlSymbol::kGo, ControlSymbol::kGap, 3483, 3108},
    {ControlSymbol::kGo, ControlSymbol::kStop, 3720, 3322},
};

}  // namespace

namespace {

/// The short-timeout reading. The paper's counter "is reset" when "a symbol
/// is received": on a quiet reverse channel a stalled sender recovers in 16
/// character periods (refresh/decay semantics); on a busy one the counter
/// never expires and only a genuine GO releases the sender (busy-channel
/// semantics). The real network sits between the two; the campaign runs
/// under both and the pair brackets the paper's row.
enum class GateSemantics { kRefreshDecay, kBusyChannel };

void run_table(GateSemantics semantics, nftape::Report& report) {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  if (semantics == GateSemantics::kBusyChannel) {
    config.switch_config.short_timeout = sim::milliseconds(50);
    config.nic_config.short_timeout = sim::milliseconds(50);
  }
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));
  nftape::CampaignRunner runner(bed);

  const auto make_spec = [](std::string name) {
    nftape::CampaignSpec s;
    s.name = std::move(name);
    s.warmup = sim::milliseconds(10);
    s.duration = sim::milliseconds(150);
    s.drain = sim::milliseconds(10);
    s.workload.udp_interval = sim::microseconds(12);
    s.workload.payload_size = 256;
    s.workload.burst_size = 4;
    s.workload.jitter = 0.5;
    return s;
  };

  std::printf("running baseline...\n");
  const auto baseline = runner.run(make_spec("baseline"));
  report.add_row({"(none)", "(none)",
                  nftape::cell("%llu", (unsigned long long)baseline.messages_sent),
                  nftape::cell("%llu", (unsigned long long)baseline.messages_received),
                  nftape::cell("%.1f%%", 100.0 * baseline.loss_rate()), "-", "-"});

  for (const auto& row : kPaper) {
    auto spec = make_spec(std::string(to_string(row.mask)) + "->" +
                          std::string(to_string(row.replacement)));
    spec.fault_to_switch =
        nftape::control_symbol_corruption(row.mask, row.replacement);
    spec.fault_from_switch = spec.fault_to_switch;
    std::printf("running %s...\n", spec.name.c_str());
    const auto r = runner.run(spec);

    const char* dominant = "-";
    std::uint64_t best = 0;
    const auto consider = [&](std::uint64_t v, const char* what) {
      if (v > best) {
        best = v;
        dominant = what;
      }
    };
    consider(r.udp_checksum_drops, "merged frames (UDP length/checksum)");
    consider(r.link_crc_errors, "slack overflow -> CRC-8");
    consider(r.unroutable_drops / 10, "mapping damage (unroutable)");
    consider(r.nic_tx_drops, "sender stalls (tx queue)");

    const double paper_loss =
        100.0 * (1.0 - static_cast<double>(row.received) /
                           static_cast<double>(row.sent));
    report.add_row({std::string(to_string(row.mask)),
                    std::string(to_string(row.replacement)),
                    nftape::cell("%llu", (unsigned long long)r.messages_sent),
                    nftape::cell("%llu", (unsigned long long)r.messages_received),
                    nftape::cell("%.1f%%", 100.0 * r.loss_rate()),
                    nftape::cell("%.0f%%", paper_loss), dominant});
  }

}

}  // namespace

int main() {
  nftape::Report decay(
      "Table 4 under refresh/decay gate semantics (quiet-channel reading)");
  decay.set_header({"Mask", "Replacement", "Sent", "Received", "Loss",
                    "paper loss", "dominant failure"});
  run_table(GateSemantics::kRefreshDecay, decay);
  decay.add_note("a lost GO is recovered by the 16-character-period decay, "
                 "so GO rows under-lose relative to the paper");
  std::printf("\n%s\n", decay.render().c_str());

  nftape::Report busy(
      "Table 4 under busy-channel gate semantics (stalls persist until a "
      "genuine GO)");
  busy.set_header({"Mask", "Replacement", "Sent", "Received", "Loss",
                   "paper loss", "dominant failure"});
  run_table(GateSemantics::kBusyChannel, busy);
  busy.add_note("spurious/withheld STOP states persist, so STOP-replacement "
                "and GO rows over-lose relative to the paper");
  std::printf("\n%s\n", busy.render().c_str());

  std::printf("word-granular compare (stride 4) in both tables; both "
              "directions of node 0's link corrupted; every run starts from "
              "a known good state. The paper's 7-16%% rows sit between the "
              "two semantics (see EXPERIMENTS.md).\n");
  return 0;
}
