#include "harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "orchestrator/jsonl.hpp"

namespace hsfi::bench {

namespace {

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bench [options]\n"
               "  --reps N      measured repetitions per scenario (default 5)\n"
               "  --warmup N    unmeasured warm-up repetitions (default 1)\n"
               "  --smoke       shrink workloads for the CI smoke lane\n"
               "  --out FILE    write JSON records (BENCH_sim_kernel.json schema)\n"
               "  --bench NAME  run only the named scenario\n");
}

/// Median of a sorted sample.
double median_of(const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? sorted[n / 2]
                    : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
}

/// Interquartile range via the lower/upper-half-median (Tukey hinge)
/// convention — stable for the small rep counts benches use.
double iqr_of(const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n < 2) return 0;
  const std::vector<double> lower(sorted.begin(),
                                  sorted.begin() + static_cast<long>(n / 2));
  const std::vector<double> upper(
      sorted.begin() + static_cast<long>((n + 1) / 2), sorted.end());
  return median_of(upper) - median_of(lower);
}

}  // namespace

Options parse_options(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n\n", arg.c_str());
        usage(stderr);
        std::exit(1);
      }
      return argv[++i];
    };
    const auto numeric = [&]() -> int {
      const char* v = value();
      char* end = nullptr;
      const long parsed = std::strtol(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "%s needs a non-negative integer, got '%s'\n\n",
                     arg.c_str(), v);
        usage(stderr);
        std::exit(1);
      }
      return static_cast<int>(parsed);
    };
    if (arg == "--reps") {
      options.reps = numeric();
    } else if (arg == "--warmup") {
      options.warmup = numeric();
    } else if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--out") {
      options.out_path = value();
    } else if (arg == "--bench") {
      options.only = value();
    } else if (arg == "--help") {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg.c_str());
      usage(stderr);
      std::exit(1);
    }
  }
  if (options.reps < 1) options.reps = 1;
  return options;
}

std::string current_commit() {
  if (const char* env = std::getenv("HSFI_COMMIT"); env != nullptr && *env) {
    return env;
  }
  std::string commit = "unknown";
  if (std::FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buffer[64] = {};
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      std::string line(buffer);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) commit = line;
    }
    pclose(pipe);
  }
  return commit;
}

bool write_bench_json(const std::string& path,
                      const std::vector<Summary>& summaries,
                      const std::string& commit) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  out << "[\n";
  bool first = true;
  const auto record = [&](const std::string& bench, const char* metric,
                          double value, int decimals, const char* unit) {
    if (!first) out << ",\n";
    first = false;
    orchestrator::JsonObject o;
    o.add("bench", bench);
    o.add("metric", metric);
    o.add_fixed("value", value, decimals);
    o.add("unit", unit);
    o.add("commit", commit);
    out << "  " << o.str();
  };
  for (const auto& s : summaries) {
    record(s.bench, "events_per_sec_median", s.median_events_per_sec, 1,
           "events/s");
    record(s.bench, "events_per_sec_iqr", s.iqr_events_per_sec, 1,
           "events/s");
    record(s.bench, "wall_s_median", s.median_wall_s, 6, "s");
    record(s.bench, "events", static_cast<double>(s.events), 0, "count");
    record(s.bench, "reps", static_cast<double>(s.reps), 0, "count");
  }
  out << "\n]\n";
  return static_cast<bool>(out);
}

Harness::Harness(Options options) : options_(std::move(options)) {}

void Harness::measure(const std::string& name,
                      const std::function<std::uint64_t()>& body) {
  if (!options_.only.empty() && options_.only != name) return;
  std::fprintf(stderr, "%s: %d warm-up + %d reps...\n", name.c_str(),
               options_.warmup, options_.reps);
  for (int i = 0; i < options_.warmup; ++i) (void)body();

  std::vector<double> wall_s;
  std::vector<double> events_per_sec;
  std::uint64_t events = 0;
  for (int i = 0; i < options_.reps; ++i) {
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t rep_events = body();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (i == 0) {
      events = rep_events;
    } else if (rep_events != events) {
      std::fprintf(stderr,
                   "%s: NONDETERMINISTIC: rep %d executed %llu events, "
                   "rep 0 executed %llu\n",
                   name.c_str(), i, (unsigned long long)rep_events,
                   (unsigned long long)events);
      nondeterministic_ = true;
    }
    wall_s.push_back(secs);
    events_per_sec.push_back(secs > 0 ? static_cast<double>(rep_events) / secs
                                      : 0);
  }
  std::sort(wall_s.begin(), wall_s.end());
  std::sort(events_per_sec.begin(), events_per_sec.end());

  Summary s;
  s.bench = name;
  s.reps = options_.reps;
  s.events = events;
  s.median_events_per_sec = median_of(events_per_sec);
  s.iqr_events_per_sec = iqr_of(events_per_sec);
  s.median_wall_s = median_of(wall_s);
  summaries_.push_back(s);
}

int Harness::finish() {
  std::printf("\n%-24s %10s %14s %12s %10s\n", "bench", "reps", "events/s med",
              "events/s IQR", "wall med");
  for (const auto& s : summaries_) {
    std::printf("%-24s %10d %14.0f %12.0f %9.3fs\n", s.bench.c_str(), s.reps,
                s.median_events_per_sec, s.iqr_events_per_sec,
                s.median_wall_s);
  }
  if (!options_.out_path.empty()) {
    if (!write_bench_json(options_.out_path, summaries_, current_commit())) {
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", options_.out_path.c_str());
  }
  return nondeterministic_ ? 1 : 0;
}

}  // namespace hsfi::bench
