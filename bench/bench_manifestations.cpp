// Failure-manifestation breakdown across the fault taxonomy (paper §4.3):
// one NFTAPE campaign per fault class, each firing followed downstream and
// classified — masked, dropped by CRC, marker error, corrupted payload
// delivered, misrouted, dropped otherwise, long-period timeout, or mapping
// disruption. The classes of each run sum to its injection count exactly,
// so the table accounts for every firing.
//
// Also renders the cumulative metrics registry (per-class counters and the
// firing -> first-effect latency histogram), which is deterministic in
// simulated time.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/manifestation.hpp"
#include "myrinet/control.hpp"
#include "nftape/campaign.hpp"
#include "nftape/faults.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;
using myrinet::ControlSymbol;

namespace {

struct FaultRow {
  const char* name;
  core::InjectorConfig config;
};

core::InjectorConfig aliasing_fill_swap() {
  core::InjectorConfig cfg;
  cfg.match_mode = core::MatchMode::kOn;
  cfg.corrupt_mode = core::CorruptMode::kReplace;
  cfg.compare_data = 0x5A5A5A5A;  // four fill bytes in a row
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = 0x5A5B5A59;  // same 16-bit ones-complement sum
  cfg.corrupt_mask = 0xFFFFFFFF;
  cfg.lfsr_mask = 0x00FF;  // thin the (ubiquitous) match to ~1/256 windows
  cfg.crc_repatch = true;
  return cfg;
}

std::vector<FaultRow> fault_rows() {
  return {
      {"seu-00FF", nftape::random_bit_flip_seu(0x00FF)},
      {"marker-msb", nftape::marker_msb_corruption()},
      {"stop->gap", nftape::control_symbol_corruption(ControlSymbol::kStop,
                                                      ControlSymbol::kGap)},
      {"gap->idle", nftape::control_symbol_corruption(ControlSymbol::kGap,
                                                      ControlSymbol::kIdle)},
      {"go->stop", nftape::control_symbol_corruption(ControlSymbol::kGo,
                                                     ControlSymbol::kStop)},
      // Checksum-aliasing payload rewrite (§4.3.4 technique against this
      // workload's constant 0x5A fill): 5A5A+5A5A == 5A5B+5A59, so a
      // word-aligned hit passes link CRC *and* UDP checksum and the
      // corruption is delivered — the one class drop counters never see.
      // Unaligned hits straddle checksum words and die at UDP instead.
      {"alias-swap", aliasing_fill_swap()},
  };
}

}  // namespace

int main() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));
  nftape::CampaignRunner runner(bed);

  nftape::Report report("Failure manifestations by fault class");
  std::vector<std::string> header = {"fault", "injections"};
  for (const auto m : analysis::all_manifestations()) {
    header.emplace_back(analysis::to_string(m));
  }
  header.emplace_back("secondary");
  report.set_header(header);

  for (const auto& row : fault_rows()) {
    nftape::CampaignSpec spec;
    spec.name = row.name;
    spec.warmup = sim::milliseconds(10);
    spec.duration = sim::milliseconds(150);
    spec.drain = sim::milliseconds(10);
    spec.workload.udp_interval = sim::microseconds(12);
    spec.workload.payload_size = 256;
    spec.workload.burst_size = 4;
    spec.workload.jitter = 0.5;
    spec.fault_to_switch = row.config;
    spec.fault_from_switch = row.config;

    std::printf("running %s...\n", row.name);
    const auto r = runner.run(spec);

    std::vector<std::string> cells = {
        row.name, nftape::cell("%llu", (unsigned long long)r.injections)};
    for (const auto m : analysis::all_manifestations()) {
      cells.push_back(
          nftape::cell("%llu", (unsigned long long)r.manifestations[m]));
    }
    cells.push_back(
        nftape::cell("%llu", (unsigned long long)r.secondary_effects));
    report.add_row(cells);

    if (r.manifestations.total() != r.injections) {
      std::printf("BUG: %s breakdown sums to %llu, injections %llu\n",
                  row.name, (unsigned long long)r.manifestations.total(),
                  (unsigned long long)r.injections);
      return 1;
    }
  }

  report.add_note("each row's classes sum to its injections exactly; "
                  "'secondary' counts cascade effects beyond the first per "
                  "firing and is not part of the sum");
  std::printf("\n%s\n", report.render().c_str());

  std::printf("cumulative metrics registry:\n%s\n",
              runner.metrics().render().c_str());
  return 0;
}
