// Reproduces §4.3.4, UDP address/payload corruption:
//
//   "we corrupted a UDP packet consisting of the string 'Have a lot of
//   fun' to read instead 'veHa a lot of fun'. The checksum was unable to
//   detect this, and the incorrect message was passed on to the sending
//   application. When the corruption did not satisfy the checksum, the
//   packets were dropped."
#include <cstdio>
#include <string>

#include "nftape/faults.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

namespace {

struct Outcome {
  std::uint64_t delivered = 0;
  std::uint64_t checksum_drops = 0;
  std::uint64_t crc_drops = 0;
  std::string last;
};

Outcome run(nftape::Testbed& bed, const core::InjectorConfig& fault,
            int packets) {
  bed.reset_to_known_good();
  bed.injector().apply(core::Direction::kLeftToRight, fault);
  Outcome out;
  bed.host(1).bind(4000, [&out](host::HostId, const host::UdpDatagram& d,
                                sim::SimTime) {
    ++out.delivered;
    out.last.assign(d.payload.begin(), d.payload.end());
  });
  for (int i = 0; i < packets; ++i) {
    host::UdpDatagram d;
    d.dst_port = 4000;
    const std::string text = "Have a lot of fun";
    d.payload.assign(text.begin(), text.end());
    bed.host(0).send_udp(2, std::move(d));
    bed.settle(sim::milliseconds(1));
  }
  bed.settle(sim::milliseconds(5));
  out.checksum_drops = bed.host(1).stats().drop_bad_checksum;
  out.crc_drops = bed.nic(1).stats().crc_errors;
  core::InjectorConfig off;
  bed.injector().apply(core::Direction::kLeftToRight, off);
  return out;
}

}  // namespace

int main() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));

  constexpr int kPackets = 100;
  const auto none = run(bed, core::InjectorConfig{}, kPackets);
  const auto aliased = run(bed, nftape::udp_word_swap_have_to_veha(), kPackets);
  const auto flipped = run(bed, nftape::udp_payload_bit_flip(), kPackets);

  nftape::Report report("UDP corruption (paper 4.3.4)");
  report.set_header({"fault", "sent", "delivered", "UDP checksum drops",
                     "link CRC drops", "delivered text"});
  report.add_row({"none", nftape::cell("%d", kPackets),
                  nftape::cell("%llu", (unsigned long long)none.delivered),
                  "0", "0", '"' + none.last + '"'});
  report.add_row({"swap words \"Have\"->\"veHa\"", nftape::cell("%d", kPackets),
                  nftape::cell("%llu", (unsigned long long)aliased.delivered),
                  nftape::cell("%llu", (unsigned long long)aliased.checksum_drops),
                  nftape::cell("%llu", (unsigned long long)aliased.crc_drops),
                  '"' + aliased.last + '"'});
  report.add_row({"single-bit toggle", nftape::cell("%d", kPackets),
                  nftape::cell("%llu", (unsigned long long)flipped.delivered),
                  nftape::cell("%llu", (unsigned long long)flipped.checksum_drops),
                  nftape::cell("%llu", (unsigned long long)flipped.crc_drops),
                  flipped.delivered > 0 ? '"' + flipped.last + '"'
                                        : std::string("(nothing)")});
  report.add_note("paper: the 16-bit-apart swap \"satisfies the checksum\" "
                  "and is delivered corrupted; non-aliased corruption is "
                  "dropped by the UDP layer");
  report.add_note("the injector repatched the Myrinet CRC-8 in both fault "
                  "cases, so only UDP could object (link CRC drops = 0)");
  std::printf("%s", report.render().c_str());
  return 0;
}
