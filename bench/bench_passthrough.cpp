// Reproduces the §3.5 transparency result: "The fault injector caused no
// observable impact on the data transfer rate. Data passed through the
// fault injector at the same rate it would have if the fault injector had
// not been in the data path." Also: "routes are correctly mapped through
// in both directions" — the MCP mapping protocol converges across the
// spliced link.
#include <cstdio>

#include "host/traffic.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

namespace {

struct Measured {
  double throughput_mbps = 0;
  std::uint64_t received = 0;
  std::uint64_t map_size = 0;
};

Measured run(bool with_injector) {
  nftape::TestbedConfig config;
  config.with_injector = with_injector;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));

  host::UdpSink sink(bed.host(1), 9);
  host::UdpFlood::Config fc;
  fc.target = 2;                       // node 1, across the injected link
  fc.interval = sim::microseconds(7);  // ~98% of the 80 MB/s line rate
  fc.payload_size = 512;
  host::UdpFlood flood(bed.sim(), bed.host(0), fc);
  const sim::SimTime start = bed.sim().now();
  flood.start();
  bed.settle(sim::milliseconds(400));
  flood.stop();
  bed.settle(sim::milliseconds(10));

  Measured m;
  m.received = sink.received();
  const double secs = sim::to_seconds(bed.sim().now() - start);
  m.throughput_mbps =
      static_cast<double>(sink.bytes()) * 8.0 / secs / 1e6;
  m.map_size = bed.host(2).mcp().network_map().size();
  return m;
}

}  // namespace

int main() {
  std::printf("measuring transfer rate without the injector in the path...\n");
  const auto without = run(false);
  std::printf("measuring transfer rate with the injector in the path...\n");
  const auto with = run(true);

  nftape::Report report("Pass-through transparency (paper 3.5)");
  report.set_header({"configuration", "messages received", "goodput",
                     "network map"});
  report.add_row({"without injector",
                  nftape::cell("%llu", (unsigned long long)without.received),
                  nftape::cell("%.2f Mb/s", without.throughput_mbps),
                  nftape::cell("%llu nodes", (unsigned long long)without.map_size)});
  report.add_row({"with injector",
                  nftape::cell("%llu", (unsigned long long)with.received),
                  nftape::cell("%.2f Mb/s", with.throughput_mbps),
                  nftape::cell("%llu nodes", (unsigned long long)with.map_size)});
  const double delta = 100.0 *
      (with.throughput_mbps - without.throughput_mbps) /
      (without.throughput_mbps > 0 ? without.throughput_mbps : 1);
  report.add_note(nftape::cell("transfer-rate impact: %+.3f%% "
                               "(paper: \"no observable impact\")", delta));
  report.add_note("mapping converged through the device in both directions "
                  "(\"routes are correctly mapped through\")");
  std::printf("\n%s", report.render().c_str());
  return 0;
}
