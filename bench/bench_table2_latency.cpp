// Regenerates Table 2: "Latency Measurements. Each experiment passed two
// million small UDP packets in ping-pong fashion."
//
// Five experiments, each measuring the average per-exchange time with and
// without the injector in the data path through the hosts' interrupt-
// granular wall clocks. The injector's true added latency is its pipeline
// (20 characters = 250 ns at 640 Mb/s, paper footnote 5) plus the extra
// cable; what the hosts *measure* is that value buried under boot-dependent
// timer alignment — "the actual latency interval is getting lost in the
// granularity caused by the computer's interrupt handler."
//
// Paper values: per-packet ~235,2xx-236,4xx ns; added latency per packet
// 713 / 75 / 887 / 1407 / 708 ns across the five experiments.
#include <cstdio>

#include "host/ping.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

namespace {

// Scaled from the paper's 1M-per-side to keep the bench quick; the
// averages converge long before this.
constexpr std::uint64_t kPackets = 20'000;

double measure_wall_avg_ns(bool with_injector, std::uint64_t seed) {
  nftape::TestbedConfig config;
  config.with_injector = with_injector;
  config.seed = seed;
  config.map_period = sim::milliseconds(500);
  // Host model tuned to the paper's ~235 us per exchange: late-90s hosts
  // spend ~100 us of interrupt + stack work per receive and ~10 us per
  // send; the wall clock ticks at 1 us with a boot-dependent phase, and
  // each boot adds a systematic stack offset below one timer tick.
  config.nic_config.rx_processing_time = sim::microseconds(106);
  config.send_stack_time = sim::microseconds(10);
  config.host_clock.tick = sim::microseconds(1);
  config.host_boot_offset_span = sim::nanoseconds(800);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(600));
  bed.host(1).enable_echo();

  host::Pinger::Config pc;
  pc.target = 2;  // node 1, across the (possibly) injected link
  pc.payload_size = 16;
  pc.max_packets = kPackets;
  pc.timeout = sim::milliseconds(50);
  host::Pinger ping(bed.sim(), bed.host(0), pc);
  ping.start();
  bed.settle(sim::seconds(20));
  if (ping.results().received != kPackets) {
    std::fprintf(stderr, "warning: only %llu/%llu exchanges completed\n",
                 (unsigned long long)ping.results().received,
                 (unsigned long long)kPackets);
  }
  return ping.results().average_wall_rtt_ns();
}

}  // namespace

int main() {
  nftape::Report report(
      "Table 2: latency measurements (UDP packets in ping-pong fashion)");
  report.set_header({"experiment", "avg/packet without injector",
                     "avg/packet with injector", "added latency",
                     "paper added"});
  const long paper_added[] = {713, 75, 887, 1407, 708};

  for (int experiment = 1; experiment <= 5; ++experiment) {
    std::printf("experiment %d: measuring without injector...\n", experiment);
    const double without =
        measure_wall_avg_ns(false, 1000 + static_cast<std::uint64_t>(experiment));
    std::printf("experiment %d: measuring with injector...\n", experiment);
    const double with =
        measure_wall_avg_ns(true, 2000 + static_cast<std::uint64_t>(experiment));
    report.add_row({nftape::cell("%d", experiment),
                    nftape::cell("%.0f ns", without),
                    nftape::cell("%.0f ns", with),
                    nftape::cell("%+.0f ns", with - without),
                    nftape::cell("%ld ns", paper_added[experiment - 1])});
  }
  report.add_note(nftape::cell(
      "true device latency: 250 ns pipeline + ~10 ns extra cable; %llu "
      "exchanges per measurement (paper: 1M per side)",
      (unsigned long long)kPackets));
  report.add_note("spread comes from boot-dependent timer alignment, the "
                  "paper's interrupt-granularity explanation; the \"added\" "
                  "column should be read as 250 ns +/- the ~1 us timer tick");
  std::printf("\n%s", report.render().c_str());
  return 0;
}
