// Regenerates Table 1: synthesis results of the FPGA code.
//
// The structural models in src/netlist rebuild each entity of Fig. 1 from
// the architecture the paper describes (32-bit datapath, dual-port RAM
// FIFO, compare/corrupt registers, command FSM, ...) and count Virtex-era
// resources. The published numbers print beside the estimates with the
// per-cell deviation; flip-flop and multiplexor counts — direct functions
// of the register map — are exact, while gate/LUT equivalents depend on
// the synthesis tool and carry wider tolerance.
#include <cstdio>

#include "netlist/injector_board.hpp"

int main() {
  const auto rows = hsfi::netlist::injector_fpga_entities();
  std::printf("Table 1: Synthesis Results of FPGA Code "
              "(estimated vs paper)\n\n%s\n",
              hsfi::netlist::render_table1(rows).c_str());
  std::printf("The FIFO_Inject row is two instances (\"The totals were "
              "calculated assuming that two\ninstances of the FIFO injector "
              "were needed\"), like the paper's table.\n\n");
  std::printf("Per-entity block breakdown (FIFO_Inject, one instance):\n");
  for (const auto& block : rows[5].model.blocks()) {
    std::printf("  %-40s g=%-5lld fg=%-5lld mux=%-4lld dff=%lld\n",
                block.label.c_str(),
                static_cast<long long>(block.resources.gates),
                static_cast<long long>(block.resources.function_generators),
                static_cast<long long>(block.resources.multiplexors),
                static_cast<long long>(block.resources.d_flip_flops));
  }
  return 0;
}
