# Drives run_sweep's distributed-campaign surface end to end against a
# golden spec: single-process reference, optional K-shard split + merge
# (byte-identical to the reference), then a mid-flight crash (the
# --crash-after-batches hook appends a torn record and dies like a
# SIGKILL) followed by --resume, again byte-identical.
#
# Usage:
#   cmake -DSWEEP=<run_sweep> -DSPEC=<campaign.json> -DWORK=<dir>
#         -DTAG=<prefix> [-DSHARDS=<n>] -DCRASH_AFTER=<batches>
#         -P shard_roundtrip.cmake

foreach(var SWEEP SPEC WORK TAG CRASH_AFTER)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()
if(NOT DEFINED SHARDS)
  set(SHARDS 0)
endif()

function(sweep expect_rc)
  execute_process(COMMAND ${SWEEP} ${ARGN}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR
      "run_sweep ${ARGN} exited '${rc}' (wanted ${expect_rc})\n${out}\n${err}")
  endif()
endfunction()

function(expect_same a b what)
  execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${a} ${b}
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${what}: ${a} and ${b} differ")
  endif()
endfunction()

file(GLOB stale ${WORK}/${TAG}_*)
if(stale)
  file(REMOVE ${stale})
endif()

# Reference: one process, no interruption.
set(single ${WORK}/${TAG}_single.jsonl)
sweep(0 --spec ${SPEC} --out ${single})

# K shards in K independent invocations, then merge.
if(SHARDS GREATER 1)
  set(merged ${WORK}/${TAG}_merged.jsonl)
  math(EXPR last "${SHARDS} - 1")
  foreach(k RANGE ${last})
    sweep(0 --spec ${SPEC} --out ${merged} --shard ${k}/${SHARDS})
  endforeach()
  sweep(0 --spec ${SPEC} --out ${merged} --merge ${SHARDS})
  expect_same(${single} ${merged} "merged shards vs single process")
endif()

# Crash mid-campaign (exit 9 with a torn trailing record), then resume.
set(resumed ${WORK}/${TAG}_resumed.jsonl)
sweep(9 --spec ${SPEC} --out ${resumed} --crash-after-batches ${CRASH_AFTER})
sweep(0 --spec ${SPEC} --out ${resumed} --resume)
expect_same(${single} ${resumed} "resumed after crash vs single process")

message(STATUS "shard roundtrip ok: ${TAG}")
