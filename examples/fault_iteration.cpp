// The "adaptive" loop: internally generated reconfiguration.
//
// Paper §1: the device accepts "configuration commands generated either
// internally (i.e., by the device itself) or by an external system", and
// §3.2: "The core logic of the fault injector can be configured to iterate
// through any number of faults."
//
// This example loads a three-step fault program into the FaultSequencer —
// corrupt two STOP symbols, then two GAPs, then run a burst of random SEU
// bit flips for two milliseconds — and lets the device walk through it on
// its own while traffic flows, reporting each step as it completes.
//
// Build & run:  ./build/examples/fault_iteration
#include <cstdio>

#include "core/sequencer.hpp"
#include "host/traffic.hpp"
#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

int main() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));

  // Background load so every step has traffic to bite.
  host::UdpSink sink(bed.host(1), 9);
  host::UdpFlood::Config fc;
  fc.target = 2;
  fc.interval = sim::microseconds(30);
  fc.payload_size = 128;
  host::UdpFlood flood(bed.sim(), bed.host(0), fc);
  flood.start();

  core::FaultSequencer sequencer(bed.sim(), bed.injector(),
                                 core::Direction::kLeftToRight);
  const char* labels[] = {
      "corrupt 2 GAP symbols (GAP -> IDLE)",
      "corrupt 2 payload bytes (0x5A toggled)",
      "random SEU bit flips for 2 ms (LFSR 1/64)",
  };
  sequencer.on_step_complete([&](std::size_t step) {
    std::printf("[%s] step %zu done: %s\n",
                sim::format_time(bed.sim().now()).c_str(), step + 1,
                labels[step]);
  });
  auto step1 = nftape::control_symbol_corruption(myrinet::ControlSymbol::kGap,
                                                 myrinet::ControlSymbol::kIdle);
  step1.compare_stride = 1;
  core::InjectorConfig step2;  // toggle the 0x5A payload fill
  step2.match_mode = core::MatchMode::kOn;
  step2.corrupt_mode = core::CorruptMode::kToggle;
  step2.compare_data = 0x0000005A;
  step2.compare_mask = 0x000000FF;
  step2.compare_ctl_mask = 0x1;
  step2.corrupt_data = 0x00000001;
  step2.crc_repatch = true;
  // Every step carries a time backstop so the program always terminates.
  const bool loaded = sequencer.load({
      {step1, 2, sim::milliseconds(10), labels[0]},
      {step2, 2, sim::milliseconds(10), labels[1]},
      {nftape::random_bit_flip_seu(0x003F), 0, sim::milliseconds(2),
       labels[2]},
  });
  if (!loaded) {
    std::fprintf(stderr, "program rejected\n");
    return 1;
  }
  std::printf("fault program loaded (3 steps); device iterates on its own\n");
  sequencer.start(sim::microseconds(10));
  bed.settle(sim::milliseconds(50));
  flood.stop();
  bed.settle(sim::milliseconds(5));

  const auto progress = sequencer.progress();
  std::printf("\nprogram finished: %zu/%zu steps, device disarmed: %s\n",
              progress.steps_completed, progress.steps_total,
              bed.injector().config(core::Direction::kLeftToRight).match_mode ==
                      core::MatchMode::kOff
                  ? "yes"
                  : "no");
  std::printf("traffic: sent=%llu received=%llu  injections=%llu  "
              "link CRC drops=%llu  UDP drops=%llu\n",
              (unsigned long long)flood.sent(),
              (unsigned long long)sink.received(),
              (unsigned long long)bed.injector()
                  .fifo_stats(core::Direction::kLeftToRight)
                  .injections,
              (unsigned long long)bed.nic(1).stats().crc_errors,
              (unsigned long long)(bed.host(1).stats().drop_bad_checksum +
                                   bed.host(1).stats().drop_bad_length));
  return 0;
}
