// The Fig. 11 experiment: corrupt a node's MCP address to match the
// controller's and watch the mapper fail to produce a consistent map,
// differently on every attempt; remove the fault and watch it recover.
//
// Build & run:  ./build/examples/mapping_storm
#include <cstdio>

#include "myrinet/mmon.hpp"
#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

int main() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(50);
  config.map_reply_window = sim::milliseconds(5);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(200));

  std::printf("=== network map, normal state (mmon view at controller) ===\n%s\n",
              myrinet::render_mcp_view(bed.host(2).mcp()).c_str());

  // Corrupt node 0's mapping replies: MCP 0x...2000 -> 0x...2020, the
  // controller's own address. CRC is repatched so the reply is accepted.
  bed.injector().apply(core::Direction::kLeftToRight,
                       nftape::mcp_reply_address_corruption(0x20, 0x00, 0x20));

  // "each subsequent mapping attempt resulted in a similarly damaged map"
  for (int attempt = 1; attempt <= 4; ++attempt) {
    bed.settle(sim::milliseconds(50));
    std::printf("=== mapping attempt %d under duplicate-controller fault ===\n%s\n",
                attempt, myrinet::render_mcp_view(bed.host(2).mcp()).c_str());
  }
  std::printf("confused mapping rounds: %llu\n\n",
              (unsigned long long)bed.host(2).mcp().stats().confused_rounds);

  // Remove the fault: the next round restores a full, consistent map.
  core::InjectorConfig off;
  bed.injector().apply(core::Direction::kLeftToRight, off);
  bed.settle(sim::milliseconds(120));
  std::printf("=== after fault removal ===\n%s\n",
              myrinet::render_mcp_view(bed.host(2).mcp()).c_str());
  std::printf("switch view:\n%s",
              myrinet::render_switch(bed.network_switch()).c_str());
  return 0;
}
