// The §4.3.4 UDP checksum-aliasing experiment, exactly as published:
// corrupt "Have a lot of fun" to "veHa a lot of fun" in flight. The 16-bit
// one's-complement checksum cannot see a swap of two aligned words, so the
// wrong message reaches the application; a non-aliased corruption of the
// same packet is caught and dropped.
//
// Build & run:  ./build/examples/udp_checksum_alias
#include <cstdio>
#include <string>

#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

namespace {

void send_text(nftape::Testbed& bed, const std::string& text) {
  host::UdpDatagram d;
  d.dst_port = 4000;
  d.payload.assign(text.begin(), text.end());
  bed.host(0).send_udp(2, std::move(d));
  bed.settle(sim::milliseconds(10));
}

}  // namespace

int main() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));

  std::string last_received = "(nothing)";
  unsigned delivered = 0;
  bed.host(1).bind(4000, [&](host::HostId, const host::UdpDatagram& d,
                             sim::SimTime) {
    last_received.assign(d.payload.begin(), d.payload.end());
    ++delivered;
  });

  std::printf("sending   : \"Have a lot of fun\" (no fault)\n");
  send_text(bed, "Have a lot of fun");
  std::printf("received  : \"%s\"\n\n", last_received.c_str());

  std::printf("arming aliasing fault: replace 32-bit window \"Have\" with \"veHa\"\n");
  bed.injector().apply(core::Direction::kLeftToRight,
                       nftape::udp_word_swap_have_to_veha());
  send_text(bed, "Have a lot of fun");
  std::printf("received  : \"%s\"  <- passed the checksum!\n", last_received.c_str());
  std::printf("checksum drops so far: %llu\n\n",
              (unsigned long long)bed.host(1).stats().drop_bad_checksum);

  std::printf("arming non-aliased fault: single-bit toggle in the same window\n");
  bed.injector().apply(core::Direction::kLeftToRight,
                       nftape::udp_payload_bit_flip());
  const unsigned before = delivered;
  send_text(bed, "Have a lot of fun");
  std::printf("delivered : %s (checksum drops now %llu)\n",
              delivered == before ? "no" : "yes",
              (unsigned long long)bed.host(1).stats().drop_bad_checksum);
  std::printf("\nlink-layer CRC-8 was repatched by the injector in both cases "
              "(crc errors at NIC: %llu) — only UDP could object.\n",
              (unsigned long long)bed.nic(1).stats().crc_errors);
  return 0;
}
