// Quickstart: the paper's §3.3 "typical injection scenario", end to end.
//
//   1. Build the Fig. 10 testbed (three hosts, an 8-port Myrinet switch,
//      the fault injector spliced into node 0's link).
//   2. Program the injector over the simulated RS-232 link: match the data
//      stream 0x1818 and replace it with 0x1918, ONCE, with the CRC-8
//      recomputed before the end-of-frame.
//   3. Send UDP datagrams containing 0x18 0x18 and watch exactly one get
//      corrupted in flight — then read back the capture buffer and the
//      statistics over the serial link, like NFTAPE would.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "host/traffic.hpp"
#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;

int main() {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));  // let mapping converge
  std::printf("testbed up: %zu nodes, controller elected: %s\n",
              bed.node_count(),
              bed.host(2).mcp().acting_controller() ? "node2" : "?");

  // --- Program the injector over RS-232 --------------------------------
  core::InjectorConfig fault;
  fault.match_mode = core::MatchMode::kOnce;
  fault.corrupt_mode = core::CorruptMode::kReplace;
  fault.compare_data = 0x00001818;
  fault.compare_mask = 0x0000FFFF;
  fault.compare_ctl = 0x0;
  fault.compare_ctl_mask = 0x3;  // both matched lanes must be data
  fault.corrupt_data = 0x00001918;
  fault.corrupt_mask = 0x0000FFFF;
  fault.crc_repatch = true;

  std::printf("\nprogramming injector over serial:\n");
  for (const auto& cmd :
       nftape::to_serial_commands(fault, core::Direction::kLeftToRight)) {
    std::printf("  > %s\n", cmd.c_str());
    bed.control().send_command(cmd, [](std::vector<std::string> lines) {
      std::printf("  < %s\n", lines.back().c_str());
    });
  }
  bed.settle(sim::milliseconds(50));

  // --- Generate traffic containing the victim pattern ------------------
  std::vector<std::string> received;
  bed.host(1).bind(4000, [&received](host::HostId, const host::UdpDatagram& d,
                                     sim::SimTime) {
    received.emplace_back(d.payload.begin(), d.payload.end());
  });
  for (int i = 0; i < 3; ++i) {
    host::UdpDatagram d;
    d.dst_port = 4000;
    const std::string msg = "packet \x18\x18 payload " + std::to_string(i);
    d.payload.assign(msg.begin(), msg.end());
    bed.host(0).send_udp(2, std::move(d));
  }
  bed.settle(sim::milliseconds(20));

  // The ONCE trigger corrupted packet 0 in flight. The injector repaired
  // the Myrinet CRC-8, so the *link* accepted the frame — but the end-to-end
  // UDP checksum (computed by the sender over the original bytes) catches
  // the change and the stack drops it. Packets 1 and 2 pass untouched:
  // exactly one controlled, synchronous error.
  std::printf("\ndelivered payloads (packet 0 was corrupted in flight):\n");
  for (const auto& msg : received) {
    std::printf("  \"");
    for (const char c : msg) {
      if (c == '\x18') {
        std::printf("<18>");
      } else if (c == '\x19') {
        std::printf("<19>");
      } else {
        std::printf("%c", c);
      }
    }
    std::printf("\"\n");
  }
  std::printf("  injections=%llu  link CRC errors at receiver=%llu  "
              "UDP checksum drops=%llu\n",
              (unsigned long long)bed.injector()
                  .fifo_stats(core::Direction::kLeftToRight)
                  .injections,
              (unsigned long long)bed.nic(1).stats().crc_errors,
              (unsigned long long)bed.host(1).stats().drop_bad_checksum);
  std::printf("  (see examples/udp_checksum_alias for a corruption that "
              "slips past UDP too)\n");

  // --- Read statistics and the capture buffer back over serial ---------
  bed.control().send_command("STAT L", [](std::vector<std::string> lines) {
    std::printf("\nSTAT L:\n");
    for (const auto& l : lines) std::printf("  %s\n", l.c_str());
  });
  bed.control().send_command("CAPT L", [](std::vector<std::string> lines) {
    std::printf("CAPT L:\n");
    for (const auto& l : lines) std::printf("  %s\n", l.c_str());
  });
  bed.settle(sim::milliseconds(200));

  std::printf("\nadded device latency (nominal): %s\n",
              sim::format_time(bed.injector().nominal_latency()).c_str());
  return 0;
}
