// Command-line campaign runner: the downstream-user tool. Pick a fault by
// name, a duration, and get the NFTAPE-style report.
//
//   ./build/examples/run_campaign stop-gap 200
//   ./build/examples/run_campaign seu:00FF 300
//   ./build/examples/run_campaign udp-swap
//   ./build/examples/run_campaign list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "myrinet/control.hpp"
#include "nftape/campaign.hpp"
#include "nftape/faults.hpp"
#include "nftape/report.hpp"
#include "nftape/testbed.hpp"

using namespace hsfi;
using myrinet::ControlSymbol;

namespace {

struct NamedFault {
  const char* name;
  const char* what;
};

constexpr NamedFault kCatalog[] = {
    {"none", "baseline, no fault"},
    {"stop-idle", "control symbol STOP -> IDLE (Table 4)"},
    {"stop-gap", "control symbol STOP -> GAP (Table 4)"},
    {"stop-go", "control symbol STOP -> GO (Table 4)"},
    {"gap-go", "control symbol GAP -> GO (Table 4)"},
    {"gap-idle", "control symbol GAP -> IDLE (Table 4)"},
    {"gap-stop", "control symbol GAP -> STOP (Table 4)"},
    {"go-idle", "control symbol GO -> IDLE (Table 4)"},
    {"go-gap", "control symbol GO -> GAP (Table 4)"},
    {"go-stop", "control symbol GO -> STOP (Table 4)"},
    {"map-type", "mapping packet type 0x0005 -> 0x0015 (4.3.2)"},
    {"data-type", "data packet type 0x0004 -> 0x0014 (4.3.2)"},
    {"marker-msb", "destination marker MSB set (4.3.2)"},
    {"udp-swap", "payload word swap 'Have' -> 'veHa' (4.3.4)"},
    {"seu:<hex16>", "random bit flips at LFSR mask rate (3.1)"},
};

std::optional<core::InjectorConfig> fault_by_name(const std::string& name) {
  const auto sym = [](const char* a, const char* b) {
    const auto parse = [](const char* s) {
      if (!std::strcmp(s, "stop")) return ControlSymbol::kStop;
      if (!std::strcmp(s, "gap")) return ControlSymbol::kGap;
      if (!std::strcmp(s, "go")) return ControlSymbol::kGo;
      return ControlSymbol::kIdle;
    };
    return nftape::control_symbol_corruption(parse(a), parse(b));
  };
  if (name == "none") return core::InjectorConfig{};
  if (name == "stop-idle") return sym("stop", "idle");
  if (name == "stop-gap") return sym("stop", "gap");
  if (name == "stop-go") return sym("stop", "go");
  if (name == "gap-go") return sym("gap", "go");
  if (name == "gap-idle") return sym("gap", "idle");
  if (name == "gap-stop") return sym("gap", "stop");
  if (name == "go-idle") return sym("go", "idle");
  if (name == "go-gap") return sym("go", "gap");
  if (name == "go-stop") return sym("go", "stop");
  if (name == "map-type") {
    return nftape::packet_type_corruption(myrinet::kTypeMapping, 0x0015);
  }
  if (name == "data-type") {
    return nftape::packet_type_corruption(myrinet::kTypeData, 0x0014);
  }
  if (name == "marker-msb") return nftape::marker_msb_corruption();
  if (name == "udp-swap") return nftape::udp_word_swap_have_to_veha();
  if (name.rfind("seu:", 0) == 0) {
    const auto mask = std::strtoul(name.c_str() + 4, nullptr, 16);
    return nftape::random_bit_flip_seu(static_cast<std::uint16_t>(mask));
  }
  return std::nullopt;
}

void usage() {
  std::printf("usage: run_campaign <fault> [duration-ms]\n\nfaults:\n");
  for (const auto& f : kCatalog) {
    std::printf("  %-12s %s\n", f.name, f.what);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "list" ||
      std::string(argv[1]) == "--help") {
    usage();
    return argc < 2 ? 1 : 0;
  }
  const std::string name = argv[1];
  const long duration_ms = argc > 2 ? std::atol(argv[2]) : 200;
  const auto fault = fault_by_name(name);
  if (!fault) {
    std::fprintf(stderr, "unknown fault '%s'\n\n", name.c_str());
    usage();
    return 1;
  }

  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  config.nic_config.rx_processing_time = sim::microseconds(1);
  config.send_stack_time = sim::microseconds(1);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));
  nftape::CampaignRunner runner(bed);

  nftape::CampaignSpec spec;
  spec.name = name;
  if (name != "none") spec.fault_to_switch = fault;
  spec.fault_from_switch = spec.fault_to_switch;
  spec.duration = sim::milliseconds(duration_ms);
  spec.workload.udp_interval = sim::microseconds(12);
  spec.workload.payload_size = 256;
  spec.workload.burst_size = 4;
  spec.workload.jitter = 0.5;
  std::printf("running campaign '%s' for %ld ms (simulated)...\n",
              name.c_str(), duration_ms);
  const auto r = runner.run(spec);

  nftape::Report report("campaign: " + name);
  report.set_header({"metric", "value"});
  const auto row = [&report](const char* k, std::uint64_t v) {
    report.add_row({k, nftape::cell("%llu", (unsigned long long)v)});
  };
  row("messages sent", r.messages_sent);
  row("messages received", r.messages_received);
  report.add_row({"loss", nftape::cell("%.2f%%", 100.0 * r.loss_rate())});
  row("injections", r.injections);
  row("link CRC-8 drops", r.link_crc_errors);
  row("UDP checksum/length drops", r.udp_checksum_drops);
  row("marker errors", r.marker_errors);
  row("unknown-type drops", r.unknown_type_drops);
  row("unroutable (mapping damage)", r.unroutable_drops);
  row("rx ring overflows", r.ring_overflows);
  row("tx queue drops", r.nic_tx_drops);
  row("switch slack overflow", r.slack_overflow);
  row("switch long timeouts", r.long_timeouts);
  std::printf("\n%s", report.render().c_str());
  return 0;
}
