// Dual-media failure analysis: "failure analysis can be performed
// simultaneously over both of these networks" (abstract) — the board
// carries both a MyriPHY and an FCPHY (paper Fig. 4).
//
// One injector device is spliced into the Myrinet testbed (as always);
// a second injector device — the same core logic behind the other PHY —
// is spliced into a Fibre Channel link. Both corrupt traffic at the same
// simulated time while the monitor reads statistics from each.
//
// Build & run:  ./build/examples/dual_media_monitor
#include <cstdio>

#include "fc/port.hpp"
#include "host/traffic.hpp"
#include "nftape/faults.hpp"
#include "nftape/testbed.hpp"
#include "phy/serdes.hpp"

using namespace hsfi;

int main() {
  // ---- Myrinet side: the usual Fig. 10 testbed -------------------------
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  nftape::Testbed bed(config);
  bed.start();
  bed.settle(sim::milliseconds(150));

  // ---- Fibre Channel side: two N_Ports spliced with a second device ----
  sim::Simulator& sim = bed.sim();
  const sim::Duration fc_period = sim::picoseconds(9'412);  // 1.0625 Gb/s
  link::DuplexLink fc_left(sim, "fcL", fc_period, sim::nanoseconds(5));
  link::DuplexLink fc_right(sim, "fcR", fc_period, sim::nanoseconds(5));
  core::InjectorDevice::Config fc_dev_config;
  fc_dev_config.character_period = fc_period;
  core::InjectorDevice fc_injector(sim, "fi-fc", fc_dev_config);
  fc::FcPort port_a(sim, "fca", {});
  fc::FcPort port_b(sim, "fcb", {});
  port_a.attach(fc_left.b_to_a(), fc_left.a_to_b());
  fc_injector.attach_left(fc_left.a_to_b(), fc_left.b_to_a());
  fc_injector.attach_right(fc_right.b_to_a(), fc_right.a_to_b());
  port_b.attach(fc_right.a_to_b(), fc_right.b_to_a());

  // Corrupt a payload byte of FC frames in flight (no FC CRC-32 repair:
  // the frame CRC catches it, like the Myrinet destination campaign).
  core::InjectorConfig fc_fault;
  fc_fault.match_mode = core::MatchMode::kOn;
  fc_fault.corrupt_mode = core::CorruptMode::kToggle;
  fc_fault.compare_data = 0x5A5A5A5A;  // payload fill pattern
  fc_fault.compare_mask = 0xFFFFFFFF;
  fc_fault.compare_ctl = 0x0;
  fc_fault.compare_ctl_mask = 0xF;
  fc_fault.corrupt_data = 0x00000001;
  fc_injector.apply(core::Direction::kLeftToRight, fc_fault);

  // Myrinet side corrupts GAP framing simultaneously.
  bed.injector().apply(core::Direction::kLeftToRight,
                       nftape::control_symbol_corruption(
                           myrinet::ControlSymbol::kGap,
                           myrinet::ControlSymbol::kIdle));

  // ---- Drive both media at once ----------------------------------------
  host::UdpSink sink(bed.host(1), 9);
  host::UdpFlood::Config fl;
  fl.target = 2;
  fl.interval = sim::microseconds(100);
  fl.max_packets = 500;
  host::UdpFlood flood(sim, bed.host(0), fl);
  flood.start();

  int fc_delivered = 0;
  port_b.on_frame([&fc_delivered](fc::FcFrame, sim::SimTime) {
    ++fc_delivered;
  });
  for (int i = 0; i < 200; ++i) {
    fc::FcFrame frame;
    frame.header.d_id = 2;
    frame.header.s_id = 1;
    frame.header.seq_cnt = static_cast<std::uint16_t>(i);
    frame.payload.assign(64, 0x5A);
    port_a.send(frame);
  }
  bed.settle(sim::milliseconds(100));

  // ---- Monitor both campaigns ------------------------------------------
  std::printf("=== Myrinet link (GAP -> IDLE corruption) ===\n");
  const auto& mstats =
      bed.injector().stream_stats(core::Direction::kLeftToRight);
  std::printf("%s", mstats.render().c_str());
  std::printf("udp sent=500 received=%llu crc-drops=%llu\n\n",
              (unsigned long long)sink.received(),
              (unsigned long long)bed.nic(1).stats().crc_errors);

  std::printf("=== Fibre Channel link (payload toggle) ===\n");
  std::printf("frames sent=%llu delivered=%d crc32-drops=%llu "
              "credit stalls=%llu\n",
              (unsigned long long)port_a.stats().frames_sent, fc_delivered,
              (unsigned long long)port_b.stats().crc_errors,
              (unsigned long long)port_a.stats().credit_stall_events);
  std::printf("fc injector injections=%llu\n",
              (unsigned long long)
                  fc_injector.fifo_stats(core::Direction::kLeftToRight)
                      .injections);
  std::printf("(every frame is corrupted and dropped by CRC-32 before a "
              "receive buffer frees,\n so no R_RDY ever returns: the sender "
              "exhausts its BB credit and stalls — a\n failure mode specific "
              "to credit-based flow control that the injector exposes)\n\n");

  // ---- And the FC wire itself: 8b/10b error surface --------------------
  fc::FcFrame probe;
  probe.payload.assign(16, 0x42);
  const auto symbols = fc::frame_to_symbols(probe);
  auto wire = phy::FcSerdes::encode(symbols);
  phy::flip_wire_bit(wire, 10, 3);
  const auto decoded = phy::FcSerdes::decode(wire);
  std::printf("wire-level single-bit fault: %llu code violations, "
              "%llu disparity errors on decode\n",
              (unsigned long long)decoded.code_violations,
              (unsigned long long)decoded.disparity_errors);
  return 0;
}
