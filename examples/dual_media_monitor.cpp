// Dual-media failure analysis: "failure analysis can be performed
// simultaneously over both of these networks" (abstract) — the board
// carries both a MyriPHY and an FCPHY (paper Fig. 4).
//
// Since the Fabric refactor this is one campaign definition realized over
// both media: the same warmup/window/workload spec, the same 8-class
// manifestation taxonomy, the same counter snapshot — only the fault's
// compare/corrupt vectors are retargeted at each medium's framing (GAP
// symbols on Myrinet, the sequence payload fill on FC). Everything that
// used to be hand-wired here (splicing, workload, monitors, statistics)
// now comes from nftape::make_fabric + CampaignRunner.
//
// Build & run:  ./build/examples/dual_media_monitor
#include <cstdio>

#include "fc/frame.hpp"
#include "nftape/campaign.hpp"
#include "nftape/fabric.hpp"
#include "nftape/faults.hpp"
#include "phy/serdes.hpp"

using namespace hsfi;

namespace {

/// The shared campaign shape; only the medium and fault differ per run.
nftape::CampaignResult run_on(nftape::Medium medium,
                              const core::InjectorConfig& fault) {
  nftape::TestbedConfig config;
  config.map_period = sim::milliseconds(100);
  const auto fabric = nftape::make_fabric(medium, config);
  fabric->start();
  fabric->settle(sim::milliseconds(150));

  nftape::CampaignSpec spec;
  spec.name = std::string(nftape::to_string(medium));
  spec.medium = medium;
  spec.fault_from_switch = fault;
  spec.warmup = sim::milliseconds(5);
  spec.duration = sim::milliseconds(50);
  spec.drain = sim::milliseconds(5);
  spec.workload.udp_interval = sim::microseconds(100);
  nftape::CampaignRunner runner(*fabric);
  return runner.run(spec);
}

void report(const char* banner, const nftape::CampaignResult& r) {
  std::printf("=== %s ===\n", banner);
  std::printf("sent=%llu received=%llu loss=%.1f%% injections=%llu\n",
              (unsigned long long)r.messages_sent,
              (unsigned long long)r.messages_received, 100.0 * r.loss_rate(),
              (unsigned long long)r.injections);
  std::printf("manifestations:");
  for (const auto m : analysis::all_manifestations()) {
    if (r.manifestations[m] == 0) continue;
    std::printf(" %s:%llu", std::string(analysis::to_string(m)).c_str(),
                (unsigned long long)r.manifestations[m]);
  }
  std::printf("\n");
  if (r.medium == nftape::Medium::kFc) {
    std::printf("credit stalls=%llu sequence aborts=%llu\n",
                (unsigned long long)r.fc_credit_stalls,
                (unsigned long long)r.fc_sequences_aborted);
    std::printf("(a corrupted frame is dropped by CRC-32 before a receive "
                "buffer frees, so\n its R_RDY never returns: BB credit leaks "
                "until the recovery timeout —\n a failure mode specific to "
                "credit-based flow control)\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Myrinet: corrupt every GAP into IDLE — framing damage the receiving
  // interface reports as marker errors.
  report("Myrinet link (GAP -> IDLE corruption)",
         run_on(nftape::Medium::kMyrinet,
                nftape::control_symbol_corruption(myrinet::ControlSymbol::kGap,
                                                  myrinet::ControlSymbol::kIdle)));

  // Fibre Channel: flip payload-fill bits in flight (LFSR-thinned); the
  // frame CRC-32 catches them, like the Myrinet destination campaign.
  report("Fibre Channel link (payload fill toggle)",
         run_on(nftape::Medium::kFc, nftape::fc_fill_corruption(0x5A, 0x000F)));

  // ---- And the FC wire itself: 8b/10b error surface --------------------
  fc::FcFrame probe;
  probe.payload.assign(16, 0x42);
  std::vector<hsfi::link::Symbol> symbols;
  fc::frame_to_symbols_into(probe, symbols);
  phy::FcWireStream wire;
  phy::FcSerdes::encode_into(symbols, wire);
  phy::flip_wire_bit(wire, 10, 3);
  phy::FcDecodedStream decoded;
  phy::FcSerdes::decode_into(wire, decoded);
  std::printf("wire-level single-bit fault: %llu code violations, "
              "%llu disparity errors on decode\n",
              (unsigned long long)decoded.code_violations,
              (unsigned long long)decoded.disparity_errors);
  return 0;
}
