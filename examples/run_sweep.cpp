// Parallel campaign sweep driver: the NFTAPE "external management and
// control framework" role, scaled out. Expands a fault × direction ×
// replicate grid into independent runs and executes them on a worker pool,
// one private simulated testbed per run.
//
//   ./build/examples/run_sweep                          # default 32-run grid
//   ./build/examples/run_sweep --workers 1 --out a.jsonl
//   ./build/examples/run_sweep --workers 8 --out b.jsonl
//   sort a.jsonl | diff - <(sort b.jsonl)               # byte-identical
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "myrinet/control.hpp"
#include "nftape/faults.hpp"
#include "orchestrator/jsonl.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"

using namespace hsfi;
using myrinet::ControlSymbol;

namespace {

std::vector<orchestrator::FaultPoint> fault_axis() {
  const auto sym = [](ControlSymbol a, ControlSymbol b) {
    return nftape::control_symbol_corruption(a, b);
  };
  return {
      {"stop-idle", sym(ControlSymbol::kStop, ControlSymbol::kIdle)},
      {"stop-gap", sym(ControlSymbol::kStop, ControlSymbol::kGap)},
      {"stop-go", sym(ControlSymbol::kStop, ControlSymbol::kGo)},
      {"gap-go", sym(ControlSymbol::kGap, ControlSymbol::kGo)},
      {"gap-idle", sym(ControlSymbol::kGap, ControlSymbol::kIdle)},
      {"go-stop", sym(ControlSymbol::kGo, ControlSymbol::kStop)},
      {"marker-msb", nftape::marker_msb_corruption()},
      {"seu-00FF", nftape::random_bit_flip_seu(0x00FF)},
  };
}

void usage(std::FILE* to = stdout) {
  std::fprintf(
      to,
      "usage: run_sweep [options]\n"
      "  --workers N      worker threads (default: hardware concurrency)\n"
      "  --seed S         base seed; per-run seeds derive from it (default 1)\n"
      "  --replicates R   seed replicates per grid point (default 2)\n"
      "  --duration-ms D  measurement window per run (default 60)\n"
      "  --out FILE       write JSONL records there (default: stdout)\n"
      "  --timing         include per-run wall_ms in the JSONL (wall time\n"
      "                   is nondeterministic; omit for byte-comparable runs)\n"
      "  --bench-out FILE write sweep throughput in the BENCH_sim_kernel.json\n"
      "                   schema ({bench, metric, value, unit, commit})\n"
      "  --faults a,b,c   restrict the fault axis (see --list)\n"
      "  --list           print the fault axis and exit\n");
}

/// Commit stamp for --bench-out records: HSFI_COMMIT env when set (the
/// before/after measurement scripts pin it), else git, else "unknown".
/// Self-contained on purpose — this file must build against kernels that
/// predate bench/harness.
std::string commit_id() {
  if (const char* env = std::getenv("HSFI_COMMIT"); env != nullptr && *env) {
    return env;
  }
  std::string commit = "unknown";
  if (std::FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buffer[64] = {};
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      std::string line(buffer);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) commit = line;
    }
    pclose(pipe);
  }
  return commit;
}

bool write_bench_out(const std::string& path,
                     const std::vector<orchestrator::RunRecord>& records,
                     double total_s) {
  std::uint64_t events = 0;
  for (const auto& r : records) events += r.result.events_executed;
  const std::string commit = commit_id();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  out << "[\n";
  bool first = true;
  const auto record = [&](const char* metric, double v, int decimals,
                          const char* unit) {
    if (!first) out << ",\n";
    first = false;
    orchestrator::JsonObject o;
    o.add("bench", "run_sweep");
    o.add("metric", metric);
    o.add_fixed("value", v, decimals);
    o.add("unit", unit);
    o.add("commit", commit);
    out << "  " << o.str();
  };
  record("events_per_sec_median",
         total_s > 0 ? static_cast<double>(events) / total_s : 0, 1,
         "events/s");
  record("wall_s_median", total_s, 6, "s");
  record("events", static_cast<double>(events), 0, "count");
  record("runs", static_cast<double>(records.size()), 0, "count");
  out << "\n]\n";
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 0;
  std::uint64_t seed = 1;
  std::size_t replicates = 2;
  long duration_ms = 60;
  std::string out_path;
  std::string bench_out_path;
  bool timing = false;
  std::string fault_filter;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Both lambdas bound-check i before reading argv[++i]: a flag at the
    // end of the command line must not read past argv, and a non-numeric
    // value must not silently parse as 0.
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n\n", arg.c_str());
        usage(stderr);
        std::exit(1);
      }
      return argv[++i];
    };
    const auto numeric = [&]() -> long long {
      const char* v = value();
      char* end = nullptr;
      const long long parsed = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "%s needs a non-negative integer, got '%s'\n\n",
                     arg.c_str(), v);
        usage(stderr);
        std::exit(1);
      }
      return parsed;
    };
    if (arg == "--workers") {
      workers = static_cast<std::size_t>(numeric());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(numeric());
    } else if (arg == "--replicates") {
      replicates = static_cast<std::size_t>(numeric());
    } else if (arg == "--duration-ms") {
      duration_ms = static_cast<long>(numeric());
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--bench-out") {
      bench_out_path = value();
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--faults") {
      fault_filter = value();
    } else if (arg == "--list") {
      for (const auto& f : fault_axis()) std::printf("%s\n", f.name.c_str());
      return 0;
    } else if (arg == "--help") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg.c_str());
      usage(stderr);
      return 1;
    }
  }

  orchestrator::SweepSpec sweep;
  sweep.name = "control-plane sweep";
  sweep.base_seed = seed;
  sweep.replicates = replicates == 0 ? 1 : replicates;
  // STOP/GO symbols originate mostly on the switch side (back-pressure
  // toward the sender), so the from-switch direction is the interesting
  // single-direction point.
  sweep.directions = {orchestrator::FaultDirection::kFromSwitch,
                      orchestrator::FaultDirection::kBoth};
  for (auto& f : fault_axis()) {
    if (!fault_filter.empty()) {
      const std::string needle = "," + f.name + ",";
      const std::string hay = "," + fault_filter + ",";
      if (hay.find(needle) == std::string::npos) continue;
    }
    sweep.faults.push_back(std::move(f));
  }
  if (sweep.faults.empty()) {
    std::fprintf(stderr, "no faults selected (see --list)\n");
    return 1;
  }

  sweep.testbed.map_period = sim::milliseconds(100);
  sweep.testbed.nic_config.rx_processing_time = sim::microseconds(1);
  sweep.testbed.send_stack_time = sim::microseconds(1);
  sweep.base.warmup = sim::milliseconds(10);
  sweep.base.duration = sim::milliseconds(duration_ms);
  sweep.base.drain = sim::milliseconds(10);
  // Full-capacity bursts (paper §4.2): collisions at the switch outputs
  // engage STOP/GO flow control, so control-symbol faults have symbols to
  // corrupt. Jitter makes the seed axis real — replicates differ.
  sweep.base.workload.udp_interval = sim::microseconds(12);
  sweep.base.workload.burst_size = 4;
  sweep.base.workload.jitter = 0.5;
  sweep.base.workload.payload_size = 256;

  const auto runs = orchestrator::expand(sweep);

  orchestrator::RunnerConfig rc;
  rc.workers = workers;
  rc.on_progress = [](const orchestrator::Progress& p) {
    std::fprintf(stderr, "\r%zu/%zu done, %zu failed, %zu in flight   ",
                 p.completed + p.failed, p.total, p.failed, p.in_flight);
  };
  orchestrator::Runner runner(rc);

  std::fprintf(stderr, "%zu runs (%zu faults x %zu directions x %zu reps)\n",
               runs.size(), sweep.faults.size(), sweep.directions.size(),
               sweep.replicates);
  const auto start = std::chrono::steady_clock::now();
  const auto records = runner.run_all(runs);
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::fprintf(stderr, "\n");

  // Records come back indexed by run, so the file is deterministic (and,
  // without --timing, byte-identical for any --workers value).
  std::ostringstream lines;
  for (const auto& r : records) {
    lines << orchestrator::to_jsonl(r, timing) << '\n';
  }
  if (out_path.empty()) {
    std::fputs(lines.str().c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << lines.str();
  }

  if (!bench_out_path.empty() &&
      !write_bench_out(bench_out_path, records, total_s)) {
    return 1;
  }

  auto report = orchestrator::summarize(sweep.name, records);
  report.add_note(nftape::cell("%.1f s wall, %.2f runs/s", total_s,
                               static_cast<double>(records.size()) / total_s));
  std::fprintf(stderr, "\n%s", report.render().c_str());

  for (const auto& r : records) {
    if (r.outcome != orchestrator::RunOutcome::kOk) return 2;
  }
  return 0;
}
