// Parallel campaign sweep driver: the NFTAPE "external management and
// control framework" role, scaled out. Expands a fault × direction ×
// replicate grid into independent runs and executes them on a worker pool,
// one private simulated testbed per run.
//
//   ./build/examples/run_sweep                          # default 32-run grid
//   ./build/examples/run_sweep --workers 1 --out a.jsonl
//   ./build/examples/run_sweep --workers 8 --out b.jsonl
//   sort a.jsonl | diff - <(sort b.jsonl)               # byte-identical
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adaptive/controller.hpp"
#include "adaptive/strategy.hpp"
#include "monitor/feed.hpp"
#include "monitor/jsonl_reader.hpp"
#include "monitor/service.hpp"
#include "nftape/fabric.hpp"
#include "nftape/medium.hpp"
#include "orchestrator/campaign_file.hpp"
#include "orchestrator/json_value.hpp"
#include "orchestrator/jsonl.hpp"
#include "orchestrator/repro.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/shard.hpp"
#include "orchestrator/sweep.hpp"
#include "scenario/minimizer.hpp"
#include "scenario/scenario.hpp"

using namespace hsfi;

namespace {

std::vector<orchestrator::FaultPoint> fault_axis_for(nftape::Medium medium) {
  return orchestrator::standard_fault_axis(medium);
}

/// The built-in (non --spec) testbed and workload configuration. Factored
/// out of main because --replay must rebuild it bit-for-bit from a trace:
/// a replayed run only matches its stored record if every field the trace
/// does not carry is identical to what the emitting process used.
void apply_static_config(orchestrator::SweepSpec& sweep) {
  sweep.testbed.map_period = sim::milliseconds(100);
  sweep.testbed.nic_config.rx_processing_time = sim::microseconds(1);
  sweep.testbed.send_stack_time = sim::microseconds(1);
  // FC realization: drain receive buffers faster than the 12 us sequence
  // pace so the healthy path never stalls on credits.
  sweep.testbed.fc.rx_processing_time = sim::microseconds(1);
  sweep.base.warmup = sim::milliseconds(10);
  sweep.base.drain = sim::milliseconds(10);
  // Full-capacity bursts (paper §4.2): collisions at the switch outputs
  // engage STOP/GO flow control, so control-symbol faults have symbols to
  // corrupt. Jitter makes the seed axis real — replicates differ.
  sweep.base.workload.udp_interval = sim::microseconds(12);
  sweep.base.workload.burst_size = 4;
  sweep.base.workload.jitter = 0.5;
  sweep.base.workload.payload_size = 256;
}

scenario::Medium scenario_medium_for(nftape::Medium m) {
  return m == nftape::Medium::kFc ? scenario::Medium::kFc
                                  : scenario::Medium::kMyrinet;
}

void usage(std::FILE* to = stdout) {
  std::fprintf(
      to,
      "usage: run_sweep [options]\n"
      "  --workers N      worker threads (default: hardware concurrency)\n"
      "  --snapshots on|off\n"
      "                   snapshot/fork execution: each worker settles one\n"
      "                   fabric per (topology, workload, medium) cell,\n"
      "                   captures the settled state, and forks every run\n"
      "                   of that cell from the snapshot instead of\n"
      "                   re-simulating boot + mapping (default: off; the\n"
      "                   JSONL records are byte-identical either way)\n"
      "  --seed S         base seed; per-run seeds derive from it (default 1)\n"
      "  --replicates R   seed replicates per grid point (default 2)\n"
      "  --duration-ms D  measurement window per run (default 60)\n"
      "  --out FILE       write JSONL records there (default: stdout)\n"
      "  --timing         include per-run wall_ms in the JSONL (wall time\n"
      "                   is nondeterministic; omit for byte-comparable runs)\n"
      "  --bench-out FILE write sweep throughput in the BENCH_sim_kernel.json\n"
      "                   schema ({bench, metric, value, unit, commit})\n"
      "  --medium M       network under test: myrinet (default) or fc; picks\n"
      "                   the fabric realization and the fault axis\n"
      "  --faults a,b,c   restrict the fault axis (see --list)\n"
      "  --list           print the selected medium's fault axis and exit\n"
      "  --list-faults    like --list but with one-line descriptions\n"
      "  --list-scenarios print the registered misbehavior scenarios (name,\n"
      "                   medium, description) and exit\n"
      "  --scenario S     arm the named protocol-misbehavior scenario (see\n"
      "                   --list-scenarios) over every run's measurement\n"
      "                   window; composes with the fault axis and\n"
      "                   --strategy, and step firings count as injections\n"
      "  --emit-repro F   with --scenario: execute one reference run, then\n"
      "                   delta-debug (ddmin) the step sequence down to a\n"
      "                   minimal reproducer of the same manifestation\n"
      "                   class on a snapshot-forked fabric, verify it, and\n"
      "                   write a replayable trace to F\n"
      "  --replay F       re-execute a trace written by --emit-repro and\n"
      "                   compare the produced JSONL record byte-for-byte\n"
      "                   against the record stored in the trace\n"
      "  --strategy S     closed-loop campaign instead of the static grid:\n"
      "                   fixed (the static grid through the controller),\n"
      "                   bisect (binary-search the manifestation threshold\n"
      "                   on the udp-interval axis per fault x direction\n"
      "                   cell), or coverage (replicate where rare\n"
      "                   manifestation classes still lack observations)\n"
      "  --tolerance T    bisect: stop once the threshold bracket is <= T\n"
      "                   microseconds wide (default 24)\n"
      "  --max-rounds N   adaptive round cap (default 12)\n"
      "  --target-count N coverage: observations wanted per manifestation\n"
      "                   class per cell (default 5)\n"
      "  --monitor        attach the live monitor: stream every completed\n"
      "                   run into the online analysis service and print the\n"
      "                   per-cell table (runs, Wilson 95%% manifestation CI,\n"
      "                   class mix, drift flags) to stderr after the sweep\n"
      "  --monitor-interval-ms N\n"
      "                   with --monitor: also re-render the table at most\n"
      "                   every N ms while the campaign runs (default: final\n"
      "                   table only)\n"
      "  --early-cancel   with --strategy: live mode — the streaming feed\n"
      "                   cancels a cell's remaining runs in a round once\n"
      "                   the strategy declares them redundant (records\n"
      "                   become outcome=skipped; the JSONL stream is no\n"
      "                   longer byte-stable across worker counts)\n"
      "  --dry-run        print the expanded grid (static) or the round-0\n"
      "                   batch (adaptive) without executing anything\n"
      "  --spec FILE      declarative campaign file (JSON: targets, media,\n"
      "                   fault subsets, grids, strategy); replaces the grid\n"
      "                   flags (--medium/--faults/--seed/--replicates/\n"
      "                   --duration-ms/--strategy come from the spec)\n"
      "  --shard K/N      with --spec --out: execute only shard K of N\n"
      "                   (0-based; ownership is seed-keyed, so all N\n"
      "                   processes agree without coordination); writes\n"
      "                   FILE.shardKofN plus a durable .ckpt sidecar\n"
      "  --merge N        with --spec --out: merge the N shard files into\n"
      "                   --out, byte-identical to a single-process run\n"
      "  --resume         with --spec --out: continue after the last durable\n"
      "                   checkpoint batch (static) or round (strategy);\n"
      "                   refuses checkpoints from an edited spec\n"
      "  --batch N        with --spec: override the spec's checkpoint_batch\n"
      "  --crash-after-batches N\n"
      "                   test hook: append a torn record and hard-exit (as\n"
      "                   if SIGKILLed) after N durable batches/rounds\n");
}

/// Commit stamp for --bench-out records: HSFI_COMMIT env when set (the
/// before/after measurement scripts pin it), else git, else "unknown".
/// Self-contained on purpose — this file must build against kernels that
/// predate bench/harness.
std::string commit_id() {
  if (const char* env = std::getenv("HSFI_COMMIT"); env != nullptr && *env) {
    return env;
  }
  std::string commit = "unknown";
  if (std::FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buffer[64] = {};
    if (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      std::string line(buffer);
      while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
        line.pop_back();
      }
      if (!line.empty()) commit = line;
    }
    pclose(pipe);
  }
  return commit;
}

/// Re-renders the monitor table to stderr at most once per interval,
/// driven by run completions (no render thread; the runner serializes
/// sink callbacks, so the steady_clock read races with nothing).
class IntervalRenderer final : public orchestrator::RecordSink {
 public:
  IntervalRenderer(monitor::MonitorService& service, long interval_ms)
      : service_(service),
        interval_(std::chrono::milliseconds(interval_ms)),
        last_(std::chrono::steady_clock::now()) {}

  void on_record(const orchestrator::RunRecord&) override {
    const auto now = std::chrono::steady_clock::now();
    if (now - last_ < interval_) return;
    last_ = now;
    std::fprintf(stderr, "\n%s",
                 service_.table("live monitor").render().c_str());
  }

 private:
  monitor::MonitorService& service_;
  std::chrono::steady_clock::duration interval_;
  std::chrono::steady_clock::time_point last_;
};

bool write_bench_out(const std::string& path,
                     const std::vector<orchestrator::RunRecord>& records,
                     double total_s) {
  std::uint64_t events = 0;
  std::uint64_t symbols = 0;
  for (const auto& r : records) {
    events += r.result.events_executed;
    symbols += r.result.symbols_sent;
  }
  const std::string commit = commit_id();
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  out << "[\n";
  bool first = true;
  const auto record = [&](const char* metric, double v, int decimals,
                          const char* unit) {
    if (!first) out << ",\n";
    first = false;
    orchestrator::JsonObject o;
    o.add("bench", "run_sweep");
    o.add("metric", metric);
    o.add_fixed("value", v, decimals);
    o.add("unit", unit);
    o.add("commit", commit);
    out << "  " << o.str();
  };
  record("events_per_sec_median",
         total_s > 0 ? static_cast<double>(events) / total_s : 0, 1,
         "events/s");
  record("wall_s_median", total_s, 6, "s");
  record("events", static_cast<double>(events), 0, "count");
  // Link symbols carried over the same runs: invariant under kernel-level
  // batching, so events-per-symbol trending down means the refactor is
  // removing scheduling overhead rather than simulating less traffic.
  record("symbols", static_cast<double>(symbols), 0, "count");
  record("runs", static_cast<double>(records.size()), 0, "count");
  out << "\n]\n";
  return static_cast<bool>(out);
}

// ===========================================================================
// --spec mode: declarative campaign files, seed-keyed sharding, durable
// checkpoints, resume, and shard merge (see orchestrator/campaign_file.hpp
// and orchestrator/shard.hpp).

struct SpecCli {
  std::string spec_path;
  std::string out_path;
  std::size_t workers = 0;
  bool snapshots = false;
  bool timing = false;
  bool resume = false;
  bool dry_run = false;
  std::uint32_t shard_k = 0;
  std::uint32_t shard_n = 1;
  std::uint32_t merge_n = 0;
  std::size_t batch_override = 0;
  std::uint64_t crash_after = 0;  ///< test hook: hard-exit after N batches
};

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
  return buf;
}

/// The --crash-after-batches hook: append a torn (newline-less, truncated)
/// record to the data file — the worst-case in-flight write — then die
/// without unwinding, like a SIGKILL would. Resume must discard the tear.
[[noreturn]] void crash_torn(const std::string& data_file) {
  const int fd = ::open(data_file.c_str(), O_WRONLY | O_APPEND);
  if (fd >= 0) {
    const char torn[] = "{\"run\":9999999,\"name\":\"torn-by-cra";
    const ssize_t ignored = ::write(fd, torn, sizeof(torn) - 1);
    (void)ignored;
    ::close(fd);
  }
  _exit(9);
}

int run_spec_static(const orchestrator::CampaignFile& file,
                    const SpecCli& cli) {
  const auto runs = orchestrator::expand_campaign(file);

  if (cli.dry_run) {
    std::printf("dry run: %zu runs across %zu targets\n", runs.size(),
                file.targets.size());
    for (const auto& r : runs) {
      if (cli.shard_n > 1 &&
          orchestrator::shard_of(r.seed, cli.shard_n) != cli.shard_k) {
        continue;
      }
      std::printf("%zu %s seed=%llu\n", r.index, r.campaign.name.c_str(),
                  (unsigned long long)r.seed);
    }
    return 0;
  }

  if (cli.merge_n > 0) {
    const std::size_t merged =
        orchestrator::merge_shards(runs, cli.out_path, cli.merge_n);
    std::fprintf(stderr, "merged %zu records from %u shards into %s\n",
                 merged, cli.merge_n, cli.out_path.c_str());
    return 0;
  }

  const auto mine = orchestrator::shard_runs(runs, cli.shard_k, cli.shard_n);
  std::fprintf(stderr, "%s: %zu of %zu runs on shard %u/%u\n",
               file.name.c_str(), mine.size(), runs.size(), cli.shard_k,
               cli.shard_n);

  orchestrator::RunnerConfig rc;
  rc.workers = cli.workers;
  rc.snapshots = cli.snapshots;
  rc.on_progress = [](const orchestrator::Progress& p) {
    std::fprintf(stderr, "\r%zu/%zu done, %zu failed, %zu in flight   ",
                 p.completed + p.failed, p.total, p.failed, p.in_flight);
  };
  orchestrator::Runner runner(rc);

  if (cli.out_path.empty()) {
    // No durability without a file: plain in-memory sweep to stdout.
    const auto records = runner.run_all(mine);
    std::fprintf(stderr, "\n");
    for (const auto& r : records) {
      std::printf("%s\n", orchestrator::to_jsonl(r, cli.timing).c_str());
    }
    std::fprintf(stderr, "\n%s",
                 orchestrator::summarize(file.name, records).render().c_str());
    for (const auto& r : records) {
      if (r.outcome != orchestrator::RunOutcome::kOk) return 2;
    }
    return 0;
  }

  const std::string data_file =
      orchestrator::shard_path(cli.out_path, cli.shard_k, cli.shard_n);
  orchestrator::Checkpoint identity;
  identity.spec_digest = file.digest;
  identity.shard = cli.shard_k;
  identity.of = cli.shard_n;

  orchestrator::ShardOptions opts;
  opts.batch =
      cli.batch_override != 0 ? cli.batch_override : file.checkpoint_batch;
  opts.resume = cli.resume;
  opts.include_timing = cli.timing;
  if (cli.crash_after > 0) {
    opts.after_batch = [&](const orchestrator::Checkpoint& c) {
      if (c.batches >= cli.crash_after) crash_torn(data_file);
    };
  }

  const auto result =
      orchestrator::run_sharded(runner, mine, data_file, identity, opts);
  std::fprintf(stderr, "\n%s: %zu runs executed, %llu restored from %s\n",
               data_file.c_str(), result.executed.size(),
               (unsigned long long)result.restored,
               orchestrator::checkpoint_path(data_file).c_str());
  if (!result.executed.empty()) {
    std::fprintf(
        stderr, "\n%s",
        orchestrator::summarize(file.name, result.executed).render().c_str());
  }
  for (const auto& r : result.executed) {
    if (r.outcome != orchestrator::RunOutcome::kOk) return 2;
  }
  return 0;
}

/// Per-target cursor of the adaptive sidecar.
struct AdaptiveTargetState {
  std::uint64_t rounds = 0;
  std::uint64_t records = 0;  ///< JSONL lines this target owns, in order
  bool done = false;
};

void write_adaptive_checkpoint(const std::string& sidecar,
                               std::uint64_t digest, std::uint64_t bytes,
                               const std::vector<AdaptiveTargetState>& state) {
  std::string targets = "[";
  for (std::size_t i = 0; i < state.size(); ++i) {
    orchestrator::JsonObject t;
    t.add_u64("rounds", state[i].rounds);
    t.add_u64("records", state[i].records);
    t.add_bool("done", state[i].done);
    if (i > 0) targets += ',';
    targets += t.str();
  }
  targets += ']';
  const std::string line = "{\"magic\":\"hsfi-ckpt-v1\",\"mode\":\"adaptive\""
                           ",\"spec\":\"" + hex64(digest) + "\",\"bytes\":" +
                           std::to_string(bytes) + ",\"targets\":" + targets +
                           "}\n";
  orchestrator::write_text_durable(sidecar, line);
}

/// Strategy campaigns from a spec: one Controller per target, records
/// appended durably with a sidecar updated at every round barrier. Resume
/// parses the durable JSONL back (monitor::parse_record — the strict
/// record contract) and replays it through Controller::run, which
/// re-derives and verifies every restored round before executing new ones.
int run_spec_adaptive(const orchestrator::CampaignFile& file,
                      const SpecCli& cli) {
  const orchestrator::StrategySpec& strat = *file.strategy;
  const std::string sidecar =
      cli.out_path.empty() ? "" : cli.out_path + ".ckpt";

  std::vector<AdaptiveTargetState> state(file.targets.size());
  std::vector<std::vector<std::vector<adaptive::ReplayRecord>>> replays(
      file.targets.size());
  std::uint64_t keep_bytes = 0;

  if (cli.resume) {
    std::ifstream in(sidecar, std::ios::binary);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      std::string error;
      const auto doc = orchestrator::parse_json(text.str(), &error);
      if (!doc) {
        std::fprintf(stderr, "corrupt checkpoint %s (%s)\n", sidecar.c_str(),
                     error.c_str());
        return 1;
      }
      const auto* mode = doc->find("mode");
      const auto* spec = doc->find("spec");
      if (mode == nullptr || mode->text != "adaptive" || spec == nullptr ||
          std::strtoull(spec->text.c_str(), nullptr, 16) != file.digest) {
        std::fprintf(stderr,
                     "checkpoint %s does not match this campaign spec — "
                     "refusing to splice\n",
                     sidecar.c_str());
        return 1;
      }
      const auto* bytes = doc->find("bytes");
      const auto* targets = doc->find("targets");
      if (bytes == nullptr || !bytes->as_u64(keep_bytes) ||
          targets == nullptr ||
          targets->items.size() != file.targets.size()) {
        std::fprintf(stderr, "checkpoint %s is malformed\n", sidecar.c_str());
        return 1;
      }
      for (std::size_t i = 0; i < state.size(); ++i) {
        const auto& t = targets->items[i];
        const auto* rounds = t.find("rounds");
        const auto* records = t.find("records");
        const auto* done = t.find("done");
        if (rounds == nullptr || !rounds->as_u64(state[i].rounds) ||
            records == nullptr || !records->as_u64(state[i].records) ||
            done == nullptr) {
          std::fprintf(stderr, "checkpoint %s is malformed\n",
                       sidecar.c_str());
          return 1;
        }
        state[i].done = done->boolean;
      }

      // Read the durable record prefix back and replay it per target, in
      // round order (emission order is round-major, so grouping is a walk).
      std::ifstream data(cli.out_path, std::ios::binary);
      if (!data) {
        std::fprintf(stderr, "checkpoint %s exists but %s is missing\n",
                     sidecar.c_str(), cli.out_path.c_str());
        return 1;
      }
      std::string prefix(keep_bytes, '\0');
      data.read(prefix.data(), static_cast<std::streamsize>(keep_bytes));
      if (static_cast<std::uint64_t>(data.gcount()) != keep_bytes) {
        std::fprintf(stderr,
                     "%s is shorter than its checkpoint (%llu bytes) — the "
                     "file was tampered with\n",
                     cli.out_path.c_str(), (unsigned long long)keep_bytes);
        return 1;
      }
      std::istringstream lines(prefix);
      std::string line;
      for (std::size_t ti = 0; ti < state.size(); ++ti) {
        for (std::uint64_t n = 0; n < state[ti].records; ++n) {
          if (!std::getline(lines, line)) {
            std::fprintf(stderr, "%s has fewer records than its checkpoint\n",
                         cli.out_path.c_str());
            return 1;
          }
          const auto rec = monitor::parse_record(line);
          if (!rec) {
            std::fprintf(stderr, "unparseable record in %s: %s\n",
                         cli.out_path.c_str(), line.c_str());
            return 1;
          }
          auto& rounds = replays[ti];
          if (rec->round >= rounds.size()) rounds.resize(rec->round + 1);
          adaptive::ReplayRecord rr;
          rr.name = rec->name;
          rr.ok = rec->ok();
          rr.injections = rec->injections;
          rr.duplicates = rec->duplicates;
          rr.manifestations = rec->manifestations;
          rounds[rec->round].push_back(std::move(rr));
        }
      }
      std::fprintf(stderr, "resuming %s: %llu durable bytes restored\n",
                   cli.out_path.c_str(), (unsigned long long)keep_bytes);
    }
  }

  std::unique_ptr<orchestrator::DurableAppender> out;
  if (!cli.out_path.empty()) {
    out = std::make_unique<orchestrator::DurableAppender>(cli.out_path,
                                                          keep_bytes);
  }

  std::vector<orchestrator::RunRecord> executed;
  std::size_t replayed_total = 0;
  std::size_t global_index = 0;
  std::uint64_t rounds_executed = 0;  // across targets, for --crash-after
  bool converged_all = true;

  for (std::size_t ti = 0; ti < file.targets.size(); ++ti) {
    const auto& target = file.targets[ti];
    const orchestrator::SweepSpec& sweep = target.sweep;

    adaptive::AdaptiveSpec aspec;
    aspec.name = file.name + ":" + target.name;
    aspec.base = sweep.base;
    aspec.testbed = sweep.testbed;
    aspec.startup_settle = sweep.startup_settle;
    aspec.faults = sweep.faults;
    aspec.directions = sweep.directions;
    aspec.knob = strat.knob;
    aspec.base_seed = sweep.base_seed;
    aspec.max_rounds = strat.max_rounds;
    aspec.name_prefix = target.name + ":";
    aspec.index_base = global_index;

    adaptive::ControllerConfig cc;
    cc.runner.workers = cli.workers;
    cc.runner.snapshots = cli.snapshots;
    const std::uint64_t replayed_rounds = replays[ti].size();
    cc.on_round = [&](const adaptive::RoundSummary& s) {
      std::fprintf(stderr, "%s round %u: %zu runs (%zu failed), %zu total\n",
                   target.name.c_str(), s.round, s.runs, s.failed,
                   s.total_runs);
      if (s.round < replayed_rounds) return;  // restored, already durable
      if (out != nullptr) {
        // Round barrier = durability barrier: data first, cursor second.
        out->sync();
        state[ti].rounds = s.round + 1;
        state[ti].records = s.total_runs;
        write_adaptive_checkpoint(sidecar, file.digest, out->bytes(), state);
      }
      ++rounds_executed;
      if (cli.crash_after > 0 && rounds_executed >= cli.crash_after) {
        crash_torn(cli.out_path);
      }
    };
    if (out != nullptr) {
      cc.on_record = [&](const orchestrator::RunRecord& r) {
        out->append(orchestrator::to_jsonl(r, cli.timing) + "\n");
      };
    } else {
      cc.on_record = [&](const orchestrator::RunRecord& r) {
        std::printf("%s\n", orchestrator::to_jsonl(r, cli.timing).c_str());
      };
    }

    adaptive::Controller controller(aspec, std::move(cc));

    std::unique_ptr<adaptive::Strategy> strategy;
    if (strat.name == "bisect") {
      adaptive::BisectionConfig bc;
      bc.lo = strat.axis_lo;
      bc.hi = strat.axis_hi;
      bc.tolerance = strat.tolerance_us;
      bc.higher_is_more_intense = false;
      bc.min_manifested = 3;
      strategy = std::make_unique<adaptive::BisectionStrategy>(
          controller.cells(), bc);
    } else if (strat.name == "coverage") {
      adaptive::CoverageConfig cov;
      cov.knob_value = strat.axis_lo;
      cov.target_count = strat.target_count;
      cov.batch_replicates = sweep.replicates;
      strategy = std::make_unique<adaptive::CoverageStrategy>(
          controller.cells(), cov);
    } else {
      adaptive::FixedGridConfig fg;
      fg.knob_values = {
          sim::to_nanoseconds(sweep.base.workload.udp_interval) / 1000.0};
      fg.replicates = sweep.replicates;
      strategy = std::make_unique<adaptive::FixedGridStrategy>(
          controller.cells(), fg);
    }

    if (cli.dry_run) {
      const auto round0 = controller.expand_round(strategy->next_round(0), 0,
                                                  0, strat.name);
      std::printf("%s: %zu runs in round 0 (strategy %s)\n",
                  target.name.c_str(), round0.size(), strat.name.c_str());
      for (const auto& r : round0) {
        std::printf("%zu %s seed=%llu round=%u\n", r.index,
                    r.campaign.name.c_str(), (unsigned long long)r.seed,
                    r.round);
      }
      continue;
    }

    const auto outcome = controller.run(*strategy, replays[ti]);
    global_index += outcome.replayed + outcome.records.size();
    replayed_total += outcome.replayed;
    if (!outcome.converged) converged_all = false;
    for (const auto& r : outcome.records) executed.push_back(r);

    state[ti].rounds = outcome.rounds;
    state[ti].records = outcome.replayed + outcome.records.size();
    state[ti].done = true;
    if (out != nullptr) {
      out->sync();
      write_adaptive_checkpoint(sidecar, file.digest, out->bytes(), state);
    }
  }
  if (cli.dry_run) return 0;

  std::fprintf(stderr, "\n%s [%s]: %zu runs executed, %zu replayed%s\n",
               file.name.c_str(), strat.name.c_str(), executed.size(),
               replayed_total,
               converged_all ? ", all targets converged" : "");
  if (!executed.empty()) {
    std::fprintf(
        stderr, "\n%s",
        orchestrator::summarize(file.name, executed).render().c_str());
  }
  for (const auto& r : executed) {
    if (r.outcome != orchestrator::RunOutcome::kOk &&
        r.outcome != orchestrator::RunOutcome::kSkipped) {
      return 2;
    }
  }
  return 0;
}

// ===========================================================================
// --emit-repro / --replay: reproducer minimization over a misbehavior
// scenario and byte-level trace replay (orchestrator/repro.hpp,
// scenario/minimizer.hpp).

/// Executes one expanded run through the production Runner (one worker,
/// cold fabric) — the byte-determinism reference an emitted trace stores
/// and a replay is compared against.
orchestrator::RunRecord reference_run(const orchestrator::RunSpec& run) {
  orchestrator::RunnerConfig rc;
  rc.workers = 1;
  return orchestrator::Runner(rc).run_all({run}).front();
}

int emit_repro(orchestrator::SweepSpec sweep, bool fault_filtered,
               const std::string& path) {
  // One-run grid: the first selected fault (fault-free baseline when
  // --faults was not given — the scenario alone must manifest), one
  // direction, one replicate.
  sweep.name = "repro";
  if (fault_filtered) {
    sweep.faults.resize(1);
  } else {
    sweep.faults = {{"baseline", std::nullopt, ""}};
  }
  sweep.directions = {orchestrator::FaultDirection::kBoth};
  sweep.intensities.clear();
  sweep.replicates = 1;
  const auto runs = orchestrator::expand(sweep);
  const auto& run = runs.front();

  const auto reference = reference_run(run);
  if (reference.outcome != orchestrator::RunOutcome::kOk) {
    std::fprintf(stderr, "reference run failed (%s): %s\n",
                 std::string(to_string(reference.outcome)).c_str(),
                 reference.error.c_str());
    return 1;
  }
  const std::string expect = orchestrator::dominant_class(reference.result);
  if (expect.empty()) {
    std::fprintf(stderr,
                 "scenario '%s' did not manifest under %s — nothing to "
                 "minimize\n",
                 run.campaign.scenario->name.c_str(),
                 run.campaign.name.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s manifests as %s; minimizing %zu steps\n",
               run.campaign.name.c_str(), expect.c_str(),
               run.campaign.scenario->steps.size());

  // ddmin probes fork from one settled snapshot: boot + mapping are paid
  // once, every candidate subset costs one measurement window.
  const auto fabric = nftape::make_fabric(run.campaign.medium, run.testbed);
  fabric->start();
  fabric->settle(run.startup_settle);
  const auto snap = fabric->capture_snapshot();
  nftape::CampaignRunner probes(*fabric);
  const scenario::Minimizer::Execute execute =
      [&](const scenario::ScenarioSpec& candidate) {
        if (snap != nullptr) fabric->restore_snapshot(*snap);
        nftape::CampaignSpec spec = run.campaign;
        spec.scenario = candidate;
        return orchestrator::dominant_class(probes.run(spec));
      };
  const auto minimized =
      scenario::Minimizer().minimize(*run.campaign.scenario, expect, execute);
  if (!minimized.reproduced) {
    std::fprintf(stderr,
                 "forked re-execution did not reproduce %s; the full "
                 "%zu-step sequence is reported irreducible\n",
                 expect.c_str(), minimized.minimal.steps.size());
    return 1;
  }
  std::fprintf(stderr,
               "minimized %zu -> %zu steps in %zu runs (naive one-at-a-time "
               "removal needs >= %zu)\n",
               run.campaign.scenario->steps.size(),
               minimized.minimal.steps.size(), minimized.runs,
               run.campaign.scenario->steps.size() + 1);

  // Verification: the minimal sequence back through the production Runner
  // on a cold fabric — its record is what the trace stores and what a
  // replay must reproduce byte-for-byte.
  sweep.base.scenario = minimized.minimal;
  const auto verify = reference_run(orchestrator::expand(sweep).front());
  const std::string got = verify.outcome == orchestrator::RunOutcome::kOk
                              ? orchestrator::dominant_class(verify.result)
                              : std::string();
  if (got != expect) {
    std::fprintf(stderr,
                 "verification run classed '%s', expected '%s' — trace not "
                 "written\n",
                 got.c_str(), expect.c_str());
    return 1;
  }

  orchestrator::ReproTrace trace;
  trace.name = verify.name;
  trace.medium = sweep.base.medium;
  trace.seed = sweep.base_seed;
  trace.fault = sweep.faults.front().config ? sweep.faults.front().name : "";
  trace.direction = orchestrator::FaultDirection::kBoth;
  trace.warmup = sweep.base.warmup;
  trace.duration = sweep.base.duration;
  trace.drain = sweep.base.drain;
  trace.udp_interval = sweep.base.workload.udp_interval;
  trace.payload_size = sweep.base.workload.payload_size;
  trace.burst_size = sweep.base.workload.burst_size;
  trace.jitter = sweep.base.workload.jitter;
  trace.scenario = minimized.minimal;
  trace.expect = expect;
  trace.jsonl = orchestrator::to_jsonl(verify, false);

  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  out << orchestrator::to_json(trace);
  out.flush();
  if (!out) {
    std::fprintf(stderr, "write to %s failed\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu-step reproducer for %s)\n", path.c_str(),
               minimized.minimal.steps.size(), expect.c_str());
  return 0;
}

int replay_trace(const std::string& path) {
  orchestrator::ReproTrace trace;
  try {
    trace = orchestrator::load_repro_trace(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  orchestrator::SweepSpec sweep;
  sweep.name = "replay";
  apply_static_config(sweep);
  sweep.base.medium = trace.medium;
  sweep.base.warmup = trace.warmup;
  sweep.base.duration = trace.duration;
  sweep.base.drain = trace.drain;
  sweep.base.workload.udp_interval = trace.udp_interval;
  sweep.base.workload.payload_size = trace.payload_size;
  sweep.base.workload.burst_size = trace.burst_size;
  sweep.base.workload.jitter = trace.jitter;
  sweep.base.scenario = trace.scenario;
  sweep.base_seed = trace.seed;
  sweep.directions = {trace.direction};
  sweep.replicates = 1;
  if (trace.fault.empty()) {
    sweep.faults = {{"baseline", std::nullopt, ""}};
  } else {
    for (auto& f : fault_axis_for(trace.medium)) {
      if (f.name == trace.fault) sweep.faults.push_back(std::move(f));
    }
    if (sweep.faults.empty()) {
      std::fprintf(stderr, "trace fault '%s' is not on the %s axis\n",
                   trace.fault.c_str(),
                   std::string(nftape::to_string(trace.medium)).c_str());
      return 1;
    }
  }

  const auto record = reference_run(orchestrator::expand(sweep).front());
  const std::string line = orchestrator::to_jsonl(record, false);
  if (line == trace.jsonl) {
    std::printf("reproduced %s: %s, record byte-identical\n",
                trace.name.c_str(),
                trace.expect.empty() ? "(no class)" : trace.expect.c_str());
    return 0;
  }
  std::fprintf(stderr,
               "replay of %s DIVERGED\n  stored:   %s\n  replayed: %s\n",
               trace.name.c_str(), trace.jsonl.c_str(), line.c_str());
  return 2;
}

int run_spec(const SpecCli& cli) {
  try {
    const auto file = orchestrator::load_campaign_file(cli.spec_path);
    if (file.strategy.has_value()) {
      if (cli.shard_n > 1 || cli.merge_n > 0) {
        std::fprintf(stderr,
                     "--shard/--merge apply to static campaigns; '%s' is "
                     "steered by strategy %s\n",
                     cli.spec_path.c_str(), file.strategy->name.c_str());
        return 1;
      }
      return run_spec_adaptive(file, cli);
    }
    return run_spec_static(file, cli);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workers = 0;
  bool snapshots = false;
  std::uint64_t seed = 1;
  std::size_t replicates = 2;
  long duration_ms = 60;
  std::string out_path;
  std::string bench_out_path;
  bool timing = false;
  std::string fault_filter;
  nftape::Medium medium = nftape::Medium::kMyrinet;
  bool list_only = false;
  bool list_faults = false;
  bool list_scenarios = false;
  std::string scenario_name;
  std::string emit_repro_path;
  std::string replay_path;
  std::string strategy_name;
  long tolerance_us = 24;
  std::uint32_t max_rounds = 12;
  std::uint64_t target_count = 5;
  bool dry_run = false;
  bool monitor = false;
  long monitor_interval_ms = 0;  // 0 = final table only
  bool early_cancel = false;
  SpecCli spec;
  bool grid_flags_used = false;  // flags the spec supersedes

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Both lambdas bound-check i before reading argv[++i]: a flag at the
    // end of the command line must not read past argv, and a non-numeric
    // value must not silently parse as 0.
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n\n", arg.c_str());
        usage(stderr);
        std::exit(1);
      }
      return argv[++i];
    };
    const auto numeric = [&]() -> long long {
      const char* v = value();
      char* end = nullptr;
      errno = 0;
      const long long parsed = std::strtoll(v, &end, 10);
      // ERANGE check: strtoll saturates out-of-range input to LLONG_MAX and
      // only reports it via errno, so "--runs 99999999999999999999" would
      // otherwise silently become a 9.2e18-run campaign.
      if (errno == ERANGE) {
        std::fprintf(stderr, "%s value out of range: '%s'\n\n", arg.c_str(),
                     v);
        usage(stderr);
        std::exit(1);
      }
      if (end == v || *end != '\0' || parsed < 0) {
        std::fprintf(stderr, "%s needs a non-negative integer, got '%s'\n\n",
                     arg.c_str(), v);
        usage(stderr);
        std::exit(1);
      }
      return parsed;
    };
    if (arg == "--workers") {
      workers = static_cast<std::size_t>(numeric());
    } else if (arg == "--snapshots") {
      // Execution knob like --workers (never changes the records), so it
      // is allowed alongside --spec.
      const std::string v = value();
      if (v == "on") {
        snapshots = true;
      } else if (v == "off") {
        snapshots = false;
      } else {
        std::fprintf(stderr, "--snapshots must be on or off, got '%s'\n\n",
                     v.c_str());
        usage(stderr);
        return 1;
      }
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(numeric());
      grid_flags_used = true;
    } else if (arg == "--replicates") {
      replicates = static_cast<std::size_t>(numeric());
      grid_flags_used = true;
    } else if (arg == "--duration-ms") {
      duration_ms = static_cast<long>(numeric());
      grid_flags_used = true;
    } else if (arg == "--spec") {
      spec.spec_path = value();
    } else if (arg == "--shard") {
      const char* v = value();
      char* end = nullptr;
      errno = 0;
      const unsigned long long k = std::strtoull(v, &end, 10);
      bool ok = errno != ERANGE && end != v && *end == '/';
      unsigned long long n = 0;
      if (ok) {
        const char* rest = end + 1;
        errno = 0;
        n = std::strtoull(rest, &end, 10);
        ok = errno != ERANGE && end != rest && *end == '\0' && n > 0 &&
             k < n && n <= 4096;
      }
      if (!ok) {
        std::fprintf(stderr, "--shard wants K/N with 0 <= K < N, got '%s'\n\n",
                     v);
        usage(stderr);
        return 1;
      }
      spec.shard_k = static_cast<std::uint32_t>(k);
      spec.shard_n = static_cast<std::uint32_t>(n);
    } else if (arg == "--merge") {
      const auto n = numeric();
      if (n < 2 || n > 4096) {
        std::fprintf(stderr, "--merge needs at least 2 shards\n\n");
        usage(stderr);
        return 1;
      }
      spec.merge_n = static_cast<std::uint32_t>(n);
    } else if (arg == "--resume") {
      spec.resume = true;
    } else if (arg == "--batch") {
      const auto n = numeric();
      if (n == 0) {
        std::fprintf(stderr, "--batch must be positive\n\n");
        usage(stderr);
        return 1;
      }
      spec.batch_override = static_cast<std::size_t>(n);
    } else if (arg == "--crash-after-batches") {
      spec.crash_after = static_cast<std::uint64_t>(numeric());
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--bench-out") {
      bench_out_path = value();
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--faults") {
      fault_filter = value();
      grid_flags_used = true;
    } else if (arg == "--medium") {
      grid_flags_used = true;
      const char* v = value();
      const auto parsed = nftape::parse_medium(v);
      if (!parsed) {
        std::fprintf(stderr, "--medium must be myrinet or fc, got '%s'\n\n", v);
        usage(stderr);
        return 1;
      }
      medium = *parsed;
    } else if (arg == "--strategy") {
      strategy_name = value();
      grid_flags_used = true;
      if (strategy_name != "fixed" && strategy_name != "bisect" &&
          strategy_name != "coverage") {
        std::fprintf(stderr,
                     "--strategy must be fixed, bisect, or coverage, got "
                     "'%s'\n\n",
                     strategy_name.c_str());
        usage(stderr);
        return 1;
      }
    } else if (arg == "--tolerance") {
      tolerance_us = static_cast<long>(numeric());
      if (tolerance_us == 0) {
        std::fprintf(stderr, "--tolerance must be positive\n\n");
        usage(stderr);
        return 1;
      }
    } else if (arg == "--max-rounds") {
      max_rounds = static_cast<std::uint32_t>(numeric());
    } else if (arg == "--target-count") {
      target_count = static_cast<std::uint64_t>(numeric());
    } else if (arg == "--monitor") {
      monitor = true;
    } else if (arg == "--monitor-interval-ms") {
      monitor_interval_ms = static_cast<long>(numeric());
      if (monitor_interval_ms == 0) {
        std::fprintf(stderr, "--monitor-interval-ms must be positive\n\n");
        usage(stderr);
        return 1;
      }
    } else if (arg == "--early-cancel") {
      early_cancel = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--list") {
      // Deferred past parsing so `--medium fc --list` works in any order.
      list_only = true;
    } else if (arg == "--list-faults") {
      list_faults = true;
    } else if (arg == "--list-scenarios") {
      list_scenarios = true;
    } else if (arg == "--scenario") {
      scenario_name = value();
      grid_flags_used = true;
    } else if (arg == "--emit-repro") {
      emit_repro_path = value();
      grid_flags_used = true;
    } else if (arg == "--replay") {
      replay_path = value();
    } else if (arg == "--help") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown option '%s'\n\n", arg.c_str());
      usage(stderr);
      return 1;
    }
  }

  if (!replay_path.empty()) {
    // Standalone mode: the trace defines the run; every other campaign
    // flag would contradict it.
    if (grid_flags_used || !spec.spec_path.empty() || monitor || dry_run ||
        list_only || list_faults || list_scenarios) {
      std::fprintf(stderr, "--replay is standalone; drop the other flags\n\n");
      usage(stderr);
      return 1;
    }
    return replay_trace(replay_path);
  }
  if (!emit_repro_path.empty() && scenario_name.empty()) {
    std::fprintf(stderr, "--emit-repro requires --scenario\n\n");
    usage(stderr);
    return 1;
  }
  if (!emit_repro_path.empty() && !strategy_name.empty()) {
    std::fprintf(stderr,
                 "--emit-repro minimizes a single static run; drop "
                 "--strategy\n\n");
    usage(stderr);
    return 1;
  }
  if (monitor_interval_ms > 0 && !monitor) {
    std::fprintf(stderr, "--monitor-interval-ms requires --monitor\n\n");
    usage(stderr);
    return 1;
  }
  if (early_cancel && strategy_name.empty()) {
    std::fprintf(stderr, "--early-cancel requires --strategy\n\n");
    usage(stderr);
    return 1;
  }

  // --spec supersedes the grid flags and owns the shard/resume machinery.
  if (spec.spec_path.empty()) {
    if (spec.shard_n > 1 || spec.merge_n > 0 || spec.resume ||
        spec.batch_override != 0 || spec.crash_after != 0) {
      std::fprintf(stderr,
                   "--shard/--merge/--resume/--batch/--crash-after-batches "
                   "require --spec\n\n");
      usage(stderr);
      return 1;
    }
  } else {
    if (grid_flags_used) {
      std::fprintf(stderr,
                   "--spec defines the campaign; drop "
                   "--medium/--faults/--seed/--replicates/--duration-ms/"
                   "--strategy\n\n");
      usage(stderr);
      return 1;
    }
    if (monitor || early_cancel || !bench_out_path.empty()) {
      std::fprintf(stderr,
                   "--monitor/--early-cancel/--bench-out are not supported "
                   "with --spec\n\n");
      usage(stderr);
      return 1;
    }
    if ((spec.shard_n > 1 || spec.merge_n > 0 || spec.resume) &&
        out_path.empty()) {
      std::fprintf(stderr, "--shard/--merge/--resume require --out\n\n");
      usage(stderr);
      return 1;
    }
    if (spec.shard_n > 1 && spec.merge_n > 0) {
      std::fprintf(stderr, "--shard and --merge are mutually exclusive\n\n");
      usage(stderr);
      return 1;
    }
    spec.out_path = out_path;
    spec.workers = workers;
    spec.snapshots = snapshots;
    spec.timing = timing;
    spec.dry_run = dry_run;
    return run_spec(spec);
  }

  if (list_scenarios) {
    for (const auto& s : scenario::list_scenarios()) {
      std::printf("%-15s %-8s %s\n", std::string(s.name).c_str(),
                  std::string(scenario::to_string(s.medium)).c_str(),
                  std::string(s.description).c_str());
    }
    return 0;
  }
  if (list_only || list_faults) {
    for (const auto& f : fault_axis_for(medium)) {
      if (list_faults) {
        std::printf("%-15s %s\n", f.name.c_str(), f.description.c_str());
      } else {
        std::printf("%s\n", f.name.c_str());
      }
    }
    return 0;
  }

  orchestrator::SweepSpec sweep;
  sweep.name = medium == nftape::Medium::kFc ? "fc symbol sweep"
                                             : "control-plane sweep";
  sweep.base_seed = seed;
  sweep.base.medium = medium;
  sweep.replicates = replicates == 0 ? 1 : replicates;
  // STOP/GO symbols originate mostly on the switch side (back-pressure
  // toward the sender), so the from-switch direction is the interesting
  // single-direction point. On FC the same pair covers R_RDY starvation
  // (from-switch strips the credit returns node 0's sender lives on).
  sweep.directions = {orchestrator::FaultDirection::kFromSwitch,
                      orchestrator::FaultDirection::kBoth};
  for (auto& f : fault_axis_for(medium)) {
    if (!fault_filter.empty()) {
      const std::string needle = "," + f.name + ",";
      const std::string hay = "," + fault_filter + ",";
      if (hay.find(needle) == std::string::npos) continue;
    }
    sweep.faults.push_back(std::move(f));
  }
  if (sweep.faults.empty()) {
    std::fprintf(stderr, "no faults selected (see --list)\n");
    return 1;
  }

  apply_static_config(sweep);
  sweep.base.duration = sim::milliseconds(duration_ms);

  if (!scenario_name.empty()) {
    const auto scen = scenario::find_scenario(scenario_name);
    if (!scen) {
      std::fprintf(stderr, "unknown scenario '%s' (see --list-scenarios)\n",
                   scenario_name.c_str());
      return 1;
    }
    if (!scenario::compatible(*scen, scenario_medium_for(medium))) {
      std::fprintf(stderr,
                   "scenario '%s' drives another medium's protocol objects; "
                   "it cannot arm on %s\n",
                   scenario_name.c_str(),
                   std::string(nftape::to_string(medium)).c_str());
      return 1;
    }
    sweep.base.scenario = *scen;
  }

  if (!emit_repro_path.empty()) {
    return emit_repro(std::move(sweep), !fault_filter.empty(),
                      emit_repro_path);
  }

  // ---------------------------------------------------------------------
  // Adaptive (closed-loop) path: the same fault plane, but a Strategy
  // steers the udp-interval knob through the Controller round by round.
  if (!strategy_name.empty()) {
    adaptive::AdaptiveSpec aspec;
    aspec.name = sweep.name + " [" + strategy_name + "]";
    aspec.base = sweep.base;
    aspec.testbed = sweep.testbed;
    aspec.faults = sweep.faults;
    aspec.directions = sweep.directions;
    aspec.knob = nftape::Knob::kUdpIntervalUs;
    aspec.base_seed = seed;
    aspec.max_rounds = max_rounds;
    adaptive::Controller controller(aspec, {});

    // The intensity axis: datagram interval from the default full-capacity
    // pace (12 us, most intense) out to a trickle (396 us). Smaller
    // interval = more traffic = more faults manifest.
    const double axis_lo = 12.0, axis_hi = 396.0;
    std::unique_ptr<adaptive::Strategy> strategy;
    if (strategy_name == "bisect") {
      adaptive::BisectionConfig bc;
      bc.lo = axis_lo;
      bc.hi = axis_hi;
      bc.tolerance = static_cast<double>(tolerance_us);
      bc.higher_is_more_intense = false;
      bc.min_manifested = 3;
      strategy = std::make_unique<adaptive::BisectionStrategy>(
          controller.cells(), bc);
    } else if (strategy_name == "coverage") {
      adaptive::CoverageConfig cc;
      cc.knob_value = axis_lo;
      cc.target_count = target_count;
      cc.batch_replicates = replicates;
      strategy =
          std::make_unique<adaptive::CoverageStrategy>(controller.cells(), cc);
    } else {  // fixed: today's grid through the controller
      adaptive::FixedGridConfig fc;
      fc.knob_values = {
          sim::to_nanoseconds(sweep.base.workload.udp_interval) / 1000.0};
      fc.replicates = replicates;
      strategy = std::make_unique<adaptive::FixedGridStrategy>(
          controller.cells(), fc);
    }

    if (dry_run) {
      const auto round0 = controller.expand_round(
          strategy->next_round(0), 0, 0, strategy_name);
      std::printf("dry run: %zu runs in round 0 (strategy %s)\n",
                  round0.size(), strategy_name.c_str());
      for (const auto& r : round0) {
        std::printf("%zu %s seed=%llu round=%u\n", r.index,
                    r.campaign.name.c_str(), (unsigned long long)r.seed,
                    r.round);
      }
      return 0;
    }

    adaptive::ControllerConfig cc;
    cc.runner.workers = workers;
    cc.runner.snapshots = snapshots;
    cc.on_round = [](const adaptive::RoundSummary& s) {
      std::fprintf(stderr, "round %u: %zu runs (%zu failed), %zu total\n",
                   s.round, s.runs, s.failed, s.total_runs);
    };
    // Streaming plane: --monitor attaches the live service behind the
    // feed; --early-cancel alone still needs the feed (live mode), just
    // without the table. Deterministic mode (no --early-cancel) leaves the
    // record stream byte-identical to an unmonitored campaign.
    monitor::MonitorService service;
    monitor::StreamingFeed feed(monitor ? &service : nullptr);
    std::unique_ptr<IntervalRenderer> renderer;
    if (monitor || early_cancel) {
      cc.feed = &feed;
      cc.early_cancel = early_cancel;
    }
    if (monitor && monitor_interval_ms > 0) {
      renderer =
          std::make_unique<IntervalRenderer>(service, monitor_interval_ms);
      cc.runner.sinks.push_back(renderer.get());
    }
    adaptive::Controller live(aspec, std::move(cc));

    const auto start = std::chrono::steady_clock::now();
    const auto outcome = live.run(*strategy);
    const double total_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    std::ostringstream lines;
    for (const auto& r : outcome.records) {
      lines << orchestrator::to_jsonl(r, timing) << '\n';
    }
    if (out_path.empty()) {
      std::fputs(lines.str().c_str(), stdout);
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
        return 1;
      }
      out << lines.str();
    }
    if (!bench_out_path.empty() &&
        !write_bench_out(bench_out_path, outcome.records, total_s)) {
      return 1;
    }

    auto report = orchestrator::summarize(aspec.name, outcome.records);
    report.add_note(nftape::cell(
        "%u rounds, %s; %.1f s wall", outcome.rounds,
        outcome.converged ? "converged" : "round/run cap reached", total_s));
    std::fprintf(stderr, "\n%s", report.render().c_str());
    auto cells = orchestrator::cell_summary("per-cell manifestation rates",
                                            outcome.records);
    if (strategy_name == "bisect") {
      const auto& bisect =
          static_cast<const adaptive::BisectionStrategy&>(*strategy);
      const auto cell_list = live.cells();
      for (std::size_t i = 0; i < cell_list.size(); ++i) {
        const auto& t = bisect.thresholds()[i];
        if (t.found && std::isnan(t.masked_at)) {
          cells.add_note(nftape::cell(
              "%s: the entire axis manifests (down to udp-us = %.6g, %zu runs)",
              live.cell_name(cell_list[i]).c_str(), t.manifested_at, t.runs));
        } else if (t.found) {
          cells.add_note(nftape::cell(
              "%s: manifests at udp-us <= %.6g (bracket %.6g..%.6g, %zu runs)",
              live.cell_name(cell_list[i]).c_str(), t.manifested_at,
              t.manifested_at, t.masked_at, t.runs));
        } else {
          cells.add_note(nftape::cell("%s: no manifestation on the axis",
                                      live.cell_name(cell_list[i]).c_str()));
        }
      }
    }
    std::fprintf(stderr, "\n%s", cells.render().c_str());
    if (monitor) {
      std::fprintf(stderr, "\n%s",
                   service.table("monitor (final)").render().c_str());
    }

    for (const auto& r : outcome.records) {
      if (r.outcome != orchestrator::RunOutcome::kOk &&
          r.outcome != orchestrator::RunOutcome::kSkipped) {
        return 2;
      }
    }
    return 0;
  }

  // ---------------------------------------------------------------------
  // Static path: pre-expanded grid, unchanged record format.
  const auto runs = orchestrator::expand(sweep);

  if (dry_run) {
    std::printf("dry run: %zu runs (%zu faults x %zu directions x %zu reps)\n",
                runs.size(), sweep.faults.size(), sweep.directions.size(),
                sweep.replicates);
    for (const auto& r : runs) {
      std::printf("%zu %s seed=%llu\n", r.index, r.campaign.name.c_str(),
                  (unsigned long long)r.seed);
    }
    return 0;
  }

  orchestrator::RunnerConfig rc;
  rc.workers = workers;
  rc.snapshots = snapshots;
  rc.on_progress = [](const orchestrator::Progress& p) {
    std::fprintf(stderr, "\r%zu/%zu done, %zu failed, %zu in flight   ",
                 p.completed + p.failed, p.total, p.failed, p.in_flight);
  };
  monitor::MonitorService service;
  std::unique_ptr<IntervalRenderer> renderer;
  if (monitor) {
    rc.sinks.push_back(&service);
    if (monitor_interval_ms > 0) {
      renderer =
          std::make_unique<IntervalRenderer>(service, monitor_interval_ms);
      rc.sinks.push_back(renderer.get());
    }
  }
  orchestrator::Runner runner(rc);

  std::fprintf(stderr, "%zu runs (%zu faults x %zu directions x %zu reps)\n",
               runs.size(), sweep.faults.size(), sweep.directions.size(),
               sweep.replicates);
  const auto start = std::chrono::steady_clock::now();
  const auto records = runner.run_all(runs);
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::fprintf(stderr, "\n");

  // Records come back indexed by run, so the file is deterministic (and,
  // without --timing, byte-identical for any --workers value).
  std::ostringstream lines;
  for (const auto& r : records) {
    lines << orchestrator::to_jsonl(r, timing) << '\n';
  }
  if (out_path.empty()) {
    std::fputs(lines.str().c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << lines.str();
  }

  if (!bench_out_path.empty() &&
      !write_bench_out(bench_out_path, records, total_s)) {
    return 1;
  }

  auto report = orchestrator::summarize(sweep.name, records);
  report.add_note(nftape::cell("%.1f s wall, %.2f runs/s", total_s,
                               static_cast<double>(records.size()) / total_s));
  std::fprintf(stderr, "\n%s", report.render().c_str());
  std::fprintf(stderr, "\n%s",
               orchestrator::cell_summary("per-cell manifestation rates",
                                          records)
                   .render()
                   .c_str());
  if (monitor) {
    std::fprintf(stderr, "\n%s",
                 service.table("monitor (final)").render().c_str());
  }

  for (const auto& r : records) {
    if (r.outcome != orchestrator::RunOutcome::kOk) return 2;
  }
  return 0;
}
