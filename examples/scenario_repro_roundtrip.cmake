# Drives run_sweep's reproducer-minimization surface end to end: arm the
# flow-liar misbehavior scenario on a baseline (fault-free) Myrinet sweep,
# emit a minimized repro trace, replay it (must confirm the stored record
# byte-for-byte), then tamper with the trace's seed and check the replay
# reports divergence instead of silently passing.
#
# Usage:
#   cmake -DSWEEP=<run_sweep> -DWORK=<dir> -P scenario_repro_roundtrip.cmake

foreach(var SWEEP WORK)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()

set(trace ${WORK}/flow_liar_repro.json)
file(REMOVE ${trace})

execute_process(
  COMMAND ${SWEEP} --scenario flow-liar --duration-ms 10 --workers 1
          --emit-repro ${trace}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--emit-repro exited '${rc}'\n${out}\n${err}")
endif()
if(NOT err MATCHES "minimized [0-9]+ -> [0-9]+ steps in [0-9]+ runs")
  message(FATAL_ERROR "--emit-repro did not report minimization: ${err}")
endif()
if(NOT EXISTS ${trace})
  message(FATAL_ERROR "--emit-repro wrote no trace at ${trace}")
endif()

execute_process(
  COMMAND ${SWEEP} --replay ${trace}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--replay exited '${rc}'\n${out}\n${err}")
endif()
if(NOT out MATCHES "byte-identical")
  message(FATAL_ERROR "--replay did not confirm byte identity:\n${out}")
endif()

# A different seed is a different run; the replay must say so loudly.
file(READ ${trace} text)
string(REGEX REPLACE "\"seed\": [0-9]+" "\"seed\": 987654321" text "${text}")
set(tampered ${WORK}/flow_liar_repro_tampered.json)
file(WRITE ${tampered} "${text}")
execute_process(
  COMMAND ${SWEEP} --replay ${tampered}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(rc EQUAL 0)
  message(FATAL_ERROR "tampered trace replayed clean:\n${out}")
endif()
if(NOT err MATCHES "DIVERGED")
  message(FATAL_ERROR "tampered replay did not report divergence:\n${out}\n${err}")
endif()
