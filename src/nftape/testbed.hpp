// The Fig. 10 testbed: hosts, an 8-port Myrinet switch, and the fault
// injector spliced into one host's link, with its RS-232 control path.
//
// "Fault injections were performed on a three-node network consisting of
// one PC... two SUN UltraSPARC workstations..., and an 8-port Myrinet
// switch. Each node had a 1.2+1.2 Gbps host interface card installed."
// (paper §4.1). The injector sits between the switch and one node, exactly
// where the paper's photographs place it, and is configured at run time
// over the simulated serial link — the role NFTAPE's control host played.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/command_plane.hpp"
#include "core/device.hpp"
#include "core/uart.hpp"
#include "host/node.hpp"
#include "link/channel.hpp"
#include "myrinet/host_iface.hpp"
#include "myrinet/switch.hpp"
#include "sim/simulator.hpp"

namespace hsfi::nftape {

/// Fibre Channel link tuning, consumed by `nftape::FcFabric` when the same
/// TestbedConfig is realized over FC instead of Myrinet (the medium-neutral
/// fields — nodes, injected_node, with_injector, cable_delay, map_period,
/// map_reply_window, injector_config, seed — keep their meaning there).
struct FcTuning {
  /// 1.0625 Gb/s: one 10-bit character every ~9.4 ns.
  sim::Duration character_period = sim::picoseconds(9'412);
  std::size_t bb_credit = 8;   ///< credits each end holds toward its peer
  std::size_t rx_buffers = 8;  ///< receive buffers each end advertises
  sim::Duration rx_processing_time = sim::microseconds(2);
  /// See fc::FcPort::Config::credit_recovery_timeout — without it a single
  /// corrupted R_RDY wedges the spliced link for the rest of the campaign.
  sim::Duration credit_recovery_timeout = sim::milliseconds(1);
  /// Payload bytes per sequence frame; kept smaller than the workload
  /// payload so every message travels as a multi-frame FC-2 sequence (the
  /// failure surface a lost middle frame exposes).
  std::size_t frame_chunk = 128;

  bool operator==(const FcTuning&) const = default;
};

struct TestbedConfig {
  std::size_t nodes = 3;
  /// Which node's link carries the injector (Fig. 10 splices one link).
  std::size_t injected_node = 0;
  bool with_injector = true;

  /// 80 MB/s character period; the paper quotes its timeout arithmetic at
  /// this rate. (The cards are 1.28 Gb/s full duplex = 160 MB/s; use
  /// character_period_for_mbytes(160) to run the links at card speed.)
  sim::Duration character_period = sim::picoseconds(12'500);
  sim::Duration cable_delay = sim::nanoseconds(5);  ///< per segment, ~1 m

  myrinet::Switch::Config switch_config = {};
  myrinet::HostInterface::Config nic_config = {};
  core::InjectorDevice::Config injector_config = {};

  sim::Duration send_stack_time = sim::microseconds(5);
  /// See host::Host::Config::boot_offset_span (Table 2 noise model).
  sim::Duration host_boot_offset_span = 0;
  sim::Duration map_period = sim::milliseconds(1000);
  sim::Duration map_reply_window = sim::milliseconds(10);
  host::HostClock::Params host_clock = {};
  /// FC realization of this config (ignored by the Myrinet `Testbed`).
  FcTuning fc = {};
  std::uint64_t seed = 1;

  /// Memberwise equality — the orchestrator's snapshot cache compares
  /// seed-normalized configs to decide whether two runs share a cell (a
  /// memcmp would read uninitialized padding).
  bool operator==(const TestbedConfig&) const = default;
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Deterministic per-node addressing: node i lives on switch port i with
  /// physical address 00:A0:CC:00:00:<i+1> and MCP address 0x2000 + i*0x10
  /// (so the highest-numbered node wins the mapper election).
  [[nodiscard]] static myrinet::EthAddr eth_of(std::size_t node) {
    return myrinet::EthAddr::from_u64(0x00A0CC000000ULL + node + 1);
  }
  [[nodiscard]] static myrinet::McpAddress mcp_of(std::size_t node) {
    return 0x2000 + static_cast<myrinet::McpAddress>(node) * 0x10;
  }

  /// Seeds every host's peer cache (the "known good state") and starts MCP
  /// mapping with staggered phases.
  void start();

  /// Runs the simulation forward by `span`.
  void settle(sim::Duration span);

  /// Clears host/NIC/injector statistics (between campaign runs) and
  /// re-seeds the peer caches. `seed` != 0 also rewinds every host's RNG
  /// stream to the state a fresh testbed built with that seed would have,
  /// so repeated runs on one bed match independent runs on fresh beds
  /// (host i gets stream seed + i, as in the constructor).
  void reset_to_known_good(std::uint64_t seed = 0);

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
  [[nodiscard]] host::Host& host(std::size_t i) { return *nodes_.at(i)->host; }
  [[nodiscard]] myrinet::HostInterface& nic(std::size_t i) {
    return *nodes_.at(i)->nic;
  }
  [[nodiscard]] myrinet::Switch& network_switch() noexcept { return switch_; }

  /// The spliced injector (with_injector must be set).
  [[nodiscard]] core::InjectorDevice& injector() { return *injector_; }
  /// The external system's serial handle to the injector.
  [[nodiscard]] core::SerialControlHost& control() { return *control_; }
  [[nodiscard]] const TestbedConfig& config() const noexcept { return config_; }

  /// Total symbols transmitted across every link segment, both directions —
  /// the datapath-work measure the bench harness reports next to kernel
  /// events (an events/s gain with flat symbols/s is scheduling overhead
  /// removed; both rising together is more traffic simulated).
  [[nodiscard]] std::uint64_t symbols_sent() const noexcept;

  /// Attaches an event trace to the switch, every MCP, and the injector.
  void set_trace(sim::TraceLog* trace);

  /// Full mutable state of the bed: the simulator event queue plus every
  /// model layer. Capture only at quiescent settle boundaries (after
  /// start() + settle) — pending serial commands or workload objects are
  /// outside the contract. Restore rewinds a bed of identical construction
  /// parameters; EventIds stay valid because the simulator queue's slots
  /// and generations are restored verbatim into the same object graph.
  struct State {
    struct NodeState {
      link::Channel::State cable_a2b;
      link::Channel::State cable_b2a;
      /// Second segment, meaningful only for the injected node.
      link::Channel::State cable2_a2b;
      link::Channel::State cable2_b2a;
      myrinet::HostInterface::State nic;
      host::Host::State host;
    };
    sim::Simulator::Snapshot sim;
    myrinet::Switch::State switch_state;
    std::vector<NodeState> nodes;
    /// Injector-side state, meaningful only when with_injector is set.
    core::InjectorDevice::State injector;
    core::Uart::State uart;
    core::CommandDecoder::State decoder;
    std::uint64_t output_lines = 0;
    core::SerialControlHost::State control;
  };

  [[nodiscard]] State capture_state() const;
  void restore_state(const State& state);

 private:
  struct Node {
    /// Cable from the node toward the switch (or toward the injector).
    std::unique_ptr<link::DuplexLink> cable;
    /// Second segment (injector to switch) for the injected node.
    std::unique_ptr<link::DuplexLink> cable2;
    std::unique_ptr<myrinet::HostInterface> nic;
    std::unique_ptr<host::Host> host;
  };

  TestbedConfig config_;
  sim::Simulator sim_;
  myrinet::Switch switch_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<core::InjectorDevice> injector_;
  std::unique_ptr<core::Uart> uart_;
  std::unique_ptr<core::CommHandler> comm_;
  std::unique_ptr<core::SerialControlHost> control_;
};

}  // namespace hsfi::nftape
