// Fault specifications: canned injector configurations for every campaign
// in the paper's §4, expressed as the compare/corrupt vectors the real
// device would be programmed with over RS-232.
//
// Window convention (see core/injector_config.hpp): lane 0 (bits [7:0]) is
// the newest character, lane 3 the oldest; the control sideband bit i
// guards lane i.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "core/injector_config.hpp"
#include "fc/frame.hpp"
#include "host/frame.hpp"
#include "myrinet/control.hpp"

namespace hsfi::nftape {

/// Table 4: corrupt every occurrence of control symbol `from` into `to`.
/// Anchored on the control sideband so payload bytes that happen to equal
/// the code are untouched.
[[nodiscard]] core::InjectorConfig control_symbol_corruption(
    myrinet::ControlSymbol from, myrinet::ControlSymbol to);

/// §4.3.2: corrupt the 16-bit packet type of frames whose type is
/// `match_type` into `new_type`. The match is frame-anchored: the window
/// must hold [GAP][marker][type-hi][type-lo]. CRC is repatched so only the
/// type corruption survives.
[[nodiscard]] core::InjectorConfig packet_type_corruption(
    std::uint16_t match_type, std::uint16_t new_type);

/// §4.3.2 source-route corruption: set the destination marker's MSB so the
/// interface must consume the packet "and handle it as an error".
/// Frame-anchored on [GAP][marker]; CRC repatched.
[[nodiscard]] core::InjectorConfig marker_msb_corruption();

/// §4.3.3 destination corruption: rewrite the low byte of the destination
/// physical address (tail window [CC 00 00 <old_low>]) to `new_low`,
/// *without* CRC repatch — the receiving interface must see "the incorrect
/// CRC-8" and drop.
[[nodiscard]] core::InjectorConfig destination_eth_corruption(
    std::uint8_t old_low, std::uint8_t new_low);

/// §4.3.3 sender's-address corruption: rewrite the low byte of the source
/// physical address in data frames from host `src_id` to host `dst_id`.
/// The window anchors on [src-eth-low][dst_id][src_id][proto] so mapping
/// replies carrying the same address bytes are NOT touched. CRC repatched:
/// the frame must arrive valid so the receiver *learns* the wrong address.
[[nodiscard]] core::InjectorConfig sender_eth_corruption(
    std::uint8_t old_src_low, host::HostId dst_id, host::HostId src_id,
    std::uint8_t new_src_low);

/// §4.3.3 MCP-address corruption (controller-duplication / non-existent
/// address): rewrite the low byte of the 64-bit MCP address inside mapping
/// replies. Window [mcp4 mcp5 mcp6 mcp7] = [00 00 <hi> <lo>]. CRC
/// repatched so the mapper accepts the reply.
[[nodiscard]] core::InjectorConfig mcp_reply_address_corruption(
    std::uint8_t old_hi, std::uint8_t old_lo, std::uint8_t new_lo);

/// §4.3.4 UDP aliasing: replace the 32-bit window "Have" with "veHa" — a
/// swap of two 16-bit words that the UDP one's-complement checksum cannot
/// see. CRC-8 repatched so the link layer accepts the frame too.
[[nodiscard]] core::InjectorConfig udp_word_swap_have_to_veha();

/// §3.1 random SEU campaign: uniformly random single-bit flips on the
/// stream at roughly one per `2^popcount(mask)+1` characters, driven by
/// the device's 16-bit LFSR. No CRC repatch — SEUs are raw transmission
/// faults the link layer is supposed to catch.
[[nodiscard]] core::InjectorConfig random_bit_flip_seu(std::uint16_t lfsr_mask);

/// §4.3.4 control case: a non-aliased payload corruption (single byte),
/// CRC-8 repatched — only the UDP checksum can (and must) catch it.
[[nodiscard]] core::InjectorConfig udp_payload_bit_flip();

// ---- Fibre Channel fault specifications ----------------------------------
//
// The same compare/corrupt vectors, aimed at FC symbol streams (the board's
// FCPHY path). None of them use crc_repatch: the repatch engine understands
// Myrinet framing, and on FC the CRC-32 catching raw transmission damage is
// usually the phenomenon under study anyway.

/// LFSR-thinned single-bit flips on payload characters only: the window
/// anchors on four consecutive fill bytes, which occur inside sequence
/// payloads and nowhere in delimiters or headers. The CRC-32 must catch
/// every hit (the FC twin of §4.3.3's "the incorrect CRC" campaigns).
[[nodiscard]] core::InjectorConfig fc_fill_corruption(std::uint8_t fill,
                                                      std::uint16_t lfsr_mask);

/// Mangle a specific ordered set: the window anchors on the full four
/// characters of `target` (K28.5 in the oldest lane, its K flag matched on
/// the control sideband) and toggles the third character. The receiver sees
/// a K28.5-led set that parses to nothing — a malformed-set event, which
/// poisons any open frame. Aimed at kSofI3/kEofT it kills sequences; aimed
/// at kRRdy it silently burns buffer-to-buffer credits until the sender
/// stalls (the FC analogue of Table 4's STOP corruption freezing a link).
[[nodiscard]] core::InjectorConfig fc_ordered_set_corruption(
    fc::OrderedSet target, std::uint16_t lfsr_mask);

/// Strike the comma character itself: match any K28.5 (newest lane, K flag
/// set) and toggle its control flag off, turning the comma into plain data
/// 0xBC. The rest of the set then arrives as stray data or frame-body
/// pollution — delimiter damage the 8b/10b control sideband was supposed to
/// make impossible.
[[nodiscard]] core::InjectorConfig fc_comma_strike(std::uint16_t lfsr_mask);

/// Rewrite the destination domain byte of every frame: the window anchors
/// on the two trailing D22.2 characters of an SOFi3 plus R_CTL, putting the
/// D_ID's top byte in the newest lane, and replaces it with `new_domain`.
/// No CRC-32 repair is possible, so the fabric's ingress port drops the
/// frame as a CRC error — the FC twin of destination_eth_corruption, where
/// the checksum is the defense being measured. `lfsr_mask` thins the
/// firings (0 = rewrite every sequence's first frame).
[[nodiscard]] core::InjectorConfig fc_domain_corruption(
    std::uint8_t new_domain, std::uint16_t lfsr_mask = 0);

/// Serial command lines that program `config` into direction `dir` —
/// campaigns drive the device exactly like NFTAPE drove the real one.
[[nodiscard]] std::vector<std::string> to_serial_commands(
    const core::InjectorConfig& config, core::Direction dir);

}  // namespace hsfi::nftape
