#include "nftape/report.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "adaptive/stats.hpp"

namespace hsfi::nftape {

std::string cell(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

std::string rate_cell(std::uint64_t successes, std::uint64_t trials) {
  return adaptive::format_rate_ci(successes, trials);
}

namespace {
std::vector<std::size_t> column_widths(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows) {
  std::size_t columns = header.size();
  for (const auto& r : rows) columns = std::max(columns, r.size());
  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < header.size(); ++c) {
    widths[c] = std::max(widths[c], header[c].size());
  }
  for (const auto& r : rows) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  return widths;
}
}  // namespace

std::string Report::render() const {
  std::string out = "== " + title_ + " ==\n";
  const auto widths = column_widths(header_, rows_);
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& v = c < cells.size() ? cells[c] : "";
      out += v;
      out.append(widths[c] > v.size() ? widths[c] - v.size() + 2 : 2, ' ');
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  for (const auto& n : notes_) out += "note: " + n + "\n";
  return out;
}

std::string Report::markdown() const {
  std::string out = "### " + title_ + "\n\n";
  const auto emit = [&](const std::vector<std::string>& cells) {
    out += '|';
    for (const auto& v : cells) {
      out += ' ';
      out += v;
      out += " |";
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    out += '|';
    for (std::size_t c = 0; c < header_.size(); ++c) out += "---|";
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  out += '\n';
  for (const auto& n : notes_) out += "_note: " + n + "_\n";
  return out;
}

}  // namespace hsfi::nftape
