// Plain-text/markdown table rendering for campaign reports — the output
// side of the NFTAPE-style collector, used by every bench binary to print
// the paper's tables.
#pragma once

#include <string>
#include <vector>

namespace hsfi::nftape {

class Report {
 public:
  explicit Report(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> columns) {
    header_ = std::move(columns);
  }
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }
  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  /// Column-aligned plain text with the title and notes.
  [[nodiscard]] std::string render() const;
  /// GitHub-style markdown table.
  [[nodiscard]] std::string markdown() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

/// printf-style cell helper.
[[nodiscard]] std::string cell(const char* fmt, ...);

}  // namespace hsfi::nftape
