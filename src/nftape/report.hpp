// Plain-text/markdown table rendering for campaign reports — the output
// side of the NFTAPE-style collector, used by every bench binary to print
// the paper's tables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsfi::nftape {

class Report {
 public:
  explicit Report(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> columns) {
    header_ = std::move(columns);
  }
  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }
  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  /// Column-aligned plain text with the title and notes.
  [[nodiscard]] std::string render() const;
  /// GitHub-style markdown table.
  [[nodiscard]] std::string markdown() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

/// printf-style cell helper.
[[nodiscard]] std::string cell(const char* fmt, ...);

/// Binomial-rate cell with its Wilson 95% confidence interval, e.g.
/// "3/40 = 7.5% [2.6%, 19.9%]" — the standard rendering for per-cell
/// manifestation rates (see src/adaptive/stats.hpp for the math).
[[nodiscard]] std::string rate_cell(std::uint64_t successes,
                                    std::uint64_t trials);

}  // namespace hsfi::nftape
