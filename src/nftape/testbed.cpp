#include "nftape/testbed.hpp"

#include <string>

namespace hsfi::nftape {

Testbed::Testbed(TestbedConfig config)
    : config_([&config] {
        config.switch_config.character_period = config.character_period;
        config.nic_config.character_period = config.character_period;
        config.injector_config.character_period = config.character_period;
        return config;
      }()),
      switch_(sim_, "sw0", config_.switch_config) {
  for (std::size_t i = 0; i < config_.nodes; ++i) {
    auto node = std::make_unique<Node>();
    const std::string tag = std::to_string(i);
    const bool spliced = config_.with_injector && i == config_.injected_node;

    node->cable = std::make_unique<link::DuplexLink>(
        sim_, "cable" + tag, config_.character_period, config_.cable_delay);
    node->nic = std::make_unique<myrinet::HostInterface>(sim_, "nic" + tag,
                                                         config_.nic_config);
    // Node side: end A of the first cable segment.
    node->nic->attach(/*rx=*/node->cable->b_to_a(),
                      /*tx=*/node->cable->a_to_b());

    if (spliced) {
      node->cable2 = std::make_unique<link::DuplexLink>(
          sim_, "cable" + tag + "b", config_.character_period,
          config_.cable_delay);
      injector_ =
          std::make_unique<core::InjectorDevice>(sim_, "fi0",
                                                 config_.injector_config);
      // Device between the two segments: left = node, right = switch.
      injector_->attach_left(/*rx=*/node->cable->a_to_b(),
                             /*tx=*/node->cable->b_to_a());
      injector_->attach_right(/*rx=*/node->cable2->b_to_a(),
                              /*tx=*/node->cable2->a_to_b());
      switch_.attach_port(i, /*rx=*/node->cable2->a_to_b(),
                          /*tx=*/node->cable2->b_to_a());
    } else {
      switch_.attach_port(i, /*rx=*/node->cable->a_to_b(),
                          /*tx=*/node->cable->b_to_a());
    }

    host::Host::Config hc;
    hc.id = static_cast<host::HostId>(i + 1);
    hc.eth = eth_of(i);
    hc.mcp_address = mcp_of(i);
    hc.switch_port = static_cast<std::uint8_t>(i);
    hc.switch_ports = switch_.num_ports();
    hc.send_stack_time = config_.send_stack_time;
    hc.boot_offset_span = config_.host_boot_offset_span;
    hc.map_period = config_.map_period;
    hc.map_reply_window = config_.map_reply_window;
    hc.clock = config_.host_clock;
    hc.seed = config_.seed + i;
    node->host = std::make_unique<host::Host>(sim_, *node->nic, hc);
    nodes_.push_back(std::move(node));
  }

  if (config_.with_injector) {
    uart_ = std::make_unique<core::Uart>(sim_);
    comm_ = std::make_unique<core::CommHandler>(sim_, *uart_, *injector_);
    control_ = std::make_unique<core::SerialControlHost>(sim_, *uart_);
  }
}

Testbed::~Testbed() = default;

void Testbed::start() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (i == j) continue;
      nodes_[i]->host->seed_peer(static_cast<host::HostId>(j + 1), eth_of(j));
    }
    nodes_[i]->host->start(sim::microseconds(137 * static_cast<std::int64_t>(i + 1)));
  }
}

void Testbed::settle(sim::Duration span) {
  sim_.run_until(sim_.now() + span);
}

std::uint64_t Testbed::symbols_sent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->cable->a_to_b().symbols_sent();
    total += node->cable->b_to_a().symbols_sent();
    if (node->cable2) {
      total += node->cable2->a_to_b().symbols_sent();
      total += node->cable2->b_to_a().symbols_sent();
    }
  }
  return total;
}

void Testbed::set_trace(sim::TraceLog* trace) {
  switch_.set_trace(trace);
  for (auto& node : nodes_) node->host->mcp().set_trace(trace);
  if (injector_) injector_->set_trace(trace);
}

Testbed::State Testbed::capture_state() const {
  State state;
  state.sim = sim_.snapshot();
  state.switch_state = switch_.capture_state();
  state.nodes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    State::NodeState ns;
    ns.cable_a2b = node->cable->a_to_b().capture_state();
    ns.cable_b2a = node->cable->b_to_a().capture_state();
    if (node->cable2) {
      ns.cable2_a2b = node->cable2->a_to_b().capture_state();
      ns.cable2_b2a = node->cable2->b_to_a().capture_state();
    }
    ns.nic = node->nic->capture_state();
    ns.host = node->host->capture_state();
    state.nodes.push_back(std::move(ns));
  }
  if (injector_) {
    state.injector = injector_->capture_state();
    state.uart = uart_->capture_state();
    state.decoder = comm_->decoder().capture_state();
    state.output_lines = comm_->output().capture_state();
    state.control = control_->capture_state();
  }
  return state;
}

void Testbed::restore_state(const State& state) {
  sim_.restore(state.sim);
  switch_.restore_state(state.switch_state);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = *nodes_[i];
    const auto& ns = state.nodes.at(i);
    node.cable->a_to_b().restore_state(ns.cable_a2b);
    node.cable->b_to_a().restore_state(ns.cable_b2a);
    if (node.cable2) {
      node.cable2->a_to_b().restore_state(ns.cable2_a2b);
      node.cable2->b_to_a().restore_state(ns.cable2_b2a);
    }
    node.nic->restore_state(ns.nic);
    node.host->restore_state(ns.host);
  }
  if (injector_) {
    injector_->restore_state(state.injector);
    uart_->restore_state(state.uart);
    comm_->decoder().restore_state(state.decoder);
    comm_->output().restore_state(state.output_lines);
    control_->restore_state(state.control);
  }
}

void Testbed::reset_to_known_good(std::uint64_t seed) {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->host->clear_stats();
    if (seed != 0) nodes_[i]->host->reseed(seed + i);
    nodes_[i]->nic->reset_for_campaign();
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (i == j) continue;
      nodes_[i]->host->seed_peer(static_cast<host::HostId>(j + 1), eth_of(j));
    }
  }
  if (injector_) injector_->clear_stats();
}

}  // namespace hsfi::nftape
