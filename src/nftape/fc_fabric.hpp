// The Fibre Channel realization of the campaign testbed.
//
// Same shape as the Fig. 10 Myrinet bed — N nodes, a central fabric
// element, the injector spliced into one node's link, the RS-232 command
// plane — but the endpoints are FC N_Ports with BB-credit flow control and
// the workload is SCSI-like: fixed-fill payloads split into multi-frame
// FC-2 sequences, reassembled and integrity-checked at the receiver. The
// board's FCPHY made exactly this swap possible in hardware ("a Myrinet
// SAN link or a Fibre Channel link", paper §3); here the same
// CampaignRunner/orchestrator/adaptive stack drives either medium.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/command_plane.hpp"
#include "core/device.hpp"
#include "core/uart.hpp"
#include "fc/fabric.hpp"
#include "fc/port.hpp"
#include "fc/sequence.hpp"
#include "link/channel.hpp"
#include "nftape/fabric.hpp"
#include "scenario/driver_fc.hpp"
#include "sim/simulator.hpp"

namespace hsfi::nftape {

class FcFabric final : public Fabric {
 public:
  explicit FcFabric(TestbedConfig config);
  ~FcFabric() override;

  FcFabric(const FcFabric&) = delete;
  FcFabric& operator=(const FcFabric&) = delete;

  /// Deterministic addressing: node i is fabric domain i+1 with N_Port
  /// identifier (i+1)<<16 | 1 (domain byte routes, the low bits name the
  /// port within it).
  [[nodiscard]] static std::uint32_t port_id_of(std::size_t node) noexcept {
    return (static_cast<std::uint32_t>(node + 1) << 16) | 1u;
  }

  [[nodiscard]] fc::FcPort& node_port(std::size_t i);
  [[nodiscard]] fc::FcFabric& fabric_element() noexcept { return *element_; }
  /// The spliced injector (with_injector must be set).
  [[nodiscard]] core::InjectorDevice& injector() { return *injector_; }
  /// The external system's serial handle to the injector.
  [[nodiscard]] core::SerialControlHost& control() { return *control_; }
  [[nodiscard]] const TestbedConfig& config() const noexcept { return config_; }

  // Fabric interface.
  [[nodiscard]] Medium medium() const noexcept override { return Medium::kFc; }
  [[nodiscard]] sim::Simulator& sim() noexcept override { return sim_; }
  [[nodiscard]] std::uint64_t base_seed() const noexcept override {
    return config_.seed;
  }
  void start() override;
  void settle(sim::Duration span) override;
  void reset_to_known_good(std::uint64_t seed) override;
  void program_fault(core::Direction dir, const core::InjectorConfig& config,
                     bool via_serial) override;
  void disarm_faults(bool via_serial) override;
  void attach_monitors(analysis::ManifestationAnalyzer& analyzer) override;
  void detach_monitors() override;
  void start_workload(const WorkloadSpec& workload, std::uint64_t seed,
                      analysis::ManifestationAnalyzer& analyzer) override;
  void stop_workload() override;
  void clear_workload() override;
  void arm_scenario(const scenario::ScenarioSpec& spec, std::uint64_t seed,
                    analysis::ManifestationAnalyzer& analyzer) override;
  void disarm_scenario() override;
  [[nodiscard]] FabricCounters snapshot() const override;
  [[nodiscard]] std::uint64_t symbols_sent() const noexcept override;
  [[nodiscard]] sim::Duration recovery_time() const override;
  [[nodiscard]] std::unique_ptr<FabricSnapshot> capture_snapshot() override;
  void restore_snapshot(const FabricSnapshot& snap) override;

 private:
  class SequenceFlood;
  struct Node {
    /// Cable from the node toward the fabric (or toward the injector).
    std::unique_ptr<link::DuplexLink> cable;
    /// Second segment (injector to fabric) for the injected node.
    std::unique_ptr<link::DuplexLink> cable2;
    std::unique_ptr<fc::FcPort> port;
    /// Per-run receive side (built by start_workload).
    std::unique_ptr<fc::SequenceReassembler> reassembler;
    std::uint64_t delivered = 0;  ///< intact sequences this workload
  };

  TestbedConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<fc::FcFabric> element_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<core::InjectorDevice> injector_;
  std::unique_ptr<core::Uart> uart_;
  std::unique_ptr<core::CommHandler> comm_;
  std::unique_ptr<core::SerialControlHost> control_;
  std::vector<std::unique_ptr<SequenceFlood>> floods_;
  analysis::ManifestationAnalyzer* analyzer_ = nullptr;
  /// Payload shape of the current workload, so injected scenario sequences
  /// can match (or deliberately mismatch) what the reassembler checks.
  WorkloadSpec workload_;
  std::unique_ptr<scenario::FcScenarioDriver> scenario_driver_;
};

}  // namespace hsfi::nftape
