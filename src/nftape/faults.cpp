#include "nftape/faults.hpp"

#include <cstdio>

namespace hsfi::nftape {

using core::CorruptMode;
using core::InjectorConfig;
using core::MatchMode;
using myrinet::ControlSymbol;

core::InjectorConfig control_symbol_corruption(ControlSymbol from,
                                               ControlSymbol to) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  cfg.compare_data = myrinet::encoding(from);
  cfg.compare_mask = 0x000000FF;
  cfg.compare_ctl = 0x1;  // lane 0 must be a control character
  cfg.compare_ctl_mask = 0x1;
  cfg.corrupt_data = myrinet::encoding(to);
  cfg.corrupt_mask = 0x000000FF;
  // The replacement stays a control character; no repatch — control
  // symbols live outside frames and a repatch would launder the framing
  // damage the campaign is meant to produce.
  cfg.crc_repatch = false;
  // Word-granular compare, like the real device: only symbols landing on
  // the matched lane alignment are corrupted (about one in four).
  cfg.compare_stride = 4;
  return cfg;
}

core::InjectorConfig packet_type_corruption(std::uint16_t match_type,
                                            std::uint16_t new_type) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  // Window: [marker 0x00][type hi][type lo][first payload byte, any] —
  // anchored at the frame head. (A GAP anchor would miss packets preceded
  // by idle wire time, since idles displace the GAP from the window.)
  cfg.compare_data = (static_cast<std::uint32_t>(match_type >> 8) << 16) |
                     ((match_type & 0xFFu) << 8);
  cfg.compare_mask = 0xFFFFFF00;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = (static_cast<std::uint32_t>(new_type >> 8) << 16) |
                     ((new_type & 0xFFu) << 8);
  cfg.corrupt_mask = 0x00FFFF00;
  cfg.crc_repatch = true;
  return cfg;
}

core::InjectorConfig marker_msb_corruption() {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  // Window: [marker 0x00][type 0x00][type 0x04][dst-eth byte 0x00] — the
  // head of a data frame; the marker is the oldest lane.
  cfg.compare_data = 0x00000400;
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = 0x80000000;  // set the marker's MSB
  cfg.corrupt_mask = 0x80000000;
  cfg.crc_repatch = true;
  return cfg;
}

core::InjectorConfig destination_eth_corruption(std::uint8_t old_low,
                                                std::uint8_t new_low) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  // Tail of the OUI-prefixed destination address: [CC][00][00][old_low].
  cfg.compare_data = 0xCC000000u | old_low;
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = new_low;
  cfg.corrupt_mask = 0x000000FF;
  cfg.crc_repatch = false;  // the point: the CRC-8 catches it
  return cfg;
}

core::InjectorConfig sender_eth_corruption(std::uint8_t old_src_low,
                                           host::HostId dst_id,
                                           host::HostId src_id,
                                           std::uint8_t new_src_low) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  // Window: [src-eth low][dst_id][src_id][proto=UDP] — only data frames
  // from src_id to dst_id have this shape.
  cfg.compare_data = (static_cast<std::uint32_t>(old_src_low) << 24) |
                     (static_cast<std::uint32_t>(dst_id) << 16) |
                     (static_cast<std::uint32_t>(src_id) << 8) |
                     static_cast<std::uint32_t>(host::Proto::kUdp);
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = static_cast<std::uint32_t>(new_src_low) << 24;
  cfg.corrupt_mask = 0xFF000000;
  cfg.crc_repatch = true;  // the frame must arrive valid to poison learning
  return cfg;
}

core::InjectorConfig mcp_reply_address_corruption(std::uint8_t old_hi,
                                                  std::uint8_t old_lo,
                                                  std::uint8_t new_lo) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  // The middle of the 64-bit MCP address in a reply: [00][00][hi][lo].
  cfg.compare_data = (static_cast<std::uint32_t>(old_hi) << 8) |
                     static_cast<std::uint32_t>(old_lo);
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = new_lo;
  cfg.corrupt_mask = 0x000000FF;
  cfg.crc_repatch = true;
  return cfg;
}

core::InjectorConfig udp_word_swap_have_to_veha() {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  cfg.compare_data = 0x48617665;  // "Have"
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = 0x76654861;  // "veHa"
  cfg.corrupt_mask = 0xFFFFFFFF;
  cfg.crc_repatch = true;  // link layer must accept; only UDP could object
  return cfg;
}

core::InjectorConfig random_bit_flip_seu(std::uint16_t lfsr_mask) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_mask = 0;      // every window is a candidate...
  cfg.compare_ctl_mask = 0;
  cfg.lfsr_mask = lfsr_mask; // ...thinned by the random trigger
  cfg.corrupt_data = 0x00000001;  // single-bit upset in the newest lane
  cfg.crc_repatch = false;
  return cfg;
}

core::InjectorConfig udp_payload_bit_flip() {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_data = 0x48617665;  // "Have"
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = 0x00400000;  // 'a' -> '!' style single-bit damage
  cfg.crc_repatch = true;
  return cfg;
}

core::InjectorConfig fc_fill_corruption(std::uint8_t fill,
                                        std::uint16_t lfsr_mask) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  const auto f = static_cast<std::uint32_t>(fill);
  cfg.compare_data = (f << 24) | (f << 16) | (f << 8) | f;
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.lfsr_mask = lfsr_mask;
  cfg.corrupt_data = 0x00000001;  // single-bit upset in the newest lane
  cfg.crc_repatch = false;        // the point: the CRC-32 catches it
  return cfg;
}

core::InjectorConfig fc_ordered_set_corruption(fc::OrderedSet target,
                                               std::uint16_t lfsr_mask) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  // Window holds the whole set, K28.5 oldest (lane 3), its K flag on the
  // control sideband; the three D characters must be data.
  const auto chars = fc::ordered_set_chars(target);
  cfg.compare_data = (static_cast<std::uint32_t>(chars[0].value) << 24) |
                     (static_cast<std::uint32_t>(chars[1].value) << 16) |
                     (static_cast<std::uint32_t>(chars[2].value) << 8) |
                     static_cast<std::uint32_t>(chars[3].value);
  cfg.compare_mask = 0xFFFFFFFF;
  cfg.compare_ctl = 0x8;
  cfg.compare_ctl_mask = 0xF;
  cfg.lfsr_mask = lfsr_mask;
  cfg.corrupt_data = 0x0000FF00;  // invert the set's third character
  cfg.crc_repatch = false;
  return cfg;
}

core::InjectorConfig fc_comma_strike(std::uint16_t lfsr_mask) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kToggle;
  cfg.compare_data = 0xBC;  // K28.5 just arrived in the newest lane
  cfg.compare_mask = 0x000000FF;
  cfg.compare_ctl = 0x1;
  cfg.compare_ctl_mask = 0x1;
  cfg.lfsr_mask = lfsr_mask;
  cfg.corrupt_data = 0;
  cfg.corrupt_ctl = 0x1;  // toggle the K flag off: comma becomes data 0xBC
  cfg.crc_repatch = false;
  return cfg;
}

core::InjectorConfig fc_domain_corruption(std::uint8_t new_domain,
                                          std::uint16_t lfsr_mask) {
  InjectorConfig cfg;
  cfg.match_mode = MatchMode::kOn;
  cfg.corrupt_mode = CorruptMode::kReplace;
  cfg.lfsr_mask = lfsr_mask;
  // Window: [D22.2][D22.2][R_CTL=0][D_ID domain] — the two trailing SOFi3
  // characters anchor the frame head, so only the first frame of each
  // sequence is rewritten.
  cfg.compare_data = 0x56560000;
  cfg.compare_mask = 0xFFFFFF00;
  cfg.compare_ctl = 0x0;
  cfg.compare_ctl_mask = 0xF;
  cfg.corrupt_data = new_domain;
  cfg.corrupt_mask = 0x000000FF;
  cfg.crc_repatch = false;  // unfixable on FC: the CRC-32 catches it
  return cfg;
}

std::vector<std::string> to_serial_commands(const core::InjectorConfig& cfg,
                                            core::Direction dir) {
  const char* d = dir == core::Direction::kLeftToRight ? "L" : "R";
  char buf[64];
  std::vector<std::string> out;
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    out.emplace_back(buf);
  };
  add("CORR %s %s", d, std::string(to_string(cfg.corrupt_mode)).c_str());
  add("CMPD %s %08X", d, cfg.compare_data);
  add("CMPM %s %08X", d, cfg.compare_mask);
  add("CMPC %s %X %X", d, cfg.compare_ctl & 0xF, cfg.compare_ctl_mask & 0xF);
  add("CORD %s %08X", d, cfg.corrupt_data);
  add("CORM %s %08X", d, cfg.corrupt_mask);
  add("CORC %s %X %X", d, cfg.corrupt_ctl & 0xF, cfg.corrupt_ctl_mask & 0xF);
  add("CMPS %s %u", d, static_cast<unsigned>(cfg.compare_stride));
  add("LFSR %s %04X", d, static_cast<unsigned>(cfg.lfsr_mask));
  add("CRCR %s %s", d, cfg.crc_repatch ? "ON" : "OFF");
  // MODE last so the trigger arms only once everything else is programmed.
  add("MODE %s %s", d, std::string(to_string(cfg.match_mode)).c_str());
  return out;
}

}  // namespace hsfi::nftape
