// NFTAPE-style campaign automation.
//
// "the system-level impact of faults can be evaluated in an automated
// fashion employing the proposed fault injection hardware and an external
// management and control framework, such as one provided by the network
// fault-tolerance and performance evaluator (NFTAPE)" (paper §1).
//
// A CampaignSpec bundles the fault (injector configuration per direction),
// the workload ("a simple UDP packet generation program" on every node),
// and the measurement window. "To ensure the repeatability of the
// experiments, each campaign began with the network in a known good state"
// — the runner resets the testbed before every run.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include <memory>

#include "analysis/analyzer.hpp"
#include "analysis/manifestation.hpp"
#include "analysis/metrics.hpp"
#include "core/injector_config.hpp"
#include "nftape/medium.hpp"
#include "nftape/testbed.hpp"
#include "scenario/scenario.hpp"
#include "sim/time.hpp"

namespace hsfi::nftape {

class Fabric;

struct WorkloadSpec {
  /// Per-sender datagram interval ("the network was operating at full
  /// capacity and every node was running a message-sending program").
  sim::Duration udp_interval = sim::microseconds(500);
  std::size_t payload_size = 64;
  std::uint8_t payload_fill = 0x5A;
  bool all_to_all = true;  ///< false: only node 0 <-> node 1
  std::uint16_t port = 9;
  /// Burstiness (see host::UdpFlood::Config): bursts collide at switch
  /// outputs and engage STOP/GO flow control, the paper's "network
  /// operating at full capacity".
  std::size_t burst_size = 1;
  double jitter = 0.0;
};

struct CampaignSpec {
  std::string name;
  /// Which fabric realization executes this campaign. The spec is otherwise
  /// medium-neutral: the same faults/workload/window fields drive either
  /// medium ("failure analysis can be performed simultaneously over both of
  /// these networks", abstract).
  Medium medium = Medium::kMyrinet;
  /// Fault programmed into the node->switch direction (left-to-right).
  std::optional<core::InjectorConfig> fault_to_switch;
  /// Fault programmed into the switch->node direction (right-to-left).
  std::optional<core::InjectorConfig> fault_from_switch;
  /// Program the device over the simulated RS-232 link (as NFTAPE did)
  /// instead of poking the model directly.
  bool program_via_serial = true;
  sim::Duration warmup = sim::milliseconds(20);
  sim::Duration duration = sim::milliseconds(1000);
  sim::Duration drain = sim::milliseconds(20);
  /// Settle after programming the fault, covering the serial exchange (and
  /// anything else in flight) before the workload starts. Part of the spec
  /// so watchdog budgets and snapshot capture see the same value the run
  /// actually spends — both guards count against the RunControl budget.
  sim::Duration program_guard = sim::milliseconds(30);
  /// Settle after disarming, before the medium's recovery settle.
  sim::Duration disarm_guard = sim::milliseconds(30);
  WorkloadSpec workload;
  /// Protocol-level misbehavior program, armed at the measurement-window
  /// start (after warmup) and disarmed at window end: stale/forged mapping
  /// advertisements, lying flow control, truncated-but-CRC-valid frames,
  /// duplicated/reordered FC-2 sequences. Step kinds must match `medium`.
  /// Each step firing is recorded as one injection, so the manifestation
  /// breakdown reconciles against injector firings + scenario firings.
  std::optional<scenario::ScenarioSpec> scenario;
  /// Seed for everything stochastic in this run: the workload generators and
  /// the per-host RNG streams reset by `Testbed::reset_to_known_good`. With
  /// an explicit seed a single-threaded sequence of N runs on one testbed is
  /// equal to N independent runs — the property the parallel orchestrator
  /// relies on for worker-count-independent results. 0 = inherit the
  /// testbed's construction seed.
  std::uint64_t seed = 0;
};

/// Thrown by CampaignRunner::run when a RunControl cancels the run.
class RunCancelled : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-run knobs a closed-loop controller tunes between rounds — the
/// paper's adaptivity: the RS-232 command plane reprograms the injector
/// (and the workload driver re-paces the senders) while the campaign is
/// running, based on what the monitors observed. Each knob maps one scalar
/// onto one field of the spec; `apply_knob` quantizes as needed.
enum class Knob : std::uint8_t {
  /// LFSR random-trigger thinning on every installed fault direction:
  /// mask = (1 << bits) - 1, so the trigger fires on about one compare in
  /// 2^bits. MORE bits = RARER firings (lower intensity).
  kSeuLfsrBits,
  /// Workload datagram interval in microseconds (sub-microsecond values
  /// round to nanoseconds). SMALLER = more traffic (higher intensity).
  kUdpIntervalUs,
  /// Workload burst size (datagrams per wakeup); larger bursts collide at
  /// the switch outputs and engage STOP/GO flow control.
  kBurstSize,
};

[[nodiscard]] std::string_view to_string(Knob k) noexcept;
[[nodiscard]] std::optional<Knob> parse_knob(std::string_view s);

/// Applies `value` to the knob's field of `spec`. kSeuLfsrBits rewrites
/// the lfsr_mask of every fault direction currently installed in the spec,
/// so install faults first, then apply the knob.
void apply_knob(CampaignSpec& spec, Knob knob, double value);

/// Cooperative watchdog hook. The runner splits its settle() calls into
/// poll_interval chunks and calls should_cancel between chunks with the
/// simulated time elapsed so far in this run; a true return aborts the run
/// with RunCancelled. Cancellation is cooperative on simulated-time chunk
/// boundaries — the watchdog owner decides policy (wall-clock deadline,
/// simulated-time cap, external kill switch).
struct RunControl {
  sim::Duration poll_interval = sim::milliseconds(10);
  std::function<bool(sim::Duration elapsed_sim)> should_cancel;
};

struct CampaignResult {
  std::string name;
  Medium medium = Medium::kMyrinet;  ///< which fabric produced this result
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  sim::Duration window = 0;

  // Failure breakdown over the window.
  std::uint64_t link_crc_errors = 0;     ///< dropped by NIC CRC-8
  std::uint64_t marker_errors = 0;
  std::uint64_t ring_overflows = 0;
  std::uint64_t udp_checksum_drops = 0;
  std::uint64_t misaddressed_drops = 0;
  std::uint64_t unroutable_drops = 0;
  std::uint64_t unknown_type_drops = 0;
  std::uint64_t nic_tx_drops = 0;
  std::uint64_t slack_overflow = 0;      ///< switch symbol loss
  std::uint64_t long_timeouts = 0;
  std::uint64_t injections = 0;          ///< injector fire count
  /// Medium-specific counters (zero on Myrinet): BB-credit exhaustion
  /// stalls and FC-2 sequence aborts/rejections over the window — the two
  /// failure modes credit-based flow control and sequence reassembly add
  /// on top of the shared taxonomy.
  std::uint64_t fc_credit_stalls = 0;
  std::uint64_t fc_sequences_aborted = 0;
  /// Scenario-driver step firings inside the window (already folded into
  /// `injections`; zero when the spec carried no scenario).
  std::uint64_t scenario_steps_fired = 0;
  /// Kernel events executed over the whole run (reset through recovery).
  /// Deterministic in simulated time; the bench harness divides it by wall
  /// time for events/sec.
  std::uint64_t events_executed = 0;
  /// Link symbols transmitted over the whole run, every segment and both
  /// directions. Invariant under batching (the same traffic flows whether
  /// symbols are scheduled one event each or one event per burst), so it
  /// pairs with events_executed to show what a kernel-events drop means.
  /// Bench-output-only: not part of the campaign JSONL record.
  std::uint64_t symbols_sent = 0;

  /// How each firing manifested (classes sum to `injections` exactly).
  analysis::ManifestationBreakdown manifestations;
  /// Unclaimed downstream effects (cascades past the first per firing).
  std::uint64_t secondary_effects = 0;
  /// Firing -> first-observed-effect delay over the window.
  analysis::Histogram manifestation_latency;

  /// Deliveries beyond what was sent in the window: duplicated or replayed
  /// datagrams (e.g. a corrupted route looping a packet back). loss_rate()
  /// clamps at zero in that case, so duplication must be reported on its
  /// own — a zero loss figure with nonzero duplicates is not a clean run.
  [[nodiscard]] std::uint64_t duplicates() const {
    return messages_received > messages_sent
               ? messages_received - messages_sent
               : 0;
  }

  [[nodiscard]] double loss_rate() const {
    if (messages_sent == 0) return 0.0;
    const auto lost = messages_sent > messages_received
                          ? messages_sent - messages_received
                          : 0;
    return static_cast<double>(lost) / static_cast<double>(messages_sent);
  }
  [[nodiscard]] double messages_per_second() const {
    const double secs = sim::to_seconds(window);
    return secs > 0 ? static_cast<double>(messages_received) / secs : 0.0;
  }
};

class CampaignRunner {
 public:
  /// Runs campaigns on any fabric realization (Myrinet or FC). The runner
  /// itself is medium-blind: reset, fault programming, workload window,
  /// snapshot deltas, and manifestation analysis all go through the Fabric
  /// interface.
  explicit CampaignRunner(Fabric& fabric);

  /// Convenience for the historical call sites: wraps `bed` in a
  /// MyrinetFabric view (no behavioral difference from the pre-Fabric
  /// runner — the event stream is identical).
  explicit CampaignRunner(Testbed& bed);

  ~CampaignRunner();

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  /// Resets to the known good state, programs the fault, applies the
  /// workload for the measurement window, and collects the result.
  /// `control`, when given, is polled between simulation chunks and may
  /// cancel the run (throws RunCancelled). `elapsed_before` is the
  /// simulated time the caller already spent on this run before entering
  /// the campaign (e.g. the orchestrator's startup settle): it seeds the
  /// accumulator handed to should_cancel, so one watchdog budget covers
  /// the whole run instead of resetting at the phase boundary.
  CampaignResult run(const CampaignSpec& spec,
                     const RunControl* control = nullptr,
                     sim::Duration elapsed_before = 0);

  /// Cumulative across runs on this runner: one counter per manifestation
  /// class ("manifest.<class>"), "secondary_effects", and the
  /// "manifestation_latency" histogram. Deterministic (simulated time
  /// only), so it is byte-stable across hosts and worker counts.
  [[nodiscard]] const analysis::MetricsRegistry& metrics() const noexcept {
    return metrics_;
  }
  void clear_metrics() { metrics_.clear(); }

 private:
  void settle_checked(sim::Duration span, const RunControl* control,
                      sim::Duration* elapsed);

  std::unique_ptr<Fabric> owned_;  ///< set by the Testbed& constructor
  Fabric& fabric_;
  analysis::MetricsRegistry metrics_;
};

}  // namespace hsfi::nftape
