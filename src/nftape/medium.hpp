// Which physical network a campaign runs over.
//
// "the ability to inject faults on two types of high-speed network
// links... a Myrinet SAN link or a Fibre Channel link" (paper §3) — the
// same compare/corrupt pipeline sits behind either PHY, so the campaign
// stack treats the medium as data, not as a compile-time choice.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace hsfi::nftape {

enum class Medium : std::uint8_t {
  kMyrinet,  ///< Fig. 10 testbed: hosts + 8-port Myrinet switch
  kFc,       ///< N_Ports + fabric element behind the FCPHY
};

[[nodiscard]] constexpr std::string_view to_string(Medium m) noexcept {
  switch (m) {
    case Medium::kMyrinet: return "myrinet";
    case Medium::kFc: return "fc";
  }
  return "?";
}

[[nodiscard]] constexpr std::optional<Medium> parse_medium(
    std::string_view s) noexcept {
  if (s == "myrinet") return Medium::kMyrinet;
  if (s == "fc") return Medium::kFc;
  return std::nullopt;
}

}  // namespace hsfi::nftape
