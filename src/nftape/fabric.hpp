// The medium abstraction behind the campaign stack.
//
// The paper's injector is dual-media by construction: the same FPGA
// compare/corrupt pipeline sits behind a MyriPHY or an FCPHY (Fig. 4), so
// one campaign methodology serves "both of these networks". A Fabric is
// everything the campaign runner needs from a network under test: build
// the topology with the injector spliced into one link, reach a known good
// state, program/disarm the fault taps, drive a saturating workload, wire
// the manifestation monitor hooks, and report counters. CampaignRunner,
// the orchestrator, and the adaptive controller all speak this interface;
// only the two implementations here and in fc_fabric.hpp know which wires
// exist.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/analyzer.hpp"
#include "core/injector_config.hpp"
#include "host/traffic.hpp"
#include "nftape/campaign.hpp"
#include "nftape/medium.hpp"
#include "nftape/testbed.hpp"
#include "scenario/driver_myrinet.hpp"
#include "sim/simulator.hpp"

namespace hsfi::nftape {

/// Medium-neutral counter snapshot; CampaignRunner subtracts two of these
/// to produce the per-window breakdown. Field meanings per medium are
/// documented at the CampaignResult fields they feed (DESIGN §9 has the
/// full mapping table).
struct FabricCounters {
  std::uint64_t messages_sent = 0;      ///< workload messages handed to the stack
  std::uint64_t messages_received = 0;  ///< workload messages delivered intact
  std::uint64_t crc_errors = 0;         ///< link CRC drops (CRC-8 / CRC-32)
  std::uint64_t marker_errors = 0;      ///< framing-delimiter damage
  std::uint64_t ring_overflows = 0;     ///< receive buffering exhausted
  std::uint64_t checksum_drops = 0;     ///< transport checksum/length drops
  std::uint64_t misaddressed = 0;       ///< delivered to the wrong endpoint
  std::uint64_t unroutable = 0;         ///< no route for the destination
  std::uint64_t unknown_type = 0;       ///< unrecognized payload type
  std::uint64_t tx_drops = 0;           ///< transmit queue overflow
  std::uint64_t slack_overflow = 0;     ///< switch-internal symbol loss
  std::uint64_t long_timeouts = 0;      ///< switch long-timeout resets
  std::uint64_t injections = 0;         ///< injector fire count, both taps
  // Medium-specific (zero on Myrinet):
  std::uint64_t credit_stalls = 0;      ///< BB-credit exhaustion events
  std::uint64_t sequences_aborted = 0;  ///< FC-2 sequence aborts/rejections
  /// Scenario-driver step firings, already folded into `injections` (each
  /// firing records one injection so the 8-class breakdown reconciles).
  std::uint64_t scenario_steps = 0;
};

/// Opaque capture of a settled fabric: the simulator event queue plus every
/// model layer's mutable state, taken at a quiescent settle boundary (after
/// start() + settle(startup)). Implementations subclass this with their
/// layer states; restore_snapshot() downcasts back. One snapshot can seed
/// any number of forked runs — restore is non-destructive.
class FabricSnapshot {
 public:
  virtual ~FabricSnapshot() = default;
};

/// One network under test with the injector spliced into one link.
///
/// Lifecycle, as CampaignRunner drives it (the order is part of the
/// determinism contract — both implementations schedule events in exactly
/// this order so JSONL stays byte-identical across worker counts):
/// construct -> start() -> settle(startup) -> per run: reset_to_known_good,
/// attach_monitors, program_fault x2, start_workload, snapshot window,
/// stop_workload, disarm_faults, settle(recovery_time), detach_monitors,
/// clear_workload.
///
/// Snapshot/fork: capture_snapshot() after the startup settle freezes the
/// whole settled state; restore_snapshot() rewinds a fabric of identical
/// construction parameters back to it, so each campaign run forks from the
/// settle boundary instead of re-simulating boot + mapping. Per-run state
/// (workload objects, monitor hooks, RNG streams) is re-derived afterwards
/// by the usual reset_to_known_good(seed) call, which is what makes a
/// forked run byte-identical to a cold-started one.
class Fabric {
 public:
  virtual ~Fabric() = default;

  [[nodiscard]] virtual Medium medium() const noexcept = 0;
  [[nodiscard]] virtual sim::Simulator& sim() noexcept = 0;
  /// The construction seed (CampaignSpec.seed == 0 inherits it).
  [[nodiscard]] virtual std::uint64_t base_seed() const noexcept = 0;

  /// Boots the topology (peer seeding, mapping, staggered starts).
  virtual void start() = 0;
  /// Runs the simulation forward by `span`.
  virtual void settle(sim::Duration span) = 0;
  /// Returns to the paper's "known good state": statistics cleared, flow
  /// control and address state restored, RNG streams rewound to `seed`.
  virtual void reset_to_known_good(std::uint64_t seed) = 0;

  /// Programs `config` into the injector tap for `dir` — over the simulated
  /// RS-232 command plane when `via_serial` (the authentic NFTAPE loop), or
  /// by poking the model directly.
  virtual void program_fault(core::Direction dir,
                             const core::InjectorConfig& config,
                             bool via_serial) = 0;
  /// Turns both taps' match mode off, leaving the rest of the programmed
  /// state untouched (re-sending a zeroed config would pass through a state
  /// with the old mode armed under an all-match mask).
  virtual void disarm_faults(bool via_serial) = 0;

  /// Installs the timestamp hooks of every monitored layer, classified into
  /// the 8-class taxonomy and fed to `analyzer`. The analyzer must outlive
  /// the hooks: pair with detach_monitors.
  virtual void attach_monitors(analysis::ManifestationAnalyzer& analyzer) = 0;
  virtual void detach_monitors() = 0;

  /// Creates and starts the saturating workload (UDP floods / FC sequence
  /// floods), with per-flow RNG streams derived from `seed`. Delivered-but-
  /// corrupted payloads are reported to `analyzer` (the taxonomy's worst
  /// class — nothing upstream noticed).
  virtual void start_workload(const WorkloadSpec& workload, std::uint64_t seed,
                              analysis::ManifestationAnalyzer& analyzer) = 0;
  virtual void stop_workload() = 0;
  /// Destroys the workload objects (their counters feed snapshot(), so the
  /// runner clears only after the final snapshot).
  virtual void clear_workload() = 0;

  /// Installs the scenario driver's protocol hooks and schedules `spec`'s
  /// steps relative to now (the runner arms at the measurement-window
  /// start, so step.at offsets land inside the window). Firings count as
  /// injections toward `analyzer` and surface as FabricCounters.
  /// scenario_steps. Base implementation: scenarios unsupported, no-op.
  virtual void arm_scenario(const scenario::ScenarioSpec& spec,
                            std::uint64_t seed,
                            analysis::ManifestationAnalyzer& analyzer) {
    (void)spec;
    (void)seed;
    (void)analyzer;
  }
  /// Uninstalls the hooks and neutralizes unfired steps. Idempotent.
  virtual void disarm_scenario() {}

  [[nodiscard]] virtual FabricCounters snapshot() const = 0;
  /// Total symbols transmitted across every link segment since
  /// construction (monotonic; callers diff two readings for a window).
  /// Base implementation reports 0 for fabrics without symbol channels.
  [[nodiscard]] virtual std::uint64_t symbols_sent() const noexcept {
    return 0;
  }
  /// How long after disarming the medium needs to re-reach the known good
  /// state (Myrinet: one mapping round; FC: in-flight drain).
  [[nodiscard]] virtual sim::Duration recovery_time() const = 0;

  /// Captures the full settled state (simulator + every model layer). Call
  /// only at a quiescent settle boundary — never with a workload or serial
  /// command in flight. Returns nullptr when the fabric does not support
  /// snapshots (callers must fall back to cold starts).
  [[nodiscard]] virtual std::unique_ptr<FabricSnapshot> capture_snapshot() {
    return nullptr;
  }
  /// Rewinds this fabric to `snap` (which must come from a fabric built
  /// with identical construction parameters — same TestbedConfig modulo
  /// seed, which reset_to_known_good re-derives per run).
  virtual void restore_snapshot(const FabricSnapshot& snap) { (void)snap; }
};

/// The Fig. 10 Myrinet testbed behind the Fabric interface. The campaign
/// logic that used to live in CampaignRunner (hook wiring, outcome
/// classification, UDP flood/sink workload, counter snapshots) moved here
/// verbatim, so the scheduled event stream — and therefore every digest
/// and JSONL byte — is unchanged.
class MyrinetFabric final : public Fabric {
 public:
  /// Owns a private Testbed built from `config` (the orchestrator path).
  explicit MyrinetFabric(TestbedConfig config);
  /// Wraps an existing Testbed (the historical direct-construction path).
  explicit MyrinetFabric(Testbed& bed);
  ~MyrinetFabric() override;

  [[nodiscard]] Testbed& bed() noexcept { return bed_; }

  [[nodiscard]] Medium medium() const noexcept override {
    return Medium::kMyrinet;
  }
  [[nodiscard]] sim::Simulator& sim() noexcept override { return bed_.sim(); }
  [[nodiscard]] std::uint64_t base_seed() const noexcept override;
  void start() override { bed_.start(); }
  void settle(sim::Duration span) override { bed_.settle(span); }
  void reset_to_known_good(std::uint64_t seed) override {
    bed_.reset_to_known_good(seed);
  }
  void program_fault(core::Direction dir, const core::InjectorConfig& config,
                     bool via_serial) override;
  void disarm_faults(bool via_serial) override;
  void attach_monitors(analysis::ManifestationAnalyzer& analyzer) override;
  void detach_monitors() override;
  void start_workload(const WorkloadSpec& workload, std::uint64_t seed,
                      analysis::ManifestationAnalyzer& analyzer) override;
  void stop_workload() override;
  void clear_workload() override;
  void arm_scenario(const scenario::ScenarioSpec& spec, std::uint64_t seed,
                    analysis::ManifestationAnalyzer& analyzer) override;
  void disarm_scenario() override;
  [[nodiscard]] FabricCounters snapshot() const override;
  [[nodiscard]] std::uint64_t symbols_sent() const noexcept override {
    return bed_.symbols_sent();
  }
  [[nodiscard]] sim::Duration recovery_time() const override;
  [[nodiscard]] std::unique_ptr<FabricSnapshot> capture_snapshot() override;
  void restore_snapshot(const FabricSnapshot& snap) override;

 private:
  std::unique_ptr<Testbed> owned_;
  Testbed& bed_;
  std::vector<std::unique_ptr<host::UdpSink>> sinks_;
  std::vector<std::unique_ptr<host::UdpFlood>> floods_;
  std::unique_ptr<scenario::MyrinetScenarioDriver> scenario_driver_;
};

/// Builds the fabric realization for `medium` from one medium-neutral
/// config — the orchestrator's per-run construction point.
[[nodiscard]] std::unique_ptr<Fabric> make_fabric(Medium medium,
                                                  const TestbedConfig& config);

}  // namespace hsfi::nftape
