#include "nftape/campaign.hpp"

#include <memory>
#include <vector>

#include "host/traffic.hpp"
#include "nftape/faults.hpp"
#include "sim/rng.hpp"

namespace hsfi::nftape {

struct CampaignRunner::Snapshot {
  std::uint64_t udp_sent = 0;
  std::uint64_t udp_delivered = 0;
  std::uint64_t crc_errors = 0;
  std::uint64_t marker_errors = 0;
  std::uint64_t ring_overflows = 0;
  std::uint64_t checksum_drops = 0;
  std::uint64_t misaddressed = 0;
  std::uint64_t unroutable = 0;
  std::uint64_t unknown_type = 0;
  std::uint64_t nic_tx_drops = 0;
  std::uint64_t slack_overflow = 0;
  std::uint64_t long_timeouts = 0;
  std::uint64_t injections = 0;
};

CampaignRunner::Snapshot CampaignRunner::take_snapshot() const {
  Snapshot s;
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    const auto& hs = bed_.host(i).stats();
    s.udp_sent += hs.udp_sent;
    s.udp_delivered += hs.udp_delivered;
    s.checksum_drops += hs.drop_bad_checksum + hs.drop_bad_length;
    s.misaddressed += hs.drop_misaddressed;
    s.unroutable += hs.drop_unroutable + hs.drop_unknown_peer;
    s.unknown_type += hs.drop_unknown_type;
    const auto& ns = bed_.nic(i).stats();
    s.crc_errors += ns.crc_errors;
    s.marker_errors += ns.marker_errors;
    s.ring_overflows += ns.ring_overflows;
    s.nic_tx_drops += ns.tx_queue_drops;
  }
  auto& sw = bed_.network_switch();
  for (std::size_t p = 0; p < sw.num_ports(); ++p) {
    const auto ps = sw.port_stats(p);
    s.slack_overflow += ps.slack_overflow;
    s.long_timeouts += ps.long_timeouts;
  }
  if (bed_.config().with_injector) {
    s.injections +=
        bed_.injector().fifo_stats(core::Direction::kLeftToRight).injections;
    s.injections +=
        bed_.injector().fifo_stats(core::Direction::kRightToLeft).injections;
  }
  return s;
}

void CampaignRunner::settle_checked(sim::Duration span,
                                    const RunControl* control,
                                    sim::Duration* elapsed) {
  if (control == nullptr || !control->should_cancel) {
    bed_.settle(span);
    *elapsed += span;
    return;
  }
  const sim::Duration chunk =
      control->poll_interval > 0 ? control->poll_interval : span;
  sim::Duration left = span;
  while (left > 0) {
    if (control->should_cancel(*elapsed)) {
      throw RunCancelled("campaign run cancelled by watchdog");
    }
    const sim::Duration step = left < chunk ? left : chunk;
    bed_.settle(step);
    *elapsed += step;
    left -= step;
  }
  if (control->should_cancel(*elapsed)) {
    throw RunCancelled("campaign run cancelled by watchdog");
  }
}

CampaignResult CampaignRunner::run(const CampaignSpec& spec,
                                   const RunControl* control) {
  const std::uint64_t seed =
      spec.seed != 0 ? spec.seed : bed_.config().seed;
  bed_.reset_to_known_good(seed);
  sim::Duration elapsed = 0;

  // Program the fault. The serial path is the authentic NFTAPE control
  // loop; the direct path is available for unit tests.
  const auto program = [this, &spec](core::Direction dir,
                                     const core::InjectorConfig& cfg) {
    if (spec.program_via_serial) {
      for (const auto& cmd : to_serial_commands(cfg, dir)) {
        bed_.control().send_command(cmd);
      }
    } else {
      bed_.injector().apply(dir, cfg);
    }
  };
  core::InjectorConfig off;  // match mode kOff
  program(core::Direction::kLeftToRight,
          spec.fault_to_switch.value_or(off));
  program(core::Direction::kRightToLeft,
          spec.fault_from_switch.value_or(off));
  // Let the serial exchange (and anything in flight) finish.
  settle_checked(sim::milliseconds(30), control, &elapsed);

  // Workload: every node floods its peers; every node sinks the port.
  std::vector<std::unique_ptr<host::UdpSink>> sinks;
  std::vector<std::unique_ptr<host::UdpFlood>> floods;
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    sinks.push_back(
        std::make_unique<host::UdpSink>(bed_.host(i), spec.workload.port));
  }
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    for (std::size_t j = 0; j < bed_.node_count(); ++j) {
      if (i == j) continue;
      if (!spec.workload.all_to_all && !(i < 2 && j < 2)) continue;
      host::UdpFlood::Config fc;
      fc.target = static_cast<host::HostId>(j + 1);
      fc.dst_port = spec.workload.port;
      fc.src_port = static_cast<std::uint16_t>(3000 + i * 16 + j);
      fc.payload_size = spec.workload.payload_size;
      fc.fill = spec.workload.payload_fill;
      fc.interval = spec.workload.udp_interval;
      fc.burst_size = spec.workload.burst_size;
      fc.jitter = spec.workload.jitter;
      fc.seed = sim::derive_seed(seed, 100 + i * 16 + j);
      floods.push_back(
          std::make_unique<host::UdpFlood>(bed_.sim(), bed_.host(i), fc));
    }
  }
  for (auto& f : floods) f->start();

  settle_checked(spec.warmup, control, &elapsed);
  const Snapshot before = take_snapshot();
  settle_checked(spec.duration, control, &elapsed);
  for (auto& f : floods) f->stop();
  settle_checked(spec.drain, control, &elapsed);
  const Snapshot after = take_snapshot();

  // Disarm the injector for whoever runs next. Only the match mode is
  // touched: re-sending a whole zeroed configuration would pass through a
  // state with the old mode still armed and an all-match compare mask.
  if (spec.program_via_serial) {
    bed_.control().send_command("MODE L OFF");
    bed_.control().send_command("MODE R OFF");
  } else {
    for (const auto dir :
         {core::Direction::kLeftToRight, core::Direction::kRightToLeft}) {
      auto cfg = bed_.injector().config(dir);
      cfg.match_mode = core::MatchMode::kOff;
      bed_.injector().apply(dir, cfg);
    }
  }
  // Give the network time to re-map so the next campaign starts from a
  // known good state even if this fault damaged the routing tables.
  settle_checked(sim::milliseconds(30), control, &elapsed);
  const sim::Duration recovery =
      bed_.config().map_period + bed_.config().map_reply_window;
  settle_checked(recovery, control, &elapsed);

  CampaignResult r;
  r.name = spec.name;
  r.window = spec.duration + spec.drain;
  r.messages_sent = after.udp_sent - before.udp_sent;
  r.messages_received = after.udp_delivered - before.udp_delivered;
  r.link_crc_errors = after.crc_errors - before.crc_errors;
  r.marker_errors = after.marker_errors - before.marker_errors;
  r.ring_overflows = after.ring_overflows - before.ring_overflows;
  r.udp_checksum_drops = after.checksum_drops - before.checksum_drops;
  r.misaddressed_drops = after.misaddressed - before.misaddressed;
  r.unroutable_drops = after.unroutable - before.unroutable;
  r.unknown_type_drops = after.unknown_type - before.unknown_type;
  r.nic_tx_drops = after.nic_tx_drops - before.nic_tx_drops;
  r.slack_overflow = after.slack_overflow - before.slack_overflow;
  r.long_timeouts = after.long_timeouts - before.long_timeouts;
  r.injections = after.injections - before.injections;
  return r;
}

}  // namespace hsfi::nftape
