#include "nftape/campaign.hpp"

#include <algorithm>
#include <cmath>

#include "nftape/fabric.hpp"

namespace hsfi::nftape {

namespace {

/// Detaches the monitor hooks and destroys the workload on scope exit so
/// nothing outlives the run's analyzer (runs may also end by RunCancelled).
struct FabricGuard {
  Fabric& fabric;
  ~FabricGuard() {
    fabric.disarm_scenario();
    fabric.detach_monitors();
    fabric.clear_workload();
  }
};

}  // namespace

CampaignRunner::CampaignRunner(Fabric& fabric) : fabric_(fabric) {}

CampaignRunner::CampaignRunner(Testbed& bed)
    : owned_(std::make_unique<MyrinetFabric>(bed)), fabric_(*owned_) {}

CampaignRunner::~CampaignRunner() = default;

void CampaignRunner::settle_checked(sim::Duration span,
                                    const RunControl* control,
                                    sim::Duration* elapsed) {
  if (control == nullptr || !control->should_cancel) {
    fabric_.settle(span);
    *elapsed += span;
    return;
  }
  const sim::Duration chunk =
      control->poll_interval > 0 ? control->poll_interval : span;
  sim::Duration left = span;
  while (left > 0) {
    if (control->should_cancel(*elapsed)) {
      throw RunCancelled("campaign run cancelled by watchdog");
    }
    const sim::Duration step = left < chunk ? left : chunk;
    fabric_.settle(step);
    *elapsed += step;
    left -= step;
  }
  if (control->should_cancel(*elapsed)) {
    throw RunCancelled("campaign run cancelled by watchdog");
  }
}

CampaignResult CampaignRunner::run(const CampaignSpec& spec,
                                   const RunControl* control,
                                   sim::Duration elapsed_before) {
  const std::uint64_t seed =
      spec.seed != 0 ? spec.seed : fabric_.base_seed();
  const std::uint64_t events_begin = fabric_.sim().executed_events();
  const std::uint64_t symbols_begin = fabric_.symbols_sent();
  fabric_.reset_to_known_good(seed);
  sim::Duration elapsed = elapsed_before;

  // Manifestation monitoring: one analyzer per run, fed by every layer's
  // timestamp hooks. The guard detaches the hooks however the run ends so
  // none outlives the analyzer.
  analysis::ManifestationAnalyzer analyzer;
  FabricGuard guard{fabric_};
  fabric_.attach_monitors(analyzer);

  // Program the fault. The serial path is the authentic NFTAPE control
  // loop; the direct path is available for unit tests.
  core::InjectorConfig off;  // match mode kOff
  fabric_.program_fault(core::Direction::kLeftToRight,
                        spec.fault_to_switch.value_or(off),
                        spec.program_via_serial);
  fabric_.program_fault(core::Direction::kRightToLeft,
                        spec.fault_from_switch.value_or(off),
                        spec.program_via_serial);
  // Let the serial exchange (and anything in flight) finish.
  settle_checked(spec.program_guard, control, &elapsed);

  // Workload: every node floods its peers; every node sinks the port.
  fabric_.start_workload(spec.workload, seed, analyzer);

  settle_checked(spec.warmup, control, &elapsed);
  // Scenario steps are scheduled relative to the window start; arming after
  // the warmup settle keeps every firing strictly inside (window_begin,
  // window_end] where the analyzer's finalize window claims it.
  if (spec.scenario) {
    fabric_.arm_scenario(*spec.scenario, seed, analyzer);
  }
  const FabricCounters before = fabric_.snapshot();
  const sim::SimTime window_begin = fabric_.sim().now();
  settle_checked(spec.duration, control, &elapsed);
  fabric_.stop_workload();
  settle_checked(spec.drain, control, &elapsed);
  const FabricCounters after = fabric_.snapshot();
  const sim::SimTime window_end = fabric_.sim().now();
  fabric_.disarm_scenario();

  // Disarm the injector for whoever runs next, then give the network time
  // to recover so the next campaign starts from a known good state even if
  // this fault damaged routing or flow-control state.
  fabric_.disarm_faults(spec.program_via_serial);
  settle_checked(spec.disarm_guard, control, &elapsed);
  settle_checked(fabric_.recovery_time(), control, &elapsed);

  CampaignResult r;
  r.name = spec.name;
  r.medium = fabric_.medium();
  r.window = spec.duration + spec.drain;
  r.messages_sent = after.messages_sent - before.messages_sent;
  r.messages_received = after.messages_received - before.messages_received;
  r.link_crc_errors = after.crc_errors - before.crc_errors;
  r.marker_errors = after.marker_errors - before.marker_errors;
  r.ring_overflows = after.ring_overflows - before.ring_overflows;
  r.udp_checksum_drops = after.checksum_drops - before.checksum_drops;
  r.misaddressed_drops = after.misaddressed - before.misaddressed;
  r.unroutable_drops = after.unroutable - before.unroutable;
  r.unknown_type_drops = after.unknown_type - before.unknown_type;
  r.nic_tx_drops = after.tx_drops - before.tx_drops;
  r.slack_overflow = after.slack_overflow - before.slack_overflow;
  r.long_timeouts = after.long_timeouts - before.long_timeouts;
  r.injections = after.injections - before.injections;
  r.fc_credit_stalls = after.credit_stalls - before.credit_stalls;
  r.fc_sequences_aborted =
      after.sequences_aborted - before.sequences_aborted;
  r.scenario_steps_fired = after.scenario_steps - before.scenario_steps;
  r.events_executed = fabric_.sim().executed_events() - events_begin;
  r.symbols_sent = fabric_.symbols_sent() - symbols_begin;

  const auto outcome =
      analyzer.finalize(window_begin, window_end, r.injections);
  r.manifestations = outcome.breakdown;
  r.secondary_effects = outcome.secondary_effects;
  r.manifestation_latency = outcome.latency;
  for (const auto m : analysis::all_manifestations()) {
    metrics_.counter("manifest." + std::string(analysis::to_string(m))) +=
        outcome.breakdown[m];
  }
  metrics_.counter("secondary_effects") += outcome.secondary_effects;
  metrics_.histogram("manifestation_latency").merge(outcome.latency);
  return r;
}

std::string_view to_string(Knob k) noexcept {
  switch (k) {
    case Knob::kSeuLfsrBits: return "seu-bits";
    case Knob::kUdpIntervalUs: return "udp-us";
    case Knob::kBurstSize: return "burst";
  }
  return "?";
}

std::optional<Knob> parse_knob(std::string_view s) {
  if (s == "seu-bits") return Knob::kSeuLfsrBits;
  if (s == "udp-us") return Knob::kUdpIntervalUs;
  if (s == "burst") return Knob::kBurstSize;
  return std::nullopt;
}

void apply_knob(CampaignSpec& spec, Knob knob, double value) {
  switch (knob) {
    case Knob::kSeuLfsrBits: {
      const auto bits = static_cast<unsigned>(
          std::clamp(std::llround(value), 0ll, 16ll));
      const std::uint16_t mask =
          bits == 0 ? std::uint16_t{0}
                    : static_cast<std::uint16_t>((1u << bits) - 1u);
      if (spec.fault_to_switch) spec.fault_to_switch->lfsr_mask = mask;
      if (spec.fault_from_switch) spec.fault_from_switch->lfsr_mask = mask;
      return;
    }
    case Knob::kUdpIntervalUs: {
      const auto ns = std::max(std::llround(value * 1000.0), 1ll);
      spec.workload.udp_interval = sim::nanoseconds(ns);
      return;
    }
    case Knob::kBurstSize: {
      spec.workload.burst_size =
          static_cast<std::size_t>(std::max(std::llround(value), 1ll));
      return;
    }
  }
}

}  // namespace hsfi::nftape
