#include "nftape/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "host/traffic.hpp"
#include "nftape/faults.hpp"
#include "sim/rng.hpp"

namespace hsfi::nftape {

namespace {

using analysis::Manifestation;

Manifestation classify(myrinet::HostInterface::RxError e) {
  switch (e) {
    case myrinet::HostInterface::RxError::kCrcError:
      return Manifestation::kCrcDropped;
    case myrinet::HostInterface::RxError::kMarkerError:
      return Manifestation::kMarkerError;
    case myrinet::HostInterface::RxError::kTooShort:
    case myrinet::HostInterface::RxError::kRingOverflow:
      return Manifestation::kDroppedOther;
  }
  return Manifestation::kDroppedOther;
}

Manifestation classify(host::Host::DropReason r) {
  switch (r) {
    case host::Host::DropReason::kMisaddressed:
      return Manifestation::kMisrouted;
    // Send-side resolution failures mean the routing/address state itself
    // is damaged — the paper's "removed from the network".
    case host::Host::DropReason::kUnknownPeer:
    case host::Host::DropReason::kUnroutable:
      return Manifestation::kMappingDisruption;
    case host::Host::DropReason::kBadChecksum:
    case host::Host::DropReason::kBadLength:
    case host::Host::DropReason::kMalformed:
    case host::Host::DropReason::kUnknownType:
    case host::Host::DropReason::kUnboundPort:
      return Manifestation::kDroppedOther;
  }
  return Manifestation::kDroppedOther;
}

Manifestation classify(myrinet::Switch::PortEvent e) {
  switch (e) {
    case myrinet::Switch::PortEvent::kSlackOverflow:
      return Manifestation::kDroppedOther;
    case myrinet::Switch::PortEvent::kLongTimeout:
      return Manifestation::kTimeout;
    case myrinet::Switch::PortEvent::kInvalidRoute:
      return Manifestation::kMisrouted;
  }
  return Manifestation::kDroppedOther;
}

/// Detaches every monitor hook on scope exit so nothing outlives the run's
/// analyzer (runs may also end by RunCancelled).
struct HookGuard {
  Testbed& bed;
  ~HookGuard() {
    for (std::size_t i = 0; i < bed.node_count(); ++i) {
      bed.nic(i).on_rx_error(nullptr);
      bed.host(i).on_drop(nullptr);
      bed.host(i).mcp().on_confused_round(nullptr);
    }
    bed.network_switch().on_port_event(nullptr);
    if (bed.config().with_injector) {
      bed.injector().set_injection_hook(nullptr);
    }
  }
};

}  // namespace

struct CampaignRunner::Snapshot {
  std::uint64_t udp_sent = 0;
  std::uint64_t udp_delivered = 0;
  std::uint64_t crc_errors = 0;
  std::uint64_t marker_errors = 0;
  std::uint64_t ring_overflows = 0;
  std::uint64_t checksum_drops = 0;
  std::uint64_t misaddressed = 0;
  std::uint64_t unroutable = 0;
  std::uint64_t unknown_type = 0;
  std::uint64_t nic_tx_drops = 0;
  std::uint64_t slack_overflow = 0;
  std::uint64_t long_timeouts = 0;
  std::uint64_t injections = 0;
};

CampaignRunner::Snapshot CampaignRunner::take_snapshot() const {
  Snapshot s;
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    const auto& hs = bed_.host(i).stats();
    s.udp_sent += hs.udp_sent;
    s.udp_delivered += hs.udp_delivered;
    s.checksum_drops += hs.drop_bad_checksum + hs.drop_bad_length;
    s.misaddressed += hs.drop_misaddressed;
    s.unroutable += hs.drop_unroutable + hs.drop_unknown_peer;
    s.unknown_type += hs.drop_unknown_type;
    const auto& ns = bed_.nic(i).stats();
    s.crc_errors += ns.crc_errors;
    s.marker_errors += ns.marker_errors;
    s.ring_overflows += ns.ring_overflows;
    s.nic_tx_drops += ns.tx_queue_drops;
  }
  auto& sw = bed_.network_switch();
  for (std::size_t p = 0; p < sw.num_ports(); ++p) {
    const auto ps = sw.port_stats(p);
    s.slack_overflow += ps.slack_overflow;
    s.long_timeouts += ps.long_timeouts;
  }
  if (bed_.config().with_injector) {
    s.injections +=
        bed_.injector().fifo_stats(core::Direction::kLeftToRight).injections;
    s.injections +=
        bed_.injector().fifo_stats(core::Direction::kRightToLeft).injections;
  }
  return s;
}

void CampaignRunner::settle_checked(sim::Duration span,
                                    const RunControl* control,
                                    sim::Duration* elapsed) {
  if (control == nullptr || !control->should_cancel) {
    bed_.settle(span);
    *elapsed += span;
    return;
  }
  const sim::Duration chunk =
      control->poll_interval > 0 ? control->poll_interval : span;
  sim::Duration left = span;
  while (left > 0) {
    if (control->should_cancel(*elapsed)) {
      throw RunCancelled("campaign run cancelled by watchdog");
    }
    const sim::Duration step = left < chunk ? left : chunk;
    bed_.settle(step);
    *elapsed += step;
    left -= step;
  }
  if (control->should_cancel(*elapsed)) {
    throw RunCancelled("campaign run cancelled by watchdog");
  }
}

CampaignResult CampaignRunner::run(const CampaignSpec& spec,
                                   const RunControl* control) {
  const std::uint64_t seed =
      spec.seed != 0 ? spec.seed : bed_.config().seed;
  const std::uint64_t events_begin = bed_.sim().executed_events();
  bed_.reset_to_known_good(seed);
  sim::Duration elapsed = 0;

  // Manifestation monitoring: one analyzer per run, fed by every layer's
  // timestamp hooks. The guard detaches the hooks however the run ends so
  // none outlives the analyzer.
  analysis::ManifestationAnalyzer analyzer;
  HookGuard unhook{bed_};
  if (bed_.config().with_injector) {
    bed_.injector().set_injection_hook(
        [&analyzer](core::Direction, sim::SimTime when) {
          analyzer.record_injection(when);
        });
  }
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    const auto src = static_cast<std::uint32_t>(i);
    bed_.nic(i).on_rx_error([&analyzer, src](myrinet::HostInterface::RxError e,
                                             sim::SimTime when) {
      analyzer.record_observation(when, classify(e), src);
    });
    bed_.host(i).on_drop(
        [&analyzer, src](host::Host::DropReason reason, sim::SimTime when) {
          analyzer.record_observation(when, classify(reason), 100 + src);
        });
    bed_.host(i).mcp().on_confused_round([&analyzer, src](sim::SimTime when) {
      analyzer.record_observation(when, Manifestation::kMappingDisruption,
                                  300 + src);
    });
  }
  bed_.network_switch().on_port_event(
      [&analyzer](std::size_t port, myrinet::Switch::PortEvent e,
                  sim::SimTime when) {
        analyzer.record_observation(when, classify(e),
                                    200 + static_cast<std::uint32_t>(port));
      });

  // Program the fault. The serial path is the authentic NFTAPE control
  // loop; the direct path is available for unit tests.
  const auto program = [this, &spec](core::Direction dir,
                                     const core::InjectorConfig& cfg) {
    if (spec.program_via_serial) {
      for (const auto& cmd : to_serial_commands(cfg, dir)) {
        bed_.control().send_command(cmd);
      }
    } else {
      bed_.injector().apply(dir, cfg);
    }
  };
  core::InjectorConfig off;  // match mode kOff
  program(core::Direction::kLeftToRight,
          spec.fault_to_switch.value_or(off));
  program(core::Direction::kRightToLeft,
          spec.fault_from_switch.value_or(off));
  // Let the serial exchange (and anything in flight) finish.
  settle_checked(sim::milliseconds(30), control, &elapsed);

  // Workload: every node floods its peers; every node sinks the port.
  std::vector<std::unique_ptr<host::UdpSink>> sinks;
  std::vector<std::unique_ptr<host::UdpFlood>> floods;
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    sinks.push_back(
        std::make_unique<host::UdpSink>(bed_.host(i), spec.workload.port));
    // The workload's constant size/fill makes corruption detectable at the
    // sink: a datagram that passed every check below but carries the wrong
    // bytes was delivered corrupted (the taxonomy's worst class — nothing
    // upstream noticed).
    const auto src = 400 + static_cast<std::uint32_t>(i);
    const auto expected_size = spec.workload.payload_size;
    const auto expected_fill = spec.workload.payload_fill;
    sinks.back()->on_receive([&analyzer, src, expected_size, expected_fill](
                                 host::HostId, const host::UdpDatagram& dgram,
                                 sim::SimTime when) {
      const bool corrupted =
          dgram.payload.size() != expected_size ||
          std::any_of(dgram.payload.begin(), dgram.payload.end(),
                      [expected_fill](std::uint8_t b) {
                        return b != expected_fill;
                      });
      if (corrupted) {
        analyzer.record_observation(
            when, Manifestation::kPayloadCorruptedDelivered, src);
      }
    });
  }
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    for (std::size_t j = 0; j < bed_.node_count(); ++j) {
      if (i == j) continue;
      if (!spec.workload.all_to_all && !(i < 2 && j < 2)) continue;
      host::UdpFlood::Config fc;
      fc.target = static_cast<host::HostId>(j + 1);
      fc.dst_port = spec.workload.port;
      fc.src_port = static_cast<std::uint16_t>(3000 + i * 16 + j);
      fc.payload_size = spec.workload.payload_size;
      fc.fill = spec.workload.payload_fill;
      fc.interval = spec.workload.udp_interval;
      fc.burst_size = spec.workload.burst_size;
      fc.jitter = spec.workload.jitter;
      fc.seed = sim::derive_seed(seed, 100 + i * 16 + j);
      floods.push_back(
          std::make_unique<host::UdpFlood>(bed_.sim(), bed_.host(i), fc));
    }
  }
  for (auto& f : floods) f->start();

  settle_checked(spec.warmup, control, &elapsed);
  const Snapshot before = take_snapshot();
  const sim::SimTime window_begin = bed_.sim().now();
  settle_checked(spec.duration, control, &elapsed);
  for (auto& f : floods) f->stop();
  settle_checked(spec.drain, control, &elapsed);
  const Snapshot after = take_snapshot();
  const sim::SimTime window_end = bed_.sim().now();

  // Disarm the injector for whoever runs next. Only the match mode is
  // touched: re-sending a whole zeroed configuration would pass through a
  // state with the old mode still armed and an all-match compare mask.
  if (spec.program_via_serial) {
    bed_.control().send_command("MODE L OFF");
    bed_.control().send_command("MODE R OFF");
  } else {
    for (const auto dir :
         {core::Direction::kLeftToRight, core::Direction::kRightToLeft}) {
      auto cfg = bed_.injector().config(dir);
      cfg.match_mode = core::MatchMode::kOff;
      bed_.injector().apply(dir, cfg);
    }
  }
  // Give the network time to re-map so the next campaign starts from a
  // known good state even if this fault damaged the routing tables.
  settle_checked(sim::milliseconds(30), control, &elapsed);
  const sim::Duration recovery =
      bed_.config().map_period + bed_.config().map_reply_window;
  settle_checked(recovery, control, &elapsed);

  CampaignResult r;
  r.name = spec.name;
  r.window = spec.duration + spec.drain;
  r.messages_sent = after.udp_sent - before.udp_sent;
  r.messages_received = after.udp_delivered - before.udp_delivered;
  r.link_crc_errors = after.crc_errors - before.crc_errors;
  r.marker_errors = after.marker_errors - before.marker_errors;
  r.ring_overflows = after.ring_overflows - before.ring_overflows;
  r.udp_checksum_drops = after.checksum_drops - before.checksum_drops;
  r.misaddressed_drops = after.misaddressed - before.misaddressed;
  r.unroutable_drops = after.unroutable - before.unroutable;
  r.unknown_type_drops = after.unknown_type - before.unknown_type;
  r.nic_tx_drops = after.nic_tx_drops - before.nic_tx_drops;
  r.slack_overflow = after.slack_overflow - before.slack_overflow;
  r.long_timeouts = after.long_timeouts - before.long_timeouts;
  r.injections = after.injections - before.injections;
  r.events_executed = bed_.sim().executed_events() - events_begin;

  const auto outcome =
      analyzer.finalize(window_begin, window_end, r.injections);
  r.manifestations = outcome.breakdown;
  r.secondary_effects = outcome.secondary_effects;
  r.manifestation_latency = outcome.latency;
  for (const auto m : analysis::all_manifestations()) {
    metrics_.counter("manifest." + std::string(analysis::to_string(m))) +=
        outcome.breakdown[m];
  }
  metrics_.counter("secondary_effects") += outcome.secondary_effects;
  metrics_.histogram("manifestation_latency").merge(outcome.latency);
  return r;
}

std::string_view to_string(Knob k) noexcept {
  switch (k) {
    case Knob::kSeuLfsrBits: return "seu-bits";
    case Knob::kUdpIntervalUs: return "udp-us";
    case Knob::kBurstSize: return "burst";
  }
  return "?";
}

std::optional<Knob> parse_knob(std::string_view s) {
  if (s == "seu-bits") return Knob::kSeuLfsrBits;
  if (s == "udp-us") return Knob::kUdpIntervalUs;
  if (s == "burst") return Knob::kBurstSize;
  return std::nullopt;
}

void apply_knob(CampaignSpec& spec, Knob knob, double value) {
  switch (knob) {
    case Knob::kSeuLfsrBits: {
      const auto bits = static_cast<unsigned>(
          std::clamp(std::llround(value), 0ll, 16ll));
      const std::uint16_t mask =
          bits == 0 ? std::uint16_t{0}
                    : static_cast<std::uint16_t>((1u << bits) - 1u);
      if (spec.fault_to_switch) spec.fault_to_switch->lfsr_mask = mask;
      if (spec.fault_from_switch) spec.fault_from_switch->lfsr_mask = mask;
      return;
    }
    case Knob::kUdpIntervalUs: {
      const auto ns = std::max(std::llround(value * 1000.0), 1ll);
      spec.workload.udp_interval = sim::nanoseconds(ns);
      return;
    }
    case Knob::kBurstSize: {
      spec.workload.burst_size =
          static_cast<std::size_t>(std::max(std::llround(value), 1ll));
      return;
    }
  }
}

}  // namespace hsfi::nftape
