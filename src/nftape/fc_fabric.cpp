#include "nftape/fc_fabric.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "nftape/faults.hpp"
#include "sim/rng.hpp"

namespace hsfi::nftape {

namespace {

using analysis::Manifestation;

/// FC outcome classes mapped into the shared 8-class taxonomy (the DESIGN
/// §9 table): the CRC-32 drop is the CRC-8 drop's twin, a mangled ordered
/// set is delimiter damage (the marker analogue), credit exhaustion stalls
/// the sender the way the paper's STOP-symbol faults throttle Myrinet
/// (timeout class), and a class-3 no-route discard is a misroute.
Manifestation classify(fc::FcPort::Event e) {
  switch (e) {
    case fc::FcPort::Event::kCrcError:
      return Manifestation::kCrcDropped;
    case fc::FcPort::Event::kMalformedSet:
      return Manifestation::kMarkerError;
    case fc::FcPort::Event::kRxOverflow:
    case fc::FcPort::Event::kStrayData:
      return Manifestation::kDroppedOther;
    case fc::FcPort::Event::kCreditStall:
      return Manifestation::kTimeout;
  }
  return Manifestation::kDroppedOther;
}

}  // namespace

/// The "SCSI-like" message program: each tick submits `burst_size`
/// payloads, each split by SequenceBuilder into SOFi3...EOFt multi-frame
/// sequences with cycling SEQ_ID/OX_ID, paced and jittered exactly like
/// host::UdpFlood so the Knob axes (udp-us, burst) mean the same thing on
/// either medium.
class FcFabric::SequenceFlood {
 public:
  struct Config {
    std::uint32_t s_id = 0;
    std::uint32_t d_id = 0;
    std::size_t payload_size = 64;
    std::uint8_t fill = 0x5A;
    std::size_t chunk = 128;
    sim::Duration interval = sim::microseconds(100);
    std::size_t burst_size = 1;
    double jitter = 0.0;
    std::uint64_t seed = 1;
    std::uint32_t stream = 0;
  };

  SequenceFlood(sim::Simulator& simulator, fc::FcPort& port, Config config)
      : simulator_(simulator),
        port_(port),
        config_(config),
        rng_(config.seed, config.stream) {}

  ~SequenceFlood() {
    if (event_ != sim::kInvalidEventId) simulator_.cancel(event_);
  }

  SequenceFlood(const SequenceFlood&) = delete;
  SequenceFlood& operator=(const SequenceFlood&) = delete;

  void start() {
    if (running_) return;
    running_ = true;
    tick();
  }

  void stop() {
    running_ = false;
    if (event_ != sim::kInvalidEventId) {
      simulator_.cancel(event_);
      event_ = sim::kInvalidEventId;
    }
  }

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }

 private:
  void tick() {
    event_ = sim::kInvalidEventId;
    if (!running_) return;
    const std::size_t burst = config_.burst_size == 0 ? 1 : config_.burst_size;
    for (std::size_t i = 0; i < burst; ++i) {
      fc::FcHeader h;
      h.d_id = config_.d_id;
      h.s_id = config_.s_id;
      h.seq_id = static_cast<std::uint8_t>(sent_ & 0xFF);
      h.ox_id = static_cast<std::uint16_t>(sent_ & 0xFFFF);
      const auto frames = fc::SequenceBuilder::build(
          h, std::vector<std::uint8_t>(config_.payload_size, config_.fill),
          config_.chunk);
      // A full transmit queue drops the frame (counted by the port); the
      // receiver's reassembler then aborts the sequence — class 3 has no
      // retransmission.
      for (const auto& f : frames) port_.send(f);
      ++sent_;
    }
    sim::Duration wait = config_.interval * static_cast<sim::Duration>(burst);
    if (config_.jitter > 0.0) {
      const double span = config_.jitter * static_cast<double>(wait);
      wait += static_cast<sim::Duration>((rng_.uniform() - 0.5) * span);
      if (wait < 1) wait = 1;
    }
    event_ = simulator_.schedule_in(wait, [this] { tick(); });
  }

  sim::Simulator& simulator_;
  fc::FcPort& port_;
  Config config_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  sim::EventId event_ = sim::kInvalidEventId;
  sim::Rng rng_;
};

FcFabric::FcFabric(TestbedConfig config)
    : config_([&config] {
        config.injector_config.character_period = config.fc.character_period;
        return config;
      }()) {
  fc::FcPort::Config pc;
  pc.bb_credit = config_.fc.bb_credit;
  pc.rx_buffers = config_.fc.rx_buffers;
  pc.character_period = config_.fc.character_period;
  pc.rx_processing_time = config_.fc.rx_processing_time;
  pc.credit_recovery_timeout = config_.fc.credit_recovery_timeout;

  fc::FcFabric::Config ec;
  ec.num_ports = std::max<std::size_t>(config_.nodes, 8);
  ec.port = pc;
  element_ = std::make_unique<fc::FcFabric>(sim_, "fe0", ec);

  for (std::size_t i = 0; i < config_.nodes; ++i) {
    auto node = std::make_unique<Node>();
    const std::string tag = std::to_string(i);
    const bool spliced = config_.with_injector && i == config_.injected_node;

    node->cable = std::make_unique<link::DuplexLink>(
        sim_, "fcable" + tag, config_.fc.character_period,
        config_.cable_delay);
    fc::FcPort::Config npc = pc;
    npc.port_id = port_id_of(i);
    node->port =
        std::make_unique<fc::FcPort>(sim_, "np" + tag, npc);
    // Node side: end A of the first cable segment.
    node->port->attach(/*rx=*/node->cable->b_to_a(),
                       /*tx=*/node->cable->a_to_b());

    if (spliced) {
      node->cable2 = std::make_unique<link::DuplexLink>(
          sim_, "fcable" + tag + "b", config_.fc.character_period,
          config_.cable_delay);
      injector_ =
          std::make_unique<core::InjectorDevice>(sim_, "fi0",
                                                 config_.injector_config);
      // Device between the two segments: left = node, right = fabric.
      injector_->attach_left(/*rx=*/node->cable->a_to_b(),
                             /*tx=*/node->cable->b_to_a());
      injector_->attach_right(/*rx=*/node->cable2->b_to_a(),
                              /*tx=*/node->cable2->a_to_b());
      element_->attach_port(i, /*rx=*/node->cable2->a_to_b(),
                            /*tx=*/node->cable2->b_to_a());
    } else {
      element_->attach_port(i, /*rx=*/node->cable->a_to_b(),
                            /*tx=*/node->cable->b_to_a());
    }
    element_->set_route(static_cast<std::uint8_t>(i + 1), i);
    nodes_.push_back(std::move(node));
  }

  if (config_.with_injector) {
    uart_ = std::make_unique<core::Uart>(sim_);
    comm_ = std::make_unique<core::CommHandler>(sim_, *uart_, *injector_);
    control_ = std::make_unique<core::SerialControlHost>(sim_, *uart_);
  }
}

FcFabric::~FcFabric() = default;

fc::FcPort& FcFabric::node_port(std::size_t i) { return *nodes_.at(i)->port; }

void FcFabric::start() {
  // Nothing to boot: FC has no mapping protocol in this model, and the
  // N_Ports hold their BB credit from construction (fabric login is
  // assumed done — the paper's campaigns start from an operational link).
}

void FcFabric::settle(sim::Duration span) {
  sim_.run_until(sim_.now() + span);
}

void FcFabric::reset_to_known_good(std::uint64_t seed) {
  // The workload RNG streams are derived from the seed at start_workload
  // time and the ports hold no stochastic state, so the reset is exactly
  // the restoration of flow control and statistics.
  (void)seed;
  for (auto& node : nodes_) {
    node->port->reset_for_campaign();
    node->delivered = 0;
  }
  element_->reset_for_campaign();
  if (injector_) injector_->clear_stats();
}

void FcFabric::program_fault(core::Direction dir,
                             const core::InjectorConfig& config,
                             bool via_serial) {
  if (via_serial) {
    for (const auto& cmd : to_serial_commands(config, dir)) {
      control_->send_command(cmd);
    }
  } else {
    injector_->apply(dir, config);
  }
}

void FcFabric::disarm_faults(bool via_serial) {
  if (via_serial) {
    control_->send_command("MODE L OFF");
    control_->send_command("MODE R OFF");
  } else {
    for (const auto dir :
         {core::Direction::kLeftToRight, core::Direction::kRightToLeft}) {
      auto cfg = injector_->config(dir);
      cfg.match_mode = core::MatchMode::kOff;
      injector_->apply(dir, cfg);
    }
  }
}

void FcFabric::attach_monitors(analysis::ManifestationAnalyzer& analyzer) {
  analyzer_ = &analyzer;
  if (config_.with_injector) {
    injector_->set_injection_hook(
        [&analyzer](core::Direction, sim::SimTime when) {
          analyzer.record_injection(when);
        });
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto src = static_cast<std::uint32_t>(i);
    nodes_[i]->port->on_event(
        [&analyzer, src](fc::FcPort::Event e, sim::SimTime when) {
          analyzer.record_observation(when, classify(e), src);
        });
  }
  for (std::size_t p = 0; p < element_->num_ports(); ++p) {
    const auto src = 200 + static_cast<std::uint32_t>(p);
    element_->port(p).on_event(
        [&analyzer, src](fc::FcPort::Event e, sim::SimTime when) {
          analyzer.record_observation(when, classify(e), src);
        });
  }
  element_->on_discard([&analyzer](const fc::FcFrame&, sim::SimTime when) {
    analyzer.record_observation(when, Manifestation::kMisrouted, 300);
  });
}

void FcFabric::detach_monitors() {
  for (auto& node : nodes_) node->port->on_event(nullptr);
  for (std::size_t p = 0; p < element_->num_ports(); ++p) {
    element_->port(p).on_event(nullptr);
  }
  element_->on_discard(nullptr);
  if (config_.with_injector) injector_->set_injection_hook(nullptr);
  analyzer_ = nullptr;
}

void FcFabric::start_workload(const WorkloadSpec& workload, std::uint64_t seed,
                              analysis::ManifestationAnalyzer& analyzer) {
  workload_ = workload;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = *nodes_[i];
    node.delivered = 0;
    // Constant size/fill makes corruption detectable after reassembly: a
    // sequence that cleared CRC-32 and in-order SEQ_CNT but carries wrong
    // bytes was delivered corrupted — nothing upstream noticed.
    const auto src = 400 + static_cast<std::uint32_t>(i);
    const auto expected_size = workload.payload_size;
    const auto expected_fill = workload.payload_fill;
    node.reassembler = std::make_unique<fc::SequenceReassembler>(
        [this, &node, &analyzer, src, expected_size, expected_fill](
            std::uint32_t, std::uint8_t, std::vector<std::uint8_t> payload) {
          ++node.delivered;
          const bool corrupted =
              payload.size() != expected_size ||
              std::any_of(payload.begin(), payload.end(),
                          [expected_fill](std::uint8_t b) {
                            return b != expected_fill;
                          });
          if (corrupted) {
            analyzer.record_observation(
                sim_.now(), Manifestation::kPayloadCorruptedDelivered, src);
          }
        });
    node.port->on_frame([this, i](fc::FcFrame frame, sim::SimTime when) {
      Node& n = *nodes_[i];
      const auto& st = n.reassembler->stats();
      const auto bad_before = st.sequences_aborted + st.frames_rejected;
      n.reassembler->feed(frame);
      // An abort or rejection here is a sequence-level loss event; when it
      // trails a CRC drop the analyzer files it as the cascade's secondary
      // effect, when the frame vanished silently it is the only observable.
      if (analyzer_ != nullptr &&
          st.sequences_aborted + st.frames_rejected > bad_before) {
        analyzer_->record_observation(when, Manifestation::kDroppedOther,
                                      100 + static_cast<std::uint32_t>(i));
      }
    });
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      if (i == j) continue;
      if (!workload.all_to_all && !(i < 2 && j < 2)) continue;
      SequenceFlood::Config fcfg;
      fcfg.s_id = port_id_of(i);
      fcfg.d_id = port_id_of(j);
      fcfg.payload_size = workload.payload_size;
      fcfg.fill = workload.payload_fill;
      fcfg.chunk = config_.fc.frame_chunk;
      fcfg.interval = workload.udp_interval;
      fcfg.burst_size = workload.burst_size;
      fcfg.jitter = workload.jitter;
      fcfg.seed = sim::derive_seed(seed, 100 + i * 16 + j);
      fcfg.stream = static_cast<std::uint32_t>(3000 + i * 16 + j);
      floods_.push_back(std::make_unique<SequenceFlood>(
          sim_, *nodes_[i]->port, fcfg));
    }
  }
  for (auto& f : floods_) f->start();
}

void FcFabric::stop_workload() {
  for (auto& f : floods_) f->stop();
}

void FcFabric::clear_workload() {
  floods_.clear();
  for (auto& node : nodes_) {
    node->port->on_frame(nullptr);
    node->reassembler.reset();
  }
}

void FcFabric::arm_scenario(const scenario::ScenarioSpec& spec,
                            std::uint64_t seed,
                            analysis::ManifestationAnalyzer& analyzer) {
  std::vector<scenario::FcNodeHooks> hooks;
  hooks.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    hooks.push_back({nodes_[i]->port.get(), port_id_of(i)});
  }
  scenario::FcScenarioDriver::Params params;
  params.frame_chunk = config_.fc.frame_chunk;
  params.payload_size = workload_.payload_size;
  params.payload_fill = workload_.payload_fill;
  scenario_driver_ = std::make_unique<scenario::FcScenarioDriver>(
      sim_, std::move(hooks), params);
  scenario_driver_->arm(spec, seed, analyzer);
}

void FcFabric::disarm_scenario() {
  if (scenario_driver_) scenario_driver_->disarm();
}

FabricCounters FcFabric::snapshot() const {
  FabricCounters s;
  for (const auto& node : nodes_) {
    const auto& ps = node->port->stats();
    s.crc_errors += ps.crc_errors;
    s.marker_errors += ps.malformed_sets;
    s.ring_overflows += ps.rx_overflows;
    s.tx_drops += ps.tx_queue_drops;
    s.credit_stalls += ps.credit_stall_events;
    s.messages_received += node->delivered;
    if (node->reassembler) {
      s.sequences_aborted += node->reassembler->stats().sequences_aborted +
                             node->reassembler->stats().frames_rejected;
    }
  }
  for (std::size_t p = 0; p < element_->num_ports(); ++p) {
    const auto& ps = element_->port(p).stats();
    s.crc_errors += ps.crc_errors;
    s.marker_errors += ps.malformed_sets;
    s.ring_overflows += ps.rx_overflows;
    s.tx_drops += ps.tx_queue_drops;
    s.credit_stalls += ps.credit_stall_events;
  }
  s.unroutable += element_->stats().frames_discarded;
  for (const auto& f : floods_) s.messages_sent += f->sent();
  if (config_.with_injector) {
    s.injections +=
        injector_->fifo_stats(core::Direction::kLeftToRight).injections;
    s.injections +=
        injector_->fifo_stats(core::Direction::kRightToLeft).injections;
  }
  if (scenario_driver_) {
    s.scenario_steps = scenario_driver_->fired();
    s.injections += s.scenario_steps;
  }
  return s;
}

std::uint64_t FcFabric::symbols_sent() const noexcept {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->cable->a_to_b().symbols_sent();
    total += node->cable->b_to_a().symbols_sent();
    if (node->cable2) {
      total += node->cable2->a_to_b().symbols_sent();
      total += node->cable2->b_to_a().symbols_sent();
    }
  }
  return total;
}

sim::Duration FcFabric::recovery_time() const {
  // No mapping protocol to rerun: in-flight frames drain and BB credits
  // return within a handful of frame times at 1.0625 Gb/s.
  return sim::milliseconds(5);
}

namespace {
/// The FC fabric's snapshot payload. Workload state (floods, reassemblers)
/// is per-run and empty at the quiescent settle boundary where snapshots
/// are taken; per-node delivered counters ride along for completeness.
struct FcSnapshot final : FabricSnapshot {
  struct NodeState {
    link::Channel::State cable_a2b;
    link::Channel::State cable_b2a;
    link::Channel::State cable2_a2b;
    link::Channel::State cable2_b2a;
    fc::FcPort::State port;
    std::uint64_t delivered = 0;
  };
  sim::Simulator::Snapshot sim;
  fc::FcFabric::State element;
  std::vector<NodeState> nodes;
  core::InjectorDevice::State injector;
  core::Uart::State uart;
  core::CommandDecoder::State decoder;
  std::uint64_t output_lines = 0;
  core::SerialControlHost::State control;
};
}  // namespace

std::unique_ptr<FabricSnapshot> FcFabric::capture_snapshot() {
  auto snap = std::make_unique<FcSnapshot>();
  snap->sim = sim_.snapshot();
  snap->element = element_->capture_state();
  snap->nodes.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    FcSnapshot::NodeState ns;
    ns.cable_a2b = node->cable->a_to_b().capture_state();
    ns.cable_b2a = node->cable->b_to_a().capture_state();
    if (node->cable2) {
      ns.cable2_a2b = node->cable2->a_to_b().capture_state();
      ns.cable2_b2a = node->cable2->b_to_a().capture_state();
    }
    ns.port = node->port->capture_state();
    ns.delivered = node->delivered;
    snap->nodes.push_back(std::move(ns));
  }
  if (injector_) {
    snap->injector = injector_->capture_state();
    snap->uart = uart_->capture_state();
    snap->decoder = comm_->decoder().capture_state();
    snap->output_lines = comm_->output().capture_state();
    snap->control = control_->capture_state();
  }
  return snap;
}

void FcFabric::restore_snapshot(const FabricSnapshot& base) {
  const auto& snap = static_cast<const FcSnapshot&>(base);
  sim_.restore(snap.sim);
  element_->restore_state(snap.element);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = *nodes_[i];
    const auto& ns = snap.nodes.at(i);
    node.cable->a_to_b().restore_state(ns.cable_a2b);
    node.cable->b_to_a().restore_state(ns.cable_b2a);
    if (node.cable2) {
      node.cable2->a_to_b().restore_state(ns.cable2_a2b);
      node.cable2->b_to_a().restore_state(ns.cable2_b2a);
    }
    node.port->restore_state(ns.port);
    node.delivered = ns.delivered;
  }
  if (injector_) {
    injector_->restore_state(snap.injector);
    uart_->restore_state(snap.uart);
    comm_->decoder().restore_state(snap.decoder);
    comm_->output().restore_state(snap.output_lines);
    control_->restore_state(snap.control);
  }
}

std::unique_ptr<Fabric> make_fabric(Medium medium,
                                    const TestbedConfig& config) {
  switch (medium) {
    case Medium::kMyrinet:
      return std::make_unique<MyrinetFabric>(config);
    case Medium::kFc:
      return std::make_unique<FcFabric>(config);
  }
  return std::make_unique<MyrinetFabric>(config);
}

}  // namespace hsfi::nftape
