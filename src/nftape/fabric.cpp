#include "nftape/fabric.hpp"

#include <algorithm>
#include <utility>

#include "nftape/faults.hpp"
#include "sim/rng.hpp"

namespace hsfi::nftape {

namespace {

using analysis::Manifestation;

Manifestation classify(myrinet::HostInterface::RxError e) {
  switch (e) {
    case myrinet::HostInterface::RxError::kCrcError:
      return Manifestation::kCrcDropped;
    case myrinet::HostInterface::RxError::kMarkerError:
      return Manifestation::kMarkerError;
    case myrinet::HostInterface::RxError::kTooShort:
    case myrinet::HostInterface::RxError::kRingOverflow:
      return Manifestation::kDroppedOther;
  }
  return Manifestation::kDroppedOther;
}

Manifestation classify(host::Host::DropReason r) {
  switch (r) {
    case host::Host::DropReason::kMisaddressed:
      return Manifestation::kMisrouted;
    // Send-side resolution failures mean the routing/address state itself
    // is damaged — the paper's "removed from the network".
    case host::Host::DropReason::kUnknownPeer:
    case host::Host::DropReason::kUnroutable:
      return Manifestation::kMappingDisruption;
    case host::Host::DropReason::kBadChecksum:
    case host::Host::DropReason::kBadLength:
    case host::Host::DropReason::kMalformed:
    case host::Host::DropReason::kUnknownType:
    case host::Host::DropReason::kUnboundPort:
      return Manifestation::kDroppedOther;
  }
  return Manifestation::kDroppedOther;
}

Manifestation classify(myrinet::Switch::PortEvent e) {
  switch (e) {
    case myrinet::Switch::PortEvent::kSlackOverflow:
      return Manifestation::kDroppedOther;
    case myrinet::Switch::PortEvent::kLongTimeout:
      return Manifestation::kTimeout;
    case myrinet::Switch::PortEvent::kInvalidRoute:
      return Manifestation::kMisrouted;
  }
  return Manifestation::kDroppedOther;
}

}  // namespace

MyrinetFabric::MyrinetFabric(TestbedConfig config)
    : owned_(std::make_unique<Testbed>(std::move(config))), bed_(*owned_) {}

MyrinetFabric::MyrinetFabric(Testbed& bed) : bed_(bed) {}

MyrinetFabric::~MyrinetFabric() = default;

std::uint64_t MyrinetFabric::base_seed() const noexcept {
  return bed_.config().seed;
}

void MyrinetFabric::program_fault(core::Direction dir,
                                  const core::InjectorConfig& config,
                                  bool via_serial) {
  if (via_serial) {
    for (const auto& cmd : to_serial_commands(config, dir)) {
      bed_.control().send_command(cmd);
    }
  } else {
    bed_.injector().apply(dir, config);
  }
}

void MyrinetFabric::disarm_faults(bool via_serial) {
  if (via_serial) {
    bed_.control().send_command("MODE L OFF");
    bed_.control().send_command("MODE R OFF");
  } else {
    for (const auto dir :
         {core::Direction::kLeftToRight, core::Direction::kRightToLeft}) {
      auto cfg = bed_.injector().config(dir);
      cfg.match_mode = core::MatchMode::kOff;
      bed_.injector().apply(dir, cfg);
    }
  }
}

void MyrinetFabric::attach_monitors(analysis::ManifestationAnalyzer& analyzer) {
  if (bed_.config().with_injector) {
    bed_.injector().set_injection_hook(
        [&analyzer](core::Direction, sim::SimTime when) {
          analyzer.record_injection(when);
        });
  }
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    const auto src = static_cast<std::uint32_t>(i);
    bed_.nic(i).on_rx_error([&analyzer, src](myrinet::HostInterface::RxError e,
                                             sim::SimTime when) {
      analyzer.record_observation(when, classify(e), src);
    });
    bed_.host(i).on_drop(
        [&analyzer, src](host::Host::DropReason reason, sim::SimTime when) {
          analyzer.record_observation(when, classify(reason), 100 + src);
        });
    bed_.host(i).mcp().on_confused_round([&analyzer, src](sim::SimTime when) {
      analyzer.record_observation(when, Manifestation::kMappingDisruption,
                                  300 + src);
    });
  }
  bed_.network_switch().on_port_event(
      [&analyzer](std::size_t port, myrinet::Switch::PortEvent e,
                  sim::SimTime when) {
        analyzer.record_observation(when, classify(e),
                                    200 + static_cast<std::uint32_t>(port));
      });
}

void MyrinetFabric::detach_monitors() {
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    bed_.nic(i).on_rx_error(nullptr);
    bed_.host(i).on_drop(nullptr);
    bed_.host(i).mcp().on_confused_round(nullptr);
  }
  bed_.network_switch().on_port_event(nullptr);
  if (bed_.config().with_injector) {
    bed_.injector().set_injection_hook(nullptr);
  }
}

void MyrinetFabric::start_workload(const WorkloadSpec& workload,
                                   std::uint64_t seed,
                                   analysis::ManifestationAnalyzer& analyzer) {
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    sinks_.push_back(
        std::make_unique<host::UdpSink>(bed_.host(i), workload.port));
    // The workload's constant size/fill makes corruption detectable at the
    // sink: a datagram that passed every check below but carries the wrong
    // bytes was delivered corrupted (the taxonomy's worst class — nothing
    // upstream noticed).
    const auto src = 400 + static_cast<std::uint32_t>(i);
    const auto expected_size = workload.payload_size;
    const auto expected_fill = workload.payload_fill;
    sinks_.back()->on_receive([&analyzer, src, expected_size, expected_fill](
                                  host::HostId, const host::UdpDatagram& dgram,
                                  sim::SimTime when) {
      const bool corrupted =
          dgram.payload.size() != expected_size ||
          std::any_of(dgram.payload.begin(), dgram.payload.end(),
                      [expected_fill](std::uint8_t b) {
                        return b != expected_fill;
                      });
      if (corrupted) {
        analyzer.record_observation(
            when, Manifestation::kPayloadCorruptedDelivered, src);
      }
    });
  }
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    for (std::size_t j = 0; j < bed_.node_count(); ++j) {
      if (i == j) continue;
      if (!workload.all_to_all && !(i < 2 && j < 2)) continue;
      host::UdpFlood::Config fc;
      fc.target = static_cast<host::HostId>(j + 1);
      fc.dst_port = workload.port;
      fc.src_port = static_cast<std::uint16_t>(3000 + i * 16 + j);
      fc.payload_size = workload.payload_size;
      fc.fill = workload.payload_fill;
      fc.interval = workload.udp_interval;
      fc.burst_size = workload.burst_size;
      fc.jitter = workload.jitter;
      fc.seed = sim::derive_seed(seed, 100 + i * 16 + j);
      floods_.push_back(
          std::make_unique<host::UdpFlood>(bed_.sim(), bed_.host(i), fc));
    }
  }
  for (auto& f : floods_) f->start();
}

void MyrinetFabric::stop_workload() {
  for (auto& f : floods_) f->stop();
}

void MyrinetFabric::clear_workload() {
  floods_.clear();
  sinks_.clear();
}

void MyrinetFabric::arm_scenario(const scenario::ScenarioSpec& spec,
                                 std::uint64_t seed,
                                 analysis::ManifestationAnalyzer& analyzer) {
  std::vector<scenario::MyrinetNodeHooks> hooks;
  hooks.reserve(bed_.node_count());
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    hooks.push_back({&bed_.nic(i), &bed_.host(i).mcp()});
  }
  scenario_driver_ = std::make_unique<scenario::MyrinetScenarioDriver>(
      bed_.sim(), bed_.network_switch(), std::move(hooks));
  scenario_driver_->arm(spec, seed, analyzer);
}

void MyrinetFabric::disarm_scenario() {
  if (scenario_driver_) scenario_driver_->disarm();
}

FabricCounters MyrinetFabric::snapshot() const {
  FabricCounters s;
  for (std::size_t i = 0; i < bed_.node_count(); ++i) {
    const auto& hs = bed_.host(i).stats();
    s.messages_sent += hs.udp_sent;
    s.messages_received += hs.udp_delivered;
    s.checksum_drops += hs.drop_bad_checksum + hs.drop_bad_length;
    s.misaddressed += hs.drop_misaddressed;
    s.unroutable += hs.drop_unroutable + hs.drop_unknown_peer;
    s.unknown_type += hs.drop_unknown_type;
    const auto& ns = bed_.nic(i).stats();
    s.crc_errors += ns.crc_errors;
    s.marker_errors += ns.marker_errors;
    s.ring_overflows += ns.ring_overflows;
    s.tx_drops += ns.tx_queue_drops;
  }
  auto& sw = bed_.network_switch();
  for (std::size_t p = 0; p < sw.num_ports(); ++p) {
    const auto ps = sw.port_stats(p);
    s.slack_overflow += ps.slack_overflow;
    s.long_timeouts += ps.long_timeouts;
  }
  if (bed_.config().with_injector) {
    s.injections +=
        bed_.injector().fifo_stats(core::Direction::kLeftToRight).injections;
    s.injections +=
        bed_.injector().fifo_stats(core::Direction::kRightToLeft).injections;
  }
  if (scenario_driver_) {
    s.scenario_steps = scenario_driver_->fired();
    s.injections += s.scenario_steps;
  }
  return s;
}

sim::Duration MyrinetFabric::recovery_time() const {
  return bed_.config().map_period + bed_.config().map_reply_window;
}

namespace {
/// The Myrinet fabric's snapshot payload: the whole settled Testbed.
struct MyrinetSnapshot final : FabricSnapshot {
  Testbed::State state;
};
}  // namespace

std::unique_ptr<FabricSnapshot> MyrinetFabric::capture_snapshot() {
  auto snap = std::make_unique<MyrinetSnapshot>();
  snap->state = bed_.capture_state();
  return snap;
}

void MyrinetFabric::restore_snapshot(const FabricSnapshot& snap) {
  bed_.restore_state(static_cast<const MyrinetSnapshot&>(snap).state);
}

}  // namespace hsfi::nftape
