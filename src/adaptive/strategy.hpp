// Closed-loop campaign strategies: what to run next, given what the
// monitors observed so far.
//
// The paper's architecture is *adaptive* because the RS-232 command plane
// can reconfigure the injector at run time based on monitor readouts; the
// evaluation methodology ("dial the injector until faults manifest") is a
// human playing exactly this role. A Strategy mechanizes it, FINJ-style:
// the controller executes one batch of runs per round on the orchestrator
// pool, feeds the per-run manifestation breakdowns back, and the strategy
// emits the next batch — until it declares convergence.
//
// Determinism contract: next_round() must be a pure function of the
// construction config and the preceding observe() history. Observations
// themselves are deterministic (worker-count-independent results, batch
// barriers between rounds), so an adaptive campaign is as replayable as a
// static grid.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/manifestation.hpp"

namespace hsfi::adaptive {

/// One fault × direction cell of the campaign plane (indices into
/// AdaptiveSpec::faults / AdaptiveSpec::directions).
struct Cell {
  std::uint32_t fault = 0;
  std::uint32_t direction = 0;
  friend bool operator==(const Cell&, const Cell&) = default;
};

/// One run a strategy asks for: which cell, at what value of the
/// campaign's tunable knob (see nftape::Knob). The controller assigns the
/// replicate ordinal — the request's position within its cell for the
/// round — so the seed key (round, cell, replicate) never depends on how
/// requests are interleaved across cells.
struct RunRequest {
  Cell cell;
  double knob_value = 0.0;
};

/// Round-barrier feedback, one per request, in request order.
struct Observation {
  RunRequest request;
  std::uint32_t round = 0;
  bool ok = false;  ///< run completed (RunOutcome::kOk)
  std::uint64_t injections = 0;
  std::uint64_t duplicates = 0;
  analysis::ManifestationBreakdown manifestations;

  /// Firings with an observable downstream effect (anything but masked).
  [[nodiscard]] std::uint64_t manifested() const noexcept {
    return manifestations.total() -
           manifestations[analysis::Manifestation::kMasked];
  }
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Stable tag stamped into every JSONL record ("fixed", "bisect",
  /// "coverage", ...). User-supplied names pass through json_escape, so
  /// any byte string is safe; keep it short and path-like for readability.
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// The next batch of runs. Empty = converged; the controller stops.
  [[nodiscard]] virtual std::vector<RunRequest> next_round(
      std::uint32_t round) = 0;

  /// Feedback for the finished round, in request order. Called exactly
  /// once per non-empty next_round(), after the batch barrier.
  virtual void observe(const std::vector<Observation>& results) = 0;

  /// Mid-batch streaming feedback: one finished run of the current round,
  /// delivered in *completion* order while the round is still executing
  /// (via monitor::StreamingFeed — see ControllerConfig::feed). Returns
  /// true when the remaining runs of the observation's cell this round
  /// have become redundant; with ControllerConfig::early_cancel the
  /// controller then skips them at dequeue.
  ///
  /// Determinism contract: implementations keep their streaming scratch
  /// separate from the observe() history — next_round() resets it and the
  /// barrier-path state never reads it — so with early_cancel off a
  /// streaming-fed campaign is byte-identical to the batch-barrier path,
  /// and a true verdict must never change the decision observe() would
  /// reach at the barrier (cancel only what is already resolved).
  /// Default: no opinion.
  [[nodiscard]] virtual bool observe_streaming(const Observation& obs) {
    (void)obs;
    return false;
  }
};

// ---------------------------------------------------------------------------
// Fixed grid: today's static sweep as a one-round strategy.

struct FixedGridConfig {
  /// Knob values to run at (the intensity axis); empty = one run at
  /// `neutral_value` per cell.
  std::vector<double> knob_values;
  double neutral_value = 0.0;  ///< used when knob_values is empty
  std::size_t replicates = 1;
};

/// Wraps the pre-adaptive behavior: round 0 is the full
/// cell × knob-value × replicate grid, then done. Makes `run_sweep
/// --strategy fixed` a strict superset of the static CLI (same grid, plus
/// round/strategy provenance in the records).
class FixedGridStrategy final : public Strategy {
 public:
  FixedGridStrategy(std::vector<Cell> cells, FixedGridConfig config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "fixed";
  }
  [[nodiscard]] std::vector<RunRequest> next_round(
      std::uint32_t round) override;
  void observe(const std::vector<Observation>& results) override;

 private:
  std::vector<Cell> cells_;
  FixedGridConfig config_;
};

// ---------------------------------------------------------------------------
// Threshold bisection: binary-search the masked -> manifested transition.

struct BisectionConfig {
  /// Knob search range (inclusive). The axis must be (stochastically)
  /// monotone: one end of the range manifests, the other masks.
  double lo = 0.0;
  double hi = 1.0;
  /// Stop once the bracket around the threshold is at most this wide (in
  /// knob units). 0 = (hi - lo) / 64.
  double tolerance = 0.0;
  /// true: larger knob values are more intense (more manifestations) —
  /// e.g. burst size. false: smaller values are more intense — e.g.
  /// kUdpIntervalUs (faster traffic) and kSeuLfsrBits (rarer trigger).
  bool higher_is_more_intense = true;
  /// Probes per tested knob value (same value, distinct replicate seeds).
  std::size_t replicates = 1;
  /// A value "manifests" when the probes' summed manifested firings reach
  /// this count. >1 rejects single-firing flukes near the threshold.
  std::uint64_t min_manifested = 1;
};

/// Per-cell search outcome.
struct CellThreshold {
  /// Threshold bracket in knob units: the transition lies between
  /// masked_at (no manifestation observed) and manifested_at. When the
  /// whole range manifests, masked_at is NaN; when none of it does,
  /// manifested_at is NaN and `found` is false.
  double masked_at = 0.0;
  double manifested_at = 0.0;
  bool found = false;
  bool converged = false;  ///< bracket width <= tolerance
  std::size_t runs = 0;    ///< probes spent on this cell
  /// Midpoint estimate (meaningful when found && converged).
  [[nodiscard]] double estimate() const noexcept {
    return (masked_at + manifested_at) / 2.0;
  }
};

/// Replicates the paper's "dial the injector until faults manifest"
/// methodology in O(log(range/tolerance)) probes per cell instead of a
/// full grid: round 0 probes both endpoints of every cell's range, then
/// each subsequent round probes the bracket midpoint of every still-open
/// cell (all cells advance in the same batch, so rounds stay wide and the
/// pool stays busy).
class BisectionStrategy final : public Strategy {
 public:
  BisectionStrategy(std::vector<Cell> cells, BisectionConfig config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "bisect";
  }
  [[nodiscard]] std::vector<RunRequest> next_round(
      std::uint32_t round) override;
  void observe(const std::vector<Observation>& results) override;
  /// True once the cell's streaming manifested sum reaches min_manifested
  /// in a midpoint round — the probe verdict is already decided, so the
  /// remaining replicates are redundant. Round 0 never cancels: its two
  /// endpoint probes share the cell and the low endpoint still needs data.
  [[nodiscard]] bool observe_streaming(const Observation& obs) override;

  [[nodiscard]] const std::vector<CellThreshold>& thresholds() const noexcept {
    return thresholds_;
  }
  /// Resolved tolerance (the config's, or the (hi-lo)/64 default).
  [[nodiscard]] double tolerance() const noexcept { return tolerance_; }
  /// Probes an exhaustive grid at this tolerance would need per cell —
  /// the baseline bench_adaptive compares against.
  [[nodiscard]] std::size_t grid_equivalent_runs_per_cell() const noexcept;

 private:
  /// Search state in intensity space t ∈ [0, 1] (t = 1 most intense);
  /// value() maps t back to knob units respecting the axis direction.
  struct CellState {
    double t_masked = 0.0;      ///< highest t known to mask
    double t_manifested = 1.0;  ///< lowest t known to manifest
    bool have_masked = false;
    bool have_manifested = false;
    bool done = false;
    std::size_t runs = 0;
  };
  [[nodiscard]] double value(double t) const noexcept;
  [[nodiscard]] double width(const CellState& s) const noexcept;
  void finish(std::size_t cell_index);

  BisectionConfig config_;
  double tolerance_ = 0.0;
  std::vector<Cell> cell_list_;
  std::vector<CellState> cells_;
  std::vector<CellThreshold> thresholds_;
  /// (cell index, t) of the probes issued this round, in request order.
  std::vector<std::pair<std::size_t, double>> pending_;
  /// Streaming scratch: per-cell manifested sum of the in-flight round.
  /// Reset by next_round(), never read by the barrier path.
  std::vector<std::uint64_t> streaming_manifested_;
};

// ---------------------------------------------------------------------------
// Coverage-driven exploration: replicate where rare classes still lack data.

struct CoverageConfig {
  /// Knob value every exploration run uses (coverage varies *where* runs
  /// go, not the intensity).
  double knob_value = 0.0;
  /// Stop chasing a class in a cell once it has been observed this often.
  std::uint64_t target_count = 5;
  /// Runs allocated per open cell per round.
  std::size_t batch_replicates = 2;
  /// Wilson-based stopping: once a cell has at least `min_injections`
  /// firings and the Wilson 95% upper bound on an unsatisfied class's rate
  /// is below `hopeless_rate`, the class is declared unreachable for this
  /// fault and stops holding the cell open. Without this, a class a fault
  /// physically cannot produce (misrouted from a payload-only corruption)
  /// would absorb replicates forever.
  std::uint64_t min_injections = 256;
  double hopeless_rate = 0.01;
};

/// Per-cell, per-class coverage verdict.
enum class ClassCoverage : std::uint8_t {
  kOpen,       ///< below target, plausibly reachable — keep allocating
  kSatisfied,  ///< target_count observations reached
  kHopeless,   ///< Wilson upper bound < hopeless_rate at min_injections
};

/// Allocates replicates to the cells whose manifestation classes are still
/// under-observed, so rare classes (misrouted, mapping_disruption) get
/// runs instead of re-confirming masked ones.
class CoverageStrategy final : public Strategy {
 public:
  CoverageStrategy(std::vector<Cell> cells, CoverageConfig config);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "coverage";
  }
  [[nodiscard]] std::vector<RunRequest> next_round(
      std::uint32_t round) override;
  void observe(const std::vector<Observation>& results) override;
  /// True once the cell would no longer be open given the committed counts
  /// plus the streaming results of the in-flight round — every class is
  /// satisfied or hopeless, so the cell's remaining replicates this round
  /// buy nothing.
  [[nodiscard]] bool observe_streaming(const Observation& obs) override;

  /// Coverage verdict for (cell, class) given the data so far.
  [[nodiscard]] ClassCoverage coverage(std::size_t cell_index,
                                       analysis::Manifestation m) const;
  [[nodiscard]] bool cell_open(std::size_t cell_index) const;
  [[nodiscard]] std::uint64_t class_count(std::size_t cell_index,
                                          analysis::Manifestation m) const;
  [[nodiscard]] std::uint64_t cell_injections(
      std::size_t cell_index) const noexcept {
    return cells_[cell_index].injections;
  }

 private:
  struct CellState {
    std::uint64_t injections = 0;
    analysis::ManifestationBreakdown counts;
  };
  [[nodiscard]] std::size_t index_of(const Cell& cell) const;

  CoverageConfig config_;
  std::vector<Cell> cell_list_;
  std::vector<CellState> cells_;
  /// Streaming scratch atop the committed counts, for the in-flight round
  /// only. Reset by next_round(), never read by the barrier path.
  std::vector<CellState> streaming_;
};

}  // namespace hsfi::adaptive
