// Coverage-driven exploration: keep replicating the cells whose rare
// manifestation classes are still under-observed.
//
// A static grid spends most of its replicates re-confirming the common
// classes (masked, crc_dropped); the paper's rare outcomes — misrouted
// frames, mapping disruption — show up a handful of times across an entire
// campaign. This strategy reallocates: a cell stays "open" while any
// non-masked class is below the target count and the Wilson 95% upper
// bound on its rate still allows it to plausibly appear; once every class
// is either satisfied or statistically hopeless, the cell stops consuming
// runs.
#include <utility>

#include "adaptive/stats.hpp"
#include "adaptive/strategy.hpp"

namespace hsfi::adaptive {

using analysis::Manifestation;

CoverageStrategy::CoverageStrategy(std::vector<Cell> cells,
                                   CoverageConfig config)
    : config_(std::move(config)),
      cell_list_(std::move(cells)),
      cells_(cell_list_.size()),
      streaming_(cell_list_.size()) {
  if (config_.batch_replicates == 0) config_.batch_replicates = 1;
  if (config_.target_count == 0) config_.target_count = 1;
}

std::size_t CoverageStrategy::index_of(const Cell& cell) const {
  for (std::size_t i = 0; i < cell_list_.size(); ++i) {
    if (cell_list_[i] == cell) return i;
  }
  return cell_list_.size();
}

ClassCoverage CoverageStrategy::coverage(std::size_t cell_index,
                                         Manifestation m) const {
  // Masked is the complement of everything else — never chased, so it is
  // never a reason to keep a cell open.
  if (m == Manifestation::kMasked) return ClassCoverage::kSatisfied;
  const CellState& s = cells_[cell_index];
  const std::uint64_t count = s.counts[m];
  if (count >= config_.target_count) return ClassCoverage::kSatisfied;
  if (s.injections >= config_.min_injections &&
      wilson_upper(count, s.injections) < config_.hopeless_rate) {
    return ClassCoverage::kHopeless;
  }
  return ClassCoverage::kOpen;
}

bool CoverageStrategy::cell_open(std::size_t cell_index) const {
  for (const auto m : analysis::all_manifestations()) {
    if (m == Manifestation::kMasked) continue;  // masked needs no chasing
    if (coverage(cell_index, m) == ClassCoverage::kOpen) return true;
  }
  return false;
}

std::uint64_t CoverageStrategy::class_count(std::size_t cell_index,
                                            Manifestation m) const {
  return cells_[cell_index].counts[m];
}

std::vector<RunRequest> CoverageStrategy::next_round(std::uint32_t) {
  streaming_.assign(cell_list_.size(), CellState{});
  std::vector<RunRequest> requests;
  for (std::size_t i = 0; i < cell_list_.size(); ++i) {
    if (!cell_open(i)) continue;
    for (std::size_t rep = 0; rep < config_.batch_replicates; ++rep) {
      requests.push_back({cell_list_[i], config_.knob_value});
    }
  }
  return requests;
}

bool CoverageStrategy::observe_streaming(const Observation& obs) {
  const std::size_t i = index_of(obs.request.cell);
  if (i >= cells_.size()) return false;
  if (obs.ok) {
    streaming_[i].injections += obs.injections;
    streaming_[i].counts += obs.manifestations;
  }
  // The cell's remaining replicates are redundant once no class stays open
  // at the committed + streaming counts. This can only under-report
  // relative to the barrier (skipped runs are not-ok and contribute
  // nothing), so a true verdict here implies the cell closes at observe()
  // too — coverage monotonically accumulates.
  const std::uint64_t injections =
      cells_[i].injections + streaming_[i].injections;
  for (const auto m : analysis::all_manifestations()) {
    if (m == Manifestation::kMasked) continue;
    const std::uint64_t count = cells_[i].counts[m] + streaming_[i].counts[m];
    if (count >= config_.target_count) continue;  // satisfied
    if (injections >= config_.min_injections &&
        wilson_upper(count, injections) < config_.hopeless_rate) {
      continue;  // hopeless
    }
    return false;  // still open: keep the round's replicates coming
  }
  return true;
}

void CoverageStrategy::observe(const std::vector<Observation>& results) {
  for (const Observation& obs : results) {
    if (!obs.ok) continue;
    const std::size_t i = index_of(obs.request.cell);
    if (i >= cells_.size()) continue;
    cells_[i].injections += obs.injections;
    cells_[i].counts += obs.manifestations;
  }
}

}  // namespace hsfi::adaptive
