// Binomial-rate statistics shared by the adaptive strategies and the
// campaign reports: Wilson score intervals over manifestation counts.
//
// The coverage strategy stops allocating replicates to a fault cell once
// the Wilson interval around a class's rate is tight enough to call it
// (either the target count is reached or the upper bound says the class is
// effectively unreachable at this intensity), and the per-cell summary
// tables print the same interval so a human reads the exact numbers the
// controller acted on. Header-only on purpose: nftape and orchestrator
// render these intervals without linking the adaptive library.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace hsfi::adaptive {

/// Two-sided Wilson score interval for a binomial proportion.
struct WilsonInterval {
  double lo = 0.0;
  double hi = 1.0;
  /// Point estimate successes/trials (0 when trials == 0).
  double rate = 0.0;
};

/// Wilson score interval for `successes` out of `trials` at normal quantile
/// `z` (1.96 = 95%). Unlike the Wald interval it never collapses to a zero
/// width at the 0/n and n/n boundaries — exactly the cells the adaptive
/// loop cares about (rare classes observed 0 times so far).
///
/// Edge cases: trials == 0 returns the documented full-width [0, 1] with
/// rate 0 — a no-data cell is maximally uncertain, never NaN — and
/// successes > trials throws std::invalid_argument (p > 1 would push the
/// score term's discriminant negative and the whole interval to NaN, which
/// then poisons every stopping rule that compares against it).
[[nodiscard]] inline WilsonInterval wilson_interval(std::uint64_t successes,
                                                    std::uint64_t trials,
                                                    double z = 1.96) {
  if (successes > trials) {
    throw std::invalid_argument("wilson_interval: successes > trials");
  }
  WilsonInterval w;
  if (trials == 0) return w;  // full-width [0, 1], rate 0
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  w.rate = p;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  w.lo = std::max(0.0, (center - margin) / denom);
  w.hi = std::min(1.0, (center + margin) / denom);
  return w;
}

/// Upper bound alone — the coverage strategy's "could this class still
/// plausibly reach the target?" test.
[[nodiscard]] inline double wilson_upper(std::uint64_t successes,
                                         std::uint64_t trials,
                                         double z = 1.96) {
  return wilson_interval(successes, trials, z).hi;
}

[[nodiscard]] inline double wilson_lower(std::uint64_t successes,
                                         std::uint64_t trials,
                                         double z = 1.96) {
  return wilson_interval(successes, trials, z).lo;
}

/// "k/n = 12.5% [8.1%, 18.7%]" — the cell format used by the per-cell
/// summary tables. Fixed decimals so report output is byte-stable.
[[nodiscard]] inline std::string format_rate_ci(std::uint64_t successes,
                                                std::uint64_t trials) {
  char buf[96];
  if (trials == 0) {
    std::snprintf(buf, sizeof(buf), "%llu/0 = -",
                  static_cast<unsigned long long>(successes));
    return buf;
  }
  const WilsonInterval w = wilson_interval(successes, trials);
  std::snprintf(buf, sizeof(buf), "%llu/%llu = %.1f%% [%.1f%%, %.1f%%]",
                static_cast<unsigned long long>(successes),
                static_cast<unsigned long long>(trials), 100.0 * w.rate,
                100.0 * w.lo, 100.0 * w.hi);
  return buf;
}

}  // namespace hsfi::adaptive
