#include "adaptive/controller.hpp"

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "monitor/feed.hpp"

namespace hsfi::adaptive {

namespace {

/// Shared state the streaming callbacks read for the round in flight.
/// Mutated only at batch barriers (no workers running), read by workers
/// mid-batch under the runner's record mutex (bridge) or lock-free with
/// relaxed atomics (skip flags).
struct RoundStream {
  const std::vector<RunRequest>* requests = nullptr;
  std::size_t first_index = 0;
};

/// The RecordSink the controller installs when a feed is attached:
/// publishes each completed record mid-batch and relays the strategy's
/// streaming verdict into the per-cell skip flags (live mode only).
class StreamBridge final : public orchestrator::RecordSink {
 public:
  StreamBridge(monitor::StreamingFeed& feed, Strategy& strategy,
               const RoundStream& stream, std::vector<std::atomic<bool>>& skip,
               std::size_t directions, bool early_cancel)
      : feed_(feed),
        strategy_(strategy),
        stream_(stream),
        skip_(skip),
        directions_(directions),
        early_cancel_(early_cancel) {}

  void on_record(const orchestrator::RunRecord& rec) override {
    feed_.publish(rec);
    if (stream_.requests == nullptr) return;
    const std::size_t i = rec.index - stream_.first_index;
    if (i >= stream_.requests->size()) return;
    const RunRequest& req = (*stream_.requests)[i];

    Observation obs;
    obs.request = req;
    obs.round = rec.round;
    obs.ok = rec.outcome == orchestrator::RunOutcome::kOk;
    obs.injections = rec.result.injections;
    obs.duplicates = rec.result.duplicates();
    obs.manifestations = rec.result.manifestations;
    const bool redundant = strategy_.observe_streaming(obs);
    if (early_cancel_ && redundant) {
      skip_[req.cell.fault * directions_ + req.cell.direction].store(
          true, std::memory_order_relaxed);
    }
  }

 private:
  monitor::StreamingFeed& feed_;
  Strategy& strategy_;
  const RoundStream& stream_;
  std::vector<std::atomic<bool>>& skip_;
  std::size_t directions_;
  bool early_cancel_;
};

/// Deterministic short rendering of a knob value for run names ("112.5",
/// "8"). %.6g keeps sub-integer probes distinguishable without trailing
/// zero noise.
std::string knob_tag(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

Controller::Controller(AdaptiveSpec spec, ControllerConfig config)
    : spec_(std::move(spec)), config_(std::move(config)) {
  if (spec_.faults.empty()) {
    spec_.faults.push_back({"baseline", std::nullopt, ""});
  }
  if (spec_.directions.empty()) {
    spec_.directions = {orchestrator::FaultDirection::kBoth};
  }
  startup_settle_ = spec_.startup_settle > 0
                        ? spec_.startup_settle
                        : spec_.testbed.map_period +
                              spec_.testbed.map_reply_window +
                              sim::milliseconds(50);
}

std::vector<Cell> Controller::cells() const {
  std::vector<Cell> out;
  out.reserve(spec_.faults.size() * spec_.directions.size());
  for (std::uint32_t f = 0; f < spec_.faults.size(); ++f) {
    for (std::uint32_t d = 0; d < spec_.directions.size(); ++d) {
      out.push_back({f, d});
    }
  }
  return out;
}

std::string Controller::cell_name(const Cell& cell) const {
  std::string name = spec_.faults.at(cell.fault).name;
  name += '/';
  name += to_string(spec_.directions.at(cell.direction));
  return name;
}

std::vector<orchestrator::RunSpec> Controller::expand_round(
    const std::vector<RunRequest>& requests, std::uint32_t round,
    std::size_t first_index, std::string_view strategy_name) const {
  // Replicate ordinals are per (cell, knob value) within the round, in
  // request order — the strategy's batching across cells cannot shift
  // another cell's seeds.
  std::map<std::pair<std::uint64_t, double>, std::uint32_t> replicate;
  std::vector<orchestrator::RunSpec> runs;
  runs.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const RunRequest& req = requests[i];
    const auto& fault = spec_.faults.at(req.cell.fault);
    const auto dir = spec_.directions.at(req.cell.direction);
    const std::uint64_t cell_key =
        (static_cast<std::uint64_t>(req.cell.fault) << 32) |
        req.cell.direction;
    const std::uint32_t rep = replicate[{cell_key, req.knob_value}]++;

    orchestrator::RunSpec run;
    run.index = spec_.index_base + first_index + i;
    run.round = round;
    run.strategy = std::string(strategy_name);
    run.seed = derive_run_seed(spec_.base_seed, round, req.cell.fault,
                               req.cell.direction, rep);
    run.startup_settle = startup_settle_;
    run.testbed = spec_.testbed;
    run.testbed.seed = run.seed;
    run.campaign = spec_.base;
    run.campaign.seed = run.seed;
    run.campaign.name = spec_.name_prefix;
    run.campaign.name += fault.name;
    run.campaign.name += '/';
    run.campaign.name += to_string(dir);
    run.campaign.name += '/';
    run.campaign.name += std::string(to_string(spec_.knob));
    run.campaign.name += '=';
    run.campaign.name += knob_tag(req.knob_value);
    run.campaign.name += "/r";
    run.campaign.name += std::to_string(rep);
    run.campaign.fault_to_switch.reset();
    run.campaign.fault_from_switch.reset();
    if (fault.config) {
      if (dir != orchestrator::FaultDirection::kFromSwitch) {
        run.campaign.fault_to_switch = fault.config;
      }
      if (dir != orchestrator::FaultDirection::kToSwitch) {
        run.campaign.fault_from_switch = fault.config;
      }
    }
    // After fault installation, so kSeuLfsrBits sees the installed
    // directions.
    nftape::apply_knob(run.campaign, spec_.knob, req.knob_value);
    runs.push_back(std::move(run));
  }
  return runs;
}

CampaignOutcome Controller::run(Strategy& strategy) {
  return run(strategy, {});
}

CampaignOutcome Controller::run(
    Strategy& strategy, const std::vector<std::vector<ReplayRecord>>& replay) {
  CampaignOutcome outcome;
  // Runs accounted so far — replayed and executed. Replayed rounds are not
  // re-materialized in outcome.records, so indices/caps track this instead.
  std::size_t emitted = 0;

  // Streaming plane: state shared with the runner callbacks for the round
  // in flight. Skip flags are per cell (fault-major, like cells()).
  RoundStream stream;
  std::vector<std::atomic<bool>> skip(spec_.faults.size() *
                                      spec_.directions.size());
  orchestrator::RunnerConfig runner_config = config_.runner;
  std::unique_ptr<StreamBridge> bridge;
  if (config_.feed != nullptr) {
    bridge = std::make_unique<StreamBridge>(*config_.feed, strategy, stream,
                                            skip, spec_.directions.size(),
                                            config_.early_cancel);
    runner_config.sinks.push_back(bridge.get());
    if (config_.early_cancel) {
      const std::size_t directions = spec_.directions.size();
      runner_config.should_skip =
          [&stream, &skip, directions](const orchestrator::RunSpec& spec) {
            if (stream.requests == nullptr) return false;
            const std::size_t i = spec.index - stream.first_index;
            if (i >= stream.requests->size()) return false;
            const Cell& cell = (*stream.requests)[i].cell;
            return skip[cell.fault * directions + cell.direction].load(
                std::memory_order_relaxed);
          };
    }
  }
  orchestrator::Runner runner(runner_config);

  for (std::uint32_t round = 0; round < spec_.max_rounds; ++round) {
    const std::vector<RunRequest> requests = strategy.next_round(round);
    if (requests.empty()) {
      if (round < replay.size() && !replay[round].empty()) {
        throw ReplayMismatch(
            "adaptive resume: checkpoint has records for round " +
            std::to_string(round) +
            " but the strategy converged before it — spec drift");
      }
      outcome.converged = true;
      break;
    }
    if (spec_.max_total_runs != 0 &&
        emitted + requests.size() > spec_.max_total_runs) {
      break;
    }
    const auto runs =
        expand_round(requests, round, emitted, strategy.name());

    if (round < replay.size()) {
      // Restored round: verify the recorded runs are exactly what the
      // strategy re-derives, then feed them back without executing.
      const auto& recorded = replay[round];
      if (recorded.size() != requests.size()) {
        throw ReplayMismatch(
            "adaptive resume: round " + std::to_string(round) + " replays " +
            std::to_string(recorded.size()) + " records but the strategy " +
            "requests " + std::to_string(requests.size()) + " — spec drift");
      }
      std::vector<Observation> observations;
      observations.reserve(recorded.size());
      RoundSummary summary;
      summary.round = round;
      summary.runs = recorded.size();
      for (std::size_t i = 0; i < recorded.size(); ++i) {
        if (recorded[i].name != runs[i].campaign.name) {
          throw ReplayMismatch("adaptive resume: round " +
                               std::to_string(round) + " record " +
                               std::to_string(i) + " is '" +
                               recorded[i].name + "' but the strategy " +
                               "re-derives '" + runs[i].campaign.name +
                               "' — spec drift");
        }
        if (!recorded[i].ok) ++summary.failed;
        Observation obs;
        obs.request = requests[i];
        obs.round = round;
        obs.ok = recorded[i].ok;
        obs.injections = recorded[i].injections;
        obs.duplicates = recorded[i].duplicates;
        obs.manifestations = recorded[i].manifestations;
        observations.push_back(obs);
        outcome.cells.add_run(cell_name(requests[i].cell), recorded[i].ok,
                              recorded[i].manifestations,
                              recorded[i].injections, recorded[i].duplicates);
      }
      strategy.observe(observations);
      emitted += recorded.size();
      outcome.replayed += recorded.size();
      outcome.rounds = round + 1;
      summary.total_runs = emitted;
      if (config_.on_round) config_.on_round(summary);
      continue;
    }

    // Arm the streaming callbacks for this round (no workers are running
    // between barriers, so plain writes are safe). first_index must match
    // the indices expand_round stamped, including index_base.
    stream.requests = &requests;
    stream.first_index = spec_.index_base + emitted;
    for (auto& flag : skip) flag.store(false, std::memory_order_relaxed);
    // Batch barrier: run_batch returns only when the whole round finished.
    // Records come back positional (= request order), so emission below is
    // deterministic no matter how workers interleaved.
    auto records = runner.run_batch(runs);
    stream.requests = nullptr;  // `requests` dies with this iteration

    std::vector<Observation> observations;
    observations.reserve(records.size());
    RoundSummary summary;
    summary.round = round;
    summary.runs = records.size();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const orchestrator::RunRecord& rec = records[i];
      const bool ok = rec.outcome == orchestrator::RunOutcome::kOk;
      if (!ok) ++summary.failed;

      Observation obs;
      obs.request = requests[i];
      obs.round = round;
      obs.ok = ok;
      obs.injections = rec.result.injections;
      obs.duplicates = rec.result.duplicates();
      obs.manifestations = rec.result.manifestations;
      observations.push_back(obs);

      outcome.cells.add_run(cell_name(requests[i].cell), ok,
                            rec.result.manifestations, rec.result.injections,
                            rec.result.duplicates(),
                            &rec.result.manifestation_latency);
      if (config_.on_record) config_.on_record(rec);
      outcome.records.push_back(std::move(records[i]));
    }

    strategy.observe(observations);
    emitted += records.size();
    outcome.rounds = round + 1;
    summary.total_runs = emitted;
    if (config_.on_round) config_.on_round(summary);
  }
  return outcome;
}

}  // namespace hsfi::adaptive
