#include "adaptive/controller.hpp"

#include <cstdio>
#include <map>
#include <utility>

namespace hsfi::adaptive {

namespace {

/// Deterministic short rendering of a knob value for run names ("112.5",
/// "8"). %.6g keeps sub-integer probes distinguishable without trailing
/// zero noise.
std::string knob_tag(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

}  // namespace

Controller::Controller(AdaptiveSpec spec, ControllerConfig config)
    : spec_(std::move(spec)), config_(std::move(config)) {
  if (spec_.faults.empty()) {
    spec_.faults.push_back({"baseline", std::nullopt});
  }
  if (spec_.directions.empty()) {
    spec_.directions = {orchestrator::FaultDirection::kBoth};
  }
  startup_settle_ = spec_.startup_settle > 0
                        ? spec_.startup_settle
                        : spec_.testbed.map_period +
                              spec_.testbed.map_reply_window +
                              sim::milliseconds(50);
}

std::vector<Cell> Controller::cells() const {
  std::vector<Cell> out;
  out.reserve(spec_.faults.size() * spec_.directions.size());
  for (std::uint32_t f = 0; f < spec_.faults.size(); ++f) {
    for (std::uint32_t d = 0; d < spec_.directions.size(); ++d) {
      out.push_back({f, d});
    }
  }
  return out;
}

std::string Controller::cell_name(const Cell& cell) const {
  std::string name = spec_.faults.at(cell.fault).name;
  name += '/';
  name += to_string(spec_.directions.at(cell.direction));
  return name;
}

std::vector<orchestrator::RunSpec> Controller::expand_round(
    const std::vector<RunRequest>& requests, std::uint32_t round,
    std::size_t first_index, std::string_view strategy_name) const {
  // Replicate ordinals are per (cell, knob value) within the round, in
  // request order — the strategy's batching across cells cannot shift
  // another cell's seeds.
  std::map<std::pair<std::uint64_t, double>, std::uint32_t> replicate;
  std::vector<orchestrator::RunSpec> runs;
  runs.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const RunRequest& req = requests[i];
    const auto& fault = spec_.faults.at(req.cell.fault);
    const auto dir = spec_.directions.at(req.cell.direction);
    const std::uint64_t cell_key =
        (static_cast<std::uint64_t>(req.cell.fault) << 32) |
        req.cell.direction;
    const std::uint32_t rep = replicate[{cell_key, req.knob_value}]++;

    orchestrator::RunSpec run;
    run.index = first_index + i;
    run.round = round;
    run.strategy = std::string(strategy_name);
    run.seed = derive_run_seed(spec_.base_seed, round, req.cell.fault,
                               req.cell.direction, rep);
    run.startup_settle = startup_settle_;
    run.testbed = spec_.testbed;
    run.testbed.seed = run.seed;
    run.campaign = spec_.base;
    run.campaign.seed = run.seed;
    run.campaign.name = fault.name;
    run.campaign.name += '/';
    run.campaign.name += to_string(dir);
    run.campaign.name += '/';
    run.campaign.name += std::string(to_string(spec_.knob));
    run.campaign.name += '=';
    run.campaign.name += knob_tag(req.knob_value);
    run.campaign.name += "/r";
    run.campaign.name += std::to_string(rep);
    run.campaign.fault_to_switch.reset();
    run.campaign.fault_from_switch.reset();
    if (fault.config) {
      if (dir != orchestrator::FaultDirection::kFromSwitch) {
        run.campaign.fault_to_switch = fault.config;
      }
      if (dir != orchestrator::FaultDirection::kToSwitch) {
        run.campaign.fault_from_switch = fault.config;
      }
    }
    // After fault installation, so kSeuLfsrBits sees the installed
    // directions.
    nftape::apply_knob(run.campaign, spec_.knob, req.knob_value);
    runs.push_back(std::move(run));
  }
  return runs;
}

CampaignOutcome Controller::run(Strategy& strategy) {
  CampaignOutcome outcome;
  orchestrator::Runner runner(config_.runner);

  for (std::uint32_t round = 0; round < spec_.max_rounds; ++round) {
    const std::vector<RunRequest> requests = strategy.next_round(round);
    if (requests.empty()) {
      outcome.converged = true;
      break;
    }
    if (spec_.max_total_runs != 0 &&
        outcome.records.size() + requests.size() > spec_.max_total_runs) {
      break;
    }
    const auto runs = expand_round(requests, round, outcome.records.size(),
                                   strategy.name());
    // Batch barrier: run_batch returns only when the whole round finished.
    // Records come back positional (= request order), so emission below is
    // deterministic no matter how workers interleaved.
    auto records = runner.run_batch(runs);

    std::vector<Observation> observations;
    observations.reserve(records.size());
    RoundSummary summary;
    summary.round = round;
    summary.runs = records.size();
    for (std::size_t i = 0; i < records.size(); ++i) {
      const orchestrator::RunRecord& rec = records[i];
      const bool ok = rec.outcome == orchestrator::RunOutcome::kOk;
      if (!ok) ++summary.failed;

      Observation obs;
      obs.request = requests[i];
      obs.round = round;
      obs.ok = ok;
      obs.injections = rec.result.injections;
      obs.duplicates = rec.result.duplicates();
      obs.manifestations = rec.result.manifestations;
      observations.push_back(obs);

      outcome.cells.add_run(cell_name(requests[i].cell), ok,
                            rec.result.manifestations, rec.result.injections,
                            rec.result.duplicates(),
                            &rec.result.manifestation_latency);
      if (config_.on_record) config_.on_record(rec);
      outcome.records.push_back(std::move(records[i]));
    }

    strategy.observe(observations);
    outcome.rounds = round + 1;
    summary.total_runs = outcome.records.size();
    if (config_.on_round) config_.on_round(summary);
  }
  return outcome;
}

}  // namespace hsfi::adaptive
