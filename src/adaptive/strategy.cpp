#include "adaptive/strategy.hpp"

#include <utility>

namespace hsfi::adaptive {

FixedGridStrategy::FixedGridStrategy(std::vector<Cell> cells,
                                     FixedGridConfig config)
    : cells_(std::move(cells)), config_(std::move(config)) {
  if (config_.knob_values.empty()) {
    config_.knob_values = {config_.neutral_value};
  }
  if (config_.replicates == 0) config_.replicates = 1;
}

std::vector<RunRequest> FixedGridStrategy::next_round(std::uint32_t round) {
  std::vector<RunRequest> requests;
  if (round != 0) return requests;
  // Cell-major, then knob value, then replicate — the same nesting order
  // as orchestrator::expand, so the fixed strategy reproduces the static
  // grid's run sequence exactly (only the seed keys differ, now carrying
  // the round).
  requests.reserve(cells_.size() * config_.knob_values.size() *
                   config_.replicates);
  for (const auto& cell : cells_) {
    for (const double v : config_.knob_values) {
      for (std::size_t rep = 0; rep < config_.replicates; ++rep) {
        requests.push_back({cell, v});
      }
    }
  }
  return requests;
}

void FixedGridStrategy::observe(const std::vector<Observation>&) {
  // One-shot: nothing feeds back.
}

}  // namespace hsfi::adaptive
