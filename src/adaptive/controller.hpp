// The closed-loop experiment controller: strategy -> batch -> worker pool
// -> per-cell accumulation -> strategy, round after round.
//
// This is the NFTAPE "external management and control framework" role with
// the human taken out of the loop: instead of pre-expanding a static grid,
// the controller asks a Strategy for the next batch of runs, executes it
// on the orchestrator's worker pool (a batch boundary is a synchronization
// point), folds the manifestation breakdowns into per-cell accumulators,
// and feeds them back. Determinism contract:
//
//  * per-run seeds derive from sim::derive_seed over a stable
//    (round, cell, replicate) key — never from arrival order;
//  * records are emitted in request order after each round barrier, so the
//    JSONL stream is byte-identical across worker counts and invocations;
//  * strategies are pure functions of their observation history, and
//    observations are deterministic, so the whole campaign is replayable
//    from (spec, base seed) alone.
//
// The loop is also medium-agnostic: the base CampaignSpec's medium rides
// through expand_round into every RunSpec copy, the executor realizes it
// via nftape::make_fabric, and strategies only ever see manifestation
// breakdowns and knob values — so bisection and coverage campaigns run
// unmodified over Myrinet or Fibre Channel.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "adaptive/strategy.hpp"
#include "analysis/accumulator.hpp"
#include "nftape/campaign.hpp"
#include "nftape/testbed.hpp"
#include "orchestrator/runner.hpp"
#include "orchestrator/sweep.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace hsfi::monitor {
class StreamingFeed;
}  // namespace hsfi::monitor

namespace hsfi::adaptive {

/// Stable seed key for one adaptive run. Chained splitmix64 avalanches so
/// nearby (round, cell, replicate) tuples land on unrelated keys; the key
/// space is disjoint in all three coordinates, so re-running a cell in a
/// later round always draws fresh, reproducible seeds.
[[nodiscard]] constexpr std::uint64_t run_key(std::uint32_t round,
                                              std::uint32_t fault,
                                              std::uint32_t direction,
                                              std::uint32_t replicate) noexcept {
  std::uint64_t k = sim::splitmix64(round);
  k = sim::splitmix64(
      k ^ ((static_cast<std::uint64_t>(fault) << 32) | direction));
  k = sim::splitmix64(k ^ replicate);
  return k;
}

/// The per-run seed: derive_seed(base, run_key(...)).
[[nodiscard]] constexpr std::uint64_t derive_run_seed(
    std::uint64_t base_seed, std::uint32_t round, std::uint32_t fault,
    std::uint32_t direction, std::uint32_t replicate) noexcept {
  return sim::derive_seed(base_seed,
                          run_key(round, fault, direction, replicate));
}

/// The adaptive campaign plane: like orchestrator::SweepSpec, but the
/// intensity axis is a tunable knob the strategy steers instead of a
/// pre-enumerated list.
struct AdaptiveSpec {
  std::string name = "adaptive";
  /// Template for every run (fault, workload, and knob fields overwritten
  /// per request).
  nftape::CampaignSpec base;
  nftape::TestbedConfig testbed;
  /// 0 = auto, same formula as SweepSpec.
  sim::Duration startup_settle = 0;

  std::vector<orchestrator::FaultPoint> faults;
  std::vector<orchestrator::FaultDirection> directions = {
      orchestrator::FaultDirection::kBoth};
  /// What RunRequest::knob_value means (see nftape::apply_knob).
  nftape::Knob knob = nftape::Knob::kUdpIntervalUs;

  std::uint64_t base_seed = 1;
  /// Hard round cap — the loop stops even if the strategy wants more.
  std::uint32_t max_rounds = 16;
  /// Hard run cap across all rounds (0 = none). A round that would exceed
  /// it is not started (partial rounds would break batch determinism).
  std::size_t max_total_runs = 0;
  /// Prepended verbatim to every run name (multi-target campaign files use
  /// "<target>:"; the colon keeps cell_key's fault/direction grouping).
  std::string name_prefix;
  /// Added to every RunSpec::index, so records of a multi-target campaign
  /// carry campaign-global run numbers.
  std::size_t index_base = 0;
};

/// Per-round digest for progress display.
struct RoundSummary {
  std::uint32_t round = 0;
  std::size_t runs = 0;        ///< runs in this round
  std::size_t failed = 0;      ///< non-ok outcomes in this round
  std::size_t total_runs = 0;  ///< cumulative including this round
};

struct ControllerConfig {
  /// Worker pool settings (workers, watchdog, executor override). The
  /// controller installs nothing in on_record / on_progress here — records
  /// are delivered deterministically via ControllerConfig::on_record.
  orchestrator::RunnerConfig runner;
  /// Called after each round barrier with every record of the round, in
  /// request order — the deterministic streaming JSONL hook.
  std::function<void(const orchestrator::RunRecord&)> on_record;
  std::function<void(const RoundSummary&)> on_round;

  /// Optional streaming analysis plane (not owned; must outlive run()).
  /// Every finished run of a round is published to the feed the moment it
  /// completes — in completion order, mid-batch — and the strategy's
  /// observe_streaming() is consulted on the same record. With
  /// early_cancel off this observes without steering: the batch path is
  /// untouched and the emitted JSONL stays byte-identical to an unfed
  /// campaign (deterministic mode).
  monitor::StreamingFeed* feed = nullptr;
  /// Live mode: a true observe_streaming() verdict cancels the rest of
  /// the cell's round — still-queued runs come back RunOutcome::kSkipped.
  /// Which replicates get skipped depends on completion order, so records
  /// (and downstream strategy state fed by fewer ok runs) are no longer
  /// byte-stable across worker counts. Requires `feed`.
  bool early_cancel = false;
};

/// Everything a finished adaptive campaign produced.
struct CampaignOutcome {
  /// Records EXECUTED by this invocation, in emission order (round-major,
  /// request order within). Rounds restored from a checkpoint replay are
  /// folded into `cells` and the strategy but not re-materialized here —
  /// their records already live in the durable JSONL.
  std::vector<orchestrator::RunRecord> records;
  std::uint32_t rounds = 0;
  std::size_t replayed = 0;  ///< runs restored from replay, not re-executed
  /// Cumulative per-cell totals, keyed "<fault>/<direction>" (replayed
  /// rounds included).
  analysis::CellAccumulator cells;
  /// True when the strategy declared convergence (returned an empty
  /// round) rather than hitting max_rounds / max_total_runs.
  bool converged = false;
};

/// One previously executed run fed back on resume: just the fields a
/// Strategy's Observation needs, plus the full run name for drift
/// detection (monitor::parse_record recovers exactly these from JSONL).
struct ReplayRecord {
  std::string name;  ///< full run name, including any name_prefix
  bool ok = false;
  std::uint64_t injections = 0;
  std::uint64_t duplicates = 0;
  analysis::ManifestationBreakdown manifestations;
};

/// Thrown when a replay does not match what the strategy re-derives —
/// the spec changed since the checkpoint was written, or the JSONL was
/// edited. Resuming anyway would splice two different campaigns.
class ReplayMismatch : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Controller {
 public:
  explicit Controller(AdaptiveSpec spec, ControllerConfig config = {});

  /// Runs the closed loop to convergence (or the caps) and returns the
  /// outcome. The strategy is owned by the caller and can be inspected
  /// afterwards (e.g. BisectionStrategy::thresholds()).
  CampaignOutcome run(Strategy& strategy);

  /// Resume: round `r` < replay.size() is NOT executed — the strategy's
  /// requests are re-derived, verified name-by-name against replay[r]
  /// (ReplayMismatch on any drift), and fed to observe() as if the round
  /// had just run; execution picks up at round replay.size(). Because
  /// strategies are pure functions of their observation history, the
  /// continuation is byte-identical to the uninterrupted campaign.
  CampaignOutcome run(Strategy& strategy,
                      const std::vector<std::vector<ReplayRecord>>& replay);

  /// All fault × direction cells of the spec's plane, in the order
  /// strategies index them (fault-major).
  [[nodiscard]] std::vector<Cell> cells() const;

  /// Cell key used in reports and the accumulator: "<fault>/<direction>".
  [[nodiscard]] std::string cell_name(const Cell& cell) const;

  /// Expands one round's requests into fully-specified RunSpecs (used by
  /// run() and by --dry-run to print a round-0 batch without executing).
  /// `first_index` is the global index of the round's first run.
  [[nodiscard]] std::vector<orchestrator::RunSpec> expand_round(
      const std::vector<RunRequest>& requests, std::uint32_t round,
      std::size_t first_index, std::string_view strategy_name) const;

 private:
  AdaptiveSpec spec_;
  ControllerConfig config_;
  sim::Duration startup_settle_ = 0;  ///< resolved (never 0)
};

}  // namespace hsfi::adaptive
