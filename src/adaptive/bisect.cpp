// Threshold bisection: per-cell binary search for the masked -> manifested
// transition along the knob axis.
//
// The search runs in intensity space t ∈ [0, 1] (t = 1 is the most intense
// end of the range regardless of the axis direction), which keeps the
// invariant simple: the predicate "manifests at t" is expected monotone
// non-decreasing, [t_masked, t_manifested] brackets the transition, and
// every probe halves the bracket. All open cells probe in the same round,
// so the orchestrator pool gets one wide batch per bisection step instead
// of per-cell trickles.
#include <cmath>
#include <limits>
#include <utility>

#include "adaptive/strategy.hpp"

namespace hsfi::adaptive {

BisectionStrategy::BisectionStrategy(std::vector<Cell> cells,
                                     BisectionConfig config)
    : config_(std::move(config)),
      cell_list_(std::move(cells)),
      cells_(cell_list_.size()),
      thresholds_(cell_list_.size()),
      streaming_manifested_(cell_list_.size(), 0) {
  if (config_.replicates == 0) config_.replicates = 1;
  if (config_.min_manifested == 0) config_.min_manifested = 1;
  const double span = config_.hi - config_.lo;
  tolerance_ = config_.tolerance > 0.0 ? config_.tolerance : span / 64.0;
}

double BisectionStrategy::value(double t) const noexcept {
  return config_.higher_is_more_intense
             ? config_.lo + t * (config_.hi - config_.lo)
             : config_.hi - t * (config_.hi - config_.lo);
}

double BisectionStrategy::width(const CellState& s) const noexcept {
  return (s.t_manifested - s.t_masked) * std::abs(config_.hi - config_.lo);
}

void BisectionStrategy::finish(std::size_t i) {
  CellState& s = cells_[i];
  s.done = true;
  CellThreshold& out = thresholds_[i];
  out.runs = s.runs;
  out.found = s.have_manifested;
  if (s.have_manifested) {
    out.manifested_at = value(s.t_manifested);
    out.masked_at = s.have_masked ? value(s.t_masked)
                                  : std::numeric_limits<double>::quiet_NaN();
    out.converged = !s.have_masked || width(s) <= tolerance_;
  } else {
    // Even the most intense end of the range masked: no threshold here.
    out.masked_at = value(s.t_masked);
    out.manifested_at = std::numeric_limits<double>::quiet_NaN();
    out.converged = true;
  }
}

std::vector<RunRequest> BisectionStrategy::next_round(std::uint32_t round) {
  pending_.clear();
  streaming_manifested_.assign(cell_list_.size(), 0);
  std::vector<RunRequest> requests;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellState& s = cells_[i];
    if (s.done) continue;
    double t;
    if (round == 0) {
      // Establish the bracket: probe both endpoints in one round. The
      // observe() pass pairs the two results per cell by position.
      for (const double endpoint : {0.0, 1.0}) {
        for (std::size_t rep = 0; rep < config_.replicates; ++rep) {
          requests.push_back({cell_list_[i], value(endpoint)});
          pending_.emplace_back(i, endpoint);
        }
      }
      continue;
    }
    t = (s.t_masked + s.t_manifested) / 2.0;
    for (std::size_t rep = 0; rep < config_.replicates; ++rep) {
      requests.push_back({cell_list_[i], value(t)});
      pending_.emplace_back(i, t);
    }
  }
  return requests;
}

void BisectionStrategy::observe(const std::vector<Observation>& results) {
  // Sum the manifested firings per issued (cell, t) probe point. pending_
  // holds one entry per request in request order, so zip by position.
  struct Probe {
    std::size_t cell;
    double t;
    std::uint64_t manifested = 0;
    bool any = false;
  };
  std::vector<Probe> probes;
  for (std::size_t i = 0; i < results.size() && i < pending_.size(); ++i) {
    const auto& [cell, t] = pending_[i];
    if (probes.empty() || probes.back().cell != cell ||
        probes.back().t != t) {
      probes.push_back({cell, t, 0, false});
    }
    if (results[i].ok) {
      probes.back().manifested += results[i].manifested();
      probes.back().any = true;
    }
    cells_[cell].runs += 1;
  }
  pending_.clear();

  for (const Probe& probe : probes) {
    CellState& s = cells_[probe.cell];
    // A probe whose every replicate failed (timed out / errored) is
    // treated as manifested: a fault intensity that breaks the run
    // outright is certainly not masked.
    const bool manifested =
        !probe.any || probe.manifested >= config_.min_manifested;
    if (manifested) {
      if (probe.t <= s.t_manifested) {
        s.t_manifested = probe.t;
        s.have_manifested = true;
      }
    } else if (probe.t >= s.t_masked) {
      s.t_masked = probe.t;
      s.have_masked = true;
    }
  }

  for (std::size_t i = 0; i < cells_.size(); ++i) {
    CellState& s = cells_[i];
    if (s.done) continue;
    // Non-monotone outcome (midpoint manifested below a masked point, or
    // the whole range on one side): the bracket collapses — stop rather
    // than loop.
    if (s.t_masked >= s.t_manifested) {
      finish(i);
      continue;
    }
    if (!s.have_manifested) {
      // Top of the range masked: nothing to search for.
      finish(i);
      continue;
    }
    if (s.have_masked && width(s) <= tolerance_) {
      finish(i);
      continue;
    }
    if (!s.have_masked) {
      // Bottom of the range already manifested: threshold is at or below
      // the least intense end.
      finish(i);
    }
  }
}

bool BisectionStrategy::observe_streaming(const Observation& obs) {
  // Round 0 probes both endpoints of every cell; a manifested high
  // endpoint must not cancel the low endpoint's replicates, and the
  // skip granularity is the cell, so round 0 never cancels.
  if (obs.round == 0) return false;
  for (std::size_t i = 0; i < cell_list_.size(); ++i) {
    if (!(cell_list_[i] == obs.request.cell)) continue;
    if (obs.ok) streaming_manifested_[i] += obs.manifested();
    // In a midpoint round every request for the cell probes the same t, so
    // once the summed manifested firings reach min_manifested the probe's
    // verdict is fixed — observe() classifies it manifested regardless of
    // what the remaining (possibly skipped, not-ok) replicates return.
    return streaming_manifested_[i] >= config_.min_manifested;
  }
  return false;
}

std::size_t BisectionStrategy::grid_equivalent_runs_per_cell()
    const noexcept {
  // A grid that resolves the threshold to the same tolerance needs a point
  // every `tolerance_` along the range, endpoints included, with the same
  // replicate count per point.
  const double span = std::abs(config_.hi - config_.lo);
  const auto points =
      static_cast<std::size_t>(std::floor(span / tolerance_)) + 1;
  return points * config_.replicates;
}

}  // namespace hsfi::adaptive
