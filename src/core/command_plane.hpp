// The FPGA-side command plane (paper Fig. 1): SPI entity, communications
// handler, command decoder, and output generator.
//
//   SPI — "serializes the data for transmission to the UART and converts
//   the received data into parallel form to be accessible by the
//   communication handler."
//
//   Communications handler — "configures the UART on boot-up and handles
//   any interrupts coming from the UART or the internal logic. This entity
//   assembles data in the 16-bit SPI protocol format from 8-bit ASCII codes
//   received from the output generator."
//
//   Command decoder — "a large finite-state machine (FSM), which receives
//   data from the communication handler and applies configuration
//   information to the injector circuitry. It also generates error and
//   acknowledgment signals that are interpreted by the output generator."
//
//   Output generator — "another FSM that generates ASCII codes for
//   transmission over the serial link."
//
// Command grammar (one ASCII line per command, CR or LF terminated; <d> is
// the direction, L = left-going pipeline, R = right-going):
//
//   MODE <d> OFF|ON|ONCE        match mode
//   CORR <d> TOGGLE|REPLACE     corrupt mode
//   CMPD <d> <hex32>            compare data
//   CMPM <d> <hex32>            compare mask
//   CMPC <d> <hex1> <hex1>      compare control bits + mask
//   CORD <d> <hex32>            corrupt data
//   CORM <d> <hex32>            corrupt mask
//   CORC <d> <hex1> <hex1>      corrupt control bits + mask
//   CMPS <d> 1|4                compare stride (4 = word-granular hardware)
//   LFSR <d> <hex16>            random-trigger mask (0 = every match fires)
//   CRCR <d> ON|OFF             CRC repatch before EOF
//   INJN <d>                    inject now (one 32-bit segment)
//   REARM <d>                   re-arm a ONCE trigger
//   STAT <d>                    statistics readout (multi-line, then OK)
//   CAPT <d>                    capture readout  (multi-line, then OK)
//   CLRS                        clear statistics and captures
//   PING                        liveness check, answers PONG
//
// Every command is acknowledged with "OK" or "ERR <reason>".
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "core/uart.hpp"
#include "sim/simulator.hpp"

namespace hsfi::core {

class OutputGenerator;

/// FPGA-side SPI shifter: parallelizes inbound frames for the comm handler
/// and serializes outbound frames toward the UART.
class SpiEntity {
 public:
  explicit SpiEntity(Uart& uart) : uart_(uart) {
    uart_.on_spi_rx([this](std::uint16_t frame) {
      if (spi_frame_valid(frame) && rx_) rx_(spi_frame_data(frame));
    });
  }

  void on_rx_byte(std::function<void(std::uint8_t)> handler) {
    rx_ = std::move(handler);
  }
  void tx_byte(std::uint8_t byte) { uart_.spi_tx(spi_frame(byte)); }

 private:
  Uart& uart_;
  std::function<void(std::uint8_t)> rx_;
};

/// Generates ASCII responses and streams them out through the comm handler.
class OutputGenerator {
 public:
  explicit OutputGenerator(SpiEntity& spi) : spi_(spi) {}

  /// Emits `line` followed by CRLF.
  void emit_line(const std::string& line);
  /// Emits a multi-line blob as-is (must already contain newlines).
  void emit_raw(const std::string& text);

  [[nodiscard]] std::uint64_t lines_emitted() const noexcept { return lines_; }

  [[nodiscard]] std::uint64_t capture_state() const noexcept { return lines_; }
  void restore_state(std::uint64_t lines) noexcept { lines_ = lines; }

 private:
  SpiEntity& spi_;
  std::uint64_t lines_ = 0;
};

/// The command-decoder FSM. Applies parsed commands to the injector device
/// and drives the output generator with acknowledgments and readouts.
class CommandDecoder {
 public:
  struct Stats {
    std::uint64_t commands_ok = 0;
    std::uint64_t commands_err = 0;
  };

  CommandDecoder(InjectorDevice& device, OutputGenerator& out)
      : device_(device), out_(out) {}

  /// Feed one received ASCII byte (the comm handler's UART interrupt path).
  void feed(std::uint8_t byte);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Snapshot state: the partial command line and counters.
  struct State {
    std::string line;
    Stats stats;
  };
  [[nodiscard]] State capture_state() const { return State{line_, stats_}; }
  void restore_state(const State& state) {
    line_ = state.line;
    stats_ = state.stats;
  }

 private:
  void execute(const std::string& line);
  void ok() {
    ++stats_.commands_ok;
    out_.emit_line("OK");
  }
  void err(const std::string& why) {
    ++stats_.commands_err;
    out_.emit_line("ERR " + why);
  }

  InjectorDevice& device_;
  OutputGenerator& out_;
  std::string line_;
  Stats stats_;
};

/// The communications handler: boots the UART and wires interrupts between
/// the SPI entity, the command decoder, and the output generator.
class CommHandler {
 public:
  CommHandler(sim::Simulator& simulator, Uart& uart, InjectorDevice& device);

  [[nodiscard]] CommandDecoder& decoder() noexcept { return decoder_; }
  [[nodiscard]] OutputGenerator& output() noexcept { return output_; }

 private:
  SpiEntity spi_;
  OutputGenerator output_;
  CommandDecoder decoder_;
};

/// The external system's end of the RS-232 cable (what NFTAPE talks
/// through). Commands queue and execute strictly in order; each completes
/// when its "OK"/"ERR" acknowledgment line arrives.
class SerialControlHost {
 public:
  /// Response: every line the command produced, acknowledgment last.
  using Callback = std::function<void(std::vector<std::string> lines)>;

  SerialControlHost(sim::Simulator& simulator, Uart& uart);

  /// Queues `line` (without terminator) for transmission.
  void send_command(std::string line, Callback callback = nullptr);

  [[nodiscard]] std::uint64_t commands_completed() const noexcept {
    return completed_;
  }
  /// True when every queued command has been acknowledged.
  [[nodiscard]] bool idle() const noexcept {
    return queue_.empty() && !in_flight_;
  }

  struct PendingCommand {
    std::string line;
    Callback callback;
  };

  /// Snapshot state. Captured at quiescent settle boundaries the queue is
  /// empty; pending callbacks (if any) are copied as-is, so capture while a
  /// campaign's fault programming is in flight is not supported.
  struct State {
    std::vector<PendingCommand> queue;
    bool in_flight = false;
    std::string rx_line;
    std::vector<std::string> rx_lines;
    std::uint64_t completed = 0;
  };

  [[nodiscard]] State capture_state() const {
    return State{queue_, in_flight_, rx_line_, rx_lines_, completed_};
  }
  void restore_state(const State& state) {
    queue_ = state.queue;
    in_flight_ = state.in_flight;
    rx_line_ = state.rx_line;
    rx_lines_ = state.rx_lines;
    completed_ = state.completed;
  }

 private:
  void pump();
  void on_byte(std::uint8_t byte);

  sim::Simulator& simulator_;
  Uart& uart_;
  std::vector<PendingCommand> queue_;
  bool in_flight_ = false;
  std::string rx_line_;
  std::vector<std::string> rx_lines_;
  std::uint64_t completed_ = 0;
};

}  // namespace hsfi::core
