// The FIFO injector: the FPGA datapath entity that holds the network stream,
// matches patterns, and corrupts data in place (paper §3.3, Figs. 2 and 3).
//
// Two-phase operation, one character per clock pair:
//   odd clock  — the incoming character is pushed onto the FIFO (dual-port
//                RAM), the character that has aged past the pipeline depth
//                is popped for retransmission, and the newcomer is shifted
//                into the 32-bit compare window;
//   even clock — the compare result is evaluated; on a trigger (or a forced
//                inject-now) the matched window — the four newest characters,
//                all still resident in the FIFO — is overwritten with the
//                corrupted value.
//
// clock() models one odd/even pair. Passing nullopt models a clock pair in
// which the wire carries no character (idle): the free-running FPGA clock
// keeps popping residual FIFO contents so a packet tail never sticks in the
// device.
//
// clock_burst() runs the same pipeline across a whole burst in one call.
// When the configuration makes a trigger impossible in the window (not
// armed, all-don't-care compare, LFSR off) it degenerates to bulk ring
// copies plus arithmetic on the stats counters; otherwise it runs the
// per-character loop inlined on the ring. Either way it is step-for-step
// equivalent to calling clock() per character (pinned by a property test).
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/injector_config.hpp"
#include "link/symbol.hpp"

namespace hsfi::core {

/// True for the IDLE control character the free-running clock synthesizes.
[[nodiscard]] constexpr bool is_idle_character(link::Symbol s) noexcept {
  return s.control && s.data == 0x00;
}

class FifoInjector {
 public:
  struct Params {
    /// Characters a symbol spends inside the device: the paper's VHDL
    /// "pipelines the inject operation for three clock cycles but keeps a
    /// few more 32-bit segments in the FIFO" — about five 32-bit words at
    /// 640 Mb/s gives the footnote's ~250 ns. We default to the equivalent
    /// 20 characters. Must be >= 4 so the whole compare window is still
    /// rewritable on the even clock.
    std::size_t latency_chars = 20;
    /// Dual-port RAM capacity in characters (fidelity bound only).
    std::size_t fifo_capacity = 64;

    bool operator==(const Params&) const = default;
  };

  struct Stats {
    std::uint64_t characters = 0;   ///< characters pushed through
    std::uint64_t matches = 0;      ///< compare hits (trigger asserted or not)
    std::uint64_t injections = 0;   ///< windows actually corrupted
    std::uint64_t forced = 0;       ///< inject-now strobes honored
  };

  struct Result {
    std::optional<link::Symbol> out;  ///< character leaving the device
    bool matched = false;
    bool injected = false;
  };

  /// Output of clock_burst(): every character that left the device during
  /// the burst, in pop order, plus the input indices whose even clock fired
  /// an injection (so callers can replay capture triggers and monitor hooks
  /// at the exact per-symbol arrival timestamps).
  struct BatchResult {
    std::vector<link::Symbol> out;
    std::vector<std::uint32_t> fires;
  };

  FifoInjector();
  explicit FifoInjector(Params params);

  /// Runtime-reconfigurable control inputs (the RS-232 path writes these).
  [[nodiscard]] InjectorConfig& config() noexcept { return config_; }
  [[nodiscard]] const InjectorConfig& config() const noexcept { return config_; }

  /// Re-arms a kOnce trigger and clears the inject-now strobe.
  void rearm() noexcept;

  /// Requests corruption of the next window regardless of compare result
  /// ("When the inject now signal is asserted, the current injection
  /// configuration is exercised on one 32-bit segment during the next even
  /// clock cycle").
  void inject_now() noexcept { inject_now_ = true; }

  /// One odd+even clock pair. `in` is the arriving character, or nullopt on
  /// an idle wire.
  Result clock(std::optional<link::Symbol> in);

  /// Runs the odd/even pipeline across every character of `in` (a burst is
  /// back-to-back wire characters, so no idle pairs occur inside it).
  /// Clears and refills `result`. Equivalent to clock() per character.
  void clock_burst(std::span<const link::Symbol> in, BatchResult& result);

  [[nodiscard]] std::size_t occupancy() const noexcept { return count_; }

  /// True while the FIFO still holds non-IDLE characters; the device keeps
  /// the drain clock running until this clears.
  [[nodiscard]] bool pending_payload() const noexcept;
  [[nodiscard]] const Params& params() const noexcept { return params_; }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  void clear_stats() noexcept { stats_ = Stats{}; }

  /// The current 32-bit compare window ([31:24] = oldest character) and its
  /// 4-bit control sideband (bit 3 = oldest) — exposed for tests and traces.
  [[nodiscard]] std::uint32_t window_data() const noexcept { return window_data_; }
  [[nodiscard]] std::uint8_t window_ctl() const noexcept { return window_ctl_; }

 private:
  [[nodiscard]] bool compare_matches() const noexcept;
  void corrupt_window();

  /// Advances the random-trigger LFSR one step; true when it permits a
  /// fire under the current lfsr_mask.
  [[nodiscard]] bool lfsr_permits() noexcept;

  struct EvenResult {
    bool matched = false;
    bool fired = false;
  };
  /// Even-clock evaluation for a real character. Call only on compare
  /// cycles (the stride gate is the caller's job).
  EvenResult even_clock();

  // --- Fixed-capacity ring (replaces the old std::deque FIFO). ----------
  // head_ indexes the oldest resident character; logical slot i lives at
  // ring_[wrap(head_ + i)]. The storage never reallocates after
  // construction, so occupancy churn is allocation-free, and the plain
  // vector keeps the injector copyable for snapshot State capture.
  [[nodiscard]] std::size_t wrap(std::size_t i) const noexcept {
    return i >= ring_.size() ? i - ring_.size() : i;
  }
  [[nodiscard]] link::Symbol& ring_at(std::size_t i) noexcept {
    return ring_[wrap(head_ + i)];
  }
  [[nodiscard]] const link::Symbol& ring_at(std::size_t i) const noexcept {
    return ring_[wrap(head_ + i)];
  }
  void push_ring(link::Symbol s) noexcept {
    // Unreachable through clock()/clock_burst(): the constructor enforces
    // fifo_capacity > latency_chars and the pop side keeps occupancy at
    // latency_chars, so a push never meets a full ring. The assertion
    // guards the invariant; release builds mirror the hardware (and the
    // old deque path) by dropping the newcomer.
    assert(count_ < ring_.size() && "FIFO capacity overflow");
    if (count_ == ring_.size()) return;
    ring_[wrap(head_ + count_)] = s;
    ++count_;
  }
  [[nodiscard]] link::Symbol pop_ring() noexcept {
    link::Symbol s = ring_[head_];
    head_ = wrap(head_ + 1);
    --count_;
    return s;
  }

  Params params_;
  InjectorConfig config_;
  std::uint16_t lfsr_ = 0xACE1;  ///< never zero; taps 16,14,13,11
  std::vector<link::Symbol> ring_;  ///< fixed fifo_capacity slots
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  // Compare registers power up holding IDLE control characters (data 0x00,
  // D/C = control), like a wire that has been idle.
  std::uint32_t window_data_ = 0;
  std::uint8_t window_ctl_ = 0x0F;
  bool once_done_ = false;
  bool inject_now_ = false;
  Stats stats_;
};

}  // namespace hsfi::core
