#include "core/fifo_injector.hpp"

#include <cassert>

#include "myrinet/control.hpp"

namespace hsfi::core {

FifoInjector::FifoInjector() : FifoInjector(Params{}) {}

FifoInjector::FifoInjector(Params params) : params_(params) {
  assert(params_.latency_chars >= 4 &&
         "window must still be resident on the even clock");
  assert(params_.fifo_capacity > params_.latency_chars);
}

void FifoInjector::rearm() noexcept {
  once_done_ = false;
  inject_now_ = false;
}

bool FifoInjector::compare_matches() const noexcept {
  const bool data_ok =
      ((window_data_ ^ config_.compare_data) & config_.compare_mask) == 0;
  const bool ctl_ok =
      ((window_ctl_ ^ config_.compare_ctl) & config_.compare_ctl_mask & 0x0F) == 0;
  return data_ok && ctl_ok;
}

void FifoInjector::corrupt_window() {
  // The window is the four newest FIFO entries; entry fifo_[size-1] is the
  // newest and corresponds to corrupt-vector bits [7:0].
  const std::size_t n = fifo_.size() < 4 ? fifo_.size() : 4;
  for (std::size_t lane = 0; lane < n; ++lane) {
    link::Symbol& s = fifo_[fifo_.size() - 1 - lane];
    const auto shift = static_cast<unsigned>(8 * lane);
    const auto lane_data =
        static_cast<std::uint8_t>(config_.corrupt_data >> shift);
    const auto lane_mask =
        static_cast<std::uint8_t>(config_.corrupt_mask >> shift);
    const std::uint8_t ctl_bit = static_cast<std::uint8_t>(1u << lane);
    switch (config_.corrupt_mode) {
      case CorruptMode::kToggle:
        s.data ^= lane_data;
        if ((config_.corrupt_ctl & ctl_bit) != 0) s.control = !s.control;
        break;
      case CorruptMode::kReplace:
        s.data = static_cast<std::uint8_t>((s.data & ~lane_mask) |
                                           (lane_data & lane_mask));
        if ((config_.corrupt_ctl_mask & ctl_bit) != 0) {
          s.control = (config_.corrupt_ctl & ctl_bit) != 0;
        }
        break;
    }
  }
}

bool FifoInjector::lfsr_permits() noexcept {
  if (config_.lfsr_mask == 0) return true;
  // 16-bit Fibonacci LFSR, taps 16,14,13,11 (maximal length).
  const std::uint16_t bit = static_cast<std::uint16_t>(
      ((lfsr_ >> 0) ^ (lfsr_ >> 2) ^ (lfsr_ >> 3) ^ (lfsr_ >> 5)) & 1u);
  lfsr_ = static_cast<std::uint16_t>((lfsr_ >> 1) | (bit << 15));
  return (lfsr_ & config_.lfsr_mask) == 0;
}

bool FifoInjector::pending_payload() const noexcept {
  for (const auto& s : fifo_) {
    if (!is_idle_character(s)) return true;
  }
  return false;
}

FifoInjector::Result FifoInjector::clock(std::optional<link::Symbol> in) {
  Result result;

  // --- Odd clock: push, pop, shift compare registers. -----------------
  // On an idle wire the free-running clock pushes an IDLE character, so
  // every character spends exactly latency_chars clock pairs in the device.
  const link::Symbol pushed =
      in.value_or(myrinet::to_symbol(myrinet::ControlSymbol::kIdle));
  if (in.has_value()) ++stats_.characters;
  if (fifo_.size() < params_.fifo_capacity) fifo_.push_back(pushed);
  window_data_ = (window_data_ << 8) | pushed.data;
  window_ctl_ = static_cast<std::uint8_t>(((window_ctl_ << 1) & 0x0F) |
                                          (pushed.control ? 1u : 0u));
  if (fifo_.size() > params_.latency_chars) {
    result.out = fifo_.front();
    fifo_.pop_front();
  }

  // --- Even clock: evaluate compare, corrupt in the FIFO. --------------
  // Idle ticks skip the inject phase: corrupting synthesized filler has no
  // counterpart on a wire that carries no characters (and would otherwise
  // manufacture payload out of nothing during the drain).
  if (!in.has_value()) return result;

  // Word-granular hardware evaluates the compare once per 32-bit segment.
  const std::uint8_t stride =
      config_.compare_stride == 0 ? 1 : config_.compare_stride;
  if (stats_.characters % stride != 0) return result;

  // The LFSR free-runs on every compare cycle regardless of the match.
  const bool lfsr_ok = lfsr_permits();
  const bool matched = compare_matches() && lfsr_ok;
  if (matched) ++stats_.matches;
  result.matched = matched;

  bool fire = false;
  if (inject_now_) {
    fire = true;
    inject_now_ = false;
    ++stats_.forced;
  } else if (matched) {
    switch (config_.match_mode) {
      case MatchMode::kOff:
        break;
      case MatchMode::kOn:
        fire = true;
        break;
      case MatchMode::kOnce:
        if (!once_done_) {
          fire = true;
          once_done_ = true;
        }
        break;
    }
  }

  if (fire && !fifo_.empty()) {
    corrupt_window();
    ++stats_.injections;
    result.injected = true;
  }
  return result;
}

}  // namespace hsfi::core
