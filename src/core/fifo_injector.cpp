#include "core/fifo_injector.hpp"

#include <cassert>

#include "myrinet/control.hpp"

namespace hsfi::core {

FifoInjector::FifoInjector() : FifoInjector(Params{}) {}

FifoInjector::FifoInjector(Params params) : params_(params) {
  assert(params_.latency_chars >= 4 &&
         "window must still be resident on the even clock");
  assert(params_.fifo_capacity > params_.latency_chars);
  ring_.resize(params_.fifo_capacity);
}

void FifoInjector::rearm() noexcept {
  once_done_ = false;
  inject_now_ = false;
}

bool FifoInjector::compare_matches() const noexcept {
  const bool data_ok =
      ((window_data_ ^ config_.compare_data) & config_.compare_mask) == 0;
  const bool ctl_ok =
      ((window_ctl_ ^ config_.compare_ctl) & config_.compare_ctl_mask & 0x0F) == 0;
  return data_ok && ctl_ok;
}

void FifoInjector::corrupt_window() {
  // The window is the four newest FIFO entries; the newest corresponds to
  // corrupt-vector bits [7:0].
  const std::size_t n = count_ < 4 ? count_ : 4;
  for (std::size_t lane = 0; lane < n; ++lane) {
    link::Symbol& s = ring_at(count_ - 1 - lane);
    const auto shift = static_cast<unsigned>(8 * lane);
    const auto lane_data =
        static_cast<std::uint8_t>(config_.corrupt_data >> shift);
    const auto lane_mask =
        static_cast<std::uint8_t>(config_.corrupt_mask >> shift);
    const std::uint8_t ctl_bit = static_cast<std::uint8_t>(1u << lane);
    switch (config_.corrupt_mode) {
      case CorruptMode::kToggle:
        s.data ^= lane_data;
        if ((config_.corrupt_ctl & ctl_bit) != 0) s.control = !s.control;
        break;
      case CorruptMode::kReplace:
        s.data = static_cast<std::uint8_t>((s.data & ~lane_mask) |
                                           (lane_data & lane_mask));
        if ((config_.corrupt_ctl_mask & ctl_bit) != 0) {
          s.control = (config_.corrupt_ctl & ctl_bit) != 0;
        }
        break;
    }
  }
}

bool FifoInjector::lfsr_permits() noexcept {
  if (config_.lfsr_mask == 0) return true;
  // 16-bit Fibonacci LFSR, taps 16,14,13,11 (maximal length).
  const std::uint16_t bit = static_cast<std::uint16_t>(
      ((lfsr_ >> 0) ^ (lfsr_ >> 2) ^ (lfsr_ >> 3) ^ (lfsr_ >> 5)) & 1u);
  lfsr_ = static_cast<std::uint16_t>((lfsr_ >> 1) | (bit << 15));
  return (lfsr_ & config_.lfsr_mask) == 0;
}

bool FifoInjector::pending_payload() const noexcept {
  for (std::size_t i = 0; i < count_; ++i) {
    if (!is_idle_character(ring_at(i))) return true;
  }
  return false;
}

FifoInjector::EvenResult FifoInjector::even_clock() {
  EvenResult result;
  // The LFSR free-runs on every compare cycle regardless of the match.
  const bool lfsr_ok = lfsr_permits();
  result.matched = compare_matches() && lfsr_ok;
  if (result.matched) ++stats_.matches;

  bool fire = false;
  if (inject_now_) {
    fire = true;
    inject_now_ = false;
    ++stats_.forced;
  } else if (result.matched) {
    switch (config_.match_mode) {
      case MatchMode::kOff:
        break;
      case MatchMode::kOn:
        fire = true;
        break;
      case MatchMode::kOnce:
        if (!once_done_) {
          fire = true;
          once_done_ = true;
        }
        break;
    }
  }

  if (fire && count_ > 0) {
    corrupt_window();
    ++stats_.injections;
    result.fired = true;
  }
  return result;
}

FifoInjector::Result FifoInjector::clock(std::optional<link::Symbol> in) {
  Result result;

  // --- Odd clock: push, pop, shift compare registers. -----------------
  // On an idle wire the free-running clock pushes an IDLE character, so
  // every character spends exactly latency_chars clock pairs in the device.
  const link::Symbol pushed =
      in.value_or(myrinet::to_symbol(myrinet::ControlSymbol::kIdle));
  if (in.has_value()) ++stats_.characters;
  push_ring(pushed);
  window_data_ = (window_data_ << 8) | pushed.data;
  window_ctl_ = static_cast<std::uint8_t>(((window_ctl_ << 1) & 0x0F) |
                                          (pushed.control ? 1u : 0u));
  if (count_ > params_.latency_chars) result.out = pop_ring();

  // --- Even clock: evaluate compare, corrupt in the FIFO. --------------
  // Idle ticks skip the inject phase: corrupting synthesized filler has no
  // counterpart on a wire that carries no characters (and would otherwise
  // manufacture payload out of nothing during the drain).
  if (!in.has_value()) return result;

  // Word-granular hardware evaluates the compare once per 32-bit segment.
  const std::uint8_t stride =
      config_.compare_stride == 0 ? 1 : config_.compare_stride;
  if (stats_.characters % stride != 0) return result;

  const EvenResult even = even_clock();
  result.matched = even.matched;
  result.injected = even.fired;
  return result;
}

void FifoInjector::clock_burst(std::span<const link::Symbol> in,
                               BatchResult& result) {
  result.out.clear();
  result.fires.clear();
  if (in.empty()) return;

  const std::size_t n = in.size();
  const std::size_t latency = params_.latency_chars;
  const std::uint64_t stride =
      config_.compare_stride == 0 ? 1 : config_.compare_stride;

  // A trigger is possible only when something is armed; the match result is
  // a foregone conclusion (and the LFSR frozen) when every compare input is
  // don't-care. Together those make the whole even phase arithmetic.
  const bool armed =
      inject_now_ || config_.match_mode == MatchMode::kOn ||
      (config_.match_mode == MatchMode::kOnce && !once_done_);
  const bool trivially_matched = config_.compare_mask == 0 &&
                                 (config_.compare_ctl_mask & 0x0F) == 0 &&
                                 config_.lfsr_mask == 0;

  if (!armed && trivially_matched) {
    // --- Fast path: no even clock can fire; the burst reduces to bulk
    // ring traffic plus counter arithmetic. ------------------------------
    const std::uint64_t chars0 = stats_.characters;
    stats_.characters += n;
    // Every compare cycle in (chars0, chars0 + n] matches.
    stats_.matches +=
        (chars0 + n) / stride - chars0 / stride;

    // Per-character semantics: push, then pop while occupancy exceeds the
    // pipeline depth. Over the burst that pops the oldest `pops` characters
    // of the combined ring-then-input stream, in order.
    const std::size_t total = count_ + n;
    const std::size_t pops = total > latency ? total - latency : 0;
    const std::size_t from_ring = pops < count_ ? pops : count_;
    for (std::size_t i = 0; i < from_ring; ++i) {
      result.out.push_back(ring_[head_]);
      head_ = wrap(head_ + 1);
      --count_;
    }
    const std::size_t from_in = pops - from_ring;
    result.out.insert(result.out.end(), in.begin(),
                      in.begin() + static_cast<std::ptrdiff_t>(from_in));

    // The ring ends up holding the last min(total, latency) characters of
    // the stream: what survived the pops plus the undelivered input tail.
    for (std::size_t i = from_in; i < n; ++i) push_ring(in[i]);

    // Compare registers always track the newest four characters.
    const std::size_t wstart = n > 4 ? n - 4 : 0;
    for (std::size_t i = wstart; i < n; ++i) {
      window_data_ = (window_data_ << 8) | in[i].data;
      window_ctl_ = static_cast<std::uint8_t>(
          ((window_ctl_ << 1) & 0x0F) | (in[i].control ? 1u : 0u));
    }
    return;
  }

  // --- General tier: the per-character pipeline, inlined on the ring. ----
  for (std::size_t i = 0; i < n; ++i) {
    const link::Symbol pushed = in[i];
    ++stats_.characters;
    push_ring(pushed);
    window_data_ = (window_data_ << 8) | pushed.data;
    window_ctl_ = static_cast<std::uint8_t>(((window_ctl_ << 1) & 0x0F) |
                                            (pushed.control ? 1u : 0u));
    if (count_ > latency) result.out.push_back(pop_ring());

    if (stats_.characters % stride != 0) continue;
    if (even_clock().fired) {
      result.fires.push_back(static_cast<std::uint32_t>(i));
    }
  }
}

}  // namespace hsfi::core
