// The off-FPGA UART chip and its RS-232 link to the external system.
//
// Paper §3.3: "the universal asynchronous receiver/transmitter (UART) used
// to support serial communication channels between the device and an
// external system is off-loaded to a separate chip. This simplifies the
// design and enables conservation of I/Os in the FPGA."
//
// The model keeps RS-232 byte pacing (10 bit times per byte: start bit,
// 8 data, stop bit) in both directions and exchanges 16-bit SPI frames with
// the FPGA-side SPI entity. The FPGA "can be reprogrammed while inserted in
// the network" through this path (§3.2).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.hpp"

namespace hsfi::core {

/// 16-bit SPI frame layout: [15:8] status, [7:0] data.
inline constexpr std::uint16_t kSpiDataValid = 0x0100;

[[nodiscard]] constexpr std::uint16_t spi_frame(std::uint8_t byte) noexcept {
  return static_cast<std::uint16_t>(kSpiDataValid | byte);
}
[[nodiscard]] constexpr bool spi_frame_valid(std::uint16_t frame) noexcept {
  return (frame & kSpiDataValid) != 0;
}
[[nodiscard]] constexpr std::uint8_t spi_frame_data(std::uint16_t frame) noexcept {
  return static_cast<std::uint8_t>(frame & 0xFF);
}

class Uart {
 public:
  struct Config {
    std::uint32_t baud = 115'200;
    /// SPI shift time for one 16-bit frame (16 bits at a few MHz).
    sim::Duration spi_frame_time = sim::microseconds(2);
  };

  explicit Uart(sim::Simulator& simulator) : Uart(simulator, Config{}) {}
  Uart(sim::Simulator& simulator, Config config);

  Uart(const Uart&) = delete;
  Uart& operator=(const Uart&) = delete;

  /// One byte on the RS-232 wire: 10 bit times.
  [[nodiscard]] sim::Duration byte_time() const noexcept {
    return sim::kSecond * 10 / config_.baud;
  }

  // ---- RS-232 side (external control host) ----
  /// Queues a byte from the external system; it arrives at the FPGA after
  /// serialization (paced back to back with previously queued bytes).
  void rs232_write(std::uint8_t byte);
  /// Sink for bytes the device sends to the external system.
  void on_rs232_read(std::function<void(std::uint8_t)> handler) {
    rs232_read_ = std::move(handler);
  }

  // ---- SPI side (FPGA) ----
  /// Sink for frames shifted toward the FPGA.
  void on_spi_rx(std::function<void(std::uint16_t)> handler) {
    spi_rx_ = std::move(handler);
  }
  /// Frame shifted from the FPGA; valid frames serialize out over RS-232.
  void spi_tx(std::uint16_t frame);

  /// Boot-time configuration handshake (the communications handler
  /// "configures the UART on boot-up").
  void configure() noexcept { configured_ = true; }
  [[nodiscard]] bool configured() const noexcept { return configured_; }

  [[nodiscard]] std::uint64_t bytes_to_fpga() const noexcept {
    return to_fpga_;
  }
  [[nodiscard]] std::uint64_t bytes_to_host() const noexcept {
    return to_host_;
  }

  /// Snapshot state: serialization horizons and byte counters (handlers are
  /// wiring and stay attached; in-flight bytes ride in the simulator queue).
  struct State {
    bool configured = false;
    sim::SimTime rx_free_at = 0;
    sim::SimTime tx_free_at = 0;
    std::uint64_t to_fpga = 0;
    std::uint64_t to_host = 0;
  };

  [[nodiscard]] State capture_state() const noexcept {
    return State{configured_, rx_free_at_, tx_free_at_, to_fpga_, to_host_};
  }
  void restore_state(const State& state) noexcept {
    configured_ = state.configured;
    rx_free_at_ = state.rx_free_at;
    tx_free_at_ = state.tx_free_at;
    to_fpga_ = state.to_fpga;
    to_host_ = state.to_host;
  }

 private:
  sim::Simulator& simulator_;
  Config config_;
  bool configured_ = false;
  sim::SimTime rx_free_at_ = 0;  ///< RS-232 receive serialization
  sim::SimTime tx_free_at_ = 0;  ///< RS-232 transmit serialization
  std::uint64_t to_fpga_ = 0;
  std::uint64_t to_host_ = 0;
  std::function<void(std::uint8_t)> rs232_read_;
  std::function<void(std::uint16_t)> spi_rx_;
};

}  // namespace hsfi::core
