// The fault sequencer: internally generated reconfiguration.
//
// Paper §1: the FPGA-based design "allows the device to be programmed to
// accept configuration commands generated either internally (i.e., by the
// device itself) or by an external system", and §3.2: "The core logic of
// the fault injector can be configured to iterate through any number of
// faults".
//
// A FaultSequencer holds an ordered program of injector configurations and
// advances through it on its own, without round-trips over the slow serial
// link: each step arms one configuration and completes after a given number
// of injections or a time budget, whichever comes first. The serial plane
// stays in charge of loading the program and reading progress back.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "core/injector_config.hpp"
#include "sim/simulator.hpp"

namespace hsfi::core {

class FaultSequencer {
 public:
  struct Step {
    InjectorConfig config;
    /// Advance after this many injections (0 = no injection bound).
    std::uint64_t max_injections = 1;
    /// Advance after this much time armed (0 = no time bound). At least
    /// one bound must be set or the step would never complete.
    sim::Duration max_duration = 0;
    std::string label;
  };

  struct Progress {
    std::size_t steps_completed = 0;
    std::size_t steps_total = 0;
    std::uint64_t injections_this_step = 0;
    bool running = false;
  };

  FaultSequencer(sim::Simulator& simulator, InjectorDevice& device,
                 Direction direction);
  ~FaultSequencer();

  FaultSequencer(const FaultSequencer&) = delete;
  FaultSequencer& operator=(const FaultSequencer&) = delete;

  /// Replaces the program. Steps with neither bound set are rejected
  /// (returns false) so a program cannot wedge the sequencer.
  bool load(std::vector<Step> steps);

  /// Arms the first step. The sequencer polls the device's injection
  /// counter on its own clock (poll_interval) — the hardware equivalent is
  /// the internal FSM watching the inject counter.
  void start(sim::Duration poll_interval = sim::microseconds(10));

  /// Disarms the device and stops advancing.
  void stop();

  [[nodiscard]] Progress progress() const noexcept;
  /// Invoked every time a step completes (after the last one the device is
  /// disarmed).
  void on_step_complete(std::function<void(std::size_t step)> callback) {
    step_complete_ = std::move(callback);
  }

 private:
  void arm_current();
  void poll();
  void advance();

  sim::Simulator& simulator_;
  InjectorDevice& device_;
  Direction direction_;
  std::vector<Step> steps_;
  std::size_t current_ = 0;
  std::uint64_t injections_at_arm_ = 0;
  sim::SimTime armed_at_ = 0;
  sim::Duration poll_interval_ = sim::microseconds(10);
  sim::EventId poll_event_ = sim::kInvalidEventId;
  bool running_ = false;
  std::function<void(std::size_t)> step_complete_;
};

}  // namespace hsfi::core
