// Statistics gathering on the monitored stream.
//
// Paper §3.2: "the FPGA can gather statistics about the fault injection
// campaign. For instance, data-link packet data such as source and
// destination identifier numbers can be monitored, with counters
// incremented for each packet seen with these identifiers."
//
// The monitor deframes the stream it watches and, for data packets whose
// payload is long enough to carry the host stack's destination/source
// identifiers (two 48-bit physical addresses, as in §4.3.3), counts packets
// per (src, dst) pair. Control symbols and packet types are counted too.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "link/symbol.hpp"
#include "myrinet/addr.hpp"
#include "myrinet/framing.hpp"
#include "myrinet/packet.hpp"
#include "sim/time.hpp"

namespace hsfi::core {

class StreamStats {
 public:
  struct Counters {
    std::uint64_t characters = 0;
    std::uint64_t control_symbols = 0;
    std::uint64_t gaps = 0;
    std::uint64_t stops = 0;
    std::uint64_t gos = 0;
    std::uint64_t frames = 0;
    std::uint64_t data_frames = 0;
    std::uint64_t mapping_frames = 0;
    std::uint64_t other_frames = 0;
    std::uint64_t crc_bad_frames = 0;
  };

  StreamStats();

  void feed(link::Symbol s, sim::SimTime when);

  /// Whole-burst feed: counters advance arithmetically (control symbols by
  /// bitmask popcount, gaps by scanning only the control positions) and the
  /// deframer consumes data runs in bulk. Equivalent to per-symbol feed().
  void feed_burst(const link::Burst& burst);

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

  /// Packets seen per (destination, source) identifier pair.
  using PairKey = std::pair<std::uint64_t, std::uint64_t>;  // dst, src as u64
  [[nodiscard]] const std::map<PairKey, std::uint64_t>& pair_counts()
      const noexcept {
    return pairs_;
  }

  void clear();

  /// Serial "STAT" readout.
  [[nodiscard]] std::string render() const;

  /// Data-only snapshot state. The deframer's handlers bind `this` in the
  /// constructor and must never be copied between instances, so the state
  /// carries the deframer's data, not the deframer.
  struct State {
    myrinet::Deframer::State deframer;
    Counters counters;
    std::map<PairKey, std::uint64_t> pairs;
  };

  [[nodiscard]] State capture_state() const {
    return State{deframer_.capture_state(), counters_, pairs_};
  }
  void restore_state(const State& state) {
    deframer_.restore_state(state.deframer);
    counters_ = state.counters;
    pairs_ = state.pairs;
  }

 private:
  void on_frame(const std::vector<std::uint8_t>& frame);

  myrinet::Deframer deframer_;
  Counters counters_;
  std::map<PairKey, std::uint64_t> pairs_;
};

}  // namespace hsfi::core
