// CRC repatch stage.
//
// Paper §3.2 (real-time triggering): the FPGA can "inject a random fault in
// the payload while recalculating the correct CRC value to transmit
// immediately before the end-of-frame (EOF) character", so the receiving
// interface sees only the intended corruption and no CRC error.
//
// The repatcher runs on the post-injection symbol stream. It delays data
// characters by one position; when the frame-terminating GAP arrives, the
// held character — the frame's CRC byte — is replaced with the CRC-8
// recomputed over the (possibly corrupted) frame body actually emitted.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "link/symbol.hpp"
#include "myrinet/crc8.hpp"

namespace hsfi::core {

class CrcRepatcher {
 public:
  /// Feeds one character of the post-injection stream; returns 0..2
  /// characters to emit (two when a GAP flushes the held CRC byte).
  /// When `enabled` is false the stage is a transparent wire.
  [[nodiscard]] std::vector<link::Symbol> feed(link::Symbol s, bool enabled);

  /// Allocation-free variant: appends the 0..2 emitted characters to `out`.
  /// The hot path feeds the whole burst through one caller-owned scratch
  /// buffer instead of materializing a vector per character.
  void feed_into(link::Symbol s, bool enabled, std::vector<link::Symbol>& out);

  /// True while a data byte is delayed inside the stage. When false and
  /// repatching is disabled the stage is stateless-transparent, so callers
  /// may bypass it entirely for a whole burst.
  [[nodiscard]] bool has_held() const noexcept { return held_.has_value(); }

  /// Frames whose CRC byte was rewritten.
  [[nodiscard]] std::uint64_t frames_patched() const noexcept {
    return frames_patched_;
  }

 private:
  std::optional<std::uint8_t> held_;
  myrinet::Crc8 body_crc_;
  std::uint64_t frames_patched_ = 0;
};

}  // namespace hsfi::core
