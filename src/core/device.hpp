// The fault-injector device: two transceiver-fed, independently configured
// FIFO-injector pipelines spliced into a network link (paper Fig. 1).
//
// "Two transceivers are necessary because the transmitted data must be
// intercepted on one network segment and retransmitted with the desired
// faults inserted on the opposite segment... The architecture supports
// bi-directional fault injection: where data can be corrupted in both
// 'left going' data and 'right going' data... the injector can execute
// different and independent commands on data traveling in different
// directions."
//
// Physically the device cuts a cable into a left segment and a right
// segment. Each direction's pipeline is: PHY receive -> capture/statistics
// taps -> FIFO injector (Figs. 2/3) -> optional CRC repatch -> PHY
// retransmit. Everything is transparent except a fixed pipeline latency
// (default 20 characters = 250 ns at 640 Mb/s, matching the paper's
// footnote 5).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/capture.hpp"
#include "core/crc_repatch.hpp"
#include "core/fifo_injector.hpp"
#include "core/injector_config.hpp"
#include "core/stats.hpp"
#include "link/channel.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"

namespace hsfi::core {

enum class Direction : std::uint8_t {
  kLeftToRight = 0,  ///< the paper's "right going" data
  kRightToLeft = 1,  ///< the paper's "left going" data
};

[[nodiscard]] constexpr std::size_t index(Direction d) noexcept {
  return static_cast<std::size_t>(d);
}
[[nodiscard]] std::string_view to_string(Direction d) noexcept;

class InjectorDevice {
 public:
  struct Config {
    FifoInjector::Params fifo = {};
    CaptureBuffer::Params capture = {};
    /// Character period of the attached network (drain-clock pacing).
    sim::Duration character_period = sim::picoseconds(12'500);

    bool operator==(const Config&) const = default;
  };

  InjectorDevice(sim::Simulator& simulator, std::string name, Config config);
  ~InjectorDevice();

  InjectorDevice(const InjectorDevice&) = delete;
  InjectorDevice& operator=(const InjectorDevice&) = delete;

  /// Splice into the left cable segment: `rx` carries symbols from the left
  /// neighbor into the device, `tx` from the device back to it.
  void attach_left(link::Channel& rx, link::Channel& tx);
  /// Same for the right segment.
  void attach_right(link::Channel& rx, link::Channel& tx);

  /// Live (re)configuration of one direction — what the serial command
  /// plane ultimately writes. Re-arms a kOnce trigger.
  void apply(Direction d, const InjectorConfig& config);
  [[nodiscard]] const InjectorConfig& config(Direction d) const;

  /// Force one injection on the next window (the "Inject now" strobe).
  void inject_now(Direction d);
  /// Re-arm a kOnce trigger without touching the rest of the config.
  void rearm(Direction d);

  [[nodiscard]] const FifoInjector::Stats& fifo_stats(Direction d) const;
  [[nodiscard]] const CaptureBuffer& capture(Direction d) const;
  [[nodiscard]] const StreamStats& stream_stats(Direction d) const;
  [[nodiscard]] std::uint64_t frames_crc_patched(Direction d) const;
  void clear_stats();

  /// Latency a character experiences through the device.
  [[nodiscard]] sim::Duration nominal_latency() const noexcept {
    return config_.character_period *
           static_cast<sim::Duration>(config_.fifo.latency_chars);
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Optional event trace (configuration applications); not owned.
  void set_trace(sim::TraceLog* trace) noexcept { trace_ = trace; }

  /// Called once per fired injection window with the direction and the
  /// simulated time of the first corrupted character — the anchor the
  /// manifestation analyzer correlates downstream effects against.
  using InjectionHook = std::function<void(Direction, sim::SimTime)>;
  void set_injection_hook(InjectionHook hook);

  /// Snapshot state, one entry per direction. FIFO/repatch/capture are
  /// plain value types and are copied whole; the stream monitor is captured
  /// data-only (its deframer handlers bind the owning instance). The drain
  /// EventId stays valid across a fork because the simulator restores queue
  /// slots/generations verbatim. The injection hook is per-run monitor
  /// wiring, not state.
  struct State {
    struct PipeState {
      FifoInjector fifo;
      CrcRepatcher repatch;
      CaptureBuffer capture;
      StreamStats::State stats;
      sim::EventId drain_event = sim::kInvalidEventId;
    };
    std::array<PipeState, 2> pipes;
  };

  [[nodiscard]] State capture_state() const;
  void restore_state(const State& state);

 private:
  struct Pipeline;

  sim::Simulator& simulator_;
  std::string name_;
  Config config_;
  std::array<std::unique_ptr<Pipeline>, 2> pipes_;
  sim::TraceLog* trace_ = nullptr;
};

}  // namespace hsfi::core
