#include "core/stats.hpp"

#include <bit>
#include <cstdio>

#include "myrinet/control.hpp"

namespace hsfi::core {

StreamStats::StreamStats() {
  deframer_.on_frame([this](std::vector<std::uint8_t> frame, sim::SimTime) {
    on_frame(frame);
  });
  deframer_.on_flow([this](myrinet::ControlSymbol c, sim::SimTime) {
    if (c == myrinet::ControlSymbol::kStop) ++counters_.stops;
    if (c == myrinet::ControlSymbol::kGo) ++counters_.gos;
  });
}

void StreamStats::feed(link::Symbol s, sim::SimTime when) {
  ++counters_.characters;
  if (s.control) {
    ++counters_.control_symbols;
    if (myrinet::decode_control(s.data) == myrinet::ControlSymbol::kGap) {
      ++counters_.gaps;
    }
  }
  deframer_.feed(s, when);
}

void StreamStats::feed_burst(const link::Burst& burst) {
  const std::size_t n = burst.symbols.size();
  if (!burst.has_view()) {
    for (std::size_t i = 0; i < n; ++i) feed(burst.symbols[i], burst.arrival(i));
    return;
  }
  counters_.characters += n;
  std::uint64_t ctl_count = 0;
  for (std::size_t w = 0; w < burst.ctl.size(); ++w) {
    std::uint64_t word = burst.ctl[w];
    ctl_count += static_cast<std::uint64_t>(std::popcount(word));
    while (word != 0) {
      const auto bit = static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      const std::size_t j = (w << 6) + bit;
      if (myrinet::decode_control(burst.data[j]) ==
          myrinet::ControlSymbol::kGap) {
        ++counters_.gaps;
      }
    }
  }
  counters_.control_symbols += ctl_count;
  deframer_.feed_burst(burst);
}

void StreamStats::on_frame(const std::vector<std::uint8_t>& frame) {
  ++counters_.frames;
  // The stream at an arbitrary link position may still carry route bytes;
  // the monitor sees frames as they pass, so parse both shapes: try as
  // delivered first, else skip leading route bytes (MSB judged irrelevant —
  // the monitor just wants the type field).
  myrinet::Delivered d = myrinet::parse_delivered(frame);
  if (d.status == myrinet::DeliveryStatus::kCrcError) {
    ++counters_.crc_bad_frames;
    return;
  }
  if (d.status != myrinet::DeliveryStatus::kOk &&
      d.status != myrinet::DeliveryStatus::kMarkerError) {
    return;
  }
  if (d.status == myrinet::DeliveryStatus::kMarkerError) {
    // Count it by type anyway; the identifiers below need a valid payload,
    // which a marker error still has.
    d.type = frame.size() >= 4
                 ? static_cast<std::uint16_t>((frame[1] << 8) | frame[2])
                 : 0;
  }
  // A frame observed before its last switch hop still carries a leading
  // route byte, shifting the type field by one. If the type parsed at the
  // delivered offset is unrecognized, classify by the shifted offset.
  std::size_t payload_offset = 0;
  if (d.type != myrinet::kTypeData && d.type != myrinet::kTypeMapping &&
      frame.size() >= 5) {
    const auto shifted =
        static_cast<std::uint16_t>((frame[2] << 8) | frame[3]);
    if (shifted == myrinet::kTypeData || shifted == myrinet::kTypeMapping) {
      d.type = shifted;
      payload_offset = 1;  // route byte still present
    }
  }
  if (d.type == myrinet::kTypeData) {
    ++counters_.data_frames;
  } else if (d.type == myrinet::kTypeMapping) {
    ++counters_.mapping_frames;
  } else {
    ++counters_.other_frames;
  }
  // Host-stack identifiers: payload starts with dst(6) then src(6).
  if (d.type == myrinet::kTypeData &&
      frame.size() >= payload_offset + 4 + 12 + 1) {
    const std::span<const std::uint8_t> payload(
        frame.data() + payload_offset + 3, frame.size() - payload_offset - 4);
    const auto dst = myrinet::get_eth(payload, 0).to_u64();
    const auto src = myrinet::get_eth(payload, 6).to_u64();
    ++pairs_[{dst, src}];
  }
}

void StreamStats::clear() {
  counters_ = Counters{};
  pairs_.clear();
  deframer_.abort_frame();
}

std::string StreamStats::render() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "chars=%llu ctl=%llu gaps=%llu stop=%llu go=%llu frames=%llu "
                "(data=%llu map=%llu other=%llu crc-bad=%llu)\n",
                static_cast<unsigned long long>(counters_.characters),
                static_cast<unsigned long long>(counters_.control_symbols),
                static_cast<unsigned long long>(counters_.gaps),
                static_cast<unsigned long long>(counters_.stops),
                static_cast<unsigned long long>(counters_.gos),
                static_cast<unsigned long long>(counters_.frames),
                static_cast<unsigned long long>(counters_.data_frames),
                static_cast<unsigned long long>(counters_.mapping_frames),
                static_cast<unsigned long long>(counters_.other_frames),
                static_cast<unsigned long long>(counters_.crc_bad_frames));
  out += buf;
  for (const auto& [key, count] : pairs_) {
    std::snprintf(buf, sizeof buf, "  dst=%s src=%s packets=%llu\n",
                  myrinet::to_string(myrinet::EthAddr::from_u64(key.first)).c_str(),
                  myrinet::to_string(myrinet::EthAddr::from_u64(key.second)).c_str(),
                  static_cast<unsigned long long>(count));
    out += buf;
  }
  return out;
}

}  // namespace hsfi::core
