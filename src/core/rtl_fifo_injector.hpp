// Register-transfer-level model of the FIFO injector.
//
// The paper's artifact was VHDL: "The injector was first implemented in
// VHDL, and the synthesized hardware was uploaded into an FPGA" (§3.2).
// This model mirrors that structure — explicit dual-port RAM, read/write
// pointers, an occupancy counter, 36-bit compare shift registers, the
// stride counter and trigger LFSR — with the two-phase clock discipline of
// Figs. 2 and 3: all state updates on clock edges from values computed
// off the previous state.
//
// Its purpose is cross-validation: tests drive identical stimulus through
// this model and the behavioral core::FifoInjector and require
// cycle-identical outputs (the simulation analogue of checking synthesized
// hardware against its specification). The netlist resource model in
// src/netlist counts the very registers declared here.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "core/injector_config.hpp"
#include "link/symbol.hpp"

namespace hsfi::core {

class RtlFifoInjector {
 public:
  struct Params {
    std::size_t latency_chars = 20;
    std::size_t fifo_capacity = 64;  ///< RAM depth (power of two not required)
  };

  struct Result {
    std::optional<link::Symbol> out;
    bool matched = false;
    bool injected = false;
  };

  RtlFifoInjector() : RtlFifoInjector(Params{}) {}
  explicit RtlFifoInjector(Params params);

  [[nodiscard]] InjectorConfig& config() noexcept { return config_; }
  void rearm() noexcept {
    once_done_ = false;
    inject_now_ = false;
  }
  void inject_now() noexcept { inject_now_ = true; }

  /// One odd+even clock pair; nullopt = idle wire (the free-running clock
  /// pushes an IDLE character).
  Result clock(std::optional<link::Symbol> in);

  [[nodiscard]] std::size_t occupancy() const noexcept { return count_; }
  [[nodiscard]] bool pending_payload() const noexcept;

 private:
  /// One 9-bit RAM word: data plus the D/C bit.
  struct Word {
    std::uint8_t data = 0;
    bool control = false;
  };

  [[nodiscard]] std::size_t wrap(std::size_t index) const noexcept {
    return index % params_.fifo_capacity;
  }

  Params params_;
  InjectorConfig config_;

  // --- registers (what the synthesis model counts) ---
  std::array<Word, 4096> ram_{};     // dual-port RAM (capacity bounds use)
  std::size_t wr_ptr_ = 0;           // write pointer register
  std::size_t rd_ptr_ = 0;           // read pointer register
  std::size_t count_ = 0;            // occupancy counter register
  std::array<Word, 4> window_{};     // compare window shift registers
  std::uint64_t char_counter_ = 0;   // stride counter register
  std::uint16_t lfsr_ = 0xACE1;      // trigger LFSR register
  bool once_done_ = false;           // ONCE latch
  bool inject_now_ = false;          // inject-now strobe
};

}  // namespace hsfi::core
