#include "core/crc_repatch.hpp"

#include "myrinet/control.hpp"

namespace hsfi::core {

void CrcRepatcher::feed_into(link::Symbol s, bool enabled,
                             std::vector<link::Symbol>& out) {
  if (!enabled) {
    // Transparent — but flush any byte held from before the stage was
    // disabled so nothing is swallowed.
    if (held_) {
      out.push_back(link::data_symbol(*held_));
      held_.reset();
      body_crc_.reset();
    }
    out.push_back(s);
    return;
  }

  if (!s.control) {
    if (held_) {
      out.push_back(link::data_symbol(*held_));
      body_crc_.update(*held_);
    }
    held_ = s.data;
    return;
  }

  const auto decoded = myrinet::decode_control(s.data);
  if (decoded == myrinet::ControlSymbol::kGap) {
    if (held_) {
      // The held character is the frame's trailing CRC: replace it with the
      // CRC of the body as actually emitted.
      out.push_back(link::data_symbol(body_crc_.value()));
      ++frames_patched_;
      held_.reset();
    }
    body_crc_.reset();
  }
  out.push_back(s);
}

std::vector<link::Symbol> CrcRepatcher::feed(link::Symbol s, bool enabled) {
  std::vector<link::Symbol> out;
  feed_into(s, enabled, out);
  return out;
}

}  // namespace hsfi::core
