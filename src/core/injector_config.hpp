// Injector control inputs (paper §3.3, Fig. 3).
//
// "The injector control inputs... allow the user to provide necessary
// information to perform the injections": match mode (on/off/once), compare
// data, compare mask, corrupt mode (toggle/replace), corrupt data, corrupt
// mask, and the inject-now strobe.
//
// The datapath is 32 bits wide (four Myrinet characters); the compare and
// corrupt vectors are aligned to the sliding 4-character window, bits
// [31:24] corresponding to the oldest character in the window. Because a
// Myrinet character carries a ninth Data/Control bit, the window has a
// 4-bit control sideband with its own compare/corrupt vectors (an explicit
// extension over the paper's 32-bit description, needed to express the
// paper's own control-symbol campaigns; see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hsfi::core {

enum class MatchMode : std::uint8_t {
  kOff,   ///< trigger disabled
  kOn,    ///< trigger on every match
  kOnce,  ///< trigger on the first match, ignore all subsequent ones
};

enum class CorruptMode : std::uint8_t {
  kToggle,   ///< XOR the corrupt-data bits into the stream
  kReplace,  ///< replace bits selected by the corrupt mask
};

[[nodiscard]] std::string_view to_string(MatchMode m) noexcept;
[[nodiscard]] std::string_view to_string(CorruptMode m) noexcept;
[[nodiscard]] std::optional<MatchMode> parse_match_mode(std::string_view s);
[[nodiscard]] std::optional<CorruptMode> parse_corrupt_mode(std::string_view s);

struct InjectorConfig {
  MatchMode match_mode = MatchMode::kOff;
  CorruptMode corrupt_mode = CorruptMode::kToggle;

  /// Trigger asserts when (window ^ compare_data) & compare_mask == 0 and
  /// the control sideband matches likewise. An all-zero mask matches every
  /// window (random/always injection).
  std::uint32_t compare_data = 0;
  std::uint32_t compare_mask = 0;
  std::uint8_t compare_ctl = 0;       ///< 4-bit control sideband pattern
  std::uint8_t compare_ctl_mask = 0;  ///< 4-bit sideband care bits

  std::uint32_t corrupt_data = 0;
  std::uint32_t corrupt_mask = 0;     ///< replace mode only
  std::uint8_t corrupt_ctl = 0;
  std::uint8_t corrupt_ctl_mask = 0;  ///< replace mode only

  /// Recalculate the Myrinet CRC-8 "to transmit immediately before the
  /// end-of-frame character" so that only the intended corruption survives.
  bool crc_repatch = false;

  /// Compare cadence in characters. 4 = evaluate once per 32-bit segment,
  /// exactly like the Figs. 2/3 hardware (a pattern is then caught only
  /// when it lands on the programmed lane alignment — about one in four
  /// control symbols for a single-lane match, which is what shapes the
  /// paper's Table 4 loss rates). 1 = evaluate on every character (a
  /// convenience this model adds for alignment-independent matching).
  std::uint8_t compare_stride = 1;

  /// Random-trigger mask for SEU-style campaigns ("Random faults causing
  /// bit flip errors for system availability and fault tolerance
  /// characterization under SEU conditions", §3.1). When non-zero, a
  /// 16-bit Fibonacci LFSR advances every compare cycle and the trigger
  /// additionally requires (lfsr & mask) == 0 — mask 0x000F fires on about
  /// one compare in 16, 0x00FF on one in 256, and so on. 0 disables the
  /// LFSR (every compare hit fires). Combine with an all-don't-care
  /// compare mask for uniformly random bit flips on the stream.
  std::uint16_t lfsr_mask = 0;
};

/// Renders a config as the serial commands that would reproduce it.
[[nodiscard]] std::string describe(const InjectorConfig& config);

}  // namespace hsfi::core
