#include "core/rtl_fifo_injector.hpp"

#include <cassert>

#include "myrinet/control.hpp"

namespace hsfi::core {

RtlFifoInjector::RtlFifoInjector(Params params) : params_(params) {
  assert(params_.latency_chars >= 4);
  assert(params_.fifo_capacity > params_.latency_chars);
  assert(params_.fifo_capacity <= ram_.size());
  // Compare registers power up holding IDLE control characters.
  for (auto& w : window_) {
    w = Word{myrinet::encoding(myrinet::ControlSymbol::kIdle), true};
  }
}

bool RtlFifoInjector::pending_payload() const noexcept {
  for (std::size_t i = 0; i < count_; ++i) {
    const Word& w = ram_[wrap(rd_ptr_ + i)];
    if (!(w.control && w.data == 0x00)) return true;
  }
  return false;
}

RtlFifoInjector::Result RtlFifoInjector::clock(std::optional<link::Symbol> in) {
  Result result;

  // ===== Odd clock edge (Fig. 2: FIFO push and pull) ====================
  // Combinational inputs computed from current-state registers:
  const Word incoming =
      in ? Word{in->data, in->control}
         : Word{myrinet::encoding(myrinet::ControlSymbol::kIdle), true};
  const bool do_push = count_ < params_.fifo_capacity;
  const std::size_t count_after_push = count_ + (do_push ? 1 : 0);
  const bool do_pull = count_after_push > params_.latency_chars;

  // Register updates (RAM write port A, read port B, pointers, counter,
  // compare shift registers):
  if (do_push) {
    ram_[wr_ptr_] = incoming;
    wr_ptr_ = wrap(wr_ptr_ + 1);
  }
  if (do_pull) {
    const Word& w = ram_[rd_ptr_];
    result.out = link::Symbol{w.data, w.control};
    rd_ptr_ = wrap(rd_ptr_ + 1);
  }
  count_ = count_after_push - (do_pull ? 1 : 0);
  window_[3] = window_[2];
  window_[2] = window_[1];
  window_[1] = window_[0];
  window_[0] = incoming;
  if (in) ++char_counter_;

  // ===== Even clock edge (Fig. 3: inject data in FIFO) ==================
  if (!in) return result;  // the inject phase idles with the wire

  const std::uint8_t stride =
      config_.compare_stride == 0 ? 1 : config_.compare_stride;
  if (char_counter_ % stride != 0) return result;

  // Trigger LFSR free-runs on every evaluated compare cycle.
  bool lfsr_ok = true;
  if (config_.lfsr_mask != 0) {
    const std::uint16_t bit = static_cast<std::uint16_t>(
        ((lfsr_ >> 0) ^ (lfsr_ >> 2) ^ (lfsr_ >> 3) ^ (lfsr_ >> 5)) & 1u);
    lfsr_ = static_cast<std::uint16_t>((lfsr_ >> 1) | (bit << 15));
    lfsr_ok = (lfsr_ & config_.lfsr_mask) == 0;
  }

  // Masked compare of the window registers (window_[0] = newest = lane 0).
  std::uint32_t window_data = 0;
  std::uint8_t window_ctl = 0;
  for (int lane = 3; lane >= 0; --lane) {
    window_data = (window_data << 8) | window_[static_cast<std::size_t>(lane)].data;
    window_ctl = static_cast<std::uint8_t>(
        (window_ctl << 1) |
        (window_[static_cast<std::size_t>(lane)].control ? 1u : 0u));
  }
  const bool data_ok =
      ((window_data ^ config_.compare_data) & config_.compare_mask) == 0;
  const bool ctl_ok = ((window_ctl ^ config_.compare_ctl) &
                       config_.compare_ctl_mask & 0x0F) == 0;
  const bool matched = data_ok && ctl_ok && lfsr_ok;
  result.matched = matched;

  bool fire = false;
  if (inject_now_) {
    fire = true;
    inject_now_ = false;
  } else if (matched) {
    switch (config_.match_mode) {
      case MatchMode::kOff: break;
      case MatchMode::kOn: fire = true; break;
      case MatchMode::kOnce:
        if (!once_done_) {
          fire = true;
          once_done_ = true;
        }
        break;
    }
  }
  if (!fire || count_ == 0) return result;

  // Overwrite the newest (up to) four RAM words — the matched window, all
  // still resident because latency_chars >= 4.
  const std::size_t lanes = count_ < 4 ? count_ : 4;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    Word& w = ram_[wrap(wr_ptr_ + params_.fifo_capacity - 1 - lane)];
    const auto shift = static_cast<unsigned>(8 * lane);
    const auto lane_data =
        static_cast<std::uint8_t>(config_.corrupt_data >> shift);
    const auto lane_mask =
        static_cast<std::uint8_t>(config_.corrupt_mask >> shift);
    const std::uint8_t ctl_bit = static_cast<std::uint8_t>(1u << lane);
    switch (config_.corrupt_mode) {
      case CorruptMode::kToggle:
        w.data ^= lane_data;
        if ((config_.corrupt_ctl & ctl_bit) != 0) w.control = !w.control;
        break;
      case CorruptMode::kReplace:
        w.data = static_cast<std::uint8_t>((w.data & ~lane_mask) |
                                           (lane_data & lane_mask));
        if ((config_.corrupt_ctl_mask & ctl_bit) != 0) {
          w.control = (config_.corrupt_ctl & ctl_bit) != 0;
        }
        break;
    }
  }
  result.injected = true;
  return result;
}

}  // namespace hsfi::core
