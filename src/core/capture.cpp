#include "core/capture.hpp"

#include "sim/time.hpp"

namespace hsfi::core {

void CaptureBuffer::feed(link::Symbol s, sim::SimTime when) {
  (void)when;
  if (open_) {
    pending_.after.push_back(s);
    if (pending_.after.size() >= params_.post_context) {
      if (events_.size() < params_.max_events) {
        events_.push_back(std::move(pending_));
      } else {
        ++dropped_events_;
      }
      pending_ = Event{};
      open_ = false;
    }
  }
  ring_.push_back(s);
  while (ring_.size() > params_.pre_context) ring_.pop_front();
}

void CaptureBuffer::trigger(sim::SimTime when) {
  if (open_) {  // still collecting the previous event's context
    ++dropped_events_;
    return;
  }
  open_ = true;
  pending_ = Event{};
  pending_.when = when;
  pending_.before.assign(ring_.begin(), ring_.end());
}

std::string CaptureBuffer::render() const {
  std::string out;
  for (const auto& e : events_) {
    out += "event @ ";
    out += sim::format_time(e.when);
    out += "\n  before: ";
    out += link::to_string(e.before);
    out += "\n  after:  ";
    out += link::to_string(e.after);
    out += "\n";
  }
  if (events_.empty()) out = "(no capture events)\n";
  if (dropped_events_ != 0) {
    out += "dropped events: ";
    out += std::to_string(dropped_events_);
    out += "\n";
  }
  return out;
}

}  // namespace hsfi::core
