#include "core/capture.hpp"

#include "sim/time.hpp"

namespace hsfi::core {

void CaptureBuffer::feed_one(link::Symbol s) {
  if (open_) {
    pending_.after.push_back(s);
    if (pending_.after.size() >= params_.post_context) {
      if (events_.size() < params_.max_events) {
        events_.push_back(std::move(pending_));
      } else {
        ++dropped_events_;
      }
      pending_ = Event{};
      open_ = false;
    }
  }
  ring_.push_back(s);
  while (ring_.size() > params_.pre_context) ring_.pop_front();
}

void CaptureBuffer::feed_run(std::span<const link::Symbol> symbols) {
  std::size_t i = 0;
  // An open event may close partway through the run; nothing re-opens it
  // without a trigger, so the remainder only has to refresh the ring.
  while (open_ && i < symbols.size()) feed_one(symbols[i++]);
  const std::size_t rest = symbols.size() - i;
  if (rest == 0) return;
  if (rest >= params_.pre_context) {
    ring_.assign(symbols.end() - static_cast<std::ptrdiff_t>(params_.pre_context),
                 symbols.end());
  } else {
    ring_.insert(ring_.end(), symbols.begin() + static_cast<std::ptrdiff_t>(i),
                 symbols.end());
    while (ring_.size() > params_.pre_context) ring_.pop_front();
  }
}

void CaptureBuffer::trigger(sim::SimTime when) {
  if (open_) {  // still collecting the previous event's context
    ++dropped_events_;
    return;
  }
  open_ = true;
  pending_ = Event{};
  pending_.when = when;
  pending_.before.assign(ring_.begin(), ring_.end());
}

std::string CaptureBuffer::render() const {
  std::string out;
  for (const auto& e : events_) {
    out += "event @ ";
    out += sim::format_time(e.when);
    out += "\n  before: ";
    out += link::to_string(e.before);
    out += "\n  after:  ";
    out += link::to_string(e.after);
    out += "\n";
  }
  if (events_.empty()) out = "(no capture events)\n";
  if (dropped_events_ != 0) {
    out += "dropped events: ";
    out += std::to_string(dropped_events_);
    out += "\n";
  }
  return out;
}

}  // namespace hsfi::core
