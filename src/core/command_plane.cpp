#include "core/command_plane.hpp"

#include <charconv>
#include <optional>
#include <sstream>
#include <utility>

namespace hsfi::core {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

std::optional<Direction> parse_direction(const std::string& s) {
  if (s == "L") return Direction::kLeftToRight;
  if (s == "R") return Direction::kRightToLeft;
  return std::nullopt;
}

std::optional<std::uint32_t> parse_hex32(const std::string& s) {
  if (s.empty() || s.size() > 8) return std::nullopt;
  std::uint32_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

std::optional<std::uint8_t> parse_hex_nibble(const std::string& s) {
  const auto v = parse_hex32(s);
  if (!v || *v > 0xF) return std::nullopt;
  return static_cast<std::uint8_t>(*v);
}

}  // namespace

void OutputGenerator::emit_line(const std::string& line) {
  ++lines_;
  for (const char c : line) spi_.tx_byte(static_cast<std::uint8_t>(c));
  spi_.tx_byte('\r');
  spi_.tx_byte('\n');
}

void OutputGenerator::emit_raw(const std::string& text) {
  std::string line;
  for (const char c : text) {
    if (c == '\n') {
      emit_line(line);
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty()) emit_line(line);
}

void CommandDecoder::feed(std::uint8_t byte) {
  const char c = static_cast<char>(byte);
  if (c == '\r' || c == '\n') {
    if (!line_.empty()) {
      execute(line_);
      line_.clear();
    }
    return;
  }
  if (line_.size() < 256) line_ += c;
}

void CommandDecoder::execute(const std::string& line) {
  const auto tok = tokenize(line);
  if (tok.empty()) return;
  const std::string& cmd = tok[0];

  // Direction-free commands first.
  if (cmd == "PING") {
    out_.emit_line("PONG");
    ok();
    return;
  }
  if (cmd == "CLRS") {
    device_.clear_stats();
    ok();
    return;
  }

  if (tok.size() < 2) {
    err("missing direction");
    return;
  }
  const auto dir = parse_direction(tok[1]);
  if (!dir) {
    err("bad direction '" + tok[1] + "'");
    return;
  }

  if (cmd == "INJN") {
    device_.inject_now(*dir);
    ok();
    return;
  }
  if (cmd == "REARM") {
    device_.rearm(*dir);
    ok();
    return;
  }
  if (cmd == "STAT") {
    const auto& fs = device_.fifo_stats(*dir);
    out_.emit_line("chars=" + std::to_string(fs.characters) +
                   " matches=" + std::to_string(fs.matches) +
                   " injections=" + std::to_string(fs.injections) +
                   " forced=" + std::to_string(fs.forced));
    out_.emit_raw(device_.stream_stats(*dir).render());
    ok();
    return;
  }
  if (cmd == "CAPT") {
    out_.emit_raw(device_.capture(*dir).render());
    ok();
    return;
  }

  // The rest mutate the direction's configuration.
  InjectorConfig cfg = device_.config(*dir);
  if (cmd == "MODE") {
    if (tok.size() < 3) return err("missing mode");
    const auto m = parse_match_mode(tok[2]);
    if (!m) return err("bad mode '" + tok[2] + "'");
    cfg.match_mode = *m;
  } else if (cmd == "CORR") {
    if (tok.size() < 3) return err("missing corrupt mode");
    const auto m = parse_corrupt_mode(tok[2]);
    if (!m) return err("bad corrupt mode '" + tok[2] + "'");
    cfg.corrupt_mode = *m;
  } else if (cmd == "CMPD" || cmd == "CMPM" || cmd == "CORD" || cmd == "CORM") {
    if (tok.size() < 3) return err("missing value");
    const auto v = parse_hex32(tok[2]);
    if (!v) return err("bad hex32 '" + tok[2] + "'");
    if (cmd == "CMPD") cfg.compare_data = *v;
    if (cmd == "CMPM") cfg.compare_mask = *v;
    if (cmd == "CORD") cfg.corrupt_data = *v;
    if (cmd == "CORM") cfg.corrupt_mask = *v;
  } else if (cmd == "CMPC" || cmd == "CORC") {
    if (tok.size() < 4) return err("missing nibbles");
    const auto bits = parse_hex_nibble(tok[2]);
    const auto mask = parse_hex_nibble(tok[3]);
    if (!bits || !mask) return err("bad nibble");
    if (cmd == "CMPC") {
      cfg.compare_ctl = *bits;
      cfg.compare_ctl_mask = *mask;
    } else {
      cfg.corrupt_ctl = *bits;
      cfg.corrupt_ctl_mask = *mask;
    }
  } else if (cmd == "LFSR") {
    if (tok.size() < 3) return err("missing mask");
    const auto v = parse_hex32(tok[2]);
    if (!v || *v > 0xFFFF) return err("bad hex16 '" + tok[2] + "'");
    cfg.lfsr_mask = static_cast<std::uint16_t>(*v);
  } else if (cmd == "CMPS") {
    if (tok.size() < 3) return err("missing stride");
    if (tok[2] == "1") {
      cfg.compare_stride = 1;
    } else if (tok[2] == "4") {
      cfg.compare_stride = 4;
    } else {
      return err("bad stride '" + tok[2] + "'");
    }
  } else if (cmd == "CRCR") {
    if (tok.size() < 3) return err("missing ON/OFF");
    if (tok[2] == "ON") {
      cfg.crc_repatch = true;
    } else if (tok[2] == "OFF") {
      cfg.crc_repatch = false;
    } else {
      return err("bad flag '" + tok[2] + "'");
    }
  } else {
    return err("unknown command '" + cmd + "'");
  }

  device_.apply(*dir, cfg);
  ok();
}

CommHandler::CommHandler(sim::Simulator& simulator, Uart& uart,
                         InjectorDevice& device)
    : spi_(uart), output_(spi_), decoder_(device, output_) {
  (void)simulator;
  // Boot-up: configure the UART, then route its receive interrupts to the
  // command decoder.
  uart.configure();
  spi_.on_rx_byte([this](std::uint8_t byte) { decoder_.feed(byte); });
}

SerialControlHost::SerialControlHost(sim::Simulator& simulator, Uart& uart)
    : simulator_(simulator), uart_(uart) {
  uart_.on_rs232_read([this](std::uint8_t byte) { on_byte(byte); });
}

void SerialControlHost::send_command(std::string line, Callback callback) {
  queue_.push_back(PendingCommand{std::move(line), std::move(callback)});
  pump();
}

void SerialControlHost::pump() {
  if (in_flight_ || queue_.empty()) return;
  in_flight_ = true;
  rx_lines_.clear();
  rx_line_.clear();
  const std::string& line = queue_.front().line;
  for (const char c : line) uart_.rs232_write(static_cast<std::uint8_t>(c));
  uart_.rs232_write('\n');
}

void SerialControlHost::on_byte(std::uint8_t byte) {
  const char c = static_cast<char>(byte);
  if (c != '\n') {
    if (c != '\r') rx_line_ += c;
    return;
  }
  if (rx_line_.empty()) return;
  rx_lines_.push_back(rx_line_);
  const bool terminal = rx_line_ == "OK" || rx_line_.rfind("ERR", 0) == 0;
  rx_line_.clear();
  if (!terminal || !in_flight_) return;

  PendingCommand done = std::move(queue_.front());
  queue_.erase(queue_.begin());
  in_flight_ = false;
  ++completed_;
  auto lines = std::move(rx_lines_);
  rx_lines_.clear();
  if (done.callback) done.callback(std::move(lines));
  // Defer the next command to a fresh event so callbacks can enqueue more.
  simulator_.schedule_in(0, [this] { pump(); });
}

}  // namespace hsfi::core
