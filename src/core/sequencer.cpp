#include "core/sequencer.hpp"

#include <utility>

namespace hsfi::core {

FaultSequencer::FaultSequencer(sim::Simulator& simulator,
                               InjectorDevice& device, Direction direction)
    : simulator_(simulator), device_(device), direction_(direction) {}

FaultSequencer::~FaultSequencer() {
  if (poll_event_ != sim::kInvalidEventId) simulator_.cancel(poll_event_);
}

bool FaultSequencer::load(std::vector<Step> steps) {
  for (const auto& step : steps) {
    if (step.max_injections == 0 && step.max_duration <= 0) return false;
  }
  stop();
  steps_ = std::move(steps);
  current_ = 0;
  return true;
}

void FaultSequencer::start(sim::Duration poll_interval) {
  if (steps_.empty() || running_) return;
  poll_interval_ = poll_interval > 0 ? poll_interval : sim::microseconds(10);
  running_ = true;
  current_ = 0;
  arm_current();
}

void FaultSequencer::stop() {
  running_ = false;
  if (poll_event_ != sim::kInvalidEventId) {
    simulator_.cancel(poll_event_);
    poll_event_ = sim::kInvalidEventId;
  }
  auto cfg = device_.config(direction_);
  cfg.match_mode = MatchMode::kOff;
  device_.apply(direction_, cfg);
}

void FaultSequencer::arm_current() {
  device_.apply(direction_, steps_[current_].config);
  injections_at_arm_ = device_.fifo_stats(direction_).injections;
  armed_at_ = simulator_.now();
  poll_event_ = simulator_.schedule_in(poll_interval_, [this] { poll(); });
}

void FaultSequencer::poll() {
  poll_event_ = sim::kInvalidEventId;
  if (!running_) return;
  const Step& step = steps_[current_];
  const std::uint64_t fired =
      device_.fifo_stats(direction_).injections - injections_at_arm_;
  const bool by_count =
      step.max_injections != 0 && fired >= step.max_injections;
  const bool by_time = step.max_duration > 0 &&
                       simulator_.now() - armed_at_ >= step.max_duration;
  if (by_count || by_time) {
    advance();
    return;
  }
  poll_event_ = simulator_.schedule_in(poll_interval_, [this] { poll(); });
}

void FaultSequencer::advance() {
  const std::size_t done = current_;
  ++current_;
  if (current_ >= steps_.size()) {
    stop();
    current_ = steps_.size();
    if (step_complete_) step_complete_(done);
    return;
  }
  arm_current();
  if (step_complete_) step_complete_(done);
}

FaultSequencer::Progress FaultSequencer::progress() const noexcept {
  Progress p;
  p.steps_total = steps_.size();
  p.steps_completed = current_ > steps_.size() ? steps_.size() : current_;
  p.running = running_;
  if (running_ && current_ < steps_.size()) {
    p.injections_this_step =
        device_.fifo_stats(direction_).injections - injections_at_arm_;
  }
  return p;
}

}  // namespace hsfi::core
