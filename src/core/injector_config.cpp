#include "core/injector_config.hpp"

#include <cstdio>

namespace hsfi::core {

std::string_view to_string(MatchMode m) noexcept {
  switch (m) {
    case MatchMode::kOff: return "OFF";
    case MatchMode::kOn: return "ON";
    case MatchMode::kOnce: return "ONCE";
  }
  return "?";
}

std::string_view to_string(CorruptMode m) noexcept {
  switch (m) {
    case CorruptMode::kToggle: return "TOGGLE";
    case CorruptMode::kReplace: return "REPLACE";
  }
  return "?";
}

std::optional<MatchMode> parse_match_mode(std::string_view s) {
  if (s == "OFF") return MatchMode::kOff;
  if (s == "ON") return MatchMode::kOn;
  if (s == "ONCE") return MatchMode::kOnce;
  return std::nullopt;
}

std::optional<CorruptMode> parse_corrupt_mode(std::string_view s) {
  if (s == "TOGGLE") return CorruptMode::kToggle;
  if (s == "REPLACE") return CorruptMode::kReplace;
  return std::nullopt;
}

std::string describe(const InjectorConfig& config) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "MODE %s CORR %s CMPD %08X CMPM %08X CMPC %X %X "
                "CORD %08X CORM %08X CORC %X %X CRCR %s CMPS %u",
                std::string(to_string(config.match_mode)).c_str(),
                std::string(to_string(config.corrupt_mode)).c_str(),
                config.compare_data, config.compare_mask,
                config.compare_ctl & 0xF, config.compare_ctl_mask & 0xF,
                config.corrupt_data, config.corrupt_mask,
                config.corrupt_ctl & 0xF, config.corrupt_ctl_mask & 0xF,
                config.crc_repatch ? "ON" : "OFF",
                static_cast<unsigned>(config.compare_stride));
  return buf;
}

}  // namespace hsfi::core
