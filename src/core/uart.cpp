#include "core/uart.hpp"

namespace hsfi::core {

Uart::Uart(sim::Simulator& simulator, Config config)
    : simulator_(simulator), config_(config) {}

void Uart::rs232_write(std::uint8_t byte) {
  const sim::SimTime start =
      rx_free_at_ > simulator_.now() ? rx_free_at_ : simulator_.now();
  rx_free_at_ = start + byte_time();
  // After the byte deserializes, the UART shifts it to the FPGA as an SPI
  // frame; the FPGA sees it one SPI frame time later.
  simulator_.schedule_at(rx_free_at_ + config_.spi_frame_time, [this, byte] {
    if (!configured_) return;  // chip idle until the comm handler boots it
    ++to_fpga_;
    if (spi_rx_) spi_rx_(spi_frame(byte));
  });
}

void Uart::spi_tx(std::uint16_t frame) {
  if (!spi_frame_valid(frame)) return;
  const std::uint8_t byte = spi_frame_data(frame);
  const sim::SimTime start =
      tx_free_at_ > simulator_.now() ? tx_free_at_ : simulator_.now();
  tx_free_at_ = start + byte_time();
  simulator_.schedule_at(tx_free_at_, [this, byte] {
    ++to_host_;
    if (rs232_read_) rs232_read_(byte);
  });
}

}  // namespace hsfi::core
