// Data monitoring: capture of the stream surrounding an injection event.
//
// Paper §3.2: "The FPGA can be programmed to keep the bytes surrounding the
// fault injection event, thus giving the user sufficient dynamic state
// information about the environment in which the fault injection was
// performed."
//
// The CaptureBuffer keeps a ring of the most recent characters; when an
// event is triggered it snapshots the pre-context and keeps recording until
// the post-context is full. Completed events are retained (bounded) for
// readout over the serial link.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "link/symbol.hpp"
#include "sim/time.hpp"

namespace hsfi::core {

class CaptureBuffer {
 public:
  struct Params {
    std::size_t pre_context = 16;   ///< characters kept before the event
    std::size_t post_context = 16;  ///< characters recorded after it
    std::size_t max_events = 32;    ///< completed events retained

    bool operator==(const Params&) const = default;
  };

  struct Event {
    sim::SimTime when = 0;
    std::vector<link::Symbol> before;  ///< oldest first, ends at the event
    std::vector<link::Symbol> after;   ///< the event character onward
  };

  CaptureBuffer() : CaptureBuffer(Params{}) {}
  explicit CaptureBuffer(Params params) : params_(params) {}

  /// Feed every character passing the injector (pre-injection view feeds
  /// `before`; the corrupted character itself starts `after`).
  void feed(link::Symbol s, sim::SimTime /*when*/) { feed_one(s); }

  /// Feeds a run of characters known to contain no trigger boundary.
  /// Per-character stepping runs only while an event is still collecting
  /// post-context; once closed (the common case), only the newest
  /// pre_context characters touch the ring.
  void feed_run(std::span<const link::Symbol> symbols);

  /// Mark the character fed *next* as an injection event.
  void trigger(sim::SimTime when);

  [[nodiscard]] const std::vector<Event>& events() const noexcept {
    return events_;
  }

  /// Events lost to resource exhaustion: triggers that arrived while a
  /// previous event was still collecting post-context, plus completed
  /// events discarded because max_events were already retained. Without
  /// this the buffer lies by omission during injection bursts.
  [[nodiscard]] std::uint64_t dropped_events() const noexcept {
    return dropped_events_;
  }

  void clear() noexcept {
    events_.clear();
    ring_.clear();
    open_ = false;
    dropped_events_ = 0;
  }

  /// Render all events as text ("CAPT" serial readout).
  [[nodiscard]] std::string render() const;

 private:
  void feed_one(link::Symbol s);

  Params params_;
  std::deque<link::Symbol> ring_;
  std::vector<Event> events_;
  bool open_ = false;      ///< an event is collecting post-context
  std::uint64_t dropped_events_ = 0;
  Event pending_{};
};

}  // namespace hsfi::core
