#include "core/device.hpp"

#include <utility>
#include <vector>

namespace hsfi::core {

std::string_view to_string(Direction d) noexcept {
  switch (d) {
    case Direction::kLeftToRight: return "L>R";
    case Direction::kRightToLeft: return "R>L";
  }
  return "?";
}

/// One direction of the device: receives bursts on the ingress segment,
/// clocks them through the FIFO injector and (optionally) the CRC
/// repatcher, and retransmits on the egress segment. A drain timer plays
/// the role of the free-running FPGA clock so residual characters (packet
/// tails) leave the FIFO when the wire goes idle.
struct InjectorDevice::Pipeline final : link::SymbolSink {
  sim::Simulator* simulator = nullptr;
  sim::Duration character_period = 0;
  link::Channel* out = nullptr;

  FifoInjector fifo;
  CrcRepatcher repatch;
  CaptureBuffer capture;
  StreamStats stats;
  std::function<void(sim::SimTime)> on_injection;
  sim::EventId drain_event = sim::kInvalidEventId;
  /// Egress staging buffer, reused across bursts/drain ticks so the
  /// steady-state forwarding path allocates nothing per burst.
  std::vector<link::Symbol> scratch;
  /// clock_burst() output, reused across bursts for the same reason.
  FifoInjector::BatchResult batch;

  Pipeline(FifoInjector::Params fp, CaptureBuffer::Params cp)
      : fifo(fp), capture(cp) {}

  void cancel_drain() {
    if (drain_event != sim::kInvalidEventId) {
      simulator->cancel(drain_event);
      drain_event = sim::kInvalidEventId;
    }
  }

  void schedule_drain() {
    if (drain_event != sim::kInvalidEventId || !fifo.pending_payload()) return;
    drain_event = simulator->schedule_in(character_period, [this] {
      drain_event = sim::kInvalidEventId;
      scratch.clear();
      emit(fifo.clock(std::nullopt), simulator->now(), scratch);
      transmit(scratch);
      schedule_drain();
    });
  }

  void emit(const FifoInjector::Result& r, sim::SimTime when,
            std::vector<link::Symbol>& outs) {
    if (r.injected) {
      capture.trigger(when);
      if (on_injection) on_injection(when);
    }
    if (!r.out) return;
    // IDLE characters (the free-running clock's filler) are never placed on
    // the egress channel: our channels model idle wire time implicitly, so
    // transmitting them would consume serialization capacity that the real
    // wire's idles do not (they ARE the idle capacity).
    if (is_idle_character(*r.out)) return;
    repatch.feed_into(*r.out, fifo.config().crc_repatch, outs);
  }

  void transmit(const std::vector<link::Symbol>& outs) {
    if (out != nullptr && !outs.empty()) out->transmit(outs);
  }

  void on_burst(const link::Burst& burst) override {
    cancel_drain();
    scratch.clear();
    scratch.reserve(burst.symbols.size());

    // Batched path: one clock_burst() call runs the whole odd/even pipeline,
    // then the taps replay against it. Per-character semantics (pinned by
    // the clock_burst property test and the golden digests):
    //   - capture/stats feed the *input* symbol stream, which the injector
    //     never mutates (corruption happens to the FIFO-resident copies);
    //   - a trigger at fire index f lands after the capture feed of
    //     symbol f, with the exact arrival timestamp burst.arrival(f);
    //   - the egress stream is the popped characters in order, minus the
    //     IDLE filler, through the CRC repatcher when it is active.
    fifo.clock_burst(burst.symbols, batch);
    stats.feed_burst(burst);

    const std::span<const link::Symbol> in(burst.symbols);
    if (batch.fires.empty()) {
      capture.feed_run(in);
    } else {
      std::size_t prev = 0;
      for (const std::uint32_t f : batch.fires) {
        capture.feed_run(in.subspan(prev, f + 1 - prev));
        const auto when = burst.arrival(f);
        capture.trigger(when);
        if (on_injection) on_injection(when);
        prev = f + 1;
      }
      capture.feed_run(in.subspan(prev));
    }

    if (!fifo.config().crc_repatch && !repatch.has_held()) {
      // Repatch stage is stateless-transparent: strip IDLE filler directly.
      for (const auto s : batch.out) {
        if (!is_idle_character(s)) scratch.push_back(s);
      }
    } else {
      for (const auto s : batch.out) {
        if (is_idle_character(s)) continue;
        repatch.feed_into(s, fifo.config().crc_repatch, scratch);
      }
    }

    transmit(scratch);
    schedule_drain();
  }
};

InjectorDevice::InjectorDevice(sim::Simulator& simulator, std::string name,
                               Config config)
    : simulator_(simulator), name_(std::move(name)), config_(config) {
  for (auto& pipe : pipes_) {
    pipe = std::make_unique<Pipeline>(config_.fifo, config_.capture);
    pipe->simulator = &simulator_;
    pipe->character_period = config_.character_period;
  }
}

InjectorDevice::~InjectorDevice() = default;

void InjectorDevice::attach_left(link::Channel& rx, link::Channel& tx) {
  rx.attach(*pipes_[index(Direction::kLeftToRight)]);
  pipes_[index(Direction::kRightToLeft)]->out = &tx;
}

void InjectorDevice::attach_right(link::Channel& rx, link::Channel& tx) {
  rx.attach(*pipes_[index(Direction::kRightToLeft)]);
  pipes_[index(Direction::kLeftToRight)]->out = &tx;
}

void InjectorDevice::apply(Direction d, const InjectorConfig& config) {
  auto& pipe = *pipes_[index(d)];
  pipe.fifo.config() = config;
  pipe.fifo.rearm();
  if (trace_ && trace_->enabled(sim::LogLevel::kInfo)) {
    trace_->add(simulator_.now(), sim::LogLevel::kInfo, name_,
                std::string(to_string(d)) + " configured: " +
                    describe(config));
  }
}

const InjectorConfig& InjectorDevice::config(Direction d) const {
  return pipes_[index(d)]->fifo.config();
}

void InjectorDevice::inject_now(Direction d) {
  pipes_[index(d)]->fifo.inject_now();
}

void InjectorDevice::rearm(Direction d) { pipes_[index(d)]->fifo.rearm(); }

const FifoInjector::Stats& InjectorDevice::fifo_stats(Direction d) const {
  return pipes_[index(d)]->fifo.stats();
}

const CaptureBuffer& InjectorDevice::capture(Direction d) const {
  return pipes_[index(d)]->capture;
}

const StreamStats& InjectorDevice::stream_stats(Direction d) const {
  return pipes_[index(d)]->stats;
}

std::uint64_t InjectorDevice::frames_crc_patched(Direction d) const {
  return pipes_[index(d)]->repatch.frames_patched();
}

void InjectorDevice::set_injection_hook(InjectionHook hook) {
  for (const auto d : {Direction::kLeftToRight, Direction::kRightToLeft}) {
    auto& pipe = *pipes_[index(d)];
    if (!hook) {
      pipe.on_injection = nullptr;
    } else {
      pipe.on_injection = [d, hook](sim::SimTime when) { hook(d, when); };
    }
  }
}

void InjectorDevice::clear_stats() {
  for (auto& pipe : pipes_) {
    pipe->fifo.clear_stats();
    pipe->stats.clear();
    pipe->capture.clear();
  }
}

InjectorDevice::State InjectorDevice::capture_state() const {
  State state;
  for (std::size_t i = 0; i < pipes_.size(); ++i) {
    const Pipeline& pipe = *pipes_[i];
    state.pipes[i].fifo = pipe.fifo;
    state.pipes[i].repatch = pipe.repatch;
    state.pipes[i].capture = pipe.capture;
    state.pipes[i].stats = pipe.stats.capture_state();
    state.pipes[i].drain_event = pipe.drain_event;
  }
  return state;
}

void InjectorDevice::restore_state(const State& state) {
  for (std::size_t i = 0; i < pipes_.size(); ++i) {
    Pipeline& pipe = *pipes_[i];
    pipe.fifo = state.pipes[i].fifo;
    pipe.repatch = state.pipes[i].repatch;
    pipe.capture = state.pipes[i].capture;
    pipe.stats.restore_state(state.pipes[i].stats);
    pipe.drain_event = state.pipes[i].drain_event;
  }
}

}  // namespace hsfi::core
