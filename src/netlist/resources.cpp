#include "netlist/resources.hpp"

namespace hsfi::netlist {

void EntityModel::add(std::string block, Resources r) {
  blocks_.push_back(Block{std::move(block), r});
}

void EntityModel::registers(std::string block, std::int64_t bits) {
  add(std::move(block),
      Resources{/*gates=*/bits / 8, /*fg=*/0, /*mux=*/0, /*dff=*/bits});
}

void EntityModel::counter(std::string block, std::int64_t bits) {
  add(std::move(block), Resources{bits, bits, 0, bits});
}

void EntityModel::lut_logic(std::string block, std::int64_t luts) {
  add(std::move(block), Resources{luts, luts, 0, 0});
}

void EntityModel::comparator(std::string block, std::int64_t bits) {
  // (a XOR b) AND mask per pair of bits, then an AND-reduce on the carry
  // chain (cheap in gate-equivalents).
  const std::int64_t luts = bits / 2 + (bits + 7) / 8;
  add(std::move(block), Resources{luts / 2, luts, 0, 0});
}

void EntityModel::mux_bus(std::string block, std::int64_t width,
                          std::int64_t ways) {
  const std::int64_t muxes = width * (ways > 1 ? ways - 1 : 0);
  add(std::move(block), Resources{0, 0, muxes, 0});
}

void EntityModel::distributed_ram(std::string block, std::int64_t width,
                                  std::int64_t depth, bool dual_port) {
  const std::int64_t luts_per_bit = ((depth + 15) / 16) * (dual_port ? 2 : 1);
  const std::int64_t luts = width * luts_per_bit;
  // Address decode beyond 16 deep uses dedicated muxes.
  const std::int64_t muxes = depth > 16 ? width * (depth / 16 - 1) : 0;
  add(std::move(block), Resources{luts / 2, luts, muxes, 0});
}

void EntityModel::fsm(std::string block, std::int64_t states,
                      std::int64_t output_luts) {
  add(std::move(block),
      Resources{states + output_luts, states + output_luts, 0, states});
}

Resources EntityModel::total() const {
  Resources r;
  for (const auto& b : blocks_) r += b.resources;
  return r;
}

}  // namespace hsfi::netlist
