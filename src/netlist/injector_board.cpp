#include "netlist/injector_board.hpp"

#include <cstdio>

namespace hsfi::netlist {

namespace {

Table1Row clck_gen() {
  EntityModel m("Clck_gen");
  m.counter("odd/even divider", 6);
  m.registers("phase registers", 3);
  m.fsm("phase control", 2, 3);
  m.lut_logic("reset synchronizer", 2);
  m.mux_bus("clock select", 1, 2);
  return Table1Row{std::move(m), Resources{10, 15, 1, 11}, 1};
}

Table1Row comm() {
  EntityModel m("Comm");
  m.fsm("interrupt dispatch", 8, 24);
  m.registers("byte buffers", 16);
  m.registers("configuration flags", 7);
  m.lut_logic("UART boot configuration", 30);
  m.comparator("address decode", 16);
  m.lut_logic("handshake logic", 24);
  m.mux_bus("internal bus mux", 3, 4);
  return Table1Row{std::move(m), Resources{94, 100, 9, 31}, 1};
}

Table1Row inst_dec() {
  EntityModel m("Inst_dec");
  // "The command decoder is a large finite-state machine (FSM)".
  m.fsm("command FSM (one-hot)", 40, 110);
  m.registers("ASCII line buffer (16 chars)", 128);
  m.registers("token latch", 32);
  m.registers("shadow configuration staging", 80);
  m.comparator("keyword match", 64);
  m.lut_logic("hex field parser", 60);
  m.counter("field counter", 6);
  m.mux_bus("operand select", 8, 3);
  m.mux_bus("direction select", 1, 2);
  return Table1Row{std::move(m), Resources{259, 275, 17, 286}, 1};
}

Table1Row out_gen() {
  EntityModel m("Out_gen");
  m.fsm("response FSM", 10, 40);
  m.registers("character latch", 5);
  m.lut_logic("ASCII formatting table", 28);
  return Table1Row{std::move(m), Resources{78, 80, 0, 15}, 1};
}

Table1Row spi() {
  EntityModel m("SPI");
  m.registers("tx shift register", 16);
  m.registers("rx shift register", 16);
  m.counter("bit counter", 5);
  m.registers("status flags", 5);
  m.lut_logic("shift control", 50);
  m.comparator("frame boundary detect", 16);
  m.mux_bus("io select", 2, 4);
  return Table1Row{std::move(m), Resources{66, 69, 6, 42}, 1};
}

Table1Row fifo_inject() {
  EntityModel m("FIFO_Inject");
  // One direction of the paper's Figs. 2/3 datapath; the row is doubled
  // ("two instances of the FIFO injector were needed").
  m.distributed_ram("dual-port FIFO RAM (36 x 64)", 36, 64,
                    /*dual_port=*/true);
  m.registers("compare window shift registers", 36);
  m.registers("compare data + mask", 72);
  m.registers("corrupt data + mask", 72);
  m.registers("control sideband vectors", 16);
  m.registers("inject pipeline (3 stages)", 108);
  m.counter("write pointer", 6);
  m.counter("read pointer", 6);
  m.counter("match counter", 32);
  m.counter("inject counter", 32);
  m.comparator("masked window compare", 72);
  m.lut_logic("toggle/replace corrupt network", 144);
  m.lut_logic("CRC-8 repatch (dual running CRC)", 90);
  m.lut_logic("trigger/once/inject-now control", 80);
  m.lut_logic("framing tracker", 89);
  m.lut_logic("drain control", 60);
  m.fsm("phase control", 8, 20);
  m.registers("status flags", 6);
  m.mux_bus("corrupt write-back select", 36, 2);
  m.mux_bus("inject source select", 31, 2);
  return Table1Row{std::move(m), Resources{1768, 1800, 350, 788}, 2};
}

}  // namespace

std::vector<Table1Row> injector_fpga_entities() {
  std::vector<Table1Row> rows;
  rows.push_back(clck_gen());
  rows.push_back(comm());
  rows.push_back(inst_dec());
  rows.push_back(out_gen());
  rows.push_back(spi());
  rows.push_back(fifo_inject());
  return rows;
}

Resources paper_table1_total() { return Resources{2275, 2339, 383, 1173}; }

std::string render_table1(const std::vector<Table1Row>& rows) {
  std::string out;
  char buf[256];
  const auto line = [&](const char* name, const Resources& est,
                        const Resources& paper) {
    const auto dev = [](std::int64_t e, std::int64_t p) {
      return p == 0 ? 0.0
                    : 100.0 * (static_cast<double>(e - p) /
                               static_cast<double>(p));
    };
    std::snprintf(buf, sizeof buf,
                  "%-12s %6lld %6lld %+6.1f%% | %6lld %6lld %+6.1f%% | "
                  "%5lld %5lld %+6.1f%% | %6lld %6lld %+6.1f%%\n",
                  name, static_cast<long long>(est.gates),
                  static_cast<long long>(paper.gates),
                  dev(est.gates, paper.gates),
                  static_cast<long long>(est.function_generators),
                  static_cast<long long>(paper.function_generators),
                  dev(est.function_generators, paper.function_generators),
                  static_cast<long long>(est.multiplexors),
                  static_cast<long long>(paper.multiplexors),
                  dev(est.multiplexors, paper.multiplexors),
                  static_cast<long long>(est.d_flip_flops),
                  static_cast<long long>(paper.d_flip_flops),
                  dev(est.d_flip_flops, paper.d_flip_flops));
    out += buf;
  };
  out +=
      "Entity       gates (est/paper/dev) | funcgen (est/paper/dev) | "
      "mux (est/paper/dev) | dff (est/paper/dev)\n";
  Resources est_total;
  Resources paper_total;
  for (const auto& r : rows) {
    line(r.model.name().c_str(), r.estimated(), r.paper);
    est_total += r.estimated();
    paper_total += r.paper;
  }
  line("Total", est_total, paper_total);
  return out;
}

}  // namespace hsfi::netlist
