// Structural models of the six synthesized FPGA entities from the paper's
// Table 1, built from the architecture §3.3 describes, plus the published
// synthesis numbers for comparison.
//
// "The totals were calculated assuming that two instances of the FIFO
// injector were needed" — `injector_fpga_entities` therefore returns the
// FIFO injector row already doubled, like the paper's table.
#pragma once

#include <string>
#include <vector>

#include "netlist/resources.hpp"

namespace hsfi::netlist {

/// One Table 1 row: our structural estimate plus the paper's numbers.
struct Table1Row {
  EntityModel model;
  Resources paper;
  std::int64_t instances = 1;  ///< 2 for FIFO_Inject

  [[nodiscard]] Resources estimated() const {
    return model.total() * instances;
  }
};

/// Builds all six entities (Clck_gen, Comm, Inst_dec, Out_gen, SPI,
/// FIFO_Inject) in the paper's row order.
[[nodiscard]] std::vector<Table1Row> injector_fpga_entities();

/// The published totals row (gates 2275, FGs 2339, muxes 383, D-FFs 1173).
[[nodiscard]] Resources paper_table1_total();

/// Renders the side-by-side table (estimated vs published, with per-cell
/// deviation) that bench_table1_synthesis prints.
[[nodiscard]] std::string render_table1(const std::vector<Table1Row>& rows);

}  // namespace hsfi::netlist
