// FPGA resource accounting, in the units of the paper's Table 1:
// gate equivalents, function generators (Virtex 4-input LUTs), dedicated
// multiplexors, and D flip-flops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hsfi::netlist {

struct Resources {
  std::int64_t gates = 0;
  std::int64_t function_generators = 0;
  std::int64_t multiplexors = 0;
  std::int64_t d_flip_flops = 0;

  Resources& operator+=(const Resources& o) noexcept {
    gates += o.gates;
    function_generators += o.function_generators;
    multiplexors += o.multiplexors;
    d_flip_flops += o.d_flip_flops;
    return *this;
  }
  friend Resources operator+(Resources a, const Resources& b) noexcept {
    a += b;
    return a;
  }
  friend Resources operator*(Resources r, std::int64_t n) noexcept {
    r.gates *= n;
    r.function_generators *= n;
    r.multiplexors *= n;
    r.d_flip_flops *= n;
    return r;
  }
  friend bool operator==(const Resources&, const Resources&) = default;
};

/// A synthesized entity: a named collection of structural blocks.
class EntityModel {
 public:
  explicit EntityModel(std::string name) : name_(std::move(name)) {}

  /// Records a block with explicit resources.
  void add(std::string block, Resources r);

  // ---- structural primitives (Virtex-era cost model) ----
  /// Plain register bank: n flip-flops plus clock-enable gating.
  void registers(std::string block, std::int64_t bits);
  /// Binary counter: increment logic is one LUT per bit.
  void counter(std::string block, std::int64_t bits);
  /// Random logic measured in 4-input LUTs (1 gate-equivalent each in the
  /// table's accounting).
  void lut_logic(std::string block, std::int64_t luts);
  /// Masked equality comparator over `bits` with AND-reduction.
  void comparator(std::string block, std::int64_t bits);
  /// Data selector: width x (ways-1) dedicated MUX primitives.
  void mux_bus(std::string block, std::int64_t width, std::int64_t ways);
  /// LUT (distributed) RAM, 16 bits deep per LUT; dual-port doubles LUTs.
  void distributed_ram(std::string block, std::int64_t width,
                       std::int64_t depth, bool dual_port);
  /// One-hot FSM: one flip-flop per state plus next-state/output logic.
  void fsm(std::string block, std::int64_t states, std::int64_t output_luts);

  [[nodiscard]] Resources total() const;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  struct Block {
    std::string label;
    Resources resources;
  };
  [[nodiscard]] const std::vector<Block>& blocks() const noexcept {
    return blocks_;
  }

 private:
  std::string name_;
  std::vector<Block> blocks_;
};

}  // namespace hsfi::netlist
