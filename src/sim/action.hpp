// Move-only callable with small-buffer optimization for the event kernel.
//
// Every scheduled event used to carry a std::function<void()>, whose copyable
// type-erasure forces a heap allocation for anything bigger than two words.
// The kernel's common case — a lambda capturing `this` plus a handful of
// pointers or a pooled Burst — fits comfortably in a fixed inline buffer, so
// Action stores callables up to kInlineSize bytes in place and only falls
// back to the heap for oversized or throwing-move captures. Actions are
// move-only (an event fires exactly once; nothing ever needs to copy one),
// which also admits move-only captures that std::function rejects.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace hsfi::sim {

class Action {
 public:
  /// Sized for the largest hot-path capture: a Channel burst-delivery lambda
  /// (this + sink + a 40-byte Burst = 56 bytes). Total Action = 64 bytes.
  static constexpr std::size_t kInlineSize = 56;

  Action() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Action> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  Action(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  Action(Action&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  Action& operator=(Action&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;

  ~Action() { reset(); }

  /// Precondition: *this holds a callable.
  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Destroys the held callable (releasing any captured resources) and
  /// leaves *this empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Whether clone() can duplicate the held callable. Empty Actions are
  /// trivially clonable; a non-empty Action is clonable iff the erased
  /// callable is copy-constructible.
  [[nodiscard]] bool clonable() const noexcept {
    return ops_ == nullptr || ops_->clone != nullptr;
  }

  /// Duplicates the held callable (EventQueue snapshots copy every pending
  /// event's action this way). Precondition: clonable().
  [[nodiscard]] Action clone() const {
    Action out;
    if (ops_ != nullptr) {
      ops_->clone(out.storage_, storage_);
      out.ops_ = ops_;
    }
    return out;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable into `dst` from `src` and destroys the
    /// `src` copy (for heap-held callables, just moves the pointer).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
    /// Copy-constructs the callable into `dst` from `src`; nullptr when the
    /// callable is move-only (such an action cannot be snapshotted).
    void (*clone)(void* dst, const void* src);
  };

  template <typename Fn>
  static constexpr auto clone_inline() {
    if constexpr (std::is_copy_constructible_v<Fn>) {
      return +[](void* dst, const void* src) {
        ::new (dst) Fn(*std::launder(reinterpret_cast<const Fn*>(src)));
      };
    } else {
      return static_cast<void (*)(void*, const void*)>(nullptr);
    }
  }

  template <typename Fn>
  static constexpr auto clone_heap() {
    if constexpr (std::is_copy_constructible_v<Fn>) {
      return +[](void* dst, const void* src) {
        ::new (dst)
            Fn*(new Fn(**std::launder(reinterpret_cast<Fn* const*>(src))));
      };
    } else {
      return static_cast<void (*)(void*, const void*)>(nullptr);
    }
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
      [](void* dst, void* src) noexcept {
        Fn* s = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) noexcept { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); },
      clone_inline<Fn>(),
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* p) noexcept { delete *std::launder(reinterpret_cast<Fn**>(p)); },
      clone_heap<Fn>(),
  };

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace hsfi::sim
