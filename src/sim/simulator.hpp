// The simulation scheduler.
//
// A Simulator owns the event queue and the simulated clock. Entities capture
// a Simulator& and schedule callbacks; the main loop pops events in time
// order and advances the clock. Single-threaded by design (CP.1 does not
// apply inside the deterministic core; campaign-level parallelism, if any,
// runs whole simulations per thread).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace hsfi::sim {

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` to run `delay` picoseconds from now (delay >= 0;
  /// negative delays are clamped to zero to keep time monotone).
  EventId schedule_in(Duration delay, EventQueue::Action action) {
    return queue_.schedule(now_ + (delay > 0 ? delay : 0), std::move(action));
  }

  /// Schedules `action` at absolute time `when` (clamped to now()).
  EventId schedule_at(SimTime when, EventQueue::Action action) {
    return queue_.schedule(when > now_ ? when : now_, std::move(action));
  }

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs until the queue drains or the clock passes `until`.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Runs until the queue drains.
  std::uint64_t run() { return run_until(std::numeric_limits<SimTime>::max()); }

  /// Executes at most one event. Returns false if the queue was empty or the
  /// next event lies beyond `until` (clock is then advanced to `until`).
  bool step(SimTime until = std::numeric_limits<SimTime>::max());

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const noexcept { return executed_; }

  /// Called before each event executes with (fire time, execution ordinal,
  /// schedule ordinal). Both ordinals are 1-based and independent of the
  /// EventId encoding, so a digest over the observed tuples is comparable
  /// across kernel implementations — the golden-trace tests rely on this
  /// to catch any change in event delivery order.
  using EventObserver =
      std::function<void(SimTime when, std::uint64_t exec_seq,
                         std::uint64_t schedule_seq)>;
  void set_event_observer(EventObserver observer) {
    observer_ = std::move(observer);
  }

  /// Kernel state at a point in time: the queue (with deep-copied actions),
  /// the clock, and the executed-event counter. The counter is part of the
  /// state because campaign records report executed-event *deltas*; a fork
  /// must see the same delta a cold start would.
  struct Snapshot {
    EventQueue::Snapshot queue;
    SimTime now = 0;
    std::uint64_t executed = 0;
  };

  /// Captures the kernel verbatim (see EventQueue::snapshot for the
  /// clonability requirement on pending actions).
  [[nodiscard]] Snapshot snapshot() const {
    return Snapshot{queue_.snapshot(), now_, executed_};
  }

  /// Rewinds the kernel to `snap`. Clears any pending stop() request; the
  /// event observer, if any, stays attached. Only meaningful on the same
  /// object graph the snapshot was captured from (pending actions embed
  /// entity pointers).
  void restore(const Snapshot& snap) {
    queue_.restore(snap.queue);
    now_ = snap.now;
    executed_ = snap.executed;
    stop_requested_ = false;
  }

 private:
  EventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  EventObserver observer_;
};

}  // namespace hsfi::sim
