// Simulation time types.
//
// All simulation time is kept as a signed 64-bit count of picoseconds.
// Picosecond resolution is needed because Myrinet character periods are
// fractional in nanoseconds (6.25 ns at 160 MB/s); a signed 64-bit count
// still covers ~106 days of simulated time.
#pragma once

#include <cstdint>
#include <string>

namespace hsfi::sim {

/// A point in simulated time, in picoseconds since simulation start.
using SimTime = std::int64_t;

/// A span of simulated time, in picoseconds.
using Duration = std::int64_t;

inline constexpr Duration kPicosecond = 1;
inline constexpr Duration kNanosecond = 1'000;
inline constexpr Duration kMicrosecond = 1'000'000;
inline constexpr Duration kMillisecond = 1'000'000'000;
inline constexpr Duration kSecond = 1'000'000'000'000;

constexpr Duration picoseconds(std::int64_t n) { return n; }
constexpr Duration nanoseconds(std::int64_t n) { return n * kNanosecond; }
constexpr Duration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }

constexpr double to_nanoseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosecond);
}
constexpr double to_microseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}
constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Duration of one transmitted character at a byte rate of `mbytes_per_s`.
/// Myrinet at 80 MB/s => 12.5 ns; at 160 MB/s => 6.25 ns.
constexpr Duration character_period_for_mbytes(std::int64_t mbytes_per_s) {
  return kSecond / (mbytes_per_s * 1'000'000);
}

/// Human-readable rendering, e.g. "12.5 ns", "1.28 ms", for logs and reports.
std::string format_time(SimTime t);

}  // namespace hsfi::sim
