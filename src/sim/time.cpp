#include "sim/time.hpp"

#include <array>
#include <cstdio>

namespace hsfi::sim {

std::string format_time(SimTime t) {
  std::array<char, 64> buf{};
  const double abs_t = t < 0 ? -static_cast<double>(t) : static_cast<double>(t);
  int n = 0;
  if (abs_t >= static_cast<double>(kSecond)) {
    n = std::snprintf(buf.data(), buf.size(), "%.6g s", to_seconds(t));
  } else if (abs_t >= static_cast<double>(kMillisecond)) {
    n = std::snprintf(buf.data(), buf.size(), "%.6g ms", to_milliseconds(t));
  } else if (abs_t >= static_cast<double>(kMicrosecond)) {
    n = std::snprintf(buf.data(), buf.size(), "%.6g us", to_microseconds(t));
  } else {
    n = std::snprintf(buf.data(), buf.size(), "%.6g ns", to_nanoseconds(t));
  }
  return std::string(buf.data(), n > 0 ? static_cast<std::size_t>(n) : 0);
}

}  // namespace hsfi::sim
