// Deterministic discrete-event queue.
//
// Events at equal timestamps are delivered in scheduling order (a strictly
// increasing sequence number breaks ties), so a simulation run is a pure
// function of its inputs and seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace hsfi::sim {

/// Handle used to cancel a scheduled event. Cancellation is lazy: the entry
/// stays in the heap but is discarded when it reaches the front.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when` and returns its id.
  EventId schedule(SimTime when, Action action);

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid id is a no-op.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return pending_.size(); }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  struct Fired {
    SimTime when = 0;
    EventId id = kInvalidEventId;
    Action action;
  };

  /// Removes and returns the earliest live event. Precondition: !empty().
  Fired pop();

 private:
  struct Entry {
    SimTime when = 0;
    EventId id = kInvalidEventId;
    Action action;
  };

  static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.id > b.id;
  }

  /// Pops cancelled entries off the front of the heap.
  void drop_cancelled_front();

  std::vector<Entry> heap_;
  std::unordered_set<EventId> pending_;  // ids scheduled and not yet fired/cancelled
  EventId next_id_ = 1;
};

}  // namespace hsfi::sim
