// Deterministic discrete-event queue.
//
// Events at equal timestamps are delivered in scheduling order (a strictly
// increasing sequence number breaks ties), so a simulation run is a pure
// function of its inputs and seeds.
//
// Internals (DESIGN.md "Kernel internals"): actions live in generation-
// stamped slots; the heap orders 24-byte trivially-copyable entries
// {when, seq, slot, gen}. Cancellation bumps the slot's generation — O(1),
// no hash lookup — and stale heap entries (whose stamped generation no
// longer matches the slot) are discarded lazily when they surface at the
// front. Slots are recycled through an intrusive freelist, so steady-state
// scheduling allocates nothing.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace hsfi::sim {

/// Handle used to cancel a scheduled event: (slot index << 32) | generation.
/// A generation is never 0 and a slot's generation bumps every time the
/// event in it fires or is cancelled, so a stale handle can only collide
/// with a live one after 2^32 reuses of a single slot.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Action = sim::Action;

  /// Heap entry: trivially copyable so heap sifts are plain 24-byte moves
  /// (the action itself never moves once parked in its slot). Public only
  /// because Snapshot carries the heap verbatim.
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// Schedules `action` at absolute time `when` and returns its id.
  EventId schedule(SimTime when, Action action);

  /// Cancels a pending event in O(1). Cancelling an already-fired,
  /// already-cancelled, or invalid id is a no-op.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] SimTime next_time();

  struct Fired {
    SimTime when = 0;
    EventId id = kInvalidEventId;
    /// 1-based schedule ordinal. Representation-independent provenance:
    /// equal-time events fire in increasing seq, and determinism digests
    /// key on it rather than on the slot/generation id encoding.
    std::uint64_t seq = 0;
    Action action;
  };

  /// Removes and returns the earliest live event. Precondition: !empty().
  Fired pop();

  /// Full queue state at a point in time: heap order, slot generations, the
  /// freelist chain, the tie-break counter, and a deep copy of every parked
  /// action. Restoring it into a queue replays the identical
  /// (when, seq, slot, gen) pop order. Move-only (actions are), and
  /// restorable any number of times.
  struct Snapshot {
    struct SlotState {
      Action action;  ///< empty for retired slots
      std::uint32_t gen = 1;
      std::uint32_t next_free = 0xFFFFFFFFu;
    };
    std::vector<Entry> heap;
    std::vector<SlotState> slots;
    std::uint32_t free_head = 0xFFFFFFFFu;
    std::size_t live = 0;
    std::uint64_t next_seq = 1;
  };

  /// Captures the queue verbatim. Throws std::logic_error if any pending
  /// action holds a move-only callable (see Action::clonable) — kernel
  /// events are expected to capture pointers and copyable values only.
  [[nodiscard]] Snapshot snapshot() const;

  /// Rewinds the queue to `snap` (deep-copying its actions, so the same
  /// snapshot can seed many forks). Actions captured in the snapshot keep
  /// their embedded pointers, so restore only makes sense into the same
  /// object graph the snapshot was taken from.
  void restore(const Snapshot& snap);

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Slot {
    Action action;
    std::uint32_t gen = 1;
    std::uint32_t next_free = kNoSlot;
  };

  static bool later(const Entry& a, const Entry& b) noexcept {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) noexcept {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  /// Retires a slot after its event fired or was cancelled: bumps the
  /// generation (skipping 0, the invalid marker) and chains it on the
  /// freelist.
  void retire(std::uint32_t slot_index) noexcept;

  /// Pops entries whose generation stamp no longer matches their slot
  /// (cancelled events) off the front of the heap.
  void drop_stale_front();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t live_ = 0;        ///< scheduled and not yet fired/cancelled
  std::uint64_t next_seq_ = 1;
};

}  // namespace hsfi::sim
