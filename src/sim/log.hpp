// Lightweight trace logging for simulation entities.
//
// A TraceLog collects (time, component, message) records. Benches and tests
// either disable it (default) or attach it to entities whose behavior they
// want to trace; examples print it. This replaces scattered stdout writes so
// simulation output is deterministic and testable.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace hsfi::sim {

enum class LogLevel : std::uint8_t { kTrace, kInfo, kWarn, kError };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

struct LogRecord {
  SimTime when = 0;
  LogLevel level = LogLevel::kInfo;
  std::string component;
  std::string message;
};

class TraceLog {
 public:
  /// Records below `threshold` are discarded at the call site.
  explicit TraceLog(LogLevel threshold = LogLevel::kInfo) noexcept
      : threshold_(threshold) {}

  void set_threshold(LogLevel threshold) noexcept { threshold_ = threshold; }
  [[nodiscard]] LogLevel threshold() const noexcept { return threshold_; }

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return level >= threshold_;
  }

  void add(SimTime when, LogLevel level, std::string component,
           std::string message) {
    if (!enabled(level)) return;
    records_.push_back(
        LogRecord{when, level, std::move(component), std::move(message)});
    if (sink_) sink_(records_.back());
  }

  /// Optional live sink (e.g. print-to-stderr in examples).
  void set_sink(std::function<void(const LogRecord&)> sink) {
    sink_ = std::move(sink);
  }

  [[nodiscard]] const std::vector<LogRecord>& records() const noexcept {
    return records_;
  }
  void clear() noexcept { records_.clear(); }

  /// Renders all records as "[time] LEVEL component: message" lines.
  [[nodiscard]] std::string render() const;

 private:
  LogLevel threshold_;
  std::vector<LogRecord> records_;
  std::function<void(const LogRecord&)> sink_;
};

}  // namespace hsfi::sim
