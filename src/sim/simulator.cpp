#include "sim/simulator.hpp"

namespace hsfi::sim {

bool Simulator::step(SimTime until) {
  if (queue_.empty()) return false;
  if (queue_.next_time() > until) {
    now_ = until;
    return false;
  }
  auto fired = queue_.pop();
  now_ = fired.when;
  ++executed_;
  if (observer_) observer_(fired.when, executed_, fired.seq);
  fired.action();
  return true;
}

std::uint64_t Simulator::run_until(SimTime until) {
  stop_requested_ = false;
  std::uint64_t n = 0;
  while (!stop_requested_ && step(until)) ++n;
  return n;
}

}  // namespace hsfi::sim
