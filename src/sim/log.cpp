#include "sim/log.hpp"

namespace hsfi::sim {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::string TraceLog::render() const {
  std::string out;
  for (const auto& r : records_) {
    out += '[';
    out += format_time(r.when);
    out += "] ";
    out += to_string(r.level);
    out += ' ';
    out += r.component;
    out += ": ";
    out += r.message;
    out += '\n';
  }
  return out;
}

}  // namespace hsfi::sim
