#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hsfi::sim {

EventId EventQueue::schedule(SimTime when, Action action) {
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, id, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), later);
  pending_.insert(id);
  return id;
}

void EventQueue::cancel(EventId id) {
  // Erasing from pending_ is all that is needed: entries whose id is no
  // longer pending are skipped when they surface at the heap front.
  pending_.erase(id);
}

void EventQueue::drop_cancelled_front() {
  while (!heap_.empty() && !pending_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_cancelled_front();
  assert(!heap_.empty());
  return heap_.front().when;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_front();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), later);
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  pending_.erase(e.id);
  return Fired{e.when, e.id, std::move(e.action)};
}

}  // namespace hsfi::sim
