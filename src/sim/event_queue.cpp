#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace hsfi::sim {

EventId EventQueue::schedule(SimTime when, Action action) {
  std::uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.action = std::move(action);
  const std::uint64_t seq = next_seq_++;
  heap_.push_back(Entry{when, seq, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), later);
  ++live_;
  return make_id(slot, s.gen);
}

void EventQueue::retire(std::uint32_t slot_index) noexcept {
  Slot& s = slots_[slot_index];
  if (++s.gen == 0) s.gen = 1;  // 0 is reserved for kInvalidEventId
  s.next_free = free_head_;
  free_head_ = slot_index;
}

void EventQueue::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (slot >= slots_.size() || slots_[slot].gen != gen || gen == 0) return;
  // Release captured resources now; the heap entry goes stale (its stamped
  // generation no longer matches) and is dropped when it reaches the front.
  slots_[slot].action.reset();
  retire(slot);
  --live_;
}

void EventQueue::drop_stale_front() {
  while (!heap_.empty() &&
         slots_[heap_.front().slot].gen != heap_.front().gen) {
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_stale_front();
  assert(!heap_.empty());
  return heap_.front().when;
}

EventQueue::Fired EventQueue::pop() {
  drop_stale_front();
  assert(!heap_.empty());
  const Entry e = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), later);
  heap_.pop_back();
  Fired fired{e.when, make_id(e.slot, e.gen), e.seq,
              std::move(slots_[e.slot].action)};
  retire(e.slot);
  --live_;
  return fired;
}

EventQueue::Snapshot EventQueue::snapshot() const {
  Snapshot snap;
  snap.heap = heap_;
  snap.slots.reserve(slots_.size());
  for (const Slot& s : slots_) {
    if (!s.action.clonable()) {
      throw std::logic_error(
          "EventQueue::snapshot: a pending action holds a move-only "
          "callable and cannot be captured");
    }
    Snapshot::SlotState state;
    state.action = s.action.clone();
    state.gen = s.gen;
    state.next_free = s.next_free;
    snap.slots.push_back(std::move(state));
  }
  snap.free_head = free_head_;
  snap.live = live_;
  snap.next_seq = next_seq_;
  return snap;
}

void EventQueue::restore(const Snapshot& snap) {
  heap_ = snap.heap;
  slots_.clear();
  slots_.reserve(snap.slots.size());
  for (const Snapshot::SlotState& state : snap.slots) {
    Slot s;
    s.action = state.action.clone();
    s.gen = state.gen;
    s.next_free = state.next_free;
    slots_.push_back(std::move(s));
  }
  free_head_ = snap.free_head;
  live_ = snap.live;
  next_seq_ = snap.next_seq;
}

}  // namespace hsfi::sim
