// Deterministic pseudo-random number generation for simulations.
//
// PCG32 (O'Neill, pcg-random.org, minimal variant): small state, excellent
// statistical quality, and fully reproducible across platforms, which matters
// for campaign repeatability ("each campaign began with the network in a
// known good state").
#pragma once

#include <cstdint>

namespace hsfi::sim {

class Rng {
 public:
  /// Seeds the generator. Distinct streams with the same seed never collide.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept
      : state_(0), inc_((stream << 1u) | 1u) {
    next_u32();
    state_ += seed;
    next_u32();
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() noexcept {
    return (static_cast<std::uint64_t>(next_u32()) << 32) | next_u32();
  }

  /// Uniform integer in [0, bound). bound == 0 returns 0.
  std::uint32_t below(std::uint32_t bound) noexcept {
    if (bound == 0) return 0;
    // Debiased modulo (Lemire-style rejection).
    const std::uint32_t threshold = (0u - bound) % bound;
    for (;;) {
      const std::uint32_t r = next_u32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    if (hi <= lo) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Split into two 32-bit draws only when the span requires it.
    if (span <= 0xFFFFFFFFull) {
      return lo + static_cast<std::int64_t>(below(static_cast<std::uint32_t>(span)));
    }
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

/// SplitMix64 output function (Steele/Lea/Flood): a single avalanche pass
/// with full 64-bit dispersion. Used to derive independent seeds from a
/// counter — the weakness PCG seeding alone would have (nearby seeds produce
/// correlated first draws) is exactly what campaign replicates would hit.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Derives the seed for sub-stream `index` of `base`. Deterministic and
/// order-free: run i of a campaign sweep gets the same seed no matter which
/// worker executes it or in what order runs complete.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base,
                                                  std::uint64_t index) noexcept {
  return splitmix64(base ^ splitmix64(index));
}

}  // namespace hsfi::sim
