// Myrinet host interface (the paper's Fig. 7 LANai-style NIC, simplified).
//
// Transmit: packets queue in a finite send queue and are serialized in
// chunks, pausing between chunks when the far end asserts STOP (the chunk
// size bounds the data in flight after a STOP, playing the role of the
// hardware's wire-side slack).
//
// Receive: the symbol stream is deframed at line rate; each completed frame
// is CRC-checked and its marker byte validated ("If the packet reaches a
// destination interface with the MSB set to one... consumed and handled as
// an error"), then placed in a finite receive ring drained at host speed.
// A frame arriving with the ring full is dropped and counted, like a real
// NIC whose host buffers are exhausted; wire-level STOP/GO originates from
// the switch's symbol-granularity slack buffers, not from the host ring.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "link/channel.hpp"
#include "myrinet/flow_gate.hpp"
#include "myrinet/framing.hpp"
#include "myrinet/packet.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {

class HostInterface final : public link::SymbolSink {
 public:
  struct Config {
    sim::Duration character_period = sim::picoseconds(12'500);
    /// Sender-side STOP decay: 16 character periods.
    sim::Duration short_timeout = sim::picoseconds(12'500) * 16;
    std::size_t tx_queue_frames = 64;
    std::size_t rx_ring_frames = 32;
    /// Transmit chunk between flow-control checks, in symbols.
    std::size_t chunk_symbols = 32;
    std::size_t max_tx_ahead_chars = 64;
    /// Host-side cost to consume one received frame (interrupt + stack).
    sim::Duration rx_processing_time = sim::microseconds(20);

    bool operator==(const Config&) const = default;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;        ///< fully serialized onto the wire
    std::uint64_t tx_queue_drops = 0;     ///< send() refused, queue full
    std::uint64_t frames_delivered = 0;   ///< handed to the host stack
    std::uint64_t crc_errors = 0;
    std::uint64_t marker_errors = 0;      ///< MSB-set marker, consumed as error
    std::uint64_t too_short = 0;
    std::uint64_t ring_overflows = 0;     ///< frame arrived with ring full
  };

  HostInterface(sim::Simulator& simulator, std::string name, Config config);
  ~HostInterface() override;

  HostInterface(const HostInterface&) = delete;
  HostInterface& operator=(const HostInterface&) = delete;

  /// `rx` carries symbols into this interface; `tx` carries symbols out.
  void attach(link::Channel& rx, link::Channel& tx);

  /// Queues a packet for transmission. Returns false (and counts a drop)
  /// when the send queue is full.
  bool send(const Packet& packet);
  bool send_raw(std::vector<std::uint8_t> packet_bytes);

  /// Handler for frames that pass CRC and marker checks, called at host
  /// drain speed (one frame per rx_processing_time).
  using DeliverHandler = std::function<void(Delivered frame, sim::SimTime when)>;
  void on_deliver(DeliverHandler handler) { deliver_ = std::move(handler); }

  /// Receive-side error classes the NIC detects and consumes itself; they
  /// never reach the host stack, so an external monitor (the manifestation
  /// analyzer) can only see them through this hook.
  enum class RxError : std::uint8_t {
    kCrcError = 0,
    kMarkerError,
    kTooShort,
    kRingOverflow,
  };
  using RxErrorHandler = std::function<void(RxError error, sim::SimTime when)>;
  void on_rx_error(RxErrorHandler handler) { rx_error_ = std::move(handler); }

  /// Scenario hook: transform a queued packet's serialized bytes (route
  /// prefix through trailing CRC-8) just before framing onto the wire —
  /// e.g. truncate the payload and repatch the CRC so the shortened frame
  /// is still wire-valid. Like the deliver/rx-error handlers this is
  /// per-run wiring, not snapshot state. Pass nullptr to uninstall.
  using TxMutator =
      std::function<std::vector<std::uint8_t>(std::vector<std::uint8_t>)>;
  void set_tx_mutator(TxMutator mutator) { tx_mutator_ = std::move(mutator); }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t tx_backlog() const noexcept {
    return tx_queue_.size() + (tx_offset_ < tx_current_.size() ? 1u : 0u);
  }
  [[nodiscard]] std::size_t rx_ring_size() const noexcept {
    return rx_ring_.size();
  }

  /// Resets counters and queues to a known-good state between campaign runs.
  void reset_for_campaign();

  /// Snapshot state: both pump flags and the in-flight serialization cursor
  /// are included because the matching pump events sit in the simulator
  /// queue and are restored with it. Handlers (deliver/rx-error) are wiring
  /// and stay attached.
  struct State {
    FlowGate::State gate;
    Deframer::State deframer;
    std::deque<std::vector<std::uint8_t>> tx_queue;
    std::vector<link::Symbol> tx_current;
    std::size_t tx_offset = 0;
    bool tx_pump_scheduled = false;
    std::deque<Delivered> rx_ring;
    bool rx_drain_scheduled = false;
    Stats stats;
  };

  [[nodiscard]] State capture_state() const {
    return State{gate_.capture_state(), deframer_.capture_state(),
                 tx_queue_,  tx_current_,
                 tx_offset_, tx_pump_scheduled_,
                 rx_ring_,   rx_drain_scheduled_,
                 stats_};
  }
  void restore_state(const State& state) {
    gate_.restore_state(state.gate);
    deframer_.restore_state(state.deframer);
    tx_queue_ = state.tx_queue;
    tx_current_ = state.tx_current;
    tx_offset_ = state.tx_offset;
    tx_pump_scheduled_ = state.tx_pump_scheduled;
    rx_ring_ = state.rx_ring;
    rx_drain_scheduled_ = state.rx_drain_scheduled;
    stats_ = state.stats;
  }

  // link::SymbolSink
  void on_burst(const link::Burst& burst) override;

 private:
  void pump_tx();
  void schedule_pump_tx();
  void handle_frame(std::vector<std::uint8_t> frame, sim::SimTime when);
  void schedule_ring_drain();

  sim::Simulator& simulator_;
  std::string name_;
  Config config_;
  link::Channel* tx_ = nullptr;
  FlowGate gate_;
  Deframer deframer_;

  // Transmit side.
  std::deque<std::vector<std::uint8_t>> tx_queue_;
  std::vector<link::Symbol> tx_current_;  // framed symbols of in-flight packet
  std::size_t tx_offset_ = 0;
  bool tx_pump_scheduled_ = false;

  // Receive side.
  std::deque<Delivered> rx_ring_;
  bool rx_drain_scheduled_ = false;

  DeliverHandler deliver_;
  RxErrorHandler rx_error_;
  TxMutator tx_mutator_;
  Stats stats_;
};

}  // namespace hsfi::myrinet
