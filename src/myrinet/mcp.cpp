#include "myrinet/mcp.hpp"

#include <algorithm>
#include <utility>

#include "sim/log.hpp"

namespace hsfi::myrinet {

std::vector<std::uint8_t> make_scout_payload(McpAddress mapper,
                                             std::uint8_t mapper_port) {
  std::vector<std::uint8_t> p;
  p.push_back(static_cast<std::uint8_t>(MappingOp::kScout));
  put_u64(p, mapper);
  p.push_back(mapper_port);
  return p;
}

std::vector<std::uint8_t> make_reply_payload(McpAddress replier,
                                             const EthAddr& eth,
                                             std::uint8_t replier_port) {
  std::vector<std::uint8_t> p;
  p.push_back(static_cast<std::uint8_t>(MappingOp::kReply));
  put_u64(p, replier);
  put_eth(p, eth);
  p.push_back(replier_port);
  return p;
}

std::vector<std::uint8_t> make_announce_payload(McpAddress mapper,
                                                const NetworkMap& map) {
  std::vector<std::uint8_t> p;
  p.push_back(static_cast<std::uint8_t>(MappingOp::kAnnounce));
  put_u64(p, mapper);
  p.push_back(static_cast<std::uint8_t>(map.size()));
  for (const auto& e : map) {
    p.push_back(e.port);
    put_u64(p, e.mcp);
    put_eth(p, e.eth);
  }
  return p;
}

Mcp::Mcp(sim::Simulator& simulator, HostInterface& nic, Config config)
    : simulator_(simulator),
      nic_(nic),
      config_(config),
      rng_(config.seed, config.address) {}

void Mcp::start(sim::Duration phase) {
  simulator_.schedule_in(phase, [this] { begin_round(); });
}

bool Mcp::acting_controller() const noexcept {
  return simulator_.now() >= suppressed_until_;
}

void Mcp::begin_round() {
  // Always reschedule the next period first so mapping survives any path
  // through this round.
  simulator_.schedule_in(config_.map_period, [this] { begin_round(); });

  if (!acting_controller() || round_open_) return;
  ++stats_.rounds_initiated;
  if (trace_ && trace_->enabled(sim::LogLevel::kInfo)) {
    trace_->add(simulator_.now(), sim::LogLevel::kInfo, "mcp",
                "mapping round " + std::to_string(stats_.rounds_initiated) +
                    " initiated by port " +
                    std::to_string(config_.switch_port));
  }
  round_open_ = true;
  duplicate_controller_seen_ = false;
  collected_.clear();
  collected_.push_back(
      MapEntry{config_.switch_port, config_.address, config_.eth});

  for (std::size_t port = 0; port < config_.switch_ports; ++port) {
    if (port == config_.switch_port) continue;
    send_mapping(static_cast<std::uint8_t>(port),
                 make_scout_payload(config_.address, config_.switch_port));
  }
  simulator_.schedule_in(config_.reply_window, [this] { finish_round(); });
}

void Mcp::finish_round() {
  if (!round_open_) return;
  round_open_ = false;

  // A higher address surfaced mid-round: defer to it.
  const bool higher_seen = std::any_of(
      collected_.begin(), collected_.end(),
      [this](const MapEntry& e) { return e.mcp > config_.address; });
  if (higher_seen) {
    suppressed_until_ = simulator_.now() + config_.suppress_period;
    return;
  }

  NetworkMap map = collected_;
  if (duplicate_controller_seen_) {
    // "The controller is confused by the appearance of what it believes is
    // another controller, and is unable to generate a consistent map. Each
    // attempt to resolve the network fails in an apparently random fashion."
    ++stats_.confused_rounds;
    if (confused_) confused_(simulator_.now());
    map = damaged_map(collected_);
    if (trace_ && trace_->enabled(sim::LogLevel::kWarn)) {
      trace_->add(simulator_.now(), sim::LogLevel::kWarn, "mcp",
                  "duplicate controller seen; announcing damaged map of " +
                      std::to_string(map.size()) + " entries");
    }
  }
  std::sort(map.begin(), map.end(),
            [](const MapEntry& a, const MapEntry& b) { return a.port < b.port; });

  ++stats_.maps_announced;
  const auto payload = make_announce_payload(config_.address, map);
  for (std::size_t port = 0; port < config_.switch_ports; ++port) {
    if (port == config_.switch_port) continue;
    send_mapping(static_cast<std::uint8_t>(port), payload);
  }
  install_map(std::move(map));
}

void Mcp::on_mapping_frame(const Delivered& frame, sim::SimTime when) {
  (void)when;
  if (frame.payload.empty()) return;
  switch (static_cast<MappingOp>(frame.payload[0])) {
    case MappingOp::kScout: handle_scout(frame); break;
    case MappingOp::kReply: handle_reply(frame); break;
    case MappingOp::kAnnounce: handle_announce(frame); break;
    default: break;  // unrecognized mapping op: dropped like a reserved type
  }
}

void Mcp::handle_scout(const Delivered& frame) {
  if (frame.payload.size() < 10) return;
  const McpAddress mapper = get_u64(frame.payload, 1);
  const std::uint8_t mapper_port = frame.payload[9];
  if (mapper > config_.address) {
    suppressed_until_ = simulator_.now() + config_.suppress_period;
  }
  ++stats_.scouts_answered;
  send_mapping(mapper_port, make_reply_payload(config_.address, config_.eth,
                                               config_.switch_port));
}

void Mcp::handle_reply(const Delivered& frame) {
  if (frame.payload.size() < 16) return;
  if (!round_open_) {
    ++stats_.replies_late;
    return;
  }
  ++stats_.replies_collected;
  MapEntry entry;
  entry.mcp = get_u64(frame.payload, 1);
  entry.eth = get_eth(frame.payload, 9);
  entry.port = frame.payload[15];
  if (entry.mcp == config_.address) duplicate_controller_seen_ = true;
  // One entry per port: a later reply from the same port replaces.
  const auto it = std::find_if(
      collected_.begin(), collected_.end(),
      [&entry](const MapEntry& e) { return e.port == entry.port; });
  if (it != collected_.end()) {
    *it = entry;
  } else {
    collected_.push_back(entry);
  }
}

void Mcp::handle_announce(const Delivered& frame) {
  if (frame.payload.size() < 10) return;
  const McpAddress mapper = get_u64(frame.payload, 1);
  if (mapper > config_.address) {
    suppressed_until_ = simulator_.now() + config_.suppress_period;
  }
  const std::size_t count = frame.payload[9];
  if (frame.payload.size() < 10 + count * 15) return;
  NetworkMap map;
  map.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t off = 10 + i * 15;
    MapEntry e;
    e.port = frame.payload[off];
    e.mcp = get_u64(frame.payload, off + 1);
    e.eth = get_eth(frame.payload, off + 9);
    map.push_back(e);
  }
  ++stats_.maps_installed;
  install_map(std::move(map));
}

void Mcp::install_map(NetworkMap map) {
  std::sort(map.begin(), map.end(),
            [](const MapEntry& a, const MapEntry& b) { return a.port < b.port; });
  if (trace_ && trace_->enabled(sim::LogLevel::kInfo) &&
      map.size() != map_.size()) {
    trace_->add(simulator_.now(), sim::LogLevel::kInfo, "mcp",
                "port " + std::to_string(config_.switch_port) +
                    " installs map of " + std::to_string(map.size()) +
                    " nodes (was " + std::to_string(map_.size()) + ")");
  }
  map_ = std::move(map);
  last_install_ = simulator_.now();
}

std::optional<std::vector<std::uint8_t>> Mcp::resolve_route(
    const EthAddr& dest) const {
  const auto it = std::find_if(map_.begin(), map_.end(),
                               [&dest](const MapEntry& e) { return e.eth == dest; });
  if (it == map_.end()) return std::nullopt;
  return resolve_route_port(it->port);
}

std::optional<std::vector<std::uint8_t>> Mcp::resolve_route_port(
    std::uint8_t port) const {
  // Single-switch topology: one hop, delivered to a host.
  return std::vector<std::uint8_t>{route_to_host(port)};
}

void Mcp::send_mapping(std::uint8_t dest_port,
                       std::vector<std::uint8_t> payload) {
  Packet p;
  p.route = {route_to_host(dest_port)};
  p.marker = 0x00;
  p.type = kTypeMapping;
  p.payload = std::move(payload);
  nic_.send(p);
}

NetworkMap Mcp::damaged_map(const NetworkMap& collected) {
  // Each confused attempt damages the map differently: entries vanish or get
  // routed to wrong ports, never settling ("the faulty map was not static").
  NetworkMap out;
  for (const auto& e : collected) {
    const std::uint32_t die = rng_.below(3);
    if (die == 0) continue;  // node dropped from the map
    MapEntry d = e;
    if (die == 1) {
      d.port = static_cast<std::uint8_t>(
          rng_.below(static_cast<std::uint32_t>(config_.switch_ports)));
    }
    out.push_back(d);
  }
  return out;
}

}  // namespace hsfi::myrinet
