// Sender-side flow-control state (paper §4.3.1, "Corruption of GO and STOP
// symbols").
//
// "The timeout counter is set to 16 character periods... If a symbol is
// received, the counter is reset. If the counter times out, the sender
// transitions itself to the GO stage. Thus, if the sender has been placed in
// the STOP state because it received an erroneous STOP symbol, it will
// recover fairly quickly by acting as if it received a GO symbol."
//
// A FlowGate tracks whether this end of a channel may transmit. STOP pauses
// it and (re)arms the short timeout; GO resumes it. A receiver holds a
// sender off by refreshing STOP (the real interface interleaves its flow
// state continuously; SlackBuffer models that with a periodic STOP refresh
// while above the low watermark), and the gate re-opens on its own 16
// character periods after the last STOP — the paper's erroneous-STOP
// recovery ("it will recover fairly quickly by acting as if it received a
// GO symbol").
#pragma once

#include <cstdint>
#include <functional>

#include "myrinet/control.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {

class FlowGate {
 public:
  /// `short_timeout` is 16 character periods (200 ns at 80 MB/s).
  /// `on_resume` is invoked whenever the gate transitions closed -> open
  /// (by GO or by timeout), so transmit pumps can restart.
  FlowGate(sim::Simulator& simulator, sim::Duration short_timeout,
           std::function<void()> on_resume);
  ~FlowGate();

  FlowGate(const FlowGate&) = delete;
  FlowGate& operator=(const FlowGate&) = delete;

  /// Feed a decoded flow-control symbol received on the reverse channel.
  void on_flow(ControlSymbol c);

  [[nodiscard]] bool open() const noexcept { return open_; }

  [[nodiscard]] std::uint64_t stops_received() const noexcept { return stops_; }
  [[nodiscard]] std::uint64_t gos_received() const noexcept { return gos_; }
  [[nodiscard]] std::uint64_t timeout_resumes() const noexcept {
    return timeout_resumes_;
  }

  /// Snapshot state. The timeout EventId stays valid across a fabric fork
  /// because the simulator restores queue slots and generations verbatim.
  struct State {
    bool open = true;
    sim::EventId timeout_event = sim::kInvalidEventId;
    std::uint64_t stops = 0;
    std::uint64_t gos = 0;
    std::uint64_t timeout_resumes = 0;
  };

  [[nodiscard]] State capture_state() const noexcept {
    return State{open_, timeout_event_, stops_, gos_, timeout_resumes_};
  }
  void restore_state(const State& state) noexcept {
    open_ = state.open;
    timeout_event_ = state.timeout_event;
    stops_ = state.stops;
    gos_ = state.gos;
    timeout_resumes_ = state.timeout_resumes;
  }

 private:
  void arm_timeout();
  void disarm_timeout();
  void resume(bool by_timeout);

  sim::Simulator& simulator_;
  sim::Duration short_timeout_;
  std::function<void()> on_resume_;
  bool open_ = true;
  sim::EventId timeout_event_ = sim::kInvalidEventId;
  std::uint64_t stops_ = 0;
  std::uint64_t gos_ = 0;
  std::uint64_t timeout_resumes_ = 0;
};

}  // namespace hsfi::myrinet
