#include "myrinet/framing.hpp"

#include <utility>

namespace hsfi::myrinet {

void Deframer::feed(link::Symbol symbol, sim::SimTime when) {
  if (!symbol.control) {
    current_.push_back(symbol.data);
    return;
  }
  const auto decoded = decode_control(symbol.data);
  if (!decoded) {
    ++ignored_;
    return;
  }
  switch (*decoded) {
    case ControlSymbol::kIdle:
      break;
    case ControlSymbol::kGap:
      if (!current_.empty()) {
        ++frames_;
        if (frame_handler_) frame_handler_(std::move(current_), when);
        current_.clear();
      }
      break;
    case ControlSymbol::kGo:
    case ControlSymbol::kStop:
      if (flow_handler_) flow_handler_(*decoded, when);
      break;
  }
}

void Deframer::feed_burst(const link::Burst& burst) {
  const std::size_t n = burst.symbols.size();
  if (!burst.has_view()) {
    for (std::size_t i = 0; i < n; ++i) feed(burst.symbols[i], burst.arrival(i));
    return;
  }
  std::size_t i = 0;
  while (i < n) {
    const std::size_t c = link::find_next_control(burst, i);
    if (c > i) {
      current_.insert(current_.end(),
                      burst.data.begin() + static_cast<std::ptrdiff_t>(i),
                      burst.data.begin() + static_cast<std::ptrdiff_t>(c));
      i = c;
    }
    if (i == n) break;
    feed(burst.symbols[i], burst.arrival(i));
    ++i;
  }
}

std::vector<link::Symbol> frame_symbols(
    std::span<const std::uint8_t> packet_bytes) {
  std::vector<link::Symbol> symbols;
  frame_symbols_into(packet_bytes, symbols);
  return symbols;
}

void frame_symbols_into(std::span<const std::uint8_t> packet_bytes,
                        std::vector<link::Symbol>& out) {
  out.clear();
  out.reserve(packet_bytes.size() + 1);
  for (const auto b : packet_bytes) out.push_back(link::data_symbol(b));
  out.push_back(to_symbol(ControlSymbol::kGap));
}

}  // namespace hsfi::myrinet
