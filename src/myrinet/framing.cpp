#include "myrinet/framing.hpp"

#include <utility>

namespace hsfi::myrinet {

void Deframer::feed(link::Symbol symbol, sim::SimTime when) {
  if (!symbol.control) {
    current_.push_back(symbol.data);
    return;
  }
  const auto decoded = decode_control(symbol.data);
  if (!decoded) {
    ++ignored_;
    return;
  }
  switch (*decoded) {
    case ControlSymbol::kIdle:
      break;
    case ControlSymbol::kGap:
      if (!current_.empty()) {
        ++frames_;
        if (frame_handler_) frame_handler_(std::move(current_), when);
        current_.clear();
      }
      break;
    case ControlSymbol::kGo:
    case ControlSymbol::kStop:
      if (flow_handler_) flow_handler_(*decoded, when);
      break;
  }
}

std::vector<link::Symbol> frame_symbols(
    std::span<const std::uint8_t> packet_bytes) {
  std::vector<link::Symbol> symbols;
  frame_symbols_into(packet_bytes, symbols);
  return symbols;
}

void frame_symbols_into(std::span<const std::uint8_t> packet_bytes,
                        std::vector<link::Symbol>& out) {
  out.clear();
  out.reserve(packet_bytes.size() + 1);
  for (const auto b : packet_bytes) out.push_back(link::data_symbol(b));
  out.push_back(to_symbol(ControlSymbol::kGap));
}

}  // namespace hsfi::myrinet
