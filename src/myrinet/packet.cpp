#include "myrinet/packet.hpp"

namespace hsfi::myrinet {

std::vector<std::uint8_t> serialize(const Packet& packet) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(packet.route.size() + 3 + packet.payload.size() + 1);
  bytes.insert(bytes.end(), packet.route.begin(), packet.route.end());
  bytes.push_back(packet.marker);
  bytes.push_back(static_cast<std::uint8_t>(packet.type >> 8));
  bytes.push_back(static_cast<std::uint8_t>(packet.type & 0xFF));
  bytes.insert(bytes.end(), packet.payload.begin(), packet.payload.end());
  bytes.push_back(crc8(bytes));
  return bytes;
}

std::vector<link::Symbol> to_symbols(std::span<const std::uint8_t> bytes) {
  std::vector<link::Symbol> symbols;
  symbols.reserve(bytes.size());
  for (const auto b : bytes) symbols.push_back(link::data_symbol(b));
  return symbols;
}

std::string_view to_string(DeliveryStatus status) noexcept {
  switch (status) {
    case DeliveryStatus::kOk: return "ok";
    case DeliveryStatus::kTooShort: return "too-short";
    case DeliveryStatus::kCrcError: return "crc-error";
    case DeliveryStatus::kMarkerError: return "marker-error";
  }
  return "?";
}

Delivered parse_delivered(std::span<const std::uint8_t> bytes) {
  Delivered out;
  if (bytes.size() < 4) {  // marker + 2-byte type + CRC
    out.status = DeliveryStatus::kTooShort;
    return out;
  }
  const auto body = bytes.first(bytes.size() - 1);
  if (crc8(body) != bytes.back()) {
    out.status = DeliveryStatus::kCrcError;
    return out;
  }
  out.marker = bytes[0];
  out.type = static_cast<std::uint16_t>((bytes[1] << 8) | bytes[2]);
  if ((out.marker & kRouteMsb) != 0) {
    out.status = DeliveryStatus::kMarkerError;
    return out;
  }
  out.payload.assign(body.begin() + 3, body.end());
  out.status = DeliveryStatus::kOk;
  return out;
}

}  // namespace hsfi::myrinet
