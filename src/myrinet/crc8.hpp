// Myrinet trailing CRC-8.
//
// "a Myrinet packet consisted of an arbitrarily long source route, a 4-byte
// packet type, an arbitrarily long payload, and a single byte of CRC" and
// "After each byte is removed, the trailing CRC-8 is recomputed."
//
// We use the CRC-8 generator x^8 + x^2 + x + 1 (polynomial 0x07, the ATM HEC
// generator also used by Myrinet-generation hardware), MSB-first, initial
// value 0. The exact polynomial is irrelevant to the reproduced experiments;
// what matters is (a) end hosts detect in-flight corruption and (b) switches
// can recompute the CRC after stripping a route byte *without masking*
// pre-existing errors — see patch_crc().
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace hsfi::myrinet {

namespace detail {
constexpr std::uint8_t kCrc8Poly = 0x07;

constexpr std::array<std::uint8_t, 256> make_crc8_table() {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    auto crc = static_cast<std::uint8_t>(i);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80u) != 0
                ? static_cast<std::uint8_t>((crc << 1) ^ kCrc8Poly)
                : static_cast<std::uint8_t>(crc << 1);
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint8_t, 256> kCrc8Table = make_crc8_table();
}  // namespace detail

/// Incremental CRC-8 over a byte stream. Start from Crc8{} and feed bytes.
class Crc8 {
 public:
  constexpr void update(std::uint8_t byte) noexcept {
    value_ = detail::kCrc8Table[static_cast<std::size_t>(value_ ^ byte)];
  }
  constexpr void update(std::span<const std::uint8_t> bytes) noexcept {
    for (const auto b : bytes) update(b);
  }
  [[nodiscard]] constexpr std::uint8_t value() const noexcept { return value_; }
  constexpr void reset() noexcept { value_ = 0; }

 private:
  std::uint8_t value_ = 0;
};

/// CRC-8 of a complete byte sequence.
[[nodiscard]] constexpr std::uint8_t crc8(std::span<const std::uint8_t> bytes) noexcept {
  Crc8 c;
  c.update(bytes);
  return c.value();
}

/// Syndrome-preserving CRC update, used when a hop strips bytes from a packet
/// in flight (a switch consuming a route byte).
///
/// `received_crc` is the CRC byte that arrived with the packet;
/// `crc_over_input` is the CRC computed over the bytes the hop received
/// (route byte included); `crc_over_output` over the bytes it forwards.
/// If the incoming packet was intact, the result equals `crc_over_output`
/// (a freshly correct CRC for the shortened packet). If the incoming packet
/// carried a corruption, the same error syndrome is carried into the emitted
/// CRC, so the end host still detects the error — this mirrors how real
/// cut-through hardware avoids masking upstream corruption when it rewrites
/// the trailing CRC.
[[nodiscard]] constexpr std::uint8_t patch_crc(std::uint8_t received_crc,
                                               std::uint8_t crc_over_input,
                                               std::uint8_t crc_over_output) noexcept {
  return static_cast<std::uint8_t>(received_crc ^ crc_over_input ^
                                   crc_over_output);
}

}  // namespace hsfi::myrinet
