#include "myrinet/addr.hpp"

#include <cassert>
#include <cstdio>

namespace hsfi::myrinet {

std::string to_string(const EthAddr& a) {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02X:%02X:%02X:%02X:%02X:%02X", a.bytes[0],
                a.bytes[1], a.bytes[2], a.bytes[3], a.bytes[4], a.bytes[5]);
  return buf;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_eth(std::vector<std::uint8_t>& out, const EthAddr& a) {
  out.insert(out.end(), a.bytes.begin(), a.bytes.end());
}

std::uint16_t get_u16(std::span<const std::uint8_t> in, std::size_t offset) {
  assert(offset + 2 <= in.size());
  return static_cast<std::uint16_t>((in[offset] << 8) | in[offset + 1]);
}

std::uint64_t get_u64(std::span<const std::uint8_t> in, std::size_t offset) {
  assert(offset + 8 <= in.size());
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) v = (v << 8) | in[offset + i];
  return v;
}

EthAddr get_eth(std::span<const std::uint8_t> in, std::size_t offset) {
  assert(offset + 6 <= in.size());
  EthAddr a;
  for (std::size_t i = 0; i < 6; ++i) a.bytes[i] = in[offset + i];
  return a;
}

}  // namespace hsfi::myrinet
