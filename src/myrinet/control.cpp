#include "myrinet/control.hpp"

namespace hsfi::myrinet {

std::string_view to_string(ControlSymbol c) noexcept {
  switch (c) {
    case ControlSymbol::kIdle: return "IDLE";
    case ControlSymbol::kGo: return "GO";
    case ControlSymbol::kGap: return "GAP";
    case ControlSymbol::kStop: return "STOP";
  }
  return "?";
}

std::optional<ControlSymbol> decode_control(std::uint8_t code) noexcept {
  switch (code) {
    // Exact codewords.
    case 0x00: return ControlSymbol::kIdle;
    case 0x03: return ControlSymbol::kGo;
    case 0x0C: return ControlSymbol::kGap;
    case 0x0F: return ControlSymbol::kStop;
    // Single 1->0 drops of STOP (0b1111), plus the paper's 0x08 example.
    case 0x0E:
    case 0x0D:
    case 0x0B:
    case 0x07:
    case 0x08: return ControlSymbol::kStop;
    // Single 1->0 drop of GAP (0b1100). (0x08 is claimed by STOP above.)
    case 0x04: return ControlSymbol::kGap;
    // Single 1->0 drops of GO (0b0011).
    case 0x02:
    case 0x01: return ControlSymbol::kGo;
    default: return std::nullopt;
  }
}

}  // namespace hsfi::myrinet
