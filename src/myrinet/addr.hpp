// Addressing used across the Myrinet substrate and the host stack.
//
// "Each MCP on a network is given a unique 64-bit address" (paper §4.1) and
// physical addresses "are 48-bit Ethernet addresses corresponding to
// individual Myrinet ports" (paper §4.3.3).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hsfi::myrinet {

/// 64-bit MCP (Myrinet Control Program) address. The MCP with the highest
/// address on the network is the mapper ("controller").
using McpAddress = std::uint64_t;

/// 48-bit Ethernet-style physical address.
struct EthAddr {
  std::array<std::uint8_t, 6> bytes{};

  friend constexpr auto operator<=>(const EthAddr&, const EthAddr&) = default;

  [[nodiscard]] static constexpr EthAddr from_u64(std::uint64_t v) noexcept {
    EthAddr a;
    for (std::size_t i = 0; i < 6; ++i) {
      a.bytes[5 - i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    return a;
  }
  [[nodiscard]] constexpr std::uint64_t to_u64() const noexcept {
    std::uint64_t v = 0;
    for (const auto b : bytes) v = (v << 8) | b;
    return v;
  }
};

[[nodiscard]] std::string to_string(const EthAddr& a);

/// Little byte-stream helpers used by protocol encoders.
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_eth(std::vector<std::uint8_t>& out, const EthAddr& a);
[[nodiscard]] std::uint16_t get_u16(std::span<const std::uint8_t> in,
                                    std::size_t offset);
[[nodiscard]] std::uint64_t get_u64(std::span<const std::uint8_t> in,
                                    std::size_t offset);
[[nodiscard]] EthAddr get_eth(std::span<const std::uint8_t> in,
                              std::size_t offset);

}  // namespace hsfi::myrinet
