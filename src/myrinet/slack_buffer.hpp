// Myrinet slack buffer (paper Fig. 9).
//
// "Flow control is managed by a slack buffer... When it reaches the high
// water mark, the buffer generates a STOP control symbol. Correspondingly,
// it generates a GO symbol upon reaching the low water mark."
//
// While above the high watermark the STOP is refreshed periodically; the
// matching sender-side FlowGate reverts to GO when the refresh stops
// arriving (the paper's 16-character-period short timeout).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>

#include "link/symbol.hpp"
#include "myrinet/control.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {

class SlackBuffer {
 public:
  struct Config {
    /// Sized for burst-granularity links: after a STOP is emitted, up to
    /// ~128 characters can still be in flight (transmit chunk + wire-ahead
    /// cap + propagation), so the high watermark leaves that much headroom.
    std::size_t capacity = 512;
    std::size_t high_watermark = 256;
    std::size_t low_watermark = 64;
    /// STOP refresh interval while stopped: the real interface interleaves
    /// its flow state continuously; the sender-side gate decays to GO 16
    /// character periods after the last STOP, so the refresh must be
    /// shorter than that. 0 disables refresh (flow-control ablation).
    sim::Duration stop_refresh = sim::nanoseconds(100);  // 8 chars @ 80 MB/s

    bool operator==(const Config&) const = default;
  };

  /// `send_flow` transmits a flow-control symbol on the reverse channel.
  SlackBuffer(sim::Simulator& simulator, Config config,
              std::function<void(ControlSymbol)> send_flow);
  ~SlackBuffer();

  SlackBuffer(const SlackBuffer&) = delete;
  SlackBuffer& operator=(const SlackBuffer&) = delete;

  /// Appends a symbol. Returns false (and counts a drop) on overflow.
  bool push(link::Symbol symbol);

  /// Bulk append: inserts as many leading symbols as capacity allows with a
  /// single occupancy-change evaluation, and returns how many were taken.
  /// The caller pushes the rejected tail through push() so overflow drops
  /// keep their per-symbol accounting. Only valid without a probe attached
  /// (the probe samples every individual occupancy change).
  std::size_t push_run(std::span<const link::Symbol> symbols);

  [[nodiscard]] bool has_probe() const noexcept {
    return static_cast<bool>(probe_);
  }

  /// Removes the oldest symbol, or nullopt when empty.
  std::optional<link::Symbol> pop();

  [[nodiscard]] const link::Symbol* front() const noexcept {
    return queue_.empty() ? nullptr : &queue_.front();
  }

  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] bool stopping() const noexcept { return stopping_; }
  [[nodiscard]] std::uint64_t overflow_drops() const noexcept { return drops_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Probe called on every occupancy change and flow emission; drives the
  /// Fig. 9 occupancy-versus-time series.
  using Probe = std::function<void(sim::SimTime when, std::size_t occupancy,
                                   std::optional<ControlSymbol> emitted)>;
  void set_probe(Probe probe) { probe_ = std::move(probe); }

  /// Snapshot state (refresh EventId stays valid across a fabric fork —
  /// the simulator restores queue slots/generations verbatim).
  struct State {
    std::deque<link::Symbol> queue;
    bool stopping = false;
    sim::EventId refresh_event = sim::kInvalidEventId;
    std::uint64_t drops = 0;
  };

  [[nodiscard]] State capture_state() const {
    return State{queue_, stopping_, refresh_event_, drops_};
  }
  void restore_state(const State& state) {
    queue_ = state.queue;
    stopping_ = state.stopping;
    refresh_event_ = state.refresh_event;
    drops_ = state.drops;
  }

 private:
  void after_occupancy_change();
  void emit(ControlSymbol c);
  void arm_refresh();

  sim::Simulator& simulator_;
  Config config_;
  std::function<void(ControlSymbol)> send_flow_;
  std::deque<link::Symbol> queue_;
  bool stopping_ = false;
  sim::EventId refresh_event_ = sim::kInvalidEventId;
  std::uint64_t drops_ = 0;
  Probe probe_;
};

}  // namespace hsfi::myrinet
