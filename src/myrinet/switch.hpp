// Myrinet crossbar switch: cut-through (wormhole) forwarding with source
// routing, slack-buffer flow control, syndrome-preserving CRC rewrite, and
// the two recovery timeouts the paper's campaign exercises.
//
// Routing (paper §4.1): "At each switch, the first byte of the header
// designates the outgoing port. Once the packet is routed, the byte used by
// the current switch is stripped off... After each byte is removed, the
// trailing CRC-8 is recomputed."
//
// Blocking (paper §4.3.1): "a Myrinet uses destination blocking when the
// channel is occupied by another packet... source blocking can occur if the
// packet-terminating GAP symbol is not transmitted or is lost... the path
// followed by the packet will remain occupied... The network will recover
// from this occurance with a long-period timeout (~50ms at 80MB/s)."
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "link/channel.hpp"
#include "link/symbol_pool.hpp"
#include "myrinet/control.hpp"
#include "myrinet/crc8.hpp"
#include "myrinet/flow_gate.hpp"
#include "myrinet/slack_buffer.hpp"
#include "sim/log.hpp"
#include "sim/simulator.hpp"

namespace hsfi::myrinet {

class Switch {
 public:
  struct Config {
    std::size_t num_ports = 8;
    /// Character period used to derive default timeouts (12.5 ns @ 80 MB/s).
    sim::Duration character_period = sim::picoseconds(12'500);
    /// Cut-through forwarding latency through the crossbar.
    sim::Duration forwarding_latency = sim::nanoseconds(100);
    /// Connection age after which a held path is reclaimed
    /// (~4 million character periods; ~50 ms at 80 MB/s).
    sim::Duration long_timeout = sim::picoseconds(12'500) * 4'000'000;
    /// Sender-side STOP decay (16 character periods).
    sim::Duration short_timeout = sim::picoseconds(12'500) * 16;
    SlackBuffer::Config slack = {};
    /// Cap on data queued into an output channel ahead of real time, in
    /// characters; bounds how long a STOP takes to actually halt the wire.
    std::size_t max_tx_ahead_chars = 64;

    bool operator==(const Config&) const = default;
  };

  struct PortStats {
    std::uint64_t packets_routed = 0;     ///< completed (GAP-terminated) packets in
    std::uint64_t packets_consumed = 0;   ///< dropped in consume mode
    std::uint64_t invalid_route = 0;      ///< head byte named a dead/absent port
    std::uint64_t long_timeouts = 0;      ///< held paths reclaimed
    std::uint64_t slack_overflow = 0;     ///< symbols lost to slack overflow
    std::uint64_t flow_stops_sent = 0;
    std::uint64_t flow_gos_sent = 0;
  };

  Switch(sim::Simulator& simulator, std::string name, Config config);
  ~Switch();

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Connects port `port`: `rx` is the channel carrying symbols *into* this
  /// switch port, `tx` the channel carrying symbols out of it.
  void attach_port(std::size_t port, link::Channel& rx, link::Channel& tx);

  [[nodiscard]] std::size_t num_ports() const noexcept { return ports_.size(); }
  [[nodiscard]] PortStats port_stats(std::size_t port) const;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Slack buffer of a port's input side (exposed for monitoring/Fig 9).
  [[nodiscard]] SlackBuffer& input_slack(std::size_t port);

  /// Optional event trace (long timeouts, invalid routes); not owned.
  void set_trace(sim::TraceLog* trace) noexcept { trace_ = trace; }

  /// Scenario hook: emits a flow-control symbol on `port`'s output channel
  /// regardless of the slack buffer's true state — the mechanism behind
  /// lying-GO/lying-STOP misbehavior scenarios. The slack's own stop/go
  /// bookkeeping is deliberately not updated: the switch believes one
  /// thing, the wire says another.
  void inject_flow(std::size_t port, ControlSymbol c) { send_flow(port, c); }

  /// Failure-relevant port events, timestamped for the manifestation
  /// analyzer. Counters in PortStats record that these happened; the hook
  /// records *when*.
  enum class PortEvent : std::uint8_t {
    kSlackOverflow = 0,  ///< symbol lost, input slack full
    kLongTimeout,        ///< held path reclaimed (~50 ms)
    kInvalidRoute,       ///< head byte named a dead/absent port
  };
  using PortEventHandler =
      std::function<void(std::size_t port, PortEvent event, sim::SimTime when)>;
  void on_port_event(PortEventHandler handler) {
    port_event_ = std::move(handler);
  }

  /// Snapshot state: per-port routing FSM, slack/gate state, arbitration,
  /// and counters. The batch pool and the working pump batch are excluded —
  /// the batch is only live inside pump(), and pool contents never affect
  /// delivery order. EventIds stay valid across a fork (the simulator
  /// restores queue slots/generations verbatim).
  struct State {
    struct PortState {
      SlackBuffer::State slack;
      FlowGate::State gate;
      std::uint8_t in_state = 0;  ///< InState, stored flat
      std::size_t out_port = 0;
      std::optional<std::uint8_t> held;
      Crc8 crc_in;
      Crc8 crc_out;
      sim::EventId long_timeout_event = sim::kInvalidEventId;
      std::size_t owner_input = static_cast<std::size_t>(-1);
      std::deque<std::size_t> waiters;
      std::size_t pending_chars = 0;
      bool pump_scheduled = false;
      PortStats stats;
    };
    std::vector<PortState> ports;
  };

  [[nodiscard]] State capture_state() const;
  void restore_state(const State& state);

 private:
  struct Port;

  /// SymbolSink adapter: routes a received burst into the owning port.
  struct RxSink final : link::SymbolSink {
    Switch* self = nullptr;
    std::size_t port = 0;
    void on_burst(const link::Burst& burst) override {
      self->on_burst(port, burst);
    }
  };

  enum class InState : std::uint8_t { kIdle, kConnected, kConsuming };

  struct Port {
    std::unique_ptr<SlackBuffer> slack;  // input-side slack buffer
    std::unique_ptr<FlowGate> gate;      // output-side transmit permission
    RxSink sink;
    link::Channel* tx = nullptr;

    // Input routing FSM.
    InState state = InState::kIdle;
    std::size_t out_port = 0;
    std::optional<std::uint8_t> held;
    Crc8 crc_in;
    Crc8 crc_out;
    sim::EventId long_timeout_event = sim::kInvalidEventId;

    // Output arbitration (this port as an output).
    static constexpr std::size_t kFree = static_cast<std::size_t>(-1);
    std::size_t owner_input = kFree;
    std::deque<std::size_t> waiters;
    /// Characters batched toward this output but not yet handed to the
    /// channel (the forwarding-latency event has not fired). Counted so
    /// the wire-ahead throttle sees them — otherwise one pump pass could
    /// serialize a whole slack ahead of a STOP.
    std::size_t pending_chars = 0;

    bool pump_scheduled = false;
    PortStats stats;
  };

  void on_burst(std::size_t port, const link::Burst& burst);
  void schedule_pump(std::size_t port);
  void pump(std::size_t port);
  /// Tries to claim output `out` for input `in`; queues `in` as waiter on
  /// failure. Returns success.
  bool acquire_output(std::size_t out, std::size_t in);
  void release_output(std::size_t out);
  void close_connection(Port& p, bool emit_tail_crc);
  void arm_long_timeout(std::size_t port);
  void send_flow(std::size_t port, ControlSymbol c);
  /// True when output `out` may accept more data right now, counting
  /// `queued_chars` already committed in the caller's batch; otherwise
  /// arranges for `in`'s pump to be re-run when it can.
  bool output_ready(std::size_t out, std::size_t in,
                    std::size_t queued_chars);

  sim::Simulator& simulator_;
  std::string name_;
  Config config_;
  std::vector<std::unique_ptr<Port>> ports_;
  sim::TraceLog* trace_ = nullptr;
  PortEventHandler port_event_;
  /// Freelist for the per-pump forwarding batches: each batch rides inside
  /// a forwarding-latency event and returns here after transmission, so
  /// steady-state forwarding allocates nothing per packet. `pump_batch_` is
  /// the working batch pump() fills between flushes (pump never re-enters).
  link::SymbolBufferPool batch_pool_;
  std::vector<link::Symbol> pump_batch_;
};

}  // namespace hsfi::myrinet
